// Tree attention for speculative decoding (Sec. 3.1.1: "sparse matrices can
// also effectively represent ... Tree Attentions"). A draft tree's tokens
// attend to their ancestors only; the mask lowers to a BSR over the KV slots
// and runs through the standard kernels unchanged.
#include <gtest/gtest.h>

#include "core/microkernel.h"
#include "core/reference.h"
#include "test_util.h"

namespace flashinfer {
namespace {

// Tree:      0
//          /   \
//         1     4
//        / \     \
//       2   3     5
// Token i attends to its ancestors and itself.
const std::vector<std::vector<int>> kAncestors = {
    {0}, {0, 1}, {0, 1, 2}, {0, 1, 3}, {0, 4}, {0, 4, 5}};

std::vector<std::vector<bool>> TreeMask() {
  std::vector<std::vector<bool>> mask(6, std::vector<bool>(6, false));
  for (size_t i = 0; i < kAncestors.size(); ++i) {
    for (int a : kAncestors[i]) mask[i][static_cast<size_t>(a)] = true;
  }
  return mask;
}

TEST(TreeAttention, MaskLowersToBsr) {
  const auto bsr = sparse::BsrFromDenseMask(TreeMask(), 1, 1);
  bsr.Validate();
  // Nnz equals the number of (token, ancestor) pairs.
  int64_t expect = 0;
  for (const auto& a : kAncestors) expect += static_cast<int64_t>(a.size());
  EXPECT_EQ(bsr.Nnz(), expect);
}

TEST(TreeAttention, KernelMatchesReferenceOverTreeBsr) {
  // Build a cache holding the 6 tree tokens (page size 1 = vector sparse,
  // physical block id == token id) and run attention with the tree BSR.
  test::ProblemSpec spec;
  spec.qo_lens = {6};   // One query row per tree token.
  spec.kv_lens = {6};
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  spec.head_dim = 8;
  spec.page_size = 1;
  spec.tile_q = 2;
  auto prob = test::MakeProblem(spec);

  auto tree_bsr = sparse::BsrFromDenseMask(TreeMask(), spec.tile_q, 1);
  // Remap column-block ids to the physical pages backing the tokens.
  const auto& pages = prob.kv->SequencePages(prob.seq_ids[0]);
  for (auto& idx : tree_bsr.indices) idx = pages[static_cast<size_t>(idx)];
  tree_bsr.num_col_blocks = prob.kv->max_pages();

  auto p = prob.Params();
  p.bsr = &tree_bsr;
  p.variant.causal = false;  // The mask IS the tree structure.
  KernelConfig cfg;
  cfg.tile_q = spec.tile_q;
  test::RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));

  auto ref = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p, &ref);
  EXPECT_LT(test::MaxAbsDiff(prob.o.data, ref.data), 1e-4f);
}

TEST(TreeAttention, BranchIsolation) {
  // Token 2 (branch A) and token 5 (branch B) must produce outputs
  // independent of the other branch's values: zeroing branch B's V must not
  // change token 2's output.
  test::ProblemSpec spec;
  spec.qo_lens = {6};
  spec.kv_lens = {6};
  spec.num_qo_heads = 1;
  spec.num_kv_heads = 1;
  spec.head_dim = 8;
  spec.page_size = 1;
  spec.tile_q = 1;
  auto prob = test::MakeProblem(spec);
  auto tree_bsr = sparse::BsrFromDenseMask(TreeMask(), 1, 1);
  const auto& pages = prob.kv->SequencePages(prob.seq_ids[0]);
  for (auto& idx : tree_bsr.indices) idx = pages[static_cast<size_t>(idx)];
  tree_bsr.num_col_blocks = prob.kv->max_pages();

  auto p = prob.Params();
  p.bsr = &tree_bsr;
  p.variant.causal = false;
  KernelConfig cfg;
  cfg.tile_q = 1;
  test::RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  std::vector<float> token2_before(prob.o.Row(2).begin(), prob.o.Row(2).end());

  // Zero V of tokens 4 and 5 (branch B).
  std::vector<float> zeros(static_cast<size_t>(spec.head_dim), 0.0f);
  for (int t : {4, 5}) {
    std::vector<float> k(static_cast<size_t>(spec.head_dim));
    for (int d = 0; d < spec.head_dim; ++d) {
      k[static_cast<size_t>(d)] = prob.kv->KAt(pages[static_cast<size_t>(t)], 0, 0, d);
    }
    prob.kv->SetToken(pages[static_cast<size_t>(t)], 0, k.data(), zeros.data());
  }
  test::RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  for (int d = 0; d < spec.head_dim; ++d) {
    EXPECT_FLOAT_EQ(prob.o.Row(2)[static_cast<size_t>(d)],
                    token2_before[static_cast<size_t>(d)]);
  }
  // Token 5's own output did change (it attends to branch B).
  float diff5 = 0;
  for (int d = 0; d < spec.head_dim; ++d) diff5 += std::fabs(prob.o.Row(5)[static_cast<size_t>(d)]);
  EXPECT_GT(diff5, 0.0f);  // Still nonzero (root's V contributes).
}

}  // namespace
}  // namespace flashinfer
