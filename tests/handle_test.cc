#include <gtest/gtest.h>

#include "gpusim/graph.h"
#include "runtime/batch_handle.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::MaxAbsDiff;
using test::ProblemSpec;

ProblemSpec DecodeSpec() {
  ProblemSpec spec;
  spec.qo_lens = {1, 1, 1, 1, 1, 1};
  spec.kv_lens = {300, 5, 42, 17, 120, 9};
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.head_dim = 16;
  spec.page_size = 4;
  spec.tile_q = 1;  // Matched to the handle's config below.
  return spec;
}

BatchAttentionHandle::TaskInfo DecodeTask(const ProblemSpec& spec) {
  BatchAttentionHandle::TaskInfo info;
  info.variant = VariantKind::kVanilla;
  info.kv_dtype = spec.kv_dtype;
  info.num_qo_heads = spec.num_qo_heads;
  info.num_kv_heads = spec.num_kv_heads;
  info.head_dim = spec.head_dim;
  info.avg_qlen_hint = 0.5;  // Decode: tile_q = group size fused; hint below 1.
  return info;
}

TEST(Handle, PlanRunMatchesReference) {
  auto spec = DecodeSpec();
  // The handle picks tile_q from the hint; for group size 2, fused hint = 1
  // -> tile 1. Build the problem's BSR with the same tile.
  Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
  BatchAttentionHandle handle(gpusim::A100Sxm40GB(), DecodeTask(spec), &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);

  auto p = prob.Params();  // For the reference only.
  handle.MutableVariantParams() = p.variant;
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  const auto report = handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse);
  EXPECT_GT(report.time_us, 0.0);
  EXPECT_GT(report.total_hbm_bytes, 0.0);

  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  std::vector<float> ref_lse(prob.lse.size(), 0.0f);
  ReferenceAttention<VanillaVariant>(p, &ref_o, &ref_lse);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref_o.data), 2e-3f);
  EXPECT_LT(MaxAbsDiff(prob.lse, ref_lse), 2e-3f);
}

TEST(Handle, SplitKvProducedAndMerged) {
  auto spec = DecodeSpec();
  spec.kv_lens = {2000, 3, 3, 3, 3, 3};  // Force splitting of request 0.
  Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
  BatchAttentionHandle handle(gpusim::A100Sxm40GB(), DecodeTask(spec), &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.MutableVariantParams().sm_scale = 0.25f;
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  EXPECT_GT(handle.plan().num_partial_rows, 0);  // Splitting happened.
  handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse);

  auto p = prob.Params();
  p.variant.sm_scale = 0.25f;
  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p, &ref_o, nullptr);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref_o.data), 2e-3f);
}

TEST(Handle, PlanCacheHitsOnSameLengths) {
  auto spec = DecodeSpec();
  Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
  BatchAttentionHandle handle(gpusim::A100Sxm40GB(), DecodeTask(spec), &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  EXPECT_EQ(handle.plan_cache_hits(), 0);
  // Same lengths -> cached (all decode layers of one step reuse the plan).
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  EXPECT_EQ(handle.plan_cache_hits(), 2);
  // Changed lengths -> re-plan.
  auto longer = spec.kv_lens;
  longer[0] += 1;
  auto spec2 = spec;
  spec2.kv_lens = longer;
  auto prob2 = MakeProblem(spec2);
  handle.Plan(&prob2.bsr, prob2.qo_indptr, longer);
  EXPECT_EQ(handle.plan_cache_hits(), 2);
}

TEST(Handle, CudaGraphReplayAfterReplan) {
  // The CUDAGraph workflow of Listing 1: capture run once, then per
  // generation step call plan() and replay the graph. Replay must reflect
  // the new plan (contents changed under fixed pointers).
  auto spec = DecodeSpec();
  Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
  BatchAttentionHandle handle(gpusim::A100Sxm40GB(), DecodeTask(spec), &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.MutableVariantParams() = prob.Params().variant;

  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  gpusim::CudaGraph graph;
  graph.BeginCapture();
  handle.CaptureRun(graph, "decode", prob.q, *prob.kv, &prob.o, &prob.lse);
  graph.EndCapture();

  graph.Replay();
  auto p = prob.Params();
  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p, &ref_o, nullptr);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref_o.data), 2e-3f);

  // "Generate one token": extend request 2 by appending a token, re-plan,
  // replay the same graph.
  std::vector<float> k(static_cast<size_t>(spec.num_kv_heads) * spec.head_dim, 0.5f);
  std::vector<float> v(k.size(), -0.25f);
  prob.kv->AppendTokens(prob.seq_ids[2], k.data(), v.data(), 1);
  auto kv_lens = spec.kv_lens;
  kv_lens[2] += 1;
  std::vector<sparse::RequestKv> req_kv;
  for (size_t r = 0; r < prob.seq_ids.size(); ++r) {
    req_kv.push_back(prob.kv->ExportKv(prob.seq_ids[r]));
  }
  const int g = spec.num_qo_heads / spec.num_kv_heads;
  std::vector<int64_t> fused_lens(spec.qo_lens);
  for (auto& l : fused_lens) l *= g;
  auto bsr2 =
      sparse::BuildBatchBsr(BuildIndptr(fused_lens), req_kv, spec.page_size, spec.tile_q);
  handle.Plan(&bsr2, prob.qo_indptr, kv_lens);
  graph.Replay();

  auto p2 = prob.Params();
  p2.bsr = &bsr2;
  p2.kv_len = kv_lens;
  auto ref2 = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p2, &ref2, nullptr);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref2.data), 2e-3f);
}

TEST(Handle, GraphValidatesWorkspacePointer) {
  auto spec = DecodeSpec();
  Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
  BatchAttentionHandle handle(gpusim::A100Sxm40GB(), DecodeTask(spec), &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  gpusim::CudaGraph graph;
  graph.BeginCapture();
  handle.CaptureRun(graph, "decode", prob.q, *prob.kv, &prob.o, &prob.lse);
  graph.EndCapture();
  EXPECT_TRUE(graph.ValidateSlot(
      "decode", {prob.q.data.data(), static_cast<const void*>(&prob.o),
                 static_cast<const void*>(prob.kv.get()), ws.Base()}));
  Workspace other(Workspace::EstimateBytes(64, 16, spec.head_dim));
  EXPECT_FALSE(graph.ValidateSlot(
      "decode", {prob.q.data.data(), static_cast<const void*>(&prob.o),
                 static_cast<const void*>(prob.kv.get()), other.Base()}));
}

TEST(Handle, SchedulerAblationConsistentResults) {
  // All three scheduling policies must produce identical outputs.
  auto spec = DecodeSpec();
  std::vector<std::vector<float>> outputs;
  for (auto kind :
       {SchedulerKind::kBalanced, SchedulerKind::kNaive, SchedulerKind::kFixedSplit}) {
    Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
    auto info = DecodeTask(spec);
    info.scheduler = kind;
    BatchAttentionHandle handle(gpusim::A100Sxm40GB(), info, &ws);
    auto s = spec;
    s.tile_q = handle.config().tile_q;
    auto prob = MakeProblem(s);
    handle.Plan(&prob.bsr, prob.qo_indptr, s.kv_lens);
    handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse);
    outputs.push_back(prob.o.data);
  }
  EXPECT_LT(MaxAbsDiff(outputs[0], outputs[1]), 1e-4f);
  EXPECT_LT(MaxAbsDiff(outputs[0], outputs[2]), 1e-4f);
}

TEST(Handle, BalancedFasterThanNaiveOnSkewedLengths) {
  auto spec = DecodeSpec();
  spec.kv_lens = {4000, 4, 4, 4, 4, 4};
  double times[2];
  int i = 0;
  for (auto kind : {SchedulerKind::kBalanced, SchedulerKind::kNaive}) {
    Workspace ws(Workspace::EstimateBytes(2048, 128, spec.head_dim));
    auto info = DecodeTask(spec);
    info.scheduler = kind;
    BatchAttentionHandle handle(gpusim::A100Sxm40GB(), info, &ws);
    auto s = spec;
    s.tile_q = handle.config().tile_q;
    auto prob = MakeProblem(s);
    handle.Plan(&prob.bsr, prob.qo_indptr, s.kv_lens);
    times[i++] = handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse).time_us;
  }
  EXPECT_LT(times[0], times[1]);  // Balanced wins on skew.
}

TEST(Workspace, EstimateMatchesAppendixD3) {
  // 2 x #CTA x Tq x (D+1) x 4 bytes of partials + fixed plan region.
  const int64_t bytes = Workspace::EstimateBytes(/*num_ctas=*/216, /*tile_rows=*/4,
                                                 /*head_dim=*/128);
  Workspace ws(bytes);
  ws.Bind(128);
  EXPECT_GE(ws.MaxPartialRows(), 2 * 216 * 4);
}

}  // namespace
}  // namespace flashinfer
