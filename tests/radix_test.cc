#include <gtest/gtest.h>

#include <numeric>

#include "kvcache/radix.h"

namespace flashinfer {
namespace {

std::vector<int32_t> Tokens(std::initializer_list<int32_t> t) { return t; }

TEST(Radix, MatchEmptyTree) {
  RadixTree tree(2);
  const auto m = tree.MatchPrefix(Tokens({1, 2, 3, 4}));
  EXPECT_EQ(m.matched_tokens, 0);
  EXPECT_TRUE(m.pages.empty());
}

TEST(Radix, InsertAndMatchFullPrefix) {
  RadixTree tree(2);
  EXPECT_EQ(tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{10, 11}), 2);
  const auto m = tree.MatchPrefix(Tokens({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(m.matched_tokens, 4);
  EXPECT_EQ(m.pages, (std::vector<int64_t>{10, 11}));
}

TEST(Radix, PartialPageNeverShared) {
  RadixTree tree(4);
  // Only 1 full page of 4 tokens; the trailing 2 tokens are not cacheable.
  EXPECT_EQ(tree.Insert(Tokens({1, 2, 3, 4, 5, 6}), std::vector<int64_t>{7, 8}), 1);
  EXPECT_EQ(tree.TotalCachedPages(), 1);
  const auto m = tree.MatchPrefix(Tokens({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(m.matched_tokens, 4);
}

TEST(Radix, DivergingBranches) {
  RadixTree tree(2);
  tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{1, 2});
  tree.Insert(Tokens({1, 2, 9, 9}), std::vector<int64_t>{1, 3});  // Shares page 1.
  EXPECT_EQ(tree.TotalCachedPages(), 3);  // {1,2} node + two children.
  const auto a = tree.MatchPrefix(Tokens({1, 2, 3, 4}));
  EXPECT_EQ(a.pages, (std::vector<int64_t>{1, 2}));
  const auto b = tree.MatchPrefix(Tokens({1, 2, 9, 9}));
  EXPECT_EQ(b.pages, (std::vector<int64_t>{1, 3}));
  const auto c = tree.MatchPrefix(Tokens({1, 2, 5, 5}));
  EXPECT_EQ(c.matched_tokens, 2);  // Only the shared trunk.
}

TEST(Radix, InsertExistingReturnsZeroNew) {
  RadixTree tree(2);
  tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{1, 2});
  EXPECT_EQ(tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{5, 6}), 0);
  // Original pages kept.
  EXPECT_EQ(tree.MatchPrefix(Tokens({1, 2, 3, 4})).pages, (std::vector<int64_t>{1, 2}));
}

TEST(Radix, EvictLruFreesLeafFirst) {
  RadixTree tree(2);
  tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{1, 2});
  tree.Insert(Tokens({5, 6}), std::vector<int64_t>{3});
  // Touch the {1,2,...} path so {5,6} becomes LRU.
  tree.MatchPrefix(Tokens({1, 2, 3, 4}));
  const auto freed = tree.EvictLru(1);
  EXPECT_EQ(freed, (std::vector<int64_t>{3}));
  EXPECT_EQ(tree.TotalCachedPages(), 2);
  // Evicting more removes the deepest leaf of the remaining path first.
  const auto freed2 = tree.EvictLru(2);
  EXPECT_EQ(freed2.size(), 2u);
  EXPECT_EQ(tree.TotalCachedPages(), 0);
}

TEST(Radix, LockPreventsEviction) {
  RadixTree tree(2);
  tree.Insert(Tokens({1, 2, 3, 4}), std::vector<int64_t>{1, 2});
  auto m = tree.MatchPrefix(Tokens({1, 2, 3, 4}));
  tree.Lock(m.node_path);
  EXPECT_TRUE(tree.EvictLru(10).empty());
  tree.Unlock(m.node_path);
  EXPECT_EQ(tree.EvictLru(10).size(), 2u);
}

TEST(Radix, DeepSharedPrefixAcrossManyRequests) {
  RadixTree tree(4);
  std::vector<int32_t> base(64);
  std::iota(base.begin(), base.end(), 0);
  std::vector<int64_t> pages(16);
  std::iota(pages.begin(), pages.end(), 100);
  tree.Insert(base, pages);
  // 50 requests share the 64-token prefix then diverge.
  for (int r = 0; r < 50; ++r) {
    auto tokens = base;
    for (int i = 0; i < 8; ++i) tokens.push_back(1000 + r * 8 + i);
    const auto m = tree.MatchPrefix(tokens);
    EXPECT_EQ(m.matched_tokens, 64);
    std::vector<int64_t> new_pages = m.pages;
    new_pages.push_back(500 + r * 2);
    new_pages.push_back(501 + r * 2);
    tree.Insert(tokens, new_pages);
  }
  EXPECT_EQ(tree.TotalCachedPages(), 16 + 50 * 2);
}

}  // namespace
}  // namespace flashinfer
