#include <gtest/gtest.h>

#include <numeric>

#include "sparse/quest.h"
#include "test_util.h"

namespace flashinfer::sparse {
namespace {

TEST(QuestMetadata, BoundsContainAllKeys) {
  test::ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {37};
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  spec.head_dim = 8;
  spec.page_size = 8;
  auto prob = test::MakeProblem(spec);
  const auto meta = BuildPageMetadata(*prob.kv, prob.seq_ids[0]);
  EXPECT_EQ(meta.num_pages, 5);  // ceil(37/8).

  const auto& pages = prob.kv->SequencePages(prob.seq_ids[0]);
  for (int64_t p = 0; p < meta.num_pages; ++p) {
    const int valid = p == 4 ? 5 : 8;
    for (int h = 0; h < 2; ++h) {
      const auto mn = meta.MinK(p, h);
      const auto mx = meta.MaxK(p, h);
      for (int t = 0; t < valid; ++t) {
        for (int d = 0; d < 8; ++d) {
          const float k = prob.kv->KAt(pages[static_cast<size_t>(p)], h, t, d);
          EXPECT_GE(k, mn[static_cast<size_t>(d)] - 1e-6f);
          EXPECT_LE(k, mx[static_cast<size_t>(d)] + 1e-6f);
        }
      }
    }
  }
}

TEST(QuestScore, IsUpperBoundOnPageDotProducts) {
  test::ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {64};
  spec.num_qo_heads = 1;
  spec.num_kv_heads = 1;
  spec.head_dim = 16;
  spec.page_size = 16;
  auto prob = test::MakeProblem(spec);
  const auto meta = BuildPageMetadata(*prob.kv, prob.seq_ids[0]);
  const auto q = prob.q.Row(0);
  const auto& pages = prob.kv->SequencePages(prob.seq_ids[0]);
  for (int64_t p = 0; p < meta.num_pages; ++p) {
    const float bound = PageScoreUpperBound({q.data(), 16}, meta.MinK(p, 0), meta.MaxK(p, 0));
    for (int t = 0; t < 16; ++t) {
      float dot = 0;
      for (int d = 0; d < 16; ++d) {
        dot += q[static_cast<size_t>(d)] * prob.kv->KAt(pages[static_cast<size_t>(p)], 0, t, d);
      }
      EXPECT_LE(dot, bound + 1e-4f);
    }
  }
}

TEST(QuestSelect, BudgetRespectedAndSorted) {
  test::ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {256};
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  spec.head_dim = 8;
  spec.page_size = 16;
  auto prob = test::MakeProblem(spec);
  const auto meta = BuildPageMetadata(*prob.kv, prob.seq_ids[0]);
  const auto sel = SelectTopPages(meta, {prob.q.Row(0).data(), prob.q.Row(0).size()}, 2, 5);
  EXPECT_EQ(sel.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  // The newest page must always be kept.
  EXPECT_EQ(sel.back(), static_cast<int>(meta.num_pages - 1));
}

TEST(QuestSelect, SmallCachesKeepEverything) {
  test::ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {48};
  spec.num_qo_heads = 1;
  spec.num_kv_heads = 1;
  spec.head_dim = 8;
  spec.page_size = 16;
  auto prob = test::MakeProblem(spec);
  const auto meta = BuildPageMetadata(*prob.kv, prob.seq_ids[0]);
  const auto sel = SelectTopPages(meta, {prob.q.Row(0).data(), prob.q.Row(0).size()}, 1, 8);
  std::vector<int> all(3);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(sel, all);
}

TEST(QuestSelect, FindsPlantedCriticalPage) {
  // Plant a page whose keys align with q: it must be selected.
  const int head_dim = 16, page_size = 16;
  PagedKVCache cache(DType::kF32, 1, head_dim, page_size, 32);
  Rng rng(3);
  std::vector<float> q(static_cast<size_t>(head_dim));
  for (auto& x : q) x = static_cast<float>(rng.Normal(0, 1));

  const int seq = cache.CreateSequence();
  const int64_t tokens = 16 * page_size;
  std::vector<float> k(static_cast<size_t>(tokens) * head_dim);
  std::vector<float> v(k.size(), 0.0f);
  for (auto& x : k) x = static_cast<float>(rng.Normal(0, 0.1));
  // Page 7 gets q-aligned keys.
  for (int t = 7 * page_size; t < 8 * page_size; ++t) {
    for (int d = 0; d < head_dim; ++d) {
      k[static_cast<size_t>(t * head_dim + d)] = q[static_cast<size_t>(d)];
    }
  }
  cache.AppendTokens(seq, k.data(), v.data(), tokens);
  const auto meta = BuildPageMetadata(cache, seq);
  const auto sel = SelectTopPages(meta, {q.data(), q.size()}, 1, 3);
  EXPECT_TRUE(std::find(sel.begin(), sel.end(), 7) != sel.end());
}

}  // namespace
}  // namespace flashinfer::sparse
