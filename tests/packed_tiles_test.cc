// Packed heterogeneous attention tiles (BackendConfig::packed_tiles).
//
// The knob must be a strict refinement of the baseline: bit-identical when
// it cannot engage (homogeneous batches, bench overrides, knob off) and
// never slower than the average-tile heuristic on the heterogeneous mixes
// it exists for.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "serving/backends.h"

namespace flashinfer::serving {
namespace {

AttnSimInput MixedBatch(int num_decodes, int64_t decode_kv, int64_t chunk_rows,
                        int64_t chunk_kv) {
  AttnSimInput in;
  in.qo_lens.push_back(chunk_rows);
  in.kv_lens.push_back(chunk_kv);
  for (int i = 0; i < num_decodes; ++i) {
    in.qo_lens.push_back(1);
    in.kv_lens.push_back(decode_kv + 37 * i);  // Heterogeneous KV extents.
  }
  return in;
}

void ExpectReportsIdentical(const gpusim::SimReport& a, const gpusim::SimReport& b) {
  EXPECT_EQ(a.time_us, b.time_us);
  EXPECT_EQ(a.num_ctas, b.num_ctas);
  EXPECT_EQ(a.cta_time_us, b.cta_time_us);
  EXPECT_EQ(a.total_hbm_bytes, b.total_hbm_bytes);
  EXPECT_EQ(a.total_tensor_flops, b.total_tensor_flops);
}

TEST(PackedTilesTest, OffMatchesBaselineBitIdentically) {
  const auto dev = gpusim::H100Sxm80GB();
  const auto in = MixedBatch(48, 2048, 1024, 4096);
  BackendConfig off = FlashInferBackend();
  ASSERT_FALSE(off.packed_tiles);  // Default must stay baseline.
  ExpectReportsIdentical(SimulateBatchAttention(dev, off, in),
                         SimulateBatchAttention(dev, FlashInferBackend(), in));
}

TEST(PackedTilesTest, HomogeneousBatchesDoNotEngage) {
  const auto dev = gpusim::H100Sxm80GB();
  BackendConfig packed = FlashInferBackend();
  packed.packed_tiles = true;

  AttnSimInput decode_only;  // All bandwidth-bound: one class, no packing.
  for (int i = 0; i < 64; ++i) {
    decode_only.qo_lens.push_back(1);
    decode_only.kv_lens.push_back(1024 + 64 * i);
  }
  ExpectReportsIdentical(SimulateBatchAttention(dev, packed, decode_only),
                         SimulateBatchAttention(dev, FlashInferBackend(), decode_only));

  AttnSimInput prefill_only;  // All compute-bound: same story.
  for (int i = 0; i < 4; ++i) {
    prefill_only.qo_lens.push_back(1024);
    prefill_only.kv_lens.push_back(4096);
  }
  ExpectReportsIdentical(SimulateBatchAttention(dev, packed, prefill_only),
                         SimulateBatchAttention(dev, FlashInferBackend(), prefill_only));
}

TEST(PackedTilesTest, TileOverrideDisengagesPacking) {
  const auto dev = gpusim::H100Sxm80GB();
  BackendConfig packed = FlashInferBackend();
  packed.packed_tiles = true;
  auto in = MixedBatch(48, 2048, 1024, 4096);
  in.tile_q_override = 64;
  ExpectReportsIdentical(SimulateBatchAttention(dev, packed, in),
                         SimulateBatchAttention(dev, FlashInferBackend(), in));
}

TEST(PackedTilesTest, BeatsAverageHeuristicOnHeterogeneousMixes) {
  const auto dev = gpusim::H100Sxm80GB();
  BackendConfig base = FlashInferBackend();
  BackendConfig packed = base;
  packed.packed_tiles = true;

  // Sweep the decode population: the average-fused-length heuristic lands on
  // a different compromise tile at each point. Packed must never lose (it
  // prices both layouts and keeps the cheaper), and must strictly win on the
  // mid-range mixes where the compromise tile fits neither class.
  bool strict_win = false;
  for (int decodes : {8, 24, 48, 96, 192}) {
    const auto in = MixedBatch(decodes, 3000, 1024, 4096);
    const auto b = SimulateBatchAttention(dev, base, in);
    const auto p = SimulateBatchAttention(dev, packed, in);
    EXPECT_GT(p.time_us, 0.0);
    EXPECT_LE(p.time_us, b.time_us) << "decodes=" << decodes;
    if (p.time_us < b.time_us) strict_win = true;
    // Work is conserved when packed engages: the classes carry the same
    // per-request lengths, only the tile geometry changes (block-granular
    // causal trimming shifts totals slightly with the tile).
    EXPECT_NEAR(p.total_hbm_bytes, b.total_hbm_bytes, 0.1 * b.total_hbm_bytes);
    EXPECT_NEAR(p.total_tensor_flops, b.total_tensor_flops,
                0.15 * b.total_tensor_flops);
  }
  EXPECT_TRUE(strict_win) << "packed layout never engaged across the sweep";
}

TEST(PackedTilesTest, EngagesAcrossBackendsWithoutCrashing) {
  const auto dev = gpusim::H100Sxm80GB();
  const auto in = MixedBatch(32, 2048, 512, 2048);
  for (auto mk : {TritonBackend, FlashAttentionBackend, VllmDefaultBackend}) {
    BackendConfig b = mk();
    b.packed_tiles = true;
    const auto base = SimulateBatchAttention(dev, mk(), in);
    const auto p = SimulateBatchAttention(dev, b, in);
    EXPECT_GT(p.time_us, 0.0);
    EXPECT_LE(p.time_us, base.time_us * 1.05) << mk().name;
  }
}

}  // namespace
}  // namespace flashinfer::serving
