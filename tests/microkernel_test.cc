#include <gtest/gtest.h>

#include "core/contraction.h"
#include "core/microkernel.h"
#include "core/tile_heuristics.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::MaxAbsDiff;
using test::ProblemSpec;
using test::RunSerial;

// ------------------------------------------------------------------ sweeps
struct SweepParam {
  int tile_q;
  int page_size;
  DType dtype;
  int qo_heads;
  int kv_heads;
  bool fusion;
  bool causal;
};

class KernelVsReference : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelVsReference, MatchesDoublePrecisionReference) {
  const auto sp = GetParam();
  ProblemSpec spec;
  spec.qo_lens = {3, 1, 7, 1};
  spec.kv_lens = {19, 6, 33, 1};
  spec.num_qo_heads = sp.qo_heads;
  spec.num_kv_heads = sp.kv_heads;
  spec.head_dim = 16;
  spec.page_size = sp.page_size;
  spec.kv_dtype = sp.dtype;
  spec.tile_q = sp.tile_q;
  spec.head_fusion = sp.fusion;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = sp.causal;

  KernelConfig cfg;
  cfg.tile_q = sp.tile_q;
  cfg.tile_kv = 8;
  cfg.head_fusion = sp.fusion;
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, sp.dtype));

  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  std::vector<float> ref_lse(prob.lse.size(), 0.0f);
  ReferenceAttention<VanillaVariant>(p, &ref_o, &ref_lse);

  EXPECT_LT(MaxAbsDiff(prob.o.data, ref_o.data), 2e-3f);
  EXPECT_LT(MaxAbsDiff(prob.lse, ref_lse), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    TileAndFormat, KernelVsReference,
    ::testing::Values(
        SweepParam{1, 1, DType::kF32, 4, 4, true, true},
        SweepParam{1, 4, DType::kF32, 4, 2, true, true},
        SweepParam{16, 4, DType::kF32, 4, 2, true, true},
        SweepParam{16, 16, DType::kF32, 4, 1, true, false},
        SweepParam{128, 2, DType::kF32, 2, 2, true, true},
        SweepParam{16, 4, DType::kF16, 4, 2, true, true},
        SweepParam{16, 4, DType::kBF16, 4, 2, true, true},
        SweepParam{16, 4, DType::kFP8_E4M3, 4, 2, true, true},
        SweepParam{16, 4, DType::kFP8_E5M2, 4, 2, true, false},
        SweepParam{16, 4, DType::kF32, 8, 2, false, true},   // Fusion off.
        SweepParam{1, 1, DType::kF16, 8, 1, false, false}),  // MQA, no fusion.
    [](const auto& info) {
      const auto& s = info.param;
      return "tq" + std::to_string(s.tile_q) + "_pg" + std::to_string(s.page_size) + "_" +
             std::string(DTypeName(s.dtype)) + "_h" + std::to_string(s.qo_heads) + "x" +
             std::to_string(s.kv_heads) + (s.fusion ? "_fused" : "_unfused") +
             (s.causal ? "_causal" : "_full");
    });

// ------------------------------------------------------- kv tile invariance
class KvTileSweep : public ::testing::TestWithParam<int> {};

TEST_P(KvTileSweep, ResultIndependentOfKvTileSize) {
  ProblemSpec spec;
  spec.qo_lens = {5};
  spec.kv_lens = {41};
  spec.page_size = 4;
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;

  KernelConfig cfg;
  cfg.tile_q = 4;
  cfg.tile_kv = GetParam();
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  const auto baseline = prob.o.data;

  cfg.tile_kv = 64;
  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  EXPECT_LT(MaxAbsDiff(prob.o.data, baseline), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Tiles, KvTileSweep, ::testing::Values(1, 3, 8, 32, 128));

// ----------------------------------------------------------- split + merge
TEST(SplitKv, PartialChunksMergeToWritethroughResult) {
  ProblemSpec spec;
  spec.qo_lens = {2, 1};
  spec.kv_lens = {37, 23};
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.page_size = 4;
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  cfg.tile_kv = 8;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF32);

  // Baseline: writethrough.
  RunSerial(p, cfg, fn);
  const auto baseline = prob.o.data;
  const auto baseline_lse = prob.lse;

  // Split every unit into 3 chunks, run through partial sink + contraction.
  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  std::fill(prob.lse.begin(), prob.lse.end(), 0.0f);
  const auto units = EnumerateWorkUnits(p);
  std::vector<float> partial_o(1 << 16, 0.0f);
  std::vector<float> partial_lse(1 << 10, 0.0f);
  PartialSink sink{partial_o.data(), partial_lse.data()};
  ReductionMap rmap;
  int32_t next = 0;
  for (const auto& u : units) {
    const int64_t step = (u.kv_len + 2) / 3;
    std::vector<int32_t> bases;
    for (int64_t lo = 0; lo < u.kv_len; lo += step) {
      const int64_t hi = std::min(u.kv_len, lo + step);
      WorkItem item{u.block_row, u.request, u.kv_head, u.qo_head, lo, hi, next};
      fn(p, cfg, item, sink, nullptr, nullptr);
      bases.push_back(next);
      next += u.rows;
    }
    // Reduction map rows mirror the scheduler's mapping.
    const auto& bsr = *p.bsr;
    const int g = p.GroupSize();
    const int64_t row0 = bsr.row_start[static_cast<size_t>(u.block_row)];
    for (int i = 0; i < u.rows; ++i) {
      const int64_t local = row0 + i - p.FusedBegin(u.request);
      ReductionMap::Task task;
      task.token_row =
          p.qo_indptr[static_cast<size_t>(u.request)] + (p.head_fusion ? local / g : local);
      task.qo_head = p.head_fusion ? u.kv_head * g + static_cast<int>(local % g) : u.qo_head;
      task.begin = static_cast<int32_t>(rmap.slots.size());
      task.count = static_cast<int32_t>(bases.size());
      for (int32_t b : bases) rmap.slots.push_back(b + i);
      rmap.tasks.push_back(task);
    }
  }
  RunContraction(p, rmap, sink, /*use_softmax=*/true, nullptr, nullptr);

  EXPECT_LT(MaxAbsDiff(prob.o.data, baseline), 1e-4f);
  EXPECT_LT(MaxAbsDiff(prob.lse, baseline_lse), 1e-4f);
}

// ------------------------------------------------------------- empty ranges
TEST(Kernel, EmptyKvProducesZeros) {
  ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {5};
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 16;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF32);
  PartialSink sink;
  // Zero-width chunk: output must be written (zeros), not left stale.
  std::fill(prob.o.data.begin(), prob.o.data.end(), 42.0f);
  WorkItem item{0, 0, 0, -1, 0, 0, -1};
  fn(p, cfg, item, sink, nullptr, nullptr);
  for (float x : prob.o.Row(0)) {
    if (&x - prob.o.Row(0).data() < spec.head_dim) EXPECT_EQ(x, 0.0f);
  }
}

// ------------------------------------------------------------ cost charging
TEST(Kernel, ChargesSimulatedCost) {
  ProblemSpec spec;
  spec.qo_lens = {4};
  spec.kv_lens = {32};
  spec.kv_dtype = DType::kF16;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 16;
  const auto dev = gpusim::A100Sxm40GB();
  CostContext cc;
  cc.dev = &dev;
  cc.kv_bytes = 2;
  cc.eff = EfficiencyModel(dev, cfg, spec.head_dim, 2);
  gpusim::CtaCost cost;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF16);
  const auto units = EnumerateWorkUnits(p);
  PartialSink sink;
  for (const auto& u : units) {
    WorkItem item{u.block_row, u.request, u.kv_head, u.qo_head, 0, u.kv_len, -1};
    fn(p, cfg, item, sink, &cost, &cc);
  }
  EXPECT_GT(cost.time_us, 0.0);
  // KV bytes: 32 tokens x 2(K,V) x 16 dim x 2B per kv head x 2 units (2 kv heads).
  const double expected_kv = 2.0 * 32 * 2 * 16 * 2;
  EXPECT_GE(cost.total.hbm_bytes, expected_kv);
  EXPECT_GT(cost.total.tensor_flops, 0.0);
}

TEST(Kernel, L2FractionRedirectsTraffic) {
  ProblemSpec spec;
  spec.qo_lens = {1};
  spec.kv_lens = {64};
  spec.kv_dtype = DType::kF16;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  const auto dev = gpusim::A100Sxm40GB();
  CostContext cc;
  cc.dev = &dev;
  cc.kv_bytes = 2;
  cc.eff = gpusim::KernelEfficiency{1.0, 1.0, 1.0};
  cc.kv_l2_fraction = 0.5;
  gpusim::CtaCost cost;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF16);
  WorkItem item{0, 0, 0, -1, 0, 64, -1};
  fn(p, cfg, item, PartialSink{}, &cost, &cc);
  EXPECT_GT(cost.total.l2_bytes, 0.0);
  const double kv_bytes = 64.0 * 2 * spec.head_dim * 2;
  EXPECT_NEAR(cost.total.l2_bytes, kv_bytes * 0.5, 1.0);
}

}  // namespace
}  // namespace flashinfer
