#include <gtest/gtest.h>

#include <map>
#include <set>

#include "runtime/scheduler.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::ProblemSpec;

ProblemSpec SkewedSpec() {
  ProblemSpec spec;
  spec.qo_lens = {1, 1, 1, 1, 1, 1, 1, 1};
  spec.kv_lens = {400, 3, 5, 2, 7, 4, 6, 3};  // One giant, seven tiny.
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  spec.page_size = 4;
  spec.tile_q = 1;
  return spec;
}

/// Collects (block_row, head, kv position) coverage from a plan.
std::map<std::tuple<int, int, int>, std::vector<std::pair<int64_t, int64_t>>> Coverage(
    const Plan& plan) {
  std::map<std::tuple<int, int, int>, std::vector<std::pair<int64_t, int64_t>>> cov;
  for (const auto& queue : plan.cta_queues) {
    for (const auto& item : queue) {
      cov[{item.block_row, item.kv_head, item.qo_head}].push_back(
          {item.kv_begin, item.kv_end});
    }
  }
  return cov;
}

TEST(BalancedPlan, CoversEveryUnitExactlyOnce) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const auto plan = MakeBalancedPlan(p, cfg, 8, 1 << 20);

  auto cov = Coverage(plan);
  const auto units = EnumerateWorkUnits(p);
  EXPECT_EQ(cov.size(), units.size());
  for (const auto& u : units) {
    auto ranges = cov.at({u.block_row, u.kv_head, u.qo_head});
    std::sort(ranges.begin(), ranges.end());
    // Ranges tile [0, kv_len) without gaps or overlaps.
    int64_t cursor = 0;
    for (const auto& [lo, hi] : ranges) {
      EXPECT_EQ(lo, cursor);
      EXPECT_LT(lo, hi);
      cursor = hi;
    }
    EXPECT_EQ(cursor, u.kv_len);
  }
}

TEST(BalancedPlan, BalancesSkewedWork) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const int ctas = 8;
  const auto balanced = MakeBalancedPlan(p, cfg, ctas, 1 << 20);
  const auto naive = MakeNaivePlan(p, cfg);

  // Balanced: the 400-token request splits across CTAs, so the busiest CTA
  // carries far less than the whole request.
  const double balanced_max = balanced.MaxCtaCost(cfg.tile_q);
  double naive_max = 0;
  for (const auto& q : naive.cta_queues) {
    double c = 0;
    for (const auto& it : q) c += static_cast<double>(it.kv_end - it.kv_begin);
    naive_max = std::max(naive_max, c);
  }
  EXPECT_LT(balanced_max, naive_max * 0.5);
  // And the spread between busiest and idlest CTA is bounded by one chunk.
  EXPECT_LE(balanced_max - balanced.MinCtaCost(cfg.tile_q),
            static_cast<double>(balanced.lkv_chunk) + cfg.tile_q + 1.0);
}

TEST(BalancedPlan, ChunkCapMatchesAlgorithmLine3) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const int ctas = 8;
  const auto plan = MakeBalancedPlan(p, cfg, ctas, 1 << 20);
  int64_t total_kv = 0;
  for (const auto& u : EnumerateWorkUnits(p)) total_kv += u.kv_len;
  const int64_t expect =
      ((total_kv + ctas - 1) / ctas + cfg.tile_kv - 1) / cfg.tile_kv * cfg.tile_kv;
  EXPECT_EQ(plan.lkv_chunk, expect);
  for (const auto& queue : plan.cta_queues) {
    for (const auto& item : queue) {
      EXPECT_LE(item.kv_end - item.kv_begin, plan.lkv_chunk);
    }
  }
}

TEST(BalancedPlan, Deterministic) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const auto a = MakeBalancedPlan(p, cfg, 6, 1 << 20);
  const auto b = MakeBalancedPlan(p, cfg, 6, 1 << 20);
  ASSERT_EQ(a.cta_queues.size(), b.cta_queues.size());
  for (size_t c = 0; c < a.cta_queues.size(); ++c) {
    ASSERT_EQ(a.cta_queues[c].size(), b.cta_queues[c].size());
    for (size_t i = 0; i < a.cta_queues[c].size(); ++i) {
      EXPECT_EQ(a.cta_queues[c][i].block_row, b.cta_queues[c][i].block_row);
      EXPECT_EQ(a.cta_queues[c][i].kv_begin, b.cta_queues[c][i].kv_begin);
      EXPECT_EQ(a.cta_queues[c][i].dest, b.cta_queues[c][i].dest);
    }
  }
  // Reduction maps identical too.
  ASSERT_EQ(a.rmap.tasks.size(), b.rmap.tasks.size());
  EXPECT_EQ(a.rmap.slots, b.rmap.slots);
}

TEST(BalancedPlan, WritethroughForUnsplitUnits) {
  // Uniform tiny requests: nothing splits, everything writes through.
  ProblemSpec spec;
  spec.qo_lens = {1, 1, 1, 1};
  spec.kv_lens = {8, 8, 8, 8};
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  spec.tile_q = 1;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 16;
  const auto plan = MakeBalancedPlan(p, cfg, 4, 1 << 20);
  EXPECT_EQ(plan.num_partial_rows, 0);
  EXPECT_TRUE(plan.rmap.Empty());
  for (const auto& q : plan.cta_queues) {
    for (const auto& it : q) EXPECT_EQ(it.dest, -1);
  }
}

TEST(BalancedPlan, PartialRowsWithinAppendixD3Bound) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  for (int ctas : {2, 4, 16, 64}) {
    const auto plan = MakeBalancedPlan(p, cfg, ctas, 1 << 30);
    EXPECT_LE(plan.num_partial_rows, 2LL * ctas * cfg.tile_q)
        << "ctas=" << ctas;
  }
}

TEST(BalancedPlan, ReductionMapBijective) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const auto plan = MakeBalancedPlan(p, cfg, 8, 1 << 20);

  // Every partial row appears in exactly one merge task.
  std::set<int32_t> seen;
  for (int32_t s : plan.rmap.slots) {
    EXPECT_TRUE(seen.insert(s).second) << "slot " << s << " referenced twice";
    EXPECT_LT(s, plan.num_partial_rows);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), plan.num_partial_rows);

  // No merge task targets an output also written through.
  std::set<std::pair<int64_t, int>> merged_outputs;
  for (const auto& t : plan.rmap.tasks) {
    EXPECT_TRUE(merged_outputs.insert({t.token_row, t.qo_head}).second);
  }
}

TEST(NaivePlan, OneCtaPerUnitNoSplits) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  const auto plan = MakeNaivePlan(p, cfg);
  EXPECT_EQ(plan.NumWorkItems(), static_cast<int64_t>(EnumerateWorkUnits(p).size()));
  EXPECT_EQ(plan.NumCtas(), static_cast<int>(plan.NumWorkItems()));
  EXPECT_TRUE(plan.rmap.Empty());
}

TEST(FixedSplitPlan, SplitsLongRequests) {
  auto prob = MakeProblem(SkewedSpec());
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  cfg.tile_kv = 4;
  const auto plan = MakeFixedSplitPlan(p, cfg, 8, 4, 1 << 20);
  auto cov = Coverage(plan);
  // The 400-token unit must be in 4 chunks; 3-token units in 1.
  bool found_long = false;
  for (const auto& [key, ranges] : cov) {
    int64_t total = 0;
    for (auto [lo, hi] : ranges) total += hi - lo;
    if (total == 400) {
      EXPECT_EQ(ranges.size(), 4u);
      found_long = true;
    }
    if (total == 3) EXPECT_EQ(ranges.size(), 1u);
  }
  EXPECT_TRUE(found_long);
}

TEST(EnumerateUnits, HeadFusionChangesMultiplicity) {
  ProblemSpec spec;
  spec.qo_lens = {2};
  spec.kv_lens = {8};
  spec.num_qo_heads = 8;
  spec.num_kv_heads = 2;
  spec.tile_q = 16;

  spec.head_fusion = true;
  auto fused = MakeProblem(spec);
  auto pf = fused.Params();
  EXPECT_EQ(EnumerateWorkUnits(pf).size(), 2u * 1);  // kv heads x 1 tile.

  spec.head_fusion = false;
  auto unfused = MakeProblem(spec);
  auto pu = unfused.Params();
  EXPECT_EQ(EnumerateWorkUnits(pu).size(), 8u * 1);  // qo heads x 1 tile.
}

TEST(BalancedPlan, ZeroLengthKvHandled) {
  ProblemSpec spec;
  spec.qo_lens = {1, 1};
  spec.kv_lens = {0, 6};
  spec.num_qo_heads = 1;
  spec.num_kv_heads = 1;
  spec.tile_q = 1;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  const auto plan = MakeBalancedPlan(p, cfg, 2, 1 << 20);
  // Both units present; the empty one is a zero-width writethrough item.
  EXPECT_EQ(plan.NumWorkItems(), 2);
}

}  // namespace
}  // namespace flashinfer
