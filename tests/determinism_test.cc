// Determinism guarantees (Sec. 3.3.1): LLM serving requires deterministic
// outputs, so FlashInfer avoids atomic aggregation — identical sequence
// lengths must produce identical plans and BIT-IDENTICAL outputs, regardless
// of thread scheduling in the executor.
#include <gtest/gtest.h>

#include "runtime/batch_handle.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::ProblemSpec;

ProblemSpec Spec() {
  ProblemSpec spec;
  spec.qo_lens = {1, 1, 1, 1};
  spec.kv_lens = {900, 17, 333, 61};  // Forces splitting + merging.
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.head_dim = 16;
  spec.page_size = 4;
  return spec;
}

std::vector<float> RunOnce(SchedulerKind kind, uint64_t seed) {
  auto spec = Spec();
  spec.seed = seed;
  Workspace ws(Workspace::EstimateBytes(512, 64, spec.head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = spec.kv_dtype;
  info.num_qo_heads = spec.num_qo_heads;
  info.num_kv_heads = spec.num_kv_heads;
  info.head_dim = spec.head_dim;
  info.scheduler = kind;
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.MutableVariantParams() = prob.Params().variant;
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse);
  return prob.o.data;
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  // The thread pool executes CTAs in arbitrary order; the merge order is
  // fixed by the reduction map, so floating-point results cannot wobble.
  const auto a = RunOnce(SchedulerKind::kBalanced, 7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto b = RunOnce(SchedulerKind::kBalanced, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "element " << i << " trial " << trial;
    }
  }
}

TEST(Determinism, FixedSplitAlsoBitIdentical) {
  const auto a = RunOnce(SchedulerKind::kFixedSplit, 11);
  const auto b = RunOnce(SchedulerKind::kFixedSplit, 11);
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Determinism, PlanIdenticalForIdenticalLengths) {
  // Two handles fed the same sequence lengths build identical work queues
  // (the paper: "deterministic aggregation order when provided with
  // identical sequence length information").
  auto spec = Spec();
  Workspace ws1(Workspace::EstimateBytes(512, 64, spec.head_dim));
  Workspace ws2(Workspace::EstimateBytes(512, 64, spec.head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = spec.kv_dtype;
  info.num_qo_heads = spec.num_qo_heads;
  info.num_kv_heads = spec.num_kv_heads;
  info.head_dim = spec.head_dim;
  BatchAttentionHandle h1(gpusim::H100Sxm80GB(), info, &ws1);
  BatchAttentionHandle h2(gpusim::H100Sxm80GB(), info, &ws2);
  spec.tile_q = h1.config().tile_q;
  auto prob = MakeProblem(spec);
  h1.MutableVariantParams() = prob.Params().variant;
  h2.MutableVariantParams() = prob.Params().variant;
  h1.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  h2.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  const auto& p1 = h1.plan();
  const auto& p2 = h2.plan();
  ASSERT_EQ(p1.cta_queues.size(), p2.cta_queues.size());
  for (size_t c = 0; c < p1.cta_queues.size(); ++c) {
    ASSERT_EQ(p1.cta_queues[c].size(), p2.cta_queues[c].size());
    for (size_t i = 0; i < p1.cta_queues[c].size(); ++i) {
      EXPECT_EQ(p1.cta_queues[c][i].kv_begin, p2.cta_queues[c][i].kv_begin);
      EXPECT_EQ(p1.cta_queues[c][i].dest, p2.cta_queues[c][i].dest);
    }
  }
  EXPECT_EQ(p1.rmap.slots, p2.rmap.slots);
}

}  // namespace
}  // namespace flashinfer
