// Determinism guarantees (Sec. 3.3.1): LLM serving requires deterministic
// outputs, so FlashInfer avoids atomic aggregation — identical sequence
// lengths must produce identical plans and BIT-IDENTICAL outputs, regardless
// of thread scheduling in the executor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "runtime/batch_handle.h"
#include "serving/workload.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::ProblemSpec;

ProblemSpec Spec() {
  ProblemSpec spec;
  spec.qo_lens = {1, 1, 1, 1};
  spec.kv_lens = {900, 17, 333, 61};  // Forces splitting + merging.
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.head_dim = 16;
  spec.page_size = 4;
  return spec;
}

std::vector<float> RunOnce(SchedulerKind kind, uint64_t seed) {
  auto spec = Spec();
  spec.seed = seed;
  Workspace ws(Workspace::EstimateBytes(512, 64, spec.head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = spec.kv_dtype;
  info.num_qo_heads = spec.num_qo_heads;
  info.num_kv_heads = spec.num_kv_heads;
  info.head_dim = spec.head_dim;
  info.scheduler = kind;
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &ws);
  spec.tile_q = handle.config().tile_q;
  auto prob = MakeProblem(spec);
  handle.MutableVariantParams() = prob.Params().variant;
  handle.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  handle.Run(prob.q, *prob.kv, &prob.o, &prob.lse);
  return prob.o.data;
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  // The thread pool executes CTAs in arbitrary order; the merge order is
  // fixed by the reduction map, so floating-point results cannot wobble.
  const auto a = RunOnce(SchedulerKind::kBalanced, 7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto b = RunOnce(SchedulerKind::kBalanced, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "element " << i << " trial " << trial;
    }
  }
}

TEST(Determinism, FixedSplitAlsoBitIdentical) {
  const auto a = RunOnce(SchedulerKind::kFixedSplit, 11);
  const auto b = RunOnce(SchedulerKind::kFixedSplit, 11);
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Determinism, PlanIdenticalForIdenticalLengths) {
  // Two handles fed the same sequence lengths build identical work queues
  // (the paper: "deterministic aggregation order when provided with
  // identical sequence length information").
  auto spec = Spec();
  Workspace ws1(Workspace::EstimateBytes(512, 64, spec.head_dim));
  Workspace ws2(Workspace::EstimateBytes(512, 64, spec.head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = spec.kv_dtype;
  info.num_qo_heads = spec.num_qo_heads;
  info.num_kv_heads = spec.num_kv_heads;
  info.head_dim = spec.head_dim;
  BatchAttentionHandle h1(gpusim::H100Sxm80GB(), info, &ws1);
  BatchAttentionHandle h2(gpusim::H100Sxm80GB(), info, &ws2);
  spec.tile_q = h1.config().tile_q;
  auto prob = MakeProblem(spec);
  h1.MutableVariantParams() = prob.Params().variant;
  h2.MutableVariantParams() = prob.Params().variant;
  h1.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  h2.Plan(&prob.bsr, prob.qo_indptr, spec.kv_lens);
  const auto& p1 = h1.plan();
  const auto& p2 = h2.plan();
  ASSERT_EQ(p1.cta_queues.size(), p2.cta_queues.size());
  for (size_t c = 0; c < p1.cta_queues.size(); ++c) {
    ASSERT_EQ(p1.cta_queues[c].size(), p2.cta_queues[c].size());
    for (size_t i = 0; i < p1.cta_queues[c].size(); ++i) {
      EXPECT_EQ(p1.cta_queues[c][i].kv_begin, p2.cta_queues[c][i].kv_begin);
      EXPECT_EQ(p1.cta_queues[c][i].dest, p2.cta_queues[c][i].dest);
    }
  }
  EXPECT_EQ(p1.rmap.slots, p2.rmap.slots);
}

// --- Threaded cluster driver -------------------------------------------------
//
// The same guarantee one level up: ClusterEngine's replica fan-out may run on
// any number of pool threads, and a seeded run must produce byte-identical
// metrics, traces, and telemetry. The config deliberately lights up the
// stateful subsystems (chunking, preemption with overlapped swap, tracing,
// telemetry) so divergence anywhere would surface.

struct ClusterRunResult {
  cluster::ClusterMetrics metrics;
  std::vector<obs::TraceTrack> trace;
  std::string telemetry_json;
};

ClusterRunResult RunCluster(int step_threads) {
  serving::EngineConfig ecfg;
  ecfg.model = serving::Llama31_8B();
  ecfg.device = gpusim::H100Sxm80GB();
  ecfg.backend = serving::FlashInferBackend();
  ecfg.prefill_chunk_tokens = 1024;
  ecfg.preemption.enabled = true;
  ecfg.preemption.restore = serving::RestorePolicy::kAuto;
  ecfg.preemption.overlap_swap = true;
  // Budget sized to ~8000 KV tokens per replica: forces eviction traffic at
  // the per-replica load below (the preempt_test pressure recipe, x8).
  const double kv_bytes =
      8000.0 * ecfg.model.KvBytesPerToken(ecfg.backend.kv_dtype) / 0.9;
  ecfg.hbm_capacity_gb = (ecfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
  ecfg.trace.enabled = true;
  ecfg.trace.capacity = 8192;
  ecfg.telemetry.enabled = true;

  cluster::ClusterConfig cfg;
  cfg.engine = ecfg;
  cfg.num_replicas = 8;
  cfg.policy = cluster::RouterPolicy::kLeastLoaded;
  cfg.step_threads = step_threads;

  Rng rng(0xD17E2);
  auto reqs = serving::UniformWorkload(rng, 8 * 40, 8 * 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});

  cluster::ClusterEngine engine(cfg);
  ClusterRunResult out;
  out.metrics = engine.Run(reqs);
  out.trace = engine.LastTrace();
  out.telemetry_json = engine.Telemetry()->JsonSnapshot(out.metrics.makespan_s);
  return out;
}

void ExpectServingMetricsIdentical(const serving::ServingMetrics& a,
                                   const serving::ServingMetrics& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.total_prefill_tokens, b.total_prefill_tokens);
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
  EXPECT_EQ(a.evicted_pages, b.evicted_pages);
  EXPECT_EQ(a.restored_pages, b.restored_pages);
  EXPECT_EQ(a.preempt_stall_steps, b.preempt_stall_steps);
  EXPECT_DOUBLE_EQ(a.total_swap_ms, b.total_swap_ms);
  EXPECT_DOUBLE_EQ(a.swap_hidden_ms, b.swap_hidden_ms);
  EXPECT_DOUBLE_EQ(a.swap_stall_ms, b.swap_stall_ms);
  EXPECT_DOUBLE_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_DOUBLE_EQ(a.total_gemm_ms, b.total_gemm_ms);
  EXPECT_DOUBLE_EQ(a.total_host_ms, b.total_host_ms);
  EXPECT_DOUBLE_EQ(a.total_idle_s, b.total_idle_s);
  ASSERT_EQ(a.ttft_ms.size(), b.ttft_ms.size());
  for (size_t i = 0; i < a.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ttft_ms[i], b.ttft_ms[i]) << "ttft " << i;
  }
  ASSERT_EQ(a.itl_ms.size(), b.itl_ms.size());
  for (size_t i = 0; i < a.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.itl_ms[i], b.itl_ms[i]) << "itl " << i;
  }
}

TEST(Determinism, ThreadedClusterRunBitIdentical) {
  const auto serial = RunCluster(/*step_threads=*/1);
  ASSERT_GT(serial.metrics.aggregate.num_preemptions, 0)
      << "config must exercise the overlapped-swap machinery";
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("step_threads=" + std::to_string(threads));
    const auto parallel = RunCluster(threads);

    ExpectServingMetricsIdentical(serial.metrics.aggregate,
                                  parallel.metrics.aggregate);
    ASSERT_EQ(serial.metrics.per_replica.size(), parallel.metrics.per_replica.size());
    for (size_t i = 0; i < serial.metrics.per_replica.size(); ++i) {
      ExpectServingMetricsIdentical(serial.metrics.per_replica[i],
                                    parallel.metrics.per_replica[i]);
    }
    EXPECT_EQ(serial.metrics.replica_requests, parallel.metrics.replica_requests);
    EXPECT_DOUBLE_EQ(serial.metrics.load_imbalance, parallel.metrics.load_imbalance);
    EXPECT_DOUBLE_EQ(serial.metrics.prefix_hit_rate, parallel.metrics.prefix_hit_rate);

    // Merged traces: identical track layout and event streams, field by field.
    ASSERT_EQ(serial.trace.size(), parallel.trace.size());
    for (size_t t = 0; t < serial.trace.size(); ++t) {
      EXPECT_EQ(serial.trace[t].name, parallel.trace[t].name);
      const auto& ea = serial.trace[t].events;
      const auto& eb = parallel.trace[t].events;
      ASSERT_EQ(ea.size(), eb.size()) << "track " << serial.trace[t].name;
      for (size_t e = 0; e < ea.size(); ++e) {
        EXPECT_EQ(ea[e].ts_us, eb[e].ts_us);
        EXPECT_EQ(ea[e].dur_us, eb[e].dur_us);
        EXPECT_EQ(ea[e].name, eb[e].name);
        EXPECT_EQ(ea[e].req, eb[e].req);
        EXPECT_EQ(ea[e].a, eb[e].a);
        EXPECT_EQ(ea[e].b, eb[e].b);
        EXPECT_EQ(ea[e].c, eb[e].c);
        EXPECT_EQ(ea[e].v, eb[e].v);
      }
    }

    // Telemetry: the merged registry serializes to the same bytes.
    EXPECT_EQ(serial.telemetry_json, parallel.telemetry_json);
  }
}

}  // namespace
}  // namespace flashinfer
