// Workspace layout invariants (Appendix D.1/D.3).
#include <gtest/gtest.h>

#include "core/tile_heuristics.h"
#include "runtime/workspace.h"

namespace flashinfer {
namespace {

TEST(Workspace, SectionPointersStableAcrossRebind) {
  Workspace ws(Workspace::EstimateBytes(132, 16, 128));
  ws.Bind(128);
  const void* base = ws.Base();
  float* o = ws.PartialO();
  float* lse = ws.PartialLse();
  // Re-binding with the same head_dim must not move anything (CUDA-graph
  // requirement: captured pointers stay valid across plan() calls).
  ws.Bind(128);
  EXPECT_EQ(ws.Base(), base);
  EXPECT_EQ(ws.PartialO(), o);
  EXPECT_EQ(ws.PartialLse(), lse);
}

TEST(Workspace, CapacityScalesWithCtasAndTile) {
  const int64_t small = Workspace::EstimateBytes(132, 1, 128);
  const int64_t big = Workspace::EstimateBytes(132, 128, 128);
  EXPECT_GT(big, small);
  Workspace ws(big);
  ws.Bind(128);
  EXPECT_GE(ws.MaxPartialRows(), 2 * 132 * 128);
}

TEST(Workspace, PartialSectionsDoNotOverlap) {
  Workspace ws(Workspace::EstimateBytes(64, 16, 64));
  ws.Bind(64);
  // LSE section starts exactly after max_rows * head_dim floats of O.
  EXPECT_EQ(ws.PartialLse(), ws.PartialO() + ws.MaxPartialRows() * 64);
  // Plan region precedes the partial sections.
  EXPECT_LT(static_cast<const void*>(ws.PlanRegion()),
            static_cast<const void*>(ws.PartialO()));
}

TEST(Workspace, RebindWithDifferentHeadDimAdjustsCapacity) {
  Workspace ws(Workspace::EstimateBytes(64, 16, 256));
  ws.Bind(64);
  const int64_t rows64 = ws.MaxPartialRows();
  ws.Bind(256);
  EXPECT_LT(ws.MaxPartialRows(), rows64);  // Wider rows, fewer of them.
}

TEST(TileHeuristics, QueryTileSelection) {
  EXPECT_EQ(SelectQueryTileSize(0.5), 1);
  EXPECT_EQ(SelectQueryTileSize(1.0), 1);
  EXPECT_EQ(SelectQueryTileSize(4.0), 16);
  EXPECT_EQ(SelectQueryTileSize(17.0), 32);
  EXPECT_EQ(SelectQueryTileSize(100.0), 128);
  EXPECT_EQ(SelectQueryTileSize(100000.0), 128);
}

TEST(TileHeuristics, DecodeFallsBackToFa2OnHopper) {
  // Short query tiles cannot use WGMMA: Hopper decode runs the FA2 template.
  const auto dev = gpusim::H100Sxm80GB();
  const auto decode = SelectKernelConfig(dev, 1.0, 128, 2, true);
  EXPECT_EQ(decode.tmpl, gpusim::TemplateGen::kFA2);
  const auto prefill = SelectKernelConfig(dev, 1024.0, 128, 2, true);
  EXPECT_EQ(prefill.tmpl, gpusim::TemplateGen::kFA3);
  EXPECT_EQ(prefill.tile_q, 128);
}

TEST(TileHeuristics, OccupancyDropsWithTileSize) {
  const auto dev = gpusim::A100Sxm40GB();
  KernelConfig small;
  small.tile_q = 1;
  small.tile_kv = 32;
  KernelConfig big;
  big.tile_q = 128;
  big.tile_kv = 128;
  EXPECT_GT(OccupancyModel(dev, small, 128, 2).ctas_per_sm,
            OccupancyModel(dev, big, 128, 2).ctas_per_sm);
}

TEST(TileHeuristics, SparsePaysEfficiencyPenaltyOnHopper) {
  const auto dev = gpusim::H100Sxm80GB();
  KernelConfig cfg;
  cfg.tile_q = 128;
  cfg.tile_kv = 64;
  cfg.tmpl = gpusim::TemplateGen::kFA3;
  cfg.sparse = false;
  const auto dense = EfficiencyModel(dev, cfg, 128, 2);
  cfg.sparse = true;
  const auto sparse = EfficiencyModel(dev, cfg, 128, 2);
  EXPECT_GT(dense.compute, sparse.compute);   // ~1.18x (Fig. 12).
  EXPECT_GT(dense.mem, sparse.mem);           // TMA vs async-copy.
  EXPECT_LT(dense.compute / sparse.compute, 1.4);
}

TEST(TileHeuristics, ResidencyModelShapes) {
  const auto dev = gpusim::H100Sxm80GB();
  // Grid smaller than the machine: one CTA per SM, slots = #SM.
  const auto small = ResidencyModel(dev, gpusim::Occupancy{3}, 64);
  EXPECT_EQ(small.resident, 1);
  EXPECT_EQ(small.slots, dev.num_sms);
  // Oversubscribed grid saturates at the occupancy cap.
  const auto big = ResidencyModel(dev, gpusim::Occupancy{3}, 10000);
  EXPECT_EQ(big.resident, 3);
  EXPECT_EQ(big.slots, 3 * dev.num_sms);
  // Memory derating follows capability, not the grid.
  EXPECT_DOUBLE_EQ(small.mem_scale, big.mem_scale);
  EXPECT_LT(ResidencyModel(dev, gpusim::Occupancy{1}, 10000).mem_scale, small.mem_scale);
}

}  // namespace
}  // namespace flashinfer
