#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "util/float_types.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace flashinfer {
namespace {

// ---------------------------------------------------------------- float16
TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(static_cast<float>(half_t(static_cast<float>(i))), static_cast<float>(i));
  }
}

TEST(Half, RoundTripPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(static_cast<float>(half_t(v)), v);
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even -> 1.0.
  EXPECT_EQ(static_cast<float>(half_t(1.0f + std::ldexp(1.0f, -11))), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(static_cast<float>(half_t(1.0f + 3 * std::ldexp(1.0f, -11))),
            1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, OverflowToInf) {
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t(70000.0f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(half_t(-70000.0f))));
  EXPECT_LT(static_cast<float>(half_t(-70000.0f)), 0.0f);
}

TEST(Half, MaxFinite) { EXPECT_EQ(static_cast<float>(half_t(65504.0f)), 65504.0f); }

TEST(Half, Subnormals) {
  const float tiny = std::ldexp(1.0f, -24);  // Smallest subnormal.
  EXPECT_EQ(static_cast<float>(half_t(tiny)), tiny);
  EXPECT_EQ(static_cast<float>(half_t(tiny / 4)), 0.0f);  // Underflow.
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(static_cast<float>(half_t(std::nanf("")))));
}

TEST(Half, RoundTripAllBitPatterns) {
  // Every finite half value must convert to float and back bit-exactly.
  for (uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = half_t::FromBits(static_cast<uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    const auto h2 = half_t(f);
    EXPECT_EQ(h2.bits, h.bits) << "bits=" << bits;
  }
}

// ---------------------------------------------------------------- bfloat16
TEST(Bf16, RoundTripAllBitPatterns) {
  for (uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = bf16_t::FromBits(static_cast<uint16_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(bf16_t(f).bits, h.bits) << "bits=" << bits;
  }
}

TEST(Bf16, KeepsFloatRange) {
  // bf16 shares float's exponent range: 3e38 stays finite (unlike fp16).
  const float v = static_cast<float>(bf16_t(3.0e38f));
  EXPECT_FALSE(std::isinf(v));
  EXPECT_NEAR(v, 3.0e38f, 3.0e38f * 0.01f);  // Within one mantissa step.
}

// ---------------------------------------------------------------- fp8
TEST(Fp8E4M3, KnownValues) {
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(1.0f)), 1.0f);
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(-2.0f)), -2.0f);
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(448.0f)), 448.0f);  // Max finite.
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(0.0625f)), 0.0625f);
}

TEST(Fp8E4M3, SaturatesInsteadOfInf) {
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(1e9f)), 448.0f);
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(-1e9f)), -448.0f);
  EXPECT_EQ(static_cast<float>(fp8_e4m3_t(std::numeric_limits<float>::infinity())), 448.0f);
}

TEST(Fp8E4M3, NanEncoding) {
  EXPECT_TRUE(std::isnan(static_cast<float>(fp8_e4m3_t(std::nanf("")))));
}

TEST(Fp8E4M3, RoundTripAllBitPatterns) {
  for (uint32_t bits = 0; bits < 256; ++bits) {
    const auto h = fp8_e4m3_t::FromBits(static_cast<uint8_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(fp8_e4m3_t(f).bits, h.bits) << "bits=" << bits << " f=" << f;
  }
}

TEST(Fp8E5M2, RoundTripAllBitPatterns) {
  for (uint32_t bits = 0; bits < 256; ++bits) {
    const auto h = fp8_e5m2_t::FromBits(static_cast<uint8_t>(bits));
    const float f = static_cast<float>(h);
    if (std::isnan(f)) continue;
    if (std::isinf(f)) {
      EXPECT_TRUE(std::isinf(static_cast<float>(fp8_e5m2_t(f))));
      continue;
    }
    EXPECT_EQ(fp8_e5m2_t(f).bits, h.bits) << "bits=" << bits << " f=" << f;
  }
}

TEST(Fp8E5M2, MaxFinite) {
  EXPECT_EQ(static_cast<float>(fp8_e5m2_t(57344.0f)), 57344.0f);
  EXPECT_EQ(static_cast<float>(fp8_e5m2_t(60000.0f)), 57344.0f);  // Saturate.
}

TEST(Fp8, QuantizationErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.Normal(0.0, 2.0));
    const float q = static_cast<float>(fp8_e4m3_t(v));
    // e4m3 relative step is 2^-3 for normals.
    EXPECT_LE(std::fabs(q - v), std::max(std::fabs(v) * 0.0625f, 0.002f)) << v;
  }
}

TEST(DTypeTraits, BytesAndNames) {
  EXPECT_EQ(DTypeBytes(DType::kF32), 4);
  EXPECT_EQ(DTypeBytes(DType::kF16), 2);
  EXPECT_EQ(DTypeBytes(DType::kBF16), 2);
  EXPECT_EQ(DTypeBytes(DType::kFP8_E4M3), 1);
  EXPECT_EQ(DTypeName(DType::kFP8_E4M3), "e4m3");
}

// ---------------------------------------------------------------- rng
TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Zipf, RankOneMostLikely) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
}

TEST(Zipf, LengthsHitTargetMean) {
  Rng rng(19);
  const auto lens = ZipfLengths(rng, 20000, 1024.0, 1.2, 16);
  double sum = 0.0;
  for (int l : lens) sum += l;
  const double mean = sum / static_cast<double>(lens.size());
  EXPECT_GT(mean, 650.0);
  EXPECT_LT(mean, 1600.0);
}

// ---------------------------------------------------------------- threadpool
TEST(ThreadPool, AllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedCallsRunSerially) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ManySmallLaunches) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    pool.ParallelFor(7, [&](int64_t) { n++; });
    ASSERT_EQ(n.load(), 7);
  }
}

// ---------------------------------------------------------------- table
TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.AddRow({"alpha", "1.00"});
  t.AddRow({"beta-long-name", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("beta-long-name"), std::string::npos);
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::SignedPct(13.731, 2), "+13.73%");
  EXPECT_EQ(AsciiTable::SignedPct(-2.0, 2), "-2.00%");
}

}  // namespace
}  // namespace flashinfer
