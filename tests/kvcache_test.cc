#include <gtest/gtest.h>

#include <cmath>

#include "kvcache/paged.h"
#include "kvcache/ragged.h"
#include "util/rng.h"

namespace flashinfer {
namespace {

TEST(Ragged, BuildIndptrAndZeros) {
  const auto indptr = BuildIndptr({3, 0, 2});
  EXPECT_EQ(indptr, (std::vector<int64_t>{0, 3, 3, 5}));
  auto t = RaggedTensor::Zeros(indptr, 4);
  EXPECT_EQ(t.NumRows(), 5);
  EXPECT_EQ(t.NumRequests(), 3);
  EXPECT_EQ(t.data.size(), 20u);
  t.Row(2)[1] = 7.0f;
  EXPECT_EQ(t.data[9], 7.0f);
}

TEST(Paged, AllocFreeAccounting) {
  PagedKVCache kv(DType::kF32, 2, 4, 4, 8);
  EXPECT_EQ(kv.num_free_pages(), 8);
  const int64_t p0 = kv.AllocPage();
  const int64_t p1 = kv.AllocPage();
  EXPECT_NE(p0, p1);
  EXPECT_EQ(kv.num_live_pages(), 2);
  kv.ReleasePage(p0);
  EXPECT_EQ(kv.num_free_pages(), 7);
  kv.ReleasePage(p1);
  EXPECT_EQ(kv.num_free_pages(), 8);
}

TEST(Paged, RefCountingSharedPages) {
  PagedKVCache kv(DType::kF32, 1, 4, 4, 4);
  const int64_t p = kv.AllocPage();
  kv.RetainPage(p);
  EXPECT_EQ(kv.RefCount(p), 2);
  kv.ReleasePage(p);
  EXPECT_EQ(kv.num_free_pages(), 3);  // Still held.
  kv.ReleasePage(p);
  EXPECT_EQ(kv.num_free_pages(), 4);
}

TEST(Paged, AppendAllocatesOnPageBoundaries) {
  PagedKVCache kv(DType::kF32, 1, 2, 4, 8);
  const int seq = kv.CreateSequence();
  std::vector<float> k(2, 1.0f), v(2, 2.0f);
  for (int t = 0; t < 9; ++t) kv.AppendTokens(seq, k.data(), v.data(), 1);
  EXPECT_EQ(kv.SequenceLength(seq), 9);
  EXPECT_EQ(kv.SequencePages(seq).size(), 3u);  // ceil(9/4).
  EXPECT_EQ(kv.LastPageLen(seq), 1);
  const auto exported = kv.ExportKv(seq);
  EXPECT_EQ(exported.pages.size(), 3u);
  EXPECT_EQ(exported.last_page_len, 1);
}

TEST(Paged, StorageRoundTripF32) {
  PagedKVCache kv(DType::kF32, 2, 3, 2, 4);
  const int seq = kv.CreateSequence();
  // Token 0: K = [h0: 1,2,3; h1: 4,5,6], V = negatives.
  std::vector<float> k{1, 2, 3, 4, 5, 6}, v{-1, -2, -3, -4, -5, -6};
  kv.AppendTokens(seq, k.data(), v.data(), 1);
  const int64_t page = kv.SequencePages(seq)[0];
  EXPECT_EQ(kv.KAt(page, 0, 0, 0), 1.0f);
  EXPECT_EQ(kv.KAt(page, 1, 0, 2), 6.0f);
  EXPECT_EQ(kv.VAt(page, 0, 0, 1), -2.0f);
  EXPECT_EQ(kv.VAt(page, 1, 0, 0), -4.0f);
  // Typed pointer view agrees with the accessor.
  const float* krow = kv.KRow<float>(page, 1, 0);
  EXPECT_EQ(krow[1], 5.0f);
}

class PagedDtypeSweep : public ::testing::TestWithParam<DType> {};

TEST_P(PagedDtypeSweep, QuantizedRoundTripWithinTolerance) {
  const DType dt = GetParam();
  PagedKVCache kv(dt, 2, 8, 4, 4);
  const int seq = kv.CreateSequence();
  Rng rng(3);
  std::vector<float> k(16), v(16);
  for (auto& x : k) x = static_cast<float>(rng.Normal(0.0, 1.0));
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  kv.AppendTokens(seq, k.data(), v.data(), 1);
  const int64_t page = kv.SequencePages(seq)[0];
  double tol = 0.0;
  switch (dt) {
    case DType::kF32:
      tol = 0.0;
      break;
    case DType::kF16:
      tol = 2e-3;
      break;
    case DType::kBF16:
      tol = 2e-2;
      break;
    default:
      tol = 0.25;  // fp8.
  }
  for (int h = 0; h < 2; ++h) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_NEAR(kv.KAt(page, h, 0, d), k[static_cast<size_t>(h * 8 + d)], tol);
      EXPECT_NEAR(kv.VAt(page, h, 0, d), v[static_cast<size_t>(h * 8 + d)], tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, PagedDtypeSweep,
                         ::testing::Values(DType::kF32, DType::kF16, DType::kBF16,
                                           DType::kFP8_E4M3, DType::kFP8_E5M2));

TEST(Paged, AdoptPrefixSharesPages) {
  PagedKVCache kv(DType::kF32, 1, 2, 4, 8);
  const int parent = kv.CreateSequence();
  // AppendTokens reads [count, H_kv, D]: size the buffers for all 8 tokens.
  std::vector<float> k(8 * 2, 1.0f), v(8 * 2, 1.0f);
  kv.AppendTokens(parent, k.data(), v.data(), 8);  // Two full pages.
  const auto parent_pages = kv.SequencePages(parent);

  const int child = kv.CreateSequence();
  kv.AdoptPrefix(child, parent_pages, 8);
  EXPECT_EQ(kv.RefCount(parent_pages[0]), 2);
  EXPECT_EQ(kv.SequenceLength(child), 8);
  // Child appends its own suffix into a fresh page.
  kv.AppendTokens(child, k.data(), v.data(), 1);
  EXPECT_EQ(kv.SequencePages(child).size(), 3u);
  EXPECT_NE(kv.SequencePages(child)[2], parent_pages[1]);

  kv.DropSequence(parent);
  EXPECT_EQ(kv.RefCount(parent_pages[0]), 1);  // Child still holds them.
  kv.DropSequence(child);
  EXPECT_EQ(kv.num_free_pages(), 8);  // No leaks.
}

TEST(Paged, DropSequenceFreesExactlyItsPages) {
  PagedKVCache kv(DType::kF16, 1, 2, 2, 16);
  // AppendTokens reads [count, H_kv, D]: size for the largest append.
  std::vector<float> k(5 * 2, 0.5f), v(5 * 2, 0.5f);
  const int a = kv.CreateSequence();
  const int b = kv.CreateSequence();
  kv.AppendTokens(a, k.data(), v.data(), 5);
  kv.AppendTokens(b, k.data(), v.data(), 3);
  const auto live = kv.num_live_pages();
  EXPECT_EQ(live, 3 + 2);
  kv.DropSequence(a);
  EXPECT_EQ(kv.num_live_pages(), 2);
  kv.DropSequence(b);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

TEST(Paged, SequenceSlotReuse) {
  PagedKVCache kv(DType::kF32, 1, 2, 2, 4);
  const int a = kv.CreateSequence();
  kv.DropSequence(a);
  const int b = kv.CreateSequence();
  EXPECT_EQ(a, b);  // Dead slot reused.
}

TEST(Paged, BytesPerToken) {
  PagedKVCache kv(DType::kFP8_E4M3, 8, 128, 16, 4);
  EXPECT_EQ(kv.BytesPerToken(), 2 * 8 * 128 * 1);
}

// --- Fork / truncate / extend (speculative decoding) ------------------------

TEST(Paged, ExtendAllocatesLikeAppend) {
  PagedKVCache kv(DType::kF16, 1, 2, 4, 8);
  const int seq = kv.CreateSequence();
  kv.ExtendSequence(seq, 9);
  EXPECT_EQ(kv.SequenceLength(seq), 9);
  EXPECT_EQ(kv.SequencePages(seq).size(), 3u);  // ceil(9/4).
  EXPECT_EQ(kv.LastPageLen(seq), 1);
  kv.ExtendSequence(seq, 3);  // Fills the partial page exactly.
  EXPECT_EQ(kv.SequencePages(seq).size(), 3u);
  kv.DropSequence(seq);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

TEST(Paged, ForkSharesFullPagesAndCopiesPartialTail) {
  PagedKVCache kv(DType::kF32, 1, 2, 4, 16);
  std::vector<float> k(2), v(2);
  const int seq = kv.CreateSequence();
  for (int t = 0; t < 6; ++t) {  // 1 full page + 2 tokens on the tail page.
    k.assign(2, static_cast<float>(t));
    v.assign(2, static_cast<float>(10 + t));
    kv.AppendTokens(seq, k.data(), v.data(), 1);
  }
  const int fork = kv.ForkSequence(seq);
  EXPECT_EQ(kv.SequenceLength(fork), 6);
  const auto& sp = kv.SequencePages(seq);
  const auto& fp = kv.SequencePages(fork);
  EXPECT_EQ(fp[0], sp[0]);      // Full page aliased...
  EXPECT_EQ(kv.RefCount(sp[0]), 2);
  EXPECT_NE(fp[1], sp[1]);      // ...partial tail copied (CoW).
  // The copied tail holds the same data.
  EXPECT_EQ(kv.KAt(fp[1], 0, 1, 0), 5.0f);
  EXPECT_EQ(kv.VAt(fp[1], 0, 0, 1), 14.0f);
  // Divergent appends stay isolated.
  k.assign(2, 100.0f);
  v.assign(2, 200.0f);
  kv.AppendTokens(fork, k.data(), v.data(), 1);
  EXPECT_EQ(kv.SequenceLength(seq), 6);
  EXPECT_EQ(kv.KAt(sp[1], 0, 2, 0), 0.0f);  // Parent's slot untouched.
  kv.DropSequence(fork);
  EXPECT_EQ(kv.RefCount(sp[0]), 1);
  kv.DropSequence(seq);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

TEST(Paged, TruncateReleasesExactlyTheTailPages) {
  PagedKVCache kv(DType::kF16, 1, 2, 4, 8);
  const int seq = kv.CreateSequence();
  kv.ExtendSequence(seq, 15);  // 4 pages.
  EXPECT_EQ(kv.num_live_pages(), 4);
  kv.TruncateSequence(seq, 9);  // Keep ceil(9/4) = 3 pages.
  EXPECT_EQ(kv.SequenceLength(seq), 9);
  EXPECT_EQ(kv.num_live_pages(), 3);
  kv.TruncateSequence(seq, 8);  // Page-aligned: drops the ragged tail page.
  EXPECT_EQ(kv.num_live_pages(), 2);
  kv.TruncateSequence(seq, 0);
  EXPECT_EQ(kv.num_live_pages(), 0);
  kv.ExtendSequence(seq, 2);  // Still usable after a full rollback.
  EXPECT_EQ(kv.num_live_pages(), 1);
  kv.DropSequence(seq);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

TEST(Paged, ForkRollbackRefcountStress) {
  // Speculative-decoding pattern under stress: a shared committed prefix is
  // forked into many speculative branches per round, each extends, losers
  // roll back (drop), the winner is truncated to the accepted length and
  // becomes the next round's parent — with extra RetainPage/ReleasePage
  // churn interleaved across the shared prefix. After every round the
  // accounting must be exact: no leaked pages, no double frees.
  const int page_size = 4;
  PagedKVCache kv(DType::kF16, 1, 1, page_size, 512);
  Rng rng(2026);

  int parent = kv.CreateSequence();
  kv.ExtendSequence(parent, 21);  // Committed prefix, ragged tail.

  for (int round = 0; round < 50; ++round) {
    const int num_branches = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<int> branches;
    for (int b = 0; b < num_branches; ++b) {
      const int f = kv.ForkSequence(parent);
      kv.ExtendSequence(f, rng.UniformInt(1, 11));
      branches.push_back(f);
    }
    // Interleaved retain/release churn on the parent's shared pages (a
    // router-side mirror grabbing and dropping references mid-flight).
    const auto parent_pages = kv.SequencePages(parent);
    for (int64_t p : parent_pages) kv.RetainPage(p);
    // Every branch's full pages are shared with the parent.
    for (int f : branches) {
      const int64_t shared = kv.SequenceLength(parent) / page_size;
      for (int64_t i = 0; i < shared; ++i) {
        EXPECT_GE(kv.RefCount(kv.SequencePages(f)[static_cast<size_t>(i)]), 2);
      }
    }
    for (int64_t p : parent_pages) kv.ReleasePage(p);

    // Rejection sampling: one winner (possibly none), losers roll back.
    const int winner = static_cast<int>(rng.UniformInt(0, num_branches));  // == n -> none.
    for (int b = 0; b < num_branches; ++b) {
      if (b == winner) continue;
      kv.DropSequence(branches[static_cast<size_t>(b)]);
    }
    if (winner < num_branches) {
      const int w = branches[static_cast<size_t>(winner)];
      const int64_t accepted = rng.UniformInt(kv.SequenceLength(parent),
                                              kv.SequenceLength(w));
      kv.TruncateSequence(w, accepted);
      kv.DropSequence(parent);
      parent = w;
    }
    // Exact accounting: live pages == the pages the surviving sequence
    // needs, and every live page has refcount exactly 1 (no aliasing leaks
    // survive a round).
    const int64_t expect_pages =
        (kv.SequenceLength(parent) + page_size - 1) / page_size;
    ASSERT_EQ(kv.num_live_pages(), expect_pages) << "round " << round;
    for (int64_t p : kv.SequencePages(parent)) ASSERT_EQ(kv.RefCount(p), 1);
  }
  kv.DropSequence(parent);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

}  // namespace
}  // namespace flashinfer
