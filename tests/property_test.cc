// Parameterized property sweeps across the scheduler and mixed-precision
// kernels: coverage/balance invariants for arbitrary CTA counts and cost
// hyperparameters, and Appendix-F quality bounds for fp8 KV-caches.
#include <gtest/gtest.h>

#include <map>

#include "core/reference.h"
#include "runtime/scheduler.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::MaxAbsDiff;
using test::ProblemSpec;
using test::RunSerial;

// ------------------------------------------------- scheduler property sweep
struct SchedParam {
  int num_ctas;
  double alpha;
  double beta;
  uint64_t seed;
};

class BalancedPlanSweep : public ::testing::TestWithParam<SchedParam> {};

TEST_P(BalancedPlanSweep, CoverageAndBoundsHoldForAnyConfiguration) {
  const auto sp = GetParam();
  Rng rng(sp.seed);
  ProblemSpec spec;
  const int n = static_cast<int>(rng.UniformInt(1, 12));
  for (int i = 0; i < n; ++i) {
    spec.qo_lens.push_back(rng.UniformInt(1, 6));
    spec.kv_lens.push_back(spec.qo_lens.back() + rng.UniformInt(0, 500));
  }
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.tile_q = 2;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 2;
  cfg.tile_kv = 16;
  const auto plan =
      MakeBalancedPlan(p, cfg, sp.num_ctas, int64_t{1} << 40, sp.alpha, sp.beta);

  // 1. Exactly-once coverage of every (unit, kv token).
  std::map<std::tuple<int, int, int>, int64_t> covered;
  for (const auto& queue : plan.cta_queues) {
    for (const auto& item : queue) {
      covered[{item.block_row, item.kv_head, item.qo_head}] += item.kv_end - item.kv_begin;
    }
  }
  const auto units = EnumerateWorkUnits(p);
  ASSERT_EQ(covered.size(), units.size());
  for (const auto& u : units) {
    EXPECT_EQ(covered.at({u.block_row, u.kv_head, u.qo_head}), u.kv_len);
  }

  // 2. Chunk cap respected; partial rows within the Appendix D.3 bound.
  for (const auto& queue : plan.cta_queues) {
    for (const auto& item : queue) {
      EXPECT_LE(item.kv_end - item.kv_begin, plan.lkv_chunk);
    }
  }
  EXPECT_LE(plan.num_partial_rows, 2LL * sp.num_ctas * cfg.tile_q);

  // 3. LPT balance: max CTA cost within one chunk of the average.
  double total = 0.0;
  for (const auto& queue : plan.cta_queues) {
    for (const auto& item : queue) {
      total += sp.alpha * cfg.tile_q + sp.beta * static_cast<double>(item.kv_end - item.kv_begin);
    }
  }
  const double avg = total / sp.num_ctas;
  const double chunk_cost = sp.alpha * cfg.tile_q + sp.beta * static_cast<double>(plan.lkv_chunk);
  EXPECT_LE(plan.MaxCtaCost(cfg.tile_q), avg + chunk_cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, BalancedPlanSweep,
    ::testing::Values(SchedParam{1, 1.0, 1.0, 1}, SchedParam{2, 1.0, 1.0, 2},
                      SchedParam{7, 1.0, 1.0, 3}, SchedParam{132, 1.0, 1.0, 4},
                      SchedParam{132, 0.0, 1.0, 5}, SchedParam{132, 8.0, 1.0, 6},
                      SchedParam{132, 1.0, 0.25, 7}, SchedParam{396, 1.0, 1.0, 8},
                      SchedParam{396, 2.0, 0.5, 9}, SchedParam{1024, 1.0, 1.0, 10}));

// ----------------------------------------------- fp8 quality (Appendix F)
class Fp8QualitySweep : public ::testing::TestWithParam<DType> {};

TEST_P(Fp8QualitySweep, MixedPrecisionStaysCloseToF32GroundTruth) {
  // Build identical problems in fp32 and the quantized dtype (same seed,
  // same float inputs); attention outputs over the quantized cache must
  // stay within the quantization-noise bound of the exact outputs.
  ProblemSpec exact_spec;
  exact_spec.qo_lens = {2, 1};
  exact_spec.kv_lens = {64, 30};
  exact_spec.num_qo_heads = 4;
  exact_spec.num_kv_heads = 2;
  exact_spec.head_dim = 32;
  exact_spec.page_size = 8;
  exact_spec.tile_q = 4;
  exact_spec.kv_dtype = DType::kF32;
  auto exact = MakeProblem(exact_spec);
  auto pe = exact.Params();
  pe.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(pe, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));

  auto quant_spec = exact_spec;
  quant_spec.kv_dtype = GetParam();
  auto quant = MakeProblem(quant_spec);
  auto pq = quant.Params();
  pq.variant.causal = true;
  RunSerial(pq, cfg, GetBuiltinKernel(VariantKind::kVanilla, GetParam()));

  // Softmax-weighted averages of ~N(0,1) values: quantization noise of the
  // KV entries is averaged down; bound by a few quantization steps.
  double tol = 0.0;
  switch (GetParam()) {
    case DType::kF16:
      tol = 5e-3;
      break;
    case DType::kBF16:
      tol = 4e-2;
      break;
    default:
      tol = 0.35;  // fp8: ~6% relative steps on N(0,1) data.
  }
  EXPECT_LT(MaxAbsDiff(exact.o.data, quant.o.data), tol);
  // And the quantized run must still match ITS OWN reference exactly
  // (quantization error lives in the data, not the kernel).
  auto ref = RaggedTensor::Zeros(quant.qo_indptr, quant.q.inner);
  ReferenceAttention<VanillaVariant>(pq, &ref);
  EXPECT_LT(MaxAbsDiff(quant.o.data, ref.data), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Dtypes, Fp8QualitySweep,
                         ::testing::Values(DType::kF16, DType::kBF16, DType::kFP8_E4M3,
                                           DType::kFP8_E5M2),
                         [](const auto& info) {
                           return std::string(DTypeName(info.param));
                         });

// ------------------------------------------ GQA group-size kernel sweep
class GroupSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupSizeSweep, FusionInvariantToGroupSize) {
  const int g = GetParam();
  ProblemSpec spec;
  spec.qo_lens = {3};
  spec.kv_lens = {40};
  spec.num_qo_heads = 8;
  spec.num_kv_heads = 8 / g;
  spec.head_dim = 16;
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  auto ref = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p, &ref);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref.data), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupSizeSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace flashinfer
