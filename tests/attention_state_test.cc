#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/attention_state.h"
#include "util/rng.h"

namespace flashinfer {
namespace {

/// Directly computes the attention state over scores/values (Eq. 1-2).
AttentionState DirectState(const std::vector<double>& scores,
                           const std::vector<std::vector<float>>& values, int d) {
  AttentionState s = AttentionState::Identity(d);
  if (scores.empty()) return s;
  double m = *std::max_element(scores.begin(), scores.end());
  double den = 0.0;
  for (double sc : scores) den += std::exp(sc - m);
  for (size_t i = 0; i < scores.size(); ++i) {
    const double w = std::exp(scores[i] - m) / den;
    for (int dd = 0; dd < d; ++dd) {
      s.o[static_cast<size_t>(dd)] += static_cast<float>(w * values[i][static_cast<size_t>(dd)]);
    }
  }
  s.lse = static_cast<float>(m + std::log(den));
  return s;
}

struct Fixture {
  std::vector<double> scores;
  std::vector<std::vector<float>> values;
  int d;
};

Fixture MakeFixture(uint64_t seed, int n, int d) {
  Rng rng(seed);
  Fixture f;
  f.d = d;
  for (int i = 0; i < n; ++i) {
    f.scores.push_back(rng.Normal(0.0, 2.0));
    std::vector<float> v(static_cast<size_t>(d));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
    f.values.push_back(std::move(v));
  }
  return f;
}

AttentionState SubsetState(const Fixture& f, size_t lo, size_t hi) {
  return DirectState({f.scores.begin() + lo, f.scores.begin() + hi},
                     {f.values.begin() + lo, f.values.begin() + hi}, f.d);
}

void ExpectStateNear(const AttentionState& a, const AttentionState& b, float tol) {
  ASSERT_EQ(a.o.size(), b.o.size());
  EXPECT_NEAR(a.lse, b.lse, tol);
  for (size_t i = 0; i < a.o.size(); ++i) EXPECT_NEAR(a.o[i], b.o[i], tol);
}

TEST(AttentionState, IdentityIsNeutral) {
  const auto f = MakeFixture(1, 8, 4);
  auto s = SubsetState(f, 0, 8);
  auto acc = AttentionState::Identity(4);
  MergeState(acc, s);
  ExpectStateNear(acc, s, 1e-6f);
  // Right identity too.
  auto s2 = s;
  MergeState(s2, AttentionState::Identity(4));
  ExpectStateNear(s2, s, 1e-6f);
}

TEST(AttentionState, MergeOfDisjointSubsetsEqualsWhole) {
  const auto f = MakeFixture(2, 16, 8);
  const auto whole = SubsetState(f, 0, 16);
  auto left = SubsetState(f, 0, 7);
  const auto right = SubsetState(f, 7, 16);
  MergeState(left, right);
  ExpectStateNear(left, whole, 1e-4f);
}

TEST(AttentionState, Commutative) {
  const auto f = MakeFixture(3, 10, 4);
  auto a = SubsetState(f, 0, 4);
  const auto b = SubsetState(f, 4, 10);
  auto ab = a;
  MergeState(ab, b);
  auto ba = b;
  MergeState(ba, a);
  ExpectStateNear(ab, ba, 1e-5f);
}

TEST(AttentionState, Associative) {
  const auto f = MakeFixture(4, 12, 4);
  const auto a = SubsetState(f, 0, 3);
  const auto b = SubsetState(f, 3, 8);
  const auto c = SubsetState(f, 8, 12);
  auto left = a;  // (a+b)+c
  MergeState(left, b);
  MergeState(left, c);
  auto bc = b;  // a+(b+c)
  MergeState(bc, c);
  auto right = a;
  MergeState(right, bc);
  ExpectStateNear(left, right, 1e-5f);
}

class PartitionSweep : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(PartitionSweep, AnyPartitionComposesToWhole) {
  const auto [n, num_parts, seed] = GetParam();
  const auto f = MakeFixture(seed, n, 8);
  const auto whole = SubsetState(f, 0, static_cast<size_t>(n));

  // Random partition boundaries.
  Rng rng(seed ^ 0xABCD);
  std::vector<size_t> cuts{0, static_cast<size_t>(n)};
  for (int i = 0; i < num_parts - 1; ++i) {
    cuts.push_back(static_cast<size_t>(rng.UniformInt(0, n)));
  }
  std::sort(cuts.begin(), cuts.end());

  std::vector<AttentionState> parts;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    parts.push_back(SubsetState(f, cuts[i], cuts[i + 1]));  // May be empty.
  }
  const auto merged = MergeAll(parts, 8);
  ExpectStateNear(merged, whole, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, PartitionSweep,
    ::testing::Combine(::testing::Values(1, 2, 17, 64), ::testing::Values(2, 3, 8),
                       ::testing::Values(uint64_t{5}, uint64_t{77}, uint64_t{991})));

TEST(AttentionState, ExtremeScoresStayFinite) {
  // Large score gaps must not overflow exp().
  AttentionState a = AttentionState::Identity(2);
  a.o = {1.0f, 2.0f};
  a.lse = 500.0f;
  AttentionState b = AttentionState::Identity(2);
  b.o = {-1.0f, 3.0f};
  b.lse = -500.0f;
  auto acc = a;
  MergeState(acc, b);
  EXPECT_TRUE(std::isfinite(acc.lse));
  // b's contribution is negligible: result ~ a.
  EXPECT_NEAR(acc.o[0], 1.0f, 1e-5f);
  EXPECT_NEAR(acc.lse, 500.0f, 1e-5f);
}

TEST(AttentionState, MergeManyIdentitiesIsIdentity) {
  std::vector<AttentionState> parts(5, AttentionState::Identity(3));
  const auto merged = MergeAll(parts, 3);
  EXPECT_TRUE(std::isinf(merged.lse));
  EXPECT_LT(merged.lse, 0.0f);
  for (float x : merged.o) EXPECT_EQ(x, 0.0f);
}

}  // namespace
}  // namespace flashinfer
