// Engine trace invariants: the trace must be a faithful, self-consistent
// account of the schedule the engine actually executed.
//
//  * Disabled tracing is bit-identical: a traced run and an untraced run
//    produce the same metrics (tracing observes, never perturbs).
//  * Step spans are disjoint and monotone; phase spans tile their step span
//    exactly (the step duration IS the sum of its component times).
//  * Run() and an incremental StepTo() loop emit the identical event
//    sequence (the trace depends only on simulated state, not driver shape).
//  * Per-request phase spans tile arrival -> finish exactly for
//    single-branch requests — the wall decomposition has no gaps.
//  * Every stall counter increment is explained: each ITL-stall step is a
//    prefill-alone or swap-transfer step, each preempt-stall step is covered
//    by a concrete eviction's preempted span, and the trace's stall totals
//    equal ServingMetrics' counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "obs/query.h"
#include "obs/trace.h"
#include "serving/engine.h"

namespace flashinfer {
namespace {

using obs::TraceEvent;
using obs::TraceKind;
using obs::TraceName;
using serving::EngineConfig;
using serving::Request;
using serving::RestorePolicy;
using serving::ServingEngine;
using serving::ServingMetrics;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  cfg.trace.enabled = true;
  return cfg;
}

/// hbm_capacity_gb that yields a device KV budget of ~`budget_tokens`.
double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

Request MakeReq(int id, double arrival, int64_t in, int64_t out, int priority = 0) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.input_len = in;
  r.output_len = out;
  r.priority = priority;
  return r;
}

/// Mixed open-loop workload with enough spread to exercise queueing,
/// chunking, and (under a tight budget) preemption.
std::vector<Request> MixedWorkload(int n) {
  std::vector<Request> reqs;
  for (int i = 0; i < n; ++i) {
    const int64_t in = 300 + (i * 467) % 2200;
    const int64_t out = 20 + (i * 131) % 120;
    reqs.push_back(MakeReq(i, i * 0.02, in, out, i % 2));
  }
  return reqs;
}

bool SameEvent(const TraceEvent& x, const TraceEvent& y) {
  return x.ts_us == y.ts_us && x.dur_us == y.dur_us && x.name == y.name &&
         x.flags == y.flags && x.req == y.req && x.a == y.a && x.b == y.b &&
         x.c == y.c && x.d == y.d && x.v == y.v;
}

constexpr double kEpsUs = 1e-3;  // Sub-nanosecond slop on microsecond stamps.

TEST(Trace, DisabledByDefaultAndMetricsBitIdentical) {
  auto traced_cfg = BaseConfig();
  auto plain_cfg = BaseConfig();
  plain_cfg.trace.enabled = false;
  const auto reqs = MixedWorkload(24);

  ServingEngine plain(plain_cfg);
  const ServingMetrics a = plain.Run(reqs);
  EXPECT_EQ(plain.Trace(), nullptr);
  EXPECT_TRUE(plain.TraceEvents().empty());

  ServingEngine traced(traced_cfg);
  const ServingMetrics b = traced.Run(reqs);
  ASSERT_NE(traced.Trace(), nullptr);
  EXPECT_GT(traced.Trace()->size(), 0);

  // Tracing observes; it must not perturb a single bit of the schedule.
  EXPECT_EQ(a.ttft_ms, b.ttft_ms);
  EXPECT_EQ(a.itl_ms, b.itl_ms);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_EQ(a.total_gemm_ms, b.total_gemm_ms);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.itl_stall_steps, b.itl_stall_steps);
  EXPECT_EQ(a.ttft_priority, b.ttft_priority);
}

TEST(Trace, StepSpansMonotoneAndPhasesTileStep) {
  auto cfg = BaseConfig();
  ServingEngine engine(cfg);
  engine.Run(MixedWorkload(24));
  const auto events = engine.TraceEvents();
  ASSERT_FALSE(events.empty());

  double prev_step_end = -1.0;
  int64_t steps = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.name != TraceName::kStep) continue;
    ++steps;
    EXPECT_GE(e.dur_us, 0.0);
    // Steps are disjoint and ordered: each begins at or after the previous end.
    EXPECT_GE(e.ts_us, prev_step_end - kEpsUs);
    prev_step_end = e.ts_us + e.dur_us;

    // The phase spans recorded immediately after the step tile it exactly:
    // contiguous, in order, summing to the step duration.
    double cursor = e.ts_us;
    double phase_sum = 0.0;
    for (size_t j = i + 1; j < events.size(); ++j) {
      const TraceName n = events[j].name;
      if (n < TraceName::kPhaseDraft || n > TraceName::kPhaseHost) break;
      EXPECT_NEAR(events[j].ts_us, cursor, kEpsUs);
      cursor += events[j].dur_us;
      phase_sum += events[j].dur_us;
    }
    EXPECT_NEAR(phase_sum, e.dur_us, kEpsUs);
    EXPECT_NEAR(cursor, e.ts_us + e.dur_us, kEpsUs);
  }
  const ServingMetrics& m = engine.Metrics();
  EXPECT_EQ(steps, m.num_steps);  // One step span per executed work step.
  EXPECT_EQ(steps, m.mixed_steps + m.prefill_only_steps + m.decode_only_steps);
}

TEST(Trace, RunAndStepToEmitIdenticalEventSequences) {
  auto cfg = BaseConfig();
  const auto reqs = MixedWorkload(16);

  ServingEngine via_run(cfg);
  via_run.Run(reqs);
  const auto run_events = via_run.TraceEvents();

  ServingEngine via_step(cfg);
  via_step.Reset();
  for (const auto& r : reqs) via_step.Admit(r);
  // Ragged incremental deadlines, including no-op calls before arrivals.
  for (double t = 0.0; !via_step.Finished(); t += 0.013) via_step.StepTo(t);
  const auto step_events = via_step.TraceEvents();

  ASSERT_EQ(run_events.size(), step_events.size());
  for (size_t i = 0; i < run_events.size(); ++i) {
    EXPECT_TRUE(SameEvent(run_events[i], step_events[i])) << "event " << i;
  }
}

TEST(Trace, RequestPhasesTileArrivalToFinish) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kAuto;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);
  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.0, 2500, 300, 0));   // Long-lived victim.
  reqs.push_back(MakeReq(1, 0.05, 1200, 120, 0));
  reqs.push_back(MakeReq(2, 0.4, 3000, 80, 1));    // Forces preemption.
  reqs.push_back(MakeReq(3, 0.6, 800, 60, 1));
  const ServingMetrics m = engine.Run(reqs);
  ASSERT_GE(m.num_preemptions, 1);

  const obs::TraceQuery query(engine.TraceEvents());
  const auto rows = query.PerRequest();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    ASSERT_FALSE(r.rejected);
    // Single-branch requests: queue + prefill + decode + preempted + swap +
    // recompute tile [arrival, finish] with no gap and no overlap.
    EXPECT_NEAR(r.TotalMs(), r.finish_ms - r.arrival_ms, 1e-6)
        << "request " << r.req;
  }
  // The preempted victim's stall shows up as a nonzero preempted column.
  double preempted_total = 0.0;
  for (const auto& r : rows) preempted_total += r.preempted_ms;
  EXPECT_GT(preempted_total, 0.0);
}

TEST(Trace, EveryStallIsExplained) {
  // Legacy prefill-alone mode maximizes ITL stalls; a tight budget with
  // preemption adds preempt stalls and swap transfers on top.
  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 0;
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);
  const ServingMetrics m = engine.Run(MixedWorkload(24));
  ASSERT_GT(m.itl_stall_steps, 0);
  ASSERT_GT(m.num_preemptions, 0);

  const obs::TraceQuery query(engine.TraceEvents());
  ASSERT_EQ(engine.Trace()->dropped(), 0);  // Totals require the full trace.
  // 100% attribution: no stall increment without a concrete recorded cause.
  EXPECT_TRUE(query.UnexplainedItlStalls().empty());
  EXPECT_TRUE(query.UnexplainedPreemptStalls().empty());
  // And the trace's stall totals reconcile exactly with the metrics.
  EXPECT_EQ(query.TotalItlStallSteps(), m.itl_stall_steps);
  EXPECT_EQ(query.TotalPreemptStallSteps(), m.preempt_stall_steps);
}

TEST(Trace, LifecycleEventCountsMatchMetrics) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);
  std::vector<Request> reqs = MixedWorkload(16);
  reqs.push_back(MakeReq(99, 0.1, 9000, 8, 1));  // Infeasible -> rejected.
  const ServingMetrics m = engine.Run(reqs);
  ASSERT_EQ(m.rejected_requests, 1);

  const obs::TraceQuery query(engine.TraceEvents());
  EXPECT_EQ(query.CountName(TraceName::kReqAdmit), 16);
  EXPECT_EQ(query.CountName(TraceName::kReqReject), 1);
  EXPECT_EQ(query.CountName(TraceName::kReqFirstToken),
            static_cast<int64_t>(m.ttft_ms.size()));
  EXPECT_EQ(query.CountName(TraceName::kReqFinish), 16);  // One per branch.
  EXPECT_EQ(query.CountName(TraceName::kKvEvictSwap) +
                query.CountName(TraceName::kKvEvictDrop),
            m.num_preemptions);
  EXPECT_EQ(query.CountName(TraceName::kKvRestoreSwap), m.num_swap_restores);
  EXPECT_EQ(query.CountName(TraceName::kKvRestoreRecompute),
            m.num_recompute_restores);
  // One sample per counter per work step.
  const int64_t work_steps = m.num_steps;
  EXPECT_EQ(query.CountName(TraceName::kCtrKvDevice), work_steps);
  EXPECT_EQ(query.CountName(TraceName::kCtrTokPerS), work_steps);
}

TEST(Trace, RingCapacityKeepsTrailingWindow) {
  auto cfg = BaseConfig();
  cfg.trace.capacity = 256;  // Force wraparound on a real workload.
  ServingEngine engine(cfg);
  engine.Run(MixedWorkload(24));
  ASSERT_NE(engine.Trace(), nullptr);
  EXPECT_EQ(engine.Trace()->size(), 256);
  EXPECT_GT(engine.Trace()->dropped(), 0);
  const auto events = engine.TraceEvents();
  ASSERT_EQ(events.size(), 256u);
  // The survivors are the trailing window: the last event is from the end of
  // the run, and step spans within the window are still ordered.
  double prev = -1.0;
  for (const auto& e : events) {
    if (e.name != TraceName::kStep) continue;
    EXPECT_GT(e.ts_us, prev);
    prev = e.ts_us;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(Trace, SpecDecodeStepsCarrySpecFlag) {
  auto cfg = BaseConfig();
  cfg.spec.enabled = true;
  ServingEngine engine(cfg);
  const ServingMetrics m = engine.Run(MixedWorkload(8));
  ASSERT_GT(m.spec_steps, 0);
  int64_t spec_flagged = 0;
  for (const auto& e : engine.TraceEvents()) {
    if (e.name == TraceName::kStep && (e.flags & obs::kStepFlagSpec) != 0) {
      ++spec_flagged;
      EXPECT_GT(e.b, 0);  // A verify step decodes running branches.
    }
  }
  EXPECT_EQ(spec_flagged, m.spec_steps);
}

}  // namespace
}  // namespace flashinfer
