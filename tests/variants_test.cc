#include <gtest/gtest.h>

#include <cmath>

#include "core/microkernel.h"
#include "test_util.h"

namespace flashinfer {
namespace {

using test::MakeProblem;
using test::MaxAbsDiff;
using test::ProblemSpec;
using test::RunSerial;

ProblemSpec BaseSpec() {
  ProblemSpec spec;
  spec.qo_lens = {4, 2};
  spec.kv_lens = {25, 9};
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.head_dim = 16;
  spec.page_size = 4;
  spec.tile_q = 4;
  return spec;
}

/// Runs `kind` through the tiled kernel and the reference; returns max diff.
float KernelVsReference(VariantKind kind, VariantParams vp, ProblemSpec spec) {
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  const float scale = p.variant.sm_scale;
  p.variant = vp;
  p.variant.sm_scale = scale;
  p.variant.num_qo_heads = spec.num_qo_heads;
  KernelConfig cfg;
  cfg.tile_q = spec.tile_q;
  cfg.tile_kv = 8;
  RunSerial(p, cfg, GetBuiltinKernel(kind, spec.kv_dtype));
  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttentionKind(kind, p, &ref_o);
  return MaxAbsDiff(prob.o.data, ref_o.data);
}

class VariantSweep : public ::testing::TestWithParam<VariantKind> {};

TEST_P(VariantSweep, TiledKernelMatchesReference) {
  VariantParams vp;
  vp.causal = true;
  vp.logits_soft_cap = 30.0f;
  vp.window_left = 8;
  vp.num_sink_tokens = 2;
  vp.sigmoid_scale = 1.0f;
  vp.sigmoid_bias = -1.0f;
  EXPECT_LT(KernelVsReference(GetParam(), vp, BaseSpec()), 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantSweep,
                         ::testing::Values(VariantKind::kVanilla, VariantKind::kSoftCap,
                                           VariantKind::kAlibi, VariantKind::kSlidingWindow,
                                           VariantKind::kStreamingLlm, VariantKind::kSigmoid,
                                           VariantKind::kFusedRope),
                         [](const auto& info) {
                           return std::string(VariantKindName(info.param));
                         });

// ----------------------------------------------------------------- masking
TEST(Masking, CausalBlocksFuture) {
  VariantParams p;
  p.causal = true;
  LogitsCtx ctx;
  ctx.q_pos = 5;
  ctx.kv_pos = 6;
  EXPECT_FALSE(DefaultMask(p, ctx));
  ctx.kv_pos = 5;
  EXPECT_TRUE(DefaultMask(p, ctx));
  ctx.kv_pos = 0;
  EXPECT_TRUE(DefaultMask(p, ctx));
}

TEST(Masking, SlidingWindowKeepsRecent) {
  VariantParams p;
  p.causal = true;
  p.window_left = 4;
  LogitsCtx ctx;
  ctx.q_pos = 100;
  ctx.kv_pos = 95;  // Outside window (100-4=96), not a sink.
  EXPECT_FALSE(DefaultMask(p, ctx));
  ctx.kv_pos = 96;
  EXPECT_TRUE(DefaultMask(p, ctx));
  ctx.kv_pos = 100;
  EXPECT_TRUE(DefaultMask(p, ctx));
}

TEST(Masking, StreamingLlmSinksAlwaysVisible) {
  VariantParams p;
  p.causal = true;
  p.window_left = 4;
  p.num_sink_tokens = 2;
  LogitsCtx ctx;
  ctx.q_pos = 100;
  ctx.kv_pos = 0;
  EXPECT_TRUE(DefaultMask(p, ctx));  // Sink token.
  ctx.kv_pos = 1;
  EXPECT_TRUE(DefaultMask(p, ctx));
  ctx.kv_pos = 2;  // Past sinks, outside window.
  EXPECT_FALSE(DefaultMask(p, ctx));
}

// ----------------------------------------------------------------- soft cap
TEST(SoftCap, LogitsBoundedByCap) {
  SoftCapVariant v;
  VariantParams p;
  p.sm_scale = 1.0f;
  p.logits_soft_cap = 10.0f;
  LogitsCtx ctx;
  // tanh saturates to exactly 1.0f in float for huge inputs: bounded by cap.
  EXPECT_LE(v.LogitsTransform(p, 1000.0f, ctx), 10.0f);
  EXPECT_GE(v.LogitsTransform(p, -1000.0f, ctx), -10.0f);
  // Moderate logits stay strictly inside the cap.
  EXPECT_LT(v.LogitsTransform(p, 30.0f, ctx), 10.0f);
  EXPECT_GT(v.LogitsTransform(p, -30.0f, ctx), -10.0f);
  // Small logits pass nearly unchanged.
  EXPECT_NEAR(v.LogitsTransform(p, 0.5f, ctx), 0.5f, 1e-3f);
}

// -------------------------------------------------------------------- alibi
TEST(Alibi, SlopeFormula) {
  // Standard ALiBi: slope(h) = 2^(-8(h+1)/H).
  EXPECT_FLOAT_EQ(AlibiVariant::Slope(0, 8), std::exp2(-1.0f));
  EXPECT_FLOAT_EQ(AlibiVariant::Slope(7, 8), std::exp2(-8.0f));
}

TEST(Alibi, BiasGrowsWithDistance) {
  AlibiVariant v;
  VariantParams p;
  p.sm_scale = 1.0f;
  p.num_qo_heads = 4;
  LogitsCtx near_ctx, far_ctx;
  near_ctx.q_pos = far_ctx.q_pos = 100;
  near_ctx.kv_pos = 99;
  far_ctx.kv_pos = 0;
  EXPECT_GT(v.LogitsTransform(p, 0.0f, near_ctx), v.LogitsTransform(p, 0.0f, far_ctx));
}

// ------------------------------------------------------------------ sigmoid
TEST(Sigmoid, WeightsAreSigmoidOfScore) {
  SigmoidVariant v;
  VariantParams p;
  p.sm_scale = 1.0f;
  p.sigmoid_scale = 2.0f;
  p.sigmoid_bias = 0.5f;
  LogitsCtx ctx;
  const float w = v.LogitsTransform(p, 0.3f, ctx);
  EXPECT_NEAR(w, 1.0f / (1.0f + std::exp(-(0.3f * 2.0f + 0.5f))), 1e-6f);
  EXPECT_GT(w, 0.0f);
  EXPECT_LT(w, 1.0f);
}

TEST(Sigmoid, NoSoftmaxNormalization) {
  // With sigmoid weights, doubling KV roughly doubles output magnitude
  // (no denominator), unlike softmax attention.
  ProblemSpec spec = BaseSpec();
  spec.qo_lens = {1};
  spec.kv_lens = {8};
  auto prob8 = MakeProblem(spec);
  auto p8 = prob8.Params();
  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(p8, cfg, GetBuiltinKernel(VariantKind::kSigmoid, DType::kF32));

  spec.kv_lens = {16};
  auto prob16 = MakeProblem(spec);  // Same seed: first 8 tokens identical.
  auto p16 = prob16.Params();
  RunSerial(p16, cfg, GetBuiltinKernel(VariantKind::kSigmoid, DType::kF32));

  double n8 = 0, n16 = 0;
  for (float x : prob8.o.data) n8 += std::fabs(x);
  for (float x : prob16.o.data) n16 += std::fabs(x);
  EXPECT_GT(n16, n8 * 1.2);  // Accumulates, does not renormalize.
}

// --------------------------------------------------------------- fused RoPE
TEST(FusedRope, EquivalentToPreRotatedCache) {
  // Build one problem with un-roped K in the cache and FusedRope variant;
  // build a twin whose cache and queries are pre-rotated, using Vanilla.
  ProblemSpec spec = BaseSpec();
  spec.num_qo_heads = 2;
  spec.num_kv_heads = 2;
  auto fused = MakeProblem(spec);
  auto twin = MakeProblem(spec);  // Identical data (same seed).

  // Pre-rotate the twin's queries and cache in place.
  VariantParams vp;
  vp.rope_theta = 10000.0f;
  for (size_t r = 0; r + 1 < twin.qo_indptr.size(); ++r) {
    const int64_t qo_len = spec.qo_lens[r];
    const int64_t kv_len = spec.kv_lens[r];
    for (int64_t i = 0; i < qo_len; ++i) {
      const int64_t row = twin.qo_indptr[r] + i;
      for (int h = 0; h < spec.num_qo_heads; ++h) {
        ApplyRope(twin.q.Row(row).subspan(static_cast<size_t>(h) * spec.head_dim,
                                          static_cast<size_t>(spec.head_dim)),
                  kv_len - qo_len + i, vp.rope_theta);
      }
    }
    // Rotate cached keys by their positions.
    const auto& pages = twin.kv->SequencePages(twin.seq_ids[r]);
    for (int64_t t = 0; t < kv_len; ++t) {
      const int64_t page = pages[static_cast<size_t>(t / spec.page_size)];
      const int slot = static_cast<int>(t % spec.page_size);
      for (int h = 0; h < spec.num_kv_heads; ++h) {
        std::vector<float> krow(static_cast<size_t>(spec.head_dim));
        std::vector<float> vrow(static_cast<size_t>(spec.head_dim));
        for (int d = 0; d < spec.head_dim; ++d) {
          krow[static_cast<size_t>(d)] = twin.kv->KAt(page, h, slot, d);
          vrow[static_cast<size_t>(d)] = twin.kv->VAt(page, h, slot, d);
        }
        ApplyRope({krow.data(), krow.size()}, t, vp.rope_theta);
        // Write back via SetToken per-head is awkward; use full-token write.
        std::vector<float> kfull(static_cast<size_t>(spec.num_kv_heads) * spec.head_dim);
        std::vector<float> vfull(kfull.size());
        for (int hh = 0; hh < spec.num_kv_heads; ++hh) {
          for (int d = 0; d < spec.head_dim; ++d) {
            kfull[static_cast<size_t>(hh * spec.head_dim + d)] =
                (hh == h) ? krow[static_cast<size_t>(d)] : twin.kv->KAt(page, hh, slot, d);
            vfull[static_cast<size_t>(hh * spec.head_dim + d)] = twin.kv->VAt(page, hh, slot, d);
          }
        }
        twin.kv->SetToken(page, slot, kfull.data(), vfull.data());
      }
    }
  }

  KernelConfig cfg;
  cfg.tile_q = spec.tile_q;
  auto pf = fused.Params();
  pf.variant.causal = true;
  pf.variant.rope_theta = vp.rope_theta;
  RunSerial(pf, cfg, GetBuiltinKernel(VariantKind::kFusedRope, DType::kF32));

  auto pt = twin.Params();
  pt.variant.causal = true;
  RunSerial(pt, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));

  EXPECT_LT(MaxAbsDiff(fused.o.data, twin.o.data), 1e-3f);
}

TEST(Rope, RotationPreservesNorm) {
  std::vector<float> v(16);
  Rng rng(5);
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  double n0 = 0;
  for (float x : v) n0 += x * x;
  ApplyRope({v.data(), v.size()}, 1234, 10000.0f);
  double n1 = 0;
  for (float x : v) n1 += x * x;
  EXPECT_NEAR(n0, n1, 1e-4);
}

TEST(Rope, PositionZeroIsIdentity) {
  std::vector<float> v{1, 2, 3, 4, 5, 6, 7, 8};
  const auto orig = v;
  ApplyRope({v.data(), v.size()}, 0, 10000.0f);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(v[i], orig[i]);
}

// ----------------------------------------------- pruned (Quest-style) pages
TEST(PrunedAttention, MatchesReferenceOverSameSelection) {
  ProblemSpec spec = BaseSpec();
  spec.qo_lens = {1};
  spec.kv_lens = {64};
  spec.page_size = 8;
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  // Select pages 0, 3, 6 only.
  const auto req_kv = prob.kv->ExportKv(prob.seq_ids[0]);
  const int g = spec.num_qo_heads / spec.num_kv_heads;
  const auto pruned =
      sparse::BuildPrunedBsr({0, 1 * g}, {req_kv}, {{0, 3, 6}}, spec.page_size, spec.tile_q);
  auto p = prob.Params();
  p.bsr = &pruned;
  p.variant.causal = false;  // Decode query attends to selected pages fully.
  KernelConfig cfg;
  cfg.tile_q = spec.tile_q;
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  auto ref_o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  ReferenceAttention<VanillaVariant>(p, &ref_o);
  EXPECT_LT(MaxAbsDiff(prob.o.data, ref_o.data), 1e-4f);
}

}  // namespace
}  // namespace flashinfer
