// Serving-engine edge cases and regression tests.
#include <gtest/gtest.h>

#include "serving/engine.h"

namespace flashinfer::serving {
namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

TEST(Engine, OversizedPromptStillAdmits) {
  // Regression: a prompt longer than max_prefill_tokens must admit alone
  // rather than starving forever (previously an infinite loop).
  auto cfg = BaseConfig();
  cfg.max_prefill_tokens = 1024;
  ServingEngine engine(cfg);
  std::vector<Request> reqs(1);
  reqs[0].id = 0;
  reqs[0].arrival_s = 0.0;
  reqs[0].input_len = 9000;  // > max_prefill_tokens.
  reqs[0].output_len = 4;
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.ttft_ms.size(), 1u);
  EXPECT_EQ(m.total_output_tokens, 4);
}

TEST(Engine, PrefillBudgetBatchesAdmissions) {
  auto cfg = BaseConfig();
  cfg.max_prefill_tokens = 600;
  ServingEngine engine(cfg);
  // Three 512-token prompts arriving together: 512 + 512 > 600, so they
  // prefill in separate steps -> strictly increasing TTFTs.
  std::vector<Request> reqs(3);
  for (int i = 0; i < 3; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_s = 0.0;
    reqs[i].input_len = 512;
    reqs[i].output_len = 2;
  }
  const auto m = engine.Run(reqs);
  ASSERT_EQ(m.ttft_ms.size(), 3u);
  EXPECT_LT(m.ttft_ms[0], m.ttft_ms[1]);
  EXPECT_LT(m.ttft_ms[1], m.ttft_ms[2]);
}

TEST(Engine, EmptyWorkload) {
  ServingEngine engine(BaseConfig());
  const auto m = engine.Run({});
  EXPECT_EQ(m.total_output_tokens, 0);
  EXPECT_EQ(m.num_steps, 0);
}

TEST(Engine, IdleGapsSkipToNextArrival) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 2, 1};
  reqs[1] = {1, 100.0, 64, 2, 1};  // Arrives after a long idle gap.
  const auto m = engine.Run(reqs);
  // Request 1's TTFT is measured from ITS arrival, not from t=0.
  EXPECT_LT(m.ttft_ms[1], 1000.0);
  EXPECT_GE(m.makespan_s, 100.0);
}

TEST(Engine, OutputTokenAccounting) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(4);
  for (int i = 0; i < 4; ++i) reqs[i] = {i, 0.01 * i, 32, 10, 1};
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.total_output_tokens, 4 * 10);
  // ITL gaps: 9 per request (first token comes from prefill).
  EXPECT_EQ(m.itl_ms.size(), 4u * 9u);
}

TEST(Engine, ParallelBranchesMultiplyOutputs) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 6, 4};
  reqs[1] = {1, 0.0, 64, 6, 1};
  const auto m = engine.Run(reqs);
  // Request 0: 1 prefill token + 4 branches x 5; request 1: 1 + 5.
  EXPECT_EQ(m.total_output_tokens, (1 + 4 * 5) + (1 + 5));
}

TEST(Engine, KvBudgetThrottlesAdmission) {
  auto cfg = BaseConfig();
  cfg.hbm_capacity_gb = 17.0;  // Barely above the 8B weights: tiny KV pool.
  ServingEngine engine(cfg);
  EXPECT_LT(engine.KvTokenBudget(), 30000);
  std::vector<Request> reqs(8);
  for (int i = 0; i < 8; ++i) reqs[i] = {i, 0.0, 2048, 4, 1};
  const auto m = engine.Run(reqs);  // Must complete despite the tight pool.
  EXPECT_EQ(m.ttft_ms.size(), 8u);
  EXPECT_EQ(m.total_output_tokens, 8 * 4);
}

TEST(Engine, FasterKernelsNeverHurtLatency) {
  // Sanity: scaling all attention kernels 2x slower must not reduce ITL.
  Rng rng(9);
  const auto reqs = ShareGptWorkload(rng, 40, 12.0);
  auto cfg = BaseConfig();
  const auto fast = ServingEngine(cfg).Run(reqs);
  cfg.backend.kernel_time_scale = 2.0;
  const auto slow = ServingEngine(cfg).Run(reqs);
  EXPECT_LE(fast.MedianItlMs(), slow.MedianItlMs());
  EXPECT_LE(fast.makespan_s, slow.makespan_s + 1e-9);
}

TEST(Engine, TensorParallelReducesItl) {
  Rng rng(10);
  const auto reqs = ShareGptWorkload(rng, 30, 6.0);
  EngineConfig cfg;
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  cfg.model = Llama31_70B(1);
  cfg.hbm_capacity_gb = 200.0;  // Hypothetical single-GPU fit.
  const auto tp1 = ServingEngine(cfg).Run(reqs);
  cfg.model = Llama31_70B(4);
  cfg.hbm_capacity_gb = 80.0;
  const auto tp4 = ServingEngine(cfg).Run(reqs);
  EXPECT_LT(tp4.MedianItlMs(), tp1.MedianItlMs());
}

// --- Chunked prefill / mixed batching (StepPlan) -----------------------------

void ExpectSameMetrics(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.total_prefill_tokens, b.total_prefill_tokens);
  ASSERT_EQ(a.ttft_ms.size(), b.ttft_ms.size());
  for (size_t i = 0; i < a.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ttft_ms[i], b.ttft_ms[i]) << "ttft " << i;
  }
  ASSERT_EQ(a.itl_ms.size(), b.itl_ms.size());
  for (size_t i = 0; i < a.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.itl_ms[i], b.itl_ms[i]) << "itl " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_DOUBLE_EQ(a.total_gemm_ms, b.total_gemm_ms);
  EXPECT_DOUBLE_EQ(a.total_host_ms, b.total_host_ms);
}

// With prefill and decode never overlapping (sparse arrivals: each request
// drains before the next arrives), a chunk that covers the whole prompt
// must reproduce the legacy prefill-alone engine step-for-step — same
// steps, same clocks, same per-request TTFT/ITL.
TEST(ChunkedPrefill, ChunkCoveringPromptMatchesPrefillAlone) {
  std::vector<Request> reqs(4);
  for (int i = 0; i < 4; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_s = i * 10.0;  // Far apart: no prefill/decode overlap.
    reqs[i].input_len = 700 + 100 * i;
    reqs[i].output_len = 6;
  }
  auto legacy_cfg = BaseConfig();
  legacy_cfg.prefill_chunk_tokens = 0;
  const auto legacy = ServingEngine(legacy_cfg).Run(reqs);

  for (const int64_t chunk : {int64_t{1024}, int64_t{1 << 20}}) {
    auto cfg = BaseConfig();
    cfg.prefill_chunk_tokens = chunk;  // >= longest prompt: one chunk each.
    const auto chunked = ServingEngine(cfg).Run(reqs);
    ExpectSameMetrics(legacy, chunked);
    EXPECT_EQ(chunked.chunked_requests, 0);
  }
}

TEST(ChunkedPrefill, LongPromptSpansChunksAndEmitsOnLastChunk) {
  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 256;
  ServingEngine engine(cfg);
  std::vector<Request> reqs(1);
  reqs[0].id = 0;
  reqs[0].input_len = 1000;  // ceil(1000/256) = 4 chunks.
  reqs[0].output_len = 3;
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.prefill_chunks, 4);
  EXPECT_EQ(m.chunked_requests, 1);
  EXPECT_EQ(m.total_prefill_tokens, 1000);
  EXPECT_EQ(m.total_output_tokens, 3);
  ASSERT_EQ(m.ttft_ms.size(), 1u);
  // First token only after the 4th chunk: TTFT covers all 4 steps while ITL
  // gaps cover one decode step each.
  EXPECT_GT(m.ttft_ms[0], 2.0 * m.MaxItlMs());
  EXPECT_EQ(m.num_steps, 4 + 2);  // 4 chunk steps + 2 decode steps.
}

TEST(ChunkedPrefill, MixedBatchingRemovesDecodeStalls) {
  // Running decodes + a long prompt arriving mid-flight: the legacy loop
  // stalls every branch behind the prefill; mixed batching does not, and
  // both deliver the same tokens.
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 64, 1};
  reqs[1] = {1, 0.05, 6000, 8, 1};  // Long prompt lands mid-decode.

  auto legacy_cfg = BaseConfig();
  legacy_cfg.prefill_chunk_tokens = 0;
  const auto legacy = ServingEngine(legacy_cfg).Run(reqs);
  EXPECT_GT(legacy.itl_stall_steps, 0);
  EXPECT_GT(legacy.steps_with_stalls, 0);
  EXPECT_EQ(legacy.mixed_steps, 0);

  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 512;
  const auto chunked = ServingEngine(cfg).Run(reqs);
  EXPECT_EQ(chunked.itl_stall_steps, 0);
  EXPECT_GT(chunked.mixed_steps, 0);
  EXPECT_EQ(chunked.total_output_tokens, legacy.total_output_tokens);
  // The worst inter-token gap shrinks by at least the prefill-stall factor.
  EXPECT_LT(chunked.MaxItlMs() * 2.0, legacy.MaxItlMs());
  // Per-branch stall counters surface through branch_stalls.
  int64_t legacy_stalls = 0;
  for (int64_t s : legacy.branch_stalls) legacy_stalls += s;
  EXPECT_EQ(legacy_stalls, legacy.itl_stall_steps);
  for (int64_t s : chunked.branch_stalls) EXPECT_EQ(s, 0);
}

TEST(ChunkedPrefill, CachedPrefixChunksOnlyUncachedSuffix) {
  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 256;
  ServingEngine engine(cfg);
  std::vector<Request> reqs(1);
  reqs[0].id = 0;
  reqs[0].input_len = 2048;
  reqs[0].output_len = 4;
  reqs[0].cached_prefix_len = 1500;  // Cached span exceeds the chunk size.
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.total_prefill_tokens, 2048 - 1500);
  EXPECT_EQ(m.cached_prefix_tokens, 1500);
  EXPECT_EQ(m.prefill_chunks, (548 + 255) / 256);
  EXPECT_EQ(m.total_output_tokens, 4);
}

TEST(ChunkedPrefill, QueuedTokensCountsPartialPrefillRemainder) {
  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 256;
  ServingEngine engine(cfg);
  engine.Reset();
  Request r;
  r.id = 0;
  r.input_len = 1024;
  r.output_len = 16;
  engine.Admit(r);
  EXPECT_EQ(engine.QueuedTokens(), 1024 + 16);
  // One step: 256 prompt tokens prefilled, request still mid-chunk — a
  // router must still see the un-prefilled remainder plus the whole output.
  EXPECT_EQ(engine.StepTo(engine.NextEventTime()), 1);
  EXPECT_EQ(engine.QueuedTokens(), (1024 - 256) + 16);
  EXPECT_FALSE(engine.Finished());
  engine.Drain();
  EXPECT_EQ(engine.QueuedTokens(), 0);
  EXPECT_EQ(engine.Metrics().total_output_tokens, 16);
}

TEST(ChunkedPrefill, ThroughputPolicyPacksMoreThanDecodePriority) {
  // Two long prompts arriving together: decode-priority spends at most one
  // chunk's worth per step; throughput-priority packs both requests' chunks
  // and finishes the prefill backlog in fewer steps.
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 4096, 4, 1};
  reqs[1] = {1, 0.0, 4096, 4, 1};

  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 1024;
  cfg.batch_policy = BatchPolicy::kDecodePriority;
  const auto dp = ServingEngine(cfg).Run(reqs);
  cfg.batch_policy = BatchPolicy::kThroughputPriority;
  const auto tp = ServingEngine(cfg).Run(reqs);

  EXPECT_EQ(dp.total_prefill_tokens, tp.total_prefill_tokens);
  EXPECT_LT(tp.num_steps, dp.num_steps);
  EXPECT_LT(tp.ttft_ms[1], dp.ttft_ms[1]);  // Backlogged TTFT drains faster.
}

TEST(ChunkedPrefill, KvAccountingExactAfterDrain) {
  auto cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 512;
  ServingEngine engine(cfg);
  Rng rng(23);
  BurstyPrefillConfig wcfg;
  wcfg.num_steady = 40;
  wcfg.num_bursts = 2;
  wcfg.burst_size = 2;
  const auto m = engine.Run(BurstyLongPrefillWorkload(rng, wcfg));
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(m.ttft_ms.size(), 44u);
  EXPECT_GT(m.mixed_steps, 0);
}

TEST(Backends, PresetsDiffer) {
  EXPECT_EQ(FlashInferBackend().scheduler, SchedulerKind::kBalanced);
  EXPECT_NE(TritonBackend().scheduler, SchedulerKind::kBalanced);
  EXPECT_GT(TritonBackend().kernel_time_scale, 1.0);
  EXPECT_FALSE(FlashAttentionBackend().head_fusion);
  EXPECT_GT(VllmDefaultBackend().host_us_per_req, FlashInferBackend().host_us_per_req);
}

}  // namespace
}  // namespace flashinfer::serving
