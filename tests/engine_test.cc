// Serving-engine edge cases and regression tests.
#include <gtest/gtest.h>

#include "serving/engine.h"

namespace flashinfer::serving {
namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

TEST(Engine, OversizedPromptStillAdmits) {
  // Regression: a prompt longer than max_prefill_tokens must admit alone
  // rather than starving forever (previously an infinite loop).
  auto cfg = BaseConfig();
  cfg.max_prefill_tokens = 1024;
  ServingEngine engine(cfg);
  std::vector<Request> reqs(1);
  reqs[0].id = 0;
  reqs[0].arrival_s = 0.0;
  reqs[0].input_len = 9000;  // > max_prefill_tokens.
  reqs[0].output_len = 4;
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.ttft_ms.size(), 1u);
  EXPECT_EQ(m.total_output_tokens, 4);
}

TEST(Engine, PrefillBudgetBatchesAdmissions) {
  auto cfg = BaseConfig();
  cfg.max_prefill_tokens = 600;
  ServingEngine engine(cfg);
  // Three 512-token prompts arriving together: 512 + 512 > 600, so they
  // prefill in separate steps -> strictly increasing TTFTs.
  std::vector<Request> reqs(3);
  for (int i = 0; i < 3; ++i) {
    reqs[i].id = i;
    reqs[i].arrival_s = 0.0;
    reqs[i].input_len = 512;
    reqs[i].output_len = 2;
  }
  const auto m = engine.Run(reqs);
  ASSERT_EQ(m.ttft_ms.size(), 3u);
  EXPECT_LT(m.ttft_ms[0], m.ttft_ms[1]);
  EXPECT_LT(m.ttft_ms[1], m.ttft_ms[2]);
}

TEST(Engine, EmptyWorkload) {
  ServingEngine engine(BaseConfig());
  const auto m = engine.Run({});
  EXPECT_EQ(m.total_output_tokens, 0);
  EXPECT_EQ(m.num_steps, 0);
}

TEST(Engine, IdleGapsSkipToNextArrival) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 2, 1};
  reqs[1] = {1, 100.0, 64, 2, 1};  // Arrives after a long idle gap.
  const auto m = engine.Run(reqs);
  // Request 1's TTFT is measured from ITS arrival, not from t=0.
  EXPECT_LT(m.ttft_ms[1], 1000.0);
  EXPECT_GE(m.makespan_s, 100.0);
}

TEST(Engine, OutputTokenAccounting) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(4);
  for (int i = 0; i < 4; ++i) reqs[i] = {i, 0.01 * i, 32, 10, 1};
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.total_output_tokens, 4 * 10);
  // ITL gaps: 9 per request (first token comes from prefill).
  EXPECT_EQ(m.itl_ms.size(), 4u * 9u);
}

TEST(Engine, ParallelBranchesMultiplyOutputs) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 6, 4};
  reqs[1] = {1, 0.0, 64, 6, 1};
  const auto m = engine.Run(reqs);
  // Request 0: 1 prefill token + 4 branches x 5; request 1: 1 + 5.
  EXPECT_EQ(m.total_output_tokens, (1 + 4 * 5) + (1 + 5));
}

TEST(Engine, KvBudgetThrottlesAdmission) {
  auto cfg = BaseConfig();
  cfg.hbm_capacity_gb = 17.0;  // Barely above the 8B weights: tiny KV pool.
  ServingEngine engine(cfg);
  EXPECT_LT(engine.KvTokenBudget(), 30000);
  std::vector<Request> reqs(8);
  for (int i = 0; i < 8; ++i) reqs[i] = {i, 0.0, 2048, 4, 1};
  const auto m = engine.Run(reqs);  // Must complete despite the tight pool.
  EXPECT_EQ(m.ttft_ms.size(), 8u);
  EXPECT_EQ(m.total_output_tokens, 8 * 4);
}

TEST(Engine, FasterKernelsNeverHurtLatency) {
  // Sanity: scaling all attention kernels 2x slower must not reduce ITL.
  Rng rng(9);
  const auto reqs = ShareGptWorkload(rng, 40, 12.0);
  auto cfg = BaseConfig();
  const auto fast = ServingEngine(cfg).Run(reqs);
  cfg.backend.kernel_time_scale = 2.0;
  const auto slow = ServingEngine(cfg).Run(reqs);
  EXPECT_LE(fast.MedianItlMs(), slow.MedianItlMs());
  EXPECT_LE(fast.makespan_s, slow.makespan_s + 1e-9);
}

TEST(Engine, TensorParallelReducesItl) {
  Rng rng(10);
  const auto reqs = ShareGptWorkload(rng, 30, 6.0);
  EngineConfig cfg;
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  cfg.model = Llama31_70B(1);
  cfg.hbm_capacity_gb = 200.0;  // Hypothetical single-GPU fit.
  const auto tp1 = ServingEngine(cfg).Run(reqs);
  cfg.model = Llama31_70B(4);
  cfg.hbm_capacity_gb = 80.0;
  const auto tp4 = ServingEngine(cfg).Run(reqs);
  EXPECT_LT(tp4.MedianItlMs(), tp1.MedianItlMs());
}

TEST(Backends, PresetsDiffer) {
  EXPECT_EQ(FlashInferBackend().scheduler, SchedulerKind::kBalanced);
  EXPECT_NE(TritonBackend().scheduler, SchedulerKind::kBalanced);
  EXPECT_GT(TritonBackend().kernel_time_scale, 1.0);
  EXPECT_FALSE(FlashAttentionBackend().head_fusion);
  EXPECT_GT(VllmDefaultBackend().host_us_per_req, FlashInferBackend().host_us_per_req);
}

}  // namespace
}  // namespace flashinfer::serving
