// Unit tests for the observability layer: trace recorder ring semantics,
// time-series/histogram statistics, the shared JSON escape/parse helpers,
// exporter output shape, and the TraceQuery accounting primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/export.h"
#include "obs/query.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/json.h"

namespace flashinfer {
namespace {

using obs::Histogram;
using obs::TimeSeries;
using obs::TraceEvent;
using obs::TraceKind;
using obs::TraceName;
using obs::TraceRecorder;
using obs::TraceTrack;

TraceEvent Ev(TraceName n, double ts_us, double dur_us = 0.0, int32_t req = -1) {
  TraceEvent e;
  e.name = n;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.req = req;
  return e;
}

// --- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorder, RecordsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  for (int i = 0; i < 5; ++i) rec.Record(Ev(TraceName::kStep, i * 10.0));
  EXPECT_EQ(rec.size(), 5);
  EXPECT_EQ(rec.dropped(), 0);
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(events[i].ts_us, i * 10.0);
}

TEST(TraceRecorder, RingOverwriteKeepsTrailingWindow) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.Record(Ev(TraceName::kStep, i * 1.0));
  EXPECT_EQ(rec.size(), 4);
  EXPECT_EQ(rec.dropped(), 6);
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: events 6..9 survive.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(events[i].ts_us, 6.0 + i);
}

TEST(TraceRecorder, ClearResetsCounts) {
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) rec.Record(Ev(TraceName::kStep, i));
  rec.Clear();
  EXPECT_EQ(rec.size(), 0);
  EXPECT_EQ(rec.dropped(), 0);
  EXPECT_TRUE(rec.Events().empty());
}

TEST(TraceNames, KindPartitionAndStableStrings) {
  EXPECT_EQ(KindOf(TraceName::kStep), TraceKind::kSpan);
  EXPECT_EQ(KindOf(TraceName::kPhaseHost), TraceKind::kSpan);
  EXPECT_EQ(KindOf(TraceName::kReqRecompute), TraceKind::kSpan);
  EXPECT_EQ(KindOf(TraceName::kChunk), TraceKind::kInstant);
  EXPECT_EQ(KindOf(TraceName::kRouteDecision), TraceKind::kInstant);
  EXPECT_EQ(KindOf(TraceName::kCtrKvDevice), TraceKind::kCounter);
  EXPECT_EQ(KindOf(TraceName::kCtrTokPerS), TraceKind::kCounter);
  EXPECT_STREQ(TraceNameStr(TraceName::kStep), "step");
  EXPECT_STREQ(TraceNameStr(TraceName::kReqPreempted), "preempted");
  EXPECT_STREQ(TraceNameStr(TraceName::kCtrKvDevice), "kv_device_tokens");
}

// --- TimeSeries --------------------------------------------------------------

TEST(TimeSeries, BucketsSamplesByTime) {
  TimeSeries ts(1.0);
  ts.Add(0.1, 2.0);
  ts.Add(0.9, 4.0);
  ts.Add(2.5, 10.0);
  EXPECT_EQ(ts.NumBuckets(), 3);
  EXPECT_EQ(ts.Count(0), 2);
  EXPECT_DOUBLE_EQ(ts.Sum(0), 6.0);
  EXPECT_DOUBLE_EQ(ts.Mean(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.Max(0), 4.0);
  EXPECT_EQ(ts.Count(1), 0);  // Empty gap bucket exists.
  EXPECT_DOUBLE_EQ(ts.Mean(1), 0.0);
  EXPECT_EQ(ts.Count(2), 1);
  EXPECT_DOUBLE_EQ(ts.RatePerS(2), 10.0);  // Sum per second of bucket.
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, QuantilesBracketSamples) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.Count(), 1000);
  // Log-bucketed quantiles are approximate: within one growth factor.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 * 0.2);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 * 0.2);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(h.Quantile(0.0), 1.0 * 0.8);
  EXPECT_LE(h.Quantile(1.0), 1000.0 * 1.2);
}

TEST(Histogram, UnderflowAndOverflowCounted) {
  Histogram h(/*lo=*/1.0, /*hi=*/100.0);
  h.Add(0.001);
  h.Add(10.0);
  h.Add(1e6);
  EXPECT_EQ(h.Count(), 3);
  EXPECT_EQ(h.BucketCount(0), 1);                    // Underflow bucket.
  EXPECT_EQ(h.BucketCount(h.NumBuckets() - 1), 1);   // Overflow bucket.
}

TEST(Histogram, EmptyIsWellDefined) {
  const Histogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleBucketQuantilesClampToObservedRange) {
  Histogram h;
  // Identical samples land in one bucket: every quantile must answer within
  // the observed (degenerate) range, not the bucket's full geometric span.
  for (int i = 0; i < 100; ++i) h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.MinValue(), 42.0);
  EXPECT_DOUBLE_EQ(h.MaxValue(), 42.0);
  for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(p), 42.0) << "p=" << p;
  }
}

TEST(Histogram, OverflowBucketQuantileStaysWithinMax) {
  Histogram h(/*lo=*/1.0, /*hi=*/100.0);
  // Most mass beyond the top regular bucket: the overflow bucket has no
  // upper edge, so quantiles interpolating inside it must clamp to the
  // tracked exact max rather than extrapolating.
  h.Add(50.0);
  for (int i = 0; i < 99; ++i) h.Add(1000.0 + i);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 100.0);
  EXPECT_LE(p99, h.MaxValue());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.MaxValue());
}

TEST(Histogram, MergeFromAccumulatesAndTracksExtremes) {
  Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.Add(static_cast<double>(i));
  for (int i = 101; i <= 200; ++i) b.Add(static_cast<double>(i));
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 200);
  EXPECT_DOUBLE_EQ(a.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(a.MaxValue(), 200.0);
  EXPECT_NEAR(a.Mean(), 100.5, 1e-9);
  EXPECT_NEAR(a.Quantile(0.5), 100.0, 100.0 * 0.2);
  // Merging an empty histogram is a no-op (including min/max).
  const double before = a.Quantile(0.9);
  a.MergeFrom(Histogram());
  EXPECT_EQ(a.Count(), 200);
  EXPECT_DOUBLE_EQ(a.Quantile(0.9), before);
  // Merging INTO an empty histogram adopts the source's extremes.
  Histogram c;
  c.MergeFrom(a);
  EXPECT_EQ(c.Count(), 200);
  EXPECT_DOUBLE_EQ(c.MinValue(), 1.0);
  EXPECT_DOUBLE_EQ(c.MaxValue(), 200.0);
}

TEST(Histogram, FromSamplesMatchesPercentileRoughly) {
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(5.0 + (i % 50));
  const Histogram h = Histogram::FromSamples(samples);
  EXPECT_EQ(h.Count(), 500);
  EXPECT_NEAR(h.Quantile(0.5), 30.0, 10.0);
}

// --- JSON helpers ------------------------------------------------------------

TEST(Json, EscapeControlAndQuote) {
  EXPECT_EQ(util::JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(util::JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, NumFiniteAndNonFinite) {
  EXPECT_EQ(util::JsonNum(2.5), "2.5");
  EXPECT_EQ(util::JsonNum(std::nan("")), "0");
  EXPECT_EQ(util::JsonNum(1.0 / 0.0), "0");
}

TEST(Json, ParseRoundTrip) {
  util::JsonValue v;
  std::string err;
  ASSERT_TRUE(util::JsonParse(
      R"({"a": 1.5, "s": "x\ny", "arr": [1, true, null], "o": {"k": -2e3}})", &v,
      &err))
      << err;
  ASSERT_TRUE(v.IsObject());
  EXPECT_DOUBLE_EQ(v.NumberOr("a", 0.0), 1.5);
  EXPECT_EQ(v.StringOr("s", ""), "x\ny");
  const util::JsonValue* arr = v.Find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->IsArray());
  ASSERT_EQ(arr->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->arr[0].number, 1.0);
  EXPECT_TRUE(arr->arr[1].boolean);
  EXPECT_EQ(arr->arr[2].type, util::JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(v.Find("o")->NumberOr("k", 0.0), -2000.0);
}

TEST(Json, ParseRejectsMalformed) {
  util::JsonValue v;
  std::string err;
  EXPECT_FALSE(util::JsonParse("{\"a\": }", &v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(util::JsonParse("[1, 2] trailing", &v, &err));
  EXPECT_FALSE(util::JsonParse("", &v, &err));
}

// --- Exporters ---------------------------------------------------------------

std::vector<TraceTrack> SampleTracks() {
  TraceTrack t;
  t.name = "replica 0";
  TraceEvent step = Ev(TraceName::kStep, 0.0, 100.0);
  step.a = 32;
  step.b = 2;
  t.events.push_back(step);
  t.events.push_back(Ev(TraceName::kPhaseGemm, 0.0, 100.0));
  TraceEvent q = Ev(TraceName::kReqQueued, 0.0, 50.0, /*req=*/7);
  t.events.push_back(q);
  t.events.push_back(Ev(TraceName::kReqFinish, 100.0, 0.0, /*req=*/7));
  TraceEvent ctr = Ev(TraceName::kCtrKvDevice, 100.0);
  ctr.v = 4096.0;
  t.events.push_back(ctr);
  return {t};
}

TEST(Export, PerfettoJsonParsesAndHasSchema) {
  std::ostringstream os;
  obs::WritePerfettoJson(os, SampleTracks());
  util::JsonValue doc;
  std::string err;
  ASSERT_TRUE(util::JsonParse(os.str(), &doc, &err)) << err;
  const util::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  int spans = 0, asyncs = 0, counters = 0, meta = 0;
  for (const auto& e : events->arr) {
    const std::string ph = e.StringOr("ph", "");
    ASSERT_FALSE(ph.empty());
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.NumberOr("dur", -1.0), 0.0);
    } else if (ph == "b" || ph == "e" || ph == "n") {
      ++asyncs;
      EXPECT_EQ(e.StringOr("cat", ""), "request");
    } else if (ph == "C") {
      ++counters;
      ASSERT_NE(e.Find("args"), nullptr);
      EXPECT_DOUBLE_EQ(e.Find("args")->NumberOr("value", -1.0), 4096.0);
    } else if (ph == "M") {
      ++meta;
    }
  }
  EXPECT_EQ(spans, 2);     // step + gemm phase.
  EXPECT_EQ(asyncs, 3);    // queued b/e + finish n.
  EXPECT_EQ(counters, 1);
  EXPECT_GE(meta, 3);      // process_name + 2 thread_names.
}

TEST(Export, JsonlOneValidObjectPerEvent) {
  std::ostringstream os;
  obs::WriteJsonl(os, SampleTracks());
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    util::JsonValue v;
    std::string err;
    ASSERT_TRUE(util::JsonParse(line, &v, &err)) << err << ": " << line;
    EXPECT_EQ(v.StringOr("track", ""), "replica 0");
    EXPECT_FALSE(v.StringOr("name", "").empty());
    ++lines;
  }
  EXPECT_EQ(lines, 5);
}

// --- TraceQuery --------------------------------------------------------------

TEST(TraceQuery, PerRequestAccumulatesPhases) {
  std::vector<TraceEvent> events;
  events.push_back(Ev(TraceName::kReqQueued, 0.0, 10.0, 1));
  events.push_back(Ev(TraceName::kReqPrefill, 10.0, 20.0, 1));
  events.push_back(Ev(TraceName::kReqDecode, 30.0, 40.0, 1));
  events.push_back(Ev(TraceName::kReqPreempted, 70.0, 5.0, 1));
  events.push_back(Ev(TraceName::kReqSwapIn, 75.0, 5.0, 1));
  events.push_back(Ev(TraceName::kReqDecode, 80.0, 20.0, 1));
  events.push_back(Ev(TraceName::kReqFinish, 100.0, 0.0, 1));
  events.push_back(Ev(TraceName::kReqReject, 3.0, 0.0, 2));
  const obs::TraceQuery query(events);
  const auto rows = query.PerRequest();
  ASSERT_EQ(rows.size(), 2u);
  const auto& r = rows[0];
  EXPECT_EQ(r.req, 1);
  EXPECT_DOUBLE_EQ(r.queued_ms, 10e-3);
  EXPECT_DOUBLE_EQ(r.prefill_ms, 20e-3);
  EXPECT_DOUBLE_EQ(r.decode_ms, 60e-3);
  EXPECT_DOUBLE_EQ(r.preempted_ms, 5e-3);
  EXPECT_DOUBLE_EQ(r.swap_ms, 5e-3);
  // Phases tile arrival -> finish.
  EXPECT_NEAR(r.TotalMs(), r.finish_ms - r.arrival_ms, 1e-9);
  EXPECT_TRUE(rows[1].rejected);
}

TEST(TraceQuery, StallAttribution) {
  std::vector<TraceEvent> events;
  // Step with stalls explained by prefill-alone (a > 0, b == 0).
  TraceEvent s1 = Ev(TraceName::kStep, 0.0, 10.0);
  s1.a = 64;
  s1.c = 2;
  events.push_back(s1);
  // Step with stalls explained by a swap transfer.
  TraceEvent s2 = Ev(TraceName::kStep, 10.0, 10.0);
  s2.flags = obs::kStepFlagSwap;
  s2.c = 1;
  events.push_back(s2);
  obs::TraceQuery ok(events);
  EXPECT_TRUE(ok.UnexplainedItlStalls().empty());
  EXPECT_EQ(ok.TotalItlStallSteps(), 3);

  // A stalled step with decode tokens and no swap is unexplained.
  TraceEvent bad = Ev(TraceName::kStep, 20.0, 10.0);
  bad.a = 64;
  bad.b = 2;
  bad.c = 2;
  events.push_back(bad);
  obs::TraceQuery broken(events);
  ASSERT_EQ(broken.UnexplainedItlStalls().size(), 1u);
  EXPECT_DOUBLE_EQ(broken.UnexplainedItlStalls()[0].ts_us, 20.0);
}

TEST(TraceQuery, PreemptStallCoverage) {
  std::vector<TraceEvent> events;
  TraceEvent s = Ev(TraceName::kStep, 10.0, 10.0);
  s.d = 1;
  events.push_back(s);
  // Not yet covered by any preempted span -> unexplained.
  EXPECT_EQ(obs::TraceQuery(events).UnexplainedPreemptStalls().size(), 1u);
  // A preempted span enclosing the step explains it.
  events.push_back(Ev(TraceName::kReqPreempted, 5.0, 30.0, 3));
  EXPECT_TRUE(obs::TraceQuery(events).UnexplainedPreemptStalls().empty());
  EXPECT_EQ(obs::TraceQuery(events).TotalPreemptStallSteps(), 1);
}

}  // namespace
}  // namespace flashinfer
