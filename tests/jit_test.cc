#include <gtest/gtest.h>

#include "jit/codegen.h"
#include "jit/compiler.h"
#include "jit/interpreted.h"
#include "test_util.h"

namespace flashinfer::jit {
namespace {

using test::MakeProblem;
using test::MaxAbsDiff;
using test::ProblemSpec;
using test::RunSerial;

AttentionSpecDesc SigmoidSpec() {
  // The paper's FlashSigmoid example (Fig. 5), as a JIT spec.
  AttentionSpecDesc spec;
  spec.name = "FlashSigmoid";
  spec.kv_dtype = DType::kF32;
  spec.use_softmax = false;
  spec.extra_params = {{"scale", 1.0f}, {"bias", 0.0f}};
  spec.logits_transform_body =
      "return 1.f / (1.f + std::exp(-(logit * p.sm_scale * scale + bias)));";
  spec.logits_mask_body = "return fi::DefaultMask(p, ctx);";
  return spec;
}

TEST(SpecHash, StableAndSensitive) {
  const auto a = SigmoidSpec();
  auto b = a;
  EXPECT_EQ(SpecHash(a), SpecHash(b));
  b.logits_transform_body += " // changed";
  EXPECT_NE(SpecHash(a), SpecHash(b));
  b = a;
  b.kv_dtype = DType::kF16;
  EXPECT_NE(SpecHash(a), SpecHash(b));
  b = a;
  b.extra_params.push_back({"gamma", 2.0f});
  EXPECT_NE(SpecHash(a), SpecHash(b));
}

TEST(Codegen, EmitsExpectedStructure) {
  const auto src = GenerateSource(SigmoidSpec());
  EXPECT_NE(src.find("struct FlashSigmoid"), std::string::npos);
  EXPECT_NE(src.find("kUseSoftmax = false"), std::string::npos);
  EXPECT_NE(src.find("const float scale"), std::string::npos);
  EXPECT_NE(src.find("const float bias"), std::string::npos);
  EXPECT_NE(src.find("extern \"C\" void fi_variant_run"), std::string::npos);
  EXPECT_NE(src.find("RunWorkItem<float, FlashSigmoid>"), std::string::npos);
}

TEST(Codegen, DtypeSelectsKvType) {
  auto spec = SigmoidSpec();
  spec.kv_dtype = DType::kFP8_E4M3;
  const auto src = GenerateSource(spec);
  EXPECT_NE(src.find("fp8_e4m3_t, FlashSigmoid"), std::string::npos);
}

class JitCompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompilerAvailable()) GTEST_SKIP() << "no host compiler";
  }
};

TEST_F(JitCompileTest, CompiledSigmoidMatchesBuiltin) {
  auto kernel = CompileVariant(SigmoidSpec());
  ASSERT_NE(kernel->fn(), nullptr);
  EXPECT_FALSE(kernel->use_softmax());

  ProblemSpec spec;
  spec.qo_lens = {3, 1};
  spec.kv_lens = {21, 9};
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 2;
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  // Bind the JIT extras to match the builtin's sigmoid params.
  const float extras[2] = {1.5f, -0.5f};
  p.variant.extra = extras;
  p.variant.num_extra = 2;
  p.variant.sigmoid_scale = 1.5f;
  p.variant.sigmoid_bias = -0.5f;

  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(p, cfg, kernel->fn());
  const auto jit_out = prob.o.data;

  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kSigmoid, DType::kF32));
  EXPECT_LT(MaxAbsDiff(jit_out, prob.o.data), 1e-5f);
}

TEST_F(JitCompileTest, CustomMaskVariant) {
  // A "every other token" custom mask — something no builtin provides.
  AttentionSpecDesc spec;
  spec.name = "StridedMask";
  spec.kv_dtype = DType::kF32;
  spec.logits_mask_body = "return (ctx.kv_pos % 2 == 0) && fi::DefaultMask(p, ctx);";
  auto kernel = CompileVariant(spec);

  ProblemSpec pspec;
  pspec.qo_lens = {1};
  pspec.kv_lens = {16};
  pspec.num_qo_heads = 1;
  pspec.num_kv_heads = 1;
  pspec.tile_q = 1;
  auto prob = MakeProblem(pspec);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 1;
  RunSerial(p, cfg, kernel->fn());
  const auto jit_out = prob.o.data;

  // Reference: interpreted hooks with the same mask.
  InterpretedHooks hooks;
  hooks.logits_mask = [](const VariantParams& vp, const LogitsCtx& ctx) {
    return (ctx.kv_pos % 2 == 0) && DefaultMask(vp, ctx);
  };
  SetInterpretedHooks(hooks);
  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  RunSerial(p, cfg, GetInterpretedKernel(true, false, DType::kF32));
  SetInterpretedHooks({});
  EXPECT_LT(MaxAbsDiff(jit_out, prob.o.data), 1e-5f);
}

TEST_F(JitCompileTest, CacheHitsInMemoryAndOnDisk) {
  ResetJitCacheStats();
  AttentionSpecDesc spec;
  spec.name = "CacheProbe";
  spec.kv_dtype = DType::kF32;
  spec.extra_params = {{"probe", 3.25f}};  // Unique-ish spec.
  spec.logits_transform_body = "return logit * p.sm_scale * probe;";
  auto k1 = CompileVariant(spec);
  auto k2 = CompileVariant(spec);
  EXPECT_EQ(k1.get(), k2.get());  // In-process registry hit.
  const auto stats = GetJitCacheStats();
  EXPECT_GE(stats.memory_hits, 1);
  EXPECT_LE(stats.compilations, 1);  // 0 if a previous run left the .so.
}

TEST(Interpreted, DefaultHooksMatchVanilla) {
  SetInterpretedHooks({});
  ProblemSpec spec;
  spec.qo_lens = {2};
  spec.kv_lens = {12};
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(p, cfg, GetInterpretedKernel(true, false, DType::kF32));
  const auto interp = prob.o.data;
  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kVanilla, DType::kF32));
  EXPECT_LT(MaxAbsDiff(interp, prob.o.data), 1e-6f);
}

TEST(Interpreted, HookedSoftCapMatchesBuiltin) {
  InterpretedHooks hooks;
  hooks.logits_transform = [](const VariantParams& vp, float logit, const LogitsCtx&) {
    const float s = logit * vp.sm_scale;
    return vp.logits_soft_cap * std::tanh(s / vp.logits_soft_cap);
  };
  SetInterpretedHooks(hooks);
  ProblemSpec spec;
  spec.qo_lens = {2};
  spec.kv_lens = {12};
  spec.tile_q = 4;
  auto prob = MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  p.variant.logits_soft_cap = 8.0f;
  KernelConfig cfg;
  cfg.tile_q = 4;
  RunSerial(p, cfg, GetInterpretedKernel(true, false, DType::kF32));
  SetInterpretedHooks({});
  const auto interp = prob.o.data;
  std::fill(prob.o.data.begin(), prob.o.data.end(), 0.0f);
  RunSerial(p, cfg, GetBuiltinKernel(VariantKind::kSoftCap, DType::kF32));
  EXPECT_LT(test::MaxAbsDiff(interp, prob.o.data), 1e-6f);
}

TEST(Spec, ValidationRejectsBadIdentifiers) {
  AttentionSpecDesc spec;
  spec.name = "ok_name";
  ValidateSpec(spec);  // Fine.
  EXPECT_DEATH(
      {
        AttentionSpecDesc bad;
        bad.name = "bad name; rm -rf /";
        ValidateSpec(bad);
      },
      "FI_CHECK");
}

}  // namespace
}  // namespace flashinfer::jit
