// Host KV-tier codec: LZ4-style block compressor round trips, bounded-error
// quantization (incl. bfloat16 edge values), page-codec properties, and the
// PagedKVCache codec tier (byte accounting, capacity multiplication,
// transactional restore on device shortfall, codec-off bit-identity).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "kvcache/paged.h"
#include "util/codec.h"
#include "util/float_types.h"

namespace flashinfer {
namespace {

using util::DecodePage;
using util::EncodedPageBound;
using util::EncodePage;
using util::Lz4Compress;
using util::Lz4CompressBound;
using util::Lz4Decompress;
using util::PageCodecStats;

// --- LZ4 block round trips ---------------------------------------------------

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& src) {
  std::vector<uint8_t> comp(Lz4CompressBound(src.size()));
  const size_t csize = Lz4Compress(src.data(), src.size(), comp.data(), comp.size());
  EXPECT_GT(csize + (src.empty() ? 1 : 0), 0u);  // 0 only legal for empty input.
  EXPECT_LE(csize, comp.size());
  std::vector<uint8_t> out(src.size());
  const size_t dsize = Lz4Decompress(comp.data(), csize, out.data(), out.size());
  EXPECT_EQ(dsize, src.size());
  return out;
}

TEST(Lz4, EmptyInputRoundTrips) {
  std::vector<uint8_t> src;
  uint8_t dst[8];
  EXPECT_EQ(Lz4Compress(src.data(), 0, dst, sizeof dst), 0u);
  EXPECT_EQ(Lz4Decompress(dst, 0, dst, 0), 0u);
}

TEST(Lz4, TinyInputsRoundTrip) {
  // Below the minimum matchable size everything is literals; exercise each
  // length around the last-literals boundary.
  for (size_t n = 1; n <= 16; ++n) {
    std::vector<uint8_t> src(n);
    for (size_t i = 0; i < n; ++i) src[i] = static_cast<uint8_t>(17 * i + 3);
    EXPECT_EQ(RoundTrip(src), src) << "n=" << n;
  }
}

TEST(Lz4, RepetitiveInputCompressesAndRoundTrips) {
  std::vector<uint8_t> src(4096);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i % 7);
  std::vector<uint8_t> comp(Lz4CompressBound(src.size()));
  const size_t csize = Lz4Compress(src.data(), src.size(), comp.data(), comp.size());
  EXPECT_LT(csize, src.size() / 4);  // Period-7 data must compress hard.
  std::vector<uint8_t> out(src.size());
  EXPECT_EQ(Lz4Decompress(comp.data(), csize, out.data(), out.size()), src.size());
  EXPECT_EQ(out, src);
}

TEST(Lz4, RandomIncompressibleRoundTrips) {
  std::mt19937 rng(123);
  for (const size_t n : {1u, 63u, 64u, 65u, 255u, 256u, 257u, 4096u, 70000u}) {
    std::vector<uint8_t> src(n);
    for (auto& b : src) b = static_cast<uint8_t>(rng());
    EXPECT_EQ(RoundTrip(src), src) << "n=" << n;
  }
}

TEST(Lz4, LongMatchLengthExtensionRoundTrips) {
  // > 15+255 match lengths force multi-byte length continuation on both the
  // literal and match sides.
  std::vector<uint8_t> src(3000, 0xAB);
  src.front() = 1;
  src.back() = 2;
  EXPECT_EQ(RoundTrip(src), src);
  // Long literal run: random prefix (no matches) + short tail.
  std::mt19937 rng(7);
  std::vector<uint8_t> lit(1000);
  for (auto& b : lit) b = static_cast<uint8_t>(rng());
  EXPECT_EQ(RoundTrip(lit), lit);
}

TEST(Lz4, CompressReturnsZeroWhenDstTooSmall) {
  std::mt19937 rng(9);
  std::vector<uint8_t> src(512);
  for (auto& b : src) b = static_cast<uint8_t>(rng());
  uint8_t dst[16];
  EXPECT_EQ(Lz4Compress(src.data(), src.size(), dst, sizeof dst), 0u);
}

// --- Page codec --------------------------------------------------------------

constexpr size_t kElems = 2 * 2 * 16 * 8;  // 2 (K/V) x 2 heads x 16 slots x 8 dim.

std::vector<std::byte> MakePage(DType dtype, size_t elems,
                                const std::vector<float>& vals) {
  std::vector<std::byte> page(elems * DTypeBytes(dtype));
  for (size_t i = 0; i < elems; ++i) {
    const float v = vals[i % vals.size()];
    std::byte* p = page.data() + i * DTypeBytes(dtype);
    switch (dtype) {
      case DType::kF32: std::memcpy(p, &v, 4); break;
      case DType::kF16: { half_t h(v); std::memcpy(p, &h.bits, 2); break; }
      case DType::kBF16: { bf16_t h(v); std::memcpy(p, &h.bits, 2); break; }
      case DType::kFP8_E4M3: { fp8_e4m3_t h(v); std::memcpy(p, &h.bits, 1); break; }
      case DType::kFP8_E5M2: { fp8_e5m2_t h(v); std::memcpy(p, &h.bits, 1); break; }
    }
  }
  return page;
}

float ReadElem(const std::vector<std::byte>& page, DType dtype, size_t i) {
  const std::byte* p = page.data() + i * DTypeBytes(dtype);
  switch (dtype) {
    case DType::kF32: { float v; std::memcpy(&v, p, 4); return v; }
    case DType::kF16: { uint16_t b; std::memcpy(&b, p, 2); return float(half_t::FromBits(b)); }
    case DType::kBF16: { uint16_t b; std::memcpy(&b, p, 2); return float(bf16_t::FromBits(b)); }
    case DType::kFP8_E4M3: { return float(fp8_e4m3_t::FromBits(uint8_t(p[0]))); }
    case DType::kFP8_E5M2: { return float(fp8_e5m2_t::FromBits(uint8_t(p[0]))); }
  }
  return 0.0f;
}

std::vector<float> SmoothVals() {
  std::vector<float> v(kElems);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<float>(i) * 0.01f) * 3.0f;
  }
  return v;
}

TEST(PageCodec, LosslessCompressIsBitExactForEveryDtype) {
  const KvCodecConfig cfg{KvQuantFormat::kNone, /*compress=*/true};
  for (const DType dt : {DType::kF32, DType::kF16, DType::kBF16,
                         DType::kFP8_E4M3, DType::kFP8_E5M2}) {
    const auto page = MakePage(dt, kElems, SmoothVals());
    PageCodecStats st;
    const auto blob = EncodePage(page.data(), kElems, dt, cfg, &st);
    EXPECT_EQ(st.logical_bytes, static_cast<int64_t>(page.size()));
    EXPECT_EQ(st.stored_bytes, static_cast<int64_t>(blob.size()));
    EXPECT_LE(blob.size(), EncodedPageBound(kElems, dt, cfg));
    EXPECT_DOUBLE_EQ(st.mse, 0.0);
    std::vector<std::byte> out(page.size());
    DecodePage(blob.data(), blob.size(), out.data(), kElems, dt);
    EXPECT_EQ(std::memcmp(out.data(), page.data(), page.size()), 0)
        << "dtype=" << static_cast<int>(dt);
  }
}

TEST(PageCodec, Int8ErrorBoundedByHalfStep) {
  const KvCodecConfig cfg{KvQuantFormat::kInt8, /*compress=*/false};
  const auto vals = SmoothVals();
  const auto page = MakePage(DType::kF32, kElems, vals);
  PageCodecStats st;
  const auto blob = EncodePage(page.data(), kElems, DType::kF32, cfg, &st);
  EXPECT_LE(blob.size(), EncodedPageBound(kElems, DType::kF32, cfg));
  std::vector<std::byte> out(page.size());
  DecodePage(blob.data(), blob.size(), out.data(), kElems, DType::kF32);
  float lo = vals[0], hi = vals[0];
  for (float v : vals) { lo = std::min(lo, v); hi = std::max(hi, v); }
  const float step = (hi - lo) / 255.0f;
  double mse = 0.0;
  for (size_t i = 0; i < kElems; ++i) {
    const float orig = ReadElem(page, DType::kF32, i);
    const float back = ReadElem(out, DType::kF32, i);
    EXPECT_LE(std::abs(orig - back), step * 0.5f + 1e-6f) << "i=" << i;
    mse += double(orig - back) * double(orig - back);
  }
  mse /= kElems;
  EXPECT_LE(st.mse, double(step) * double(step) * 0.25 + 1e-12);
  EXPECT_NEAR(st.mse, mse, 1e-9);  // Reported proxy matches the realized error.
  EXPECT_GT(st.mse, 0.0);
}

TEST(PageCodec, Fp8RelativeErrorBounded) {
  for (const auto fmt : {KvQuantFormat::kFp8E4M3, KvQuantFormat::kFp8E5M2}) {
    const KvCodecConfig cfg{fmt, /*compress=*/false};
    const auto page = MakePage(DType::kF16, kElems, SmoothVals());
    PageCodecStats st;
    const auto blob = EncodePage(page.data(), kElems, DType::kF16, cfg, &st);
    std::vector<std::byte> out(page.size());
    DecodePage(blob.data(), blob.size(), out.data(), kElems, DType::kF16);
    // fp8 keeps >= 2 mantissa bits: relative error under amax scaling stays
    // within ~12.5% (e5m2: 2 bits -> 1/8 ulp relative bound) of amax.
    for (size_t i = 0; i < kElems; ++i) {
      const float orig = ReadElem(page, DType::kF16, i);
      const float back = ReadElem(out, DType::kF16, i);
      EXPECT_LE(std::abs(orig - back), 3.0f * 0.15f) << "i=" << i;
    }
    EXPECT_GE(st.mse, 0.0);
  }
}

TEST(PageCodec, Bf16EdgeValuesSanitizeAndStayFinite) {
  // Denormals, infinities, NaN, negative zero: the codec contract is NaN -> 0
  // and +/-inf -> +/-65504 *before* scale computation, so a poisoned page
  // cannot produce a non-finite scale or MSE.
  const float denorm = std::numeric_limits<float>::denorm_min();
  const std::vector<float> edge = {0.0f,
                                   -0.0f,
                                   denorm,
                                   -denorm,
                                   std::numeric_limits<float>::infinity(),
                                   -std::numeric_limits<float>::infinity(),
                                   std::numeric_limits<float>::quiet_NaN(),
                                   1.5f,
                                   -2.25f,
                                   65504.0f};
  for (const auto fmt : {KvQuantFormat::kInt8, KvQuantFormat::kFp8E4M3,
                         KvQuantFormat::kFp8E5M2}) {
    const KvCodecConfig cfg{fmt, /*compress=*/true};
    const auto page = MakePage(DType::kBF16, kElems, edge);
    PageCodecStats st;
    const auto blob = EncodePage(page.data(), kElems, DType::kBF16, cfg, &st);
    EXPECT_LE(blob.size(), EncodedPageBound(kElems, DType::kBF16, cfg));
    EXPECT_TRUE(std::isfinite(st.mse)) << "fmt=" << static_cast<int>(fmt);
    std::vector<std::byte> out(page.size());
    DecodePage(blob.data(), blob.size(), out.data(), kElems, DType::kBF16);
    for (size_t i = 0; i < kElems; ++i) {
      const float back = ReadElem(out, DType::kBF16, i);
      EXPECT_TRUE(std::isfinite(back)) << "i=" << i;
      EXPECT_LE(std::abs(back), 65504.0f * 1.01f);
    }
  }
}

TEST(PageCodec, RandomizedRoundTripsStayWithinBound) {
  std::mt19937 rng(0xC0DEC);
  std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> vals(kElems);
    for (auto& v : vals) v = dist(rng);
    const auto cfg = KvCodecConfig{
        static_cast<KvQuantFormat>(trial % 4),
        /*compress=*/(trial / 4) % 2 == 0};
    if (!cfg.enabled()) continue;
    const auto page = MakePage(DType::kF16, kElems, vals);
    PageCodecStats st;
    const auto blob = EncodePage(page.data(), kElems, DType::kF16, cfg, &st);
    ASSERT_LE(blob.size(), EncodedPageBound(kElems, DType::kF16, cfg));
    std::vector<std::byte> out(page.size());
    DecodePage(blob.data(), blob.size(), out.data(), kElems, DType::kF16);
    if (cfg.quant == KvQuantFormat::kNone) {
      EXPECT_EQ(std::memcmp(out.data(), page.data(), page.size()), 0);
    } else {
      for (size_t i = 0; i < kElems; i += 97) {
        EXPECT_LE(std::abs(ReadElem(page, DType::kF16, i) -
                           ReadElem(out, DType::kF16, i)),
                  1.0f)
            << "trial=" << trial << " i=" << i;
      }
    }
  }
}

// --- PagedKVCache codec tier -------------------------------------------------

constexpr int kPage = 16;

PagedKVCache MakeCodecCache(int64_t pages, int64_t host_pages, KvCodecConfig codec,
                            bool synthetic = false) {
  return PagedKVCache(DType::kF16, /*num_kv_heads=*/2, /*head_dim=*/8, kPage, pages,
                      host_pages, codec, synthetic);
}

std::vector<float> Rows(int64_t tokens, float base) {
  std::vector<float> v(static_cast<size_t>(tokens) * 2 * 8);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = base + 0.125f * static_cast<float>(i % 64);
  }
  return v;
}

TEST(CodecTier, QuantizedEvictRestoreApproximatesValues) {
  const KvCodecConfig codec{KvQuantFormat::kInt8, /*compress=*/true};
  auto kv = MakeCodecCache(8, 8, codec);
  const int seq = kv.CreateSequence();
  const auto k = Rows(2 * kPage, 1.0f);
  const auto v = Rows(2 * kPage, -3.0f);
  kv.AppendTokens(seq, k.data(), v.data(), 2 * kPage);

  const auto est = kv.EvictSequenceEx(seq);
  EXPECT_EQ(est.pages, 2);
  EXPECT_GT(est.stored_bytes, 0);
  EXPECT_EQ(est.logical_bytes, 2 * kv.PageBytes());
  EXPECT_LT(est.stored_bytes, est.logical_bytes);  // int8 halves f16 at worst.
  EXPECT_GT(est.mse_pages, 0);
  EXPECT_EQ(kv.host_bytes_in_use(), est.stored_bytes);
  EXPECT_TRUE(kv.IsEvicted(seq));

  const auto rst = kv.RestoreSequenceEx(seq);
  EXPECT_EQ(rst.pages, 2);
  EXPECT_EQ(rst.stored_bytes, est.stored_bytes);
  EXPECT_EQ(kv.host_bytes_in_use(), 0);
  EXPECT_FALSE(kv.IsEvicted(seq));
  // Values come back within the int8 step of the page range.
  const auto& pages = kv.SequencePages(seq);
  for (int slot = 0; slot < kPage; ++slot) {
    for (int h = 0; h < 2; ++h) {
      for (int d = 0; d < 8; ++d) {
        const size_t idx =
            (static_cast<size_t>(slot) * 2 + static_cast<size_t>(h)) * 8 +
            static_cast<size_t>(d);
        EXPECT_NEAR(kv.KAt(pages[0], h, slot, d), k[idx], 0.05f);
        EXPECT_NEAR(kv.VAt(pages[0], h, slot, d), v[idx], 0.05f);
      }
    }
  }
}

TEST(CodecTier, EffectiveCapacityExceedsNominalPageCount) {
  // 2 nominal host pages. Admission gates on the *worst-case* encoded size
  // (int8 bound ~0.52x of f16), but realized int8+lz4 blobs are far smaller,
  // so sequential evictions pack 4 pages into a tier sized for 2 raw ones.
  const KvCodecConfig codec{KvQuantFormat::kInt8, /*compress=*/true};
  auto kv = MakeCodecCache(8, 2, codec);
  const int a = kv.CreateSequence();
  const int b = kv.CreateSequence();
  const auto k = Rows(2 * kPage, 0.5f);
  const auto v = Rows(2 * kPage, -1.5f);
  kv.AppendTokens(a, k.data(), v.data(), 2 * kPage);
  kv.AppendTokens(b, k.data(), v.data(), 2 * kPage);

  ASSERT_TRUE(kv.HostCanHold(2));
  const auto sa = kv.EvictSequenceEx(a);
  EXPECT_EQ(sa.pages, 2);
  EXPECT_LT(kv.ObservedStoredRatio(), 0.52);
  // The first eviction's realized bytes leave room the raw tier lacks: the
  // worst-case gate still admits the second 2-page sequence.
  ASSERT_TRUE(kv.HostCanHold(2));
  const auto sb = kv.EvictSequenceEx(b);
  EXPECT_EQ(sb.pages, 2);
  EXPECT_EQ(kv.num_live_host_pages(), 4);  // 2x the nominal page count.
  EXPECT_GT(kv.num_live_host_pages(), kv.max_host_pages());
  EXPECT_LE(kv.host_bytes_in_use(), kv.host_byte_capacity());

  EXPECT_EQ(kv.RestoreSequence(a), 2);
  EXPECT_EQ(kv.RestoreSequence(b), 2);
  EXPECT_EQ(kv.host_bytes_in_use(), 0);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
}

TEST(CodecTier, RestoreShortfallIsTransactional) {
  const KvCodecConfig codec{KvQuantFormat::kInt8, /*compress=*/false};
  auto kv = MakeCodecCache(4, 8, codec);
  const int seq = kv.CreateSequence();
  const auto k = Rows(3 * kPage, 2.0f);
  const auto v = Rows(3 * kPage, 4.0f);
  kv.AppendTokens(seq, k.data(), v.data(), 3 * kPage);
  ASSERT_EQ(kv.EvictSequence(seq), 3);
  const int64_t host_bytes = kv.host_bytes_in_use();
  const int64_t host_pages = kv.num_live_host_pages();

  // Exhaust the device pool so only 2 of the 3 needed pages are free.
  const int hog = kv.CreateSequence();
  kv.ExtendSequence(hog, 2 * kPage);
  ASSERT_EQ(kv.num_free_pages(), 2);

  const auto st = kv.RestoreSequenceEx(seq);
  EXPECT_EQ(st.pages, -1);  // Refused...
  EXPECT_TRUE(kv.IsEvicted(seq));  // ...and nothing moved:
  EXPECT_EQ(kv.host_bytes_in_use(), host_bytes);
  EXPECT_EQ(kv.num_live_host_pages(), host_pages);
  EXPECT_EQ(kv.num_free_pages(), 2);

  // Free device pages; the retry succeeds and drains the host bytes.
  kv.DropSequence(hog);
  const auto ok = kv.RestoreSequenceEx(seq);
  EXPECT_EQ(ok.pages, 3);
  EXPECT_EQ(kv.host_bytes_in_use(), 0);
  EXPECT_FALSE(kv.IsEvicted(seq));
  kv.DropSequence(seq);
  EXPECT_EQ(kv.num_free_pages(), 4);
}

TEST(CodecTier, DropWhileEvictedFreesHostBytes) {
  const KvCodecConfig codec{KvQuantFormat::kFp8E4M3, /*compress=*/true};
  auto kv = MakeCodecCache(4, 4, codec);
  const int seq = kv.CreateSequence();
  const auto k = Rows(2 * kPage, 1.0f);
  const auto v = Rows(2 * kPage, 2.0f);
  kv.AppendTokens(seq, k.data(), v.data(), 2 * kPage);
  ASSERT_EQ(kv.EvictSequence(seq), 2);
  EXPECT_GT(kv.host_bytes_in_use(), 0);
  kv.DropSequence(seq);
  EXPECT_EQ(kv.host_bytes_in_use(), 0);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
  EXPECT_EQ(kv.num_free_pages(), 4);
}

TEST(CodecTier, CodecOffRestoreIsBitExact) {
  // The codec-off tier must remain byte-for-byte the raw page pool: evict +
  // restore round-trips exact f16 bits (no encode in the path).
  auto kv = MakeCodecCache(4, 4, KvCodecConfig{});
  const int seq = kv.CreateSequence();
  const auto k = Rows(kPage, 0.333f);
  const auto v = Rows(kPage, -0.777f);
  kv.AppendTokens(seq, k.data(), v.data(), kPage);
  const int64_t page_before = kv.SequencePages(seq)[0];
  std::vector<uint16_t> bits_before;
  for (int slot = 0; slot < kPage; ++slot) {
    for (int h = 0; h < 2; ++h) {
      for (int d = 0; d < 8; ++d) {
        bits_before.push_back(
            half_t(kv.KAt(page_before, h, slot, d)).bits);
        bits_before.push_back(
            half_t(kv.VAt(page_before, h, slot, d)).bits);
      }
    }
  }
  ASSERT_EQ(kv.EvictSequence(seq), 1);
  ASSERT_EQ(kv.RestoreSequence(seq), 1);
  const int64_t page_after = kv.SequencePages(seq)[0];
  size_t i = 0;
  for (int slot = 0; slot < kPage; ++slot) {
    for (int h = 0; h < 2; ++h) {
      for (int d = 0; d < 8; ++d) {
        EXPECT_EQ(half_t(kv.KAt(page_after, h, slot, d)).bits, bits_before[i++]);
        EXPECT_EQ(half_t(kv.VAt(page_after, h, slot, d)).bits, bits_before[i++]);
      }
    }
  }
}

TEST(CodecTier, SyntheticFillGivesCompressiblePages) {
  // Structural engine caches enable synthetic_fill so encoded ratios reflect
  // data-like payloads; the fill must be deterministic and compressible.
  const KvCodecConfig codec{KvQuantFormat::kInt8, /*compress=*/true};
  auto a = MakeCodecCache(4, 4, codec, /*synthetic=*/true);
  auto b = MakeCodecCache(4, 4, codec, /*synthetic=*/true);
  const int sa = a.CreateSequence();
  const int sb = b.CreateSequence();
  a.ExtendSequence(sa, 2 * kPage);
  b.ExtendSequence(sb, 2 * kPage);
  const auto ea = a.EvictSequenceEx(sa);
  const auto eb = b.EvictSequenceEx(sb);
  EXPECT_EQ(ea.stored_bytes, eb.stored_bytes);  // Deterministic fill.
  EXPECT_LT(ea.stored_bytes, ea.logical_bytes);
}

}  // namespace
}  // namespace flashinfer
