// Cross-module integration: a miniature serving flow over real kernels.
//
// Exercises the full chain the paper's Listing 1 implies: prefill requests
// into the paged cache -> publish prompts in the radix tree -> fork branches
// that adopt cached prefixes -> run batch decode through Plan/Run (balanced
// scheduler, split-KV, contraction) -> append generated tokens -> repeat.
// Every step's outputs are validated against the double-precision reference.
#include <gtest/gtest.h>

#include "core/reference.h"
#include "kvcache/radix.h"
#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "test_util.h"

namespace flashinfer {
namespace {

class MiniServing : public ::testing::Test {
 protected:
  static constexpr int kQoHeads = 4;
  static constexpr int kKvHeads = 2;
  static constexpr int kHeadDim = 16;
  static constexpr int kPageSize = 4;

  void SetUp() override {
    cache_ = std::make_unique<PagedKVCache>(DType::kF16, kKvHeads, kHeadDim, kPageSize,
                                            /*max_pages=*/512);
    workspace_ = std::make_unique<Workspace>(Workspace::EstimateBytes(512, 64, kHeadDim));
    BatchAttentionHandle::TaskInfo info;
    info.kv_dtype = DType::kF16;
    info.num_qo_heads = kQoHeads;
    info.num_kv_heads = kKvHeads;
    info.head_dim = kHeadDim;
    info.avg_qlen_hint = 1.0;
    handle_ = std::make_unique<BatchAttentionHandle>(gpusim::A100Sxm40GB(), info,
                                                     workspace_.get());
    handle_->MutableVariantParams().sm_scale =
        1.0f / std::sqrt(static_cast<float>(kHeadDim));
    handle_->MutableVariantParams().causal = true;
  }

  int PrefillSequence(int64_t len, Rng& rng) {
    const int seq = cache_->CreateSequence();
    std::vector<float> k(static_cast<size_t>(len) * kKvHeads * kHeadDim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    cache_->AppendTokens(seq, k.data(), v.data(), len);
    return seq;
  }

  /// One decode step for `seqs`: checks the batched handle output against the
  /// reference and appends a fresh token to every sequence.
  void DecodeStepAndVerify(const std::vector<int>& seqs, Rng& rng) {
    const int n = static_cast<int>(seqs.size());
    const int g = kQoHeads / kKvHeads;
    std::vector<int64_t> kv_lens;
    std::vector<sparse::RequestKv> req_kv;
    for (int seq : seqs) {
      kv_lens.push_back(cache_->SequenceLength(seq));
      req_kv.push_back(cache_->ExportKv(seq));
    }
    const auto qo_indptr = BuildIndptr(std::vector<int64_t>(static_cast<size_t>(n), 1));
    std::vector<int64_t> fused_lens(static_cast<size_t>(n), g);
    auto bsr = sparse::BuildBatchBsr(BuildIndptr(fused_lens), req_kv, kPageSize,
                                     handle_->config().tile_q);

    auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(kQoHeads) * kHeadDim);
    for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));
    auto o = RaggedTensor::Zeros(qo_indptr, q.inner);

    handle_->Plan(&bsr, qo_indptr, kv_lens);
    handle_->Run(q, *cache_, &o);

    AttentionParams p;
    p.q = &q;
    p.kv = cache_.get();
    p.bsr = &bsr;
    p.qo_indptr = qo_indptr;
    p.kv_len = kv_lens;
    p.num_qo_heads = kQoHeads;
    p.num_kv_heads = kKvHeads;
    p.head_dim = kHeadDim;
    p.variant = handle_->MutableVariantParams();
    auto ref = RaggedTensor::Zeros(qo_indptr, q.inner);
    ReferenceAttention<VanillaVariant>(p, &ref);
    EXPECT_LT(test::MaxAbsDiff(o.data, ref.data), 2e-3f);

    // Append a generated token per sequence.
    std::vector<float> k(static_cast<size_t>(kKvHeads) * kHeadDim);
    std::vector<float> v(k.size());
    for (int seq : seqs) {
      for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
      for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
      cache_->AppendTokens(seq, k.data(), v.data(), 1);
    }
  }

  std::unique_ptr<PagedKVCache> cache_;
  std::unique_ptr<Workspace> workspace_;
  std::unique_ptr<BatchAttentionHandle> handle_;
};

TEST_F(MiniServing, MultiStepBatchDecode) {
  Rng rng(31);
  std::vector<int> seqs;
  for (int64_t len : {45, 7, 120, 3}) seqs.push_back(PrefillSequence(len, rng));
  for (int step = 0; step < 5; ++step) {
    DecodeStepAndVerify(seqs, rng);
  }
  // Lengths advanced by 5 tokens each.
  EXPECT_EQ(cache_->SequenceLength(seqs[0]), 50);
  EXPECT_EQ(cache_->SequenceLength(seqs[3]), 8);
}

TEST_F(MiniServing, RadixPrefixForkAndDecode) {
  Rng rng(37);
  RadixTree radix(kPageSize);
  // Prefill a 24-token prompt and publish it.
  const int prompt = PrefillSequence(24, rng);
  std::vector<int32_t> tokens(24);
  for (auto& t : tokens) t = static_cast<int32_t>(rng.UniformInt(0, 999));
  radix.Insert(tokens, cache_->SequencePages(prompt));
  for (int64_t page : cache_->SequencePages(prompt)) cache_->RetainPage(page);

  // Fork 3 branches via prefix match; each adds 2 own tokens.
  std::vector<int> branches;
  for (int b = 0; b < 3; ++b) {
    const auto m = radix.MatchPrefix(tokens);
    ASSERT_EQ(m.matched_tokens, 24);
    const int seq = cache_->CreateSequence();
    cache_->AdoptPrefix(seq, m.pages, m.matched_tokens);
    std::vector<float> k(static_cast<size_t>(2) * kKvHeads * kHeadDim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    cache_->AppendTokens(seq, k.data(), v.data(), 2);
    branches.push_back(seq);
  }
  EXPECT_EQ(cache_->RefCount(cache_->SequencePages(prompt)[0]), 5);  // 1+radix+3.

  // Decode the branches together; results verified against the reference.
  for (int step = 0; step < 3; ++step) {
    DecodeStepAndVerify(branches, rng);
  }
  for (int seq : branches) {
    EXPECT_EQ(cache_->SequenceLength(seq), 24 + 2 + 3);
    cache_->DropSequence(seq);
  }
  cache_->DropSequence(prompt);
  // Radix still pins the prompt pages; nothing else leaked.
  EXPECT_EQ(cache_->num_live_pages(), 24 / kPageSize);
}

TEST_F(MiniServing, GraphReplayAcrossGenerationSteps) {
  // Listing-1 flow: capture once, then per step: update lengths, plan(),
  // replay — three generation steps with correctness checks.
  Rng rng(41);
  std::vector<int> seqs{PrefillSequence(30, rng), PrefillSequence(9, rng)};
  const int g = kQoHeads / kKvHeads;
  const auto qo_indptr = BuildIndptr({1, 1});
  auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(kQoHeads) * kHeadDim);
  auto o = RaggedTensor::Zeros(qo_indptr, q.inner);

  gpusim::CudaGraph graph;
  bool captured = false;
  std::vector<float> tok_k(static_cast<size_t>(kKvHeads) * kHeadDim, 0.3f);
  std::vector<float> tok_v(tok_k.size(), -0.2f);

  for (int step = 0; step < 3; ++step) {
    std::vector<int64_t> kv_lens;
    std::vector<sparse::RequestKv> req_kv;
    for (int seq : seqs) {
      kv_lens.push_back(cache_->SequenceLength(seq));
      req_kv.push_back(cache_->ExportKv(seq));
    }
    auto bsr = sparse::BuildBatchBsr(BuildIndptr({g, g}), req_kv, kPageSize,
                                     handle_->config().tile_q);
    for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));
    handle_->Plan(&bsr, qo_indptr, kv_lens);
    if (!captured) {
      graph.BeginCapture();
      handle_->CaptureRun(graph, "decode", q, *cache_, &o);
      graph.EndCapture();
      captured = true;
    }
    graph.Replay();

    AttentionParams p;
    p.q = &q;
    p.kv = cache_.get();
    p.bsr = &bsr;
    p.qo_indptr = qo_indptr;
    p.kv_len = kv_lens;
    p.num_qo_heads = kQoHeads;
    p.num_kv_heads = kKvHeads;
    p.head_dim = kHeadDim;
    p.variant = handle_->MutableVariantParams();
    auto ref = RaggedTensor::Zeros(qo_indptr, q.inner);
    ReferenceAttention<VanillaVariant>(p, &ref);
    EXPECT_LT(test::MaxAbsDiff(o.data, ref.data), 2e-3f) << "step " << step;

    for (int seq : seqs) cache_->AppendTokens(seq, tok_k.data(), tok_v.data(), 1);
  }
}

}  // namespace
}  // namespace flashinfer
