// Speculative-decoding subsystem tests: draft-tree construction and mask
// lowering, acceptance sampling, verify-step pricing through the real
// scheduler, engine integration (Run ≡ StepTo under spec decode, exact KV
// accounting under rollback), and the cluster layer with spec replicas.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "serving/engine.h"
#include "spec/spec.h"
#include "spec/tree.h"
#include "spec/verify.h"

namespace flashinfer::spec {
namespace {

using serving::EngineConfig;
using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  return cfg;
}

EngineConfig SpecConfig(int depth, int branching, double accept = 0.7) {
  EngineConfig cfg = BaseConfig();
  cfg.spec.enabled = true;
  cfg.spec.tree = TreeConfig{depth, branching};
  cfg.spec.default_accept_prob = accept;
  return cfg;
}

// --- Tree construction and mask lowering -----------------------------------

TEST(DraftTree, ChainShape) {
  DraftTree chain(TreeConfig{4, 1});
  EXPECT_EQ(chain.Size(), 4);
  EXPECT_EQ(chain.SubtreeSize(), 4);
  EXPECT_EQ(chain.Parent(0), -1);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(chain.Parent(i), i - 1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(chain.Level(i), i + 1);
}

TEST(DraftTree, BinaryTreeShape) {
  DraftTree tree(TreeConfig{3, 2});
  EXPECT_EQ(tree.Size(), 2 + 4 + 8);
  EXPECT_EQ(tree.SubtreeSize(), 7);
  EXPECT_EQ(tree.Parent(0), -1);
  EXPECT_EQ(tree.Parent(1), -1);
  EXPECT_EQ(tree.Parent(2), 0);
  EXPECT_EQ(tree.Parent(3), 0);
  EXPECT_EQ(tree.Parent(4), 1);
  EXPECT_EQ(tree.Parent(6), 2);
  EXPECT_EQ(tree.LevelWidth(3), 8);
}

TEST(DraftTree, AncestorMaskMatchesParentChains) {
  DraftTree tree(TreeConfig{2, 2});  // Nodes 0,1 (level 1); 2,3,4,5 (level 2).
  const auto mask = tree.AncestorMask();
  // Node 3's ancestors: itself and node 0.
  EXPECT_TRUE(mask[3][3]);
  EXPECT_TRUE(mask[3][0]);
  EXPECT_FALSE(mask[3][1]);
  EXPECT_FALSE(mask[3][2]);
  // Level-1 nodes see only themselves (parents live in the committed KV).
  EXPECT_TRUE(mask[0][0]);
  EXPECT_FALSE(mask[0][1]);
  // Branch isolation: node 2 (under 0) never sees node 4 (under 1).
  EXPECT_FALSE(mask[2][4]);
}

TEST(DraftTree, MaskLowersToBsrWithExactNnz) {
  DraftTree tree(TreeConfig{3, 2});
  // tile_q = 1, group = 1: one block row per token, nnz = sum of ancestor
  // chain lengths = sum over nodes of level(node).
  const auto bsr = TreeMaskBsr(tree, /*tile_q=*/1, /*group=*/1);
  bsr.Validate();
  int64_t expect = 0;
  for (int i = 0; i < tree.Size(); ++i) expect += tree.Level(i);
  EXPECT_EQ(bsr.Nnz(), expect);
  EXPECT_EQ(bsr.num_rows, tree.Size());
}

TEST(DraftTree, FusedMaskExpandsRows) {
  DraftTree tree(TreeConfig{2, 1});
  const auto bsr = TreeMaskBsr(tree, /*tile_q=*/2, /*group=*/4);
  bsr.Validate();
  EXPECT_EQ(bsr.num_rows, tree.Size() * 4);
}

TEST(SparseHelpers, TileBsrDiagonalOffsetsColumns) {
  DraftTree tree(TreeConfig{2, 2});
  const auto unit = TreeMaskBsr(tree, 1, 1);
  const auto batch = sparse::TileBsrDiagonal(unit, 3);
  batch.Validate();
  EXPECT_EQ(batch.num_rows, unit.num_rows * 3);
  EXPECT_EQ(batch.num_col_blocks, unit.num_col_blocks * 3);
  EXPECT_EQ(batch.Nnz(), unit.Nnz() * 3);
  // Copy 2's first block points at the offset column space.
  const int64_t nnz = unit.Nnz();
  EXPECT_EQ(batch.indices[static_cast<size_t>(2 * nnz)],
            unit.indices[0] + 2 * unit.num_col_blocks);
  // Logical positions restart per copy (per-request coordinates).
  EXPECT_EQ(batch.block_pos[static_cast<size_t>(2 * nnz)], unit.block_pos[0]);
}

// --- Acceptance sampling ----------------------------------------------------

TEST(Acceptance, SampleBoundsAndDeterminism) {
  DraftTree tree(TreeConfig{4, 2});
  Rng a(123), b(123);
  for (int i = 0; i < 200; ++i) {
    const int la = SampleAcceptedLen(a, tree, 0.6);
    EXPECT_GE(la, 0);
    EXPECT_LE(la, 4);
    EXPECT_EQ(la, SampleAcceptedLen(b, tree, 0.6));
  }
}

TEST(Acceptance, DegenerateProbabilities) {
  DraftTree tree(TreeConfig{3, 1});
  Rng rng(1);
  EXPECT_EQ(SampleAcceptedLen(rng, tree, 0.0), 0);
  EXPECT_EQ(SampleAcceptedLen(rng, tree, 1.0), 3);
}

TEST(Acceptance, MeanTracksClosedFormAndBranchingHelps) {
  DraftTree chain(TreeConfig{4, 1});
  DraftTree wide(TreeConfig{4, 3});
  Rng rng(7);
  const int trials = 20000;
  double chain_sum = 0, wide_sum = 0;
  for (int i = 0; i < trials; ++i) chain_sum += SampleAcceptedLen(rng, chain, 0.6);
  for (int i = 0; i < trials; ++i) wide_sum += SampleAcceptedLen(rng, wide, 0.6);
  const double chain_mean = chain_sum / trials, wide_mean = wide_sum / trials;
  EXPECT_NEAR(chain_mean, ExpectedAcceptedLen(chain, 0.6), 0.05);
  EXPECT_NEAR(wide_mean, ExpectedAcceptedLen(wide, 0.6), 0.05);
  // More candidates per level -> longer accepted prefixes.
  EXPECT_GT(wide_mean, chain_mean + 0.3);
}

// --- Verify-step pricing through the real kernel path -----------------------

TEST(VerifyPricing, CostsMoreThanVanillaDecodeAndScalesWithTree) {
  const auto dev = gpusim::H100Sxm80GB();
  const auto backend = serving::FlashInferBackend();
  serving::AttnSimInput in;  // Llama-8B-like geometry (defaults).
  const std::vector<int64_t> ctx(16, 2048);

  DraftTree small(TreeConfig{2, 1});
  DraftTree big(TreeConfig{4, 2});
  const auto r_small = PriceVerifyAttention(dev, backend, in, ctx, small);
  const auto r_big = PriceVerifyAttention(dev, backend, in, ctx, big);
  EXPECT_GT(r_small.time_us, 0.0);
  // More tree tokens -> strictly more attention work.
  EXPECT_GT(r_big.time_us, r_small.time_us);
  EXPECT_GT(r_big.total_hbm_bytes, r_small.total_hbm_bytes);

  // And a verify launch costs more than the one-token decode launch it
  // replaces (it reads the same context for every tree token).
  serving::AttnSimInput decode = in;
  decode.qo_lens.assign(16, 1);
  decode.kv_lens = ctx;
  const auto r_decode = SimulateBatchAttention(dev, backend, decode);
  EXPECT_GT(r_small.time_us, r_decode.time_us);
}

TEST(VerifyPricing, MaskedAttentionHonorsSparsity) {
  // A chain tail (dense causal-ish mask) must cost at least as much as a
  // maximally-branched tree of the same size, whose mask is sparser (each
  // leaf sees only its own path).
  const auto dev = gpusim::H100Sxm80GB();
  const auto backend = serving::FlashInferBackend();
  serving::AttnSimInput in;
  DraftTree chain(TreeConfig{8, 1});   // 8 tokens, chain: nnz = 36.
  DraftTree bushy(TreeConfig{1, 8});   // 8 tokens, one level: nnz = 8.
  const int g = in.num_qo_heads / in.num_kv_heads;
  const auto chain_bsr = TreeMaskBsr(chain, 16, g);
  const auto bushy_bsr = TreeMaskBsr(bushy, 16, g);
  EXPECT_GT(chain_bsr.Nnz(), bushy_bsr.Nnz());
  const std::vector<int64_t> qo(4, 8), kv(4, 8);
  const auto chain_cost = SimulateMaskedAttention(
      dev, backend, in, sparse::TileBsrDiagonal(chain_bsr, 4), qo, kv);
  const auto bushy_cost = SimulateMaskedAttention(
      dev, backend, in, sparse::TileBsrDiagonal(bushy_bsr, 4), qo, kv);
  EXPECT_GE(chain_cost.total_hbm_bytes, bushy_cost.total_hbm_bytes);
}

// --- Engine integration ------------------------------------------------------

void ExpectMetricsIdentical(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.spec_steps, b.spec_steps);
  EXPECT_EQ(a.spec_committed_tokens, b.spec_committed_tokens);
  ASSERT_EQ(a.accepted_len_hist.size(), b.accepted_len_hist.size());
  for (size_t k = 0; k < a.accepted_len_hist.size(); ++k) {
    EXPECT_EQ(a.accepted_len_hist[k], b.accepted_len_hist[k]) << "hist bin " << k;
  }
  ASSERT_EQ(a.ttft_ms.size(), b.ttft_ms.size());
  for (size_t i = 0; i < a.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ttft_ms[i], b.ttft_ms[i]) << "ttft sample " << i;
  }
  ASSERT_EQ(a.itl_ms.size(), b.itl_ms.size());
  for (size_t i = 0; i < a.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.itl_ms[i], b.itl_ms[i]) << "itl sample " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_DOUBLE_EQ(a.total_draft_ms, b.total_draft_ms);
}

TEST(SpecEngine, RunEqualsStepLoop) {
  Rng rng(19);
  auto workload = serving::ShareGptWorkload(rng, 40, 15.0);
  serving::AssignAcceptance(rng, workload, 0.4, 0.9);

  ServingEngine reference(SpecConfig(4, 2));
  const auto run_metrics = reference.Run(workload);

  ServingEngine stepped(SpecConfig(4, 2));
  stepped.Reset();
  for (const auto& r : workload) stepped.Admit(r);
  while (!stepped.Finished()) {
    const double next = stepped.NextEventTime();
    ASSERT_TRUE(std::isfinite(next));
    ASSERT_GE(stepped.StepTo(next), 1);
  }
  ExpectMetricsIdentical(run_metrics, stepped.Metrics());
}

TEST(SpecEngine, ExactKvAccountingAfterDrainUnderRollback) {
  Rng rng(23);
  auto workload = serving::ShareGptWorkload(rng, 30, 20.0);
  serving::AssignAcceptance(rng, workload, 0.2, 0.95);
  // Parallel branches force fork-from-shared-prefix paths too.
  for (size_t i = 0; i < workload.size(); i += 3) workload[i].parallel_n = 3;

  for (int branching : {1, 2}) {
    ServingEngine engine(SpecConfig(3, branching));
    engine.Run(workload);
    EXPECT_EQ(engine.KvTokensInUse(), 0) << "branching " << branching;
    EXPECT_EQ(engine.SpecKvLivePages(), 0) << "branching " << branching;
    EXPECT_TRUE(engine.Finished());
  }
}

TEST(SpecEngine, TightKvBudgetThrottlesAdmissionInsteadOfExhaustingPool) {
  // Regression: verify steps commit several tokens at once with no per-token
  // budget gate, so spec admission must reserve each branch's full output up
  // front — otherwise a tight KV pool exhausts the fork/rollback page pool
  // mid-run (hard abort) where vanilla merely over-commits.
  auto cfg = SpecConfig(4, 2, 0.8);
  cfg.hbm_capacity_gb = 17.0;  // Barely above the 8B weights: tiny KV pool.
  ServingEngine engine(cfg);
  EXPECT_LT(engine.KvTokenBudget(), 30000);
  std::vector<Request> reqs(60);
  for (int i = 0; i < 60; ++i) reqs[i] = {i, 0.0, 1024, 256, 1};
  const auto m = engine.Run(reqs);  // Must complete despite the tight pool.
  EXPECT_EQ(m.ttft_ms.size(), 60u);
  EXPECT_EQ(m.total_output_tokens, 60 * 256);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

TEST(SpecEngine, TokensPerStepReflectsAcceptance) {
  Rng rng(29);
  auto workload = serving::ShareGptWorkload(rng, 30, 15.0);

  serving::AssignAcceptance(rng, workload, 0.9, 0.9);
  ServingEngine high(SpecConfig(4, 1));
  const auto hm = high.Run(workload);
  EXPECT_GT(hm.spec_steps, 0);
  EXPECT_GT(hm.TokensPerSpecStep(), 2.5);  // E[commit] ~ 3.4 at p=0.9, d=4.

  serving::AssignAcceptance(rng, workload, 0.1, 0.1);
  ServingEngine low(SpecConfig(4, 1));
  const auto lm = low.Run(workload);
  EXPECT_LT(lm.TokensPerSpecStep(), 1.6);  // E[commit] ~ 1.11 at p=0.1.
  EXPECT_GT(lm.TokensPerSpecStep(), 0.99);  // Always commits >= 1 per branch.
  EXPECT_GT(hm.ThroughputTokS(), lm.ThroughputTokS());

  // Histogram totals match: one sample per branch per verify step; output
  // token conservation holds regardless of acceptance.
  int64_t verifications = 0;
  for (int64_t c : hm.accepted_len_hist) verifications += c;
  EXPECT_GT(verifications, 0);
  int64_t expect_tokens = 0;
  for (const auto& r : workload) expect_tokens += r.output_len;
  EXPECT_EQ(hm.total_output_tokens, expect_tokens);
  EXPECT_EQ(lm.total_output_tokens, expect_tokens);
}

TEST(SpecEngine, HighAcceptanceBeatsVanillaDecode) {
  Rng rng(31);
  auto workload = serving::ShareGptWorkload(rng, 40, 10.0);
  serving::AssignAcceptance(rng, workload, 0.9, 0.9);

  const auto vanilla = ServingEngine(BaseConfig()).Run(workload);
  const auto spec = ServingEngine(SpecConfig(4, 1, 0.9)).Run(workload);
  EXPECT_EQ(spec.total_output_tokens, vanilla.total_output_tokens);
  EXPECT_GT(spec.ThroughputTokS(), vanilla.ThroughputTokS());
  EXPECT_LT(spec.makespan_s, vanilla.makespan_s);
  EXPECT_GT(spec.DraftOverheadFrac(), 0.0);
  EXPECT_LT(spec.DraftOverheadFrac(), 0.5);
}

TEST(SpecEngine, DisabledSpecIsExactlyVanilla) {
  // The spec refactor must be invisible when disabled: same steps, times,
  // and metrics as the pre-refactor single-token decode loop.
  Rng rng(37);
  const auto workload = serving::ShareGptWorkload(rng, 30, 12.0);
  const auto m = ServingEngine(BaseConfig()).Run(workload);
  EXPECT_EQ(m.spec_steps, 0);
  EXPECT_EQ(m.spec_committed_tokens, 0);
  EXPECT_DOUBLE_EQ(m.total_draft_ms, 0.0);
  EXPECT_TRUE(m.accepted_len_hist.empty());
  int64_t expect_tokens = 0;
  for (const auto& r : workload) expect_tokens += r.output_len;
  EXPECT_EQ(m.total_output_tokens, expect_tokens);
}

// --- StepTo idle accounting (satellite fix) ----------------------------------

TEST(SpecEngine, StepToCountsOnlyWorkSteps) {
  ServingEngine engine(BaseConfig());
  engine.Reset();
  Request r;
  r.id = 0;
  r.arrival_s = 5.0;
  r.input_len = 64;
  r.output_len = 4;
  engine.Admit(r);
  // Reaching the arrival takes one idle skip + one prefill: only the
  // prefill is a work step.
  EXPECT_EQ(engine.StepTo(5.0), 1);
  EXPECT_EQ(engine.Metrics().num_idle_skips, 1);
  EXPECT_DOUBLE_EQ(engine.Metrics().total_idle_s, 5.0);
  engine.Drain();
  // Work steps == metrics num_steps (idle never inflates num_steps).
  EXPECT_EQ(engine.Metrics().num_steps, 1 + 3);  // Prefill + 3 decode steps.
}

TEST(SpecEngine, IdleTimeSeparatesFromBusyTime) {
  ServingEngine engine(BaseConfig());
  std::vector<Request> reqs(2);
  reqs[0] = {0, 0.0, 64, 2, 1};
  reqs[1] = {1, 100.0, 64, 2, 1};
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.num_idle_skips, 1);
  EXPECT_GT(m.total_idle_s, 99.0);
  EXPECT_LT(m.BusyMs() * 1e-3, 1.0);  // Actual work is far under a second.
}

// --- Spec decode + chunked prefill -------------------------------------------

// Verify steps coexist with in-flight prefill chunks in one mixed step
// (instead of alternating exclusively), and the KV accounting still closes
// exactly: no token charge and no structural page survives Drain().
TEST(SpecEngine, VerifyCoexistsWithPrefillChunksAndDrainsClean) {
  for (const int branching : {1, 2}) {
    auto cfg = SpecConfig(3, branching, 0.6);
    cfg.prefill_chunk_tokens = 512;
    Rng rng(47);
    serving::BurstyPrefillConfig wcfg;
    wcfg.num_steady = 40;
    wcfg.num_bursts = 2;
    wcfg.burst_size = 2;
    wcfg.burst_input_lo = 2048;
    wcfg.burst_input_hi = 4096;
    auto workload = serving::BurstyLongPrefillWorkload(rng, wcfg);
    serving::AssignAcceptance(rng, workload, 0.4, 0.9);

    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    EXPECT_GT(m.mixed_steps, 0) << "branching " << branching;
    EXPECT_GT(m.spec_steps, 0) << "branching " << branching;
    EXPECT_EQ(m.itl_stall_steps, 0) << "branching " << branching;
    EXPECT_EQ(engine.KvTokensInUse(), 0) << "branching " << branching;
    EXPECT_EQ(engine.SpecKvLivePages(), 0) << "branching " << branching;
    int64_t expect_tokens = 0;
    for (const auto& r : workload) expect_tokens += r.output_len;
    EXPECT_EQ(m.total_output_tokens, expect_tokens);
  }
}

// --- Cluster with spec-enabled replicas --------------------------------------

TEST(SpecCluster, SingleReplicaMatchesEngine) {
  Rng rng(41);
  auto workload = serving::ShareGptWorkload(rng, 30, 15.0);
  serving::AssignAcceptance(rng, workload, 0.5, 0.9);

  ServingEngine engine(SpecConfig(3, 2));
  const auto engine_metrics = engine.Run(workload);

  cluster::ClusterConfig cfg;
  cfg.engine = SpecConfig(3, 2);
  cfg.num_replicas = 1;
  cfg.policy = cluster::RouterPolicy::kRoundRobin;
  const auto cluster_metrics = cluster::ClusterEngine(cfg).Run(workload);

  ASSERT_EQ(cluster_metrics.per_replica.size(), 1u);
  ExpectMetricsIdentical(engine_metrics, cluster_metrics.per_replica[0]);
  ExpectMetricsIdentical(engine_metrics, cluster_metrics.aggregate);
}

TEST(SpecCluster, MultiReplicaAggregatesSpecMetrics) {
  Rng rng(43);
  auto workload = serving::ShareGptWorkload(rng, 60, 30.0);
  serving::AssignAcceptance(rng, workload, 0.7, 0.7);

  cluster::ClusterConfig cfg;
  cfg.engine = SpecConfig(4, 1);
  cfg.num_replicas = 3;
  cfg.policy = cluster::RouterPolicy::kLeastLoaded;
  const auto m = cluster::ClusterEngine(cfg).Run(workload);
  EXPECT_GT(m.aggregate.spec_steps, 0);
  EXPECT_GT(m.aggregate.TokensPerSpecStep(), 1.0);
  int64_t expect_tokens = 0;
  for (const auto& r : workload) expect_tokens += r.output_len;
  EXPECT_EQ(m.aggregate.total_output_tokens, expect_tokens);
}

}  // namespace
}  // namespace flashinfer::spec
