// Randomized cross-subsystem soak/property harness.
//
// Every trial draws a random config point — chunking on/off, speculative
// decoding on/off, preemption on/off (random restore policy), tight vs loose
// KV budget, batch policy — and a random bursty workload admitted in
// *shuffled* order, then asserts the whole-engine invariants that every
// subsystem must preserve when composed with the others:
//
//   1. the drain loop terminates (bounded step count, so a wedge prints the
//      reproducing seed instead of hanging the test runner),
//   2. exact KV accounting: KvTokensInUse()==0, HostKvTokensInUse()==0 and
//      SpecKvLivePages()==0 after the drain,
//   3. every admitted (non-rejected) request completes exactly once,
//   4. on a fixed-seed subset, Run() ≡ an external Admit/StepTo loop.
//
// A failing trial prints `seed=...` — rerun with that seed to reproduce.
// Trial count: FI_SOAK_TRIALS (default 50; 0 skips the randomized test —
// CI's sanitizer job runs only the 3 pinned seeds, which are always on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <unistd.h>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/export.h"
#include "serving/engine.h"

namespace flashinfer {
namespace {

// FI_CHECK failures abort the process before gtest can print SCOPED_TRACE,
// so the reproducing seed is echoed from a SIGABRT handler too.
volatile uint64_t g_current_seed = 0;
// Engine of the trial in flight, for the abort-path trace dump.
const serving::ServingEngine* g_current_engine = nullptr;

/// Writes the trial's trailing trace window (Perfetto + JSONL) next to the
/// reproducing seed, into $FI_SOAK_DUMP_DIR (default: cwd). Every trial runs
/// with tracing on, so a failure ships the event history that led up to it.
void DumpTrialTrace(const std::vector<obs::TraceTrack>& tracks, uint64_t seed) {
  const char* dir = std::getenv("FI_SOAK_DUMP_DIR");
  const std::string base = std::string(dir != nullptr ? dir : ".") +
                           "/soak_seed_" + std::to_string(seed);
  obs::WritePerfettoFile(base + ".trace.json", tracks);
  obs::WriteJsonlFile(base + ".trace.jsonl", tracks);
  std::fprintf(stderr, "[soak] trailing trace dumped to %s.trace.json\n",
               base.c_str());
}

void AbortSeedReporter(int) {
  std::signal(SIGABRT, SIG_DFL);  // A nested failure falls through to core.
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "\n[soak] seed=%llu\n",
                              static_cast<unsigned long long>(g_current_seed));
  if (n > 0) {
    [[maybe_unused]] auto r = write(2, buf, static_cast<size_t>(n));
  }
  // Best-effort trace dump. Not async-signal-safe in general, but the abort
  // comes from a logic FI_CHECK (heap intact), the process is dying anyway,
  // and the handler has already been reset so a nested crash still aborts.
  if (g_current_engine != nullptr) {
    const serving::ServingEngine* engine = g_current_engine;
    g_current_engine = nullptr;
    DumpTrialTrace({{"engine", engine->TraceEvents()}}, g_current_seed);
  }
  std::abort();
}

struct InstallAbortReporter {
  InstallAbortReporter() { std::signal(SIGABRT, AbortSeedReporter); }
} g_install_abort_reporter;

using serving::BatchPolicy;
using serving::EngineConfig;
using serving::Request;
using serving::RestorePolicy;
using serving::ServingEngine;
using serving::ServingMetrics;

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

EngineConfig RandomConfig(Rng& rng) {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  // Every trial records a trailing trace window: failures dump it, and the
  // emission paths themselves soak across the whole random config space.
  // A small ring keeps the per-trial cost flat and exercises wraparound.
  cfg.trace.enabled = true;
  cfg.trace.capacity = 4096;
  // Telemetry rides every trial: the publication sites soak across the whole
  // config space and the registry is reconciled against ServingMetrics after
  // each drain. Randomized window geometry exercises the slot-ring epochs.
  cfg.telemetry.enabled = true;
  cfg.telemetry.window.window_s = rng.Uniform(2.0, 20.0);
  cfg.telemetry.window.slots = static_cast<int>(rng.UniformInt(2, 8));
  cfg.telemetry.bounded_itl = rng.NextDouble() < 0.25;
  // Chunking on/off; when on, vary the chunk size.
  cfg.prefill_chunk_tokens =
      rng.NextDouble() < 0.25 ? 0 : rng.UniformInt(256, 2048);
  cfg.batch_policy = rng.NextDouble() < 0.5 ? BatchPolicy::kDecodePriority
                                            : BatchPolicy::kThroughputPriority;
  // Spec decode on/off.
  if (rng.NextDouble() < 0.4) {
    cfg.spec.enabled = true;
    cfg.spec.tree.depth = static_cast<int>(rng.UniformInt(1, 3));
    cfg.spec.tree.branching = static_cast<int>(rng.UniformInt(1, 2));
  }
  // Preemption on/off with a random restore policy, host tier, and transfer
  // model (serialized legacy swaps vs overlapped copy streams).
  if (rng.NextDouble() < 0.5) {
    cfg.preemption.enabled = true;
    const double u = rng.NextDouble();
    cfg.preemption.restore = u < 0.34   ? RestorePolicy::kSwap
                             : u < 0.67 ? RestorePolicy::kRecompute
                                        : RestorePolicy::kAuto;
    cfg.preemption.host_capacity_gb = rng.NextDouble() < 0.3 ? 0.25 : 8.0;
    cfg.preemption.overlap_swap = rng.NextDouble() < 0.5;
    // Host-tier codec on half the preempting trials: random quant format
    // (incl. none = compress-only lossless) x compression coin-flip.
    if (rng.NextDouble() < 0.5) {
      cfg.preemption.host_codec.quant =
          static_cast<KvQuantFormat>(rng.UniformInt(0, 3));
      cfg.preemption.host_codec.compress = rng.NextDouble() < 0.5;
    }
  }
  // Tight vs loose KV budget.
  cfg.hbm_capacity_gb = rng.NextDouble() < 0.55
                            ? HbmForBudget(cfg, rng.UniformInt(2500, 9000))
                            : 80.0;
  return cfg;
}

std::vector<Request> RandomWorkload(Rng& rng) {
  std::vector<Request> reqs;
  const double choice = rng.NextDouble();
  if (choice < 0.4) {
    serving::BurstyPrefillConfig w;
    w.num_steady = static_cast<int>(rng.UniformInt(15, 35));
    w.steady_rate = rng.Uniform(15.0, 45.0);
    w.num_bursts = static_cast<int>(rng.UniformInt(1, 3));
    w.burst_size = static_cast<int>(rng.UniformInt(2, 4));
    w.burst_input_lo = 2048;
    w.burst_input_hi = 6144;
    reqs = serving::BurstyLongPrefillWorkload(rng, w);
  } else if (choice < 0.7) {
    reqs = serving::UniformWorkload(rng, static_cast<int>(rng.UniformInt(20, 45)),
                                    rng.Uniform(15.0, 50.0), 128, 1536,
                                    rng.UniformInt(16, 192));
  } else {
    reqs = serving::ShareGptWorkload(rng, static_cast<int>(rng.UniformInt(20, 45)),
                                     rng.Uniform(10.0, 30.0));
    // Occasional parallel-generation groups (never preempted, but they
    // stress the shared-prefix fork paths under pressure).
    for (auto& r : reqs) {
      if (rng.NextDouble() < 0.15) r.parallel_n = 2;
    }
  }
  serving::AssignPriorities(rng, reqs, {0.6, 0.3, 0.1});
  serving::AssignAcceptance(rng, reqs, 0.3, 0.95);
  return reqs;
}

int64_t ExpectedOutputTokens(const Request& r) {
  const int n = std::max(1, r.parallel_n);
  return n > 1 ? 1 + static_cast<int64_t>(n) * std::max<int64_t>(r.output_len - 1, 0)
               : std::max<int64_t>(r.output_len, 1);
}

/// Drains with a step bound so a future admission wedge fails with the
/// reproducing seed instead of hanging the test binary until its timeout.
void BoundedDrain(ServingEngine& engine) {
  for (int64_t i = 0; i < 500000 && !engine.Finished(); ++i) {
    engine.StepTo(engine.NextEventTime());
  }
  ASSERT_TRUE(engine.Finished()) << "drain did not terminate";
}

/// Failed gtest assertion parts recorded so far in the current test (used to
/// detect whether THIS trial failed, across the many trials one TEST runs).
int FailedPartCount() {
  const auto* result =
      ::testing::UnitTest::GetInstance()->current_test_info()->result();
  int failed = 0;
  for (int i = 0; i < result->total_part_count(); ++i) {
    if (result->GetTestPartResult(i).failed()) ++failed;
  }
  return failed;
}

void RunEngineTrial(uint64_t seed, bool check_step_equiv) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  g_current_seed = seed;
  const int failed_before = FailedPartCount();
  Rng rng(seed);
  const EngineConfig cfg = RandomConfig(rng);
  std::vector<Request> reqs = RandomWorkload(rng);

  // Shuffled admission order: the engine must behave identically no matter
  // the order simultaneous arrivals are enqueued in.
  std::vector<Request> shuffled = reqs;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
  }

  ServingEngine engine(cfg);
  g_current_engine = &engine;
  engine.Reset();
  for (const auto& r : shuffled) engine.Admit(r);
  BoundedDrain(engine);
  if (::testing::Test::HasFatalFailure()) {
    DumpTrialTrace({{"engine", engine.TraceEvents()}}, seed);
    g_current_engine = nullptr;
    return;
  }

  const ServingMetrics& m = engine.Metrics();
  // Exact KV accounting on both tiers, and a clean structural page pool.
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
  EXPECT_EQ(engine.PreemptedBranches(), 0);
  EXPECT_EQ(engine.QueuedTokens(), 0);

  // Every admitted request completed exactly once; rejections only under a
  // budget no request-sized engine could ever satisfy.
  EXPECT_EQ(m.ttft_ms.size() + static_cast<size_t>(m.rejected_requests),
            reqs.size());
  EXPECT_EQ(m.ttft_ms.size(), m.ttft_priority.size());
  if (m.rejected_requests == 0) {
    int64_t expected = 0;
    for (const auto& r : reqs) expected += ExpectedOutputTokens(r);
    EXPECT_EQ(m.total_output_tokens, expected);
  } else {
    EXPECT_GT(m.total_output_tokens, 0);
  }
  // Restores must balance preemptions: nothing stays evicted.
  EXPECT_EQ(m.num_swap_restores + m.num_recompute_restores, m.num_preemptions);
  EXPECT_EQ(m.restored_pages == 0, m.num_swap_restores == 0);
  // Swap-time decomposition. Legacy mode serializes every swap into the next
  // step (all stall, nothing hidden); overlap mode hides transfer time behind
  // compute, bounded by the total transfer time actually enqueued.
  EXPECT_GE(m.swap_hidden_ms, 0.0);
  EXPECT_GE(m.swap_stall_ms, 0.0);
  if (cfg.preemption.overlap_swap) {
    EXPECT_LE(m.swap_hidden_ms, m.total_swap_ms * (1.0 + 1e-9));
    EXPECT_GE(m.SwapOverlapEfficiency().value_or(0.0), 0.0);
    EXPECT_LE(m.SwapOverlapEfficiency().value_or(0.0), 1.0 + 1e-9);
  } else {
    EXPECT_DOUBLE_EQ(m.swap_hidden_ms, 0.0);
    EXPECT_NEAR(m.swap_stall_ms, m.total_swap_ms,
                1e-9 * std::max(1.0, m.total_swap_ms));
  }
  // Host-codec accounting invariants across the random codec space.
  const auto& codec = cfg.preemption.host_codec;
  EXPECT_GE(m.evicted_stored_bytes, 0.0);
  EXPECT_GE(m.codec_encode_ms, 0.0);
  EXPECT_GE(m.codec_decode_ms, 0.0);
  EXPECT_TRUE(std::isfinite(m.MeanPageQuantMse()));
  EXPECT_GE(m.MeanPageQuantMse(), 0.0);
  if (!codec.enabled()) {
    // Codec off: the raw tier's byte series degenerate to logical == stored
    // and no codec time or quantization error may accrue.
    EXPECT_DOUBLE_EQ(m.evicted_stored_bytes, m.evicted_logical_bytes);
    EXPECT_DOUBLE_EQ(m.codec_encode_ms, 0.0);
    EXPECT_DOUBLE_EQ(m.codec_decode_ms, 0.0);
    EXPECT_EQ(m.quant_mse_pages, 0);
    EXPECT_DOUBLE_EQ(m.HostStoredRatio(), 1.0);
  } else if (m.evicted_logical_bytes > 0.0) {
    // Quantized pages store at most the int8/fp8 bound (< 1x of f16);
    // compress-only pages may pay the blob header on incompressible data
    // but never exceed the all-literals bound.
    EXPECT_LE(m.HostStoredRatio(),
              codec.quant != KvQuantFormat::kNone ? 1.0 : 1.5);
    EXPECT_GT(m.evicted_stored_bytes, 0.0);
    EXPECT_GT(m.codec_encode_ms, 0.0);
    if (codec.quant == KvQuantFormat::kNone) EXPECT_EQ(m.quant_mse_pages, 0);
  }

  // The telemetry registry must reconcile with ServingMetrics on every
  // trial: each published counter shadows a metrics field exactly, and the
  // per-class latency sketches tile the aggregate sample counts.
  {
    const obs::MetricsRegistry* reg = engine.Telemetry();
    ASSERT_NE(reg, nullptr);
    const auto total = [&](const char* name) { return reg->CounterFamilyTotal(name); };
    EXPECT_DOUBLE_EQ(total("fi_steps_total"), static_cast<double>(m.num_steps));
    EXPECT_DOUBLE_EQ(total("fi_output_tokens_total"),
                     static_cast<double>(m.total_output_tokens));
    EXPECT_DOUBLE_EQ(total("fi_tokens_total"),
                     static_cast<double>(m.total_output_tokens));
    EXPECT_DOUBLE_EQ(total("fi_prefill_tokens_total"),
                     static_cast<double>(m.total_prefill_tokens));
    EXPECT_DOUBLE_EQ(total("fi_recompute_tokens_total"),
                     static_cast<double>(m.recompute_tokens));
    EXPECT_DOUBLE_EQ(total("fi_preemptions_total"),
                     static_cast<double>(m.num_preemptions));
    EXPECT_DOUBLE_EQ(total("fi_requests_rejected_total"),
                     static_cast<double>(m.rejected_requests));
    EXPECT_DOUBLE_EQ(total("fi_swap_restores_total"),
                     static_cast<double>(m.num_swap_restores));
    EXPECT_DOUBLE_EQ(total("fi_recompute_restores_total"),
                     static_cast<double>(m.num_recompute_restores));
    EXPECT_DOUBLE_EQ(total("fi_evicted_pages_total"),
                     static_cast<double>(m.evicted_pages));
    EXPECT_DOUBLE_EQ(total("fi_restored_pages_total"),
                     static_cast<double>(m.restored_pages));
    EXPECT_NEAR(total("fi_swap_ms_total"), m.total_swap_ms,
                1e-9 * std::max(1.0, m.total_swap_ms));
    EXPECT_NEAR(total("fi_swap_stall_ms_total"), m.swap_stall_ms,
                1e-9 * std::max(1.0, m.swap_stall_ms));
    EXPECT_NEAR(total("fi_swap_hidden_ms_total"), m.swap_hidden_ms,
                1e-9 * std::max(1.0, m.swap_hidden_ms));
    // Codec series counters shadow their metrics fields exactly (zero-valued
    // but reconciled on codec-off trials).
    EXPECT_NEAR(total("fi_kv_evicted_logical_bytes_total"), m.evicted_logical_bytes,
                1e-9 * std::max(1.0, m.evicted_logical_bytes));
    EXPECT_NEAR(total("fi_kv_evicted_stored_bytes_total"), m.evicted_stored_bytes,
                1e-9 * std::max(1.0, m.evicted_stored_bytes));
    EXPECT_NEAR(total("fi_codec_encode_ms_total"), m.codec_encode_ms,
                1e-9 * std::max(1.0, m.codec_encode_ms));
    EXPECT_NEAR(total("fi_codec_decode_ms_total"), m.codec_decode_ms,
                1e-9 * std::max(1.0, m.codec_decode_ms));
    EXPECT_NEAR(total("fi_quant_mse_sum_total"), m.quant_mse_sum,
                1e-9 * std::max(1.0, m.quant_mse_sum));
    EXPECT_DOUBLE_EQ(total("fi_quant_mse_pages_total"),
                     static_cast<double>(m.quant_mse_pages));
    int64_t ttft_samples = 0, itl_samples = 0;
    for (const auto& [name, label_key] : reg->InstanceNames()) {
      if (name != "fi_ttft_ms" && name != "fi_itl_ms") continue;
      // Reconstruct the class labels from the canonical key (k=v,k=v).
      obs::LabelSet labels;
      size_t pos = 0;
      while (pos < label_key.size()) {
        const size_t eq = label_key.find('=', pos);
        size_t end = label_key.find(',', eq);
        if (end == std::string::npos) end = label_key.size();
        labels = labels.With(label_key.substr(pos, eq - pos),
                             label_key.substr(eq + 1, end - eq - 1));
        pos = end + 1;
      }
      const obs::Sketch* s = reg->FindSketch(name, labels);
      ASSERT_NE(s, nullptr) << name << "{" << label_key << "}";
      (name == "fi_ttft_ms" ? ttft_samples : itl_samples) += s->Cumulative().Count();
    }
    EXPECT_EQ(ttft_samples, static_cast<int64_t>(m.ttft_ms.size()));
    EXPECT_EQ(itl_samples, m.ItlCount());
  }

  g_current_engine = nullptr;
  if (!check_step_equiv) {
    if (FailedPartCount() > failed_before) {
      DumpTrialTrace({{"engine", engine.TraceEvents()}}, seed);
    }
    return;
  }
  // Run() ≡ external Admit/StepTo loop with rng-jittered deadlines.
  ServingEngine reference(cfg);
  const auto run = reference.Run(reqs);
  ServingEngine stepped(cfg);
  stepped.Reset();
  for (const auto& r : shuffled) stepped.Admit(r);
  for (int64_t i = 0; i < 500000 && !stepped.Finished(); ++i) {
    stepped.StepTo(stepped.NextEventTime() + rng.Uniform(0.0, 0.05));
  }
  ASSERT_TRUE(stepped.Finished());
  const ServingMetrics& st = stepped.Metrics();
  EXPECT_DOUBLE_EQ(st.makespan_s, run.makespan_s);
  EXPECT_EQ(st.num_steps, run.num_steps);
  EXPECT_EQ(st.total_output_tokens, run.total_output_tokens);
  EXPECT_EQ(st.num_preemptions, run.num_preemptions);
  EXPECT_EQ(st.rejected_requests, run.rejected_requests);
  ASSERT_EQ(st.ttft_ms.size(), run.ttft_ms.size());
  for (size_t i = 0; i < st.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(st.ttft_ms[i], run.ttft_ms[i]) << "ttft " << i;
  }
  ASSERT_EQ(st.itl_ms.size(), run.itl_ms.size());
  for (size_t i = 0; i < st.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(st.itl_ms[i], run.itl_ms[i]) << "itl " << i;
  }
  if (FailedPartCount() > failed_before) {
    DumpTrialTrace({{"engine", engine.TraceEvents()}}, seed);
  }
}

void RunClusterTrial(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  g_current_seed = seed;
  g_current_engine = nullptr;  // Abort-path dump only covers engine trials.
  const int failed_before = FailedPartCount();
  Rng rng(seed);
  cluster::ClusterConfig cfg;
  cfg.engine = RandomConfig(rng);
  cfg.num_replicas = 4;
  const double u = rng.NextDouble();
  cfg.policy = u < 0.34   ? cluster::RouterPolicy::kRoundRobin
               : u < 0.67 ? cluster::RouterPolicy::kLeastLoaded
                          : cluster::RouterPolicy::kPrefixAffinity;

  serving::TenantPoolConfig tcfg;
  tcfg.num_tenants = static_cast<int>(rng.UniformInt(4, 12));
  auto reqs = serving::MultiTenantWorkload(
      rng, static_cast<int>(rng.UniformInt(30, 60)), rng.Uniform(20.0, 60.0), tcfg);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  serving::AssignAcceptance(rng, reqs, 0.3, 0.95);

  cluster::ClusterEngine cluster(cfg);
  const auto m = cluster.Run(reqs);

  // Routed everywhere it was asked; every admitted request completed.
  EXPECT_EQ(m.router.routed, static_cast<int64_t>(reqs.size()));
  EXPECT_EQ(m.aggregate.ttft_ms.size() +
                static_cast<size_t>(m.aggregate.rejected_requests),
            reqs.size());
  EXPECT_EQ(m.aggregate.ttft_ms.size(), m.aggregate.ttft_priority.size());
  EXPECT_EQ(m.aggregate.num_swap_restores + m.aggregate.num_recompute_restores,
            m.aggregate.num_preemptions);
  int64_t per_replica_requests = 0;
  for (int64_t n : m.replica_requests) per_replica_requests += n;
  EXPECT_EQ(per_replica_requests, static_cast<int64_t>(reqs.size()));
  // The merged (replica-relabeled) registry reconciles with the aggregate.
  const obs::MetricsRegistry* reg = cluster.Telemetry();
  ASSERT_NE(reg, nullptr);
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_output_tokens_total"),
                   static_cast<double>(m.aggregate.total_output_tokens));
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_steps_total"),
                   static_cast<double>(m.aggregate.num_steps));
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_preemptions_total"),
                   static_cast<double>(m.aggregate.num_preemptions));

  // Threaded twin: the identical config and workload driven over a worker
  // pool must reproduce the serial run bit-for-bit (replica state is
  // disjoint; the router barrier is the only sync point). The whole random
  // config space soaks through the parallel driver this way.
  {
    cluster::ClusterConfig tcfg2 = cfg;
    tcfg2.step_threads = 2 + static_cast<int>(seed % 3);
    cluster::ClusterEngine threaded(tcfg2);
    const auto tm = threaded.Run(reqs);
    EXPECT_DOUBLE_EQ(tm.makespan_s, m.makespan_s);
    EXPECT_EQ(tm.aggregate.num_steps, m.aggregate.num_steps);
    EXPECT_EQ(tm.aggregate.total_output_tokens, m.aggregate.total_output_tokens);
    EXPECT_EQ(tm.aggregate.num_preemptions, m.aggregate.num_preemptions);
    EXPECT_DOUBLE_EQ(tm.aggregate.total_swap_ms, m.aggregate.total_swap_ms);
    EXPECT_DOUBLE_EQ(tm.aggregate.swap_hidden_ms, m.aggregate.swap_hidden_ms);
    EXPECT_DOUBLE_EQ(tm.aggregate.swap_stall_ms, m.aggregate.swap_stall_ms);
    EXPECT_EQ(tm.replica_requests, m.replica_requests);
    ASSERT_EQ(tm.aggregate.ttft_ms.size(), m.aggregate.ttft_ms.size());
    for (size_t i = 0; i < tm.aggregate.ttft_ms.size(); ++i) {
      EXPECT_DOUBLE_EQ(tm.aggregate.ttft_ms[i], m.aggregate.ttft_ms[i]);
    }
    const obs::MetricsRegistry* treg = threaded.Telemetry();
    ASSERT_NE(treg, nullptr);
    EXPECT_EQ(treg->JsonSnapshot(tm.makespan_s), reg->JsonSnapshot(m.makespan_s));
  }

  if (FailedPartCount() > failed_before) {
    DumpTrialTrace(cluster.LastTrace(), seed);
  }
}

void RunDisaggTrial(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  g_current_seed = seed;
  g_current_engine = nullptr;
  const int failed_before = FailedPartCount();
  Rng rng(seed);
  cluster::ClusterConfig cfg;
  // The whole random engine config space (chunking, spec, preemption, tight
  // budgets) soaks through the disaggregated driver: export/import must
  // compose with every subsystem.
  cfg.engine = RandomConfig(rng);
  cfg.num_replicas = 4;
  cfg.disaggregated = true;
  cfg.prefill_replicas = 1 + static_cast<int>(rng.UniformInt(0, 2));
  cfg.migration_gbps = rng.Uniform(16.0, 128.0);
  cfg.migration_latency_us = rng.Uniform(50.0, 400.0);
  cfg.policy = rng.NextDouble() < 0.5 ? cluster::RouterPolicy::kRoundRobin
                                      : cluster::RouterPolicy::kLeastLoaded;

  serving::TenantPoolConfig tcfg;
  tcfg.num_tenants = static_cast<int>(rng.UniformInt(4, 12));
  auto reqs = serving::MultiTenantWorkload(
      rng, static_cast<int>(rng.UniformInt(30, 60)), rng.Uniform(20.0, 60.0), tcfg);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  serving::AssignAcceptance(rng, reqs, 0.3, 0.95);

  cluster::ClusterEngine cluster(cfg);
  const auto m = cluster.Run(reqs);

  // Conservation across pools: routed == workload, every admitted request
  // emitted its first token on the prefill pool, extraction == admission.
  EXPECT_EQ(m.router.routed, static_cast<int64_t>(reqs.size()));
  EXPECT_EQ(m.aggregate.ttft_ms.size() +
                static_cast<size_t>(m.aggregate.rejected_requests),
            reqs.size());
  EXPECT_EQ(m.decode_pool.ttft_ms.size(), 0u);
  EXPECT_EQ(m.prefill_pool.num_migrations_out, m.migrations);
  EXPECT_EQ(m.decode_pool.num_migrations_in, m.migrations);
  EXPECT_EQ(m.prefill_pool.num_migrations_retained, m.migrations_retained);
  EXPECT_EQ(m.aggregate.num_swap_restores + m.aggregate.num_recompute_restores,
            m.aggregate.num_preemptions);
  // Migration time decomposition: hidden time never exceeds transfer time.
  EXPECT_GE(m.decode_pool.total_migration_ms, 0.0);
  EXPECT_LE(m.decode_pool.migration_hidden_ms,
            m.decode_pool.total_migration_ms + 1e-9);
  EXPECT_GE(m.decode_pool.migration_stall_ms, 0.0);
  // Prompts never route to the decode pool.
  for (int i = cfg.prefill_replicas; i < cfg.num_replicas; ++i) {
    EXPECT_EQ(m.replica_requests[static_cast<size_t>(i)], 0);
  }
  const obs::MetricsRegistry* reg = cluster.Telemetry();
  ASSERT_NE(reg, nullptr);
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_migrations_out_total"),
                   static_cast<double>(m.migrations));
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_migrations_in_total"),
                   static_cast<double>(m.migrations));
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_migrations_retained_total"),
                   static_cast<double>(m.migrations_retained));

  // Threaded twin: the disaggregated driver's fine-grained prefill stepping
  // still only syncs at barriers, so any thread count is bit-identical.
  {
    cluster::ClusterConfig tcfg2 = cfg;
    tcfg2.step_threads = 2 + static_cast<int>(seed % 3);
    cluster::ClusterEngine threaded(tcfg2);
    const auto tm = threaded.Run(reqs);
    EXPECT_DOUBLE_EQ(tm.makespan_s, m.makespan_s);
    EXPECT_EQ(tm.migrations, m.migrations);
    EXPECT_EQ(tm.migrations_retained, m.migrations_retained);
    EXPECT_EQ(tm.aggregate.num_steps, m.aggregate.num_steps);
    EXPECT_EQ(tm.aggregate.total_output_tokens, m.aggregate.total_output_tokens);
    EXPECT_DOUBLE_EQ(tm.aggregate.total_migration_ms,
                     m.aggregate.total_migration_ms);
    EXPECT_DOUBLE_EQ(tm.aggregate.migration_hidden_ms,
                     m.aggregate.migration_hidden_ms);
    EXPECT_DOUBLE_EQ(tm.aggregate.migration_stall_ms,
                     m.aggregate.migration_stall_ms);
    EXPECT_EQ(tm.replica_requests, m.replica_requests);
    ASSERT_EQ(tm.aggregate.itl_ms.size(), m.aggregate.itl_ms.size());
    for (size_t i = 0; i < tm.aggregate.itl_ms.size(); ++i) {
      EXPECT_DOUBLE_EQ(tm.aggregate.itl_ms[i], m.aggregate.itl_ms[i]);
    }
    const obs::MetricsRegistry* treg = threaded.Telemetry();
    ASSERT_NE(treg, nullptr);
    EXPECT_EQ(treg->JsonSnapshot(tm.makespan_s), reg->JsonSnapshot(m.makespan_s));
  }

  if (FailedPartCount() > failed_before) {
    DumpTrialTrace(cluster.LastTrace(), seed);
  }
}

int TrialCount() {
  const char* env = std::getenv("FI_SOAK_TRIALS");
  if (env == nullptr) return 50;
  return std::max(0, std::atoi(env));
}

// Three pinned seeds, always on (CI's sanitizer job runs exactly these by
// setting FI_SOAK_TRIALS=0). Each is checked for Run ≡ StepTo too.
TEST(Soak, PinnedSeeds) {
  for (const uint64_t seed : {0xC0FFEEull, 0xBADF00Dull, 0x5EED42ull}) {
    RunEngineTrial(seed, /*check_step_equiv=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    RunClusterTrial(seed ^ 0xA5A5A5A5ull);
    if (::testing::Test::HasFatalFailure()) return;
    RunDisaggTrial(seed ^ 0xD15A66ull);
  }
}

TEST(Soak, RandomizedEngineTrials) {
  const int trials = TrialCount();
  for (int i = 0; i < trials; ++i) {
    // Deterministic seed schedule: trial i always replays identically.
    RunEngineTrial(0x50AC0000ull + static_cast<uint64_t>(i),
                   /*check_step_equiv=*/i % 5 == 0);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Soak, RandomizedClusterTrials) {
  const int trials = (TrialCount() + 5) / 6;  // ~1 cluster trial per 6 engine.
  for (int i = 0; i < trials; ++i) {
    RunClusterTrial(0xC105E0ull + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Soak, RandomizedDisaggTrials) {
  const int trials = (TrialCount() + 5) / 6;
  for (int i = 0; i < trials; ++i) {
    RunDisaggTrial(0xD15A0000ull + static_cast<uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace flashinfer
