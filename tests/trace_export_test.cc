// End-to-end trace export validation: a preemption-enabled multi-replica
// cluster run is exported to Chrome/Perfetto trace-event JSON, parsed back
// with the shared JSON parser, and schema-checked — the same validation CI
// runs against the bench-emitted trace artifact.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "obs/export.h"
#include "obs/query.h"
#include "serving/engine.h"
#include "util/json.h"

namespace flashinfer {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterEngine;
using serving::EngineConfig;
using serving::Request;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  cfg.trace.enabled = true;
  return cfg;
}

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

Request MakeReq(int id, double arrival, int64_t in, int64_t out, int priority) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.input_len = in;
  r.output_len = out;
  r.priority = priority;
  return r;
}

/// Two replicas under KV pressure: a mixed two-priority workload sized so
/// both replicas preempt at least once.
ClusterConfig PressureClusterConfig() {
  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.engine.preemption.enabled = true;
  cfg.engine.hbm_capacity_gb = HbmForBudget(cfg.engine, 6000);
  cfg.num_replicas = 2;
  cfg.policy = cluster::RouterPolicy::kRoundRobin;
  return cfg;
}

std::vector<Request> PressureWorkload() {
  std::vector<Request> reqs;
  int id = 0;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(MakeReq(id++, i * 0.05, 2200 + 300 * (i % 3), 250, 0));
  }
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(MakeReq(id++, 0.5 + i * 0.05, 2800, 60, 1));
  }
  return reqs;
}

TEST(TraceExport, ClusterMergesReplicaAndRouterTracks) {
  ClusterEngine engine(PressureClusterConfig());
  const auto m = engine.Run(PressureWorkload());
  ASSERT_GE(m.aggregate.num_preemptions, 1);

  const auto& tracks = engine.LastTrace();
  ASSERT_EQ(tracks.size(), 3u);  // 2 replicas + router.
  EXPECT_EQ(tracks[0].name, "replica 0");
  EXPECT_EQ(tracks[1].name, "replica 1");
  EXPECT_EQ(tracks[2].name, "router");
  EXPECT_FALSE(tracks[0].events.empty());
  EXPECT_FALSE(tracks[1].events.empty());
  // One router decision per request, carrying the routed replica index.
  ASSERT_EQ(tracks[2].events.size(), PressureWorkload().size());
  for (const auto& e : tracks[2].events) {
    EXPECT_EQ(e.name, obs::TraceName::kRouteDecision);
    EXPECT_GE(e.a, 0);
    EXPECT_LT(e.a, 2);
    EXPECT_GE(e.req, 0);
  }
  // Per-replica traces reconcile with per-replica metrics.
  for (int rep = 0; rep < 2; ++rep) {
    const obs::TraceQuery q(tracks[static_cast<size_t>(rep)].events);
    EXPECT_EQ(q.TotalItlStallSteps(), m.per_replica[static_cast<size_t>(rep)].itl_stall_steps);
    EXPECT_TRUE(q.UnexplainedItlStalls().empty());
    EXPECT_TRUE(q.UnexplainedPreemptStalls().empty());
  }
}

TEST(TraceExport, PerfettoJsonSchemaValidates) {
  ClusterEngine engine(PressureClusterConfig());
  engine.Run(PressureWorkload());
  std::ostringstream os;
  obs::WritePerfettoJson(os, engine.LastTrace());

  util::JsonValue doc;
  std::string err;
  ASSERT_TRUE(util::JsonParse(os.str(), &doc, &err)) << err;
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.StringOr("displayTimeUnit", ""), "ms");
  const util::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_GT(events->arr.size(), 100u);

  std::set<double> pids;
  std::set<std::string> process_names;
  int steps = 0, counters = 0, async_open = 0, async_close = 0, kv_instants = 0;
  for (const auto& e : events->arr) {
    const std::string ph = e.StringOr("ph", "");
    const std::string name = e.StringOr("name", "");
    ASSERT_FALSE(ph.empty());
    ASSERT_FALSE(name.empty());
    ASSERT_NE(e.Find("pid"), nullptr);
    pids.insert(e.NumberOr("pid", -1.0));
    if (ph == "M") {
      if (name == "process_name") {
        process_names.insert(e.Find("args")->StringOr("name", ""));
      }
      continue;
    }
    ASSERT_GE(e.NumberOr("ts", -1.0), 0.0) << name;
    if (ph == "X") {
      ASSERT_GE(e.NumberOr("dur", -1.0), 0.0);
      if (name == "step") ++steps;
    } else if (ph == "C") {
      ++counters;
      ASSERT_NE(e.Find("args"), nullptr);
      ASSERT_NE(e.Find("args")->Find("value"), nullptr);
    } else if (ph == "b") {
      ++async_open;
      EXPECT_EQ(e.StringOr("cat", ""), "request");
      ASSERT_NE(e.Find("id"), nullptr);
    } else if (ph == "e") {
      ++async_close;
    } else if (ph == "i") {
      if (e.NumberOr("tid", 0.0) == 1.0) ++kv_instants;
    }
  }
  // >= 2 replica tracks plus the router track, each announced by metadata.
  EXPECT_GE(pids.size(), 3u);
  EXPECT_TRUE(process_names.count("replica 0"));
  EXPECT_TRUE(process_names.count("replica 1"));
  EXPECT_TRUE(process_names.count("router"));
  EXPECT_GT(steps, 0);
  EXPECT_GT(counters, 0);
  EXPECT_GT(kv_instants, 0);             // Preemption KV traffic on the kv tid.
  EXPECT_EQ(async_open, async_close);    // Every request span is closed.
}

TEST(TraceExport, FileRoundTrip) {
  ClusterEngine engine(PressureClusterConfig());
  engine.Run(PressureWorkload());
  const std::string dir = ::testing::TempDir();
  const std::string perfetto = dir + "/trace_export_test.trace.json";
  const std::string jsonl = dir + "/trace_export_test.trace.jsonl";
  ASSERT_TRUE(obs::WritePerfettoFile(perfetto, engine.LastTrace()));
  ASSERT_TRUE(obs::WriteJsonlFile(jsonl, engine.LastTrace()));
  EXPECT_FALSE(obs::WritePerfettoFile("/nonexistent-dir/x.json", engine.LastTrace()));
}

}  // namespace
}  // namespace flashinfer
