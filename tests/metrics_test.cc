// Telemetry-plane unit tests: label canonicalization, sliding-window
// accumulators (epoch ring expiry), registry instance identity, exposition
// schemas (Prometheus text + JSON snapshot, parsed with the shared JSON
// machinery), and the cluster registry merge.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "obs/metrics.h"
#include "serving/engine.h"
#include "util/json.h"

namespace flashinfer {
namespace {

using obs::ClassLabels;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::LabelSet;
using obs::MetricsRegistry;
using obs::Sketch;
using obs::WindowConfig;
using obs::WindowedSketch;
using obs::WindowedSum;

// --- LabelSet ----------------------------------------------------------------

TEST(LabelSet, CanonicalKeyIsSorted) {
  const LabelSet a{{"tenant", "3"}, {"priority", "1"}};
  const LabelSet b{{"priority", "1"}, {"tenant", "3"}};
  EXPECT_EQ(a.Key(), "priority=1,tenant=3");
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_EQ(a.Prometheus(), "priority=\"1\",tenant=\"3\"");
  EXPECT_TRUE(LabelSet{}.empty());
  EXPECT_EQ(LabelSet{}.Key(), "");
}

TEST(LabelSet, WithAddsAndReplaces) {
  const LabelSet base{{"tenant", "3"}};
  EXPECT_EQ(base.With("replica", "0").Key(), "replica=0,tenant=3");
  EXPECT_EQ(base.With("tenant", "7").Key(), "tenant=7");
  EXPECT_EQ(base.Key(), "tenant=3");  // With() copies; base untouched.
}

TEST(LabelSet, ClassLabelsMapUnassignedTenantToDash) {
  EXPECT_EQ(ClassLabels(2, 1).Key(), "priority=1,tenant=2");
  EXPECT_EQ(ClassLabels(-1, 0).Key(), "priority=0,tenant=-");
}

// --- Sliding windows ---------------------------------------------------------

TEST(WindowedSum, ExpiresSlotsOutsideWindow) {
  WindowedSum w(/*window_s=*/10.0, /*slots=*/5);  // 2 s per slot.
  w.Add(1.0, 5.0);
  w.Add(3.0, 7.0);
  EXPECT_DOUBLE_EQ(w.Sum(3.0), 12.0);
  EXPECT_DOUBLE_EQ(w.Max(3.0), 7.0);
  EXPECT_EQ(w.Count(3.0), 2);
  EXPECT_DOUBLE_EQ(w.RatePerS(3.0), 1.2);
  // At t=11 the slot holding t=1 (epoch 0) has left the trailing window; the
  // slot holding t=3 (epoch 1) is still live.
  EXPECT_DOUBLE_EQ(w.Sum(11.0), 7.0);
  // By t=13 everything has expired.
  EXPECT_DOUBLE_EQ(w.Sum(13.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Max(13.0), 0.0);
  EXPECT_EQ(w.Count(13.0), 0);
}

TEST(WindowedSum, RingReuseResetsStaleSlot) {
  WindowedSum w(10.0, 5);
  w.Add(0.5, 100.0);  // Epoch 0.
  w.Add(20.5, 1.0);   // Epoch 10 — same ring index, must reset the slot.
  EXPECT_DOUBLE_EQ(w.Sum(20.5), 1.0);
}

TEST(WindowedSketch, MergedCoversOnlyLiveSlots) {
  WindowedSketch w(10.0, 5);
  w.Observe(1.0, 50.0);
  w.Observe(9.0, 150.0);
  EXPECT_EQ(w.Merged(9.0).Count(), 2);
  // t=1's slot expires by t=11; t=9's survives.
  const Histogram late = w.Merged(11.0);
  EXPECT_EQ(late.Count(), 1);
  EXPECT_DOUBLE_EQ(late.MaxValue(), 150.0);
  EXPECT_EQ(w.Merged(25.0).Count(), 0);
}

// --- Metric types ------------------------------------------------------------

TEST(Metrics, CounterTotalsAndWindowRate) {
  Counter c(WindowConfig{10.0, 5});
  c.Inc(0.5, 10.0);
  c.Inc(1.5);  // Default increment 1.
  EXPECT_DOUBLE_EQ(c.total(), 11.0);
  EXPECT_DOUBLE_EQ(c.WindowSum(1.5), 11.0);
  EXPECT_DOUBLE_EQ(c.WindowRatePerS(1.5), 1.1);
  // The cumulative total never expires; the window does.
  EXPECT_DOUBLE_EQ(c.WindowSum(100.0), 0.0);
  EXPECT_DOUBLE_EQ(c.total(), 11.0);
}

TEST(Metrics, GaugeLastWriteWinsWithWindowMax) {
  Gauge g(WindowConfig{10.0, 5});
  g.Set(1.0, 42.0);
  g.Set(2.0, 7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(g.WindowMax(2.0), 42.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);  // value() ignores window expiry.
}

TEST(Metrics, SketchCumulativeAndWindowDiverge) {
  Sketch s(WindowConfig{10.0, 5});
  s.Observe(1.0, 100.0);
  s.Observe(50.0, 10.0);
  EXPECT_EQ(s.Cumulative().Count(), 2);
  EXPECT_DOUBLE_EQ(s.Cumulative().MaxValue(), 100.0);
  const Histogram w = s.WindowSnapshot(50.0);
  EXPECT_EQ(w.Count(), 1);
  EXPECT_DOUBLE_EQ(w.MaxValue(), 10.0);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, GetReturnsStablePointerPerInstance) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("fi_x_total", ClassLabels(0, 1));
  Counter* b = reg.GetCounter("fi_x_total", ClassLabels(0, 1));
  Counter* other = reg.GetCounter("fi_x_total", ClassLabels(1, 1));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Inc(0.0, 3.0);
  other->Inc(0.0, 4.0);
  EXPECT_DOUBLE_EQ(reg.CounterFamilyTotal("fi_x_total"), 7.0);
  EXPECT_EQ(reg.InstanceNames().size(), 2u);
}

TEST(Registry, FindDoesNotRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("fi_x_total"), nullptr);
  reg.GetCounter("fi_x_total")->Inc(0.0);
  EXPECT_NE(reg.FindCounter("fi_x_total"), nullptr);
  // Wrong type or wrong labels -> null, not a new instance.
  EXPECT_EQ(reg.FindGauge("fi_x_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("fi_x_total", ClassLabels(0, 0)), nullptr);
  EXPECT_EQ(reg.InstanceNames().size(), 1u);
}

// --- Exposition --------------------------------------------------------------

TEST(Exposition, PrometheusTextShape) {
  MetricsRegistry reg;
  reg.GetCounter("fi_tokens_total", ClassLabels(0, 1))->Inc(1.0, 128.0);
  reg.GetGauge("fi_queue_depth")->Set(1.0, 3.0);
  Sketch* s = reg.GetSketch("fi_ttft_ms");
  for (int i = 1; i <= 100; ++i) s->Observe(1.0, static_cast<double>(i));
  const std::string text = reg.PrometheusText(1.0);

  EXPECT_NE(text.find("# TYPE fi_tokens_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("fi_tokens_total{priority=\"1\",tenant=\"0\"} 128\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fi_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fi_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fi_ttft_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("fi_ttft_ms_bucket{le=\"+Inf\"} 100\n"), std::string::npos);
  EXPECT_NE(text.find("fi_ttft_ms_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("fi_ttft_ms_sum 5050\n"), std::string::npos);
  // `le` buckets are cumulative and nondecreasing.
  int64_t prev = 0;
  size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("fi_ttft_ms_bucket{le=\"", pos)) != std::string::npos) {
    const size_t sp = text.find(' ', pos);
    const int64_t cum = std::strtoll(text.c_str() + sp + 1, nullptr, 10);
    EXPECT_GE(cum, prev);
    prev = cum;
    ++buckets;
    pos = sp;
  }
  EXPECT_GT(buckets, 5);
  EXPECT_EQ(prev, 100);  // The +Inf bucket carries the full count.
}

TEST(Exposition, JsonSnapshotParsesWithSchema) {
  MetricsRegistry reg(WindowConfig{10.0, 5});
  reg.GetCounter("fi_tokens_total", ClassLabels(2, 0))->Inc(1.0, 50.0);
  reg.GetGauge("fi_kv_device_tokens")->Set(1.0, 4096.0);
  Sketch* s = reg.GetSketch("fi_itl_ms", ClassLabels(2, 0));
  for (int i = 1; i <= 10; ++i) s->Observe(1.0, 5.0 * i);

  util::JsonValue doc;
  std::string err;
  ASSERT_TRUE(util::JsonParse(reg.JsonSnapshot(2.0), &doc, &err)) << err;
  EXPECT_DOUBLE_EQ(doc.NumberOr("now_s", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("window_s", -1.0), 10.0);
  const util::JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->IsArray());
  ASSERT_EQ(metrics->arr.size(), 3u);

  int counters = 0, gauges = 0, sketches = 0;
  for (const auto& m : metrics->arr) {
    const std::string type = m.StringOr("type", "");
    ASSERT_NE(m.Find("labels"), nullptr);
    if (type == "counter") {
      ++counters;
      EXPECT_EQ(m.StringOr("name", ""), "fi_tokens_total");
      EXPECT_EQ(m.Find("labels")->StringOr("tenant", ""), "2");
      EXPECT_DOUBLE_EQ(m.NumberOr("total", -1.0), 50.0);
      EXPECT_DOUBLE_EQ(m.NumberOr("window_sum", -1.0), 50.0);
      EXPECT_DOUBLE_EQ(m.NumberOr("window_rate_per_s", -1.0), 5.0);
    } else if (type == "gauge") {
      ++gauges;
      EXPECT_DOUBLE_EQ(m.NumberOr("value", -1.0), 4096.0);
      EXPECT_DOUBLE_EQ(m.NumberOr("window_max", -1.0), 4096.0);
    } else if (type == "sketch") {
      ++sketches;
      EXPECT_DOUBLE_EQ(m.NumberOr("count", -1.0), 10.0);
      EXPECT_DOUBLE_EQ(m.NumberOr("max", -1.0), 50.0);
      EXPECT_GT(m.NumberOr("p50", 0.0), 0.0);
      const util::JsonValue* window = m.Find("window");
      ASSERT_NE(window, nullptr);
      EXPECT_DOUBLE_EQ(window->NumberOr("count", -1.0), 10.0);
    }
  }
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(sketches, 1);
}

// --- Cluster merge -----------------------------------------------------------

TEST(Merge, RelabelsEveryInstance) {
  MetricsRegistry r0, r1, merged;
  r0.GetCounter("fi_steps_total")->Inc(1.0, 10.0);
  r0.GetSketch("fi_ttft_ms", ClassLabels(0, 0))->Observe(1.0, 25.0);
  r1.GetCounter("fi_steps_total")->Inc(1.0, 4.0);
  merged.MergeFrom(r0, "replica", "0");
  merged.MergeFrom(r1, "replica", "1");

  const Counter* c0 = merged.FindCounter("fi_steps_total", LabelSet{{"replica", "0"}});
  const Counter* c1 = merged.FindCounter("fi_steps_total", LabelSet{{"replica", "1"}});
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_DOUBLE_EQ(c0->total(), 10.0);
  EXPECT_DOUBLE_EQ(c1->total(), 4.0);
  EXPECT_DOUBLE_EQ(merged.CounterFamilyTotal("fi_steps_total"), 14.0);
  // The sketch kept its class labels and gained the replica label.
  const Sketch* s = merged.FindSketch("fi_ttft_ms", ClassLabels(0, 0).With("replica", "0"));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Cumulative().Count(), 1);
  // Merge copies: mutating the source later does not affect the merged view.
  r0.GetCounter("fi_steps_total")->Inc(2.0, 100.0);
  EXPECT_DOUBLE_EQ(c0->total(), 10.0);
}

TEST(Merge, ClusterEngineMergesReplicaRegistries) {
  cluster::ClusterConfig cfg;
  cfg.engine.model = serving::Llama31_8B();
  cfg.engine.device = gpusim::H100Sxm80GB();
  cfg.engine.backend = serving::FlashInferBackend();
  cfg.engine.telemetry.enabled = true;
  cfg.num_replicas = 2;
  Rng rng(17);
  const auto workload = serving::ShareGptWorkload(rng, 30, 40.0);
  cluster::ClusterEngine engine(cfg);
  const auto m = engine.Run(workload);

  const obs::MetricsRegistry* merged = engine.Telemetry();
  ASSERT_NE(merged, nullptr);
  // Replica-labeled family totals reconcile with the aggregate metrics.
  EXPECT_DOUBLE_EQ(merged->CounterFamilyTotal("fi_output_tokens_total"),
                   static_cast<double>(m.aggregate.total_output_tokens));
  EXPECT_DOUBLE_EQ(merged->CounterFamilyTotal("fi_steps_total"),
                   static_cast<double>(m.aggregate.num_steps));
  // Both replicas contributed distinct instances.
  EXPECT_NE(merged->FindCounter("fi_steps_total", LabelSet{{"replica", "0"}}), nullptr);
  EXPECT_NE(merged->FindCounter("fi_steps_total", LabelSet{{"replica", "1"}}), nullptr);
  // The merged snapshot still parses.
  util::JsonValue doc;
  std::string err;
  EXPECT_TRUE(util::JsonParse(merged->JsonSnapshot(m.makespan_s), &doc, &err)) << err;
}

TEST(Merge, ClusterTelemetryDisabledByDefault) {
  cluster::ClusterConfig cfg;
  cfg.engine.model = serving::Llama31_8B();
  cfg.engine.device = gpusim::H100Sxm80GB();
  cfg.engine.backend = serving::FlashInferBackend();
  cfg.num_replicas = 2;
  Rng rng(18);
  cluster::ClusterEngine engine(cfg);
  engine.Run(serving::ShareGptWorkload(rng, 10, 40.0));
  EXPECT_EQ(engine.Telemetry(), nullptr);
}

}  // namespace
}  // namespace flashinfer
