// Engine telemetry invariants:
//
//  * Disabled telemetry is bit-identical: an engine with the telemetry plane
//    off produces exactly the metrics of one with it on (telemetry observes,
//    never perturbs the schedule).
//  * The registry reconciles with ServingMetrics: every counter the engine
//    publishes equals the corresponding ServingMetrics field, and the
//    per-class sketch sample counts tile the TTFT/ITL sample vectors.
//  * Bounded ITL mode answers percentile/max queries from the log-bucketed
//    sketch within its documented error, with exact count and max.
//  * SLO burn-rate monitors classify, fire edge-triggered alerts into the
//    trace, and recover when the burn subsides.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/slo.h"
#include "obs/trace.h"
#include "serving/engine.h"

namespace flashinfer {
namespace {

using obs::SloMonitor;
using obs::SloSignal;
using obs::SloSpec;
using obs::TraceName;
using serving::EngineConfig;
using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  return cfg;
}

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

/// Mixed multi-tenant workload: three tenants, two priorities, enough input
/// spread to exercise chunking and (under a tight budget) preemption.
std::vector<Request> MixedWorkload(int n) {
  std::vector<Request> reqs;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = i * 0.02;
    r.input_len = 300 + (i * 467) % 2200;
    r.output_len = 20 + (i * 131) % 120;
    r.priority = i % 2;
    r.tenant = i % 3;
    reqs.push_back(r);
  }
  return reqs;
}

/// A pressured config that preempts and restores: the telemetry sites on the
/// eviction/restore paths must all be covered by the comparisons below.
EngineConfig PressuredConfig() {
  EngineConfig cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 512;
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  return cfg;
}

void ExpectMetricsIdentical(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.total_prefill_tokens, b.total_prefill_tokens);
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_DOUBLE_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_DOUBLE_EQ(a.total_gemm_ms, b.total_gemm_ms);
  EXPECT_DOUBLE_EQ(a.total_host_ms, b.total_host_ms);
  ASSERT_EQ(a.ttft_ms.size(), b.ttft_ms.size());
  for (size_t i = 0; i < a.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ttft_ms[i], b.ttft_ms[i]) << "ttft sample " << i;
  }
  ASSERT_EQ(a.itl_ms.size(), b.itl_ms.size());
  for (size_t i = 0; i < a.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.itl_ms[i], b.itl_ms[i]) << "itl sample " << i;
  }
}

// Telemetry (with SLO monitoring on top) must not perturb the schedule: the
// acceptance-pinned invariant that EngineConfig::telemetry.enabled=false is
// metrics-bit-identical to the instrumented engine.
TEST(Telemetry, DisabledIsBitIdenticalToEnabled) {
  EngineConfig plain = PressuredConfig();
  EngineConfig instrumented = PressuredConfig();
  instrumented.telemetry.enabled = true;
  SloSpec slo;
  slo.name = "ttft_p99";
  slo.signal = SloSignal::kTtft;
  slo.threshold_ms = 200.0;
  slo.objective = 0.99;
  instrumented.telemetry.slos.push_back(slo);

  const auto reqs = MixedWorkload(24);
  const auto a = ServingEngine(plain).Run(reqs);
  const auto b = ServingEngine(instrumented).Run(reqs);
  ExpectMetricsIdentical(a, b);
}

TEST(Telemetry, DisabledExposesNoRegistry) {
  ServingEngine engine(BaseConfig());
  engine.Run(MixedWorkload(6));
  EXPECT_EQ(engine.Telemetry(), nullptr);
  EXPECT_EQ(engine.Slo(), nullptr);
}

// Every engine-published counter must equal the ServingMetrics field it
// shadows — the same invariant the soak harness checks across random configs.
TEST(Telemetry, RegistryReconcilesWithServingMetrics) {
  EngineConfig cfg = PressuredConfig();
  cfg.telemetry.enabled = true;
  ServingEngine engine(cfg);
  const ServingMetrics m = engine.Run(MixedWorkload(24));
  const obs::MetricsRegistry* reg = engine.Telemetry();
  ASSERT_NE(reg, nullptr);

  const auto total = [&](const char* name) { return reg->CounterFamilyTotal(name); };
  EXPECT_DOUBLE_EQ(total("fi_steps_total"), static_cast<double>(m.num_steps));
  EXPECT_DOUBLE_EQ(total("fi_output_tokens_total"),
                   static_cast<double>(m.total_output_tokens));
  EXPECT_DOUBLE_EQ(total("fi_prefill_tokens_total"),
                   static_cast<double>(m.total_prefill_tokens));
  EXPECT_DOUBLE_EQ(total("fi_recompute_tokens_total"),
                   static_cast<double>(m.recompute_tokens));
  EXPECT_DOUBLE_EQ(total("fi_preemptions_total"), static_cast<double>(m.num_preemptions));
  EXPECT_DOUBLE_EQ(total("fi_requests_rejected_total"),
                   static_cast<double>(m.rejected_requests));
  EXPECT_DOUBLE_EQ(total("fi_swap_restores_total"),
                   static_cast<double>(m.num_swap_restores));
  EXPECT_DOUBLE_EQ(total("fi_recompute_restores_total"),
                   static_cast<double>(m.num_recompute_restores));
  EXPECT_DOUBLE_EQ(total("fi_evicted_pages_total"), static_cast<double>(m.evicted_pages));
  EXPECT_DOUBLE_EQ(total("fi_restored_pages_total"),
                   static_cast<double>(m.restored_pages));
  EXPECT_NEAR(total("fi_swap_ms_total"), m.total_swap_ms,
              1e-9 * std::max(1.0, m.total_swap_ms));
  EXPECT_GT(m.num_preemptions, 0);  // The pressured config actually preempted.

  // The per-class series tile the aggregate sample vectors exactly.
  EXPECT_DOUBLE_EQ(reg->CounterFamilyTotal("fi_tokens_total"),
                   static_cast<double>(m.total_output_tokens));
  int64_t ttft_samples = 0, itl_samples = 0;
  for (int tenant = 0; tenant < 3; ++tenant) {
    for (int priority = 0; priority < 2; ++priority) {
      const obs::LabelSet labels = obs::ClassLabels(tenant, priority);
      if (const obs::Sketch* s = reg->FindSketch("fi_ttft_ms", labels)) {
        ttft_samples += s->Cumulative().Count();
      }
      if (const obs::Sketch* s = reg->FindSketch("fi_itl_ms", labels)) {
        itl_samples += s->Cumulative().Count();
      }
    }
  }
  EXPECT_EQ(ttft_samples, static_cast<int64_t>(m.ttft_ms.size()));
  EXPECT_EQ(itl_samples, m.ItlCount());

  // Occupancy gauges exist and the device gauge saw the pressure.
  const obs::Gauge* kv = reg->FindGauge("fi_kv_device_tokens");
  ASSERT_NE(kv, nullptr);
  EXPECT_GT(kv->WindowMax(m.makespan_s), 0.0);
  EXPECT_NE(reg->FindGauge("fi_queue_depth"), nullptr);
}

// Bounded-ITL mode: the schedule is untouched, the percentile queries come
// from the sketch (within its ~19% bucket error), and count/max are exact.
TEST(Telemetry, BoundedItlMatchesExactWithinSketchError) {
  EngineConfig exact_cfg = PressuredConfig();
  exact_cfg.telemetry.enabled = true;
  EngineConfig bounded_cfg = exact_cfg;
  bounded_cfg.telemetry.bounded_itl = true;

  const auto reqs = MixedWorkload(24);
  const ServingMetrics exact = ServingEngine(exact_cfg).Run(reqs);
  const ServingMetrics bounded = ServingEngine(bounded_cfg).Run(reqs);

  EXPECT_DOUBLE_EQ(exact.makespan_s, bounded.makespan_s);
  EXPECT_EQ(exact.total_output_tokens, bounded.total_output_tokens);
  // The bounded run dropped the per-token vector but kept the exact count,
  // and the sketch tracks exact min/max.
  EXPECT_TRUE(bounded.itl_ms.empty());
  EXPECT_GT(exact.itl_ms.size(), 0u);
  EXPECT_EQ(bounded.ItlCount(), exact.ItlCount());
  EXPECT_DOUBLE_EQ(bounded.MaxItlMs(), exact.MaxItlMs());
  // Percentiles answer from log buckets: pinned to the documented error.
  for (const double p : {0.5, 0.9, 0.99}) {
    const double e = exact.ItlPercentileMs(p);
    const double b = bounded.ItlPercentileMs(p);
    EXPECT_NEAR(b, e, 0.2 * std::max(e, 1e-9)) << "p=" << p;
  }
  EXPECT_NEAR(bounded.MedianItlMs(), exact.MedianItlMs(),
              0.2 * std::max(exact.MedianItlMs(), 1e-9));
}

// --- SloMonitor --------------------------------------------------------------

SloSpec TightSpec() {
  SloSpec spec;
  spec.name = "itl_p90";
  spec.signal = SloSignal::kItl;
  spec.threshold_ms = 10.0;
  spec.objective = 0.9;  // 10% error budget.
  spec.fast_window_s = 5.0;
  spec.slow_window_s = 30.0;
  spec.fast_burn = 2.0;
  spec.slow_burn = 1.0;
  return spec;
}

TEST(Slo, BurnRateMathAndAttainment) {
  SloMonitor mon({TightSpec()}, /*trace=*/nullptr);
  for (int i = 0; i < 5; ++i) mon.Observe(SloSignal::kItl, 0, 0, 5.0, 1.0);
  for (int i = 0; i < 5; ++i) mon.Observe(SloSignal::kItl, 0, 0, 50.0, 1.0);
  const auto status = mon.Status(1.0);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].good, 5);
  EXPECT_EQ(status[0].bad, 5);
  EXPECT_DOUBLE_EQ(status[0].attainment, 0.5);
  // Bad fraction 0.5 against a 0.1 budget: burning 5x too fast.
  EXPECT_NEAR(status[0].fast_burn, 5.0, 1e-9);
  EXPECT_NEAR(status[0].slow_burn, 5.0, 1e-9);
}

TEST(Slo, AlertsAreEdgeTriggeredAndRecover) {
  obs::TraceRecorder trace(64);
  SloMonitor mon({TightSpec()}, &trace);
  // All-bad stream: burn 10x in both windows -> must fire exactly once.
  for (int i = 0; i < 10; ++i) mon.Observe(SloSignal::kItl, 0, 0, 100.0, 1.0);
  mon.Evaluate(1.0);
  mon.Evaluate(1.5);  // Still firing: no second edge.
  EXPECT_EQ(mon.TotalAlerts(), 1);
  EXPECT_TRUE(mon.Status(1.5)[0].firing);
  // Far past both windows the burn is gone: the alert recovers.
  mon.Evaluate(100.0);
  EXPECT_FALSE(mon.Status(100.0)[0].firing);
  EXPECT_EQ(mon.TotalAlerts(), 1);

  int alerts = 0, recovers = 0;
  for (const auto& e : trace.Events()) {
    if (e.name == TraceName::kSloAlert) ++alerts;
    if (e.name == TraceName::kSloRecover) ++recovers;
  }
  EXPECT_EQ(alerts, 1);
  EXPECT_EQ(recovers, 1);
}

TEST(Slo, SlowWindowVetoesTransientBurn) {
  // Same burn thresholds, but the spec requires the slow window to confirm:
  // a burst that only the fast window sees must not fire.
  SloSpec spec = TightSpec();
  spec.slow_burn = 8.0;  // Slow window must independently show a hard burn.
  SloMonitor mon({spec}, nullptr);
  // 2 bad in a 30 s slow window otherwise full of good samples.
  for (int i = 0; i < 50; ++i) mon.Observe(SloSignal::kItl, 0, 0, 5.0, 1.0);
  mon.Observe(SloSignal::kItl, 0, 0, 100.0, 28.0);
  mon.Observe(SloSignal::kItl, 0, 0, 100.0, 28.0);
  mon.Evaluate(28.0);
  // Fast window: all-bad (burn 10 >= 2); slow window dilutes to ~0.04 bad
  // fraction (burn ~0.4 < 8) -> vetoed.
  const auto status = mon.Status(28.0);
  EXPECT_GE(status[0].fast_burn, spec.fast_burn);
  EXPECT_LT(status[0].slow_burn, spec.slow_burn);
  EXPECT_FALSE(status[0].firing);
  EXPECT_EQ(mon.TotalAlerts(), 0);
}

TEST(Slo, ClassFilterSelectsSamples) {
  SloSpec spec = TightSpec();
  spec.tenant = 0;
  spec.priority = SloSpec::kAnyClass;
  SloMonitor mon({spec}, nullptr);
  mon.Observe(SloSignal::kItl, 0, 1, 100.0, 1.0);   // Matches (any priority).
  mon.Observe(SloSignal::kItl, 1, 0, 100.0, 1.0);   // Other tenant: ignored.
  mon.Observe(SloSignal::kItl, -1, 0, 100.0, 1.0);  // Unassigned: ignored.
  mon.Observe(SloSignal::kTtft, 0, 0, 100.0, 1.0);  // Other signal: ignored.
  const auto status = mon.Status(1.0);
  EXPECT_EQ(status[0].good + status[0].bad, 1);
}

// End-to-end: an impossible TTFT objective over a real pressured run fires at
// least one burn alert, visible both in the monitor and as a Perfetto
// instant on the engine trace.
TEST(Slo, EngineRunFiresAlertIntoTrace) {
  EngineConfig cfg = PressuredConfig();
  cfg.trace.enabled = true;
  cfg.telemetry.enabled = true;
  SloSpec spec;
  spec.name = "impossible_ttft";
  spec.signal = SloSignal::kTtft;
  spec.threshold_ms = 0.01;  // No prefill finishes this fast.
  spec.objective = 0.9;
  spec.fast_window_s = 2.0;
  spec.slow_window_s = 10.0;
  spec.fast_burn = 2.0;
  spec.slow_burn = 1.0;
  cfg.telemetry.slos.push_back(spec);

  ServingEngine engine(cfg);
  engine.Run(MixedWorkload(24));
  const SloMonitor* slo = engine.Slo();
  ASSERT_NE(slo, nullptr);
  EXPECT_GE(slo->TotalAlerts(), 1);
  const auto status = slo->Status(engine.Metrics().makespan_s);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_LT(status[0].attainment, 0.01);  // Every sample violated.

  int alert_instants = 0;
  for (const auto& e : engine.TraceEvents()) {
    if (e.name == TraceName::kSloAlert) ++alert_instants;
  }
  EXPECT_GE(alert_instants, 1);
}

}  // namespace
}  // namespace flashinfer
