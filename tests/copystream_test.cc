// CopyStream: the serialized-FIFO transfer model behind overlap-swap mode.
#include <gtest/gtest.h>

#include "gpusim/copystream.h"

namespace flashinfer::gpusim {
namespace {

TEST(CopyStreamTest, EnqueueSerializesFifo) {
  CopyStream s;
  const auto a = s.Enqueue(0.0, 100.0);  // 100 us starting at t=0.
  EXPECT_DOUBLE_EQ(a.begin_s, 0.0);
  EXPECT_DOUBLE_EQ(a.end_s, 100e-6);
  // Issued mid-flight: queues behind the first transfer.
  const auto b = s.Enqueue(50e-6, 100.0);
  EXPECT_DOUBLE_EQ(b.begin_s, 100e-6);
  EXPECT_DOUBLE_EQ(b.end_s, 200e-6);
  // Issued after the stream drained: starts at the issue time.
  const auto c = s.Enqueue(300e-6, 50.0);
  EXPECT_DOUBLE_EQ(c.begin_s, 300e-6);
  EXPECT_DOUBLE_EQ(c.end_s, 350e-6);
  EXPECT_EQ(s.num_transfers(), 3);
  EXPECT_DOUBLE_EQ(s.total_busy_us(), 250.0);
  EXPECT_DOUBLE_EQ(s.busy_until_s(), 350e-6);
}

TEST(CopyStreamTest, BusyWithinClipsToWindow) {
  CopyStream s;
  s.Enqueue(0.0, 100.0);     // [0, 100us]
  s.Enqueue(150e-6, 100.0);  // [150us, 250us]
  // Window covering half of each transfer.
  EXPECT_NEAR(s.BusyWithin(50e-6, 200e-6), 100e-6, 1e-12);
  // Window inside the idle gap.
  EXPECT_DOUBLE_EQ(s.BusyWithin(110e-6, 140e-6), 0.0);
  // Window past everything.
  EXPECT_DOUBLE_EQ(s.BusyWithin(300e-6, 400e-6), 0.0);
}

TEST(CopyStreamTest, MonotoneQueriesAccumulateExactly) {
  CopyStream s;
  s.Enqueue(0.0, 40.0);
  s.Enqueue(0.0, 60.0);    // Serialized: [40us, 100us]
  s.Enqueue(180e-6, 20.0); // [180us, 200us]
  // Step the window forward like ExecuteStepPlan does; the sum of disjoint
  // windows must equal the total busy time despite pruning.
  double total = 0.0;
  double t = 0.0;
  for (double step : {30e-6, 30e-6, 60e-6, 80e-6, 50e-6}) {
    total += s.BusyWithin(t, t + step);
    t += step;
  }
  EXPECT_NEAR(total * 1e6, s.total_busy_us(), 1e-9);
}

TEST(CopyStreamTest, ResetClearsEverything) {
  CopyStream s;
  s.Enqueue(0.0, 100.0);
  s.Reset();
  EXPECT_EQ(s.num_transfers(), 0);
  EXPECT_DOUBLE_EQ(s.total_busy_us(), 0.0);
  EXPECT_DOUBLE_EQ(s.busy_until_s(), 0.0);
  const auto t = s.Enqueue(10e-6, 10.0);
  EXPECT_DOUBLE_EQ(t.begin_s, 10e-6);
}

}  // namespace
}  // namespace flashinfer::gpusim
