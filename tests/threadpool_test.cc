// ThreadPool contract tests: exception propagation, reuse after failure,
// FI_THREADS parsing, and basic ParallelFor correctness with real workers.
#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace flashinfer {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialFallbacksStillRun) {
  ThreadPool pool(1);  // No workers: everything runs on the caller.
  int64_t sum = 0;
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
  pool.ParallelFor(0, [&](int64_t) { FAIL() << "n=0 must not invoke fn"; });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](int64_t i) {
                         if (i == 137) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionSkipsRemainingWorkAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int64_t> ran{0};
  bool threw = false;
  try {
    pool.ParallelFor(100000, [&](int64_t i) {
      if (i == 0) throw std::runtime_error("early poison");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "early poison");
  }
  EXPECT_TRUE(threw);
  // The poison lands on index 0, so the bulk of the range should be skipped
  // (claimed-but-not-run). Exact count depends on scheduling; "not all"
  // is the contract.
  EXPECT_LT(ran.load(), 100000 - 1);

  // The pool must survive a failed task and run the next one normally.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(1000, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ThreadPoolTest, ExceptionOnSerialPathPropagatesToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10, [](int64_t i) {
    if (i == 3) throw std::logic_error("serial boom");
  }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(8, [&](int64_t) {
    // Nested call: must not deadlock; runs serially on the calling worker.
    pool.ParallelFor(16, [&](int64_t j) { inner_total.fetch_add(j); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 120);
}

TEST(ThreadPoolTest, EnvThreadsParsing) {
  const char* saved = std::getenv("FI_THREADS");
  std::string saved_val = saved ? saved : "";

  ::unsetenv("FI_THREADS");
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::setenv("FI_THREADS", "6", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 6);
  ::setenv("FI_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 1);
  // Invalid values fall back to auto (0): non-numeric, trailing junk,
  // non-positive, absurd.
  ::setenv("FI_THREADS", "lots", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::setenv("FI_THREADS", "4x", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::setenv("FI_THREADS", "-2", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::setenv("FI_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
  ::setenv("FI_THREADS", "99999", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);

  if (saved) {
    ::setenv("FI_THREADS", saved_val.c_str(), 1);
  } else {
    ::unsetenv("FI_THREADS");
  }
}

TEST(ThreadPoolTest, GlobalIsUsable) {
  // Global() must work regardless of FI_THREADS; a second call returns the
  // same pool (construct-on-first-use).
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  std::atomic<int64_t> sum{0};
  a.ParallelFor(64, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 2016);
}

}  // namespace
}  // namespace flashinfer
