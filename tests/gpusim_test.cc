#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/cost.h"
#include "gpusim/device.h"
#include "gpusim/executor.h"
#include "gpusim/graph.h"

namespace flashinfer::gpusim {
namespace {

TEST(Device, Presets) {
  const auto h100 = H100Sxm80GB();
  EXPECT_EQ(h100.num_sms, 132);
  EXPECT_TRUE(h100.has_tma);
  EXPECT_EQ(h100.max_template, TemplateGen::kFA3);
  const auto a100 = A100Sxm40GB();
  EXPECT_EQ(a100.num_sms, 108);
  EXPECT_FALSE(a100.has_tma);
  // FP8 doubles tensor throughput only on Hopper.
  EXPECT_DOUBLE_EQ(h100.TensorTflops(1), 2.0 * h100.fp16_tflops);
  EXPECT_DOUBLE_EQ(a100.TensorTflops(1), a100.fp16_tflops);
}

TEST(Cost, RooflineMemoryBound) {
  const auto dev = A100Sxm40GB();
  KernelEfficiency eff{1.0, 1.0, 1.0};
  WorkCost wc;
  wc.hbm_bytes = 1555.0 * 1e3;  // Exactly 1 us at peak.
  const double t = WorkItemTimeUs(dev, eff, wc);
  EXPECT_NEAR(t, 1.0 + dev.work_item_overhead_us, 1e-9);
}

TEST(Cost, RooflineComputeBound) {
  const auto dev = A100Sxm40GB();
  KernelEfficiency eff{1.0, 1.0, 1.0};
  WorkCost wc;
  wc.tensor_flops = 312.0 * 1e6;  // Exactly 1 us at fp16 peak.
  wc.hbm_bytes = 100.0;           // Negligible.
  const double t = WorkItemTimeUs(dev, eff, wc);
  EXPECT_NEAR(t, 1.0 + dev.work_item_overhead_us, 1e-9);
}

TEST(Cost, MaxOfLanesNotSum) {
  const auto dev = A100Sxm40GB();
  KernelEfficiency eff{1.0, 1.0, 1.0};
  WorkCost wc;
  wc.hbm_bytes = 1555.0 * 1e3;
  wc.tensor_flops = 312.0 * 1e6;
  EXPECT_NEAR(WorkItemTimeUs(dev, eff, wc), 1.0 + dev.work_item_overhead_us, 1e-9);
}

TEST(Makespan, SingleSlotSums) {
  EXPECT_DOUBLE_EQ(SimExecutor::Makespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(Makespan, PerfectlyParallel) {
  EXPECT_DOUBLE_EQ(SimExecutor::Makespan({2.0, 2.0, 2.0, 2.0}, 4), 2.0);
}

TEST(Makespan, GreedyListScheduling) {
  // CTAs issue in order: slot A gets 4, slot B gets 1 then 1, then the next
  // (2) goes to B (free at 2), giving makespan 4.
  EXPECT_DOUBLE_EQ(SimExecutor::Makespan({4.0, 1.0, 1.0, 2.0}, 2), 4.0);
}

TEST(Makespan, WaveQuantization) {
  // 5 equal CTAs on 4 slots: two waves -> 2x single-CTA time.
  EXPECT_DOUBLE_EQ(SimExecutor::Makespan(std::vector<double>(5, 3.0), 4), 6.0);
}

TEST(Executor, RunsEveryCtaOnce) {
  SimExecutor sim(A100Sxm40GB());
  std::vector<std::atomic<int>> hits(64);
  const auto report = sim.Launch(64, Occupancy{2}, [&](int cta, CtaCost& cost) {
    hits[static_cast<size_t>(cta)]++;
    WorkCost wc;
    wc.hbm_bytes = 1000.0;
    cost.Charge(sim.device(), KernelEfficiency{}, wc);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(report.num_ctas, 64);
  EXPECT_DOUBLE_EQ(report.total_hbm_bytes, 64 * 1000.0);
  EXPECT_GT(report.time_us, 0.0);
}

TEST(Executor, MakespanDominatedByStraggler) {
  SimExecutor sim(A100Sxm40GB());
  const auto report = sim.Launch(8, Occupancy{1}, [&](int cta, CtaCost& cost) {
    WorkCost wc;
    wc.hbm_bytes = (cta == 3) ? 1e9 : 1e3;  // One straggler CTA.
    cost.Charge(sim.device(), KernelEfficiency{1.0, 1.0, 1.0}, wc);
  });
  // 1e9 bytes / 1555 GB/s = ~643 us dominates.
  EXPECT_NEAR(report.time_us, 1e9 / (1555.0 * 1e3) + sim.device().work_item_overhead_us +
                                  sim.device().kernel_launch_us,
              1.0);
}

TEST(Executor, UtilizationMetrics) {
  const auto dev = H100Sxm80GB();
  SimExecutor sim(dev);
  const auto report = sim.Launch(dev.num_sms, Occupancy{1}, [&](int, CtaCost& cost) {
    WorkCost wc;
    wc.hbm_bytes = 3350.0 * 1e3;  // 132 us of device traffic split over SMs.
    cost.Charge(dev, KernelEfficiency{1.0, 1.0, 1.0}, wc, 2, dev.num_sms);
  });
  // All SMs stream concurrently, sharing device bandwidth: utilization near
  // 1, diluted only by launch + per-item overhead. Never above 1.
  const double util = report.BandwidthUtil(dev);
  EXPECT_GT(util, 0.8);
  EXPECT_LE(util, 1.0);
}

TEST(Executor, ImbalanceWastesBandwidth) {
  // One CTA with all the work: the device idles while it streams at a
  // 1/slots share, so achieved bandwidth collapses.
  const auto dev = H100Sxm80GB();
  SimExecutor sim(dev);
  const auto report = sim.Launch(dev.num_sms, Occupancy{1}, [&](int cta, CtaCost& cost) {
    WorkCost wc;
    wc.hbm_bytes = (cta == 0) ? 3350.0 * 1e3 * 132 : 0.0;
    cost.Charge(dev, KernelEfficiency{1.0, 1.0, 1.0}, wc, 2, dev.num_sms);
  });
  EXPECT_LT(report.BandwidthUtil(dev), 0.05);
}

TEST(Graph, CaptureAndReplay) {
  CudaGraph graph;
  int launches = 0;
  graph.BeginCapture();
  int dummy_param = 0;
  graph.AddLaunch("layer0", {&dummy_param}, [&]() {
    ++launches;
    SimReport r;
    r.time_us = 5.0;
    return r;
  });
  graph.AddLaunch("layer1", {&dummy_param}, [&]() {
    ++launches;
    SimReport r;
    r.time_us = 7.0;
    return r;
  });
  graph.EndCapture();
  EXPECT_EQ(graph.num_nodes(), 2);

  const auto report = graph.Replay();
  EXPECT_EQ(launches, 2);
  EXPECT_DOUBLE_EQ(report.time_us, 12.0);
  graph.Replay();
  EXPECT_EQ(launches, 4);
}

TEST(Graph, ValidatesPointerStability) {
  CudaGraph graph;
  int a = 0, b = 0;
  graph.BeginCapture();
  graph.AddLaunch("k", {&a}, [] { return SimReport{}; });
  graph.EndCapture();
  EXPECT_TRUE(graph.ValidateSlot("k", {&a}));
  EXPECT_FALSE(graph.ValidateSlot("k", {&b}));   // Different pointer.
  EXPECT_FALSE(graph.ValidateSlot("x", {&a}));   // Unknown slot.
}

TEST(Graph, RecaptureResets) {
  CudaGraph graph;
  int a = 0;
  graph.BeginCapture();
  graph.AddLaunch("k", {&a}, [] { return SimReport{}; });
  graph.EndCapture();
  graph.BeginCapture();
  graph.EndCapture();
  EXPECT_EQ(graph.num_nodes(), 0);
}

}  // namespace
}  // namespace flashinfer::gpusim
