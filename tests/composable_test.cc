#include <gtest/gtest.h>

#include "sparse/composable.h"

namespace flashinfer::sparse {
namespace {

/// Mirrors Fig. 3: two groups of requests sharing prefixes, decode queries.
TEST(Composable, FigureThreeLayout) {
  const int page_size = 1;  // Vector-granularity pages, as in the figure.
  // 6 requests, 1 query row each; requests 0-2 share prefix A (3 tokens),
  // requests 3-5 share prefix B (2 tokens).
  std::vector<int64_t> qo_indptr{0, 1, 2, 3, 4, 5, 6};
  std::vector<RequestKv> unique_kv(6);
  for (int r = 0; r < 6; ++r) {
    const int64_t prefix = r < 3 ? 3 : 2;
    unique_kv[static_cast<size_t>(r)].pages = {100 + r};  // One unique token.
    unique_kv[static_cast<size_t>(r)].last_page_len = 1;
    unique_kv[static_cast<size_t>(r)].pos_offset = prefix;
  }
  PrefixGroup a, b;
  a.pages = {10, 11, 12};
  a.last_page_len = 1;
  a.members = {0, 1, 2};
  b.pages = {20, 21};
  b.last_page_len = 1;
  b.members = {3, 4, 5};

  const auto fmt = BuildSharedPrefixComposable(qo_indptr, unique_kv, {a, b}, page_size,
                                               /*tile_q_unique=*/1);
  ASSERT_EQ(fmt.levels.size(), 2u);

  // Level 0: block size (3, 1), two block rows covering rows [0,3) and [3,6).
  const auto& l0 = fmt.levels[0].bsr;
  EXPECT_EQ(l0.br, 3);
  EXPECT_EQ(l0.bc, 1);
  EXPECT_EQ(l0.NumBlockRows(), 2);
  EXPECT_EQ(l0.RowsInBlock(0), 3);
  EXPECT_EQ(l0.RowsInBlock(1), 3);
  EXPECT_EQ(l0.RowKvLen(0), 3);  // Prefix A tokens.
  EXPECT_EQ(l0.RowKvLen(1), 2);  // Prefix B tokens.
  EXPECT_EQ(l0.indices[0], 10);
  EXPECT_TRUE(fmt.levels[0].partial);

  // Level 1: block size (1, 1), one unique token per request, positioned
  // after the prefix.
  const auto& l1 = fmt.levels[1].bsr;
  EXPECT_EQ(l1.br, 1);
  EXPECT_EQ(l1.NumBlockRows(), 6);
  EXPECT_EQ(l1.RowKvLen(0), 1);
  EXPECT_EQ(l1.block_pos[0], 3);  // After prefix A.
  EXPECT_EQ(l1.block_pos[3], 2);  // After prefix B.
  EXPECT_TRUE(fmt.levels[1].partial);
}

TEST(Composable, UngroupedRequestsGetOwnBlockRows) {
  // Request 1 shares nothing; level 0 must still cover its rows (empty).
  std::vector<int64_t> qo_indptr{0, 1, 2, 3};
  std::vector<RequestKv> unique_kv(3);
  for (int r = 0; r < 3; ++r) {
    unique_kv[static_cast<size_t>(r)].pages = {50 + r};
    unique_kv[static_cast<size_t>(r)].last_page_len = 2;
    unique_kv[static_cast<size_t>(r)].pos_offset = (r == 1) ? 0 : 4;
  }
  PrefixGroup g;
  g.pages = {1, 2};
  g.last_page_len = 2;
  g.members = {0};  // Single-member "group" (request 0 only).
  // Members must be contiguous; request 2 is separate, so we use two groups.
  PrefixGroup g2;
  g2.pages = {3, 4};
  g2.last_page_len = 2;
  g2.members = {2};

  const auto fmt =
      BuildSharedPrefixComposable(qo_indptr, unique_kv, {g, g2}, /*page_size=*/2, 1);
  const auto& l0 = fmt.levels[0].bsr;
  l0.Validate();
  // Row 1 (request 1) is covered by an empty block row.
  bool found_empty = false;
  for (int64_t brow = 0; brow < l0.NumBlockRows(); ++brow) {
    if (l0.row_start[static_cast<size_t>(brow)] == 1 &&
        l0.row_start[static_cast<size_t>(brow) + 1] == 2) {
      EXPECT_EQ(l0.RowKvLen(brow), 0);
      found_empty = true;
    }
  }
  EXPECT_TRUE(found_empty);
}

TEST(Composable, GroupsWithMultiTokenQueries) {
  // Speculative decoding: each group member carries 4 query rows.
  std::vector<int64_t> qo_indptr{0, 4, 8};
  std::vector<RequestKv> unique_kv(2);
  for (int r = 0; r < 2; ++r) {
    unique_kv[static_cast<size_t>(r)].pages = {60 + r};
    unique_kv[static_cast<size_t>(r)].last_page_len = 4;
    unique_kv[static_cast<size_t>(r)].pos_offset = 8;
  }
  PrefixGroup g;
  g.pages = {1, 2};
  g.last_page_len = 4;
  g.members = {0, 1};
  const auto fmt = BuildSharedPrefixComposable(qo_indptr, unique_kv, {g}, 4, 4);
  EXPECT_EQ(fmt.levels[0].bsr.br, 8);  // Whole group in one tile.
  EXPECT_EQ(fmt.levels[0].bsr.RowsInBlock(0), 8);
  EXPECT_EQ(fmt.levels[0].bsr.RowKvLen(0), 8);
}

TEST(Composable, NoGroupsDegeneratesToSingleLevel) {
  std::vector<int64_t> qo_indptr{0, 1};
  std::vector<RequestKv> unique_kv(1);
  unique_kv[0].pages = {0};
  unique_kv[0].last_page_len = 1;
  const auto fmt = BuildSharedPrefixComposable(qo_indptr, unique_kv, {}, 4, 1);
  ASSERT_EQ(fmt.levels.size(), 1u);
  EXPECT_FALSE(fmt.levels[0].partial);  // Sole level: outputs are final.
}

}  // namespace
}  // namespace flashinfer::sparse
