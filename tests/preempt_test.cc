// Priority preemption over the two-tier paged KV cache: kvcache-level
// eviction/restore under sharing, engine-level preempt-or-queue behavior,
// the tight-KV admission-wedge regression, and KV-headroom routing.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/router.h"
#include "kvcache/paged.h"
#include "kvcache/radix.h"
#include "serving/engine.h"

namespace flashinfer {
namespace {

using serving::BatchPolicy;
using serving::EngineConfig;
using serving::Request;
using serving::RestorePolicy;
using serving::ServingEngine;
using serving::ServingMetrics;

// --- Two-tier PagedKVCache ---------------------------------------------------

constexpr int kPage = 16;

PagedKVCache MakeCache(int64_t pages, int64_t host_pages) {
  return PagedKVCache(DType::kF16, /*num_kv_heads=*/1, /*head_dim=*/4, kPage, pages,
                      host_pages);
}

std::vector<float> Rows(int64_t tokens, float base) {
  std::vector<float> v(static_cast<size_t>(tokens) * 4);
  for (size_t i = 0; i < v.size(); ++i) v[i] = base + static_cast<float>(i);
  return v;
}

TEST(TwoTierKv, EvictRestoreRoundTripsExclusivePages) {
  auto kv = MakeCache(8, 8);
  const int seq = kv.CreateSequence();
  const auto k = Rows(40, 1.0f), v = Rows(40, 100.0f);
  kv.AppendTokens(seq, k.data(), v.data(), 40);  // 2 full pages + 8-token tail.
  EXPECT_EQ(kv.num_live_pages(), 3);
  EXPECT_EQ(kv.ExclusivePages(seq), 3);
  const float probe = kv.KAt(kv.SequencePages(seq)[1], 0, 3, 2);

  EXPECT_EQ(kv.EvictSequence(seq), 3);
  EXPECT_TRUE(kv.IsEvicted(seq));
  EXPECT_EQ(kv.num_live_pages(), 0);  // All device pages freed.
  EXPECT_EQ(kv.num_live_host_pages(), 3);
  EXPECT_EQ(kv.HostPagesHeld(seq), 3);
  EXPECT_EQ(kv.SequenceLength(seq), 40);  // Length survives eviction.

  EXPECT_EQ(kv.RestoreSequence(seq), 3);
  EXPECT_FALSE(kv.IsEvicted(seq));
  EXPECT_EQ(kv.num_live_pages(), 3);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
  // KV data survived the round trip through the host tier.
  EXPECT_EQ(kv.KAt(kv.SequencePages(seq)[1], 0, 3, 2), probe);
  // The restored sequence appends again.
  kv.AppendTokens(seq, k.data(), v.data(), 8);
  EXPECT_EQ(kv.SequenceLength(seq), 48);

  kv.DropSequence(seq);
  EXPECT_EQ(kv.num_live_pages(), 0);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
}

TEST(TwoTierKv, EvictingForkPreservesSharingAndRefcounts) {
  auto kv = MakeCache(16, 16);
  const int parent = kv.CreateSequence();
  const auto k = Rows(40, 1.0f), v = Rows(40, 100.0f);
  kv.AppendTokens(parent, k.data(), v.data(), 40);
  const int fork = kv.ForkSequence(parent);  // 2 shared full pages + CoW tail.
  const auto& ppages = kv.SequencePages(parent);
  EXPECT_EQ(kv.RefCount(ppages[0]), 2);
  EXPECT_EQ(kv.RefCount(ppages[1]), 2);
  EXPECT_EQ(kv.num_live_pages(), 4);  // 3 parent + 1 CoW tail.

  // Evicting the fork offloads only its exclusive CoW tail; the two shared
  // pages stay resident under the fork's refcount — sharing is not broken.
  EXPECT_EQ(kv.ExclusivePages(fork), 1);
  EXPECT_EQ(kv.EvictSequence(fork), 1);
  EXPECT_EQ(kv.RefCount(ppages[0]), 2);
  EXPECT_EQ(kv.RefCount(ppages[1]), 2);
  EXPECT_EQ(kv.num_live_pages(), 3);
  EXPECT_EQ(kv.num_live_host_pages(), 1);

  // The parent is untouched: it can keep appending into its own tail.
  kv.AppendTokens(parent, k.data(), v.data(), 8);
  EXPECT_EQ(kv.SequenceLength(parent), 48);

  // Swap-path restore: the tail comes back, refcounts stay exact.
  EXPECT_EQ(kv.RestoreSequence(fork), 1);
  EXPECT_EQ(kv.RefCount(ppages[0]), 2);
  EXPECT_EQ(kv.RefCount(ppages[1]), 2);
  EXPECT_EQ(kv.SequenceLength(fork), 40);
  kv.TruncateSequence(fork, 32);  // Fork can roll back normally again.

  kv.DropSequence(fork);
  EXPECT_EQ(kv.RefCount(ppages[0]), 1);
  kv.DropSequence(parent);
  EXPECT_EQ(kv.num_live_pages(), 0);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
}

TEST(TwoTierKv, DroppingEvictedForkReleasesHostPages) {
  // Recompute-path restore at the cache level: the evicted sequence is
  // dropped outright (its rebuilt replacement is a fresh sequence), which
  // must free host pages AND the refcounts it still holds on shared pages.
  auto kv = MakeCache(16, 16);
  const int parent = kv.CreateSequence();
  const auto k = Rows(40, 1.0f), v = Rows(40, 100.0f);
  kv.AppendTokens(parent, k.data(), v.data(), 40);
  const int fork = kv.ForkSequence(parent);
  kv.EvictSequence(fork);
  EXPECT_EQ(kv.num_live_host_pages(), 1);

  kv.DropSequence(fork);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
  EXPECT_EQ(kv.RefCount(kv.SequencePages(parent)[0]), 1);

  // Rebuild (what the engine's recompute restore does structurally).
  const int rebuilt = kv.CreateSequence();
  kv.ExtendSequence(rebuilt, 40);
  EXPECT_EQ(kv.SequenceLength(rebuilt), 40);
  kv.DropSequence(rebuilt);
  kv.DropSequence(parent);
  EXPECT_EQ(kv.num_live_pages(), 0);
}

TEST(TwoTierKv, EvictionKeepsRadixMirrorAndAdoptedPrefixExact) {
  // A cached prefix held by a radix tree (cache-owner sequence) and adopted
  // by a branch: evicting the branch must not disturb the cached pages or
  // the tree — only the branch's private suffix moves to host.
  auto kv = MakeCache(16, 16);
  RadixTree tree(kPage);

  const int owner = kv.CreateSequence();  // Stands in for the prefix cache.
  const auto k = Rows(32, 1.0f), v = Rows(32, 100.0f);
  kv.AppendTokens(owner, k.data(), v.data(), 32);  // 2 full pages.
  std::vector<int32_t> prompt(32);
  for (int i = 0; i < 32; ++i) prompt[i] = i;
  const std::vector<int64_t> prefix_pages = kv.SequencePages(owner);
  EXPECT_EQ(tree.Insert(prompt, prefix_pages), 2);

  const int branch = kv.CreateSequence();
  kv.AdoptPrefix(branch, prefix_pages, 32);
  kv.ExtendSequence(branch, 20);  // Private suffix: 1 full + 1 partial page.
  EXPECT_EQ(kv.RefCount(prefix_pages[0]), 2);
  EXPECT_EQ(kv.ExclusivePages(branch), 2);

  EXPECT_EQ(kv.EvictSequence(branch), 2);  // Only the private suffix.
  EXPECT_EQ(kv.RefCount(prefix_pages[0]), 2);
  EXPECT_EQ(kv.RefCount(prefix_pages[1]), 2);
  EXPECT_EQ(tree.TotalCachedPages(), 2);
  // The mirror still matches the prompt while the branch is evicted.
  EXPECT_EQ(tree.MatchPrefix(prompt).matched_tokens, 32);

  EXPECT_EQ(kv.RestoreSequence(branch), 2);
  EXPECT_EQ(kv.RefCount(prefix_pages[0]), 2);
  EXPECT_EQ(kv.SequenceLength(branch), 52);

  kv.DropSequence(branch);
  kv.DropSequence(owner);
  // The tree tracks page *ids*, not refcounts: with both sequences dropped,
  // every page is back on the free list.
  EXPECT_EQ(kv.num_live_pages(), 0);
  EXPECT_EQ(kv.num_live_host_pages(), 0);
  // (The radix mirror tracks page *ids*, not refcounts; TotalCachedPages is
  // its own budget metric and must be unchanged by branch eviction.)
  EXPECT_EQ(tree.TotalCachedPages(), 2);
  EXPECT_EQ(tree.EvictLru(16).size(), 2u);
}

// --- Engine preemption -------------------------------------------------------

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  return cfg;
}

/// hbm_capacity_gb that yields a device KV budget of ~`budget_tokens`.
double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

Request MakeReq(int id, double arrival, int64_t in, int64_t out, int priority) {
  Request r;
  r.id = id;
  r.arrival_s = arrival;
  r.input_len = in;
  r.output_len = out;
  r.priority = priority;
  return r;
}

// Regression for the PR 1 tight-KV wedge: a request whose KV need exceeds
// the total budget used to strand the arrival queue until the engine went
// idle and aborted on a loud FI_CHECK (engine.cc idle branch). The exact
// shape that tripped it — tight budget, an oversized request behind normal
// traffic — must now complete, with the oversized request *rejected* (with
// a metric) and KV pressure resolved by preemptions instead of a crash.
TEST(Preemption, TightKvWedgeConfigNowCompletesWithPreemptions) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);
  ASSERT_LT(engine.KvTokenBudget(), 6100);
  ASSERT_GE(engine.KvTokenBudget(), 5900);

  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.0, 3000, 400, /*priority=*/0));   // Low, long-lived.
  reqs.push_back(MakeReq(1, 0.3, 4000, 64, /*priority=*/1));    // Forces preemption.
  reqs.push_back(MakeReq(2, 0.5, 9000, 16, /*priority=*/1));    // Can NEVER fit.
  const auto m = engine.Run(reqs);

  EXPECT_EQ(m.rejected_requests, 1);
  EXPECT_GE(m.num_preemptions, 1);
  ASSERT_EQ(m.ttft_ms.size(), 2u);  // Both feasible requests completed.
  EXPECT_EQ(m.total_output_tokens, 400 + 64);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
  EXPECT_TRUE(engine.Finished());
}

// Without preemption the same infeasible request is still rejected (the
// graceful replacement for the FI_CHECK abort) and everything else simply
// queues for capacity.
TEST(Preemption, VanillaEngineRejectsInfeasibleInsteadOfWedging) {
  auto cfg = BaseConfig();
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);
  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.0, 3000, 64, 0));
  reqs.push_back(MakeReq(1, 0.1, 9000, 16, 0));  // need > total budget.
  reqs.push_back(MakeReq(2, 0.2, 2000, 32, 0));
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.rejected_requests, 1);
  EXPECT_EQ(m.num_preemptions, 0);
  ASSERT_EQ(m.ttft_ms.size(), 2u);
  EXPECT_EQ(m.total_output_tokens, 64 + 32);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
}

// Victim policy: lowest priority first, then youngest (latest arrival). The
// victims carry distinct context lengths so the recompute-restore token
// count identifies which branch was evicted.
TEST(Preemption, VictimIsLowestPriorityThenYoungest) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kRecompute;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);

  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.00, 400, 400, 0));   // Oldest low.
  reqs.push_back(MakeReq(1, 0.05, 800, 400, 0));   // Middle low.
  reqs.push_back(MakeReq(2, 0.10, 2000, 400, 0));  // Youngest low -> victim.
  reqs.push_back(MakeReq(3, 0.50, 2500, 100, 1));  // High-priority arrival.
  const auto m = engine.Run(reqs);

  EXPECT_EQ(m.num_preemptions, 1);
  EXPECT_EQ(m.num_recompute_restores, 1);
  // The evicted context was request 2's: >= its 2000-token prompt (plus the
  // tokens it had decoded by eviction time), not the 400/800 prompts.
  EXPECT_GE(m.recompute_tokens, 2000);
  EXPECT_LT(m.recompute_tokens, 2400);
  EXPECT_EQ(m.total_output_tokens, 3 * 400 + 100);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

TEST(Preemption, SwapRestoreRoundTripsPagesExactly) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 6000);
  ServingEngine engine(cfg);

  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.0, 3000, 400, 0));
  reqs.push_back(MakeReq(1, 0.5, 4000, 100, 1));
  const auto m = engine.Run(reqs);

  EXPECT_GE(m.num_preemptions, 1);
  EXPECT_EQ(m.num_recompute_restores, 0);
  EXPECT_EQ(m.num_swap_restores, m.num_preemptions);
  EXPECT_GT(m.evicted_pages, 0);
  EXPECT_EQ(m.restored_pages, m.evicted_pages);
  EXPECT_GT(m.total_swap_ms, 0.0);
  EXPECT_EQ(m.recompute_tokens, 0);
  EXPECT_EQ(m.total_output_tokens, 400 + 100);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

// Anti-starvation: freed capacity drains to the waiting victim before any
// equal-or-lower-priority arrival is admitted. The victim below has the
// largest reserve in a pool of small same-priority jobs (and is youngest,
// so it IS the one evicted); without the rule, every small completion's
// freed increment is immediately re-occupied by the next small arrival and
// the victim waits out the whole stream — with it, the victim restores as
// soon as two resident jobs have finished.
TEST(Preemption, RestoreOutranksEqualPriorityArrivals) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 2700);
  ServingEngine engine(cfg);

  std::vector<Request> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(MakeReq(i, 0.1 * i, 200, 150, 0));  // Small residents (358).
  }
  reqs.push_back(MakeReq(4, 0.4, 800, 400, 0));  // Victim: youngest, 1208.
  reqs.push_back(MakeReq(5, 0.5, 300, 190, 1));  // Preemptor (498).
  for (int i = 0; i < 16; ++i) {
    // Equal-priority stream that would otherwise re-occupy every increment.
    reqs.push_back(MakeReq(6 + i, 0.6 + 0.1 * i, 200, 150, 0));
  }
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.num_preemptions, 1);
  EXPECT_EQ(m.num_swap_restores + m.num_recompute_restores, 1);
  ASSERT_EQ(m.ttft_ms.size(), reqs.size());
  // The victim only waits for two resident completions, not the stream.
  EXPECT_LT(m.preempt_stall_steps, 200);
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

TEST(Preemption, PreemptionIdleUnderLooseBudgetMatchesVanilla) {
  Rng rng(77);
  const auto reqs = serving::ShareGptWorkload(rng, 30, 20.0);
  auto cfg = BaseConfig();  // 80 GB: no pressure.
  const auto vanilla = ServingEngine(cfg).Run(reqs);
  cfg.preemption.enabled = true;
  const auto preempt = ServingEngine(cfg).Run(reqs);
  // With headroom, full-output reservation changes nothing observable.
  EXPECT_EQ(preempt.num_preemptions, 0);
  EXPECT_EQ(preempt.rejected_requests, 0);
  EXPECT_DOUBLE_EQ(preempt.makespan_s, vanilla.makespan_s);
  EXPECT_EQ(preempt.num_steps, vanilla.num_steps);
  EXPECT_EQ(preempt.total_output_tokens, vanilla.total_output_tokens);
}

TEST(Preemption, HighPriorityTtftProtectedUnderPressure) {
  Rng rng(11);
  auto reqs = serving::UniformWorkload(rng, 60, 30.0, 512, 1024, 128);
  // Deterministic mix: every 5th request is interactive (priority 1).
  for (size_t i = 0; i < reqs.size(); ++i) reqs[i].priority = i % 5 == 0 ? 1 : 0;
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  ServingEngine engine(cfg);
  const auto m = engine.Run(reqs);
  EXPECT_GT(m.num_preemptions, 0);
  EXPECT_EQ(m.ttft_ms.size(), m.ttft_priority.size());
  // Preemption exists to protect the high class: its admission tail must
  // beat the low class's under the same pressure.
  EXPECT_LT(m.TtftPercentileMsForPriority(1, 0.95),
            m.TtftPercentileMsForPriority(0, 0.95));
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

TEST(Preemption, RunEqualsStepToUnderPressure) {
  Rng rng(13);
  auto reqs = serving::UniformWorkload(rng, 40, 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);

  ServingEngine reference(cfg);
  const auto run = reference.Run(reqs);
  ASSERT_GT(run.num_preemptions, 0);

  ServingEngine stepped(cfg);
  stepped.Reset();
  for (const auto& r : reqs) stepped.Admit(r);
  while (!stepped.Finished()) {
    stepped.StepTo(stepped.NextEventTime() + 0.02);
  }
  const auto& st = stepped.Metrics();
  EXPECT_DOUBLE_EQ(st.makespan_s, run.makespan_s);
  EXPECT_EQ(st.num_steps, run.num_steps);
  EXPECT_EQ(st.total_output_tokens, run.total_output_tokens);
  EXPECT_EQ(st.num_preemptions, run.num_preemptions);
  EXPECT_EQ(st.num_swap_restores, run.num_swap_restores);
  EXPECT_EQ(st.num_recompute_restores, run.num_recompute_restores);
  EXPECT_DOUBLE_EQ(st.total_swap_ms, run.total_swap_ms);
}

// --- Overlapped swap transfers (PreemptionConfig::overlap_swap) --------------

// Overlap mode routes swap traffic through per-direction copy streams instead
// of serializing it into the next step: transfer time hides behind compute
// (swap_hidden_ms), and only genuine copy-waits surface as swap_stall_ms.
TEST(Preemption, OverlapSwapHidesTransferTimeAndDrainsClean) {
  Rng rng(13);
  auto reqs = serving::UniformWorkload(rng, 40, 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.preemption.overlap_swap = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  ServingEngine engine(cfg);
  const auto m = engine.Run(reqs);

  ASSERT_GT(m.num_preemptions, 0);
  EXPECT_GT(m.total_swap_ms, 0.0);
  // Under a busy engine, most transfer time overlaps attention.
  EXPECT_GT(m.swap_hidden_ms, 0.0);
  EXPECT_LE(m.swap_hidden_ms, m.total_swap_ms * (1.0 + 1e-9));
  EXPECT_GE(m.SwapOverlapEfficiency().value_or(0.0), 0.0);
  EXPECT_LE(m.SwapOverlapEfficiency().value_or(0.0), 1.0 + 1e-9);
  // All of the two-tier accounting still closes out.
  EXPECT_EQ(m.num_swap_restores, m.num_preemptions);
  EXPECT_EQ(m.restored_pages, m.evicted_pages);
  EXPECT_EQ(m.ttft_ms.size() + static_cast<size_t>(m.rejected_requests),
            reqs.size());
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
  EXPECT_TRUE(engine.Finished());
}

// Legacy mode stalls for every transferred byte (swap_stall == total_swap);
// overlap mode must stall strictly less on the same pressured workload while
// completing the same tokens.
TEST(Preemption, OverlapSwapStallsLessThanLegacy) {
  Rng rng(13);
  auto reqs = serving::UniformWorkload(rng, 40, 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);

  const auto legacy = ServingEngine(cfg).Run(reqs);
  ASSERT_GT(legacy.num_preemptions, 0);
  EXPECT_NEAR(legacy.swap_stall_ms, legacy.total_swap_ms,
              1e-9 * std::max(1.0, legacy.total_swap_ms));
  EXPECT_DOUBLE_EQ(legacy.swap_hidden_ms, 0.0);

  cfg.preemption.overlap_swap = true;
  const auto overlap = ServingEngine(cfg).Run(reqs);
  ASSERT_GT(overlap.num_preemptions, 0);
  EXPECT_LT(overlap.swap_stall_ms, legacy.swap_stall_ms);
  EXPECT_EQ(overlap.total_output_tokens, legacy.total_output_tokens);
  EXPECT_LE(overlap.makespan_s, legacy.makespan_s * 1.001);
}

// Run() ≡ StepTo with overlapped transfers in flight: NextEventTime and the
// idle-path wake logic must agree on ready-time candidates, or external
// drivers would diverge from the internal drain loop.
TEST(Preemption, OverlapSwapRunEqualsStepTo) {
  Rng rng(13);
  auto reqs = serving::UniformWorkload(rng, 40, 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.preemption.overlap_swap = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);

  ServingEngine reference(cfg);
  const auto run = reference.Run(reqs);
  ASSERT_GT(run.num_preemptions, 0);

  ServingEngine stepped(cfg);
  stepped.Reset();
  for (const auto& r : reqs) stepped.Admit(r);
  while (!stepped.Finished()) {
    stepped.StepTo(stepped.NextEventTime() + 0.02);
  }
  const auto& st = stepped.Metrics();
  EXPECT_DOUBLE_EQ(st.makespan_s, run.makespan_s);
  EXPECT_EQ(st.num_steps, run.num_steps);
  EXPECT_EQ(st.total_output_tokens, run.total_output_tokens);
  EXPECT_EQ(st.num_preemptions, run.num_preemptions);
  EXPECT_EQ(st.num_swap_restores, run.num_swap_restores);
  EXPECT_DOUBLE_EQ(st.total_swap_ms, run.total_swap_ms);
  EXPECT_DOUBLE_EQ(st.swap_hidden_ms, run.swap_hidden_ms);
  EXPECT_DOUBLE_EQ(st.swap_stall_ms, run.swap_stall_ms);
}

TEST(Preemption, SpecDecodeCoexistsAndDrainsClean) {
  Rng rng(17);
  auto reqs = serving::UniformWorkload(rng, 40, 40.0, 256, 768, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  serving::AssignAcceptance(rng, reqs, 0.5, 0.9);
  auto cfg = BaseConfig();
  cfg.spec.enabled = true;
  cfg.preemption.enabled = true;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 4000);
  ServingEngine engine(cfg);
  const auto m = engine.Run(reqs);
  EXPECT_GT(m.num_preemptions, 0);
  EXPECT_GT(m.spec_steps, 0);
  EXPECT_EQ(m.ttft_ms.size() + static_cast<size_t>(m.rejected_requests),
            reqs.size());
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
}

// --- KV-headroom routing -----------------------------------------------------

TEST(RouterHeadroom, LeastLoadedAvoidsPressuredReplica) {
  auto router = cluster::CreateRouter(cluster::RouterPolicy::kLeastLoaded);
  std::vector<cluster::ReplicaView> views(2);
  views[0].replica = 0;
  views[0].queued_tokens = 100;  // Lightest load...
  views[0].kv_tokens_in_use = 9950;
  views[0].kv_token_budget = 10000;  // ...but only 50 tokens of headroom.
  views[1].replica = 1;
  views[1].queued_tokens = 5000;
  views[1].kv_tokens_in_use = 1000;
  views[1].kv_token_budget = 100000;

  Request r = MakeReq(0, 0.0, 512, 128, 0);
  EXPECT_EQ(router->Route(r, views), 1);
  EXPECT_EQ(router->Stats().pressure_fallbacks, 1);
  // With every replica pressured, fall back to plain least-loaded.
  views[1].kv_tokens_in_use = 99990;
  EXPECT_EQ(router->Route(r, views), 0);
}

TEST(RouterHeadroom, PrefixAffinityShedsFromPressuredTarget) {
  RadixTree cache0(16), cache1(16);
  std::vector<int32_t> prompt(64);
  for (int i = 0; i < 64; ++i) prompt[i] = 1000 + i;
  std::vector<int64_t> pages(4);
  for (int i = 0; i < 4; ++i) pages[static_cast<size_t>(i)] = i;
  cache0.Insert(prompt, pages);  // Replica 0 holds the prefix.

  std::vector<cluster::ReplicaView> views(2);
  views[0].replica = 0;
  views[0].prefix_cache = &cache0;
  views[0].kv_token_budget = 10000;
  views[1].replica = 1;
  views[1].prefix_cache = &cache1;
  views[1].kv_token_budget = 10000;

  Request r = MakeReq(0, 0.0, 64, 64, 0);
  r.prompt_tokens = prompt;

  auto router = cluster::CreateRouter(cluster::RouterPolicy::kPrefixAffinity);
  EXPECT_EQ(router->Route(r, views), 0);  // Affinity wins with headroom.
  EXPECT_EQ(router->Stats().affinity_hits, 1);

  views[0].kv_tokens_in_use = 9990;  // Pressure the affinity target.
  EXPECT_EQ(router->Route(r, views), 1);
  EXPECT_EQ(router->Stats().pressure_fallbacks, 1);
}

// --- Overlap-efficiency disambiguation ---------------------------------------

// Regression: the accessors used to return 0.0 both when NO transfer occurred
// and when transfers occurred but nothing was hidden — callers (bench gates,
// report tables) could not tell the cases apart. Pin the optional contract.
TEST(OverlapEfficiency, NoTrafficIsNulloptZeroHiddenIsZero) {
  ServingMetrics m;
  EXPECT_FALSE(m.SwapOverlapEfficiency().has_value());
  EXPECT_FALSE(m.MigrationOverlapEfficiency().has_value());

  m.total_swap_ms = 12.0;  // Traffic, nothing hidden: a real 0.0.
  ASSERT_TRUE(m.SwapOverlapEfficiency().has_value());
  EXPECT_DOUBLE_EQ(*m.SwapOverlapEfficiency(), 0.0);
  m.swap_hidden_ms = 6.0;
  EXPECT_DOUBLE_EQ(*m.SwapOverlapEfficiency(), 0.5);

  m.total_migration_ms = 4.0;
  ASSERT_TRUE(m.MigrationOverlapEfficiency().has_value());
  EXPECT_DOUBLE_EQ(*m.MigrationOverlapEfficiency(), 0.0);
  m.migration_hidden_ms = 4.0;
  EXPECT_DOUBLE_EQ(*m.MigrationOverlapEfficiency(), 1.0);
}

// --- Host-tier codec (quantized + compressed swap) ---------------------------

std::vector<Request> CodecWorkload() {
  Rng rng(13);
  auto reqs = serving::UniformWorkload(rng, 40, 25.0, 512, 1024, 96);
  serving::AssignPriorities(rng, reqs, {0.7, 0.3});
  return reqs;
}

// Codec-off must stay bit-identical to the pre-codec two-tier engine: the
// codec throughput knobs must be dead config (pricing never reads them), no
// codec metric may accrue beyond logical == stored, and the run must match a
// default-config run number-for-number.
TEST(KvCodec, CodecOffIsBitIdenticalAndIgnoresCodecKnobs) {
  const auto reqs = CodecWorkload();
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  const auto base = ServingEngine(cfg).Run(reqs);
  ASSERT_GT(base.num_preemptions, 0);

  auto knobs = cfg;  // Codec still off: absurd codec speeds must change nothing.
  knobs.preemption.codec_encode_gbps = 0.001;
  knobs.preemption.codec_decode_gbps = 0.001;
  const auto same = ServingEngine(knobs).Run(reqs);
  EXPECT_DOUBLE_EQ(same.makespan_s, base.makespan_s);
  EXPECT_DOUBLE_EQ(same.total_swap_ms, base.total_swap_ms);
  EXPECT_EQ(same.num_swap_restores, base.num_swap_restores);
  EXPECT_EQ(same.num_steps, base.num_steps);

  EXPECT_DOUBLE_EQ(base.codec_encode_ms, 0.0);
  EXPECT_DOUBLE_EQ(base.codec_decode_ms, 0.0);
  EXPECT_EQ(base.quant_mse_pages, 0);
  EXPECT_DOUBLE_EQ(base.evicted_stored_bytes, base.evicted_logical_bytes);
  EXPECT_DOUBLE_EQ(base.HostStoredRatio(), 1.0);
  EXPECT_DOUBLE_EQ(base.MeanPageQuantMse(), 0.0);
}

// Codec on: every invariant the raw tier keeps must still close out after
// drain, and the codec series must be live — stored < logical bytes, encode
// and decode time accrued (decode priced into restores), a nonzero bounded
// accuracy proxy.
TEST(KvCodec, QuantizedSwapConservesTokensAndMetersCodecSeries) {
  const auto reqs = CodecWorkload();
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.preemption.host_codec = {KvQuantFormat::kInt8, /*compress=*/true};
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  ServingEngine engine(cfg);
  const auto m = engine.Run(reqs);

  ASSERT_GT(m.num_preemptions, 0);
  ASSERT_GT(m.num_swap_restores, 0);
  // Conservation: the two-tier token meters drain to zero.
  EXPECT_EQ(engine.KvTokensInUse(), 0);
  EXPECT_EQ(engine.HostKvTokensInUse(), 0);
  EXPECT_EQ(engine.SpecKvLivePages(), 0);
  EXPECT_EQ(m.restored_pages, m.evicted_pages);
  // Codec series: encoded pages are strictly smaller than logical, both
  // codec passes are priced, and the accuracy proxy is nonzero but bounded.
  EXPECT_GT(m.evicted_logical_bytes, 0.0);
  EXPECT_LT(m.evicted_stored_bytes, m.evicted_logical_bytes);
  EXPECT_GT(m.HostStoredRatio(), 0.0);
  EXPECT_LT(m.HostStoredRatio(), 1.0);
  EXPECT_GT(m.codec_encode_ms, 0.0);
  EXPECT_GT(m.codec_decode_ms, 0.0);
  EXPECT_GT(m.quant_mse_pages, 0);
  EXPECT_GT(m.MeanPageQuantMse(), 0.0);
  EXPECT_LT(m.MeanPageQuantMse(), 1.0);  // Synthetic fill spans [-1, 1).
}

// Same workload with the same nominal host capacity: the codec tier must
// admit at least as many swap restores as the raw tier (stored bytes shrink,
// so effective capacity can only grow), and total swap_ms reflects the extra
// encode/decode passes priced into each transfer.
TEST(KvCodec, StoredByteMeteringMultipliesEffectiveHostCapacity) {
  const auto reqs = CodecWorkload();
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  // Tight host tier: the raw path must be forced to drop some victims to
  // recompute so codec headroom is observable.
  cfg.preemption.host_capacity_gb = 0.3;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  const auto raw = ServingEngine(cfg).Run(reqs);
  ASSERT_GT(raw.num_preemptions, 0);
  ASSERT_GT(raw.num_recompute_restores, 0);  // Host tier actually binds.

  cfg.preemption.host_codec = {KvQuantFormat::kInt8, /*compress=*/true};
  const auto enc = ServingEngine(cfg).Run(reqs);
  ASSERT_GT(enc.num_preemptions, 0);
  EXPECT_GT(enc.num_swap_restores, raw.num_swap_restores);
  EXPECT_LT(enc.num_recompute_restores, raw.num_recompute_restores);
}

/// One forced preemption of a victim with context ~`ctx` under kAuto;
/// returns whether the victim swapped (vs recomputed).
bool AutoVictimSwapsAt(int64_t ctx, KvCodecConfig codec) {
  auto cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kAuto;
  cfg.preemption.host_codec = codec;
  // Budget fits the victim's full reservation (ctx + 400 + slack) with
  // ~1600 free tokens: the 2000-token high-priority arrival cannot admit
  // without evicting the victim first.
  cfg.hbm_capacity_gb = HbmForBudget(cfg, ctx + 2000);
  std::vector<Request> reqs;
  reqs.push_back(MakeReq(0, 0.0, ctx, 400, /*priority=*/0));  // Victim.
  reqs.push_back(MakeReq(1, 0.4, 2000, 16, /*priority=*/1));  // Forces eviction.
  const auto m = ServingEngine(cfg).Run(reqs);
  EXPECT_GT(m.num_preemptions, 0) << "ctx=" << ctx;
  return m.num_swap_restores > m.num_recompute_restores;
}

// kAuto regression: the crossover must price the actual stored bytes plus the
// encode/decode passes. At default link/codec speeds the structural int8
// bound (0.75x stored) plus two codec passes makes the swap round trip
// strictly more expensive than the raw tier's, so the swap-wins crossover
// shifts to longer contexts when quantization is on — contexts that swapped
// codec-off must now recompute near the old crossover.
TEST(KvCodec, AutoRestoreCrossoverShiftsWhenQuantizationOn) {
  const KvCodecConfig int8{KvQuantFormat::kInt8, /*compress=*/false};
  const std::vector<int64_t> ctxs = {512,  1024, 2048, 3072, 4096,
                                     6144, 8192, 12288, 16384};
  int64_t first_swap_off = -1, first_swap_on = -1;
  for (const int64_t ctx : ctxs) {
    if (first_swap_off < 0 && AutoVictimSwapsAt(ctx, {})) first_swap_off = ctx;
    if (first_swap_on < 0 && AutoVictimSwapsAt(ctx, int8)) first_swap_on = ctx;
    if (first_swap_off >= 0 && first_swap_on >= 0) break;
  }
  ASSERT_GT(first_swap_off, 0) << "kAuto never chose swap codec-off";
  // Codec-on either crosses over strictly later or not at all in range.
  if (first_swap_on >= 0) {
    EXPECT_GT(first_swap_on, first_swap_off);
  } else {
    EXPECT_LE(first_swap_off, ctxs.back());
  }
}

}  // namespace
}  // namespace flashinfer
