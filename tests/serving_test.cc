#include <gtest/gtest.h>

#include "serving/backends.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/streaming_llm.h"
#include "serving/workload.h"

namespace flashinfer::serving {
namespace {

TEST(Model, ParameterCounts) {
  // Llama 3.1 8B has ~8.0e9 parameters; our dense count excludes norms and
  // embeddings-in, so expect the right ballpark.
  EXPECT_NEAR(Llama31_8B().DenseParams(), 8.0e9, 1.2e9);
  EXPECT_NEAR(Llama31_70B().DenseParams(), 7.0e10, 1.0e10);
  EXPECT_NEAR(Vicuna13B().DenseParams(), 1.3e10, 2.0e9);
}

TEST(Model, KvBytesPerToken) {
  const auto m = Llama31_8B();
  // 2 x 32 layers x 8 kv heads x 128 dim x 2 bytes.
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(DType::kF16), 2.0 * 32 * 8 * 128 * 2);
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(DType::kFP8_E4M3), 2.0 * 32 * 8 * 128 * 1);
}

TEST(Workload, ShareGptShapes) {
  Rng rng(1);
  const auto reqs = ShareGptWorkload(rng, 2000, 8.0);
  double in_sum = 0, out_sum = 0;
  for (const auto& r : reqs) {
    EXPECT_GE(r.input_len, 4);
    EXPECT_LE(r.input_len, 2048);
    in_sum += static_cast<double>(r.input_len);
    out_sum += static_cast<double>(r.output_len);
    EXPECT_GE(r.arrival_s, 0.0);
  }
  EXPECT_NEAR(in_sum / 2000.0, 220.0, 60.0);
  EXPECT_NEAR(out_sum / 2000.0, 190.0, 50.0);
  // Poisson arrivals at rate 8/s: ~250s horizon for 2000 requests.
  EXPECT_NEAR(reqs.back().arrival_s, 250.0, 50.0);
}

TEST(Workload, LengthDistributions) {
  Rng rng(2);
  const auto constant = SampleLengths(rng, LengthDist::kConstant, 16, 1024);
  for (int64_t l : constant) EXPECT_EQ(l, 1024);
  const auto uniform = SampleLengths(rng, LengthDist::kUniform, 1000, 1024);
  for (int64_t l : uniform) {
    EXPECT_GE(l, 512);
    EXPECT_LE(l, 1024);
  }
  const auto skewed = SampleLengths(rng, LengthDist::kSkewed, 1000, 1024);
  int64_t mx = 0;
  for (int64_t l : skewed) mx = std::max(mx, l);
  EXPECT_GT(mx, 3000);  // Heavy tail present.
}

TEST(Metrics, Percentiles) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(AttnSim, BalancedBeatsNaiveOnSkewedBatch) {
  const auto dev = gpusim::H100Sxm80GB();
  AttnSimInput in;
  in.qo_lens.assign(16, 1);
  in.kv_lens = {16384, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64, 64};
  auto fi = FlashInferBackend();
  auto naive = fi;
  naive.scheduler = SchedulerKind::kNaive;
  const double t_bal = SimulateBatchAttention(dev, fi, in).time_us;
  const double t_naive = SimulateBatchAttention(dev, naive, in).time_us;
  EXPECT_LT(t_bal, t_naive * 0.6);
}

TEST(AttnSim, ComposableHelpsLongSharedPrefix) {
  const auto dev = gpusim::H100Sxm80GB();
  AttnSimInput in;
  const int n = 16;
  in.qo_lens.assign(n, 1);
  in.kv_lens.assign(n, 8192 + 128);
  AttnSimInput::Group g;
  g.prefix_len = 8192;
  for (int i = 0; i < n; ++i) g.members.push_back(i);
  in.groups.push_back(g);

  auto single = FlashInferBackend();
  auto comp = FlashInferBackend();
  comp.composable = true;
  const double t_single = SimulateBatchAttention(dev, single, in).time_us;
  const double t_comp = SimulateBatchAttention(dev, comp, in).time_us;
  EXPECT_LT(t_comp, t_single);
}

TEST(AttnSim, ComposableSkippedWithoutGroups) {
  const auto dev = gpusim::H100Sxm80GB();
  AttnSimInput in;
  in.qo_lens.assign(4, 1);
  in.kv_lens.assign(4, 256);
  auto comp = FlashInferBackend();
  comp.composable = true;
  auto plain = FlashInferBackend();
  EXPECT_NEAR(SimulateBatchAttention(dev, comp, in).time_us,
              SimulateBatchAttention(dev, plain, in).time_us, 1e-9);
}

TEST(Engine, CompletesWorkloadAndReportsMetrics) {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  ServingEngine engine(cfg);
  EXPECT_GT(engine.KvTokenBudget(), 100000);

  Rng rng(3);
  const auto reqs = ShareGptWorkload(rng, 40, 8.0);
  const auto m = engine.Run(reqs);
  EXPECT_EQ(m.ttft_ms.size(), 40u);
  EXPECT_GT(m.total_output_tokens, 40);
  EXPECT_GT(m.MedianItlMs(), 0.0);
  EXPECT_GT(m.MedianTtftMs(), 0.0);
  EXPECT_GT(m.makespan_s, 0.0);
  // TTFT must exceed ITL (prefill processes many tokens).
  EXPECT_GT(m.MedianTtftMs(), m.MedianItlMs());
}

TEST(Engine, FlashInferFasterThanTriton) {
  Rng rng(4);
  const auto reqs = ShareGptWorkload(rng, 60, 10.0);
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  const auto fi = ServingEngine(cfg).Run(reqs);
  cfg.backend = TritonBackend();
  const auto triton = ServingEngine(cfg).Run(reqs);
  EXPECT_LT(fi.MedianItlMs(), triton.MedianItlMs());
  EXPECT_LT(fi.MedianTtftMs(), triton.MedianTtftMs());
}

TEST(Engine, ParallelGenerationSharesPrefix) {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  cfg.backend.composable = true;
  ServingEngine engine(cfg);
  Rng rng(5);
  auto reqs = ShareGptWorkload(rng, 10, 4.0, /*parallel_n=*/4);
  const auto m = engine.Run(reqs);
  // 10 requests x 4 branches, each emitting output tokens.
  EXPECT_GT(m.total_output_tokens, 10 * 4 * 4);
  EXPECT_EQ(m.ttft_ms.size(), 10u);
}

TEST(StreamingLlm, FusedFasterThanUnfusedFasterThanOriginal) {
  StreamingLlmConfig cfg;
  cfg.model = Vicuna13B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.recent_window = 2000;
  const double fused = StreamingLlmItlMs(cfg, StreamingRopeMode::kFusedFlashInfer);
  const double unfused = StreamingLlmItlMs(cfg, StreamingRopeMode::kUnfusedFlashAttention);
  const double original = StreamingLlmItlMs(cfg, StreamingRopeMode::kOriginalImpl);
  EXPECT_LT(fused, unfused);
  EXPECT_LT(unfused, original);
  // Paper (H100, recent 2000): ~13.3 / 19.1 / 26.7 ms. Allow generous bands.
  EXPECT_GT(fused, 4.0);
  EXPECT_LT(fused, 25.0);
  EXPECT_GT(unfused / fused, 1.15);
}

TEST(StreamingLlm, ItlGrowsSlowlyWithWindow) {
  StreamingLlmConfig cfg;
  cfg.model = Vicuna13B();
  cfg.device = gpusim::A100Sxm40GB();
  cfg.recent_window = 1000;
  const double w1k = StreamingLlmItlMs(cfg, StreamingRopeMode::kFusedFlashInfer);
  cfg.recent_window = 4000;
  const double w4k = StreamingLlmItlMs(cfg, StreamingRopeMode::kFusedFlashInfer);
  EXPECT_GE(w4k, w1k);
  EXPECT_LT(w4k, w1k * 1.3);  // Constant-memory streaming: near-flat ITL.
}

}  // namespace
}  // namespace flashinfer::serving
