#include <gtest/gtest.h>

#include "sparse/bsr.h"
#include "sparse/gather.h"

namespace flashinfer::sparse {
namespace {

TEST(BuildBatchBsr, SingleRequestStructure) {
  // One request, 5 query rows, 10 kv tokens in pages of 4 -> 3 pages, last
  // page holds 2 tokens.
  RequestKv kv;
  kv.pages = {7, 3, 9};
  kv.last_page_len = 2;
  const auto bsr = BuildBatchBsr({0, 5}, {kv}, /*page_size=*/4, /*tile_q=*/4);

  EXPECT_EQ(bsr.num_rows, 5);
  EXPECT_EQ(bsr.br, 4);
  EXPECT_EQ(bsr.bc, 4);
  EXPECT_EQ(bsr.NumBlockRows(), 2);  // ceil(5/4).
  EXPECT_EQ(bsr.RowsInBlock(0), 4);
  EXPECT_EQ(bsr.RowsInBlock(1), 1);
  // Every tile attends to all three pages.
  EXPECT_EQ(bsr.Nnz(), 6);
  EXPECT_EQ(bsr.indices[0], 7);
  EXPECT_EQ(bsr.indices[1], 3);
  EXPECT_EQ(bsr.indices[2], 9);
  EXPECT_EQ(bsr.block_valid[0], 4);
  EXPECT_EQ(bsr.block_valid[2], 2);  // Ragged last page.
  EXPECT_EQ(bsr.block_pos[0], 0);
  EXPECT_EQ(bsr.block_pos[1], 4);
  EXPECT_EQ(bsr.block_pos[2], 8);
  EXPECT_EQ(bsr.RowKvLen(0), 10);
  EXPECT_EQ(bsr.RowKvLen(1), 10);
}

TEST(BuildBatchBsr, PositionOffsetPropagates) {
  RequestKv kv;
  kv.pages = {0, 1};
  kv.last_page_len = 4;
  kv.pos_offset = 100;  // StreamingLLM-style shifted window.
  const auto bsr = BuildBatchBsr({0, 1}, {kv}, 4, 1);
  EXPECT_EQ(bsr.block_pos[0], 100);
  EXPECT_EQ(bsr.block_pos[1], 104);
}

TEST(BuildBatchBsr, MultiRequestRowStarts) {
  RequestKv a, b;
  a.pages = {0};
  a.last_page_len = 3;
  b.pages = {1, 2};
  b.last_page_len = 1;
  const auto bsr = BuildBatchBsr({0, 3, 5}, {a, b}, 4, 2);
  // Request 0: rows [0,3) -> tiles [0,2),[2,3); request 1: rows [3,5) -> [3,5).
  EXPECT_EQ(bsr.NumBlockRows(), 3);
  EXPECT_EQ(bsr.row_start[0], 0);
  EXPECT_EQ(bsr.row_start[1], 2);
  EXPECT_EQ(bsr.row_start[2], 3);
  EXPECT_EQ(bsr.row_start[3], 5);
  EXPECT_EQ(bsr.RowKvLen(0), 3);
  EXPECT_EQ(bsr.RowKvLen(2), 5);
}

TEST(BuildBatchBsr, EmptyKvRequest) {
  RequestKv empty;  // No pages yet.
  const auto bsr = BuildBatchBsr({0, 2}, {empty}, 4, 2);
  EXPECT_EQ(bsr.Nnz(), 0);
  EXPECT_EQ(bsr.RowKvLen(0), 0);
}

TEST(BsrFromDenseMask, CausalPattern) {
  // 4x4 causal mask with (2,2) blocks: block (0,1) is empty.
  std::vector<std::vector<bool>> mask(4, std::vector<bool>(4, false));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j <= i; ++j) mask[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
  }
  const auto bsr = BsrFromDenseMask(mask, 2, 2);
  EXPECT_EQ(bsr.NumBlockRows(), 2);
  EXPECT_EQ(bsr.Nnz(), 3);  // (0,0), (1,0), (1,1).
  EXPECT_EQ(bsr.indices[0], 0);
  EXPECT_EQ(bsr.indices[1], 0);
  EXPECT_EQ(bsr.indices[2], 1);
}

TEST(BsrFromDenseMask, TreeAttentionMask) {
  // Speculative tree: two branches sharing a trunk (cols 0-1), tokens 2,3
  // branch A, 4,5 branch B.
  std::vector<std::vector<bool>> mask = {
      {true, true, true, false, false, false},
      {true, true, true, true, false, false},
      {true, true, false, false, true, false},
      {true, true, false, false, true, true},
  };
  const auto bsr = BsrFromDenseMask(mask, 1, 1);
  EXPECT_EQ(bsr.num_col_blocks, 6);
  EXPECT_EQ(bsr.Nnz(), 3 + 4 + 3 + 4);
  bsr.Validate();
}

TEST(BuildPrunedBsr, QuestStyleSelection) {
  // 32-token request in pages of 4; keep pages {0, 3, 7}.
  RequestKv kv;
  for (int i = 0; i < 8; ++i) kv.pages.push_back(i + 10);
  kv.last_page_len = 4;
  const auto bsr = BuildPrunedBsr({0, 1}, {kv}, {{3, 0, 7}}, 4, 1);
  EXPECT_EQ(bsr.Nnz(), 3);
  // Pages sorted by position; physical ids offset by 10.
  EXPECT_EQ(bsr.indices[0], 10);
  EXPECT_EQ(bsr.indices[1], 13);
  EXPECT_EQ(bsr.indices[2], 17);
  // Logical positions preserved for RoPE/causal.
  EXPECT_EQ(bsr.block_pos[0], 0);
  EXPECT_EQ(bsr.block_pos[1], 12);
  EXPECT_EQ(bsr.block_pos[2], 28);
  EXPECT_EQ(bsr.RowKvLen(0), 12);
}

class BsrTileSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BsrTileSweep, CoverageInvariants) {
  const auto [page_size, tile_q] = GetParam();
  std::vector<RequestKv> kv(3);
  std::vector<int64_t> qo_indptr{0};
  int64_t next_page = 0;
  const int64_t kv_tokens[3] = {1, 17, 64};
  const int64_t qo_rows[3] = {9, 2, 33};
  for (int r = 0; r < 3; ++r) {
    const int64_t pages = (kv_tokens[r] + page_size - 1) / page_size;
    for (int64_t p = 0; p < pages; ++p) kv[static_cast<size_t>(r)].pages.push_back(next_page++);
    kv[static_cast<size_t>(r)].last_page_len =
        static_cast<int>(kv_tokens[r] - (pages - 1) * page_size);
    qo_indptr.push_back(qo_indptr.back() + qo_rows[r]);
  }
  const auto bsr = BuildBatchBsr(qo_indptr, kv, page_size, tile_q);
  bsr.Validate();
  // Row coverage: block rows partition [0, num_rows).
  EXPECT_EQ(bsr.row_start.back(), qo_indptr.back());
  // Every tile of request r sees exactly kv_tokens[r] valid tokens.
  int64_t br = 0;
  for (int r = 0; r < 3; ++r) {
    const int64_t tiles = (qo_rows[r] + tile_q - 1) / tile_q;
    for (int64_t t = 0; t < tiles; ++t, ++br) {
      EXPECT_EQ(bsr.RowKvLen(br), kv_tokens[r]);
    }
  }
  EXPECT_EQ(br, bsr.NumBlockRows());
}

INSTANTIATE_TEST_SUITE_P(PageAndTile, BsrTileSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 16),
                                            ::testing::Values(1, 4, 16, 128)));

TEST(MaskHelpers, ExpandMaskRowsRepeatsPerGroup) {
  const std::vector<std::vector<bool>> mask = {{true, false}, {false, true}};
  const auto expanded = ExpandMaskRows(mask, 3);
  ASSERT_EQ(expanded.size(), 6u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(expanded[static_cast<size_t>(j)][0]);
    EXPECT_FALSE(expanded[static_cast<size_t>(j)][1]);
    EXPECT_FALSE(expanded[static_cast<size_t>(3 + j)][0]);
    EXPECT_TRUE(expanded[static_cast<size_t>(3 + j)][1]);
  }
  // group == 1 is the identity.
  EXPECT_EQ(ExpandMaskRows(mask, 1).size(), 2u);
}

TEST(MaskHelpers, TileBsrDiagonalPreservesStructurePerCopy) {
  // Lower a small mask, replicate it, and check each copy's block rows are
  // bitwise-identical modulo the column/row offsets.
  const std::vector<std::vector<bool>> mask = {
      {true, false, false}, {true, true, false}, {false, true, true}};
  const auto unit = BsrFromDenseMask(mask, /*br=*/2, /*bc=*/1);
  const auto tiled = TileBsrDiagonal(unit, 4);
  tiled.Validate();
  EXPECT_EQ(tiled.NumBlockRows(), unit.NumBlockRows() * 4);
  EXPECT_EQ(tiled.num_rows, unit.num_rows * 4);
  for (int c = 0; c < 4; ++c) {
    for (int64_t e = 0; e < unit.Nnz(); ++e) {
      const size_t te = static_cast<size_t>(c * unit.Nnz() + e);
      EXPECT_EQ(tiled.indices[te],
                unit.indices[static_cast<size_t>(e)] + c * unit.num_col_blocks);
      EXPECT_EQ(tiled.block_pos[te], unit.block_pos[static_cast<size_t>(e)]);
      EXPECT_EQ(tiled.block_valid[te], unit.block_valid[static_cast<size_t>(e)]);
    }
  }
  // Row extents repeat with the per-copy row offset.
  for (int c = 0; c < 4; ++c) {
    for (int64_t b = 0; b < unit.NumBlockRows(); ++b) {
      EXPECT_EQ(tiled.row_start[static_cast<size_t>(c * unit.NumBlockRows() + b + 1)],
                unit.row_start[static_cast<size_t>(b + 1)] + c * unit.num_rows);
    }
  }
}

TEST(Gather, CopiesScatteredRows) {
  std::vector<float> src(64);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i);
  std::vector<const float*> rows = {&src[48], &src[0], &src[16]};
  std::vector<float> dst(24, -1.0f);
  const size_t bytes = GatherRows<float>(rows, 8, dst.data());
  EXPECT_EQ(bytes, 3u * 8u * sizeof(float));
  EXPECT_EQ(dst[0], 48.0f);
  EXPECT_EQ(dst[8], 0.0f);
  EXPECT_EQ(dst[16], 16.0f);
  EXPECT_EQ(dst[23], 23.0f);
}

}  // namespace
}  // namespace flashinfer::sparse
