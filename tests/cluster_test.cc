// Cluster subsystem tests: the steppable-engine refactor is
// behavior-preserving, routers behave as specified, and a single-replica
// cluster degenerates to the plain engine.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "serving/engine.h"

namespace flashinfer::cluster {
namespace {

using serving::EngineConfig;
using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  return cfg;
}

void ExpectMetricsIdentical(const ServingMetrics& a, const ServingMetrics& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_output_tokens, b.total_output_tokens);
  EXPECT_EQ(a.num_steps, b.num_steps);
  EXPECT_EQ(a.total_prefill_tokens, b.total_prefill_tokens);
  ASSERT_EQ(a.ttft_ms.size(), b.ttft_ms.size());
  for (size_t i = 0; i < a.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ttft_ms[i], b.ttft_ms[i]) << "ttft sample " << i;
  }
  ASSERT_EQ(a.itl_ms.size(), b.itl_ms.size());
  for (size_t i = 0; i < a.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.itl_ms[i], b.itl_ms[i]) << "itl sample " << i;
  }
  EXPECT_DOUBLE_EQ(a.total_attention_ms, b.total_attention_ms);
  EXPECT_DOUBLE_EQ(a.total_gemm_ms, b.total_gemm_ms);
  EXPECT_DOUBLE_EQ(a.total_host_ms, b.total_host_ms);
}

// (a) Run() is a thin wrapper: an external Admit/StepTo loop reproduces it
// token-for-token on a ShareGPT workload.
TEST(SteppableEngine, StepLoopMatchesRunExactly) {
  Rng rng(7);
  const auto workload = serving::ShareGptWorkload(rng, 60, 15.0);

  ServingEngine reference(BaseConfig());
  const auto run_metrics = reference.Run(workload);

  ServingEngine stepped(BaseConfig());
  stepped.Reset();
  for (const auto& r : workload) stepped.Admit(r);
  while (!stepped.Finished()) {
    const double next = stepped.NextEventTime();
    ASSERT_TRUE(std::isfinite(next));
    ASSERT_GE(stepped.StepTo(next), 1);  // Every event-time step makes progress.
  }
  ExpectMetricsIdentical(run_metrics, stepped.Metrics());
}

// Admission honors arrival times even when requests are admitted mid-flight
// (the cluster driver's pattern: StepTo(arrival) then Admit).
TEST(SteppableEngine, IncrementalAdmissionMatchesRun) {
  Rng rng(11);
  auto workload = serving::ShareGptWorkload(rng, 40, 25.0);

  ServingEngine reference(BaseConfig());
  const auto run_metrics = reference.Run(workload);

  ServingEngine stepped(BaseConfig());
  stepped.Reset();
  for (const auto& r : workload) {
    stepped.StepTo(r.arrival_s);
    stepped.Admit(r);
  }
  stepped.Drain();
  ExpectMetricsIdentical(run_metrics, stepped.Metrics());
}

TEST(SteppableEngine, NextEventTimeSemantics) {
  ServingEngine engine(BaseConfig());
  engine.Reset();
  EXPECT_TRUE(engine.Finished());
  EXPECT_TRUE(std::isinf(engine.NextEventTime()));

  Request r;
  r.id = 0;
  r.arrival_s = 5.0;
  r.input_len = 64;
  r.output_len = 4;
  engine.Admit(r);
  EXPECT_DOUBLE_EQ(engine.NextEventTime(), 5.0);  // Idle until the arrival.
  EXPECT_EQ(engine.StepTo(4.0), 0);               // Nothing starts before it.
  engine.Drain();
  EXPECT_TRUE(engine.Finished());
  EXPECT_EQ(engine.Metrics().total_output_tokens, 4);
}

// (c) A single-replica cluster reproduces the plain engine exactly (ShareGPT
// requests carry no token ids, so prefix caching never engages).
TEST(Cluster, SingleReplicaMatchesServingEngine) {
  Rng rng(21);
  const auto workload = serving::ShareGptWorkload(rng, 50, 20.0);

  ServingEngine engine(BaseConfig());
  const auto engine_metrics = engine.Run(workload);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 1;
  cfg.policy = RouterPolicy::kRoundRobin;
  const auto cluster_metrics = ClusterEngine(cfg).Run(workload);

  ASSERT_EQ(cluster_metrics.per_replica.size(), 1u);
  ExpectMetricsIdentical(engine_metrics, cluster_metrics.per_replica[0]);
  ExpectMetricsIdentical(engine_metrics, cluster_metrics.aggregate);
  EXPECT_DOUBLE_EQ(cluster_metrics.load_imbalance, 1.0);
}

// (b) PrefixAffinity sends same-prefix requests to the same replica and
// beats RoundRobin on prefix-hit rate.
TEST(Cluster, PrefixAffinityCoLocatesTenants) {
  Rng rng(33);
  serving::TenantPoolConfig pool;
  pool.num_tenants = 8;
  const auto workload = serving::MultiTenantWorkload(rng, 120, 30.0, pool);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.policy = RouterPolicy::kPrefixAffinity;
  // Effectively uncapped: this test isolates pure affinity behavior.
  cfg.imbalance_cap = 100.0;
  const auto pa = ClusterEngine(cfg).Run(workload);

  cfg.policy = RouterPolicy::kRoundRobin;
  const auto rr = ClusterEngine(cfg).Run(workload);

  EXPECT_GT(pa.prefix_hit_rate, rr.prefix_hit_rate);
  EXPECT_GE(pa.prefix_hit_rate, 1.2 * rr.prefix_hit_rate);
  EXPECT_GT(pa.router.affinity_hits, 0);
  // Affinity skips cached prompt tokens, so it computes strictly fewer.
  EXPECT_LT(pa.aggregate.total_prefill_tokens, rr.aggregate.total_prefill_tokens);
}

TEST(Cluster, SamePrefixRequestsLandOnOneReplica) {
  // Two tenants, far apart in time, no load pressure: pure affinity must
  // pin each tenant to exactly one replica.
  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.policy = RouterPolicy::kPrefixAffinity;

  std::vector<Request> workload;
  Rng rng(5);
  std::vector<std::vector<int32_t>> prompts(2);
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 256; ++i) {
      prompts[t].push_back(t * 1000000 + static_cast<int32_t>(rng.UniformInt(0, 9999)));
    }
  }
  for (int i = 0; i < 12; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = i * 2.0;  // Sparse: the cluster drains between arrivals.
    r.tenant = i % 2;
    r.prompt_tokens = prompts[r.tenant];
    r.input_len = static_cast<int64_t>(r.prompt_tokens.size());
    r.output_len = 8;
    workload.push_back(r);
  }
  const auto m = ClusterEngine(cfg).Run(workload);

  // Two tenants -> at most two replicas ever see a request.
  int replicas_used = 0;
  for (int64_t n : m.replica_requests) replicas_used += n > 0 ? 1 : 0;
  EXPECT_LE(replicas_used, 2);
  // Every request after each tenant's first is a full-prefix hit; prompts
  // are 256 tokens = 16 pages exactly, so 10 of 12 prompts match fully.
  EXPECT_GT(m.prefix_hit_rate, 0.8);
}

TEST(Cluster, BackToBackRunsAreIndependent) {
  // Regression: Run() must fully reset router stats and prefix-cache
  // mirrors, not just the engines — a warm mirror inflates hit rates.
  Rng rng(66);
  serving::TenantPoolConfig pool;
  pool.num_tenants = 8;
  const auto workload = serving::MultiTenantWorkload(rng, 80, 30.0, pool);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.policy = RouterPolicy::kPrefixAffinity;
  ClusterEngine cluster(cfg);
  const auto first = cluster.Run(workload);
  const auto second = cluster.Run(workload);
  EXPECT_DOUBLE_EQ(first.prefix_hit_rate, second.prefix_hit_rate);
  EXPECT_EQ(first.router.routed, second.router.routed);
  EXPECT_EQ(first.router.affinity_hits, second.router.affinity_hits);
  ExpectMetricsIdentical(first.aggregate, second.aggregate);
}

// Run ≡ StepTo with chunked prefill enabled: partial-prefill progress is
// plain steppable state, so an external step loop reproduces Run() exactly
// even when requests are admitted in unsorted arrival order and StepTo
// deadlines land between a long prompt's chunks.
TEST(SteppableEngine, ChunkedRunMatchesUnsortedStepLoop) {
  Rng rng(71);
  serving::BurstyPrefillConfig wcfg;
  wcfg.num_steady = 50;
  wcfg.num_bursts = 3;
  wcfg.burst_size = 2;
  wcfg.burst_input_lo = 3000;  // >= 3 chunks at 1024.
  wcfg.burst_input_hi = 6000;
  auto workload = serving::BurstyLongPrefillWorkload(rng, wcfg);

  EngineConfig cfg = BaseConfig();
  cfg.prefill_chunk_tokens = 1024;
  ServingEngine reference(cfg);
  const auto run_metrics = reference.Run(workload);
  EXPECT_GT(run_metrics.chunked_requests, 0);
  EXPECT_GT(run_metrics.mixed_steps, 0);

  // Admit in a deterministically shuffled (unsorted) order; Admit() keeps
  // the queue arrival-sorted, so this must not change anything.
  auto shuffled = workload;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
  }
  ServingEngine stepped(cfg);
  stepped.Reset();
  for (const auto& r : shuffled) stepped.Admit(r);
  // Coarse deadlines (50 ms) guaranteed to straddle multi-chunk prefills:
  // a burst prompt needs >= 3 chunk steps of a few ms each.
  while (!stepped.Finished()) {
    const double next = stepped.NextEventTime();
    ASSERT_TRUE(std::isfinite(next));
    stepped.StepTo(next + 0.05);
  }
  ExpectMetricsIdentical(run_metrics, stepped.Metrics());
  EXPECT_EQ(run_metrics.prefill_chunks, stepped.Metrics().prefill_chunks);
  EXPECT_EQ(run_metrics.mixed_steps, stepped.Metrics().mixed_steps);
}

// Cluster aggregation covers the chunked-prefill counters: the aggregate is
// the per-replica sum (and concatenation for branch_stalls).
TEST(Cluster, AggregatesChunkedPrefillMetrics) {
  Rng rng(72);
  serving::BurstyPrefillConfig wcfg;
  wcfg.num_steady = 60;
  wcfg.num_bursts = 2;
  wcfg.burst_size = 3;
  const auto workload = serving::BurstyLongPrefillWorkload(rng, wcfg);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.engine.prefill_chunk_tokens = 512;
  cfg.num_replicas = 3;
  cfg.policy = RouterPolicy::kLeastLoaded;
  const auto m = ClusterEngine(cfg).Run(workload);

  int64_t chunks = 0, mixed = 0, stalls = 0;
  size_t branch_stalls = 0;
  for (const auto& r : m.per_replica) {
    chunks += r.prefill_chunks;
    mixed += r.mixed_steps;
    stalls += r.itl_stall_steps;
    branch_stalls += r.branch_stalls.size();
  }
  EXPECT_GT(m.aggregate.prefill_chunks, 0);
  EXPECT_EQ(m.aggregate.prefill_chunks, chunks);
  EXPECT_EQ(m.aggregate.mixed_steps, mixed);
  EXPECT_EQ(m.aggregate.itl_stall_steps, stalls);
  EXPECT_EQ(m.aggregate.branch_stalls.size(), branch_stalls);
  EXPECT_EQ(m.aggregate.itl_stall_steps, 0);  // Chunked: no stalls anywhere.
}

TEST(Cluster, LeastLoadedBalancesBetterThanNothing) {
  Rng rng(44);
  const auto workload = serving::ShareGptWorkload(rng, 100, 40.0);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.policy = RouterPolicy::kLeastLoaded;
  const auto ll = ClusterEngine(cfg).Run(workload);

  EXPECT_EQ(ll.aggregate.ttft_ms.size(), workload.size());
  EXPECT_LE(ll.load_imbalance, 1.5);
  // All replicas served someone.
  for (int64_t n : ll.replica_requests) EXPECT_GT(n, 0);
}

TEST(Cluster, ImbalanceCapShedsHotTenant) {
  // One overwhelmingly hot tenant under heavy load: with the cap, fallbacks
  // must fire and spread work; without it, one replica takes everything.
  Rng rng(55);
  serving::TenantPoolConfig pool;
  pool.num_tenants = 2;
  pool.zipf_s = 3.0;  // Tenant 1 dominates.
  const auto workload = serving::MultiTenantWorkload(rng, 150, 100.0, pool);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.policy = RouterPolicy::kPrefixAffinity;
  cfg.imbalance_cap = 1.2;
  cfg.imbalance_floor_tokens = 256;
  const auto capped = ClusterEngine(cfg).Run(workload);

  cfg.imbalance_cap = 1e9;  // Effectively uncapped.
  const auto uncapped = ClusterEngine(cfg).Run(workload);

  EXPECT_GT(capped.router.load_fallbacks, 0);
  EXPECT_LE(capped.load_imbalance, uncapped.load_imbalance + 1e-12);
}

}  // namespace
}  // namespace flashinfer::cluster
