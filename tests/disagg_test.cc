// Disaggregated prefill/decode serving tests: engine-side export/import
// exactness (KV charges and structural pages balance to zero across a
// migration), the NextEventTime/StepTo idle-wake contract when all pending
// work is transfer-gated, retain-fallback equivalence to the unified engine,
// and the cluster driver's pool routing, rejection fallback, and
// determinism (serial twin == threaded twin, run-to-run identical).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/cluster.h"
#include "serving/engine.h"

namespace flashinfer {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterEngine;
using cluster::ClusterMetrics;
using gpusim::CopyStream;
using serving::EngineConfig;
using serving::MigrationUnit;
using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = serving::Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = serving::FlashInferBackend();
  return cfg;
}

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

/// Steps an export-mode engine until at least one unit parks in the
/// exportable pool (or it runs out of internal events).
void StepUntilExportable(ServingEngine& e) {
  while (e.MigratableUnitCount() == 0 && std::isfinite(e.NextEventTime())) {
    e.StepTo(e.NextEventTime());
  }
}

// A vanilla (no spec, no preemption) export engine: the unit carries the
// prompt + first token, its extraction zeroes the source's KV charge, and
// the destination decodes exactly the remaining tokens.
TEST(DisaggEngine, VanillaExportExtractImportExact) {
  EngineConfig scfg = BaseConfig();
  scfg.export_at_first_token = true;
  ServingEngine src(scfg);
  src.Reset();
  Request r;
  r.id = 7;
  r.arrival_s = 0.0;
  r.input_len = 512;
  r.output_len = 32;
  src.Admit(r);
  StepUntilExportable(src);
  ASSERT_EQ(src.MigratableUnitCount(), 1);
  EXPECT_FALSE(src.Finished());  // The parked unit keeps the engine alive.

  const auto units = src.MigratableUnits();
  ASSERT_EQ(units.size(), 1u);
  const MigrationUnit& u = units[0];
  EXPECT_FALSE(u.grouped);
  ASSERT_EQ(u.branches.size(), 1u);
  EXPECT_EQ(u.branches[0].request_id, 7);
  EXPECT_EQ(u.branches[0].kv_len, 513);     // Prompt + the first token.
  EXPECT_EQ(u.branches[0].remaining, 31);   // Decode phase ships out.
  EXPECT_EQ(u.kv_tokens, 513);
  // No structural cache on a vanilla engine: page count is arithmetic.
  EXPECT_EQ(u.pages, (513 + scfg.page_size - 1) / scfg.page_size);
  EXPECT_GT(u.export_s, 0.0);

  // TTFT was paid on the prefill replica; only the first token was emitted.
  EXPECT_EQ(src.Metrics().ttft_ms.size(), 1u);
  EXPECT_EQ(src.Metrics().total_output_tokens, 1);

  const MigrationUnit m = src.ExtractMigratable(u.unit_id);
  EXPECT_EQ(src.KvTokensInUse(), 0);  // Charge released exactly.
  EXPECT_TRUE(src.Finished());
  EXPECT_EQ(src.Metrics().num_migrations_out, 1);
  EXPECT_EQ(src.Metrics().migrated_kv_tokens, 513);

  EngineConfig dcfg = BaseConfig();
  ServingEngine dst(dcfg);
  dst.Reset();
  CopyStream::Transfer xfer;
  xfer.begin_s = m.export_s;
  xfer.end_s = m.export_s + 0.002;
  ASSERT_TRUE(dst.CanAcceptMigration(m));
  dst.AdmitMigratedUnit(m, xfer);
  // Idle-wake contract: with only the in-flight import, the next event is
  // the transfer completion — never "now" (that would busy-spin StepTo).
  EXPECT_DOUBLE_EQ(dst.NextEventTime(), xfer.end_s);
  EXPECT_EQ(dst.StepTo(xfer.end_s - 1e-6), 0);
  dst.Drain();
  EXPECT_TRUE(dst.Finished());
  const ServingMetrics& dm = dst.Metrics();
  EXPECT_EQ(dm.total_output_tokens, 31);
  EXPECT_EQ(dm.ttft_ms.size(), 0u);  // No second first-token.
  EXPECT_EQ(static_cast<int64_t>(dm.itl_ms.size()), 31);
  EXPECT_EQ(dst.KvTokensInUse(), 0);
  EXPECT_EQ(dm.num_migrations_in, 1);
  EXPECT_NEAR(dm.total_migration_ms, 2.0, 1e-9);
  EXPECT_LE(dm.migration_hidden_ms, dm.total_migration_ms + 1e-9);
  EXPECT_GE(dm.migration_stall_ms, 0.0);
}

// Satellite bugfix regression: NextEventTime when every in-flight entry is
// transfer-gated. An arrived admissible head must wake the engine NOW (the
// missed-wake half); an arrived head blocked on the in-flight unit's
// reserve must NOT return now (the busy-spin half) — the wake is the
// transfer completion.
TEST(DisaggEngine, NextEventTimeTransferGatedIdleWake) {
  // Produce a real unit to import.
  EngineConfig scfg = BaseConfig();
  scfg.export_at_first_token = true;
  ServingEngine src(scfg);
  src.Reset();
  Request big;
  big.id = 0;
  big.arrival_s = 0.0;
  big.input_len = 1024;
  big.output_len = 64;
  src.Admit(big);
  StepUntilExportable(src);
  ASSERT_EQ(src.MigratableUnitCount(), 1);
  const MigrationUnit m = src.ExtractMigratable(src.MigratableUnits()[0].unit_id);

  // Destination with a budget that fits the import plus a small request but
  // not the import plus a big one.
  EngineConfig dcfg = BaseConfig();
  const int64_t budget = m.kv_charge + 300;
  dcfg.hbm_capacity_gb = HbmForBudget(dcfg, budget);
  ServingEngine dst(dcfg);
  dst.Reset();
  ASSERT_GE(dst.KvTokenBudget(), m.kv_charge);
  CopyStream::Transfer xfer;
  xfer.begin_s = 4.9;
  xfer.end_s = 5.0;  // Far-future landing: the engine idles until then.
  dst.AdmitMigratedUnit(m, xfer);
  EXPECT_DOUBLE_EQ(dst.NextEventTime(), 5.0);

  // Missed-wake half: a small arrived request fits beside the in-flight
  // reserve, so the engine must report work at its arrival, not sleep to
  // the transfer.
  Request small;
  small.id = 1;
  small.arrival_s = 0.5;
  small.input_len = 64;
  small.output_len = 4;
  dst.Admit(small);
  EXPECT_DOUBLE_EQ(dst.NextEventTime(), 0.5);
  EXPECT_GE(dst.StepTo(0.5), 1);  // Admission + prefill start immediately.

  dst.Drain();
  EXPECT_TRUE(dst.Finished());
  EXPECT_EQ(dst.KvTokensInUse(), 0);
  EXPECT_EQ(dst.Metrics().total_output_tokens, /*import*/ 63 + /*small*/ 4);

  // Busy-spin half: a big arrived head that cannot fit beside the in-flight
  // reserve must NOT wake the engine now (StepTo would spin) — the only
  // wake is the transfer completion, and stepping short of it does nothing.
  ServingEngine dst2(dcfg);
  dst2.Reset();
  dst2.AdmitMigratedUnit(m, xfer);
  Request blocked;
  blocked.id = 2;
  blocked.arrival_s = 1.0;
  blocked.input_len = 512;  // Need 520 > the 300 tokens of free headroom.
  blocked.output_len = 8;
  dst2.Admit(blocked);
  dst2.StepTo(2.0);  // Past the arrival: the head is arrived but blocked.
  EXPECT_DOUBLE_EQ(dst2.NextEventTime(), 5.0);
  EXPECT_EQ(dst2.StepTo(4.5), 0);
  dst2.Drain();
  EXPECT_TRUE(dst2.Finished());
  EXPECT_EQ(dst2.KvTokensInUse(), 0);
  EXPECT_EQ(dst2.Metrics().total_output_tokens, /*import*/ 63 + /*blocked*/ 8);
}

// Parallel-n fork mid-migration: the group ships as one unit, the shared
// prefix crosses the wire once, and structural pages on both sides balance
// to zero. Spec-KV engines measure pages through real ExportKv page lists.
TEST(DisaggEngine, GroupedUnitSharesPrefixOnceAndBalances) {
  EngineConfig scfg = BaseConfig();
  scfg.export_at_first_token = true;
  scfg.preemption.enabled = true;  // Structural spec_kv on: real page lists.
  ServingEngine src(scfg);
  src.Reset();
  Request r;
  r.id = 3;
  r.arrival_s = 0.0;
  r.input_len = 256;
  r.output_len = 8;
  r.parallel_n = 3;
  src.Admit(r);
  StepUntilExportable(src);
  ASSERT_EQ(src.MigratableUnitCount(), 1);
  const auto units = src.MigratableUnits();
  const MigrationUnit& u = units[0];
  EXPECT_TRUE(u.grouped);
  ASSERT_EQ(u.branches.size(), 3u);
  EXPECT_EQ(u.prefix_tokens, 256);
  for (const auto& b : u.branches) {
    EXPECT_EQ(b.prefix_len, 256);
    EXPECT_EQ(b.kv_len, 257);  // Prefix + own first token.
    EXPECT_EQ(b.remaining, 7);
  }
  // Unique wire tokens: prefix once + one suffix token per branch.
  EXPECT_EQ(u.kv_tokens, 256 + 3);
  // Real page union: 16 shared prefix pages + 1 forked page per branch.
  EXPECT_EQ(u.pages, 256 / scfg.page_size + 3);

  const MigrationUnit m = src.ExtractMigratable(u.unit_id);
  EXPECT_EQ(src.KvTokensInUse(), 0);
  EXPECT_EQ(src.SpecKvLivePages(), 0);  // Fork refcounts fully unwound.
  EXPECT_TRUE(src.Finished());

  EngineConfig dcfg = BaseConfig();
  dcfg.preemption.enabled = true;
  ServingEngine dst(dcfg);
  dst.Reset();
  CopyStream::Transfer xfer;
  xfer.begin_s = m.export_s;
  xfer.end_s = m.export_s + 0.001;
  dst.AdmitMigratedUnit(m, xfer);
  dst.Drain();
  EXPECT_TRUE(dst.Finished());
  EXPECT_EQ(dst.Metrics().total_output_tokens, 3 * 7);
  EXPECT_EQ(dst.KvTokensInUse(), 0);
  EXPECT_EQ(dst.SpecKvLivePages(), 0);
  EXPECT_EQ(dst.HostKvTokensInUse(), 0);
}

// Spec-decode branches migrate mid-stream: draft trees are per-step state
// (nothing in-flight parks with the unit), so a spec source exports cleanly
// and a spec destination resumes the branches through its own draft/verify
// loop with exact rollback accounting.
TEST(DisaggEngine, SpecBranchesMigrateAndDrainClean) {
  EngineConfig scfg = BaseConfig();
  scfg.export_at_first_token = true;
  scfg.spec.enabled = true;
  ServingEngine src(scfg);
  src.Reset();
  Request r;
  r.id = 11;
  r.arrival_s = 0.0;
  r.input_len = 300;
  r.output_len = 24;
  r.accept_prob = 0.8;
  src.Admit(r);
  StepUntilExportable(src);
  ASSERT_EQ(src.MigratableUnitCount(), 1);
  const MigrationUnit m = src.ExtractMigratable(src.MigratableUnits()[0].unit_id);
  EXPECT_EQ(src.KvTokensInUse(), 0);
  EXPECT_EQ(src.SpecKvLivePages(), 0);
  EXPECT_TRUE(src.Finished());

  EngineConfig dcfg = BaseConfig();
  dcfg.spec.enabled = true;
  ServingEngine dst(dcfg);
  dst.Reset();
  CopyStream::Transfer xfer;
  xfer.begin_s = m.export_s;
  xfer.end_s = m.export_s + 0.001;
  dst.AdmitMigratedUnit(m, xfer);
  dst.Drain();
  EXPECT_TRUE(dst.Finished());
  EXPECT_EQ(dst.Metrics().total_output_tokens, 23);
  EXPECT_GT(dst.Metrics().spec_steps, 0);  // Resumed through draft/verify.
  EXPECT_EQ(dst.KvTokensInUse(), 0);
  EXPECT_EQ(dst.SpecKvLivePages(), 0);
}

// Migrate-then-preempt: a migrated branch on a preemption-enabled decode
// replica is evictable like any local branch, and the evict/restore cycle
// keeps both KV tiers exact.
TEST(DisaggEngine, MigratedBranchSurvivesPreemption) {
  EngineConfig scfg = BaseConfig();
  scfg.export_at_first_token = true;
  scfg.preemption.enabled = true;
  ServingEngine src(scfg);
  src.Reset();
  Request r;
  r.id = 0;
  r.arrival_s = 0.0;
  r.input_len = 1024;
  r.output_len = 64;
  r.priority = 0;
  src.Admit(r);
  StepUntilExportable(src);
  ASSERT_EQ(src.MigratableUnitCount(), 1);
  const MigrationUnit m = src.ExtractMigratable(src.MigratableUnits()[0].unit_id);

  EngineConfig dcfg = BaseConfig();
  dcfg.preemption.enabled = true;
  // Budget fits the migrated unit, but not the unit plus the VIP request:
  // admission must preempt the (lower-priority) migrated branch.
  dcfg.hbm_capacity_gb = HbmForBudget(dcfg, m.kv_charge + 300);
  ServingEngine dst(dcfg);
  dst.Reset();
  ASSERT_TRUE(dst.CanAcceptMigration(m));
  CopyStream::Transfer xfer;
  xfer.begin_s = m.export_s;
  xfer.end_s = m.export_s + 0.001;
  dst.AdmitMigratedUnit(m, xfer);
  // Let the import land and decode a few tokens first.
  dst.StepTo(xfer.end_s + 0.05);
  EXPECT_GT(dst.Metrics().total_output_tokens, 0);

  Request vip;
  vip.id = 1;
  vip.arrival_s = xfer.end_s + 0.05;
  vip.input_len = 256;
  vip.output_len = 256;
  vip.priority = 5;
  dst.Admit(vip);
  dst.Drain();
  EXPECT_TRUE(dst.Finished());
  const ServingMetrics& dm = dst.Metrics();
  EXPECT_GT(dm.num_preemptions, 0);  // The migrated branch was evicted.
  EXPECT_EQ(dm.num_swap_restores + dm.num_recompute_restores, dm.num_preemptions);
  EXPECT_EQ(dm.total_output_tokens, 63 + 256);
  EXPECT_EQ(dst.KvTokensInUse(), 0);
  EXPECT_EQ(dst.HostKvTokensInUse(), 0);
  EXPECT_EQ(dst.SpecKvLivePages(), 0);
}

// Retain fallback ≡ unified: when every unit is retained at the step
// boundary it parked on (the cluster driver's cadence), the export-mode
// engine reproduces the vanilla engine token-for-token — parking is pure
// bookkeeping until someone actually extracts.
TEST(DisaggEngine, RetainAllMatchesUnifiedEngine) {
  Rng rng(91);
  const auto workload = serving::ShareGptWorkload(rng, 40, 25.0);

  ServingEngine vanilla(BaseConfig());
  const ServingMetrics vm = vanilla.Run(workload);

  EngineConfig ecfg = BaseConfig();
  ecfg.export_at_first_token = true;
  ServingEngine e(ecfg);
  e.Reset();
  for (const auto& r : workload) e.Admit(r);
  for (int64_t guard = 0; guard < 500000 && !e.Finished(); ++guard) {
    while (e.MigratableUnitCount() > 0) {
      e.RetainMigratable(e.MigratableUnits().front().unit_id);
    }
    const double next = e.NextEventTime();
    if (!std::isfinite(next)) break;
    e.StepTo(next);
  }
  ASSERT_TRUE(e.Finished());
  const ServingMetrics& em = e.Metrics();
  EXPECT_DOUBLE_EQ(em.makespan_s, vm.makespan_s);
  EXPECT_EQ(em.num_steps, vm.num_steps);
  EXPECT_EQ(em.total_output_tokens, vm.total_output_tokens);
  ASSERT_EQ(em.ttft_ms.size(), vm.ttft_ms.size());
  for (size_t i = 0; i < em.ttft_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(em.ttft_ms[i], vm.ttft_ms[i]) << "ttft " << i;
  }
  ASSERT_EQ(em.itl_ms.size(), vm.itl_ms.size());
  for (size_t i = 0; i < em.itl_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(em.itl_ms[i], vm.itl_ms[i]) << "itl " << i;
  }
  EXPECT_EQ(em.num_migrations_retained,
            static_cast<int64_t>(workload.size()));
  EXPECT_EQ(e.KvTokensInUse(), 0);
}

ClusterConfig DisaggConfig() {
  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 4;
  cfg.disaggregated = true;
  cfg.prefill_replicas = 2;
  cfg.policy = cluster::RouterPolicy::kLeastLoaded;
  return cfg;
}

std::vector<Request> DisaggWorkload(uint64_t seed, int n = 60) {
  Rng rng(seed);
  serving::BurstyPrefillConfig w;
  w.num_steady = n;
  w.steady_rate = 40.0;
  w.steady_output = 96;
  w.num_bursts = 3;
  w.burst_size = 3;
  w.burst_input_lo = 3000;
  w.burst_input_hi = 6000;
  w.burst_output = 48;
  return serving::BurstyLongPrefillWorkload(rng, w);
}

// End-to-end disaggregated cluster: prompts route to the prefill pool only,
// units migrate to the decode pool, conservation holds across pools, and
// both pools drain clean.
TEST(DisaggCluster, MigratesCompletesAndAccountsExactly) {
  const auto workload = DisaggWorkload(17);
  const ClusterConfig cfg = DisaggConfig();
  const ClusterMetrics m = ClusterEngine(cfg).Run(workload);

  // Pool labeling.
  ASSERT_EQ(m.replica_pool.size(), 4u);
  EXPECT_EQ(m.replica_pool[0], 0);
  EXPECT_EQ(m.replica_pool[1], 0);
  EXPECT_EQ(m.replica_pool[2], 1);
  EXPECT_EQ(m.replica_pool[3], 1);
  // Prompts only ever land on the prefill pool.
  EXPECT_EQ(m.replica_requests[2], 0);
  EXPECT_EQ(m.replica_requests[3], 0);

  EXPECT_GT(m.migrations, 0);
  // Every extraction was admitted somewhere; retained units stayed local.
  EXPECT_EQ(m.prefill_pool.num_migrations_out, m.migrations);
  EXPECT_EQ(m.decode_pool.num_migrations_in, m.migrations);
  EXPECT_EQ(m.prefill_pool.num_migrations_retained, m.migrations_retained);
  EXPECT_EQ(m.aggregate.num_migrations_out, m.aggregate.num_migrations_in);

  // Conservation: every request completed exactly once, TTFT on the prefill
  // pool, and total output tokens match the workload.
  EXPECT_EQ(m.aggregate.ttft_ms.size() +
                static_cast<size_t>(m.aggregate.rejected_requests),
            workload.size());
  EXPECT_EQ(m.prefill_pool.ttft_ms.size(), m.aggregate.ttft_ms.size());
  EXPECT_EQ(m.decode_pool.ttft_ms.size(), 0u);
  if (m.aggregate.rejected_requests == 0) {
    int64_t expected = 0;
    for (const auto& r : workload) expected += std::max<int64_t>(r.output_len, 1);
    EXPECT_EQ(m.aggregate.total_output_tokens, expected);
  }

  // Migration time decomposition on the decode side.
  EXPECT_GT(m.decode_pool.total_migration_ms, 0.0);
  EXPECT_LE(m.decode_pool.migration_hidden_ms,
            m.decode_pool.total_migration_ms + 1e-9);
  EXPECT_GE(m.decode_pool.MigrationOverlapEfficiency().value_or(0.0), 0.0);
  EXPECT_LE(m.decode_pool.MigrationOverlapEfficiency().value_or(0.0), 1.0 + 1e-9);
}

// Decode-pool rejection fallback: when no decode replica has KV headroom
// for a unit, it decodes where it prefilled instead of wedging — and the
// run still completes every request.
TEST(DisaggCluster, RetainsWhenDecodePoolFull) {
  ClusterConfig cfg = DisaggConfig();
  cfg.num_replicas = 2;
  cfg.prefill_replicas = 1;
  // Tiny per-replica KV: long-decode units overflow the single decode
  // replica, forcing retain fallbacks.
  cfg.engine.hbm_capacity_gb = HbmForBudget(cfg.engine, 6000);
  Rng rng(29);
  auto workload =
      serving::UniformWorkload(rng, 40, 60.0, 512, 2048, /*output_len=*/256);
  const ClusterMetrics m = ClusterEngine(cfg).Run(workload);

  EXPECT_GT(m.migrations_retained, 0);
  EXPECT_EQ(m.prefill_pool.num_migrations_retained, m.migrations_retained);
  EXPECT_EQ(m.aggregate.ttft_ms.size() +
                static_cast<size_t>(m.aggregate.rejected_requests),
            workload.size());
  // Retained units emit their decode tokens on the prefill replica.
  if (m.migrations_retained > 0) {
    EXPECT_GT(m.prefill_pool.itl_ms.size() + m.prefill_pool.branch_stalls.size(),
              0u);
  }
}

// Determinism: back-to-back runs are identical, and the threaded driver
// reproduces the serial one bit-for-bit (migration processing only happens
// on the driver thread between fan-out barriers).
TEST(DisaggCluster, DeterministicAndThreadedTwinIdentical) {
  const auto workload = DisaggWorkload(53);
  ClusterConfig cfg = DisaggConfig();
  cfg.engine.telemetry.enabled = true;
  ClusterEngine eng(cfg);
  const ClusterMetrics a = eng.Run(workload);
  const ClusterMetrics b = eng.Run(workload);

  ClusterConfig tcfg = cfg;
  tcfg.step_threads = 3;
  const ClusterMetrics c = ClusterEngine(tcfg).Run(workload);

  for (const ClusterMetrics* other : {&b, &c}) {
    EXPECT_DOUBLE_EQ(other->makespan_s, a.makespan_s);
    EXPECT_EQ(other->migrations, a.migrations);
    EXPECT_EQ(other->migrations_retained, a.migrations_retained);
    EXPECT_EQ(other->aggregate.num_steps, a.aggregate.num_steps);
    EXPECT_EQ(other->aggregate.total_output_tokens,
              a.aggregate.total_output_tokens);
    EXPECT_DOUBLE_EQ(other->aggregate.total_migration_ms,
                     a.aggregate.total_migration_ms);
    EXPECT_DOUBLE_EQ(other->aggregate.migration_hidden_ms,
                     a.aggregate.migration_hidden_ms);
    EXPECT_DOUBLE_EQ(other->aggregate.migration_stall_ms,
                     a.aggregate.migration_stall_ms);
    ASSERT_EQ(other->aggregate.itl_ms.size(), a.aggregate.itl_ms.size());
    for (size_t i = 0; i < a.aggregate.itl_ms.size(); ++i) {
      EXPECT_DOUBLE_EQ(other->aggregate.itl_ms[i], a.aggregate.itl_ms[i]);
    }
    EXPECT_EQ(other->replica_requests, a.replica_requests);
  }
}

// Unified mode must be untouched by the disaggregated driver: the refactored
// route/step path with disaggregated=false reproduces a pre-refactor
// invariant (single replica == plain engine) exactly.
TEST(DisaggCluster, UnifiedModeUnchangedBySplitDriver) {
  Rng rng(77);
  const auto workload = serving::ShareGptWorkload(rng, 40, 20.0);
  ServingEngine engine(BaseConfig());
  const ServingMetrics em = engine.Run(workload);

  ClusterConfig cfg;
  cfg.engine = BaseConfig();
  cfg.num_replicas = 1;
  const ClusterMetrics cm = ClusterEngine(cfg).Run(workload);
  EXPECT_DOUBLE_EQ(cm.aggregate.makespan_s, em.makespan_s);
  EXPECT_EQ(cm.aggregate.num_steps, em.num_steps);
  EXPECT_EQ(cm.aggregate.total_output_tokens, em.total_output_tokens);
  EXPECT_TRUE(cm.replica_pool.empty());  // Disagg fields stay zeroed.
  EXPECT_EQ(cm.migrations, 0);
}

}  // namespace
}  // namespace flashinfer
