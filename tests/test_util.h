// Shared fixtures: random attention problems over the paged cache, and a
// serial (scheduler-free) kernel driver used to isolate kernel math.
#pragma once

#include <memory>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/reference.h"
#include "kvcache/paged.h"
#include "kvcache/ragged.h"
#include "runtime/scheduler.h"
#include "sparse/bsr.h"
#include "util/rng.h"

namespace flashinfer::test {

struct ProblemSpec {
  std::vector<int64_t> qo_lens;
  std::vector<int64_t> kv_lens;  // kv_lens[i] >= qo_lens[i] (incremental prefill).
  int num_qo_heads = 4;
  int num_kv_heads = 2;
  int head_dim = 16;
  int page_size = 4;
  DType kv_dtype = DType::kF32;
  int tile_q = 16;
  bool head_fusion = true;
  uint64_t seed = 42;
};

struct Problem {
  ProblemSpec spec;
  std::unique_ptr<PagedKVCache> kv;
  std::vector<int> seq_ids;
  RaggedTensor q;
  RaggedTensor o;
  std::vector<float> lse;
  sparse::BsrMatrix bsr;
  std::vector<int64_t> qo_indptr;

  AttentionParams Params() {
    AttentionParams p;
    p.q = &q;
    p.o = &o;
    p.lse = &lse;
    p.kv = kv.get();
    p.bsr = &bsr;
    p.qo_indptr = qo_indptr;
    p.kv_len = spec.kv_lens;
    p.num_qo_heads = spec.num_qo_heads;
    p.num_kv_heads = spec.num_kv_heads;
    p.head_dim = spec.head_dim;
    p.head_fusion = spec.head_fusion;
    p.variant.sm_scale = 1.0f / std::sqrt(static_cast<float>(spec.head_dim));
    p.variant.num_qo_heads = spec.num_qo_heads;
    return p;
  }
};

inline Problem MakeProblem(ProblemSpec spec) {
  Problem prob;
  prob.spec = spec;
  Rng rng(spec.seed);
  const int num_reqs = static_cast<int>(spec.qo_lens.size());
  FI_CHECK_EQ(spec.qo_lens.size(), spec.kv_lens.size());

  int64_t total_pages = 8;
  for (int64_t len : spec.kv_lens) total_pages += (len + spec.page_size - 1) / spec.page_size;
  prob.kv = std::make_unique<PagedKVCache>(spec.kv_dtype, spec.num_kv_heads, spec.head_dim,
                                           spec.page_size, total_pages);

  const int hd = spec.num_kv_heads * spec.head_dim;
  std::vector<sparse::RequestKv> req_kv;
  for (int r = 0; r < num_reqs; ++r) {
    const int seq = prob.kv->CreateSequence();
    prob.seq_ids.push_back(seq);
    std::vector<float> k(static_cast<size_t>(spec.kv_lens[r]) * hd);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0.0, 1.0));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
    prob.kv->AppendTokens(seq, k.data(), v.data(), spec.kv_lens[r]);
    req_kv.push_back(prob.kv->ExportKv(seq));
  }

  prob.qo_indptr = BuildIndptr(spec.qo_lens);
  prob.q = RaggedTensor::Zeros(prob.qo_indptr,
                               static_cast<int64_t>(spec.num_qo_heads) * spec.head_dim);
  for (auto& x : prob.q.data) x = static_cast<float>(rng.Normal(0.0, 1.0));
  prob.o = RaggedTensor::Zeros(prob.qo_indptr, prob.q.inner);
  prob.lse.assign(static_cast<size_t>(prob.q.NumRows() * spec.num_qo_heads), 0.0f);

  const int g = spec.head_fusion ? spec.num_qo_heads / spec.num_kv_heads : 1;
  std::vector<int64_t> fused_lens(spec.qo_lens);
  for (auto& l : fused_lens) l *= g;
  prob.bsr =
      sparse::BuildBatchBsr(BuildIndptr(fused_lens), req_kv, spec.page_size, spec.tile_q);
  return prob;
}

/// Runs attention serially: every work unit executes in full (no KV split),
/// writing the final output directly.
inline void RunSerial(AttentionParams& p, const KernelConfig& cfg, WorkItemFn fn) {
  const auto units = EnumerateWorkUnits(p);
  PartialSink sink;
  for (const auto& u : units) {
    WorkItem item{u.block_row, u.request, u.kv_head, u.qo_head, 0, u.kv_len, -1};
    fn(p, cfg, item, sink, nullptr, nullptr);
  }
}

/// Max absolute difference between two equally-shaped float vectors.
inline float MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  FI_CHECK_EQ(a.size(), b.size());
  float m = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace flashinfer::test
