#include "runtime/batch_handle.h"

#include <chrono>

namespace flashinfer {

namespace {

uint64_t HashLens(const std::vector<int64_t>& a, const std::vector<int64_t>& b,
                  const void* bsr_identity, int64_t nnz) {
  uint64_t h = 0x9E3779B97F4A7C15ull ^ reinterpret_cast<uintptr_t>(bsr_identity);
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(nnz));
  for (int64_t v : a) mix(static_cast<uint64_t>(v));
  for (int64_t v : b) mix(static_cast<uint64_t>(v));
  return h;
}

}  // namespace

BatchAttentionHandle::BatchAttentionHandle(gpusim::DeviceSpec dev, TaskInfo info,
                                           Workspace* workspace)
    : sim_(std::move(dev)), info_(info), workspace_(workspace) {
  FI_CHECK(workspace_ != nullptr);
  FI_CHECK_EQ(info_.num_qo_heads % info_.num_kv_heads, 0);
  const double fused_hint =
      info_.head_fusion ? info_.avg_qlen_hint * (info_.num_qo_heads / info_.num_kv_heads)
                        : info_.avg_qlen_hint;
  cfg_ = SelectKernelConfig(sim_.device(), fused_hint, info_.head_dim,
                            DTypeBytes(info_.kv_dtype), info_.sparse);
  cfg_.head_fusion = info_.head_fusion;
  kernel_ = GetBuiltinKernel(info_.variant, info_.kv_dtype);
  use_softmax_ = info_.variant != VariantKind::kSigmoid;
  variant_params_.num_qo_heads = info_.num_qo_heads;

  // Persistent grid: one CTA per SM (Appendix D.3: k is 1 on Hopper and at
  // most 2 on Ampere; k=1 also maximizes the chunk size Lkv, which keeps the
  // LPT assignment balanced when work units are many).
  num_ctas_ = sim_.device().num_sms;
  workspace_->Bind(info_.head_dim);
}

void BatchAttentionHandle::SetKernel(WorkItemFn fn, bool use_softmax) {
  FI_CHECK(fn != nullptr);
  kernel_ = fn;
  use_softmax_ = use_softmax;
}

void BatchAttentionHandle::Plan(const sparse::BsrMatrix* bsr, std::vector<int64_t> qo_indptr,
                                std::vector<int64_t> kv_len) {
  FI_CHECK(bsr != nullptr);
  FI_CHECK_EQ(bsr->br, cfg_.tile_q);
  const uint64_t sig = HashLens(qo_indptr, kv_len, bsr, bsr->Nnz());
  if (plan_.has_value() && sig == plan_signature_ && bsr == bsr_) {
    ++plan_cache_hits_;
    return;
  }
  bsr_ = bsr;
  qo_indptr_ = std::move(qo_indptr);
  kv_len_ = std::move(kv_len);
  plan_signature_ = sig;

  AttentionParams p;
  p.bsr = bsr_;
  p.qo_indptr = qo_indptr_;
  p.kv_len = kv_len_;
  p.num_qo_heads = info_.num_qo_heads;
  p.num_kv_heads = info_.num_kv_heads;
  p.head_dim = info_.head_dim;
  p.head_fusion = info_.head_fusion;
  p.variant = variant_params_;  // Causal flag trims dead KV during planning.

  const auto t0 = std::chrono::steady_clock::now();
  switch (info_.scheduler) {
    case SchedulerKind::kBalanced:
      plan_ = MakeBalancedPlan(p, cfg_, num_ctas_, workspace_->MaxPartialRows());
      break;
    case SchedulerKind::kNaive:
      plan_ = MakeNaivePlan(p, cfg_);
      break;
    case SchedulerKind::kFixedSplit:
      plan_ = MakeFixedSplitPlan(p, cfg_, num_ctas_, info_.fixed_splits,
                                 workspace_->MaxPartialRows());
      break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  last_plan_cpu_us_ =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() / 1e3;
  auto_l2_fraction_ = IntraBatchKvReuseFraction(p);
}

gpusim::SimReport BatchAttentionHandle::Run(const RaggedTensor& q, const PagedKVCache& kv,
                                            RaggedTensor* o, std::vector<float>* lse) {
  FI_CHECK(plan_.has_value());
  FI_CHECK(o != nullptr);
  AttentionParams p;
  p.q = &q;
  p.o = o;
  p.lse = lse;
  p.kv = &kv;
  p.bsr = bsr_;
  p.qo_indptr = qo_indptr_;
  p.kv_len = kv_len_;
  p.num_qo_heads = info_.num_qo_heads;
  p.num_kv_heads = info_.num_kv_heads;
  p.head_dim = info_.head_dim;
  p.head_fusion = info_.head_fusion;
  p.variant = variant_params_;

  CostContext cc;
  cc.dev = &sim_.device();
  cc.kv_bytes = DTypeBytes(info_.kv_dtype);
  cc.eff = EfficiencyModel(sim_.device(), cfg_, info_.head_dim, cc.kv_bytes);
  // Compose cross-request reuse (bench knob) with intra-batch tile reuse.
  cc.kv_l2_fraction = 1.0 - (1.0 - kv_l2_fraction_) * (1.0 - auto_l2_fraction_);

  PartialSink sink{workspace_->PartialO(), workspace_->PartialLse()};
  const auto& plan = *plan_;
  const auto occ = OccupancyModel(sim_.device(), cfg_, info_.head_dim, cc.kv_bytes);
  const auto shape = ResidencyModel(sim_.device(), occ, plan.NumCtas());
  cc.slots = shape.slots;
  cc.eff.mem *= shape.mem_scale;

  gpusim::SimReport report = sim_.Launch(
      plan.NumCtas(), gpusim::Occupancy{shape.resident}, [&](int cta, gpusim::CtaCost& cost) {
        for (const auto& item : plan.cta_queues[static_cast<size_t>(cta)]) {
          kernel_(p, cfg_, item, sink, &cost, &cc);
        }
      });

  if (!plan.rmap.Empty()) {
    report.Append(RunContraction(p, plan.rmap, sink, use_softmax_, &sim_, &cc));
  }
  return report;
}

void BatchAttentionHandle::CaptureRun(gpusim::CudaGraph& graph, const std::string& slot,
                                      const RaggedTensor& q, const PagedKVCache& kv,
                                      RaggedTensor* o, std::vector<float>* lse) {
  graph.AddLaunch(slot,
                  {static_cast<const void*>(q.data.data()), static_cast<const void*>(o),
                   static_cast<const void*>(&kv), workspace_->Base()},
                  [this, &q, &kv, o, lse] { return Run(q, kv, o, lse); });
}

}  // namespace flashinfer
