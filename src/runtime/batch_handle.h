// BatchAttentionHandle — the engine's user-facing wrapper, mirroring the
// paper's PyTorch AttentionWrapper (Listing 1) and its Inspector-Executor
// split:
//
//   handle.Plan(bsr, qo_indptr, kv_len);   // CPU: scheduler -> plan cache
//   handle.Run(q, kv, &o);                 // GPU: persistent attention +
//                                          //      contraction kernels
//
// Kernels are resolved at construction ("init time JIT") from the built-in
// registry or injected from the JIT compiler; plans are cached by sequence-
// length signature so all layers of one generation step reuse one plan; Run
// is CUDA-graph-capturable because every launch reads its mutable state from
// fixed workspace addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/tile_heuristics.h"
#include "gpusim/executor.h"
#include "gpusim/graph.h"
#include "runtime/scheduler.h"
#include "runtime/workspace.h"

namespace flashinfer {

/// Scheduling policy (ablation knob for Tables 6-7).
enum class SchedulerKind : uint8_t {
  kBalanced,    // Algorithm 1.
  kNaive,       // One CTA per work unit, no splitting.
  kFixedSplit,  // FlashDecoding-style constant split count.
};

class BatchAttentionHandle {
 public:
  /// Compile-time task information (Fig. 1 "task information" input).
  struct TaskInfo {
    VariantKind variant = VariantKind::kVanilla;
    DType kv_dtype = DType::kF16;
    int num_qo_heads = 32;
    int num_kv_heads = 32;
    int head_dim = 128;
    bool head_fusion = true;
    bool sparse = true;
    /// Average fused query rows per tile, used for tile-size selection at
    /// init time (decode: group size; prefill: typical chunk length x group).
    double avg_qlen_hint = 1.0;
    SchedulerKind scheduler = SchedulerKind::kBalanced;
    int fixed_splits = 4;
  };

  BatchAttentionHandle(gpusim::DeviceSpec dev, TaskInfo info, Workspace* workspace);

  /// Injects a JIT-compiled kernel (overrides the built-in for `variant`).
  void SetKernel(WorkItemFn fn, bool use_softmax);

  /// Variant runtime parameters (scale, soft cap, window, ...).
  VariantParams& MutableVariantParams() noexcept { return variant_params_; }

  const KernelConfig& config() const noexcept { return cfg_; }
  const gpusim::DeviceSpec& device() const noexcept { return sim_.device(); }
  int NumCtas() const noexcept { return num_ctas_; }

  /// Cross-CTA L2 reuse fraction for KV traffic (bench knob; see
  /// CostContext::kv_l2_fraction).
  void SetKvL2Fraction(double f) noexcept { kv_l2_fraction_ = f; }

  /// Inspector: runs the scheduler on this step's sequence-length
  /// information. Cached: planning with an identical signature is a no-op.
  /// The BSR must stay alive until the next Plan.
  void Plan(const sparse::BsrMatrix* bsr, std::vector<int64_t> qo_indptr,
            std::vector<int64_t> kv_len);

  /// Executor: runs the persistent attention kernel over the cached plan,
  /// then the contraction kernel. Returns the combined simulated report.
  gpusim::SimReport Run(const RaggedTensor& q, const PagedKVCache& kv, RaggedTensor* o,
                        std::vector<float>* lse = nullptr);

  /// Captures a Run call into `graph` under `slot`, freezing the argument
  /// pointers (q/kv/o/workspace). Subsequent Plan() calls only rewrite
  /// workspace contents, so Replay stays valid.
  void CaptureRun(gpusim::CudaGraph& graph, const std::string& slot, const RaggedTensor& q,
                  const PagedKVCache& kv, RaggedTensor* o, std::vector<float>* lse = nullptr);

  const ::flashinfer::Plan& plan() const {
    FI_CHECK(plan_.has_value());
    return *plan_;
  }
  int64_t plan_cache_hits() const noexcept { return plan_cache_hits_; }
  /// Planning (inspector) CPU time of the last non-cached Plan call, us.
  double last_plan_cpu_us() const noexcept { return last_plan_cpu_us_; }

 private:
  gpusim::SimExecutor sim_;
  TaskInfo info_;
  Workspace* workspace_;
  KernelConfig cfg_;
  WorkItemFn kernel_;
  bool use_softmax_ = true;
  VariantParams variant_params_;
  int num_ctas_ = 1;
  double kv_l2_fraction_ = 0.0;
  double auto_l2_fraction_ = 0.0;  // Intra-batch tile reuse, set by Plan().

  std::optional<::flashinfer::Plan> plan_;
  const sparse::BsrMatrix* bsr_ = nullptr;
  std::vector<int64_t> qo_indptr_;
  std::vector<int64_t> kv_len_;
  uint64_t plan_signature_ = 0;
  int64_t plan_cache_hits_ = 0;
  double last_plan_cpu_us_ = 0.0;
};

}  // namespace flashinfer
