#include "runtime/workspace.h"

#include "util/check.h"

namespace flashinfer {

namespace {
// Fixed fraction of the buffer reserved for plan metadata; kept constant so
// section offsets never move (Appendix D.1).
constexpr int64_t kPlanBytes = 1 << 20;
}  // namespace

int64_t Workspace::EstimateBytes(int num_ctas, int tile_rows, int head_dim) {
  // 2 x #CTA partial tiles, each tile_rows rows of (D + 1) fp32 values.
  const int64_t partial_rows = 2LL * num_ctas * tile_rows;
  return kPlanBytes + partial_rows * (head_dim + 1) * 4;
}

Workspace::Workspace(int64_t bytes) {
  FI_CHECK_GT(bytes, kPlanBytes);
  buffer_.resize(static_cast<size_t>(bytes));
}

void Workspace::Bind(int head_dim) {
  FI_CHECK_GE(head_dim, 1);
  plan_bytes_ = kPlanBytes;
  const int64_t payload = Bytes() - plan_bytes_;
  const int64_t row_bytes = static_cast<int64_t>(head_dim + 1) * 4;
  max_partial_rows_ = payload / row_bytes;
  FI_CHECK_GT(max_partial_rows_, 0);
  auto* base = buffer_.data() + plan_bytes_;
  partial_o_ = reinterpret_cast<float*>(base);
  partial_lse_ = partial_o_ + max_partial_rows_ * head_dim;
}

}  // namespace flashinfer
