// User-allocated workspace buffer (Sec. 3.4, Appendix D).
//
// One contiguous allocation split into fixed-offset sections: plan metadata
// (the scheduler's work queues and reduction map, copied in per generation
// step) and split-KV partial outputs (fp32 O rows + LSE). Offsets never move
// after construction, so kernels captured into a CUDA graph keep seeing the
// same pointers across plan() updates (Appendix D.1); capacity follows the
// Appendix D.3 upper bound 2 x #CTA x Tq x Hqo x (D+1).
#pragma once

#include <cstdint>
#include <vector>

namespace flashinfer {

class Workspace {
 public:
  /// Appendix D.3 size estimate, bytes. `tile_rows` is the fused query tile
  /// size (already including the head-group factor); with head fusion the
  /// head multiplicity lives in the work units, so the bound multiplies CTAs
  /// rather than Hqo separately.
  static int64_t EstimateBytes(int num_ctas, int tile_rows, int head_dim);

  explicit Workspace(int64_t bytes);

  /// Partial O section: [MaxPartialRows(), head_dim] fp32 (head_dim fixed at
  /// Bind time).
  float* PartialO() noexcept { return partial_o_; }
  float* PartialLse() noexcept { return partial_lse_; }
  int64_t MaxPartialRows() const noexcept { return max_partial_rows_; }

  /// Plan-metadata section ("async-copied" scheduler output).
  void* PlanRegion() noexcept { return buffer_.data(); }
  int64_t PlanRegionBytes() const noexcept { return plan_bytes_; }

  /// Lays out sections for a given head_dim. Must be called before use;
  /// re-binding with a different head_dim is allowed (offsets stay fixed,
  /// row capacity changes).
  void Bind(int head_dim);

  /// Stable base address (CUDA-graph pointer validation).
  const void* Base() const noexcept { return buffer_.data(); }
  int64_t Bytes() const noexcept { return static_cast<int64_t>(buffer_.size()); }

 private:
  std::vector<std::byte> buffer_;
  int64_t plan_bytes_ = 0;
  float* partial_o_ = nullptr;
  float* partial_lse_ = nullptr;
  int64_t max_partial_rows_ = 0;
};

}  // namespace flashinfer
