// Load-balanced scheduling (Sec. 3.3.1, Algorithm 1).
//
// The scheduler consumes sequence-length information (per query-tile KV
// lengths, already tiled at Tq through the BSR) and produces the plan: the
// work queue of every CTA plus the reduction map between partial and final
// outputs. Long KV rows are split into chunks of at most Lkv tokens
// (Lkv = ceil(total work / #CTA)); chunks are assigned
// longest-processing-time-first onto a min-heap of CTAs. Inspired by
// Stream-K but with deterministic aggregation order instead of atomics:
// identical sequence lengths always produce identical plans and identical
// outputs.
//
// Two baselines used by the evaluation ablations:
//   MakeNaivePlan      — one CTA per (tile, head), no splitting (the
//                        FlashAttention batch kernel's strategy).
//   MakeFixedSplitPlan — FlashDecoding-style fixed split count per tile.
#pragma once

#include <cstdint>
#include <vector>

#include "core/contraction.h"
#include "core/params.h"

namespace flashinfer {

/// A complete execution plan for one attention launch.
struct Plan {
  /// Per-CTA work queues (persistent kernel: grid size == queues.size()).
  std::vector<std::vector<WorkItem>> cta_queues;
  /// Partial->final output mapping for the contraction kernel.
  ReductionMap rmap;
  /// Partial rows required in the workspace.
  int64_t num_partial_rows = 0;
  /// The KV chunk cap used (diagnostic; Algorithm 1 line 3).
  int64_t lkv_chunk = 0;
  /// Scheduling-cost hyperparameters actually applied.
  double alpha = 1.0;
  double beta = 1.0;

  int NumCtas() const noexcept { return static_cast<int>(cta_queues.size()); }
  int64_t NumWorkItems() const noexcept {
    int64_t n = 0;
    for (const auto& q : cta_queues) n += static_cast<int64_t>(q.size());
    return n;
  }
  /// Scheduled cost of the most/least loaded CTA (for balance assertions).
  double MaxCtaCost(int tile_q) const noexcept;
  double MinCtaCost(int tile_q) const noexcept;
};

/// Algorithm 1. `num_ctas` is the persistent grid size (k x #SM). Head
/// multiplicity comes from the params (kv heads when fused, qo heads
/// otherwise). `max_partial_rows` bounds workspace usage (checked).
Plan MakeBalancedPlan(const AttentionParams& p, const KernelConfig& cfg, int num_ctas,
                      int64_t max_partial_rows, double alpha = 1.0, double beta = 1.0);

/// Baseline: no KV splitting; CTA i runs work unit i (grid = #units).
Plan MakeNaivePlan(const AttentionParams& p, const KernelConfig& cfg);

/// Baseline: every work unit's KV is split into exactly `num_splits` chunks
/// (when long enough), round-robin over `num_ctas` CTAs.
Plan MakeFixedSplitPlan(const AttentionParams& p, const KernelConfig& cfg, int num_ctas,
                        int num_splits, int64_t max_partial_rows);

/// Work units before chunking: every (block_row, head) pair. Exposed for
/// tests and for the serving cost model.
struct WorkUnit {
  int32_t block_row;
  int32_t request;
  int32_t kv_head;
  int32_t qo_head;  // -1 under head fusion.
  int64_t kv_len;   // Row KV length.
  int rows;         // Fused rows in the tile.
};
std::vector<WorkUnit> EnumerateWorkUnits(const AttentionParams& p);

/// Fraction of the launch's KV reads served by L2 rather than HBM due to
/// intra-batch reuse: every query tile of a request re-reads the request's
/// KV, but only the first read per (request, head) misses to HBM. Decode
/// (one tile per request) returns 0; long prefill approaches
/// 1 - 1/num_tiles. Fed into CostContext::kv_l2_fraction.
double IntraBatchKvReuseFraction(const AttentionParams& p);

}  // namespace flashinfer
