#include "runtime/scheduler.h"

#include <algorithm>
#include <map>
#include <queue>

#include "util/check.h"

namespace flashinfer {

namespace {

/// One KV chunk awaiting CTA assignment (Algorithm 1's work index w).
struct Chunk {
  WorkItem item;
  int rows;
  int64_t kv_tokens;
};

double ChunkCost(const Chunk& c, double alpha, double beta) noexcept {
  return alpha * static_cast<double>(c.rows) + beta * static_cast<double>(c.kv_tokens);
}

/// Builds the reduction map rows for one split work unit, mirroring the
/// kernel's fused-row mapping (Appendix A).
void AppendMergeTasks(const AttentionParams& p, const WorkUnit& unit,
                      const std::vector<int32_t>& chunk_bases, ReductionMap* rmap) {
  const auto& bsr = *p.bsr;
  const int g = p.head_fusion ? p.GroupSize() : 1;
  const int64_t row0 = bsr.row_start[static_cast<size_t>(unit.block_row)];
  const int64_t fused_begin = p.FusedBegin(unit.request);
  for (int i = 0; i < unit.rows; ++i) {
    const int64_t local = row0 + i - fused_begin;
    const int64_t token_local = p.head_fusion ? local / g : local;
    const int qo_head = p.head_fusion
                            ? unit.kv_head * g + static_cast<int>(local % g)
                            : unit.qo_head;
    ReductionMap::Task task;
    task.token_row = p.qo_indptr[static_cast<size_t>(unit.request)] + token_local;
    task.qo_head = qo_head;
    task.begin = static_cast<int32_t>(rmap->slots.size());
    task.count = static_cast<int32_t>(chunk_bases.size());
    for (int32_t base : chunk_bases) rmap->slots.push_back(base + i);
    rmap->tasks.push_back(task);
  }
}

}  // namespace

double Plan::MaxCtaCost(int tile_q) const noexcept {
  double worst = 0.0;
  for (const auto& queue : cta_queues) {
    double c = 0.0;
    for (const auto& it : queue) {
      c += alpha * tile_q + beta * static_cast<double>(it.kv_end - it.kv_begin);
    }
    worst = std::max(worst, c);
  }
  return worst;
}

double Plan::MinCtaCost(int tile_q) const noexcept {
  if (cta_queues.empty()) return 0.0;
  double best = -1.0;
  for (const auto& queue : cta_queues) {
    double c = 0.0;
    for (const auto& it : queue) {
      c += alpha * tile_q + beta * static_cast<double>(it.kv_end - it.kv_begin);
    }
    if (best < 0.0 || c < best) best = c;
  }
  return best;
}

std::vector<WorkUnit> EnumerateWorkUnits(const AttentionParams& p) {
  const auto& bsr = *p.bsr;
  std::vector<WorkUnit> units;
  const int num_heads = p.head_fusion ? p.num_kv_heads : p.num_qo_heads;
  const int g = p.head_fusion ? p.GroupSize() : 1;
  int request = 0;
  const int num_reqs = static_cast<int>(p.qo_indptr.size()) - 1;
  for (int64_t br = 0; br < bsr.NumBlockRows(); ++br) {
    const int64_t row0 = bsr.row_start[static_cast<size_t>(br)];
    // Advance to the owning request (block rows are laid out per request).
    while (request + 1 < num_reqs && p.FusedBegin(request + 1) <= row0) ++request;
    int64_t kv_len_row = bsr.RowKvLen(br);
    const int rows = bsr.RowsInBlock(br);
    if (p.variant.causal) {
      // Causal trimming: the tile's last query row attends at most
      // kv_len - qo_len + token_local + 1 tokens, so later KV is dead work
      // the kernel skips (fully-masked tiles are never scheduled).
      const int64_t last_local = bsr.row_start[static_cast<size_t>(br) + 1] - 1 -
                                 p.FusedBegin(request);
      const int64_t last_token = p.head_fusion ? last_local / g : last_local;
      const int64_t q_pos_hi = p.kv_len[static_cast<size_t>(request)] - p.QoLen(request) +
                               last_token + 1;
      kv_len_row = std::min(kv_len_row, std::max<int64_t>(q_pos_hi, 0));
    }
    for (int h = 0; h < num_heads; ++h) {
      WorkUnit u;
      u.block_row = static_cast<int32_t>(br);
      u.request = request;
      u.kv_head = p.head_fusion ? h : h / p.GroupSize();
      u.qo_head = p.head_fusion ? -1 : h;
      u.kv_len = kv_len_row;
      u.rows = rows;
      units.push_back(u);
    }
  }
  return units;
}

double IntraBatchKvReuseFraction(const AttentionParams& p) {
  const auto units = EnumerateWorkUnits(p);
  // The underlying KV data is per (request, kv head): only its first read
  // misses to HBM. Re-reads come from (a) multiple query tiles of one
  // request (prefill) and (b) multiple qo heads sharing a kv head when
  // head-group fusion is off (unfused GQA) — both hit L2. Unique bytes per
  // (request, kv head) equal the largest tile read (the last causal tile
  // touches the whole visible KV).
  std::map<std::pair<int32_t, int32_t>, int64_t> unique;
  double total = 0.0;
  for (const auto& u : units) {
    auto& mx = unique[{u.request, u.kv_head}];
    mx = std::max(mx, u.kv_len);
    total += static_cast<double>(u.kv_len);
  }
  if (total <= 0.0) return 0.0;
  double unique_total = 0.0;
  for (const auto& [key, mx] : unique) unique_total += static_cast<double>(mx);
  return std::max(0.0, 1.0 - unique_total / total);
}

Plan MakeBalancedPlan(const AttentionParams& p, const KernelConfig& cfg, int num_ctas,
                      int64_t max_partial_rows, double alpha, double beta) {
  FI_CHECK_GE(num_ctas, 1);
  Plan plan;
  plan.alpha = alpha;
  plan.beta = beta;
  plan.cta_queues.resize(static_cast<size_t>(num_ctas));

  const auto units = EnumerateWorkUnits(p);

  // Line 3: maximum KV chunk size, rounded up to the KV tile.
  int64_t total_kv = 0;
  for (const auto& u : units) total_kv += u.kv_len;
  int64_t lkv = (total_kv + num_ctas - 1) / num_ctas;
  const int64_t tile_kv = std::max(1, cfg.tile_kv);
  lkv = std::max<int64_t>(((lkv + tile_kv - 1) / tile_kv) * tile_kv, tile_kv);
  plan.lkv_chunk = lkv;

  // Line 4: split each work unit's KV into chunks of at most lkv tokens;
  // single-chunk units write through (Appendix D.2).
  std::vector<Chunk> chunks;
  int32_t next_partial_row = 0;
  for (const auto& u : units) {
    const int64_t n_chunks = u.kv_len <= lkv ? 1 : (u.kv_len + lkv - 1) / lkv;
    if (n_chunks == 1) {
      Chunk c;
      c.item = WorkItem{u.block_row, u.request, u.kv_head, u.qo_head, 0, u.kv_len, -1};
      c.rows = u.rows;
      c.kv_tokens = u.kv_len;
      chunks.push_back(c);
      continue;
    }
    std::vector<int32_t> bases;
    for (int64_t k = 0; k < n_chunks; ++k) {
      const int64_t lo = k * lkv;
      const int64_t hi = std::min<int64_t>(u.kv_len, lo + lkv);
      Chunk c;
      c.item = WorkItem{u.block_row, u.request,    u.kv_head,
                        u.qo_head,   lo,           hi,
                        next_partial_row};
      c.rows = u.rows;
      c.kv_tokens = hi - lo;
      chunks.push_back(c);
      bases.push_back(next_partial_row);
      next_partial_row += u.rows;
    }
    AppendMergeTasks(p, u, bases, &plan.rmap);
  }
  plan.num_partial_rows = next_partial_row;
  FI_CHECK_LE(plan.num_partial_rows, max_partial_rows);

  // Line 5: sort in descending cost order (deterministic tie-breaking).
  std::sort(chunks.begin(), chunks.end(), [&](const Chunk& a, const Chunk& b) {
    const double ca = ChunkCost(a, alpha, beta);
    const double cb = ChunkCost(b, alpha, beta);
    if (ca != cb) return ca > cb;
    if (a.item.block_row != b.item.block_row) return a.item.block_row < b.item.block_row;
    if (a.item.kv_head != b.item.kv_head) return a.item.kv_head < b.item.kv_head;
    if (a.item.qo_head != b.item.qo_head) return a.item.qo_head < b.item.qo_head;
    return a.item.kv_begin < b.item.kv_begin;
  });

  // Lines 6-13: longest-processing-time-first onto a min-heap of CTAs.
  using HeapEntry = std::pair<double, int>;  // (accumulated cost, cta index)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (int c = 0; c < num_ctas; ++c) heap.emplace(0.0, c);
  for (const auto& chunk : chunks) {
    auto [cost, cta] = heap.top();
    heap.pop();
    plan.cta_queues[static_cast<size_t>(cta)].push_back(chunk.item);
    heap.emplace(cost + ChunkCost(chunk, alpha, beta), cta);
  }
  return plan;
}

Plan MakeNaivePlan(const AttentionParams& p, const KernelConfig& cfg) {
  Plan plan;
  const auto units = EnumerateWorkUnits(p);
  plan.cta_queues.reserve(units.size());
  for (const auto& u : units) {
    plan.cta_queues.push_back(
        {WorkItem{u.block_row, u.request, u.kv_head, u.qo_head, 0, u.kv_len, -1}});
  }
  plan.lkv_chunk = 0;
  return plan;
}

Plan MakeFixedSplitPlan(const AttentionParams& p, const KernelConfig& cfg, int num_ctas,
                        int num_splits, int64_t max_partial_rows) {
  FI_CHECK_GE(num_ctas, 1);
  FI_CHECK_GE(num_splits, 1);
  Plan plan;
  plan.cta_queues.resize(static_cast<size_t>(num_ctas));
  const auto units = EnumerateWorkUnits(p);
  const int64_t tile_kv = std::max(1, cfg.tile_kv);

  int32_t next_partial_row = 0;
  int cta = 0;
  for (const auto& u : units) {
    // Split into up to num_splits tile-aligned chunks.
    int64_t chunk_len = (u.kv_len + num_splits - 1) / num_splits;
    chunk_len = std::max<int64_t>(((chunk_len + tile_kv - 1) / tile_kv) * tile_kv, tile_kv);
    const int64_t n_chunks = u.kv_len <= chunk_len ? 1 : (u.kv_len + chunk_len - 1) / chunk_len;
    if (n_chunks == 1) {
      plan.cta_queues[static_cast<size_t>(cta)].push_back(
          WorkItem{u.block_row, u.request, u.kv_head, u.qo_head, 0, u.kv_len, -1});
      cta = (cta + 1) % num_ctas;
      continue;
    }
    std::vector<int32_t> bases;
    for (int64_t k = 0; k < n_chunks; ++k) {
      const int64_t lo = k * chunk_len;
      const int64_t hi = std::min<int64_t>(u.kv_len, lo + chunk_len);
      plan.cta_queues[static_cast<size_t>(cta)].push_back(WorkItem{
          u.block_row, u.request, u.kv_head, u.qo_head, lo, hi, next_partial_row});
      bases.push_back(next_partial_row);
      next_partial_row += u.rows;
      cta = (cta + 1) % num_ctas;
    }
    AppendMergeTasks(p, u, bases, &plan.rmap);
  }
  plan.num_partial_rows = next_partial_row;
  FI_CHECK_LE(plan.num_partial_rows, max_partial_rows);
  return plan;
}

}  // namespace flashinfer
