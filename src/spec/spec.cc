#include "spec/spec.h"

namespace flashinfer::spec {

SpecDecodeConfig::SpecDecodeConfig() : draft_model(DraftLlama68M()) {}

serving::ModelSpec DraftLlama68M() {
  serving::ModelSpec m;
  m.name = "Llama 68M (draft)";
  m.num_layers = 2;
  m.num_qo_heads = 12;
  m.num_kv_heads = 12;
  m.head_dim = 64;
  m.d_model = 768;
  m.ffn_dim = 3072;
  m.vocab = 32000;
  m.tensor_parallel = 1;
  return m;
}

}  // namespace flashinfer::spec
