#include "spec/verify.h"

#include <algorithm>

#include "core/tile_heuristics.h"
#include "util/check.h"

namespace flashinfer::spec {

VerifyPricer::VerifyPricer(const gpusim::DeviceSpec& dev,
                           const serving::BackendConfig& backend,
                           const serving::AttnSimInput& geometry, const DraftTree& tree)
    : dev_(dev), backend_(backend), geometry_(geometry), tree_size_(tree.Size()) {
  const int g =
      backend.head_fusion ? geometry.num_qo_heads / geometry.num_kv_heads : 1;
  // One request's mask is lowered once; Price() replicates it
  // block-diagonally (the batch shares a single tree shape, only physical
  // tail slots differ).
  const KernelConfig tail_cfg = SelectKernelConfig(
      dev, /*avg_fused_qlen=*/static_cast<double>(tree_size_) * g, geometry.head_dim,
      DTypeBytes(backend.kv_dtype), /*sparse=*/true);
  unit_bsr_ = TreeMaskBsr(tree, tail_cfg.tile_q, g);
}

gpusim::SimReport VerifyPricer::Price(const std::vector<int64_t>& context_lens) const {
  FI_CHECK(!context_lens.empty());
  const int batch = static_cast<int>(context_lens.size());
  const int n = tree_size_;
  const int g =
      backend_.head_fusion ? geometry_.num_qo_heads / geometry_.num_kv_heads : 1;

  // --- Level 0: tree tokens vs committed context (paged, dense blocks). ----
  serving::AttnSimInput l0 = geometry_;
  l0.qo_lens.assign(static_cast<size_t>(batch), n);
  l0.kv_lens = context_lens;
  l0.groups.clear();
  l0.causal = false;  // Every tree token sees the whole context.
  auto report = SimulateBatchAttention(dev_, backend_, l0);

  // --- Level 1: ancestor mask over the speculative tail (vector sparse). --
  const auto tail_bsr = sparse::TileBsrDiagonal(unit_bsr_, batch);
  const std::vector<int64_t> tail_qo(static_cast<size_t>(batch), n);
  const std::vector<int64_t> tail_kv(static_cast<size_t>(batch), n);
  report.Append(
      SimulateMaskedAttention(dev_, backend_, geometry_, tail_bsr, tail_qo, tail_kv));

  // --- Contraction: merge level-0 and level-1 partial states per fused row
  // (same bandwidth-bound merge the composable shared-prefix path charges).
  {
    const double fused_rows =
        static_cast<double>(batch) * n * g * geometry_.num_kv_heads;
    gpusim::WorkCost wc;
    wc.hbm_bytes = fused_rows * (geometry_.head_dim + 1) * 4.0 * 2.0 +
                   fused_rows * geometry_.head_dim * 2.0;
    wc.cuda_flops = fused_rows * (2.0 * geometry_.head_dim + 8.0);
    gpusim::KernelEfficiency eff;  // Bandwidth-bound merge kernel.
    report.time_us += wc.hbm_bytes / (dev_.hbm_gbps * eff.mem * 1e3);
    report.total_hbm_bytes += wc.hbm_bytes;
    report.total_cuda_flops += wc.cuda_flops;
  }
  return report;
}

gpusim::SimReport PriceVerifyAttention(const gpusim::DeviceSpec& dev,
                                       const serving::BackendConfig& backend,
                                       const serving::AttnSimInput& in,
                                       const std::vector<int64_t>& context_lens,
                                       const DraftTree& tree) {
  return VerifyPricer(dev, backend, in, tree).Price(context_lens);
}

}  // namespace flashinfer::spec
