#include "spec/tree.h"

#include <cmath>

#include "util/check.h"

namespace flashinfer::spec {

namespace {

/// Hard cap on tree tokens: verification batches every tree token per
/// request, so an exponential b^depth blowup would swamp the verify step
/// (and no practical speculator drafts hundreds of candidates).
constexpr int kMaxTreeTokens = 256;

}  // namespace

DraftTree::DraftTree(const TreeConfig& cfg) : cfg_(cfg) {
  FI_CHECK_GE(cfg.depth, 1);
  FI_CHECK_GE(cfg.branching, 1);
  // Level order: level 1's nodes extend the context (parent -1); each node
  // at level l spawns `branching` children at level l+1.
  int prev_begin = -1;  // First node of the previous level.
  int prev_width = 1;
  for (int level = 1; level <= cfg.depth; ++level) {
    const int width = prev_width * cfg.branching;
    FI_CHECK_LE(static_cast<int>(parent_.size()) + width, kMaxTreeTokens);
    const int begin = static_cast<int>(parent_.size());
    for (int i = 0; i < width; ++i) {
      parent_.push_back(level == 1 ? -1 : prev_begin + i / cfg.branching);
      level_.push_back(level);
    }
    prev_begin = begin;
    prev_width = width;
  }
}

int DraftTree::LevelWidth(int level) const {
  FI_CHECK_GE(level, 1);
  FI_CHECK_LE(level, cfg_.depth);
  int w = 1;
  for (int l = 0; l < level; ++l) w *= cfg_.branching;
  return w;
}

std::vector<std::vector<bool>> DraftTree::AncestorMask() const {
  const int n = Size();
  std::vector<std::vector<bool>> mask(static_cast<size_t>(n),
                                      std::vector<bool>(static_cast<size_t>(n), false));
  for (int i = 0; i < n; ++i) {
    for (int a = i; a >= 0; a = Parent(a)) mask[static_cast<size_t>(i)][static_cast<size_t>(a)] = true;
  }
  return mask;
}

sparse::BsrMatrix TreeMaskBsr(const DraftTree& tree, int tile_q, int group) {
  const auto fused = sparse::ExpandMaskRows(tree.AncestorMask(), group);
  return sparse::BsrFromDenseMask(fused, tile_q, /*bc=*/1);
}

int SampleAcceptedLen(Rng& rng, const DraftTree& tree, double accept_prob) {
  const double p = std::min(std::max(accept_prob, 0.0), 1.0);
  int accepted = 0;
  for (int level = 1; level <= tree.Depth(); ++level) {
    bool any = false;
    for (int c = 0; c < tree.Branching() && !any; ++c) any = rng.NextDouble() < p;
    if (!any) break;
    ++accepted;
  }
  return accepted;
}

double ExpectedAcceptedLen(const DraftTree& tree, double accept_prob) {
  const double p = std::min(std::max(accept_prob, 0.0), 1.0);
  const double level_p = 1.0 - std::pow(1.0 - p, tree.Branching());
  // E[L] = sum_{k=1..d} P(L >= k) = sum level_p^k.
  double e = 0.0, pk = 1.0;
  for (int k = 1; k <= tree.Depth(); ++k) {
    pk *= level_p;
    e += pk;
  }
  return e;
}

}  // namespace flashinfer::spec
