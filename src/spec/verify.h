// Target-model verification pricing for speculative decoding.
//
// One verify step runs the target model once over every draft-tree token of
// every running branch. Its attention decomposes exactly like the paper's
// composable formats (Sec. 3.1.2):
//
//   level 0 — every tree token attends the branch's full committed context
//             (paged KV, dense blocks, no causal trimming: all tree tokens
//             see all of it);
//   level 1 — tree tokens attend their ancestors among the draft tokens: the
//             ancestor mask lowered through sparse::BsrFromDenseMask at
//             bc = 1 (vector sparse), replicated block-diagonally across the
//             batch;
//   merge   — the contraction kernel combines both levels' partial states.
//
// Both levels run through the backend's REAL scheduler and the kernel cost
// model (SimulateBatchAttention / SimulateMaskedAttention), so verify cost
// reflects actual tree-attention kernel work — batch mix, KV lengths and
// mask sparsity all move the number — rather than a flat per-token estimate.
#pragma once

#include <cstdint>
#include <vector>

#include "serving/backends.h"
#include "spec/tree.h"

namespace flashinfer::spec {

/// Prices tree-verification attention launches for a fixed (device, backend,
/// head geometry, tree) tuple — everything that is invariant across engine
/// steps, notably the lowered tree-mask BSR, is computed once at
/// construction; only the batch replication and scheduling run per call.
class VerifyPricer {
 public:
  VerifyPricer(const gpusim::DeviceSpec& dev, const serving::BackendConfig& backend,
               const serving::AttnSimInput& geometry, const DraftTree& tree);

  /// Prices ONE per-layer verify launch for a batch of branches with
  /// committed KV lengths `context_lens` (tree tokens excluded). The caller
  /// multiplies by the layer count, exactly as the serving engine's
  /// plan-cache reuse does for vanilla steps.
  gpusim::SimReport Price(const std::vector<int64_t>& context_lens) const;

  int TreeSize() const noexcept { return tree_size_; }

 private:
  gpusim::DeviceSpec dev_;
  serving::BackendConfig backend_;
  serving::AttnSimInput geometry_;
  int tree_size_;
  /// One request's fused-row ancestor-mask BSR at the selected tile.
  sparse::BsrMatrix unit_bsr_;
};

/// Convenience one-shot wrapper around VerifyPricer (tests, exploratory
/// pricing); engines should hold a VerifyPricer instead.
gpusim::SimReport PriceVerifyAttention(const gpusim::DeviceSpec& dev,
                                       const serving::BackendConfig& backend,
                                       const serving::AttnSimInput& in,
                                       const std::vector<int64_t>& context_lens,
                                       const DraftTree& tree);

}  // namespace flashinfer::spec
