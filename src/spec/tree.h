// Draft-token trees for speculative decoding (Sec. 3.1.1: "sparse matrices
// can also effectively represent ... Tree Attentions").
//
// A draft model proposes a b-ary tree of candidate continuations: level l
// holds b^l candidate tokens, each extending one candidate at level l-1.
// `branching == 1` degenerates to the classic linear-chain draft. The target
// model verifies every tree token in ONE batched step: token i attends to
// the committed context plus its ancestors within the tree — an attention
// mask that lowers to BSR (sparse::BsrFromDenseMask) and runs through the
// standard kernels unchanged, which is exactly the customizability claim
// this subsystem exercises end to end.
#pragma once

#include <vector>

#include "sparse/bsr.h"
#include "util/rng.h"

namespace flashinfer::spec {

struct TreeConfig {
  /// Tree depth: the maximum number of draft tokens on any root-to-leaf path.
  int depth = 4;
  /// Children per node. 1 = linear chain draft.
  int branching = 1;
};

/// A materialized draft tree. Nodes are numbered in level order (level 1
/// first); node 0's parent is -1 (it extends the committed context).
class DraftTree {
 public:
  explicit DraftTree(const TreeConfig& cfg);

  int Size() const noexcept { return static_cast<int>(parent_.size()); }
  int Depth() const noexcept { return cfg_.depth; }
  int Branching() const noexcept { return cfg_.branching; }
  int Parent(int node) const { return parent_.at(static_cast<size_t>(node)); }
  /// 1-based level of a node.
  int Level(int node) const { return level_.at(static_cast<size_t>(node)); }
  /// Nodes at a given 1-based level (= branching^level).
  int LevelWidth(int level) const;
  /// Token count of one top-level subtree (the tree splits into `branching`
  /// of them); Size() == branching * SubtreeSize() for branching >= 1.
  int SubtreeSize() const { return Size() / cfg_.branching; }

  /// Dense ancestor mask: mask[i][j] == true iff j is i or an ancestor of i.
  /// This is the per-request tree-attention mask over the speculative tail.
  std::vector<std::vector<bool>> AncestorMask() const;

  const TreeConfig& Config() const noexcept { return cfg_; }

 private:
  TreeConfig cfg_;
  std::vector<int> parent_;
  std::vector<int> level_;
};

/// Lowers the tree's ancestor mask to a vector-sparse BSR (bc = 1) in the
/// fused-row space: each token's mask row is repeated `group` times (GQA
/// head-group fusion) and tiled at `tile_q`. Column j is tail slot j.
sparse::BsrMatrix TreeMaskBsr(const DraftTree& tree, int tile_q, int group);

/// Samples the number of draft tokens the target model accepts, in
/// [0, depth]: at every level each of the `branching` candidates matches the
/// target's token independently with probability `accept_prob`, the level
/// succeeds when any candidate matches, and verification walks down from the
/// last accepted node. Chain drafts reduce to P(len >= k) = p^k.
int SampleAcceptedLen(Rng& rng, const DraftTree& tree, double accept_prob);

/// Closed-form expectation of SampleAcceptedLen (bench/table sanity checks).
double ExpectedAcceptedLen(const DraftTree& tree, double accept_prob);

}  // namespace flashinfer::spec
