// Speculative-decoding configuration for the serving engine.
//
// A spec-enabled engine replaces each decode step with: (1) a draft phase —
// `depth` sequential forward passes of the small draft model, proposing a
// token tree per running branch; (2) a verify phase — ONE target-model step
// over every tree token, priced through the real tree-attention kernel path
// (spec/verify.h); (3) commit — per branch, the accepted prefix length is
// sampled from the request's acceptance model, accepted tokens + the
// target's bonus token are committed, and rejected branches' KV unwinds
// through PagedKVCache refcounts (fork/truncate/drop).
#pragma once

#include "serving/model.h"
#include "spec/tree.h"

namespace flashinfer::spec {

struct SpecDecodeConfig {
  bool enabled = false;
  TreeConfig tree;
  /// Draft model (GEMM roofline only; its KV/attention cost is folded into
  /// the per-pass host overhead — the draft is orders of magnitude smaller
  /// than the target, so its attention time is noise at these scales).
  serving::ModelSpec draft_model;
  /// Acceptance probability for requests that don't carry their own
  /// (Request::accept_prob < 0).
  double default_accept_prob = 0.7;
  /// Seed for the engine's acceptance sampling (reseeded on every Reset so
  /// Run() stays equivalent to an external Admit/StepTo loop).
  uint64_t seed = 0x5eedf00d;

  SpecDecodeConfig();
};

/// Llama-68M-class draft model (the usual companion speculator for 7-8B
/// targets): 2 layers, 768 hidden — weights stream in ~tens of microseconds.
serving::ModelSpec DraftLlama68M();

}  // namespace flashinfer::spec
