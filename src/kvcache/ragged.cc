#include "kvcache/ragged.h"

#include "util/check.h"

namespace flashinfer {

RaggedTensor RaggedTensor::Zeros(std::vector<int64_t> indptr, int64_t inner) {
  FI_CHECK(!indptr.empty());
  FI_CHECK_EQ(indptr.front(), 0);
  RaggedTensor t;
  t.indptr = std::move(indptr);
  t.inner = inner;
  t.data.assign(static_cast<size_t>(t.indptr.back() * inner), 0.0f);
  return t;
}

std::vector<int64_t> BuildIndptr(const std::vector<int64_t>& lens) {
  std::vector<int64_t> indptr(lens.size() + 1, 0);
  for (size_t i = 0; i < lens.size(); ++i) {
    FI_CHECK_GE(lens[i], 0);
    indptr[i + 1] = indptr[i] + lens[i];
  }
  return indptr;
}

}  // namespace flashinfer
