// Paged KV-cache (PagedAttention-style storage, Kwon et al. 2023) backing
// the unified BSR view of Sec. 3.1.1.
//
// Storage is a pool of fixed-size pages; each page holds `page_size` tokens
// of K and V for all KV heads: layout [2 (K/V)][H_kv][page_size][D], with the
// head dimension contiguous (mirrors the coalesced 128B loads of Sec. 3.2.1).
// Pages are reference-counted so radix-tree prefix sharing (kvcache/radix.h)
// and parallel generation can alias pages across sequences without copies.
//
// Two-tier operation (KV pressure / preemption, cf. "LLM in a flash"): the
// cache optionally owns a second, host-memory page pool. EvictSequence moves
// a sequence's *exclusively owned* pages (refcount 1) to the host tier and
// frees their device pages; pages shared with another live holder stay
// resident under the evicted sequence's refcount — eviction never breaks
// sharing, and a shared page could not have been freed anyway. An evicted
// sequence is frozen (no append/fork/truncate/export) until RestoreSequence
// swaps its host pages back into freshly allocated device pages. Restore by
// *recompute* needs no cache support: the owner drops the sequence outright
// and rebuilds it through the prefill path.
//
// Codec tier (KvCodecConfig): with the codec enabled, host-tier pages are
// stored *encoded* — optionally INT8/FP8-quantized (per-page scale/zero) and
// optionally LZ4-compressed — in a variable-size blob store accounted in
// BYTES against `max_host_pages * page bytes`. `max_host_pages` thus measures
// stored bytes, and the tier's effective page capacity multiplies by the
// compression ratio. Callers gate swap-outs with HostCanHold() (worst-case
// encoded size, so admission never overshoots) and read the realized ratio /
// accuracy proxy from the CodecStats that Evict/RestoreSequenceEx return.
// With the codec disabled the host tier is byte-for-byte the raw page pool
// it always was.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/bsr.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/float_types.h"

namespace flashinfer {

class PagedKVCache {
 public:
  /// Per-call codec accounting for evict/restore: page count moved, stored
  /// (encoded) vs logical bytes, and the summed per-page quantization MSE
  /// (the accuracy proxy; mse_pages counts the pages it sums over).
  struct CodecStats {
    int64_t pages = 0;
    int64_t stored_bytes = 0;
    int64_t logical_bytes = 0;
    double mse_sum = 0.0;
    int64_t mse_pages = 0;
  };

  /// `max_host_pages` sizes the host (offload) tier; 0 disables eviction.
  /// `codec` selects the host-tier encoding (default: disabled = raw pages).
  /// `synthetic_fill` makes ExtendSequence write deterministic pseudo-values
  /// into the slots it allocates (structural caches carry no real KV; the
  /// codec needs bytes that behave like data for ratio/MSE metering).
  PagedKVCache(DType dtype, int num_kv_heads, int head_dim, int page_size, int64_t max_pages,
               int64_t max_host_pages = 0, KvCodecConfig codec = {},
               bool synthetic_fill = false);

  DType dtype() const noexcept { return dtype_; }
  int num_kv_heads() const noexcept { return num_kv_heads_; }
  int head_dim() const noexcept { return head_dim_; }
  int page_size() const noexcept { return page_size_; }
  int64_t max_pages() const noexcept { return max_pages_; }
  int64_t num_free_pages() const noexcept { return static_cast<int64_t>(free_list_.size()); }
  int64_t num_live_pages() const noexcept { return max_pages_ - num_free_pages(); }
  int64_t max_host_pages() const noexcept { return max_host_pages_; }
  /// Codec off: free raw host pages. Codec on: a conservative page count —
  /// remaining host bytes divided by the worst-case encoded page size.
  int64_t num_free_host_pages() const noexcept {
    if (!codec_.enabled()) return static_cast<int64_t>(host_free_list_.size());
    const int64_t bound = static_cast<int64_t>(
        util::EncodedPageBound(static_cast<size_t>(elems_per_page_), dtype_, codec_));
    return (host_byte_capacity() - host_bytes_in_use_) / bound;
  }
  int64_t num_live_host_pages() const noexcept {
    if (!codec_.enabled()) return max_host_pages_ - static_cast<int64_t>(host_free_list_.size());
    return live_host_pages_;
  }

  const KvCodecConfig& codec() const noexcept { return codec_; }
  int64_t PageBytes() const noexcept { return elems_per_page_ * DTypeBytes(dtype_); }
  /// The host tier's byte budget: `max_host_pages` raw-page-sized slots.
  int64_t host_byte_capacity() const noexcept { return max_host_pages_ * PageBytes(); }
  /// Bytes the host tier currently charges (encoded bytes with the codec on,
  /// raw page bytes off).
  int64_t host_bytes_in_use() const noexcept {
    if (!codec_.enabled()) return num_live_host_pages() * PageBytes();
    return host_bytes_in_use_;
  }
  /// True when the host tier can take `pages` more evicted pages right now:
  /// free raw pages (codec off) or worst-case encoded bytes (codec on) — the
  /// swap-out admission gate.
  bool HostCanHold(int64_t pages) const noexcept;
  /// Cumulative stored/logical ratio over every page this cache has encoded;
  /// before any eviction, the worst-case encode ratio (1.0 with the codec
  /// off). Restore-policy cost models price swap bytes with this.
  double ObservedStoredRatio() const noexcept;

  /// Allocates a page with refcount 1. Aborts when the pool is exhausted
  /// (serving engines must check num_free_pages and evict first).
  int64_t AllocPage();
  /// Increments a page's refcount (prefix sharing).
  void RetainPage(int64_t page);
  /// Decrements; the page returns to the free list at refcount 0.
  void ReleasePage(int64_t page);
  int RefCount(int64_t page) const;

  // --- Sequence API -------------------------------------------------------
  /// Creates an empty sequence and returns its id.
  int CreateSequence();
  /// Appends `count` tokens; k and v are row-major [count, H_kv, D] floats
  /// (converted to the storage dtype). Allocates pages as needed.
  void AppendTokens(int seq, const float* k, const float* v, int64_t count);
  /// Prepends shared pages (e.g. a radix-tree cached prefix); the pages are
  /// retained. Only valid on a sequence with no tokens yet. `token_count`
  /// gives how many tokens those pages hold.
  void AdoptPrefix(int seq, const std::vector<int64_t>& pages, int64_t token_count);
  /// Releases all pages of a sequence and deletes it.
  void DropSequence(int seq);

  // --- Fork / rollback (speculative decoding) -----------------------------
  /// Appends `count` token slots without writing K/V data (structural use:
  /// serving simulation tracks page accounting, not values). Allocates pages
  /// exactly as AppendTokens would. With `synthetic_fill`, the new slots are
  /// filled with deterministic pseudo-values (see ctor).
  void ExtendSequence(int seq, int64_t count);
  /// Creates a new sequence sharing `seq`'s committed KV: full pages are
  /// retained (refcounted aliasing), a partially-filled last page is
  /// copy-on-write cloned so both sides can append independently. Returns the
  /// fork's sequence id.
  int ForkSequence(int seq);
  /// Rolls a sequence back to `new_len` tokens (<= current length), releasing
  /// every page past the new end. Rejected speculative branches unwind with
  /// this; shared pages survive under their other holders' refcounts.
  void TruncateSequence(int seq, int64_t new_len);

  // --- Two-tier eviction / restore (preemption under KV pressure) ---------
  /// Moves the sequence's exclusively owned pages (refcount 1) to the host
  /// tier (encoding them when the codec is on) and frees their device pages;
  /// pages shared with another holder stay resident under this sequence's
  /// refcount (sharing survives). The sequence is frozen until
  /// RestoreSequence. Returns the number of pages offloaded to host. Aborts
  /// if the host pool cannot hold them — callers gate on
  /// ExclusivePages()/HostCanHold() (or drop + recompute).
  int64_t EvictSequence(int seq);
  /// EvictSequence plus the codec accounting of this swap-out: stored vs
  /// logical bytes actually written to the host tier and the quantization-MSE
  /// accuracy proxy.
  CodecStats EvictSequenceEx(int seq);
  /// Swaps an evicted sequence's host pages back into freshly allocated
  /// device pages (decoding them when the codec is on) and unfreezes it.
  /// Returns the number of pages swapped in. Transactional on device-pool
  /// shortfall: when fewer than the needed free device pages exist, returns
  /// -1 and mutates NOTHING — host pages stay held, the sequence stays
  /// frozen, and the caller may retry after freeing device pages.
  int64_t RestoreSequence(int seq);
  /// RestoreSequence plus the codec accounting captured at evict time
  /// (pages == -1 on the shortfall path, all other fields zero).
  CodecStats RestoreSequenceEx(int seq);
  bool IsEvicted(int seq) const;
  /// Pages EvictSequence would offload right now (refcount-1 pages): the
  /// host-tier space a swap-out needs and the device pages it would free.
  int64_t ExclusivePages(int seq) const;
  /// Host pages currently holding this (evicted) sequence's KV.
  int64_t HostPagesHeld(int seq) const;

  int64_t SequenceLength(int seq) const;
  const std::vector<int64_t>& SequencePages(int seq) const;
  int LastPageLen(int seq) const;

  /// Exports a sequence's page list in the BSR builder's format.
  sparse::RequestKv ExportKv(int seq, int64_t pos_offset = 0) const;

  // --- Raw access (kernels) ----------------------------------------------
  /// Typed pointer to the K row of (page, head, slot): `head_dim` elements.
  template <typename T>
  const T* KRow(int64_t page, int head, int slot) const noexcept {
    return reinterpret_cast<const T*>(data_.data()) + KOffset(page, head, slot);
  }
  template <typename T>
  const T* VRow(int64_t page, int head, int slot) const noexcept {
    return reinterpret_cast<const T*>(data_.data()) + VOffset(page, head, slot);
  }

  /// Converting accessors for reference code and tests (slow path).
  float KAt(int64_t page, int head, int slot, int d) const noexcept;
  float VAt(int64_t page, int head, int slot, int d) const noexcept;
  /// Writes one token's K/V rows ([H_kv, D] floats each) at (page, slot).
  void SetToken(int64_t page, int slot, const float* k, const float* v);

  /// Bytes of KV data held by one token (both K and V, all heads).
  int64_t BytesPerToken() const noexcept {
    return 2LL * num_kv_heads_ * head_dim_ * DTypeBytes(dtype_);
  }

 private:
  struct Sequence {
    std::vector<int64_t> pages;
    int64_t length = 0;
    bool live = false;
    bool evicted = false;
    /// Parallel to `pages` while evicted: host page (codec off) or blob slot
    /// (codec on) holding slot i's KV, or -1 when the device page stayed
    /// resident (shared with another holder; `pages[i]` keeps the refcounted
    /// device page in that case, and is -1 where the KV moved to host).
    std::vector<int64_t> host_slots;
    /// Codec accounting of the bytes this sequence holds in the host tier
    /// (accumulated at evict, returned + cleared at restore/drop).
    CodecStats host_stats;
  };

  int64_t KOffset(int64_t page, int head, int slot) const noexcept {
    return ((page * 2 + 0) * num_kv_heads_ + head) * static_cast<int64_t>(page_size_) *
               head_dim_ +
           static_cast<int64_t>(slot) * head_dim_;
  }
  int64_t VOffset(int64_t page, int head, int slot) const noexcept {
    return ((page * 2 + 1) * num_kv_heads_ + head) * static_cast<int64_t>(page_size_) *
               head_dim_ +
           static_cast<int64_t>(slot) * head_dim_;
  }
  float LoadElem(int64_t elem_offset) const noexcept;
  void StoreElem(int64_t elem_offset, float v) noexcept;
  int64_t AllocHostPage();
  int64_t AllocBlobSlot();
  void FreeBlobSlot(int64_t slot);
  void FillSlotSynthetic(int64_t page, int slot);

  DType dtype_;
  int num_kv_heads_;
  int head_dim_;
  int page_size_;
  int64_t max_pages_;
  int64_t max_host_pages_ = 0;
  KvCodecConfig codec_;
  bool synthetic_fill_ = false;
  int64_t elems_per_page_;
  std::vector<std::byte> data_;
  std::vector<std::byte> host_data_;
  std::vector<int64_t> free_list_;
  std::vector<int64_t> host_free_list_;
  std::vector<int32_t> ref_;
  std::vector<Sequence> seqs_;
  // Codec-tier blob store: encoded pages, accounted in bytes.
  std::vector<std::vector<uint8_t>> host_blobs_;
  std::vector<int64_t> host_blob_free_;
  int64_t host_bytes_in_use_ = 0;
  int64_t live_host_pages_ = 0;
  // Cumulative encode totals backing ObservedStoredRatio().
  int64_t cum_stored_bytes_ = 0;
  int64_t cum_logical_bytes_ = 0;
};

}  // namespace flashinfer
