// Ragged (jagged) tensors for queries and outputs (Sec. 3.1.1).
//
// Queries/outputs from all requests in a batch are packed into one dense
// buffer with an `indptr` array, no padding. Row width is num_heads*head_dim
// for plain layouts or head_dim for head-group-fused layouts (Appendix A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace flashinfer {

struct RaggedTensor {
  /// Per-request row extents; indptr[r+1]-indptr[r] rows belong to request r.
  std::vector<int64_t> indptr;
  /// Elements per row.
  int64_t inner = 0;
  /// Packed [NumRows(), inner] data.
  std::vector<float> data;

  static RaggedTensor Zeros(std::vector<int64_t> indptr, int64_t inner);

  int64_t NumRows() const noexcept { return indptr.empty() ? 0 : indptr.back(); }
  int64_t NumRequests() const noexcept {
    return indptr.empty() ? 0 : static_cast<int64_t>(indptr.size()) - 1;
  }

  std::span<float> Row(int64_t i) noexcept {
    return {data.data() + i * inner, static_cast<size_t>(inner)};
  }
  std::span<const float> Row(int64_t i) const noexcept {
    return {data.data() + i * inner, static_cast<size_t>(inner)};
  }
};

/// Builds an indptr array from per-request lengths.
std::vector<int64_t> BuildIndptr(const std::vector<int64_t>& lens);

}  // namespace flashinfer
