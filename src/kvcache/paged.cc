#include "kvcache/paged.h"

#include <algorithm>

namespace flashinfer {

PagedKVCache::PagedKVCache(DType dtype, int num_kv_heads, int head_dim, int page_size,
                           int64_t max_pages, int64_t max_host_pages, KvCodecConfig codec,
                           bool synthetic_fill)
    : dtype_(dtype),
      num_kv_heads_(num_kv_heads),
      head_dim_(head_dim),
      page_size_(page_size),
      max_pages_(max_pages),
      max_host_pages_(max_host_pages),
      codec_(codec),
      synthetic_fill_(synthetic_fill) {
  FI_CHECK_GE(num_kv_heads, 1);
  FI_CHECK_GE(head_dim, 1);
  FI_CHECK_GE(page_size, 1);
  FI_CHECK_GE(max_pages, 1);
  FI_CHECK_GE(max_host_pages, 0);
  elems_per_page_ = 2LL * num_kv_heads_ * page_size_ * head_dim_;
  data_.resize(static_cast<size_t>(elems_per_page_ * max_pages_ * DTypeBytes(dtype_)));
  ref_.assign(static_cast<size_t>(max_pages_), 0);
  free_list_.reserve(static_cast<size_t>(max_pages_));
  for (int64_t p = max_pages_ - 1; p >= 0; --p) free_list_.push_back(p);
  if (!codec_.enabled()) {
    // Raw host tier: a fixed pool of page-sized slots. The codec tier stores
    // variable-size blobs instead and charges bytes, so it skips this
    // allocation entirely.
    host_data_.resize(
        static_cast<size_t>(elems_per_page_ * max_host_pages_ * DTypeBytes(dtype_)));
    host_free_list_.reserve(static_cast<size_t>(max_host_pages_));
    for (int64_t p = max_host_pages_ - 1; p >= 0; --p) host_free_list_.push_back(p);
  }
}

bool PagedKVCache::HostCanHold(int64_t pages) const noexcept {
  if (!codec_.enabled()) return pages <= static_cast<int64_t>(host_free_list_.size());
  const int64_t bound = static_cast<int64_t>(
      util::EncodedPageBound(static_cast<size_t>(elems_per_page_), dtype_, codec_));
  return pages * bound <= host_byte_capacity() - host_bytes_in_use_;
}

double PagedKVCache::ObservedStoredRatio() const noexcept {
  if (!codec_.enabled()) return 1.0;
  if (cum_logical_bytes_ > 0) {
    return static_cast<double>(cum_stored_bytes_) / static_cast<double>(cum_logical_bytes_);
  }
  const double bound = static_cast<double>(
      util::EncodedPageBound(static_cast<size_t>(elems_per_page_), dtype_, codec_));
  return bound / static_cast<double>(PageBytes());
}

int64_t PagedKVCache::AllocPage() {
  FI_CHECK(!free_list_.empty());
  const int64_t page = free_list_.back();
  free_list_.pop_back();
  ref_[static_cast<size_t>(page)] = 1;
  return page;
}

void PagedKVCache::RetainPage(int64_t page) {
  FI_CHECK_GT(ref_[static_cast<size_t>(page)], 0);
  ++ref_[static_cast<size_t>(page)];
}

void PagedKVCache::ReleasePage(int64_t page) {
  auto& r = ref_[static_cast<size_t>(page)];
  FI_CHECK_GT(r, 0);
  if (--r == 0) free_list_.push_back(page);
}

int PagedKVCache::RefCount(int64_t page) const {
  return ref_[static_cast<size_t>(page)];
}

int64_t PagedKVCache::AllocHostPage() {
  FI_CHECK(!host_free_list_.empty());
  const int64_t page = host_free_list_.back();
  host_free_list_.pop_back();
  return page;
}

int64_t PagedKVCache::AllocBlobSlot() {
  if (!host_blob_free_.empty()) {
    const int64_t slot = host_blob_free_.back();
    host_blob_free_.pop_back();
    return slot;
  }
  host_blobs_.emplace_back();
  return static_cast<int64_t>(host_blobs_.size()) - 1;
}

void PagedKVCache::FreeBlobSlot(int64_t slot) {
  auto& blob = host_blobs_.at(static_cast<size_t>(slot));
  host_bytes_in_use_ -= static_cast<int64_t>(blob.size());
  --live_host_pages_;
  blob = {};
  host_blob_free_.push_back(slot);
}

int PagedKVCache::CreateSequence() {
  // Reuse a dead slot if any.
  for (size_t i = 0; i < seqs_.size(); ++i) {
    if (!seqs_[i].live) {
      seqs_[i] = Sequence{{}, 0, true};
      return static_cast<int>(i);
    }
  }
  seqs_.push_back(Sequence{{}, 0, true});
  return static_cast<int>(seqs_.size() - 1);
}

void PagedKVCache::AppendTokens(int seq, const float* k, const float* v, int64_t count) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  for (int64_t t = 0; t < count; ++t) {
    const int slot = static_cast<int>(s.length % page_size_);
    if (slot == 0) {
      s.pages.push_back(AllocPage());
    } else {
      // Appending into a partially-filled page requires exclusive ownership:
      // writing a shared page would corrupt every other holder's KV. Shared
      // tails come from AdoptPrefix misuse or truncating a fork below its
      // copy-on-write point — both API-contract violations; fail loudly.
      FI_CHECK_EQ(ref_[static_cast<size_t>(s.pages.back())], 1);
    }
    const int64_t page = s.pages.back();
    SetToken(page, slot, k + t * num_kv_heads_ * head_dim_, v + t * num_kv_heads_ * head_dim_);
    ++s.length;
  }
}

void PagedKVCache::AdoptPrefix(int seq, const std::vector<int64_t>& pages, int64_t token_count) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  FI_CHECK_EQ(s.length, 0);
  FI_CHECK_LE(token_count, static_cast<int64_t>(pages.size()) * page_size_);
  // Shared prefixes must end on a page boundary: a partially-filled shared
  // page cannot be appended to by two sequences.
  FI_CHECK_EQ(token_count % page_size_, 0);
  for (int64_t p : pages) RetainPage(p);
  s.pages = pages;
  s.length = token_count;
}

void PagedKVCache::FillSlotSynthetic(int64_t page, int slot) {
  for (int h = 0; h < num_kv_heads_; ++h) {
    const int64_t koff = KOffset(page, h, slot);
    const int64_t voff = VOffset(page, h, slot);
    for (int d = 0; d < head_dim_; ++d) {
      // Deterministic pseudo-values keyed by the element's storage position:
      // page reuse, forks, and Run≡StepTo twins all see identical bytes. A
      // small value alphabet in [-1, 1) keeps the encoded pages compressible
      // enough to behave like real (correlated) KV.
      for (const int64_t off : {koff + d, voff + d}) {
        uint64_t x = static_cast<uint64_t>(off) * 0x9E3779B97F4A7C15ull;
        x ^= x >> 29;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 32;
        StoreElem(off, static_cast<float>((x >> 11) & 0xF) / 8.0f - 1.0f);
      }
    }
  }
}

void PagedKVCache::ExtendSequence(int seq, int64_t count) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  FI_CHECK_GE(count, 0);
  if (count > 0 && s.length % page_size_ != 0) {
    // Same exclusivity contract as AppendTokens: growing into a shared
    // partial page would collide with the other holder's slots.
    FI_CHECK_EQ(ref_[static_cast<size_t>(s.pages.back())], 1);
  }
  for (int64_t t = 0; t < count; ++t) {
    if (s.length % page_size_ == 0) s.pages.push_back(AllocPage());
    if (synthetic_fill_) {
      FillSlotSynthetic(s.pages.back(), static_cast<int>(s.length % page_size_));
    }
    ++s.length;
  }
}

int PagedKVCache::ForkSequence(int seq) {
  // Read the parent's state up front: CreateSequence() may grow seqs_ and
  // invalidate references into it.
  const std::vector<int64_t> parent_pages = seqs_.at(static_cast<size_t>(seq)).pages;
  const int64_t parent_len = seqs_.at(static_cast<size_t>(seq)).length;
  FI_CHECK(seqs_.at(static_cast<size_t>(seq)).live);
  FI_CHECK(!seqs_.at(static_cast<size_t>(seq)).evicted);

  const int64_t full_pages = parent_len / page_size_;
  const int tail_len = static_cast<int>(parent_len % page_size_);
  const int fork = CreateSequence();
  auto& f = seqs_.at(static_cast<size_t>(fork));
  f.pages.reserve(parent_pages.size());
  for (int64_t p = 0; p < full_pages; ++p) {
    RetainPage(parent_pages[static_cast<size_t>(p)]);
    f.pages.push_back(parent_pages[static_cast<size_t>(p)]);
  }
  if (tail_len > 0) {
    // Copy-on-write: both sides append into their own tail page.
    const int64_t src = parent_pages[static_cast<size_t>(full_pages)];
    const int64_t dst = AllocPage();
    const int64_t bytes_per_elem = DTypeBytes(dtype_);
    std::copy_n(data_.begin() + src * elems_per_page_ * bytes_per_elem,
                elems_per_page_ * bytes_per_elem,
                data_.begin() + dst * elems_per_page_ * bytes_per_elem);
    f.pages.push_back(dst);
  }
  f.length = parent_len;
  return fork;
}

void PagedKVCache::TruncateSequence(int seq, int64_t new_len) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  FI_CHECK_GE(new_len, 0);
  FI_CHECK_LE(new_len, s.length);
  const int64_t keep_pages = (new_len + page_size_ - 1) / page_size_;
  while (static_cast<int64_t>(s.pages.size()) > keep_pages) {
    ReleasePage(s.pages.back());
    s.pages.pop_back();
  }
  s.length = new_len;
}

void PagedKVCache::DropSequence(int seq) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  for (int64_t p : s.pages) {
    if (p >= 0) ReleasePage(p);
  }
  for (int64_t h : s.host_slots) {
    if (h < 0) continue;
    if (codec_.enabled()) {
      FreeBlobSlot(h);
    } else {
      host_free_list_.push_back(h);
    }
  }
  s = Sequence{};
}

int64_t PagedKVCache::EvictSequence(int seq) { return EvictSequenceEx(seq).pages; }

PagedKVCache::CodecStats PagedKVCache::EvictSequenceEx(int seq) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  const int64_t bytes_per_elem = DTypeBytes(dtype_);
  s.host_slots.assign(s.pages.size(), -1);
  CodecStats out;
  for (size_t i = 0; i < s.pages.size(); ++i) {
    const int64_t p = s.pages[i];
    if (ref_[static_cast<size_t>(p)] > 1) continue;  // Shared: stays resident.
    if (codec_.enabled()) {
      util::PageCodecStats ps;
      auto blob = util::EncodePage(data_.data() + p * elems_per_page_ * bytes_per_elem,
                                   static_cast<size_t>(elems_per_page_), dtype_, codec_, &ps);
      FI_CHECK_LE(host_bytes_in_use_ + static_cast<int64_t>(blob.size()),
                  host_byte_capacity());
      const int64_t slot = AllocBlobSlot();
      host_bytes_in_use_ += static_cast<int64_t>(blob.size());
      ++live_host_pages_;
      host_blobs_[static_cast<size_t>(slot)] = std::move(blob);
      s.host_slots[i] = slot;
      out.stored_bytes += ps.stored_bytes;
      out.logical_bytes += ps.logical_bytes;
      if (codec_.quant != KvQuantFormat::kNone) {
        out.mse_sum += ps.mse;
        ++out.mse_pages;
      }
    } else {
      const int64_t h = AllocHostPage();
      std::copy_n(data_.begin() + p * elems_per_page_ * bytes_per_elem,
                  elems_per_page_ * bytes_per_elem,
                  host_data_.begin() + h * elems_per_page_ * bytes_per_elem);
      s.host_slots[i] = h;
      out.stored_bytes += PageBytes();
      out.logical_bytes += PageBytes();
    }
    ReleasePage(p);
    s.pages[i] = -1;
    ++out.pages;
  }
  s.evicted = true;
  if (codec_.enabled()) {
    cum_stored_bytes_ += out.stored_bytes;
    cum_logical_bytes_ += out.logical_bytes;
  }
  s.host_stats.pages += out.pages;
  s.host_stats.stored_bytes += out.stored_bytes;
  s.host_stats.logical_bytes += out.logical_bytes;
  s.host_stats.mse_sum += out.mse_sum;
  s.host_stats.mse_pages += out.mse_pages;
  return out;
}

int64_t PagedKVCache::RestoreSequence(int seq) { return RestoreSequenceEx(seq).pages; }

PagedKVCache::CodecStats PagedKVCache::RestoreSequenceEx(int seq) {
  auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(s.evicted);
  // Transactional: check the whole device need up front. A mid-loop
  // allocation failure would strand a half-restored sequence — some pages
  // device-resident, some still in the host tier, the frozen flag ambiguous
  // — and leak its host pages. With the precheck, a shortfall mutates
  // nothing: the caller sees -1, the sequence stays evicted and intact.
  int64_t needed = 0;
  for (const int64_t h : s.host_slots) {
    if (h >= 0) ++needed;
  }
  if (needed > num_free_pages()) {
    CodecStats fail;
    fail.pages = -1;
    return fail;
  }
  const int64_t bytes_per_elem = DTypeBytes(dtype_);
  CodecStats out = s.host_stats;
  out.pages = 0;
  for (size_t i = 0; i < s.pages.size(); ++i) {
    const int64_t h = s.host_slots[i];
    if (h < 0) continue;  // Stayed resident (shared page).
    const int64_t p = AllocPage();
    if (codec_.enabled()) {
      const auto& blob = host_blobs_.at(static_cast<size_t>(h));
      util::DecodePage(blob.data(), blob.size(),
                       data_.data() + p * elems_per_page_ * bytes_per_elem,
                       static_cast<size_t>(elems_per_page_), dtype_);
      FreeBlobSlot(h);
    } else {
      std::copy_n(host_data_.begin() + h * elems_per_page_ * bytes_per_elem,
                  elems_per_page_ * bytes_per_elem,
                  data_.begin() + p * elems_per_page_ * bytes_per_elem);
      host_free_list_.push_back(h);
    }
    s.pages[i] = p;
    ++out.pages;
  }
  s.host_slots.clear();
  s.host_stats = CodecStats{};
  s.evicted = false;
  return out;
}

bool PagedKVCache::IsEvicted(int seq) const {
  return seqs_.at(static_cast<size_t>(seq)).evicted;
}

int64_t PagedKVCache::ExclusivePages(int seq) const {
  const auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  int64_t n = 0;
  for (int64_t p : s.pages) {
    if (p >= 0 && ref_[static_cast<size_t>(p)] == 1) ++n;
  }
  return n;
}

int64_t PagedKVCache::HostPagesHeld(int seq) const {
  const auto& s = seqs_.at(static_cast<size_t>(seq));
  int64_t n = 0;
  for (int64_t h : s.host_slots) {
    if (h >= 0) ++n;
  }
  return n;
}

int64_t PagedKVCache::SequenceLength(int seq) const {
  return seqs_.at(static_cast<size_t>(seq)).length;
}

const std::vector<int64_t>& PagedKVCache::SequencePages(int seq) const {
  return seqs_.at(static_cast<size_t>(seq)).pages;
}

int PagedKVCache::LastPageLen(int seq) const {
  const auto& s = seqs_.at(static_cast<size_t>(seq));
  if (s.length == 0) return 0;
  const int rem = static_cast<int>(s.length % page_size_);
  return rem == 0 ? page_size_ : rem;
}

sparse::RequestKv PagedKVCache::ExportKv(int seq, int64_t pos_offset) const {
  const auto& s = seqs_.at(static_cast<size_t>(seq));
  FI_CHECK(s.live);
  FI_CHECK(!s.evicted);
  sparse::RequestKv kv;
  kv.pages = s.pages;
  kv.last_page_len = LastPageLen(seq);
  kv.pos_offset = pos_offset;
  return kv;
}

float PagedKVCache::LoadElem(int64_t elem_offset) const noexcept {
  switch (dtype_) {
    case DType::kF32:
      return reinterpret_cast<const float*>(data_.data())[elem_offset];
    case DType::kF16:
      return ToFloat(reinterpret_cast<const half_t*>(data_.data())[elem_offset]);
    case DType::kBF16:
      return ToFloat(reinterpret_cast<const bf16_t*>(data_.data())[elem_offset]);
    case DType::kFP8_E4M3:
      return ToFloat(reinterpret_cast<const fp8_e4m3_t*>(data_.data())[elem_offset]);
    case DType::kFP8_E5M2:
      return ToFloat(reinterpret_cast<const fp8_e5m2_t*>(data_.data())[elem_offset]);
  }
  return 0.0f;
}

void PagedKVCache::StoreElem(int64_t elem_offset, float v) noexcept {
  switch (dtype_) {
    case DType::kF32:
      reinterpret_cast<float*>(data_.data())[elem_offset] = v;
      return;
    case DType::kF16:
      reinterpret_cast<half_t*>(data_.data())[elem_offset] = half_t(v);
      return;
    case DType::kBF16:
      reinterpret_cast<bf16_t*>(data_.data())[elem_offset] = bf16_t(v);
      return;
    case DType::kFP8_E4M3:
      reinterpret_cast<fp8_e4m3_t*>(data_.data())[elem_offset] = fp8_e4m3_t(v);
      return;
    case DType::kFP8_E5M2:
      reinterpret_cast<fp8_e5m2_t*>(data_.data())[elem_offset] = fp8_e5m2_t(v);
      return;
  }
}

float PagedKVCache::KAt(int64_t page, int head, int slot, int d) const noexcept {
  return LoadElem(KOffset(page, head, slot) + d);
}

float PagedKVCache::VAt(int64_t page, int head, int slot, int d) const noexcept {
  return LoadElem(VOffset(page, head, slot) + d);
}

void PagedKVCache::SetToken(int64_t page, int slot, const float* k, const float* v) {
  FI_CHECK_GE(page, 0);
  FI_CHECK_LT(page, max_pages_);
  FI_CHECK_GE(slot, 0);
  FI_CHECK_LT(slot, page_size_);
  for (int h = 0; h < num_kv_heads_; ++h) {
    const int64_t koff = KOffset(page, h, slot);
    const int64_t voff = VOffset(page, h, slot);
    for (int d = 0; d < head_dim_; ++d) {
      StoreElem(koff + d, k[h * head_dim_ + d]);
      StoreElem(voff + d, v[h * head_dim_ + d]);
    }
  }
}

}  // namespace flashinfer
