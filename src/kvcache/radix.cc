#include "kvcache/radix.h"

#include <algorithm>

#include "util/check.h"

namespace flashinfer {

RadixTree::RadixTree(int page_size) : page_size_(page_size) {
  FI_CHECK_GE(page_size, 1);
}

RadixTree::MatchResult RadixTree::MatchPrefix(std::span<const int32_t> tokens) {
  MatchResult result;
  Node* node = &root_;
  const int64_t full_pages = static_cast<int64_t>(tokens.size()) / page_size_;
  ++clock_;
  for (int64_t p = 0; p < full_pages; ++p) {
    std::vector<int32_t> chunk(tokens.begin() + p * page_size_,
                               tokens.begin() + (p + 1) * page_size_);
    const auto it = node->children.find(chunk);
    if (it == node->children.end()) break;
    node = it->second.get();
    node->last_access = clock_;
    result.pages.push_back(node->page);
    result.matched_tokens += page_size_;
    result.node_path.push_back(node);
  }
  return result;
}

int64_t RadixTree::PeekPrefixTokens(std::span<const int32_t> tokens) const {
  const Node* node = &root_;
  const int64_t full_pages = static_cast<int64_t>(tokens.size()) / page_size_;
  int64_t matched = 0;
  for (int64_t p = 0; p < full_pages; ++p) {
    std::vector<int32_t> chunk(tokens.begin() + p * page_size_,
                               tokens.begin() + (p + 1) * page_size_);
    const auto it = node->children.find(chunk);
    if (it == node->children.end()) break;
    node = it->second.get();
    matched += page_size_;
  }
  return matched;
}

int64_t RadixTree::Insert(std::span<const int32_t> tokens, std::span<const int64_t> pages) {
  const int64_t full_pages = static_cast<int64_t>(tokens.size()) / page_size_;
  FI_CHECK_LE(full_pages, static_cast<int64_t>(pages.size()));
  Node* node = &root_;
  int64_t inserted = 0;
  ++clock_;
  for (int64_t p = 0; p < full_pages; ++p) {
    std::vector<int32_t> chunk(tokens.begin() + p * page_size_,
                               tokens.begin() + (p + 1) * page_size_);
    auto it = node->children.find(chunk);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->chunk = chunk;
      child->page = pages[static_cast<size_t>(p)];
      child->parent = node;
      child->last_access = clock_;
      it = node->children.emplace(std::move(chunk), std::move(child)).first;
      ++inserted;
      ++total_pages_;
    } else {
      it->second->last_access = clock_;
    }
    node = it->second.get();
  }
  return inserted;
}

void RadixTree::Lock(const std::vector<void*>& path) {
  for (void* p : path) {
    ++static_cast<Node*>(p)->lock_count;
  }
}

void RadixTree::Unlock(const std::vector<void*>& path) {
  for (void* p : path) {
    auto* node = static_cast<Node*>(p);
    FI_CHECK_GT(node->lock_count, 0);
    --node->lock_count;
  }
}

std::vector<int64_t> RadixTree::EvictLru(int64_t max_pages) {
  std::vector<int64_t> freed;
  while (static_cast<int64_t>(freed.size()) < max_pages) {
    // Find the unlocked leaf with the oldest access stamp.
    Node* victim = nullptr;
    uint64_t best = UINT64_MAX;
    // Iterative DFS.
    std::vector<Node*> stack{&root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (auto& [key, child] : n->children) stack.push_back(child.get());
      if (n != &root_ && n->children.empty() && n->lock_count == 0 &&
          n->last_access < best) {
        best = n->last_access;
        victim = n;
      }
    }
    if (victim == nullptr) break;  // Everything pinned or tree empty.
    freed.push_back(victim->page);
    --total_pages_;
    Node* parent = victim->parent;
    parent->children.erase(victim->chunk);
  }
  return freed;
}

}  // namespace flashinfer
