// Radix-tree prefix cache (RadixAttention, Zheng et al. 2023 / SGLang).
//
// Maps token-id prefixes to cached KV pages so that requests sharing a
// prefix reuse pages instead of recomputing them, and so the serving engine
// can discover shared-prefix groups for composable formats (Sec. 3.1.2).
// Sharing granularity is one page: the tree stores one node per full page of
// tokens. Nodes are reference-counted by in-flight requests; eviction walks
// unlocked leaves in LRU order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

namespace flashinfer {

class RadixTree {
 public:
  explicit RadixTree(int page_size);

  struct MatchResult {
    /// Cached pages covering the matched prefix, in order.
    std::vector<int64_t> pages;
    /// Matched token count (always a multiple of page_size).
    int64_t matched_tokens = 0;
    /// Opaque handle for Lock/Unlock; empty when nothing matched.
    std::vector<void*> node_path;
  };

  /// Finds the longest cached prefix of `tokens` (page-aligned) and bumps
  /// the LRU stamp of every node on the path.
  MatchResult MatchPrefix(std::span<const int32_t> tokens);

  /// Length of the longest cached prefix of `tokens` without touching LRU
  /// stamps — a read-only probe (e.g. a router scoring replicas it may not
  /// pick must not refresh their caches).
  int64_t PeekPrefixTokens(std::span<const int32_t> tokens) const;

  /// Inserts the page-aligned prefix of `tokens` into the tree, reusing any
  /// existing path; `pages[i]` backs tokens [i*page_size, (i+1)*page_size).
  /// Returns how many of `pages` were newly inserted (the tail); previously
  /// present pages are NOT adopted (caller keeps or frees its duplicates).
  int64_t Insert(std::span<const int32_t> tokens, std::span<const int64_t> pages);

  /// Pins every node on `path` (from MatchPrefix/Insert) against eviction.
  void Lock(const std::vector<void*>& path);
  void Unlock(const std::vector<void*>& path);

  /// Evicts up to `max_pages` unlocked LRU leaves; returns the freed pages
  /// (caller releases them from the PagedKVCache).
  std::vector<int64_t> EvictLru(int64_t max_pages);

  int64_t TotalCachedPages() const noexcept { return total_pages_; }

 private:
  struct Node {
    std::vector<int32_t> chunk;  // Exactly page_size tokens.
    int64_t page = -1;
    int lock_count = 0;
    uint64_t last_access = 0;
    Node* parent = nullptr;
    std::map<std::vector<int32_t>, std::unique_ptr<Node>> children;
  };

  int page_size_;
  uint64_t clock_ = 0;
  int64_t total_pages_ = 0;
  Node root_;
};

}  // namespace flashinfer
