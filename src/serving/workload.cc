#include "serving/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace flashinfer::serving {

namespace {

int64_t ClippedLogNormal(Rng& rng, double mean, double sigma, int64_t lo, int64_t hi) {
  // Choose mu so that the log-normal mean is `mean`: mean = exp(mu+sigma^2/2).
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  const double v = rng.LogNormal(mu, sigma);
  return std::clamp<int64_t>(static_cast<int64_t>(std::llround(v)), lo, hi);
}

}  // namespace

std::vector<Request> ShareGptWorkload(Rng& rng, int num_requests, double request_rate,
                                      int parallel_n) {
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(num_requests));
  double t = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    t += rng.Exponential(request_rate);
    Request r;
    r.id = i;
    r.arrival_s = t;
    r.input_len = ClippedLogNormal(rng, 220.0, 1.1, 4, 2048);
    r.output_len = ClippedLogNormal(rng, 190.0, 1.0, 4, 1024);
    r.parallel_n = parallel_n;
    reqs.push_back(r);
  }
  return reqs;
}

std::vector<Request> UniformWorkload(Rng& rng, int num_requests, double request_rate,
                                     int64_t lo, int64_t hi, int64_t output_len) {
  FI_CHECK_LE(lo, hi);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(num_requests));
  double t = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    t += rng.Exponential(request_rate);
    Request r;
    r.id = i;
    r.arrival_s = t;
    r.input_len = rng.UniformInt(lo, hi);
    r.output_len = output_len;
    reqs.push_back(r);
  }
  return reqs;
}

std::vector<Request> MultiTenantWorkload(Rng& rng, int num_requests, double request_rate,
                                         const TenantPoolConfig& cfg) {
  FI_CHECK_GE(cfg.num_tenants, 1);
  FI_CHECK_LE(cfg.prefix_len_lo, cfg.prefix_len_hi);

  // Materialize each tenant's system prompt once. Ids live in disjoint
  // per-tenant ranges so two tenants can never share a page-aligned prefix.
  std::vector<std::vector<int32_t>> prompts(static_cast<size_t>(cfg.num_tenants));
  for (int t = 0; t < cfg.num_tenants; ++t) {
    const int64_t len = rng.UniformInt(cfg.prefix_len_lo, cfg.prefix_len_hi);
    auto& p = prompts[static_cast<size_t>(t)];
    p.reserve(static_cast<size_t>(len));
    const int32_t base = (t + 1) * 1'000'000;
    for (int64_t i = 0; i < len; ++i) {
      p.push_back(base + static_cast<int32_t>(rng.UniformInt(0, 99'999)));
    }
  }

  ZipfSampler popularity(cfg.num_tenants, cfg.zipf_s);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(num_requests));
  double now = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    now += rng.Exponential(request_rate);
    const int tenant = popularity.Sample(rng) - 1;
    const auto& prefix = prompts[static_cast<size_t>(tenant)];
    const int64_t user_len =
        ClippedLogNormal(rng, static_cast<double>(cfg.user_len_mean), 0.8, 4, 512);

    Request r;
    r.id = i;
    r.arrival_s = now;
    r.tenant = tenant;
    r.prompt_tokens = prefix;
    r.prompt_tokens.reserve(prefix.size() + static_cast<size_t>(user_len));
    for (int64_t u = 0; u < user_len; ++u) {
      // User turns draw from the shared low id range; they are unique per
      // request with overwhelming probability, which is all prefix matching
      // needs (a stray collision only matters if a whole page matches).
      r.prompt_tokens.push_back(static_cast<int32_t>(rng.UniformInt(0, 99'999)));
    }
    r.input_len = static_cast<int64_t>(r.prompt_tokens.size());
    r.output_len =
        ClippedLogNormal(rng, static_cast<double>(cfg.output_len_mean), 0.9, 4, 1024);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

std::vector<Request> BurstyLongPrefillWorkload(Rng& rng, const BurstyPrefillConfig& cfg) {
  FI_CHECK_LE(cfg.steady_input_lo, cfg.steady_input_hi);
  FI_CHECK_LE(cfg.burst_input_lo, cfg.burst_input_hi);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(cfg.num_steady) +
               static_cast<size_t>(cfg.num_bursts) * cfg.burst_size);
  double t = 0.0;
  for (int i = 0; i < cfg.num_steady; ++i) {
    t += rng.Exponential(cfg.steady_rate);
    Request r;
    r.arrival_s = t;
    r.input_len = rng.UniformInt(cfg.steady_input_lo, cfg.steady_input_hi);
    r.output_len = cfg.steady_output;
    reqs.push_back(r);
  }
  for (int b = 0; b < cfg.num_bursts; ++b) {
    const double when = cfg.first_burst_s + b * cfg.burst_period_s;
    for (int i = 0; i < cfg.burst_size; ++i) {
      Request r;
      r.arrival_s = when;
      r.input_len = rng.UniformInt(cfg.burst_input_lo, cfg.burst_input_hi);
      r.output_len = cfg.burst_output;
      r.cached_prefix_len =
          std::min(cfg.burst_cached_prefix, std::max<int64_t>(r.input_len - 1, 0));
      reqs.push_back(r);
    }
  }
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });
  for (size_t i = 0; i < reqs.size(); ++i) reqs[i].id = static_cast<int>(i);
  return reqs;
}

void AssignPriorities(Rng& rng, std::vector<Request>& workload,
                      const std::vector<double>& weights) {
  FI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FI_CHECK_GE(w, 0.0);
    total += w;
  }
  FI_CHECK_GT(total, 0.0);
  for (auto& r : workload) {
    double u = rng.NextDouble() * total;
    int level = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) {
        level = static_cast<int>(i);
        break;
      }
    }
    r.priority = level;
  }
}

void AssignAcceptance(Rng& rng, std::vector<Request>& workload, double lo, double hi) {
  FI_CHECK_LE(lo, hi);
  for (auto& r : workload) {
    r.accept_prob = lo == hi ? lo : rng.Uniform(lo, hi);
  }
}

std::vector<int64_t> SampleLengths(Rng& rng, LengthDist dist, int batch, int64_t mean_len) {
  std::vector<int64_t> lens(static_cast<size_t>(batch), 0);
  switch (dist) {
    case LengthDist::kConstant:
      for (auto& l : lens) l = mean_len;
      break;
    case LengthDist::kUniform:
      // The paper's uniform setting spans [mean/2, mean].
      for (auto& l : lens) l = rng.UniformInt(mean_len / 2, mean_len);
      break;
    case LengthDist::kSkewed: {
      const auto z = ZipfLengths(rng, batch, static_cast<double>(mean_len), 1.2, 16);
      for (size_t i = 0; i < lens.size(); ++i) lens[i] = z[i];
      break;
    }
  }
  return lens;
}

}  // namespace flashinfer::serving
