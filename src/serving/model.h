// Transformer model descriptions for end-to-end serving simulation.
//
// The serving engine charges each step a GEMM cost (projections + MLP +
// lm-head, roofline over the device) and an attention cost (from the real
// scheduler plans); the model spec supplies the shapes. Presets match the
// models used in the paper's evaluation.
#pragma once

#include <cstdint>
#include <string>

#include "util/float_types.h"

namespace flashinfer::serving {

struct ModelSpec {
  std::string name;
  int num_layers = 32;
  int num_qo_heads = 32;
  int num_kv_heads = 8;
  int head_dim = 128;
  int64_t d_model = 4096;
  int64_t ffn_dim = 14336;
  int64_t vocab = 128256;
  /// Tensor-parallel degree (number of GPUs; divides weights and KV heads).
  int tensor_parallel = 1;
  DType weight_dtype = DType::kF16;

  /// Dense (non-attention) parameter count: QKV/O projections + gated MLP +
  /// LM head.
  double DenseParams() const noexcept {
    const double qkv = static_cast<double>(d_model) *
                       (static_cast<double>(num_qo_heads) * head_dim +
                        2.0 * num_kv_heads * head_dim);
    const double oproj = static_cast<double>(num_qo_heads) * head_dim * d_model;
    const double mlp = 3.0 * static_cast<double>(d_model) * ffn_dim;
    return num_layers * (qkv + oproj + mlp) + static_cast<double>(d_model) * vocab;
  }

  /// GEMM FLOPs to process one token through all layers.
  double GemmFlopsPerToken() const noexcept { return 2.0 * DenseParams(); }

  /// Weight bytes resident per GPU.
  double WeightBytesPerGpu() const noexcept {
    return DenseParams() * DTypeBytes(weight_dtype) / tensor_parallel;
  }

  /// KV-cache bytes per token per GPU for a given KV dtype.
  double KvBytesPerToken(DType kv_dtype) const noexcept {
    return 2.0 * num_layers * num_kv_heads * head_dim * DTypeBytes(kv_dtype) /
           tensor_parallel;
  }
};

/// Llama 3.1 8B Instruct (1xH100 in the paper).
ModelSpec Llama31_8B();
/// Llama 3.1 70B Instruct (4xH100 in the paper).
ModelSpec Llama31_70B(int tensor_parallel = 4);
/// Vicuna 13B (StreamingLLM experiments, Sec. 4.3).
ModelSpec Vicuna13B();

}  // namespace flashinfer::serving
