#include "serving/backends.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/tile_heuristics.h"
#include "kvcache/ragged.h"
#include "runtime/scheduler.h"
#include "util/check.h"

namespace flashinfer::serving {

BackendConfig FlashInferBackend() {
  BackendConfig b;
  b.name = "FlashInfer v0.2";
  return b;
}

BackendConfig TritonBackend() {
  BackendConfig b;
  b.name = "Triton v3.0";
  // SGLang's Triton decode kernels use a static split-K heuristic: better
  // than no splitting on long sequences, but not sequence-length aware
  // (Appendix G.3 shows it between the two FlashInfer scheduler modes).
  b.scheduler = SchedulerKind::kFixedSplit;
  b.kernel_time_scale = 1.30;
  b.host_us_per_step = 220.0;
  b.fused_rope = false;
  b.composable = false;
  return b;
}

BackendConfig FlashAttentionBackend() {
  BackendConfig b;
  b.name = "FlashAttention";
  b.scheduler = SchedulerKind::kNaive;
  b.kernel_time_scale = 1.0;
  b.fused_rope = false;
  b.head_fusion = false;
  b.composable = false;
  return b;
}

BackendConfig VllmDefaultBackend() {
  BackendConfig b;
  b.name = "vLLM default";
  b.scheduler = SchedulerKind::kNaive;
  b.kernel_time_scale = 1.05;
  b.host_us_per_req = 14.0;  // Python-side array bookkeeping (Appendix G.4).
  b.host_us_per_step = 250.0;
  b.composable = false;
  return b;
}

namespace {

/// Builds sequential fake page tables for a batch of KV lengths (the
/// estimator needs structure, not data).
std::vector<sparse::RequestKv> FakePages(const std::vector<int64_t>& kv_lens, int page_size,
                                         const std::vector<int64_t>& pos_offsets) {
  std::vector<sparse::RequestKv> kv(kv_lens.size());
  int64_t next_page = 0;
  for (size_t r = 0; r < kv_lens.size(); ++r) {
    const int64_t len = kv_lens[r];
    const int64_t pages = (len + page_size - 1) / page_size;
    kv[r].pages.resize(static_cast<size_t>(pages));
    std::iota(kv[r].pages.begin(), kv[r].pages.end(), next_page);
    next_page += pages;
    kv[r].last_page_len =
        len == 0 ? 0 : static_cast<int>(len - (pages - 1) * page_size);
    kv[r].pos_offset = pos_offsets.empty() ? 0 : pos_offsets[r];
  }
  return kv;
}

/// Prices a plan without executing any math: walks every CTA queue, charges
/// the per-item roofline cost, and list-schedules the CTA times.
gpusim::SimReport PricePlan(const gpusim::DeviceSpec& dev, const AttentionParams& p,
                            const KernelConfig& cfg, const Plan& plan, DType kv_dtype,
                            double kv_l2_fraction = 0.0) {
  const int kvb = DTypeBytes(kv_dtype);
  auto eff = EfficiencyModel(dev, cfg, p.head_dim, kvb);
  const auto occ = OccupancyModel(dev, cfg, p.head_dim, kvb);
  const auto shape = ResidencyModel(dev, occ, plan.NumCtas());
  eff.mem *= shape.mem_scale;

  gpusim::SimReport report;
  report.num_ctas = plan.NumCtas();
  report.cta_time_us.reserve(plan.cta_queues.size());
  for (const auto& queue : plan.cta_queues) {
    gpusim::CtaCost cost;
    for (const auto& item : queue) {
      const int rows = p.bsr->RowsInBlock(item.block_row);
      const int64_t kv_tokens = item.kv_end - item.kv_begin;
      auto wc =
          AttentionWorkItemCost(rows, kv_tokens, p.head_dim, kvb, false, item.dest >= 0);
      if (kv_l2_fraction > 0.0) {
        const double kv_bytes = static_cast<double>(kv_tokens) * 2.0 * p.head_dim * kvb;
        const double to_l2 = kv_bytes * kv_l2_fraction;
        wc.hbm_bytes -= to_l2;
        wc.l2_bytes += to_l2;
      }
      cost.Charge(dev, eff, wc, kvb, shape.slots);
    }
    report.cta_time_us.push_back(cost.time_us);
    report.total_hbm_bytes += cost.total.hbm_bytes;
    report.total_l2_bytes += cost.total.l2_bytes;
    report.total_tensor_flops += cost.total.tensor_flops;
    report.total_cuda_flops += cost.total.cuda_flops;
  }
  report.time_us =
      gpusim::SimExecutor::Makespan(report.cta_time_us, shape.slots) + dev.kernel_launch_us;

  if (!plan.rmap.Empty()) {
    // Contraction kernel: merge tasks strided over SMs.
    const int num_tasks = static_cast<int>(plan.rmap.tasks.size());
    const int ctas = std::min(num_tasks, dev.num_sms);
    std::vector<double> merge_times(static_cast<size_t>(ctas), 0.0);
    for (int t = 0; t < num_tasks; ++t) {
      const auto& task = plan.rmap.tasks[static_cast<size_t>(t)];
      gpusim::WorkCost wc;
      wc.hbm_bytes = static_cast<double>(task.count) * (p.head_dim + 1) * 4.0 +
                     static_cast<double>(p.head_dim) * 2.0;
      wc.cuda_flops = static_cast<double>(task.count) * (2.0 * p.head_dim + 8.0);
      merge_times[static_cast<size_t>(t % ctas)] += gpusim::WorkItemTimeUs(
          dev, eff, wc, kvb, dev.num_sms, gpusim::kMergeRowOverheadUs);
      report.total_hbm_bytes += wc.hbm_bytes;
      report.total_cuda_flops += wc.cuda_flops;
    }
    report.time_us += gpusim::SimExecutor::Makespan(merge_times, dev.num_sms) +
                      dev.kernel_launch_us;
  }
  return report;
}

/// Schedules `p` with the backend's policy and prices the plan, composing
/// the caller's cross-request L2 reuse fraction with intra-batch tile reuse.
gpusim::SimReport PlanAndPrice(const gpusim::DeviceSpec& dev, const BackendConfig& backend,
                               const AttentionParams& p, const KernelConfig& cfg,
                               double extra_l2_fraction) {
  const int num_ctas = dev.num_sms;  // Persistent grid, k = 1.
  Plan plan;
  switch (backend.scheduler) {
    case SchedulerKind::kBalanced:
      plan = MakeBalancedPlan(p, cfg, num_ctas, int64_t{1} << 40);
      break;
    case SchedulerKind::kNaive:
      plan = MakeNaivePlan(p, cfg);
      break;
    case SchedulerKind::kFixedSplit:
      plan = MakeFixedSplitPlan(p, cfg, num_ctas, 4, int64_t{1} << 40);
      break;
  }
  const double auto_l2 = IntraBatchKvReuseFraction(p);
  const double l2_fraction = 1.0 - (1.0 - extra_l2_fraction) * (1.0 - auto_l2);
  auto report = PricePlan(dev, p, cfg, plan, backend.kv_dtype, l2_fraction);
  report.time_us *= backend.kernel_time_scale;
  return report;
}

/// Prices one single-format attention launch over (qo_lens, kv_lens).
gpusim::SimReport PriceSingleFormat(const gpusim::DeviceSpec& dev,
                                    const BackendConfig& backend, const AttnSimInput& in,
                                    const std::vector<int64_t>& qo_lens,
                                    const std::vector<int64_t>& kv_lens,
                                    const std::vector<int64_t>& pos_offsets,
                                    int tile_q_override = 0) {
  FI_CHECK_EQ(qo_lens.size(), kv_lens.size());
  const int g = in.num_qo_heads / in.num_kv_heads;
  const int64_t total_q = std::accumulate(qo_lens.begin(), qo_lens.end(), int64_t{0});
  const double avg_fused =
      qo_lens.empty() ? 1.0
                      : static_cast<double>(total_q) / static_cast<double>(qo_lens.size()) *
                            (backend.head_fusion ? g : 1);

  KernelConfig cfg = SelectKernelConfig(dev, avg_fused, in.head_dim,
                                        DTypeBytes(backend.kv_dtype),
                                        /*sparse=*/!in.force_dense);
  cfg.head_fusion = backend.head_fusion;
  if (tile_q_override > 0) cfg.tile_q = tile_q_override;
  if (in.tile_q_override > 0) cfg.tile_q = in.tile_q_override;
  if (in.force_template == 2) cfg.tmpl = gpusim::TemplateGen::kFA2;
  if (in.force_template == 3) cfg.tmpl = gpusim::TemplateGen::kFA3;

  // Fused-row indptr and BSR.
  std::vector<int64_t> fused_lens(qo_lens.size());
  for (size_t i = 0; i < qo_lens.size(); ++i) {
    fused_lens[i] = qo_lens[i] * (backend.head_fusion ? g : 1);
  }
  const auto fused_indptr = BuildIndptr(fused_lens);
  const auto kv = FakePages(kv_lens, in.page_size, pos_offsets);
  const auto bsr = sparse::BuildBatchBsr(fused_indptr, kv, in.page_size, cfg.tile_q);

  AttentionParams p;
  p.bsr = &bsr;
  p.qo_indptr = BuildIndptr(qo_lens);
  p.kv_len = kv_lens;
  p.num_qo_heads = in.num_qo_heads;
  p.num_kv_heads = in.num_kv_heads;
  p.head_dim = in.head_dim;
  p.head_fusion = backend.head_fusion;
  p.variant.causal = in.causal;  // Enables causal work trimming in planning.

  return PlanAndPrice(dev, backend, p, cfg, in.kv_l2_fraction);
}

/// Fused-row boundary between the compute-bound ("large") and
/// bandwidth-bound ("small") tile classes: rows at or above it fill a
/// high-TileComputeFactor tile on their own; rows below it want the memory
/// parallelism of small tiles.
constexpr int64_t kPackedClassRows = 64;
/// Cross-class contention tax: the persistent packed grid co-schedules the
/// bandwidth-bound class with the compute-bound class, so the shorter class
/// mostly hides behind the longer — but they share L2, scheduler slots, and
/// the memory subsystem, so a fraction of the shorter class's time surfaces.
constexpr double kPackedContention = 0.35;

/// PackInfer-style packed-tile pricing (BackendConfig::packed_tiles).
///
/// The single-format path picks ONE query tile from the batch-average fused
/// length; on heterogeneous batches that average represents nobody, and the
/// whole launch pays the compromise. Packed mode instead:
///   1. splits requests into a compute-bound class (fused rows >=
///      kPackedClassRows) and a bandwidth-bound class (everything else);
///   2. prices each class through the real scheduler at its own tile — the
///      small class at the smallest high-occupancy tile covering its average
///      fused length (floored at 16: a degenerate 1-row tile forfeits the
///      MMA lanes entirely), the large class at its naturally selected big
///      tile;
///   3. combines the classes as one persistent launch that packs both tile
///      shapes into the same grid: they stress different rooflines, so the
///      shorter class hides behind the longer modulo kPackedContention, and
///      the launch overhead is paid once.
///
/// The cost model prices work at request granularity, so intra-tile row
/// sharing between requests is not modeled separately — its effect is
/// absorbed by the per-class tile geometry (a dense-MMA surrogate would
/// overcharge each shared tile by the full tile rows per member's KV).
///
/// Returns nullopt when the batch is homogeneous (either class empty): the
/// average heuristic already fits, and the caller keeps the baseline path.
std::optional<gpusim::SimReport> TryPricePackedTiles(const gpusim::DeviceSpec& dev,
                                                     const BackendConfig& backend,
                                                     const AttnSimInput& in) {
  const int g = backend.head_fusion ? in.num_qo_heads / in.num_kv_heads : 1;
  std::vector<int64_t> small_qo, small_kv, large_qo, large_kv;
  int64_t small_fused = 0;
  for (size_t i = 0; i < in.qo_lens.size(); ++i) {
    const int64_t qo = in.qo_lens[i];
    const int64_t fused = qo * g;
    if (fused >= kPackedClassRows) {
      large_qo.push_back(qo);
      large_kv.push_back(in.kv_lens[i]);
    } else {
      small_qo.push_back(qo);
      small_kv.push_back(in.kv_lens[i]);
      small_fused += fused;
    }
  }
  if (small_qo.empty() || large_qo.empty()) return std::nullopt;

  const double small_avg =
      static_cast<double>(small_fused) / static_cast<double>(small_qo.size());
  int small_tile = 16;
  while (small_tile < 64 && small_tile < small_avg) small_tile *= 2;

  AttnSimInput flat = in;
  flat.groups.clear();
  const auto small_report = PriceSingleFormat(dev, backend, flat, small_qo, small_kv,
                                              /*pos_offsets=*/{}, small_tile);
  const auto large_report =
      PriceSingleFormat(dev, backend, flat, large_qo, large_kv, /*pos_offsets=*/{});

  gpusim::SimReport out;
  out.num_ctas = std::max(small_report.num_ctas, large_report.num_ctas);
  out.cta_time_us = small_report.cta_time_us;
  out.cta_time_us.insert(out.cta_time_us.end(), large_report.cta_time_us.begin(),
                         large_report.cta_time_us.end());
  out.total_hbm_bytes = small_report.total_hbm_bytes + large_report.total_hbm_bytes;
  out.total_l2_bytes = small_report.total_l2_bytes + large_report.total_l2_bytes;
  out.total_tensor_flops =
      small_report.total_tensor_flops + large_report.total_tensor_flops;
  out.total_cuda_flops = small_report.total_cuda_flops + large_report.total_cuda_flops;
  const double hi = std::max(small_report.time_us, large_report.time_us);
  const double lo = std::min(small_report.time_us, large_report.time_us);
  // One persistent launch: the second class's launch overhead is not paid
  // (each sub-report charged dev.kernel_launch_us, scaled by the backend).
  out.time_us = std::max(
      hi, hi + lo * kPackedContention - dev.kernel_launch_us * backend.kernel_time_scale);
  return out;
}

}  // namespace

gpusim::SimReport SimulateMaskedAttention(const gpusim::DeviceSpec& dev,
                                          const BackendConfig& backend,
                                          const AttnSimInput& in,
                                          const sparse::BsrMatrix& bsr,
                                          const std::vector<int64_t>& qo_lens,
                                          const std::vector<int64_t>& kv_lens) {
  FI_CHECK_EQ(qo_lens.size(), kv_lens.size());
  // The mask dictates the tile geometry: Br must match how it was lowered.
  KernelConfig cfg = SelectKernelConfig(dev, /*avg_fused_rows=*/bsr.br, in.head_dim,
                                        DTypeBytes(backend.kv_dtype), /*sparse=*/true);
  cfg.head_fusion = backend.head_fusion;
  cfg.tile_q = bsr.br;
  if (in.force_template == 2) cfg.tmpl = gpusim::TemplateGen::kFA2;
  if (in.force_template == 3) cfg.tmpl = gpusim::TemplateGen::kFA3;

  AttentionParams p;
  p.bsr = &bsr;
  p.qo_indptr = BuildIndptr(qo_lens);
  p.kv_len = kv_lens;
  p.num_qo_heads = in.num_qo_heads;
  p.num_kv_heads = in.num_kv_heads;
  p.head_dim = in.head_dim;
  p.head_fusion = backend.head_fusion;
  p.variant.causal = false;  // The mask IS the structure; nothing to trim.

  return PlanAndPrice(dev, backend, p, cfg, in.kv_l2_fraction);
}

gpusim::SimReport SimulateBatchAttention(const gpusim::DeviceSpec& dev,
                                         const BackendConfig& backend,
                                         const AttnSimInput& in) {
  if (!backend.composable || in.groups.empty()) {
    // Packed tiles engage only on heterogeneous batches with no bench
    // overrides pinning the geometry; otherwise the baseline path runs
    // bit-identically. Like a real plan() heuristic, the packed layout is
    // priced against the single-tile layout and the cheaper one runs — on
    // mixes where the compromise tile happens to fit, packed mode ties the
    // baseline instead of regressing it.
    auto report = PriceSingleFormat(dev, backend, in, in.qo_lens, in.kv_lens,
                                    /*pos_offsets=*/{});
    if (backend.packed_tiles && in.groups.empty() && in.tile_q_override == 0 &&
        in.qo_lens.size() > 1) {
      if (auto packed = TryPricePackedTiles(dev, backend, in);
          packed.has_value() && packed->time_us < report.time_us) {
        return *packed;
      }
    }
    return report;
  }

  // --- Composable path (Sec. 3.1.2): both levels run as ONE persistent
  // launch — level 0 processes each shared prefix once per group at
  // Br = group rows, level 1 processes the unique suffixes at small Br, and
  // the balanced scheduler interleaves all their chunks over the same grid
  // (the paper merges attention and contraction stages into one persistent
  // kernel). We therefore price a single combined batch: one "request" per
  // group (prefix KV, concatenated member rows) plus one per real request
  // (suffix KV only).
  const int g = in.num_qo_heads / in.num_kv_heads;
  std::vector<int64_t> combined_qo, combined_kv, combined_pos;
  int max_group_rows = 1;
  for (const auto& group : in.groups) {
    int64_t rows = 0;
    for (int m : group.members) rows += in.qo_lens[static_cast<size_t>(m)];
    combined_qo.push_back(rows);
    combined_kv.push_back(group.prefix_len);
    combined_pos.push_back(0);
    max_group_rows =
        std::max<int>(max_group_rows, static_cast<int>(rows) * (backend.head_fusion ? g : 1));
  }
  std::vector<int64_t> l1_kv(in.kv_lens);
  std::vector<int64_t> l1_pos(in.kv_lens.size(), 0);
  for (const auto& group : in.groups) {
    for (int m : group.members) {
      l1_kv[static_cast<size_t>(m)] = in.kv_lens[static_cast<size_t>(m)] - group.prefix_len;
      l1_pos[static_cast<size_t>(m)] = group.prefix_len;
    }
  }
  combined_qo.insert(combined_qo.end(), in.qo_lens.begin(), in.qo_lens.end());
  combined_kv.insert(combined_kv.end(), l1_kv.begin(), l1_kv.end());
  combined_pos.insert(combined_pos.end(), l1_pos.begin(), l1_pos.end());

  AttnSimInput flat = in;
  flat.groups.clear();
  // The prefix level's larger Br bounds the tile (and hence occupancy).
  auto report = PriceSingleFormat(dev, backend, flat, combined_qo, combined_kv, combined_pos,
                                  std::min(max_group_rows, 128));

  // --- Extra contraction: merge level-0 and level-1 states per fused row. --
  {
    int64_t fused_rows = 0;
    for (const auto& group : in.groups) {
      for (int m : group.members) {
        fused_rows += in.qo_lens[static_cast<size_t>(m)] * g;
      }
    }
    fused_rows *= in.num_kv_heads;
    gpusim::WorkCost wc;
    wc.hbm_bytes = static_cast<double>(fused_rows) * (in.head_dim + 1) * 4.0 * 2.0 +
                   static_cast<double>(fused_rows) * in.head_dim * 2.0;
    wc.cuda_flops = static_cast<double>(fused_rows) * (2.0 * in.head_dim + 8.0);
    gpusim::KernelEfficiency eff;  // Bandwidth-bound merge kernel.
    report.time_us += wc.hbm_bytes / (dev.hbm_gbps * eff.mem * 1e3);
    report.total_hbm_bytes += wc.hbm_bytes;
    report.total_cuda_flops += wc.cuda_flops;
  }
  return report;
}

}  // namespace flashinfer::serving
