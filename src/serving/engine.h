// Continuous-batching LLM serving engine over simulated time (Sec. 4.1).
//
// The engine replays an Orca-style continuous-batching policy: arrived
// requests are admitted and prefilled (prefill steps run alone, as in
// SGLang); running requests decode one token per step. Each step is charged
// GEMM time (roofline over the model's dense layers), attention time (the
// backend's scheduler priced by the kernel cost model, once per step and
// reused across layers exactly as the paper's plan cache allows),
// tensor-parallel all-reduce time, and host overhead. Parallel generation
// (the OpenAI "n" parameter, Sec. 4.4) forks n branches sharing the prompt
// KV through the paged cache; composable backends decode those groups with
// the two-level shared-prefix format.
//
// Speculative decoding (src/spec/): with SpecDecodeConfig enabled, each
// decode step becomes draft + verify — the draft model proposes a token tree
// per branch, the target verifies every tree token in one batched step whose
// attention is priced through the real tree-attention kernel path (ancestor
// mask -> BsrFromDenseMask -> scheduler -> cost model), accepted prefixes
// commit, and rejected tree branches roll their KV back through PagedKVCache
// refcounts.
//
// The engine is *steppable*: a cluster driver (src/cluster/) owns N replicas
// and interleaves event-driven time across them with Admit()/StepTo(), so
// routing decisions can observe each replica's live load. Run() remains a
// thin Reset+Admit+Drain wrapper, step-for-step identical on arrival-sorted
// workloads (every in-repo generator). One deliberate difference: Admit()
// keeps the queue sorted by arrival, so an unsorted workload is admitted in
// arrival order instead of head-of-line blocking behind a late first entry
// as the old monolithic loop did.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "kvcache/paged.h"
#include "serving/backends.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/workload.h"
#include "spec/spec.h"
#include "spec/verify.h"
#include "util/rng.h"

namespace flashinfer::serving {

struct EngineConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  BackendConfig backend;
  int page_size = 16;
  /// HBM per GPU, GB (weights + KV must fit).
  double hbm_capacity_gb = 80.0;
  /// Max concurrently running branches.
  int max_running = 512;
  /// Per-step prefill token budget.
  int64_t max_prefill_tokens = 8192;
  /// NVLink all-reduce bandwidth per GPU, GB/s (tensor parallel).
  double nvlink_gbps = 450.0;
  /// Speculative decoding (off by default: vanilla one-token decode steps).
  spec::SpecDecodeConfig spec;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg);

  /// Simulates the full workload and returns latency metrics. Equivalent to
  /// Reset() + Admit() for every request + Drain().
  ServingMetrics Run(const std::vector<Request>& workload);

  // --- Incremental (steppable) API -----------------------------------------
  //
  // A step is atomic: once started it runs to completion even if it crosses
  // the caller's deadline, exactly like a launched GPU iteration that a
  // router cannot preempt.

  /// Clears all queues, clocks, and accumulated metrics.
  void Reset();

  /// Enqueues a request. `r.arrival_s` is honored: the request is not
  /// admitted into a batch before its arrival time. Requests may be admitted
  /// in any order; the queue is kept sorted by arrival.
  void Admit(const Request& r);

  /// Simulated time at which the next step would start: the current clock if
  /// work is runnable, the earliest pending arrival if the engine is idle,
  /// +infinity when fully drained.
  double NextEventTime() const noexcept;

  /// Executes every step whose start time is <= `deadline_s`; returns the
  /// number of *work* steps executed (admission+prefill, decode, or spec
  /// verify). Idle skips — jumping the clock to the next arrival — advance
  /// time but are NOT counted; they are reported via
  /// ServingMetrics::num_idle_skips / total_idle_s so tokens-per-step
  /// statistics are not diluted by waiting.
  int64_t StepTo(double deadline_s);

  /// Runs until all admitted work has completed.
  void Drain();

  /// True when no pending or running work remains.
  bool Finished() const noexcept { return pending_.empty() && running_.empty(); }

  /// Metrics accumulated since the last Reset().
  const ServingMetrics& Metrics() const noexcept { return metrics_; }

  /// Current simulated time, seconds.
  double Now() const noexcept { return now_s_; }

  // --- Load introspection (router signals) ---------------------------------

  /// Total prompt+output tokens of requests admitted but not yet prefilled.
  int64_t QueuedTokens() const noexcept;

  /// Output tokens still to be decoded by running branches.
  int64_t RunningTokens() const noexcept;

  /// KV tokens currently charged against the budget. Vanilla engines charge
  /// tokens as they are emitted (and can therefore soft-over-commit); spec
  /// engines reserve each branch's full output at admission so multi-token
  /// verify commits can never exhaust the fork/rollback page pool.
  int64_t KvTokensInUse() const noexcept { return kv_tokens_in_use_; }

  /// KV token capacity implied by the memory budget.
  int64_t KvTokenBudget() const noexcept { return kv_token_budget_; }

  /// Live pages in the speculative-decoding KV accounting cache (0 when spec
  /// decode is disabled, and 0 after Drain() when nothing leaked through the
  /// fork/rollback paths).
  int64_t SpecKvLivePages() const noexcept {
    return spec_kv_ ? spec_kv_->num_live_pages() : 0;
  }

 private:
  struct Branch {
    int request_id = 0;
    int group = -1;            // Parallel-generation group id, -1 if alone.
    int64_t prefix_len = 0;    // Shared prompt tokens (group != -1).
    int64_t kv_len = 0;        // Current KV length (incl. shared prefix).
    int64_t remaining = 0;     // Output tokens still to emit.
    double last_emit_s = 0.0;
    double accept_prob = 0.0;  // Spec decode: draft acceptance probability.
    int spec_seq = -1;         // Spec decode: sequence id in spec_kv_.
  };

  /// What one engine iteration did.
  enum class StepKind { kNone, kIdle, kWork };

  /// Executes one engine iteration (admission+prefill, decode/spec-verify,
  /// or idle skip). kNone when there is nothing left to do.
  StepKind StepOnce();

  /// One speculative decode step: draft tree, verify through the tree
  /// kernels, sample acceptance, commit + roll back KV.
  void SpecDecodeStep();
  /// KV fork/extend/rollback for one branch's verification outcome.
  void SpecCommitKv(Branch& b, int accepted, int64_t commit);
  /// Releases a finished branch's KV charge (and its spec sequence).
  void FinishBranch(const Branch& b);

  /// Roofline GEMM time for one forward pass of `m` over `tokens` rows
  /// (weight-streaming floor vs compute); used for target, prefill, verify,
  /// and draft passes alike.
  double GemmUs(const ModelSpec& m, int64_t tokens) const;
  double CommStepUs(int64_t tokens) const;
  double AttnStepUs(const std::vector<Branch>& batch, const std::vector<int64_t>& qo_lens,
                    bool decode) const;
  double SpecVerifyAttnUs() const;
  AttnSimInput HeadGeometry() const;

  EngineConfig cfg_;
  int64_t kv_token_budget_ = 0;
  /// Per-branch admission reserve: decode slack (8) plus, under spec decode,
  /// one tree of transient verification KV.
  int64_t slack_tokens_ = 8;
  std::unique_ptr<spec::DraftTree> tree_;  // Null when spec decode is off.
  /// Caches the lowered tree-mask BSR and tile choice across verify steps
  /// (tree shape and head geometry never change after construction).
  std::unique_ptr<spec::VerifyPricer> verify_pricer_;

  // Steppable state (reset by Reset()).
  std::deque<Request> pending_;
  std::vector<Branch> running_;
  std::map<int, std::pair<int, int64_t>> group_refs_;
  ServingMetrics metrics_;
  double now_s_ = 0.0;
  int64_t kv_tokens_in_use_ = 0;
  int next_group_ = 0;
  Rng rng_;  // Acceptance sampling; reseeded by Reset().
  /// Structural paged KV (1 head x 1 dim: page accounting, not values) that
  /// the spec path forks/extends/truncates so rollback exercises the real
  /// refcount machinery. Null when spec decode is off.
  std::unique_ptr<PagedKVCache> spec_kv_;
};

}  // namespace flashinfer::serving
