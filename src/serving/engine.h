// Continuous-batching LLM serving engine over simulated time (Sec. 4.1).
//
// Every engine iteration is a *StepPlan*: a batch former assembles one
// unified batch — each running branch contributes its decode token (or, with
// spec decode enabled, its draft-tree verify tokens) and each in-flight
// prefill contributes a prompt *chunk* of at most
// EngineConfig::prefill_chunk_tokens — and an executor prices that plan as a
// single step. The resulting heterogeneous qo_lens go through ONE
// SimulateBatchAttention call per step (the balanced scheduler absorbs the
// mixed query tiles; naive/fixed-split backends pay for them — Tables 6/7
// extended to serving), GEMM time (roofline over the model's dense layers),
// tensor-parallel all-reduce time, and host overhead are charged once per
// mixed step, and the one plan is reused across layers exactly as the
// paper's plan cache allows. A chunked request keeps partial-prefill
// progress in per-request state across steps and emits its first token only
// when its last chunk lands, so a long prompt never head-of-line-blocks the
// running decodes. Chunking defaults on; `prefill_chunk_tokens = 0` restores
// the legacy prefill-alone loop (whole prompts, prefill steps run with no
// decode tokens, as in early SGLang) — pinned by equivalence tests and kept
// as the baseline the chunked-prefill bench ablates against.
//
// Parallel generation (the OpenAI "n" parameter, Sec. 4.4) forks n branches
// sharing the prompt KV through the paged cache; composable backends decode
// those groups with the two-level shared-prefix format.
//
// Speculative decoding (src/spec/): with SpecDecodeConfig enabled, the
// decode half of each plan becomes draft + verify — the draft model proposes
// a token tree per branch, the target verifies every tree token in the same
// step (attention priced through the real tree-attention kernel path:
// ancestor mask -> BsrFromDenseMask -> scheduler -> cost model), accepted
// prefixes commit, and rejected tree branches roll their KV back through
// PagedKVCache refcounts. Verify tokens coexist with in-flight prefill
// chunks in one mixed step instead of alternating exclusively.
//
// KV pressure (src/kvcache/ two-tier pool): with PreemptionConfig enabled,
// an arrived request that does not fit the device KV budget preempts running
// branches of strictly lower priority (lowest first, then youngest) instead
// of queuing behind them. A victim's KV either swaps to a host-memory tier
// (PCIe transfer charged into the steps it serializes with) or is dropped
// and later *recomputed* through the chunked-prefill path — chosen per
// victim by a cost estimate whose crossover the kv-pressure bench sweeps:
// short contexts recompute nearly free under the weight-streaming floor,
// long contexts are compute-bound and swap wins. Admission reserves each
// branch's full output KV up front under preemption, so the device budget
// is never violated; a request whose KV need exceeds the *total* budget is
// rejected with a metric (the pre-preemption engine aborted on a loud
// FI_CHECK when such a request wedged the arrival queue).
//
// The engine is *steppable*: a cluster driver (src/cluster/) owns N replicas
// and interleaves event-driven time across them with Admit()/StepTo(), so
// routing decisions can observe each replica's live load — including the
// un-prefilled remainder of partially chunked requests (QueuedTokens()).
// Run() remains a thin Reset+Admit+Drain wrapper, step-for-step identical on
// arrival-sorted workloads (every in-repo generator); Admit() keeps the
// queue sorted by arrival, so unsorted admission orders behave identically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "gpusim/copystream.h"
#include "kvcache/paged.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serving/backends.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/workload.h"
#include "spec/spec.h"
#include "spec/verify.h"
#include "util/rng.h"

namespace flashinfer::serving {

/// How the batch former spends each step's prefill budget when chunking is
/// on (`prefill_chunk_tokens > 0`).
enum class BatchPolicy {
  /// Cap each step's total prefill work at one chunk's worth
  /// (min(prefill_chunk_tokens, max_prefill_tokens)): every mixed step stays
  /// short, so running decodes see a bounded ITL hit. Default.
  kDecodePriority,
  /// Pack chunks from as many queued prefills as fit under
  /// max_prefill_tokens per step: faster TTFT drain under prefill backlogs
  /// at the cost of longer mixed steps (worse ITL tail).
  kThroughputPriority,
};

/// How a preempted branch's KV context is rebuilt when it re-enters.
enum class RestorePolicy {
  /// Always swap the host copy back over the simulated PCIe link.
  kSwap,
  /// Always drop the KV at eviction and re-prefill the whole context
  /// (prompt + generated tokens) through the chunked-prefill path.
  kRecompute,
  /// Per victim, pick whichever the cost model estimates cheaper: swap time
  /// (two transfers + fixed latency) vs the *marginal* recompute time —
  /// chunk GEMM rides under the weight-streaming floor the step pays
  /// anyway, so short contexts recompute nearly for free while long ones
  /// are compute-bound and swap wins.
  kAuto,
};

/// Priority preemption over a two-tier KV cache. When an arrived request
/// does not fit the device KV budget, the engine evicts running branches of
/// strictly lower priority (lowest first, then youngest) instead of letting
/// the arrival queue wedge. Victims either swap their KV to a host-memory
/// tier or drop it for later recompute; they re-enter through AdmitArrived
/// as swap transfers or prompt chunks, re-reserving their KV charge, so the
/// device budget is never violated.
struct PreemptionConfig {
  bool enabled = false;
  /// Host (offload tier) KV capacity, GB.
  double host_capacity_gb = 16.0;
  /// Device<->host swap bandwidth, GB/s (PCIe-class link).
  double swap_gbps = 24.0;
  /// Fixed per-transfer latency, microseconds (DMA setup, pinning).
  double swap_latency_us = 100.0;
  /// Per-page overhead, microseconds: paged KV is scattered, so a transfer
  /// is block-granular gather/scatter copies (vLLM's swap_blocks), not one
  /// contiguous DMA. This is what makes short contexts cheaper to recompute
  /// than to swap.
  double swap_page_overhead_us = 20.0;
  RestorePolicy restore = RestorePolicy::kAuto;
  /// Route swap traffic through per-direction async copy streams
  /// (gpusim::CopyStream) instead of serializing each transfer into the next
  /// executed step. A swap-out stops blocking anything; a swap-in gates only
  /// its own branch, which re-enters once the H2D transfer completes while
  /// other work keeps stepping — the DMA time overlaps compute and is
  /// metered by ServingMetrics::swap_hidden_ms / SwapOverlapEfficiency().
  /// Off by default: the legacy serialize-into-step model stays
  /// bit-identical.
  bool overlap_swap = false;
  /// Host-tier page codec: quantize (INT8/FP8, per-page scale/zero) and/or
  /// LZ4-compress pages on eviction so `host_capacity_gb` measures *stored*
  /// bytes and the tier's effective capacity multiplies. Restores decode the
  /// pages; decode time is priced into the restore transfer (CopyStream path
  /// included) and the per-page quantization MSE lands in ServingMetrics as
  /// the accuracy proxy. Default-disabled: the raw two-tier path is
  /// bit-identical to the pre-codec engine.
  KvCodecConfig host_codec;
  /// Codec throughput for pricing encode (evict) / decode (restore) time,
  /// GB/s over the page's *logical* bytes. Decode is cheaper than encode
  /// (no min/max scan, no match search).
  double codec_encode_gbps = 32.0;
  double codec_decode_gbps = 48.0;
};

struct EngineConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  BackendConfig backend;
  int page_size = 16;
  /// HBM per GPU, GB (weights + KV must fit).
  double hbm_capacity_gb = 80.0;
  /// Max concurrently running branches.
  int max_running = 512;
  /// Per-step prefill token budget.
  int64_t max_prefill_tokens = 8192;
  /// Max prompt tokens one request contributes to a single step. A longer
  /// prompt is split into chunks that ride along with running decodes in
  /// mixed batches. 0 restores the legacy prefill-alone loop: whole prompts,
  /// prefill steps with no decode tokens, decodes stalling behind them.
  int64_t prefill_chunk_tokens = 2048;
  /// Mixed-batch formation policy (ignored when prefill_chunk_tokens == 0).
  BatchPolicy batch_policy = BatchPolicy::kDecodePriority;
  /// NVLink all-reduce bandwidth per GPU, GB/s (tensor parallel).
  double nvlink_gbps = 450.0;
  /// Speculative decoding (off by default: vanilla one-token decode steps).
  spec::SpecDecodeConfig spec;
  /// Priority preemption + host KV tier (off by default).
  PreemptionConfig preemption;
  /// Disaggregated prefill/decode serving (off by default: zero behavior
  /// change). When set, a branch that finishes prefill does NOT enter the
  /// local decode loop: it parks in an exportable pool that a cluster driver
  /// drains with MigratableUnits()/ExtractMigratable(), shipping its KV to a
  /// decode-pool replica over a per-replica-pair CopyStream. The first token
  /// (TTFT) is still paid here — migration moves the *decode* phase only.
  bool export_at_first_token = false;
  /// Event tracing (off by default: zero events, zero behavior change — the
  /// enabled/disabled metric equivalence is pinned by tests). When enabled,
  /// the engine records request/step/KV events into a bounded ring buffer in
  /// simulated time; export via obs::WritePerfettoFile(TraceEvents()).
  obs::TraceConfig trace;
  /// Live telemetry plane (off by default: no registry, no SLO monitor, zero
  /// behavior change — pinned by the same bit-identical-metrics test
  /// pattern). When enabled, the engine publishes windowed counters, gauges,
  /// and (tenant, priority)-labeled latency sketches into a MetricsRegistry
  /// every step, and evaluates telemetry.slos as burn-rate monitors whose
  /// alerts land in the trace (when tracing is also on).
  obs::TelemetryConfig telemetry;
};

/// One decode branch crossing a replica boundary in a migration unit: the
/// scheduler state a decode-pool replica needs to resume it mid-stream.
/// `last_emit_s` carries over, so the migration latency surfaces as exactly
/// one inter-token gap on the destination's ITL distribution.
struct MigratedBranch {
  int request_id = 0;
  int64_t prefix_len = 0;   // Shared prompt tokens (grouped units).
  int64_t kv_len = 0;       // KV tokens to ship (incl. shared prefix).
  int64_t remaining = 0;    // Output tokens still to emit.
  double accept_prob = 0.0;
  int priority = 0;
  int tenant = -1;
  double arrival_s = 0.0;
  double last_emit_s = 0.0;  // First-token time on the prefill replica.
  int64_t stall_steps = 0;
};

/// A finished-prefill request (all sibling branches of one parallel-n group)
/// ready to migrate prefill-replica -> decode-replica. The unit is the
/// migration granule: siblings share prefix KV pages, so they ship together
/// and the shared prefix crosses the link once.
struct MigrationUnit {
  int64_t unit_id = 0;
  std::vector<MigratedBranch> branches;
  bool grouped = false;        // Parallel-n: branches share prefix KV.
  int64_t prefix_tokens = 0;   // Shared prompt tokens (grouped only).
  int64_t kv_tokens = 0;       // Unique KV tokens on the wire (prefix once).
  int64_t pages = 0;           // KV pages on the wire (ExportKv page lists).
  /// Device KV reservation the unit holds on its source / requires on its
  /// destination (suffixes + slack + remaining-output reserve + prefix once).
  int64_t kv_charge = 0;
  double export_s = 0.0;       // When the unit became exportable (source clock).
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg);

  /// Simulates the full workload and returns latency metrics. Equivalent to
  /// Reset() + Admit() for every request + Drain().
  ServingMetrics Run(const std::vector<Request>& workload);

  // --- Incremental (steppable) API -----------------------------------------
  //
  // A step is atomic: once started it runs to completion even if it crosses
  // the caller's deadline, exactly like a launched GPU iteration that a
  // router cannot preempt. A chunked prefill is NOT atomic across steps: its
  // progress state persists, so a StepTo deadline can land between chunks.

  /// Clears all queues, clocks, and accumulated metrics.
  void Reset();

  /// Enqueues a request. `r.arrival_s` is honored: the request is not
  /// admitted into a batch before its arrival time. Requests may be admitted
  /// in any order; the queue is kept sorted by (arrival, id), so even
  /// simultaneous arrivals schedule independently of the Admit() call order.
  void Admit(const Request& r);

  /// Simulated time at which the next step would start: the current clock if
  /// work is runnable (running branches or partially prefilled requests),
  /// the earliest pending arrival if the engine is idle, +infinity when
  /// fully drained.
  double NextEventTime() const noexcept;

  /// Executes every step whose start time is <= `deadline_s`; returns the
  /// number of *work* steps executed (any step with prefill chunks, decode,
  /// or spec-verify tokens). Idle skips — jumping the clock to the next
  /// arrival — advance time but are NOT counted; they are reported via
  /// ServingMetrics::num_idle_skips / total_idle_s so tokens-per-step
  /// statistics are not diluted by waiting.
  int64_t StepTo(double deadline_s);

  /// Runs until all admitted work has completed.
  void Drain();

  /// True when no pending, prefilling, running, preempted, or exportable
  /// work remains. Exportable units count as work: a prefill-pool replica is
  /// not drained until the cluster driver has migrated (or retained) them.
  bool Finished() const noexcept {
    return pending_.empty() && prefilling_.empty() && running_.empty() &&
           preempted_.empty() && exportable_.empty();
  }

  /// Metrics accumulated since the last Reset().
  const ServingMetrics& Metrics() const noexcept { return metrics_; }

  /// Current simulated time, seconds.
  double Now() const noexcept { return now_s_; }

  // --- Load introspection (router signals) ---------------------------------

  /// Prompt+output tokens not yet prefilled: whole pending requests plus the
  /// un-prefilled remainder (and full output) of partially chunked requests,
  /// so a router sees the true backlog of a replica mid-chunk.
  int64_t QueuedTokens() const noexcept;

  /// Output tokens still to be decoded by running branches.
  int64_t RunningTokens() const noexcept;

  /// KV tokens currently charged against the budget. Vanilla engines charge
  /// tokens as they are emitted (and can therefore soft-over-commit); spec
  /// engines reserve each branch's full output at admission so multi-token
  /// verify commits can never exhaust the fork/rollback page pool. Chunked
  /// requests charge their full prompt at admission (the pages are committed
  /// to the request even while chunks are in flight).
  int64_t KvTokensInUse() const noexcept { return kv_tokens_in_use_; }

  /// KV token capacity implied by the memory budget.
  int64_t KvTokenBudget() const noexcept { return kv_token_budget_; }

  /// Per-direction copy streams (overlap-swap mode; idle/empty otherwise).
  const gpusim::CopyStream& CopyD2H() const noexcept { return copy_d2h_; }
  const gpusim::CopyStream& CopyH2D() const noexcept { return copy_h2d_; }

  /// Host-tier KV tokens held by swapped-out (preempted) branches.
  int64_t HostKvTokensInUse() const noexcept { return host_kv_tokens_in_use_; }
  /// Host-tier KV token capacity (0 when preemption is disabled).
  int64_t HostKvTokenBudget() const noexcept { return host_kv_token_budget_; }
  /// Branches currently evicted and awaiting restore.
  int64_t PreemptedBranches() const noexcept {
    return static_cast<int64_t>(preempted_.size());
  }

  /// Live pages in the structural KV accounting cache (active under spec
  /// decode and/or preemption; 0 otherwise, and 0 after Drain() when nothing
  /// leaked through the fork/rollback/evict paths). Device tier only — host
  /// pages held by swapped-out branches are tracked by HostKvTokensInUse.
  int64_t SpecKvLivePages() const noexcept {
    return spec_kv_ ? spec_kv_->num_live_pages() : 0;
  }

  // --- Disaggregated migration (export_at_first_token mode) -----------------
  //
  // Source-side protocol (prefill replica): the cluster driver polls
  // MigratableUnits(), picks a destination per unit, then either
  // ExtractMigratable() (the unit leaves this engine: KV charge and
  // structural pages released, accounting exact) or RetainMigratable() (no
  // decode-pool replica can take it: the unit falls back into the local
  // decode loop, charge untouched). Destination side: CanAcceptMigration()
  // gates on KV headroom + run slots; AdmitMigratedUnit() charges the KV and
  // parks the unit behind a transfer-gated zero-token prefill entry that
  // becomes runnable at the link transfer's end time, exactly like an
  // overlap-swap restore.

  /// Units parked in the exportable pool (cheap emptiness probe).
  int64_t MigratableUnitCount() const noexcept {
    return static_cast<int64_t>(exportable_.size());
  }
  /// Snapshot of every exportable unit (ids stable until extract/retain).
  std::vector<MigrationUnit> MigratableUnits() const;
  /// Removes the unit from this engine, releasing its device KV charge and
  /// structural pages (page count measured through PagedKVCache::ExportKv on
  /// the way out). The returned unit is what crosses the wire.
  MigrationUnit ExtractMigratable(int64_t unit_id);
  /// Fallback when no decode replica can accept the unit: its branches
  /// re-enter the local running set (KV charge was never released).
  void RetainMigratable(int64_t unit_id);
  /// Whether this engine can admit the unit right now (device KV headroom
  /// for the unit's full reservation + run slots for all its branches).
  bool CanAcceptMigration(const MigrationUnit& u) const noexcept;
  /// Admits a migrated unit. `xfer` is the unit's transfer on the
  /// inter-replica link (timed by the cluster's per-pair CopyStream): the
  /// branches resume decoding only once now >= xfer.end_s, and the transfer
  /// interval is metered against this replica's step windows into
  /// migration_hidden_ms (overlapped) vs migration_stall_ms (exposed).
  void AdmitMigratedUnit(const MigrationUnit& u,
                         const gpusim::CopyStream::Transfer& xfer);
  /// Accounting stream holding recorded inter-replica transfer intervals
  /// (destination side); idle/empty when no migrations were admitted.
  const gpusim::CopyStream& CopyMigrate() const noexcept { return copy_migrate_; }

  // --- Tracing --------------------------------------------------------------

  /// The recorder, or nullptr when EngineConfig::trace is disabled.
  const obs::TraceRecorder* Trace() const noexcept { return trace_.get(); }

  /// Copy of the recorded events since the last Reset(), oldest first (empty
  /// when tracing is disabled).
  std::vector<obs::TraceEvent> TraceEvents() const {
    return trace_ ? trace_->Events() : std::vector<obs::TraceEvent>{};
  }

  // --- Telemetry ------------------------------------------------------------

  /// The live metrics registry, or nullptr when EngineConfig::telemetry is
  /// disabled. Scrape with PrometheusText(Now()) / JsonSnapshot(Now()).
  const obs::MetricsRegistry* Telemetry() const noexcept { return telemetry_.get(); }

  /// The SLO burn-rate monitor, or nullptr when telemetry is disabled or no
  /// specs were configured.
  const obs::SloMonitor* Slo() const noexcept { return slo_.get(); }

 private:
  struct Branch {
    int request_id = 0;
    int group = -1;            // Parallel-generation group id, -1 if alone.
    int64_t prefix_len = 0;    // Shared prompt tokens (group != -1).
    int64_t kv_len = 0;        // Current KV length (incl. shared prefix).
    int64_t remaining = 0;     // Output tokens still to emit.
    double last_emit_s = 0.0;
    int64_t stall_steps = 0;   // Work steps survived without emitting.
    double accept_prob = 0.0;  // Spec decode: draft acceptance probability.
    int spec_seq = -1;         // Structural KV: sequence id in spec_kv_.
    int priority = 0;          // Preemption: request priority.
    int tenant = -1;           // Telemetry: owning tenant (-1 = unassigned).
    double arrival_s = 0.0;    // Preemption: victim tie-break (youngest).
    double seg_start_s = 0.0;  // Trace: start of the current decode segment.
  };

  /// Admitted request whose prompt is (possibly partially) prefilled; lives
  /// in prefilling_ until its last chunk lands and it becomes Branch(es).
  /// Restores reuse this machinery: `restore` entries either re-prefill a
  /// preempted branch's whole context (recompute: to_compute = the context
  /// to rebuild) or ride one step as a zero-token transfer chunk (swap: the
  /// branch must not decode while its KV is still in flight over PCIe). The
  /// synthetic req carries the branch's remaining output so QueuedTokens
  /// sees the backlog; completion resumes `branch` instead of emitting a
  /// first token.
  struct PrefillProgress {
    Request req;
    int64_t computed = 0;    // Uncached prompt tokens already prefilled.
    int64_t to_compute = 0;  // Total uncached prompt tokens.
    int chunks_used = 0;     // Chunks scheduled so far (metrics).
    bool restore = false;    // Restore of a preempted branch.
    bool swap_restore = false;  // Swap-in transfer (vs recompute).
    Branch branch;           // Valid when restore == true.
    /// Inbound migration (disaggregated mode): a whole unit rides one
    /// zero-token transfer-gated entry; completion materializes
    /// import_branches instead of emitting a first token (TTFT was paid on
    /// the prefill replica).
    bool migrate = false;
    std::vector<Branch> import_branches;  // Valid when migrate == true.
    double phase_start_s = 0.0;  // Trace: admission / restore-start time.
    /// Overlap-swap mode: completion time of the in-flight H2D transfer.
    /// The entry is ineligible for the step plan until now >= ready_s (its
    /// KV is still on the PCIe link); 0 for everything else.
    double ready_s = 0.0;
  };

  /// A branch evicted under KV pressure, waiting to re-enter.
  struct Preempted {
    Branch branch;
    bool swapped = false;   // Host copy exists: restore = swap-in transfer.
    int64_t reserve = 0;    // Device KV charge to re-acquire on restore.
    int64_t order = 0;      // FIFO tie-break within a priority level.
    double evicted_s = 0.0;  // Trace: eviction time (preempted-span begin).
    /// Overlap-swap mode: when the D2H swap-out finishes on the copy stream.
    /// A swap-in of this branch cannot be issued before its host copy
    /// exists; 0 in legacy mode (the swap-out already serialized).
    double swapout_done_s = 0.0;
    /// Realized stored/logical byte ratio of this branch's encoded host
    /// pages, captured at evict time — the swap-in prices the *stored*
    /// bytes it will actually move (1.0 with the codec off).
    double stored_ratio = 1.0;
  };

  /// One step's assembled work: which prefill chunks run and whether the
  /// running branches decode (or spec-verify) alongside them.
  struct StepPlan {
    struct Chunk {
      size_t prefill_idx = 0;  // Index into prefilling_.
      int64_t tokens = 0;      // Uncached prompt tokens this step.
      bool completes = false;  // Last chunk: emits the request's first token.
    };
    std::vector<Chunk> chunks;
    bool decode = false;        // Running branches contribute tokens.
    int64_t prefill_tokens = 0; // Sum of chunk tokens.
  };

  /// What one engine iteration did.
  enum class StepKind { kNone, kIdle, kWork };

  /// Executes one engine iteration: admission, plan formation, execution —
  /// or an idle skip. kNone when there is nothing left to do.
  StepKind StepOnce();

  /// Moves arrived pending requests into prefilling_ under the KV and
  /// max_running gates. Legacy mode (prefill_chunk_tokens == 0) additionally
  /// applies the per-step prefill token budget here, because admission and
  /// prefill-step formation are fused in the prefill-alone loop.
  ///
  /// Preemption hooks: preempted branches restore first (priority order,
  /// re-reserving their KV charge); an arrived request that cannot ever fit
  /// (need > total budget) is *rejected* with a metric instead of wedging
  /// the queue; an arrived request blocked by running branches of strictly
  /// lower priority preempts them (preempt-or-queue).
  void AdmitArrived();

  /// Restores preempted branches (priority desc, then eviction order) while
  /// the device budget and a run slot allow: swap-ins re-enter running_ and
  /// serialize their PCIe transfer into the next step; recompute restores
  /// re-enter prefilling_ as chunked context rebuilds.
  void RestorePreempted();

  /// Evicts lowest-priority-then-youngest running branches of priority
  /// strictly below `r.priority` until `need` fits the device budget.
  /// Returns false (evicting nothing) when even evicting every eligible
  /// victim would not make room. Grouped (parallel-n) branches share prefix
  /// KV across siblings and are never chosen.
  bool TryPreemptFor(const Request& r, int64_t need);

  /// Evicts one running branch: releases its device KV charge and either
  /// swaps its KV to the host tier or drops it for recompute, per the
  /// restore policy's cost estimate.
  void PreemptBranch(size_t running_idx);

  /// Re-materializes a restored branch into running_.
  void ResumeBranch(const Branch& b);

  /// PCIe transfer time for `tokens` of KV scaled to `stored_ratio` of its
  /// logical bytes (the codec tier moves encoded bytes), microseconds.
  double SwapXferUs(int64_t tokens, double stored_ratio) const;
  /// Codec time over `tokens`' logical KV bytes at `gbps`, microseconds
  /// (0 with the codec off).
  double CodecUs(int64_t tokens, double gbps) const;
  /// Full swap-out price: D2H transfer of stored bytes + encode time.
  double SwapOutUs(int64_t tokens, double stored_ratio) const;
  /// Full swap-in price: H2D transfer of stored bytes + decode time.
  double SwapInUs(int64_t tokens, double stored_ratio) const;
  /// Stored/logical ratio estimate for pricing decisions made *before* the
  /// encode happens (kAuto crossover): the structural tier's observed ratio,
  /// worst-case bound before any eviction, 1.0 with the codec off.
  double CodecRatioEstimate() const;

  /// Estimated marginal cost of rebuilding `kv_len` context tokens via
  /// chunked prefill (GEMM above the weight-streaming floor the ride-along
  /// steps already pay, plus one attention pass over the rebuilt KV).
  double RecomputeEstimateUs(int64_t kv_len) const;

  /// Whether admission reserves each branch's full output KV up front (spec
  /// decode and preemption both require it: neither multi-token verify
  /// commits nor the preemption invariant tolerate decode over-commit).
  bool FullKvReserve() const noexcept {
    return cfg_.spec.enabled || cfg_.preemption.enabled;
  }

  /// Admission KV charge for `r` under the active reservation policy.
  int64_t KvNeed(const Request& r) const noexcept;

  /// Device KV charge a migration unit holds (source) or requires
  /// (destination): per branch its unique KV + decode slack + (full-reserve
  /// engines) the remaining-output reservation, plus the shared prefix once.
  int64_t UnitKvCharge(const MigrationUnit& u) const noexcept;

  // --- Trace emission (no-ops when tracing is disabled: one branch each). ---
  void TraceSpan(obs::TraceName n, double begin_s, double end_s, int32_t req,
                 int64_t a = 0, int64_t b = 0, int64_t c = 0) noexcept;
  void TraceInstant(obs::TraceName n, int32_t req, int64_t a = 0,
                    int64_t b = 0, int64_t c = 0) noexcept;
  void TraceCounter(obs::TraceName n, double v) noexcept;

  // --- Telemetry publication (no-ops when telemetry is disabled: every site
  // is gated on the telemetry_ pointer, mirroring the trace_ pattern). ------

  /// Cached per-(tenant, priority) instrument handles — registry lookups
  /// happen once per class, not once per sample.
  struct ClassSeries {
    obs::Counter* tokens = nullptr;  // fi_tokens_total
    obs::Sketch* ttft = nullptr;     // fi_ttft_ms
    obs::Sketch* itl = nullptr;      // fi_itl_ms
  };
  ClassSeries& SeriesFor(int tenant, int priority);
  /// Records one TTFT sample: per-class sketch + SLO monitor.
  void ObserveTtft(int tenant, int priority, double ms);
  /// Records committed output tokens + the ITL gap sample for one branch.
  void ObserveTokens(const Branch& b, int64_t tokens, double itl_ms);
  /// Publishes end-of-step gauges/counters and advances SLO alerting.
  void PublishStepTelemetry(int64_t step_output_tokens, int64_t prefill_tokens);

  /// Assembles the next step's unified batch from prefilling_ and running_.
  StepPlan FormStepPlan() const;

  /// Prices the plan as one step (single SimulateBatchAttention over the
  /// mixed qo_lens; GEMM/comm/host charged once), advances the clock, then
  /// commits decode tokens, chunk progress, and prefill completions.
  void ExecuteStepPlan(const StepPlan& plan);

  /// A completed prefill emits the request's first token and materializes
  /// its branch(es).
  void CompletePrefill(const Request& r);

  /// Vanilla decode commit: one token per running branch.
  void CommitDecode();
  /// Spec decode commit: sample acceptance, commit accepted+bonus tokens,
  /// roll rejected KV back.
  void CommitSpecDecode();
  /// KV fork/extend/rollback for one branch's verification outcome.
  void SpecCommitKv(Branch& b, int accepted, int64_t commit);
  /// Releases a finished branch's KV charge (and its spec sequence).
  void FinishBranch(const Branch& b);

  /// Roofline GEMM time for one forward pass of `m` over `tokens` rows
  /// (weight-streaming floor vs compute); used for target, prefill, verify,
  /// and draft passes alike.
  double GemmUs(const ModelSpec& m, int64_t tokens) const;
  double CommStepUs(int64_t tokens) const;
  /// Prices `in` through the backend's scheduler + cost model, one plan
  /// reused across layers, plus the unfused-RoPE pass when configured.
  double AttnLaunchUs(const AttnSimInput& in) const;
  double SpecVerifyAttnUs() const;
  AttnSimInput HeadGeometry() const;

  EngineConfig cfg_;
  int64_t kv_token_budget_ = 0;
  int64_t host_kv_token_budget_ = 0;
  /// Per-branch admission reserve: decode slack (8) plus, under spec decode,
  /// one tree of transient verification KV.
  int64_t slack_tokens_ = 8;
  std::unique_ptr<spec::DraftTree> tree_;  // Null when spec decode is off.
  /// Caches the lowered tree-mask BSR and tile choice across verify steps
  /// (tree shape and head geometry never change after construction).
  std::unique_ptr<spec::VerifyPricer> verify_pricer_;

  // Steppable state (reset by Reset()).
  std::deque<Request> pending_;
  std::deque<PrefillProgress> prefilling_;
  std::vector<Branch> running_;
  /// Evicted branches awaiting restore, sorted by (priority desc, order).
  std::deque<Preempted> preempted_;
  /// Finished-prefill units parked for migration (export_at_first_token
  /// mode). Branches here keep their KV charge and structural sequences
  /// alive — extraction releases both exactly; retention re-runs them.
  struct Exportable {
    int64_t unit_id = 0;
    std::vector<Branch> branches;
    bool grouped = false;
    int64_t prefix_tokens = 0;
    double export_s = 0.0;
  };
  std::deque<Exportable> exportable_;
  int64_t next_unit_id_ = 0;
  /// Wire-format snapshot of one exportable unit: unique KV tokens (shared
  /// prefix once) and the page count measured through ExportKv's real page
  /// lists when the structural cache exists (page-rounded arithmetic
  /// otherwise).
  MigrationUnit BuildUnitView(const Exportable& u) const;
  std::map<int, std::pair<int, int64_t>> group_refs_;
  ServingMetrics metrics_;
  double now_s_ = 0.0;
  int64_t kv_tokens_in_use_ = 0;
  int64_t host_kv_tokens_in_use_ = 0;
  /// Swap transfer time waiting to serialize into the next executed step
  /// (legacy mode only; overlap-swap routes through the copy streams).
  double pending_swap_us_ = 0.0;
  /// Async DMA engines for overlap-swap mode, one per PCIe direction.
  gpusim::CopyStream copy_d2h_;
  gpusim::CopyStream copy_h2d_;
  /// Inbound-migration accounting stream: externally-timed inter-replica
  /// transfer intervals recorded at AdmitMigratedUnit, metered against step
  /// windows for migration_hidden_ms. Empty outside disaggregated runs.
  gpusim::CopyStream copy_migrate_;
  int64_t next_preempt_order_ = 0;
  int next_group_ = 0;
  Rng rng_;  // Acceptance sampling; reseeded by Reset().
  /// Structural paged KV (1 head x 1 dim: page accounting, not values) that
  /// the spec path forks/extends/truncates and the preemption path
  /// evicts/restores, so rollback and swap exercise the real refcount and
  /// two-tier machinery. Null when both spec decode and preemption are off.
  std::unique_ptr<PagedKVCache> spec_kv_;
  /// Event recorder; null when EngineConfig::trace is disabled (every
  /// emission site is gated on this pointer).
  std::unique_ptr<obs::TraceRecorder> trace_;
  /// Live metrics registry + SLO monitor; null when telemetry is disabled
  /// (every publication site is gated on telemetry_).
  std::unique_ptr<obs::MetricsRegistry> telemetry_;
  std::unique_ptr<obs::SloMonitor> slo_;
  /// (tenant, priority) -> cached instrument handles, keyed by packed id.
  std::map<int64_t, ClassSeries> class_series_;
};

}  // namespace flashinfer::serving
