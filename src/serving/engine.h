// Continuous-batching LLM serving engine over simulated time (Sec. 4.1).
//
// The engine replays an Orca-style continuous-batching policy: arrived
// requests are admitted and prefilled (prefill steps run alone, as in
// SGLang); running requests decode one token per step. Each step is charged
// GEMM time (roofline over the model's dense layers), attention time (the
// backend's scheduler priced by the kernel cost model, once per step and
// reused across layers exactly as the paper's plan cache allows),
// tensor-parallel all-reduce time, and host overhead. Parallel generation
// (the OpenAI "n" parameter, Sec. 4.4) forks n branches sharing the prompt
// KV through the paged cache; composable backends decode those groups with
// the two-level shared-prefix format.
//
// The engine is *steppable*: a cluster driver (src/cluster/) owns N replicas
// and interleaves event-driven time across them with Admit()/StepTo(), so
// routing decisions can observe each replica's live load. Run() remains a
// thin Reset+Admit+Drain wrapper, step-for-step identical on arrival-sorted
// workloads (every in-repo generator). One deliberate difference: Admit()
// keeps the queue sorted by arrival, so an unsorted workload is admitted in
// arrival order instead of head-of-line blocking behind a late first entry
// as the old monolithic loop did.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "serving/backends.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/workload.h"

namespace flashinfer::serving {

struct EngineConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  BackendConfig backend;
  int page_size = 16;
  /// HBM per GPU, GB (weights + KV must fit).
  double hbm_capacity_gb = 80.0;
  /// Max concurrently running branches.
  int max_running = 512;
  /// Per-step prefill token budget.
  int64_t max_prefill_tokens = 8192;
  /// NVLink all-reduce bandwidth per GPU, GB/s (tensor parallel).
  double nvlink_gbps = 450.0;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg);

  /// Simulates the full workload and returns latency metrics. Equivalent to
  /// Reset() + Admit() for every request + Drain().
  ServingMetrics Run(const std::vector<Request>& workload);

  // --- Incremental (steppable) API -----------------------------------------
  //
  // A step is atomic: once started it runs to completion even if it crosses
  // the caller's deadline, exactly like a launched GPU iteration that a
  // router cannot preempt.

  /// Clears all queues, clocks, and accumulated metrics.
  void Reset();

  /// Enqueues a request. `r.arrival_s` is honored: the request is not
  /// admitted into a batch before its arrival time. Requests may be admitted
  /// in any order; the queue is kept sorted by arrival.
  void Admit(const Request& r);

  /// Simulated time at which the next step would start: the current clock if
  /// work is runnable, the earliest pending arrival if the engine is idle,
  /// +infinity when fully drained.
  double NextEventTime() const noexcept;

  /// Executes every step whose start time is <= `deadline_s`; returns the
  /// number of steps executed (admission+prefill, decode, or idle skip each
  /// count as one).
  int64_t StepTo(double deadline_s);

  /// Runs until all admitted work has completed.
  void Drain();

  /// True when no pending or running work remains.
  bool Finished() const noexcept { return pending_.empty() && running_.empty(); }

  /// Metrics accumulated since the last Reset().
  const ServingMetrics& Metrics() const noexcept { return metrics_; }

  /// Current simulated time, seconds.
  double Now() const noexcept { return now_s_; }

  // --- Load introspection (router signals) ---------------------------------

  /// Total prompt+output tokens of requests admitted but not yet prefilled.
  int64_t QueuedTokens() const noexcept;

  /// Output tokens still to be decoded by running branches.
  int64_t RunningTokens() const noexcept;

  /// KV tokens currently charged against the budget.
  int64_t KvTokensInUse() const noexcept { return kv_tokens_in_use_; }

  /// KV token capacity implied by the memory budget.
  int64_t KvTokenBudget() const noexcept { return kv_token_budget_; }

 private:
  struct Branch {
    int request_id = 0;
    int group = -1;            // Parallel-generation group id, -1 if alone.
    int64_t prefix_len = 0;    // Shared prompt tokens (group != -1).
    int64_t kv_len = 0;        // Current KV length (incl. shared prefix).
    int64_t remaining = 0;     // Output tokens still to emit.
    double last_emit_s = 0.0;
  };

  /// Executes one engine iteration (admission+prefill, decode, or idle skip).
  /// Returns false when there is nothing left to do.
  bool StepOnce();

  double GemmStepUs(int64_t tokens, bool decode) const;
  double CommStepUs(int64_t tokens) const;
  double AttnStepUs(const std::vector<Branch>& batch, const std::vector<int64_t>& qo_lens,
                    bool decode) const;

  EngineConfig cfg_;
  int64_t kv_token_budget_ = 0;

  // Steppable state (reset by Reset()).
  std::deque<Request> pending_;
  std::vector<Branch> running_;
  std::map<int, std::pair<int, int64_t>> group_refs_;
  ServingMetrics metrics_;
  double now_s_ = 0.0;
  int64_t kv_tokens_in_use_ = 0;
  int next_group_ = 0;
};

}  // namespace flashinfer::serving
