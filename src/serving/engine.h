// Continuous-batching LLM serving engine over simulated time (Sec. 4.1).
//
// Every engine iteration is a *StepPlan*: a batch former assembles one
// unified batch — each running branch contributes its decode token (or, with
// spec decode enabled, its draft-tree verify tokens) and each in-flight
// prefill contributes a prompt *chunk* of at most
// EngineConfig::prefill_chunk_tokens — and an executor prices that plan as a
// single step. The resulting heterogeneous qo_lens go through ONE
// SimulateBatchAttention call per step (the balanced scheduler absorbs the
// mixed query tiles; naive/fixed-split backends pay for them — Tables 6/7
// extended to serving), GEMM time (roofline over the model's dense layers),
// tensor-parallel all-reduce time, and host overhead are charged once per
// mixed step, and the one plan is reused across layers exactly as the
// paper's plan cache allows. A chunked request keeps partial-prefill
// progress in per-request state across steps and emits its first token only
// when its last chunk lands, so a long prompt never head-of-line-blocks the
// running decodes. Chunking defaults on; `prefill_chunk_tokens = 0` restores
// the legacy prefill-alone loop (whole prompts, prefill steps run with no
// decode tokens, as in early SGLang) — pinned by equivalence tests and kept
// as the baseline the chunked-prefill bench ablates against.
//
// Parallel generation (the OpenAI "n" parameter, Sec. 4.4) forks n branches
// sharing the prompt KV through the paged cache; composable backends decode
// those groups with the two-level shared-prefix format.
//
// Speculative decoding (src/spec/): with SpecDecodeConfig enabled, the
// decode half of each plan becomes draft + verify — the draft model proposes
// a token tree per branch, the target verifies every tree token in the same
// step (attention priced through the real tree-attention kernel path:
// ancestor mask -> BsrFromDenseMask -> scheduler -> cost model), accepted
// prefixes commit, and rejected tree branches roll their KV back through
// PagedKVCache refcounts. Verify tokens coexist with in-flight prefill
// chunks in one mixed step instead of alternating exclusively.
//
// The engine is *steppable*: a cluster driver (src/cluster/) owns N replicas
// and interleaves event-driven time across them with Admit()/StepTo(), so
// routing decisions can observe each replica's live load — including the
// un-prefilled remainder of partially chunked requests (QueuedTokens()).
// Run() remains a thin Reset+Admit+Drain wrapper, step-for-step identical on
// arrival-sorted workloads (every in-repo generator); Admit() keeps the
// queue sorted by arrival, so unsorted admission orders behave identically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "kvcache/paged.h"
#include "serving/backends.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/workload.h"
#include "spec/spec.h"
#include "spec/verify.h"
#include "util/rng.h"

namespace flashinfer::serving {

/// How the batch former spends each step's prefill budget when chunking is
/// on (`prefill_chunk_tokens > 0`).
enum class BatchPolicy {
  /// Cap each step's total prefill work at one chunk's worth
  /// (min(prefill_chunk_tokens, max_prefill_tokens)): every mixed step stays
  /// short, so running decodes see a bounded ITL hit. Default.
  kDecodePriority,
  /// Pack chunks from as many queued prefills as fit under
  /// max_prefill_tokens per step: faster TTFT drain under prefill backlogs
  /// at the cost of longer mixed steps (worse ITL tail).
  kThroughputPriority,
};

struct EngineConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  BackendConfig backend;
  int page_size = 16;
  /// HBM per GPU, GB (weights + KV must fit).
  double hbm_capacity_gb = 80.0;
  /// Max concurrently running branches.
  int max_running = 512;
  /// Per-step prefill token budget.
  int64_t max_prefill_tokens = 8192;
  /// Max prompt tokens one request contributes to a single step. A longer
  /// prompt is split into chunks that ride along with running decodes in
  /// mixed batches. 0 restores the legacy prefill-alone loop: whole prompts,
  /// prefill steps with no decode tokens, decodes stalling behind them.
  int64_t prefill_chunk_tokens = 2048;
  /// Mixed-batch formation policy (ignored when prefill_chunk_tokens == 0).
  BatchPolicy batch_policy = BatchPolicy::kDecodePriority;
  /// NVLink all-reduce bandwidth per GPU, GB/s (tensor parallel).
  double nvlink_gbps = 450.0;
  /// Speculative decoding (off by default: vanilla one-token decode steps).
  spec::SpecDecodeConfig spec;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg);

  /// Simulates the full workload and returns latency metrics. Equivalent to
  /// Reset() + Admit() for every request + Drain().
  ServingMetrics Run(const std::vector<Request>& workload);

  // --- Incremental (steppable) API -----------------------------------------
  //
  // A step is atomic: once started it runs to completion even if it crosses
  // the caller's deadline, exactly like a launched GPU iteration that a
  // router cannot preempt. A chunked prefill is NOT atomic across steps: its
  // progress state persists, so a StepTo deadline can land between chunks.

  /// Clears all queues, clocks, and accumulated metrics.
  void Reset();

  /// Enqueues a request. `r.arrival_s` is honored: the request is not
  /// admitted into a batch before its arrival time. Requests may be admitted
  /// in any order; the queue is kept sorted by (arrival, id), so even
  /// simultaneous arrivals schedule independently of the Admit() call order.
  void Admit(const Request& r);

  /// Simulated time at which the next step would start: the current clock if
  /// work is runnable (running branches or partially prefilled requests),
  /// the earliest pending arrival if the engine is idle, +infinity when
  /// fully drained.
  double NextEventTime() const noexcept;

  /// Executes every step whose start time is <= `deadline_s`; returns the
  /// number of *work* steps executed (any step with prefill chunks, decode,
  /// or spec-verify tokens). Idle skips — jumping the clock to the next
  /// arrival — advance time but are NOT counted; they are reported via
  /// ServingMetrics::num_idle_skips / total_idle_s so tokens-per-step
  /// statistics are not diluted by waiting.
  int64_t StepTo(double deadline_s);

  /// Runs until all admitted work has completed.
  void Drain();

  /// True when no pending, prefilling, or running work remains.
  bool Finished() const noexcept {
    return pending_.empty() && prefilling_.empty() && running_.empty();
  }

  /// Metrics accumulated since the last Reset().
  const ServingMetrics& Metrics() const noexcept { return metrics_; }

  /// Current simulated time, seconds.
  double Now() const noexcept { return now_s_; }

  // --- Load introspection (router signals) ---------------------------------

  /// Prompt+output tokens not yet prefilled: whole pending requests plus the
  /// un-prefilled remainder (and full output) of partially chunked requests,
  /// so a router sees the true backlog of a replica mid-chunk.
  int64_t QueuedTokens() const noexcept;

  /// Output tokens still to be decoded by running branches.
  int64_t RunningTokens() const noexcept;

  /// KV tokens currently charged against the budget. Vanilla engines charge
  /// tokens as they are emitted (and can therefore soft-over-commit); spec
  /// engines reserve each branch's full output at admission so multi-token
  /// verify commits can never exhaust the fork/rollback page pool. Chunked
  /// requests charge their full prompt at admission (the pages are committed
  /// to the request even while chunks are in flight).
  int64_t KvTokensInUse() const noexcept { return kv_tokens_in_use_; }

  /// KV token capacity implied by the memory budget.
  int64_t KvTokenBudget() const noexcept { return kv_token_budget_; }

  /// Live pages in the speculative-decoding KV accounting cache (0 when spec
  /// decode is disabled, and 0 after Drain() when nothing leaked through the
  /// fork/rollback paths).
  int64_t SpecKvLivePages() const noexcept {
    return spec_kv_ ? spec_kv_->num_live_pages() : 0;
  }

 private:
  struct Branch {
    int request_id = 0;
    int group = -1;            // Parallel-generation group id, -1 if alone.
    int64_t prefix_len = 0;    // Shared prompt tokens (group != -1).
    int64_t kv_len = 0;        // Current KV length (incl. shared prefix).
    int64_t remaining = 0;     // Output tokens still to emit.
    double last_emit_s = 0.0;
    int64_t stall_steps = 0;   // Work steps survived without emitting.
    double accept_prob = 0.0;  // Spec decode: draft acceptance probability.
    int spec_seq = -1;         // Spec decode: sequence id in spec_kv_.
  };

  /// Admitted request whose prompt is (possibly partially) prefilled; lives
  /// in prefilling_ until its last chunk lands and it becomes Branch(es).
  struct PrefillProgress {
    Request req;
    int64_t computed = 0;    // Uncached prompt tokens already prefilled.
    int64_t to_compute = 0;  // Total uncached prompt tokens.
    int chunks_used = 0;     // Chunks scheduled so far (metrics).
  };

  /// One step's assembled work: which prefill chunks run and whether the
  /// running branches decode (or spec-verify) alongside them.
  struct StepPlan {
    struct Chunk {
      size_t prefill_idx = 0;  // Index into prefilling_.
      int64_t tokens = 0;      // Uncached prompt tokens this step.
      bool completes = false;  // Last chunk: emits the request's first token.
    };
    std::vector<Chunk> chunks;
    bool decode = false;        // Running branches contribute tokens.
    int64_t prefill_tokens = 0; // Sum of chunk tokens.
  };

  /// What one engine iteration did.
  enum class StepKind { kNone, kIdle, kWork };

  /// Executes one engine iteration: admission, plan formation, execution —
  /// or an idle skip. kNone when there is nothing left to do.
  StepKind StepOnce();

  /// Moves arrived pending requests into prefilling_ under the KV and
  /// max_running gates. Legacy mode (prefill_chunk_tokens == 0) additionally
  /// applies the per-step prefill token budget here, because admission and
  /// prefill-step formation are fused in the prefill-alone loop.
  void AdmitArrived();

  /// Assembles the next step's unified batch from prefilling_ and running_.
  StepPlan FormStepPlan() const;

  /// Prices the plan as one step (single SimulateBatchAttention over the
  /// mixed qo_lens; GEMM/comm/host charged once), advances the clock, then
  /// commits decode tokens, chunk progress, and prefill completions.
  void ExecuteStepPlan(const StepPlan& plan);

  /// A completed prefill emits the request's first token and materializes
  /// its branch(es).
  void CompletePrefill(const Request& r);

  /// Vanilla decode commit: one token per running branch.
  void CommitDecode();
  /// Spec decode commit: sample acceptance, commit accepted+bonus tokens,
  /// roll rejected KV back.
  void CommitSpecDecode();
  /// KV fork/extend/rollback for one branch's verification outcome.
  void SpecCommitKv(Branch& b, int accepted, int64_t commit);
  /// Releases a finished branch's KV charge (and its spec sequence).
  void FinishBranch(const Branch& b);

  /// Roofline GEMM time for one forward pass of `m` over `tokens` rows
  /// (weight-streaming floor vs compute); used for target, prefill, verify,
  /// and draft passes alike.
  double GemmUs(const ModelSpec& m, int64_t tokens) const;
  double CommStepUs(int64_t tokens) const;
  /// Prices `in` through the backend's scheduler + cost model, one plan
  /// reused across layers, plus the unfused-RoPE pass when configured.
  double AttnLaunchUs(const AttnSimInput& in) const;
  double SpecVerifyAttnUs() const;
  AttnSimInput HeadGeometry() const;

  EngineConfig cfg_;
  int64_t kv_token_budget_ = 0;
  /// Per-branch admission reserve: decode slack (8) plus, under spec decode,
  /// one tree of transient verification KV.
  int64_t slack_tokens_ = 8;
  std::unique_ptr<spec::DraftTree> tree_;  // Null when spec decode is off.
  /// Caches the lowered tree-mask BSR and tile choice across verify steps
  /// (tree shape and head geometry never change after construction).
  std::unique_ptr<spec::VerifyPricer> verify_pricer_;

  // Steppable state (reset by Reset()).
  std::deque<Request> pending_;
  std::deque<PrefillProgress> prefilling_;
  std::vector<Branch> running_;
  std::map<int, std::pair<int, int64_t>> group_refs_;
  ServingMetrics metrics_;
  double now_s_ = 0.0;
  int64_t kv_tokens_in_use_ = 0;
  int next_group_ = 0;
  Rng rng_;  // Acceptance sampling; reseeded by Reset().
  /// Structural paged KV (1 head x 1 dim: page accounting, not values) that
  /// the spec path forks/extends/truncates so rollback exercises the real
  /// refcount machinery. Null when spec decode is off.
  std::unique_ptr<PagedKVCache> spec_kv_;
};

}  // namespace flashinfer::serving
