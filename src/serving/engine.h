// Continuous-batching LLM serving engine over simulated time (Sec. 4.1).
//
// The engine replays an Orca-style continuous-batching policy: arrived
// requests are admitted and prefilled (prefill steps run alone, as in
// SGLang); running requests decode one token per step. Each step is charged
// GEMM time (roofline over the model's dense layers), attention time (the
// backend's scheduler priced by the kernel cost model, once per step and
// reused across layers exactly as the paper's plan cache allows),
// tensor-parallel all-reduce time, and host overhead. Parallel generation
// (the OpenAI "n" parameter, Sec. 4.4) forks n branches sharing the prompt
// KV through the paged cache; composable backends decode those groups with
// the two-level shared-prefix format.
#pragma once

#include <cstdint>
#include <vector>

#include "serving/backends.h"
#include "serving/metrics.h"
#include "serving/model.h"
#include "serving/workload.h"

namespace flashinfer::serving {

struct EngineConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  BackendConfig backend;
  int page_size = 16;
  /// HBM per GPU, GB (weights + KV must fit).
  double hbm_capacity_gb = 80.0;
  /// Max concurrently running branches.
  int max_running = 512;
  /// Per-step prefill token budget.
  int64_t max_prefill_tokens = 8192;
  /// NVLink all-reduce bandwidth per GPU, GB/s (tensor parallel).
  double nvlink_gbps = 450.0;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig cfg);

  /// Simulates the full workload and returns latency metrics.
  ServingMetrics Run(const std::vector<Request>& workload);

  /// KV token capacity implied by the memory budget.
  int64_t KvTokenBudget() const noexcept { return kv_token_budget_; }

 private:
  struct Branch {
    int request_id = 0;
    int group = -1;            // Parallel-generation group id, -1 if alone.
    int64_t prefix_len = 0;    // Shared prompt tokens (group != -1).
    int64_t kv_len = 0;        // Current KV length (incl. shared prefix).
    int64_t remaining = 0;     // Output tokens still to emit.
    double last_emit_s = 0.0;
  };

  double GemmStepUs(int64_t tokens, bool decode) const;
  double CommStepUs(int64_t tokens) const;
  double AttnStepUs(const std::vector<Branch>& batch, const std::vector<int64_t>& qo_lens,
                    bool decode) const;

  EngineConfig cfg_;
  int64_t kv_token_budget_ = 0;
};

}  // namespace flashinfer::serving
