#include "serving/streaming_llm.h"

#include <algorithm>

namespace flashinfer::serving {

double StreamingLlmItlMs(const StreamingLlmConfig& cfg, StreamingRopeMode mode) {
  const auto& m = cfg.model;
  const auto& dev = cfg.device;
  const int64_t kv_len = cfg.sink_tokens + cfg.recent_window;

  // --- Dense (GEMM) decode cost: weight streaming bound at batch 1. -------
  const double gemm_us =
      std::max(m.GemmFlopsPerToken() / (dev.fp16_tflops * 0.72 * 1e6),
               m.WeightBytesPerGpu() / (dev.hbm_gbps * 0.9 * 1e3));

  // --- Attention cost through the real scheduler. --------------------------
  BackendConfig backend = mode == StreamingRopeMode::kFusedFlashInfer
                              ? FlashInferBackend()
                              : FlashAttentionBackend();
  AttnSimInput in;
  in.qo_lens = {1};
  in.kv_lens = {kv_len};
  in.num_qo_heads = m.num_qo_heads;
  in.num_kv_heads = m.num_kv_heads;
  in.head_dim = m.head_dim;
  auto attn = SimulateBatchAttention(dev, backend, in);
  double attn_us = attn.time_us * m.num_layers;

  double rope_us = 0.0;
  double host_us = 120.0;  // Engine step bookkeeping.
  if (mode == StreamingRopeMode::kFusedFlashInfer) {
    // Fused: the kernel rotates Q and K on the fly; only the in-kernel
    // transform flops are extra (already cheap), plus nothing else.
    host_us += 10.0;  // CUDA-graph replay.
  } else {
    // Unfused: a separate kernel rewrites every cached key with the new
    // cache-relative positions each step (read + write the K cache), plus
    // the Q rotation. Small elementwise kernels reach ~45% of HBM peak.
    const double k_cache_bytes =
        2.0 * static_cast<double>(kv_len) * m.num_kv_heads * m.head_dim * 2.0;
    const double q_bytes = 2.0 * m.num_qo_heads * m.head_dim * 2.0;
    rope_us = m.num_layers * ((k_cache_bytes + q_bytes) / (dev.hbm_gbps * 0.45 * 1e3) +
                              dev.kernel_launch_us);
    host_us += m.num_layers * 2.0;  // Per-layer launches (no graph).
  }
  if (mode == StreamingRopeMode::kOriginalImpl) {
    // The reference implementation additionally re-copies the rolling cache
    // and runs Python-side window bookkeeping every step (Sec. 4.3 calls it
    // "sub-optimal with unnecessary overheads").
    const double cache_copy_bytes =
        2.0 * 2.0 * static_cast<double>(kv_len) * m.num_kv_heads * m.head_dim * 2.0;
    rope_us += m.num_layers * (cache_copy_bytes / (dev.hbm_gbps * 0.45 * 1e3) +
                               dev.kernel_launch_us);
    host_us += 2500.0;
  }

  return (gemm_us + attn_us + rope_us + host_us) * 1e-3;
}

}  // namespace flashinfer::serving
