#include "serving/metrics.h"

#include <algorithm>
#include <cmath>

namespace flashinfer::serving {

double Percentile(const std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(idx));
  // Clamp: for p = 1.0, floating-point rounding in `idx` can push ceil() one
  // past the last order statistic.
  const size_t hi = std::min(static_cast<size_t>(std::ceil(idx)), sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(const std::vector<double>& values) { return Percentile(values, 0.5); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace flashinfer::serving
