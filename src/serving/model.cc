#include "serving/model.h"

namespace flashinfer::serving {

ModelSpec Llama31_8B() {
  ModelSpec m;
  m.name = "Llama 3.1 8B Instruct";
  m.num_layers = 32;
  m.num_qo_heads = 32;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.d_model = 4096;
  m.ffn_dim = 14336;
  m.vocab = 128256;
  m.tensor_parallel = 1;
  return m;
}

ModelSpec Llama31_70B(int tensor_parallel) {
  ModelSpec m;
  m.name = "Llama 3.1 70B Instruct";
  m.num_layers = 80;
  m.num_qo_heads = 64;
  m.num_kv_heads = 8;
  m.head_dim = 128;
  m.d_model = 8192;
  m.ffn_dim = 28672;
  m.vocab = 128256;
  m.tensor_parallel = tensor_parallel;
  return m;
}

ModelSpec Vicuna13B() {
  ModelSpec m;
  m.name = "Vicuna 13B";
  m.num_layers = 40;
  m.num_qo_heads = 40;
  m.num_kv_heads = 40;  // MHA.
  m.head_dim = 128;
  m.d_model = 5120;
  m.ffn_dim = 13824;
  m.vocab = 32000;
  m.tensor_parallel = 1;
  return m;
}

}  // namespace flashinfer::serving
