// StreamingLLM end-to-end loop (Sec. 4.3, Xiao et al. 2023).
//
// StreamingLLM keeps a constant-size KV cache: `sink` initial tokens plus a
// rolling window of `recent` tokens, and reassigns RoPE positions *within
// the cache* each step — which means every key must be re-rotated whenever
// the window slides. A fused RoPE+attention kernel (FusedRopeVariant) does
// the rotation on the fly from un-roped keys; the unfused baseline pays a
// separate kernel that rewrites the whole K cache every step. This module
// reproduces the paper's inter-token-latency comparison for the three
// implementations of Fig. 9 (top).
#pragma once

#include "gpusim/device.h"
#include "serving/backends.h"
#include "serving/model.h"

namespace flashinfer::serving {

enum class StreamingRopeMode {
  kFusedFlashInfer,       // RoPE fused into the attention kernel.
  kUnfusedFlashAttention, // Separate RoPE rewrite pass + FA attention.
  kOriginalImpl,          // Reference implementation with its extra overheads.
};

struct StreamingLlmConfig {
  ModelSpec model;
  gpusim::DeviceSpec device;
  int sink_tokens = 4;
  int recent_window = 2000;
  /// Tokens generated per measured conversation turn.
  int output_tokens = 256;
};

/// Simulated inter-token latency (ms/token) of StreamingLLM decoding at a
/// full cache, matching the paper's MT-Bench measurement regime (batch 1).
double StreamingLlmItlMs(const StreamingLlmConfig& cfg, StreamingRopeMode mode);

}  // namespace flashinfer::serving
