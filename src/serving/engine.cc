#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "spec/verify.h"
#include "util/check.h"

namespace flashinfer::serving {

namespace {

/// Prompt tokens the replica's prefix cache already holds, clamped so every
/// request prefill computes at least one token (it must emit a first token).
int64_t CachedTokens(const Request& r) {
  const int64_t max_cached = std::max<int64_t>(r.input_len - 1, 0);
  return std::min(std::max<int64_t>(r.cached_prefix_len, 0), max_cached);
}

}  // namespace

ServingEngine::ServingEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.spec.seed) {
  const double hbm_bytes = cfg_.hbm_capacity_gb * 1e9;
  const double weights = cfg_.model.WeightBytesPerGpu();
  const double kv_budget_bytes = (hbm_bytes - weights) * 0.9;  // Activation slack.
  FI_CHECK_GT(kv_budget_bytes, 0.0);
  kv_token_budget_ = static_cast<int64_t>(
      kv_budget_bytes / cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype));
  if (cfg_.spec.enabled) {
    tree_ = std::make_unique<spec::DraftTree>(cfg_.spec.tree);
    // Reserve one tree of transient verify KV per branch on top of the
    // decode slack, so a verify step can never blow the budget mid-flight.
    slack_tokens_ = 8 + tree_->Size();
    verify_pricer_ = std::make_unique<spec::VerifyPricer>(cfg_.device, cfg_.backend,
                                                          HeadGeometry(), *tree_);
  }
  Reset();
}

double ServingEngine::GemmUs(const ModelSpec& m, int64_t tokens) const {
  const auto& dev = cfg_.device;
  const double flops = m.GemmFlopsPerToken() * static_cast<double>(tokens) /
                       m.tensor_parallel;
  const double t_compute = flops / (dev.fp16_tflops * cfg_.backend.gemm_eff * 1e6);
  // Every step streams the weights once; small-batch decode is bound by it,
  // large prefills by compute.
  const double t_mem = m.WeightBytesPerGpu() / (dev.hbm_gbps * 0.9 * 1e3);
  return std::max(t_compute, t_mem);
}

double ServingEngine::CommStepUs(int64_t tokens) const {
  const int tp = cfg_.model.tensor_parallel;
  if (tp <= 1) return 0.0;
  // Two ring all-reduces per layer over the hidden activations.
  const double bytes_per_layer =
      2.0 * static_cast<double>(tokens) * cfg_.model.d_model * 2.0;
  const double ring = 2.0 * (tp - 1) / tp;
  return cfg_.model.num_layers * bytes_per_layer * ring / (cfg_.nvlink_gbps * 1e3) +
         cfg_.model.num_layers * 4.0;  // Per-layer collective launch latency.
}

AttnSimInput ServingEngine::HeadGeometry() const {
  AttnSimInput in;
  in.num_qo_heads = cfg_.model.num_qo_heads / cfg_.model.tensor_parallel;
  in.num_kv_heads =
      std::max(1, cfg_.model.num_kv_heads / cfg_.model.tensor_parallel);
  in.head_dim = cfg_.model.head_dim;
  in.page_size = cfg_.page_size;
  return in;
}

double ServingEngine::AttnStepUs(const std::vector<Branch>& batch,
                                 const std::vector<int64_t>& qo_lens, bool decode) const {
  if (batch.empty()) return 0.0;
  AttnSimInput in = HeadGeometry();
  in.qo_lens = qo_lens;
  in.kv_lens.reserve(batch.size());
  for (const auto& b : batch) in.kv_lens.push_back(b.kv_len);

  if (decode) {
    // Identify parallel-generation sibling groups (contiguous by
    // construction).
    std::map<int, AttnSimInput::Group> groups;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].group < 0) continue;
      auto& grp = groups[batch[i].group];
      grp.prefix_len = batch[i].prefix_len;
      grp.members.push_back(static_cast<int>(i));
    }
    for (auto& [id, grp] : groups) {
      if (grp.members.size() < 2 || grp.prefix_len < cfg_.page_size) continue;
      if (cfg_.backend.composable) in.groups.push_back(grp);
    }
    // Without composable-format support the engine materializes each
    // branch's prompt KV separately (Sec. 5.1: prior shared-prefix systems
    // need separate prefix/suffix cache management), so sibling reads hit
    // distinct HBM addresses — no L2 dedup credit for the single format.
  }

  auto report = SimulateBatchAttention(cfg_.device, cfg_.backend, in);
  if (std::getenv("FI_DEBUG_ATTN") != nullptr && decode) {
    int64_t total_kv = 0;
    for (int64_t l : in.kv_lens) total_kv += l;
    std::fprintf(stderr, "[attn] decode batch=%zu groups=%zu total_kv=%lld t=%.2fus\n",
                 in.qo_lens.size(), in.groups.size(), static_cast<long long>(total_kv),
                 report.time_us);
  }
  // Plan reuse across layers: one scheduler pass, num_layers launches.
  const int layers = cfg_.model.num_layers;
  double t = report.time_us * layers;
  if (!cfg_.backend.fused_rope) {
    // Separate RoPE kernel over this step's Q and K rows (bandwidth-bound,
    // small-kernel efficiency).
    int64_t tokens = 0;
    for (int64_t q : qo_lens) tokens += q;
    const double bytes = 2.0 *  // Read + write.
                         static_cast<double>(tokens) *
                         (in.num_qo_heads + in.num_kv_heads) * in.head_dim * 2.0;
    t += layers * (bytes / (cfg_.device.hbm_gbps * 0.45 * 1e3) +
                   cfg_.device.kernel_launch_us);
  }
  return t;
}

double ServingEngine::SpecVerifyAttnUs() const {
  AttnSimInput in = HeadGeometry();
  std::vector<int64_t> context_lens;
  context_lens.reserve(running_.size());
  for (const auto& b : running_) context_lens.push_back(b.kv_len);
  auto report = verify_pricer_->Price(context_lens);
  // Plan reuse across layers, exactly like AttnStepUs.
  const int layers = cfg_.model.num_layers;
  double t = report.time_us * layers;
  if (!cfg_.backend.fused_rope) {
    const int64_t tokens = static_cast<int64_t>(running_.size()) * tree_->Size();
    const double bytes = 2.0 * static_cast<double>(tokens) *
                         (in.num_qo_heads + in.num_kv_heads) * in.head_dim * 2.0;
    t += layers * (bytes / (cfg_.device.hbm_gbps * 0.45 * 1e3) +
                   cfg_.device.kernel_launch_us);
  }
  return t;
}

void ServingEngine::Reset() {
  pending_.clear();
  running_.clear();
  group_refs_.clear();
  metrics_ = ServingMetrics{};
  now_s_ = 0.0;
  kv_tokens_in_use_ = 0;
  next_group_ = 0;
  rng_ = Rng(cfg_.spec.seed);
  if (cfg_.spec.enabled) {
    metrics_.accepted_len_hist.assign(static_cast<size_t>(tree_->Depth()) + 1, 0);
    // Structural cache: 1 head x 1 dim (page accounting, not values). Sized
    // for the token budget plus page-rounding and transient-fork headroom.
    const int64_t pages =
        kv_token_budget_ / cfg_.page_size +
        static_cast<int64_t>(cfg_.max_running) * (2 + cfg_.spec.tree.branching) + 64;
    spec_kv_ = std::make_unique<PagedKVCache>(DType::kF16, /*num_kv_heads=*/1,
                                              /*head_dim=*/1, cfg_.page_size, pages);
  }
}

void ServingEngine::Admit(const Request& r) {
  // Keep the queue sorted by arrival (stable: ties go behind earlier admits),
  // so the admission loop below never stalls behind a later arrival.
  auto it = std::upper_bound(
      pending_.begin(), pending_.end(), r,
      [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });
  pending_.insert(it, r);
}

double ServingEngine::NextEventTime() const noexcept {
  if (!running_.empty()) return now_s_;
  if (!pending_.empty()) return std::max(now_s_, pending_.front().arrival_s);
  return std::numeric_limits<double>::infinity();
}

int64_t ServingEngine::StepTo(double deadline_s) {
  int64_t work_steps = 0;
  while (!Finished() && NextEventTime() <= deadline_s) {
    const StepKind kind = StepOnce();
    if (kind == StepKind::kNone) break;
    if (kind == StepKind::kWork) ++work_steps;
  }
  return work_steps;
}

void ServingEngine::Drain() { StepTo(std::numeric_limits<double>::infinity()); }

int64_t ServingEngine::QueuedTokens() const noexcept {
  int64_t total = 0;
  for (const auto& r : pending_) {
    total += r.input_len + r.output_len * std::max(1, r.parallel_n);
  }
  return total;
}

int64_t ServingEngine::RunningTokens() const noexcept {
  int64_t total = 0;
  for (const auto& b : running_) total += b.remaining;
  return total;
}

void ServingEngine::FinishBranch(const Branch& b) {
  if (b.group < 0) {
    // Release the branch's pages plus its admission slack (charged as
    // parallel_n * slack_tokens_ at admission; leaking it would shrink
    // effective capacity forever and can wedge admission on long-lived
    // engines).
    kv_tokens_in_use_ -= b.kv_len + slack_tokens_;
  } else {
    // Grouped branch: release the unique suffix; the shared prefix goes
    // with the last sibling.
    kv_tokens_in_use_ -= b.kv_len - b.prefix_len + slack_tokens_;
    auto& [refs, prefix] = group_refs_[b.group];
    if (--refs == 0) {
      kv_tokens_in_use_ -= prefix;
      group_refs_.erase(b.group);
    }
  }
  if (b.spec_seq >= 0) spec_kv_->DropSequence(b.spec_seq);
}

ServingEngine::StepKind ServingEngine::StepOnce() {
  if (Finished()) return StepKind::kNone;

  // Admit arrived requests within memory and token budget.
  std::vector<Request> admitted;
  int64_t prefill_tokens = 0;
  while (!pending_.empty() && pending_.front().arrival_s <= now_s_ &&
         static_cast<int>(running_.size() + admitted.size()) < cfg_.max_running) {
    const auto& r = pending_.front();
    const int64_t new_tokens = r.input_len - CachedTokens(r);
    // Token budget per prefill step; an oversized request still admits
    // alone (otherwise it would starve forever).
    if (!admitted.empty() &&
        prefill_tokens + new_tokens > cfg_.max_prefill_tokens) {
      break;
    }
    // Spec decode additionally reserves every branch's full output KV at
    // admission: verify steps commit several tokens at once with no
    // per-token budget gate, so the vanilla engine's soft over-commit would
    // become a hard structural-pool exhaustion mid-run. Reserving up front
    // trades admission aggressiveness for a guarantee that the fork/rollback
    // cache can never run out of pages.
    const int64_t spec_out =
        cfg_.spec.enabled ? r.parallel_n * std::max<int64_t>(r.output_len, 1) : 0;
    const int64_t need = r.input_len + r.parallel_n * slack_tokens_ + spec_out;
    if (kv_tokens_in_use_ + need > kv_token_budget_) break;
    kv_tokens_in_use_ += need;
    prefill_tokens += new_tokens;
    admitted.push_back(r);
    pending_.pop_front();
  }

  if (!admitted.empty()) {
    // --- Prefill step (runs alone, as in SGLang). ------------------------
    // A prefix-cache hit (Request::cached_prefix_len, set by the cluster
    // router layer) skips recomputation of the cached prompt tokens: the
    // attention query covers only the uncached suffix while KV spans the
    // full prompt — exactly the incremental "append" kernel shape. KV
    // memory is still charged for the full prompt (this model does not
    // dedup cached pages across requests).
    std::vector<Branch> prefill_batch;
    std::vector<int64_t> qo_lens;
    for (const auto& r : admitted) {
      Branch b;
      b.request_id = r.id;
      b.kv_len = r.input_len;
      prefill_batch.push_back(b);
      qo_lens.push_back(r.input_len - CachedTokens(r));
    }
    const double host_us = cfg_.backend.host_us_per_step +
                           cfg_.backend.host_us_per_req * admitted.size() +
                           // Prefill never replays graphs: per-layer launches.
                           cfg_.model.num_layers * 2.0;
    const double gemm_us = GemmUs(cfg_.model, prefill_tokens);
    const double attn_us = AttnStepUs(prefill_batch, qo_lens, /*decode=*/false);
    const double comm_us = CommStepUs(prefill_tokens);
    const double step_s = (host_us + gemm_us + attn_us + comm_us) * 1e-6;
    now_s_ += step_s;
    metrics_.total_gemm_ms += gemm_us * 1e-3;
    metrics_.total_attention_ms += attn_us * 1e-3;
    metrics_.total_host_ms += host_us * 1e-3;
    metrics_.total_comm_ms += comm_us * 1e-3;
    ++metrics_.num_steps;

    // First token of each admitted request is produced by its prefill.
    for (const auto& r : admitted) {
      metrics_.ttft_ms.push_back((now_s_ - r.arrival_s) * 1e3);
      ++metrics_.total_output_tokens;
      metrics_.total_prefill_tokens += r.input_len - CachedTokens(r);
      metrics_.cached_prefix_tokens += CachedTokens(r);
      const int group = r.parallel_n > 1 ? next_group_++ : -1;
      if (group >= 0) group_refs_[group] = {r.parallel_n, r.input_len};
      // Spec decode: materialize the prompt KV structurally; parallel
      // branches fork it (retained pages) instead of re-owning it.
      int prefix_seq = -1;
      if (spec_kv_ && r.parallel_n > 1) {
        prefix_seq = spec_kv_->CreateSequence();
        spec_kv_->ExtendSequence(prefix_seq, r.input_len);
      }
      for (int n = 0; n < r.parallel_n; ++n) {
        Branch b;
        b.request_id = r.id;
        b.group = group;
        b.prefix_len = r.parallel_n > 1 ? r.input_len : 0;
        b.kv_len = r.input_len + 1;
        b.remaining = std::max<int64_t>(r.output_len - 1, 0);
        b.last_emit_s = now_s_;
        if (spec_kv_) {
          b.accept_prob =
              r.accept_prob >= 0.0 ? r.accept_prob : cfg_.spec.default_accept_prob;
          if (prefix_seq >= 0) {
            b.spec_seq = spec_kv_->ForkSequence(prefix_seq);
            spec_kv_->ExtendSequence(b.spec_seq, 1);
          } else {
            b.spec_seq = spec_kv_->CreateSequence();
            spec_kv_->ExtendSequence(b.spec_seq, r.input_len + 1);
          }
        }
        running_.push_back(b);
        // Spec engines charged the whole output at admission; vanilla
        // charges tokens as they are emitted.
        if (!cfg_.spec.enabled) kv_tokens_in_use_ += 1;
        // A zero-remaining branch never reaches a decode step; settle its
        // charge now (vanilla decode releases via the decode loop, but spec
        // prefill must not leave its sequence behind).
        if (b.remaining == 0 && spec_kv_) {
          FinishBranch(b);
          running_.pop_back();
        }
      }
      if (prefix_seq >= 0) spec_kv_->DropSequence(prefix_seq);
    }
    metrics_.makespan_s = now_s_;
    return StepKind::kWork;
  }

  if (running_.empty()) {
    // Idle: jump to the next arrival. If the head request has already
    // arrived, admission failed with an empty engine — its KV need alone
    // exceeds the budget and no amount of time helps; fail loudly instead
    // of spinning.
    FI_CHECK(!pending_.empty());
    FI_CHECK_GT(pending_.front().arrival_s, now_s_);
    const double skip_s = pending_.front().arrival_s - now_s_;
    now_s_ = pending_.front().arrival_s;
    metrics_.total_idle_s += skip_s;
    ++metrics_.num_idle_skips;
    metrics_.makespan_s = std::max(metrics_.makespan_s, now_s_);
    return StepKind::kIdle;
  }

  if (cfg_.spec.enabled) {
    SpecDecodeStep();
    return StepKind::kWork;
  }

  // --- Decode step: one token for every running branch. ------------------
  std::vector<int64_t> qo_lens(running_.size(), 1);
  const double host_us =
      cfg_.backend.host_us_per_step + cfg_.backend.host_us_per_req * running_.size() +
      (cfg_.backend.use_cuda_graph ? 10.0 : cfg_.model.num_layers * 2.0);
  const double gemm_us =
      GemmUs(cfg_.model, static_cast<int64_t>(running_.size()));
  const double attn_us = AttnStepUs(running_, qo_lens, /*decode=*/true);
  const double comm_us = CommStepUs(static_cast<int64_t>(running_.size()));
  const double step_s = (host_us + gemm_us + attn_us + comm_us) * 1e-6;
  now_s_ += step_s;
  metrics_.total_gemm_ms += gemm_us * 1e-3;
  metrics_.total_attention_ms += attn_us * 1e-3;
  metrics_.total_host_ms += host_us * 1e-3;
  metrics_.total_comm_ms += comm_us * 1e-3;
  ++metrics_.num_steps;

  std::vector<Branch> still_running;
  still_running.reserve(running_.size());
  for (auto& b : running_) {
    metrics_.itl_ms.push_back((now_s_ - b.last_emit_s) * 1e3);
    b.last_emit_s = now_s_;
    b.kv_len += 1;
    kv_tokens_in_use_ += 1;
    ++metrics_.total_output_tokens;
    b.remaining -= 1;
    if (b.remaining > 0) {
      still_running.push_back(b);
    } else {
      FinishBranch(b);
    }
  }
  running_ = std::move(still_running);
  metrics_.makespan_s = now_s_;
  return StepKind::kWork;
}

void ServingEngine::SpecDecodeStep() {
  const spec::DraftTree& tree = *tree_;
  const int64_t batch = static_cast<int64_t>(running_.size());
  const int64_t verify_tokens = batch * tree.Size();

  // --- Draft phase: `depth` sequential forward passes of the draft model,
  // level l proposing branching^l candidates per branch. The draft's own
  // attention/KV cost is folded into the per-pass launch overhead (the
  // draft is ~100x smaller than the target).
  double draft_us = 0.0;
  for (int level = 1; level <= tree.Depth(); ++level) {
    draft_us += GemmUs(cfg_.spec.draft_model, batch * tree.LevelWidth(level));
  }
  draft_us += tree.Depth() * (cfg_.backend.use_cuda_graph
                                  ? 10.0
                                  : cfg_.spec.draft_model.num_layers * 2.0);

  // --- Verify phase: ONE target-model step over every tree token. GEMM
  // covers batch*tree_size tokens; attention runs the real tree-attention
  // path (context level + masked tail level + contraction).
  const double host_us =
      cfg_.backend.host_us_per_step + cfg_.backend.host_us_per_req * batch +
      (cfg_.backend.use_cuda_graph ? 10.0 : cfg_.model.num_layers * 2.0);
  const double gemm_us = GemmUs(cfg_.model, verify_tokens);
  const double attn_us = SpecVerifyAttnUs();
  const double comm_us = CommStepUs(verify_tokens);
  const double step_s = (draft_us + host_us + gemm_us + attn_us + comm_us) * 1e-6;
  now_s_ += step_s;
  metrics_.total_draft_ms += draft_us * 1e-3;
  metrics_.total_gemm_ms += gemm_us * 1e-3;
  metrics_.total_attention_ms += attn_us * 1e-3;
  metrics_.total_host_ms += host_us * 1e-3;
  metrics_.total_comm_ms += comm_us * 1e-3;
  ++metrics_.num_steps;
  ++metrics_.spec_steps;

  // --- Accept, commit, roll back. -----------------------------------------
  std::vector<Branch> still_running;
  still_running.reserve(running_.size());
  for (auto& b : running_) {
    const int accepted = spec::SampleAcceptedLen(rng_, tree, b.accept_prob);
    ++metrics_.accepted_len_hist[static_cast<size_t>(accepted)];
    // Accepted draft prefix + the target's bonus/correction token, capped by
    // the branch's output budget.
    const int64_t commit = std::min<int64_t>(accepted + 1, b.remaining);
    SpecCommitKv(b, accepted, commit);
    // Tokens of one verify step surface together: the first closes the gap
    // since the last emission, the rest arrive at (simulated) zero ITL —
    // exactly the burst delivery real spec decoding produces.
    for (int64_t t = 0; t < commit; ++t) {
      metrics_.itl_ms.push_back(t == 0 ? (now_s_ - b.last_emit_s) * 1e3 : 0.0);
    }
    b.last_emit_s = now_s_;
    b.kv_len += commit;  // Budget-wise already reserved at admission.
    metrics_.total_output_tokens += commit;
    metrics_.spec_committed_tokens += commit;
    b.remaining -= commit;
    if (b.remaining > 0) {
      still_running.push_back(b);
    } else {
      FinishBranch(b);
    }
  }
  running_ = std::move(still_running);
  metrics_.makespan_s = now_s_;
}

void ServingEngine::SpecCommitKv(Branch& b, int accepted, int64_t commit) {
  PagedKVCache& kv = *spec_kv_;
  const spec::DraftTree& tree = *tree_;
  const int64_t len0 = kv.SequenceLength(b.spec_seq);
  FI_CHECK_EQ(len0, b.kv_len);

  if (tree.Branching() == 1) {
    // Chain draft: the speculative tail extends the branch in place; the
    // rejected suffix rolls back by truncation.
    kv.ExtendSequence(b.spec_seq, tree.Size());
    kv.TruncateSequence(b.spec_seq, len0 + std::min<int64_t>(commit, tree.Size()));
  } else {
    // Tree draft: each top-level subtree speculates on its own fork of the
    // committed KV (full pages shared via refcount, partial tail page CoW).
    // The winning subtree replaces the branch's sequence; every loser — and
    // the winner's own rejected suffix — unwinds through ReleasePage.
    std::vector<int> forks(static_cast<size_t>(tree.Branching()));
    for (auto& f : forks) {
      f = kv.ForkSequence(b.spec_seq);
      kv.ExtendSequence(f, tree.SubtreeSize());
    }
    if (accepted > 0) {
      kv.DropSequence(b.spec_seq);
      // Which subtree won is structurally irrelevant; take the first.
      b.spec_seq = forks[0];
      for (size_t j = 1; j < forks.size(); ++j) kv.DropSequence(forks[j]);
      kv.TruncateSequence(b.spec_seq,
                          len0 + std::min<int64_t>(commit, tree.SubtreeSize()));
    } else {
      for (int f : forks) kv.DropSequence(f);
    }
  }
  // Bonus/correction token (and chain full-acceptance overflow): append the
  // remainder the rollback could not cover.
  const int64_t target = len0 + commit;
  const int64_t have = kv.SequenceLength(b.spec_seq);
  if (have < target) kv.ExtendSequence(b.spec_seq, target - have);
  FI_CHECK_EQ(kv.SequenceLength(b.spec_seq), target);
}

ServingMetrics ServingEngine::Run(const std::vector<Request>& workload) {
  Reset();
  for (const auto& r : workload) Admit(r);
  Drain();
  return metrics_;
}

}  // namespace flashinfer::serving
