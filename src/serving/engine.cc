#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "spec/verify.h"
#include "util/check.h"

namespace flashinfer::serving {

namespace {

/// Prompt tokens the replica's prefix cache already holds, clamped so every
/// request prefill computes at least one token (it must emit a first token).
int64_t CachedTokens(const Request& r) {
  const int64_t max_cached = std::max<int64_t>(r.input_len - 1, 0);
  return std::min(std::max<int64_t>(r.cached_prefix_len, 0), max_cached);
}

}  // namespace

ServingEngine::ServingEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.spec.seed) {
  const double hbm_bytes = cfg_.hbm_capacity_gb * 1e9;
  const double weights = cfg_.model.WeightBytesPerGpu();
  const double kv_budget_bytes = (hbm_bytes - weights) * 0.9;  // Activation slack.
  FI_CHECK_GT(kv_budget_bytes, 0.0);
  kv_token_budget_ = static_cast<int64_t>(
      kv_budget_bytes / cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype));
  if (cfg_.preemption.enabled) {
    FI_CHECK_GT(cfg_.preemption.swap_gbps, 0.0);
    host_kv_token_budget_ = static_cast<int64_t>(
        cfg_.preemption.host_capacity_gb * 1e9 /
        cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype));
  }
  if (cfg_.spec.enabled) {
    tree_ = std::make_unique<spec::DraftTree>(cfg_.spec.tree);
    // Reserve one tree of transient verify KV per branch on top of the
    // decode slack, so a verify step can never blow the budget mid-flight.
    slack_tokens_ = 8 + tree_->Size();
    verify_pricer_ = std::make_unique<spec::VerifyPricer>(cfg_.device, cfg_.backend,
                                                          HeadGeometry(), *tree_);
  }
  Reset();
}

double ServingEngine::GemmUs(const ModelSpec& m, int64_t tokens) const {
  const auto& dev = cfg_.device;
  const double flops = m.GemmFlopsPerToken() * static_cast<double>(tokens) /
                       m.tensor_parallel;
  const double t_compute = flops / (dev.fp16_tflops * cfg_.backend.gemm_eff * 1e6);
  // Every step streams the weights once; small-batch decode is bound by it,
  // large prefills by compute.
  const double t_mem = m.WeightBytesPerGpu() / (dev.hbm_gbps * 0.9 * 1e3);
  return std::max(t_compute, t_mem);
}

double ServingEngine::CommStepUs(int64_t tokens) const {
  const int tp = cfg_.model.tensor_parallel;
  if (tp <= 1) return 0.0;
  // Two ring all-reduces per layer over the hidden activations.
  const double bytes_per_layer =
      2.0 * static_cast<double>(tokens) * cfg_.model.d_model * 2.0;
  const double ring = 2.0 * (tp - 1) / tp;
  return cfg_.model.num_layers * bytes_per_layer * ring / (cfg_.nvlink_gbps * 1e3) +
         cfg_.model.num_layers * 4.0;  // Per-layer collective launch latency.
}

AttnSimInput ServingEngine::HeadGeometry() const {
  AttnSimInput in;
  in.num_qo_heads = cfg_.model.num_qo_heads / cfg_.model.tensor_parallel;
  in.num_kv_heads =
      std::max(1, cfg_.model.num_kv_heads / cfg_.model.tensor_parallel);
  in.head_dim = cfg_.model.head_dim;
  in.page_size = cfg_.page_size;
  return in;
}

double ServingEngine::AttnLaunchUs(const AttnSimInput& in) const {
  auto report = SimulateBatchAttention(cfg_.device, cfg_.backend, in);
  // Plan reuse across layers: one scheduler pass, num_layers launches.
  const int layers = cfg_.model.num_layers;
  double t = report.time_us * layers;
  if (!cfg_.backend.fused_rope) {
    // Separate RoPE kernel over this step's Q and K rows (bandwidth-bound,
    // small-kernel efficiency).
    int64_t tokens = 0;
    for (int64_t q : in.qo_lens) tokens += q;
    const double bytes = 2.0 *  // Read + write.
                         static_cast<double>(tokens) *
                         (in.num_qo_heads + in.num_kv_heads) * in.head_dim * 2.0;
    t += layers * (bytes / (cfg_.device.hbm_gbps * 0.45 * 1e3) +
                   cfg_.device.kernel_launch_us);
  }
  return t;
}

double ServingEngine::SpecVerifyAttnUs() const {
  AttnSimInput in = HeadGeometry();
  std::vector<int64_t> context_lens;
  context_lens.reserve(running_.size());
  for (const auto& b : running_) context_lens.push_back(b.kv_len);
  auto report = verify_pricer_->Price(context_lens);
  // Plan reuse across layers, exactly like AttnLaunchUs.
  const int layers = cfg_.model.num_layers;
  double t = report.time_us * layers;
  if (!cfg_.backend.fused_rope) {
    const int64_t tokens = static_cast<int64_t>(running_.size()) * tree_->Size();
    const double bytes = 2.0 * static_cast<double>(tokens) *
                         (in.num_qo_heads + in.num_kv_heads) * in.head_dim * 2.0;
    t += layers * (bytes / (cfg_.device.hbm_gbps * 0.45 * 1e3) +
                   cfg_.device.kernel_launch_us);
  }
  return t;
}

void ServingEngine::TraceSpan(obs::TraceName n, double begin_s, double end_s,
                              int32_t req, int64_t a, int64_t b,
                              int64_t c) noexcept {
  if (!trace_) return;
  obs::TraceEvent e;
  e.ts_us = begin_s * 1e6;
  e.dur_us = (end_s - begin_s) * 1e6;
  e.name = n;
  e.req = req;
  e.a = a;
  e.b = b;
  e.c = c;
  trace_->Record(e);
}

void ServingEngine::TraceInstant(obs::TraceName n, int32_t req, int64_t a,
                                 int64_t b, int64_t c) noexcept {
  if (!trace_) return;
  obs::TraceEvent e;
  e.ts_us = now_s_ * 1e6;
  e.name = n;
  e.req = req;
  e.a = a;
  e.b = b;
  e.c = c;
  trace_->Record(e);
}

void ServingEngine::TraceCounter(obs::TraceName n, double v) noexcept {
  if (!trace_) return;
  obs::TraceEvent e;
  e.ts_us = now_s_ * 1e6;
  e.name = n;
  e.v = v;
  trace_->Record(e);
}

ServingEngine::ClassSeries& ServingEngine::SeriesFor(int tenant, int priority) {
  const int64_t key = (static_cast<int64_t>(tenant) << 32) ^
                      (static_cast<int64_t>(priority) & 0xffffffff);
  auto [it, inserted] = class_series_.try_emplace(key);
  if (inserted) {
    const obs::LabelSet labels = obs::ClassLabels(tenant, priority);
    it->second.tokens = telemetry_->GetCounter("fi_tokens_total", labels);
    it->second.ttft = telemetry_->GetSketch("fi_ttft_ms", labels);
    it->second.itl = telemetry_->GetSketch("fi_itl_ms", labels);
  }
  return it->second;
}

void ServingEngine::ObserveTtft(int tenant, int priority, double ms) {
  if (!telemetry_) return;
  ClassSeries& s = SeriesFor(tenant, priority);
  s.ttft->Observe(now_s_, ms);
  s.tokens->Inc(now_s_);  // The request's first token.
  if (slo_) slo_->Observe(obs::SloSignal::kTtft, tenant, priority, ms, now_s_);
}

void ServingEngine::ObserveTokens(const Branch& b, int64_t tokens, double itl_ms) {
  if (!telemetry_) return;
  ClassSeries& s = SeriesFor(b.tenant, b.priority);
  s.tokens->Inc(now_s_, static_cast<double>(tokens));
  // One ITL sample per committed token, mirroring ServingMetrics::AddItl:
  // the first closes the gap since the last emission, the rest (spec-decode
  // burst delivery) land at zero — so the registry's sample count reconciles
  // exactly with the run-final metrics.
  for (int64_t t = 0; t < tokens; ++t) {
    const double gap = t == 0 ? itl_ms : 0.0;
    s.itl->Observe(now_s_, gap);
    if (slo_) slo_->Observe(obs::SloSignal::kItl, b.tenant, b.priority, gap, now_s_);
  }
}

void ServingEngine::PublishStepTelemetry(int64_t step_output_tokens,
                                         int64_t prefill_tokens) {
  if (!telemetry_) return;
  telemetry_->GetCounter("fi_steps_total")->Inc(now_s_);
  telemetry_->GetCounter("fi_output_tokens_total")
      ->Inc(now_s_, static_cast<double>(step_output_tokens));
  telemetry_->GetCounter("fi_prefill_tokens_total")
      ->Inc(now_s_, static_cast<double>(prefill_tokens));
  telemetry_->GetGauge("fi_kv_device_tokens")
      ->Set(now_s_, static_cast<double>(kv_tokens_in_use_));
  telemetry_->GetGauge("fi_kv_host_tokens")
      ->Set(now_s_, static_cast<double>(host_kv_tokens_in_use_));
  // Estimated bytes the host tier actually stores for the resident logical
  // tokens (logical KV bytes scaled by the cache's observed codec ratio;
  // exactly the logical bytes with the codec off).
  telemetry_->GetGauge("fi_kv_host_stored_bytes")
      ->Set(now_s_, static_cast<double>(host_kv_tokens_in_use_) *
                        cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype) *
                        CodecRatioEstimate());
  telemetry_->GetGauge("fi_queue_depth")->Set(now_s_, static_cast<double>(pending_.size()));
  telemetry_->GetGauge("fi_running_branches")
      ->Set(now_s_, static_cast<double>(running_.size()));
  telemetry_->GetGauge("fi_preempted_branches")
      ->Set(now_s_, static_cast<double>(preempted_.size()));
  if (slo_) slo_->Evaluate(now_s_);
}

void ServingEngine::Reset() {
  pending_.clear();
  prefilling_.clear();
  running_.clear();
  preempted_.clear();
  group_refs_.clear();
  metrics_ = ServingMetrics{};
  now_s_ = 0.0;
  kv_tokens_in_use_ = 0;
  host_kv_tokens_in_use_ = 0;
  pending_swap_us_ = 0.0;
  copy_d2h_.Reset();
  copy_h2d_.Reset();
  copy_migrate_.Reset();
  exportable_.clear();
  next_unit_id_ = 0;
  next_preempt_order_ = 0;
  next_group_ = 0;
  rng_ = Rng(cfg_.spec.seed);
  if (cfg_.trace.enabled) {
    if (trace_ && trace_->capacity() == cfg_.trace.capacity) {
      trace_->Clear();
    } else {
      trace_ = std::make_unique<obs::TraceRecorder>(cfg_.trace.capacity);
    }
  } else {
    trace_.reset();
  }
  class_series_.clear();
  if (cfg_.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::MetricsRegistry>(cfg_.telemetry.window);
    slo_ = cfg_.telemetry.slos.empty()
               ? nullptr
               : std::make_unique<obs::SloMonitor>(cfg_.telemetry.slos, trace_.get());
    metrics_.bounded_itl = cfg_.telemetry.bounded_itl;
  } else {
    telemetry_.reset();
    slo_.reset();
  }
  if (cfg_.spec.enabled || cfg_.preemption.enabled) {
    if (cfg_.spec.enabled) {
      metrics_.accepted_len_hist.assign(static_cast<size_t>(tree_->Depth()) + 1, 0);
    }
    // Structural cache: 1 head x 1 dim (page accounting, not values). Sized
    // for the token budget plus page-rounding and transient-fork headroom;
    // the host tier holds its own budget plus per-branch page rounding.
    const int64_t branching = cfg_.spec.enabled ? cfg_.spec.tree.branching : 0;
    const int64_t pages = kv_token_budget_ / cfg_.page_size +
                          static_cast<int64_t>(cfg_.max_running) * (2 + branching) + 64;
    const int64_t host_pages =
        cfg_.preemption.enabled
            ? host_kv_token_budget_ / cfg_.page_size +
                  static_cast<int64_t>(cfg_.max_running) * 2 + 64
            : 0;
    // Synthetic fill only matters with the codec on: it gives the encoder
    // real element payloads (for compression ratio and the quantization-MSE
    // proxy) without perturbing the codec-off structural-only fast path.
    spec_kv_ = std::make_unique<PagedKVCache>(
        DType::kF16, /*num_kv_heads=*/1, /*head_dim=*/1, cfg_.page_size, pages,
        host_pages, cfg_.preemption.host_codec,
        /*synthetic_fill=*/cfg_.preemption.host_codec.enabled());
  }
}

void ServingEngine::Admit(const Request& r) {
  // Keep the queue sorted by (arrival, id) so the admission loop below never
  // stalls behind a later arrival. The id tie-break makes simultaneous
  // arrivals (bursts) order-independent of the Admit() call order: an
  // unsorted admission sequence yields the exact same schedule as a sorted
  // one.
  auto it = std::upper_bound(
      pending_.begin(), pending_.end(), r, [](const Request& a, const Request& b) {
        return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s : a.id < b.id;
      });
  pending_.insert(it, r);
}

double ServingEngine::NextEventTime() const noexcept {
  // Preempted branches are runnable now: the next step's admission pass
  // restores them as soon as budget frees (and if nothing else is live, the
  // budget IS free).
  if (!running_.empty() || !preempted_.empty()) return now_s_;
  // Prefilling entries are runnable now — except overlap-swap transfers
  // whose KV is still on the PCIe link (ready_s in the future).
  double ready_min = std::numeric_limits<double>::infinity();
  for (const auto& p : prefilling_) {
    if (p.ready_s <= now_s_) return now_s_;
    ready_min = std::min(ready_min, p.ready_s);
  }
  if (!pending_.empty()) {
    const double arrival = pending_.front().arrival_s;
    if (arrival > now_s_) {
      ready_min = std::min(ready_min, arrival);
    } else {
      // An already-arrived head that is still pending: admission at `now` is
      // an event only when it would actually do something — reject the
      // request (its need exceeds the total budget) or admit it (a run slot
      // and KV headroom exist). This must mirror AdmitArrived exactly: the
      // old unconditional "blocked on the transfers' reserve" assumption
      // missed the wake where a completed step freed enough KV for the head
      // while every prefilling entry was still transfer-gated — StepTo slept
      // to the transfer completion while Run() admitted and worked at now,
      // diverging the two. Conversely, returning `now` for a head that is
      // genuinely blocked would busy-spin StepTo; then the only events are a
      // transfer completion (ready_min) or, in disaggregated mode, the
      // cluster driver extracting an exportable unit (external: +inf here).
      const int64_t need = KvNeed(pending_.front());
      const bool slot =
          static_cast<int>(running_.size() + prefilling_.size()) < cfg_.max_running;
      if (need > kv_token_budget_ ||
          (slot && kv_tokens_in_use_ + need <= kv_token_budget_)) {
        return now_s_;
      }
    }
  }
  return ready_min;  // +inf when fully drained.
}

int64_t ServingEngine::StepTo(double deadline_s) {
  int64_t work_steps = 0;
  while (!Finished() && NextEventTime() <= deadline_s) {
    const StepKind kind = StepOnce();
    if (kind == StepKind::kNone) break;
    if (kind == StepKind::kWork) ++work_steps;
  }
  return work_steps;
}

void ServingEngine::Drain() { StepTo(std::numeric_limits<double>::infinity()); }

int64_t ServingEngine::QueuedTokens() const noexcept {
  int64_t total = 0;
  for (const auto& r : pending_) {
    total += r.input_len + r.output_len * std::max(1, r.parallel_n);
  }
  // Partially prefilled requests still owe their un-prefilled remainder and
  // their whole output — a router must see that backlog, not just pending_.
  // (Restore entries count the same way: their synthetic req carries the
  // context left to rebuild and the branch's remaining output.)
  for (const auto& p : prefilling_) {
    total += (p.to_compute - p.computed) +
             p.req.output_len * std::max(1, p.req.parallel_n);
  }
  // Preempted branches owe their remaining output plus, for recompute
  // restores, the whole context rebuild.
  for (const auto& p : preempted_) {
    total += p.branch.remaining + (p.swapped ? 0 : p.branch.kv_len);
  }
  return total;
}

int64_t ServingEngine::RunningTokens() const noexcept {
  int64_t total = 0;
  for (const auto& b : running_) total += b.remaining;
  return total;
}

void ServingEngine::FinishBranch(const Branch& b) {
  TraceSpan(obs::TraceName::kReqDecode, b.seg_start_s, now_s_, b.request_id,
            b.kv_len);
  TraceInstant(obs::TraceName::kReqFinish, b.request_id);
  if (b.group < 0) {
    // Release the branch's pages plus its admission slack (charged as
    // parallel_n * slack_tokens_ at admission; leaking it would shrink
    // effective capacity forever and can wedge admission on long-lived
    // engines).
    kv_tokens_in_use_ -= b.kv_len + slack_tokens_;
  } else {
    // Grouped branch: release the unique suffix; the shared prefix goes
    // with the last sibling.
    kv_tokens_in_use_ -= b.kv_len - b.prefix_len + slack_tokens_;
    auto& [refs, prefix] = group_refs_[b.group];
    if (--refs == 0) {
      kv_tokens_in_use_ -= prefix;
      group_refs_.erase(b.group);
    }
  }
  if (b.spec_seq >= 0) spec_kv_->DropSequence(b.spec_seq);
  metrics_.branch_stalls.push_back(b.stall_steps);
}

int64_t ServingEngine::KvNeed(const Request& r) const noexcept {
  // Spec decode and preemption reserve every branch's full output KV at
  // admission: verify steps commit several tokens at once with no per-token
  // budget gate, and the preemption invariant (device budget never violated)
  // cannot tolerate decode-time over-commit. Reserving up front trades
  // admission aggressiveness for a guarantee that the structural page pool
  // can never run out mid-run.
  const int64_t full_out =
      FullKvReserve() ? r.parallel_n * std::max<int64_t>(r.output_len, 1) : 0;
  return r.input_len + r.parallel_n * slack_tokens_ + full_out;
}

int64_t ServingEngine::UnitKvCharge(const MigrationUnit& u) const noexcept {
  // Mirrors the charge the branches hold mid-decode: unique suffix + slack
  // per branch (+ the remaining-output reservation on full-reserve engines),
  // shared prefix once. Extraction releases exactly this; admission on the
  // destination re-acquires it.
  int64_t total = u.grouped ? u.prefix_tokens : 0;
  for (const auto& b : u.branches) {
    total += b.kv_len - (u.grouped ? b.prefix_len : 0) + slack_tokens_;
    if (FullKvReserve()) total += b.remaining;
  }
  return total;
}

MigrationUnit ServingEngine::BuildUnitView(const Exportable& u) const {
  MigrationUnit m;
  m.unit_id = u.unit_id;
  m.grouped = u.grouped;
  m.prefix_tokens = u.prefix_tokens;
  m.export_s = u.export_s;
  m.kv_tokens = u.grouped ? u.prefix_tokens : 0;
  for (const Branch& b : u.branches) {
    MigratedBranch mb;
    mb.request_id = b.request_id;
    mb.prefix_len = b.prefix_len;
    mb.kv_len = b.kv_len;
    mb.remaining = b.remaining;
    mb.accept_prob = b.accept_prob;
    mb.priority = b.priority;
    mb.tenant = b.tenant;
    mb.arrival_s = b.arrival_s;
    mb.last_emit_s = b.last_emit_s;
    mb.stall_steps = b.stall_steps;
    m.kv_tokens += b.kv_len - b.prefix_len;
    m.branches.push_back(mb);
  }
  if (spec_kv_) {
    // Real page lists via ExportKv: sibling branches share prefix pages, so
    // the union is what crosses the wire.
    std::vector<int64_t> pages;
    for (const Branch& b : u.branches) {
      const sparse::RequestKv kv = spec_kv_->ExportKv(b.spec_seq);
      pages.insert(pages.end(), kv.pages.begin(), kv.pages.end());
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    m.pages = static_cast<int64_t>(pages.size());
  } else {
    m.pages = (m.kv_tokens + cfg_.page_size - 1) / cfg_.page_size;
  }
  m.kv_charge = UnitKvCharge(m);
  return m;
}

std::vector<MigrationUnit> ServingEngine::MigratableUnits() const {
  std::vector<MigrationUnit> out;
  out.reserve(exportable_.size());
  for (const auto& u : exportable_) out.push_back(BuildUnitView(u));
  return out;
}

MigrationUnit ServingEngine::ExtractMigratable(int64_t unit_id) {
  auto it = std::find_if(exportable_.begin(), exportable_.end(),
                         [unit_id](const Exportable& u) { return u.unit_id == unit_id; });
  FI_CHECK(it != exportable_.end());
  MigrationUnit m = BuildUnitView(*it);
  for (const Branch& b : it->branches) {
    if (b.group < 0) {
      kv_tokens_in_use_ -= b.kv_len + slack_tokens_;
    } else {
      kv_tokens_in_use_ -= b.kv_len - b.prefix_len + slack_tokens_;
      auto& [refs, prefix] = group_refs_[b.group];
      if (--refs == 0) {
        kv_tokens_in_use_ -= prefix;
        group_refs_.erase(b.group);
      }
    }
    if (FullKvReserve()) kv_tokens_in_use_ -= b.remaining;
    if (b.spec_seq >= 0) spec_kv_->DropSequence(b.spec_seq);
  }
  ++metrics_.num_migrations_out;
  metrics_.migrated_kv_tokens += m.kv_tokens;
  TraceInstant(obs::TraceName::kReqMigrateOut, m.branches.front().request_id,
               m.kv_tokens, m.pages, static_cast<int64_t>(m.branches.size()));
  if (telemetry_) {
    telemetry_->GetCounter("fi_migrations_out_total")->Inc(now_s_);
    telemetry_->GetCounter("fi_migrated_kv_tokens_total")
        ->Inc(now_s_, static_cast<double>(m.kv_tokens));
    // Extraction frees KV outside any step; without this the device-KV gauge
    // stays stale at the pre-export value until the next executed step — on a
    // fully-exported prefill replica, forever.
    telemetry_->GetGauge("fi_kv_device_tokens")
        ->Set(now_s_, static_cast<double>(kv_tokens_in_use_));
  }
  exportable_.erase(it);
  return m;
}

void ServingEngine::RetainMigratable(int64_t unit_id) {
  auto it = std::find_if(exportable_.begin(), exportable_.end(),
                         [unit_id](const Exportable& u) { return u.unit_id == unit_id; });
  FI_CHECK(it != exportable_.end());
  // Fallback: the branches re-enter the local decode loop. Their KV charge
  // and structural sequences never left, and seg_start_s still points at the
  // first token, so the decode span absorbs the parked time.
  for (const Branch& b : it->branches) ResumeBranch(b);
  ++metrics_.num_migrations_retained;
  if (telemetry_) telemetry_->GetCounter("fi_migrations_retained_total")->Inc(now_s_);
  exportable_.erase(it);
}

bool ServingEngine::CanAcceptMigration(const MigrationUnit& u) const noexcept {
  const int64_t slots = static_cast<int64_t>(running_.size() + prefilling_.size()) +
                        static_cast<int64_t>(u.branches.size());
  return slots <= cfg_.max_running &&
         kv_tokens_in_use_ + UnitKvCharge(u) <= kv_token_budget_;
}

void ServingEngine::AdmitMigratedUnit(const MigrationUnit& u,
                                      const gpusim::CopyStream::Transfer& xfer) {
  FI_CHECK(!u.branches.empty());
  FI_CHECK(CanAcceptMigration(u));
  kv_tokens_in_use_ += UnitKvCharge(u);
  int group = -1;
  if (u.grouped) {
    group = next_group_++;
    group_refs_[group] = {static_cast<int>(u.branches.size()), u.prefix_tokens};
  }
  PrefillProgress pp;
  pp.migrate = true;
  pp.phase_start_s = now_s_;
  // The unit rides one zero-token transfer-gated entry, exactly like an
  // overlap-swap restore: ineligible for the step plan until the link
  // transfer lands (which may already have, if this replica's clock ran
  // ahead of the transfer end).
  pp.ready_s = xfer.end_s;
  pp.req.id = u.branches.front().request_id;
  pp.req.arrival_s = now_s_;
  pp.req.input_len = 0;
  pp.to_compute = 0;
  int64_t out = 0;
  int priority = u.branches.front().priority;
  for (const MigratedBranch& mb : u.branches) {
    Branch b;
    b.request_id = mb.request_id;
    b.group = group;
    b.prefix_len = u.grouped ? u.prefix_tokens : 0;
    b.kv_len = mb.kv_len;
    b.remaining = mb.remaining;
    b.last_emit_s = mb.last_emit_s;
    b.stall_steps = mb.stall_steps;
    b.accept_prob = mb.accept_prob;
    b.priority = mb.priority;
    b.tenant = mb.tenant;
    b.arrival_s = mb.arrival_s;
    pp.import_branches.push_back(b);
    out += mb.remaining;
    priority = std::max(priority, mb.priority);
  }
  // The synthetic req carries the unit's remaining output so QueuedTokens
  // sees the inbound backlog before the transfer lands.
  pp.req.output_len = out;
  pp.req.priority = priority;
  ++metrics_.num_migrations_in;
  metrics_.total_migration_ms += (xfer.end_s - xfer.begin_s) * 1e3;
  copy_migrate_.Record(xfer);
  TraceSpan(obs::TraceName::kCopyMigrate, xfer.begin_s, xfer.end_s, pp.req.id,
            u.kv_tokens, u.pages,
            static_cast<int64_t>((xfer.begin_s - u.export_s) * 1e6));
  if (telemetry_) {
    telemetry_->GetCounter("fi_migrations_in_total")->Inc(now_s_);
    telemetry_->GetCounter("fi_migration_ms_total")
        ->Inc(now_s_, (xfer.end_s - xfer.begin_s) * 1e3);
    // Admission charges KV outside any step — keep the gauge current.
    telemetry_->GetGauge("fi_kv_device_tokens")
        ->Set(now_s_, static_cast<double>(kv_tokens_in_use_));
  }
  prefilling_.push_back(std::move(pp));
}

double ServingEngine::SwapXferUs(int64_t tokens, double stored_ratio) const {
  // PCIe time for the bytes that actually cross the link: with the host
  // codec on, that is the *stored* (quantized/compressed) byte count, i.e.
  // the logical KV bytes scaled by stored_ratio. Latency and per-page
  // overhead are unaffected by the codec.
  const double bytes = static_cast<double>(tokens) *
                       cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype) *
                       stored_ratio;
  const double pages = std::ceil(static_cast<double>(tokens) / cfg_.page_size);
  return cfg_.preemption.swap_latency_us +
         pages * cfg_.preemption.swap_page_overhead_us +
         bytes / (cfg_.preemption.swap_gbps * 1e3);
}

double ServingEngine::CodecUs(int64_t tokens, double gbps) const {
  // Encode/decode touches every logical byte regardless of how small the
  // stored blob ends up. Zero with the codec off, so codec-off swap pricing
  // is bit-identical to the plain two-tier path.
  if (!cfg_.preemption.host_codec.enabled()) return 0.0;
  const double bytes = static_cast<double>(tokens) *
                       cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype);
  return bytes / (gbps * 1e3);
}

double ServingEngine::SwapOutUs(int64_t tokens, double stored_ratio) const {
  return SwapXferUs(tokens, stored_ratio) +
         CodecUs(tokens, cfg_.preemption.codec_encode_gbps);
}

double ServingEngine::SwapInUs(int64_t tokens, double stored_ratio) const {
  return SwapXferUs(tokens, stored_ratio) +
         CodecUs(tokens, cfg_.preemption.codec_decode_gbps);
}

double ServingEngine::CodecRatioEstimate() const {
  // Prospective stored/logical ratio for branches not yet evicted: the
  // cache's cumulative observed ratio (falls back to the worst-case encoded
  // bound before any eviction; exactly 1.0 with the codec off).
  return spec_kv_ ? spec_kv_->ObservedStoredRatio() : 1.0;
}

double ServingEngine::RecomputeEstimateUs(int64_t kv_len) const {
  // Marginal GEMM: the chunks ride along steps that stream the weights
  // anyway, so each chunk's free allowance is the weight-streaming floor
  // (GemmUs(0) tokens) it shares. Above that, prefill is compute-bound.
  const int64_t chunk = cfg_.prefill_chunk_tokens > 0
                            ? std::min(cfg_.prefill_chunk_tokens, cfg_.max_prefill_tokens)
                            : kv_len;
  const int64_t nchunks = std::max<int64_t>(1, (kv_len + chunk - 1) / std::max<int64_t>(chunk, 1));
  const double compute_us =
      cfg_.model.GemmFlopsPerToken() * static_cast<double>(kv_len) /
      cfg_.model.tensor_parallel /
      (cfg_.device.fp16_tflops * cfg_.backend.gemm_eff * 1e6);
  const double floor_us = GemmUs(cfg_.model, 0) * static_cast<double>(nchunks);
  // One pass over the rebuilt KV for the chunks' attention reads.
  const double attn_us =
      static_cast<double>(kv_len) * cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype) /
      (cfg_.device.hbm_gbps * 0.85 * 1e3);
  return std::max(0.0, compute_us - floor_us) + attn_us;
}

void ServingEngine::AdmitArrived() {
  RestorePreempted();
  const bool legacy = cfg_.prefill_chunk_tokens == 0;
  // Legacy prefill-alone fuses admission with prefill-step formation: this
  // step prefills exactly what it admits, so the per-step token budget gates
  // admission (an oversized request still admits alone — otherwise it would
  // starve forever). Chunked admission is budget-free: pacing is
  // FormStepPlan's job, and an admitted request waits in prefilling_ with
  // its KV already reserved.
  int64_t step_tokens = 0;
  int admitted = 0;
  while (!pending_.empty() && pending_.front().arrival_s <= now_s_ &&
         static_cast<int>(running_.size() + prefilling_.size()) < cfg_.max_running) {
    const Request& r = pending_.front();
    const int64_t new_tokens = r.input_len - CachedTokens(r);
    if (legacy && admitted > 0 &&
        step_tokens + new_tokens > cfg_.max_prefill_tokens) {
      break;
    }
    const int64_t need = KvNeed(r);
    if (need > kv_token_budget_) {
      // This request could never run, even on an empty engine: admitting it
      // would wedge the queue forever (the pre-preemption engine aborted on
      // an FI_CHECK when this state was reached). Refuse it and move on.
      ++metrics_.rejected_requests;
      TraceInstant(obs::TraceName::kReqReject, r.id, need, kv_token_budget_);
      if (telemetry_) telemetry_->GetCounter("fi_requests_rejected_total")->Inc(now_s_);
      pending_.pop_front();
      continue;
    }
    if (!preempted_.empty() && r.priority <= preempted_.front().branch.priority) {
      // Anti-starvation: an evicted branch outranks (or ties) this arrival
      // and is still waiting for capacity. Admitting the newcomer into every
      // freed increment would starve the victim forever — freed capacity
      // drains to the restore queue first; only a strictly higher-priority
      // arrival may jump it (and preempt for room).
      break;
    }
    if (kv_tokens_in_use_ + need > kv_token_budget_) {
      // Preempt-or-queue: evict strictly-lower-priority running branches if
      // that makes room; otherwise the request waits (FIFO) for capacity.
      if (!cfg_.preemption.enabled || !TryPreemptFor(r, need)) break;
    }
    kv_tokens_in_use_ += need;
    step_tokens += new_tokens;
    ++admitted;
    TraceSpan(obs::TraceName::kReqQueued, r.arrival_s, now_s_, r.id);
    TraceInstant(obs::TraceName::kReqAdmit, r.id, new_tokens, need);
    PrefillProgress p;
    p.req = r;
    p.to_compute = new_tokens;
    p.phase_start_s = now_s_;
    prefilling_.push_back(std::move(p));
    pending_.pop_front();
  }
}

void ServingEngine::RestorePreempted() {
  // preempted_ is kept sorted by (priority desc, eviction order): the most
  // important victim re-enters first. Head-blocking within the deque is
  // deliberate — restoring a cheaper, lower-priority victim over a blocked
  // higher-priority one would invert the policy the evictions enforced.
  while (!preempted_.empty() &&
         static_cast<int>(running_.size() + prefilling_.size()) < cfg_.max_running) {
    Preempted& p = preempted_.front();
    if (kv_tokens_in_use_ + p.reserve > kv_token_budget_) break;
    kv_tokens_in_use_ += p.reserve;
    Branch b = p.branch;
    TraceSpan(obs::TraceName::kReqPreempted, p.evicted_s, now_s_, b.request_id,
              b.kv_len, p.swapped ? 1 : 0);
    TraceInstant(p.swapped ? obs::TraceName::kKvRestoreSwap
                           : obs::TraceName::kKvRestoreRecompute,
                 b.request_id, b.kv_len);
    PrefillProgress pp;
    pp.restore = true;
    pp.branch = b;
    pp.phase_start_s = now_s_;
    pp.req.id = b.request_id;
    pp.req.arrival_s = now_s_;
    pp.req.output_len = b.remaining;
    pp.req.priority = b.priority;
    if (p.swapped) {
      // Swap-in: the branch rides a step as a zero-token transfer chunk —
      // it cannot decode while its KV is still in flight. Legacy mode
      // serializes the PCIe transfer into the next executed step; overlap
      // mode enqueues it on the async H2D stream and gates the entry's step
      // eligibility on the transfer completion time instead, so other work
      // keeps stepping under the DMA. The structural pages come back when
      // the transfer completes.
      host_kv_tokens_in_use_ -= b.kv_len;
      // Swap-in moves the branch's *stored* bytes (realized ratio captured
      // at eviction) and pays the decode pass to re-materialize the pages;
      // both ride inside t_us so the legacy and overlap paths price alike.
      const double t_us = SwapInUs(b.kv_len, p.stored_ratio);
      const double decode_ms =
          CodecUs(b.kv_len, cfg_.preemption.codec_decode_gbps) * 1e-3;
      metrics_.codec_decode_ms += decode_ms;
      if (telemetry_) {
        telemetry_->GetCounter("fi_codec_decode_ms_total")->Inc(now_s_, decode_ms);
      }
      if (cfg_.preemption.host_codec.enabled()) {
        TraceInstant(obs::TraceName::kKvDecode, b.request_id, b.kv_len,
                     static_cast<int64_t>(decode_ms * 1e3));
      }
      if (cfg_.preemption.overlap_swap) {
        // The host copy must fully exist before it can stream back.
        const double issue_s = std::max(now_s_, p.swapout_done_s);
        const auto xfer = copy_h2d_.Enqueue(issue_s, t_us);
        pp.ready_s = xfer.end_s;
        TraceSpan(obs::TraceName::kCopyH2D, xfer.begin_s, xfer.end_s,
                  b.request_id, b.kv_len,
                  (b.kv_len + cfg_.page_size - 1) / cfg_.page_size,
                  static_cast<int64_t>((xfer.begin_s - now_s_) * 1e6));
      } else {
        pending_swap_us_ += t_us;
      }
      metrics_.total_swap_ms += t_us * 1e-3;
      ++metrics_.num_swap_restores;
      if (telemetry_) {
        telemetry_->GetCounter("fi_swap_restores_total")->Inc(now_s_);
        telemetry_->GetCounter("fi_swap_ms_total")->Inc(now_s_, t_us * 1e-3);
      }
      pp.swap_restore = true;
      pp.req.input_len = 0;
      pp.to_compute = 0;
    } else {
      // Recompute: the whole context (prompt + generated tokens) re-enters
      // the chunked-prefill path as a synthetic request; the branch resumes
      // once the last chunk lands.
      ++metrics_.num_recompute_restores;
      if (telemetry_) telemetry_->GetCounter("fi_recompute_restores_total")->Inc(now_s_);
      pp.req.input_len = b.kv_len;
      pp.to_compute = b.kv_len;
    }
    prefilling_.push_back(std::move(pp));
    preempted_.pop_front();
  }
}

bool ServingEngine::TryPreemptFor(const Request& r, int64_t need) {
  // Reclaimable KV across eligible victims: strictly lower priority,
  // non-grouped (parallel-n siblings share prefix KV and are never evicted).
  int64_t reclaimable = 0;
  for (const auto& b : running_) {
    if (b.priority < r.priority && b.group < 0) {
      reclaimable += b.kv_len + b.remaining + slack_tokens_;
    }
  }
  if (kv_tokens_in_use_ - reclaimable + need > kv_token_budget_) return false;
  while (kv_tokens_in_use_ + need > kv_token_budget_) {
    // Victim: lowest priority, then youngest (latest arrival, then highest
    // id — the branch that has the least sunk service time to protect).
    int victim = -1;
    for (size_t i = 0; i < running_.size(); ++i) {
      const Branch& b = running_[i];
      if (b.priority >= r.priority || b.group >= 0) continue;
      if (victim < 0) {
        victim = static_cast<int>(i);
        continue;
      }
      const Branch& v = running_[static_cast<size_t>(victim)];
      if (b.priority != v.priority ? b.priority < v.priority
          : b.arrival_s != v.arrival_s ? b.arrival_s > v.arrival_s
                                       : b.request_id > v.request_id) {
        victim = static_cast<int>(i);
      }
    }
    FI_CHECK_GE(victim, 0);  // Guaranteed by the reclaimable pre-check.
    PreemptBranch(static_cast<size_t>(victim));
  }
  return true;
}

void ServingEngine::PreemptBranch(size_t running_idx) {
  Branch b = running_[running_idx];
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(running_idx));
  // Full-reservation invariant: the branch holds its admission charge
  // input + slack + output == kv_len + remaining + slack.
  const int64_t reserve = b.kv_len + b.remaining + slack_tokens_;
  kv_tokens_in_use_ -= reserve;
  ++metrics_.num_preemptions;
  const int64_t evicted_pages = (b.kv_len + cfg_.page_size - 1) / cfg_.page_size;
  metrics_.evicted_pages += evicted_pages;
  if (telemetry_) {
    telemetry_->GetCounter("fi_preemptions_total")->Inc(now_s_);
    telemetry_->GetCounter("fi_evicted_pages_total")
        ->Inc(now_s_, static_cast<double>(evicted_pages));
  }
  // The eviction closes the branch's current decode segment.
  TraceSpan(obs::TraceName::kReqDecode, b.seg_start_s, now_s_, b.request_id,
            b.kv_len);

  // Swap vs recompute, decided at eviction time (the host copy either exists
  // later or it does not): swap pays two transfers + latency; recompute pays
  // marginal prefill. Host-tier exhaustion forces recompute.
  bool swap = false;
  switch (cfg_.preemption.restore) {
    case RestorePolicy::kSwap: swap = true; break;
    case RestorePolicy::kRecompute: swap = false; break;
    case RestorePolicy::kAuto: {
      // Price the round trip on the bytes that will actually move: stored
      // bytes for both transfers (via the cache's observed ratio) plus the
      // encode/decode passes over the logical bytes. Codec-off this reduces
      // exactly to the historical 2*SwapUs(kv_len) crossover.
      const double est = CodecRatioEstimate();
      swap = SwapOutUs(b.kv_len, est) + SwapInUs(b.kv_len, est) <
             RecomputeEstimateUs(b.kv_len);
      break;
    }
  }
  // Logical-token budget gate: with the codec on, host capacity is metered
  // in stored bytes (HostCanHold below), so the logical token count may
  // legitimately exceed the nominal budget by the compression factor.
  if (swap && !cfg_.preemption.host_codec.enabled() &&
      host_kv_tokens_in_use_ + b.kv_len > host_kv_token_budget_) {
    swap = false;
  }
  // Capacity gate: many short evicted branches can exhaust the host pool
  // (one page each) long before the token budget — per the PagedKVCache
  // contract, check admissibility before evicting. Codec-off this is the
  // free-host-page check; codec-on it meters worst-case stored bytes.
  if (swap && spec_kv_ && b.spec_seq >= 0 &&
      !spec_kv_->HostCanHold(spec_kv_->ExclusivePages(b.spec_seq))) {
    swap = false;
  }

  TraceInstant(swap ? obs::TraceName::kKvEvictSwap : obs::TraceName::kKvEvictDrop,
               b.request_id, b.kv_len, evicted_pages);

  Preempted p;
  p.swapped = swap;
  p.reserve = reserve;
  p.order = next_preempt_order_++;
  p.evicted_s = now_s_;
  if (swap) {
    host_kv_tokens_in_use_ += b.kv_len;
    // Evict (and encode) first: the codec runs at eviction time, so the
    // branch's transfers are priced on its *realized* stored/logical ratio —
    // the observed-ratio estimate only steers the kAuto decision above.
    double stored_ratio = 1.0;
    if (spec_kv_ && b.spec_seq >= 0) {
      const auto st = spec_kv_->EvictSequenceEx(b.spec_seq);
      if (st.logical_bytes > 0) {
        stored_ratio = static_cast<double>(st.stored_bytes) /
                       static_cast<double>(st.logical_bytes);
      }
      const double logical_bytes =
          static_cast<double>(b.kv_len) *
          cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype);
      const double stored_bytes = logical_bytes * stored_ratio;
      const double encode_ms =
          CodecUs(b.kv_len, cfg_.preemption.codec_encode_gbps) * 1e-3;
      metrics_.evicted_logical_bytes += logical_bytes;
      metrics_.evicted_stored_bytes += stored_bytes;
      metrics_.codec_encode_ms += encode_ms;
      metrics_.quant_mse_sum += st.mse_sum;
      metrics_.quant_mse_pages += st.mse_pages;
      if (telemetry_) {
        telemetry_->GetCounter("fi_kv_evicted_logical_bytes_total")
            ->Inc(now_s_, logical_bytes);
        telemetry_->GetCounter("fi_kv_evicted_stored_bytes_total")
            ->Inc(now_s_, stored_bytes);
        telemetry_->GetCounter("fi_codec_encode_ms_total")->Inc(now_s_, encode_ms);
        telemetry_->GetCounter("fi_quant_mse_sum_total")->Inc(now_s_, st.mse_sum);
        telemetry_->GetCounter("fi_quant_mse_pages_total")
            ->Inc(now_s_, static_cast<double>(st.mse_pages));
      }
      if (cfg_.preemption.host_codec.enabled()) {
        TraceInstant(obs::TraceName::kKvEncode, b.request_id,
                     static_cast<int64_t>(logical_bytes),
                     static_cast<int64_t>(stored_bytes));
      }
    }
    p.stored_ratio = stored_ratio;
    const double t_us = SwapOutUs(b.kv_len, stored_ratio);
    if (cfg_.preemption.overlap_swap) {
      // Async D2H: the eviction itself blocks nothing — the freed budget is
      // usable immediately (the victim's pages are a snapshot in flight),
      // and only a later swap-in of this branch must wait for the host copy.
      const auto xfer = copy_d2h_.Enqueue(now_s_, t_us);
      p.swapout_done_s = xfer.end_s;
      TraceSpan(obs::TraceName::kCopyD2H, xfer.begin_s, xfer.end_s,
                b.request_id, b.kv_len, evicted_pages,
                static_cast<int64_t>((xfer.begin_s - now_s_) * 1e6));
    } else {
      pending_swap_us_ += t_us;  // Swap-out serializes into the next step.
    }
    metrics_.total_swap_ms += t_us * 1e-3;
    if (telemetry_) telemetry_->GetCounter("fi_swap_ms_total")->Inc(now_s_, t_us * 1e-3);
  } else if (spec_kv_ && b.spec_seq >= 0) {
    // Dropped for recompute: the structural pages free immediately; a fresh
    // sequence is rebuilt when the recompute restore completes.
    spec_kv_->DropSequence(b.spec_seq);
    b.spec_seq = -1;
  }
  p.branch = b;
  // Keep preempted_ sorted by (priority desc, eviction order asc).
  auto it = std::upper_bound(preempted_.begin(), preempted_.end(), p,
                             [](const Preempted& a, const Preempted& x) {
                               return a.branch.priority != x.branch.priority
                                          ? a.branch.priority > x.branch.priority
                                          : a.order < x.order;
                             });
  preempted_.insert(it, std::move(p));
}

void ServingEngine::ResumeBranch(const Branch& b) {
  running_.push_back(b);
}

ServingEngine::StepPlan ServingEngine::FormStepPlan() const {
  StepPlan plan;
  if (cfg_.prefill_chunk_tokens == 0) {
    // Legacy prefill-alone: every admitted request prefills its whole prompt
    // this step, and decodes run only in steps with no prefill (running
    // branches stall behind it — the head-of-line blocking mixed batching
    // removes).
    for (size_t i = 0; i < prefilling_.size(); ++i) {
      if (prefilling_[i].ready_s > now_s_) continue;  // Transfer in flight.
      plan.chunks.push_back(
          {i, prefilling_[i].to_compute - prefilling_[i].computed, true});
    }
    plan.decode = plan.chunks.empty() && !running_.empty();
  } else {
    // Mixed batch: chunks ride along with every running branch's decode
    // token. Decode-priority spends at most one chunk's worth of prefill per
    // step; throughput-priority packs chunks up to the per-step budget. The
    // max(1, ...) guarantees the head request always advances even under a
    // degenerate budget.
    int64_t budget = std::max<int64_t>(
        1, cfg_.batch_policy == BatchPolicy::kDecodePriority
               ? std::min(cfg_.prefill_chunk_tokens, cfg_.max_prefill_tokens)
               : cfg_.max_prefill_tokens);
    for (size_t i = 0; i < prefilling_.size() && budget > 0; ++i) {
      if (prefilling_[i].ready_s > now_s_) continue;  // Transfer in flight.
      const int64_t remaining = prefilling_[i].to_compute - prefilling_[i].computed;
      const int64_t take = std::min({remaining, cfg_.prefill_chunk_tokens, budget});
      plan.chunks.push_back({i, take, take == remaining});
      budget -= take;
    }
    plan.decode = !running_.empty();
  }
  for (const auto& c : plan.chunks) plan.prefill_tokens += c.tokens;
  return plan;
}

ServingEngine::StepKind ServingEngine::StepOnce() {
  if (Finished()) return StepKind::kNone;

  AdmitArrived();
  // Admission may have *rejected* the only remaining work (a request whose
  // KV need exceeds the total budget): the engine can finish right here.
  if (Finished()) return StepKind::kNone;
  const StepPlan plan = FormStepPlan();

  if (plan.chunks.empty() && !plan.decode) {
    // Idle: jump to the next event. The wake candidates MUST mirror
    // NextEventTime's (computed on the same post-admission state), so an
    // idle skip never jumps past the deadline StepTo admitted us under.
    //
    // Overlap-swap mode can idle with in-flight H2D transfers: every
    // prefilling entry has ready_s in the future (eligible entries would
    // have formed chunks), and the earliest completion is a wake candidate.
    // An already-arrived pending head is NOT one — it is blocked on the
    // transfers' reserve, and waking "now" would spin forever.
    double ready_min = std::numeric_limits<double>::infinity();
    bool migrate_wait = false;
    for (const auto& p : prefilling_) {
      if (p.ready_s < ready_min) {
        ready_min = p.ready_s;
        migrate_wait = p.migrate;
      }
    }
    const bool copy_wait = !prefilling_.empty();
    if (!copy_wait && !exportable_.empty()) {
      // Disaggregated mode: exportable units hold the only KV (and possibly
      // block an arrived head or a preempted restore). No internal event can
      // unblock this engine — the cluster driver's extract/retain will; hand
      // control back instead of idling or tripping the checks below.
      const bool arrived_head =
          !pending_.empty() && pending_.front().arrival_s <= now_s_;
      if (pending_.empty() || arrived_head || !preempted_.empty()) {
        return StepKind::kNone;
      }
    }
    double wake_s = ready_min;
    if (!pending_.empty() &&
        (pending_.front().arrival_s > now_s_ || !copy_wait)) {
      wake_s = std::min(wake_s, std::max(now_s_, pending_.front().arrival_s));
    }
    if (!copy_wait) {
      // Without transfers the only idle cause is a future arrival: an
      // arrived head can no longer strand us here — AdmitArrived rejects
      // requests whose KV need exceeds the total budget (the old wedge this
      // FI_CHECK used to trip on) and preempts or queues the rest, and
      // preempted branches restore whenever the budget is free.
      FI_CHECK(preempted_.empty());
      FI_CHECK(!pending_.empty());
      FI_CHECK_GT(pending_.front().arrival_s, now_s_);
    }
    FI_CHECK(std::isfinite(wake_s));
    FI_CHECK_GT(wake_s, now_s_);
    const double skip_s = wake_s - now_s_;
    if (copy_wait && ready_min <= wake_s) {
      // The engine is genuinely stalled on a transfer link: nothing runnable
      // until the earliest in-flight KV lands. Attributed to the link that
      // gates the earliest entry — the inter-replica migration link or the
      // PCIe swap link (the overlap-mode analogue of the legacy serialized
      // swap stall).
      if (migrate_wait) {
        metrics_.migration_stall_ms += skip_s * 1e3;
        if (telemetry_) {
          telemetry_->GetCounter("fi_migration_stall_ms_total")
              ->Inc(now_s_, skip_s * 1e3);
        }
      } else {
        metrics_.swap_stall_ms += skip_s * 1e3;
        if (telemetry_) {
          telemetry_->GetCounter("fi_swap_stall_ms_total")->Inc(now_s_, skip_s * 1e3);
        }
      }
    }
    now_s_ = wake_s;
    metrics_.total_idle_s += skip_s;
    ++metrics_.num_idle_skips;
    metrics_.makespan_s = std::max(metrics_.makespan_s, now_s_);
    return StepKind::kIdle;
  }

  ExecuteStepPlan(plan);
  return StepKind::kWork;
}

void ServingEngine::ExecuteStepPlan(const StepPlan& plan) {
  const double t0_s = now_s_;
  const int64_t toks_before = metrics_.total_output_tokens;
  const bool spec_step = plan.decode && cfg_.spec.enabled;
  const size_t decode_branches = plan.decode ? running_.size() : 0;
  const int64_t decode_tokens =
      spec_step ? static_cast<int64_t>(decode_branches) * tree_->Size()
                : static_cast<int64_t>(decode_branches);

  // --- Attention: ONE simulated launch over the step's mixed qo_lens
  // (decode rows first, then prefill-chunk rows), reused across layers.
  // Spec verify tokens are the exception: their ancestor-masked attention is
  // priced through the tree-kernel path (SpecVerifyAttnUs) and added here.
  AttnSimInput in = HeadGeometry();
  if (plan.decode && !spec_step) {
    for (const auto& b : running_) {
      in.qo_lens.push_back(1);
      in.kv_lens.push_back(b.kv_len);
    }
    // Identify parallel-generation sibling groups (contiguous by
    // construction; members index the decode rows, which come first).
    std::map<int, AttnSimInput::Group> groups;
    for (size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].group < 0) continue;
      auto& grp = groups[running_[i].group];
      grp.prefix_len = running_[i].prefix_len;
      grp.members.push_back(static_cast<int>(i));
    }
    for (auto& [id, grp] : groups) {
      if (grp.members.size() < 2 || grp.prefix_len < cfg_.page_size) continue;
      if (cfg_.backend.composable) in.groups.push_back(grp);
    }
    // Without composable-format support the engine materializes each
    // branch's prompt KV separately (Sec. 5.1: prior shared-prefix systems
    // need separate prefix/suffix cache management), so sibling reads hit
    // distinct HBM addresses — no L2 dedup credit for the single format.
  }
  for (const auto& c : plan.chunks) {
    if (c.tokens == 0) continue;  // Swap-in transfer chunk: no attention rows.
    const auto& p = prefilling_[c.prefill_idx];
    // A chunk's query covers its new prompt tokens while KV spans everything
    // prefilled so far (cached prefix + earlier chunks + this chunk) —
    // exactly the incremental "append" kernel shape. KV memory was charged
    // for the full prompt at admission (no cross-request page dedup).
    in.qo_lens.push_back(c.tokens);
    in.kv_lens.push_back(CachedTokens(p.req) + p.computed + c.tokens);
  }
  double attn_us = in.qo_lens.empty() ? 0.0 : AttnLaunchUs(in);
  if (spec_step) attn_us += SpecVerifyAttnUs();

  // --- Draft phase (spec only): `depth` sequential forward passes of the
  // draft model, level l proposing branching^l candidates per branch. The
  // draft's own attention/KV cost is folded into the per-pass launch
  // overhead (the draft is ~100x smaller than the target).
  double draft_us = 0.0;
  if (spec_step) {
    const spec::DraftTree& tree = *tree_;
    for (int level = 1; level <= tree.Depth(); ++level) {
      draft_us += GemmUs(cfg_.spec.draft_model,
                         static_cast<int64_t>(decode_branches) * tree.LevelWidth(level));
    }
    draft_us += tree.Depth() * (cfg_.backend.use_cuda_graph
                                    ? 10.0
                                    : cfg_.spec.draft_model.num_layers * 2.0);
  }

  // --- GEMM, comm, host: charged once over the whole mixed step. Steps with
  // prefill chunks never replay graphs (their shapes change every step).
  const int64_t step_tokens = plan.prefill_tokens + decode_tokens;
  const double host_us =
      cfg_.backend.host_us_per_step +
      cfg_.backend.host_us_per_req *
          static_cast<double>(decode_branches + plan.chunks.size()) +
      (plan.chunks.empty() && cfg_.backend.use_cuda_graph
           ? 10.0
           : cfg_.model.num_layers * 2.0);
  const double gemm_us = GemmUs(cfg_.model, step_tokens);
  const double comm_us = CommStepUs(step_tokens);
  // Swap transfers (preemption evictions/restores decided at admission)
  // serialize into this step in legacy mode: conservative — the PCIe time
  // is charged where it was incurred and every running branch pays it.
  // Overlap-swap mode never accumulates pending_swap_us_ (transfers ride
  // the copy streams), so swap_us is 0 and the stall shows up only as
  // copy-wait idle time.
  const double swap_us = pending_swap_us_;
  pending_swap_us_ = 0.0;
  if (swap_us > 0.0) {
    metrics_.swap_stall_ms += swap_us * 1e-3;
    if (telemetry_) {
      telemetry_->GetCounter("fi_swap_stall_ms_total")->Inc(now_s_, swap_us * 1e-3);
    }
  }
  const double step_s =
      (draft_us + host_us + gemm_us + attn_us + comm_us + swap_us) * 1e-6;
  now_s_ += step_s;
  // Overlap accounting: copy-stream busy time inside this step's window was
  // hidden under compute (the step would have run regardless).
  if (cfg_.preemption.overlap_swap) {
    const double hidden_s =
        copy_d2h_.BusyWithin(t0_s, now_s_) + copy_h2d_.BusyWithin(t0_s, now_s_);
    if (hidden_s > 0.0) {
      metrics_.swap_hidden_ms += hidden_s * 1e3;
      if (telemetry_) {
        telemetry_->GetCounter("fi_swap_hidden_ms_total")->Inc(now_s_, hidden_s * 1e3);
      }
    }
  }
  // Inbound-migration transfer time inside this step's window was hidden
  // under compute the destination ran anyway (conservative: link time before
  // the first post-admission step is neither hidden nor stalled here).
  if (copy_migrate_.num_transfers() > 0) {
    const double mig_hidden_s = copy_migrate_.BusyWithin(t0_s, now_s_);
    if (mig_hidden_s > 0.0) {
      metrics_.migration_hidden_ms += mig_hidden_s * 1e3;
      if (telemetry_) {
        telemetry_->GetCounter("fi_migration_hidden_ms_total")
            ->Inc(now_s_, mig_hidden_s * 1e3);
      }
    }
  }

  if (std::getenv("FI_DEBUG_ATTN") != nullptr) {
    std::fprintf(stderr,
                 "[attn] step decode=%zu chunks=%zu prefill_tokens=%lld t=%.2fus\n",
                 decode_branches, plan.chunks.size(),
                 static_cast<long long>(plan.prefill_tokens), attn_us);
  }

  metrics_.total_draft_ms += draft_us * 1e-3;
  metrics_.total_gemm_ms += gemm_us * 1e-3;
  metrics_.total_attention_ms += attn_us * 1e-3;
  metrics_.total_host_ms += host_us * 1e-3;
  metrics_.total_comm_ms += comm_us * 1e-3;
  ++metrics_.num_steps;
  if (spec_step) ++metrics_.spec_steps;
  if (!plan.chunks.empty() && plan.decode) {
    ++metrics_.mixed_steps;
  } else if (!plan.chunks.empty()) {
    ++metrics_.prefill_only_steps;
  } else {
    ++metrics_.decode_only_steps;
  }
  for (const auto& c : plan.chunks) {
    if (c.tokens > 0) ++metrics_.prefill_chunks;  // Transfer chunks excluded.
  }

  // --- Stall accounting: running branches shut out of a prefill-alone step
  // emitted nothing — the head-of-line blocking chunked batching removes.
  if (!plan.decode && !running_.empty()) {
    for (auto& b : running_) ++b.stall_steps;
    metrics_.itl_stall_steps += static_cast<int64_t>(running_.size());
    ++metrics_.steps_with_stalls;
  }
  // Preempted branches sat this work step out entirely.
  metrics_.preempt_stall_steps += static_cast<int64_t>(preempted_.size());

  if (trace_) {
    const int64_t stalled = (!plan.decode && !running_.empty())
                                ? static_cast<int64_t>(running_.size())
                                : 0;
    obs::TraceEvent step;
    step.ts_us = t0_s * 1e6;
    step.dur_us = step_s * 1e6;
    step.name = obs::TraceName::kStep;
    step.flags = static_cast<uint16_t>((spec_step ? obs::kStepFlagSpec : 0) |
                                       (swap_us > 0.0 ? obs::kStepFlagSwap : 0));
    step.a = plan.prefill_tokens;
    step.b = static_cast<int64_t>(decode_branches);
    step.c = stalled;
    step.d = static_cast<int64_t>(preempted_.size());
    trace_->Record(step);
    // Phase spans laid end-to-end inside the step: step_s is exactly their
    // sum, so they tile [t0, t1] (zero-cost phases are skipped).
    double t_us = t0_s * 1e6;
    auto phase = [this, &t_us](obs::TraceName n, double us) {
      if (us > 0.0) {
        obs::TraceEvent e;
        e.ts_us = t_us;
        e.dur_us = us;
        e.name = n;
        trace_->Record(e);
      }
      t_us += us;
    };
    phase(obs::TraceName::kPhaseDraft, draft_us);
    phase(obs::TraceName::kPhaseAttn, attn_us);
    phase(obs::TraceName::kPhaseGemm, gemm_us);
    phase(obs::TraceName::kPhaseComm, comm_us);
    phase(obs::TraceName::kPhaseSwap, swap_us);
    phase(obs::TraceName::kPhaseHost, host_us);
    for (const auto& c : plan.chunks) {
      const auto& p = prefilling_[c.prefill_idx];
      TraceInstant(obs::TraceName::kChunk, p.req.id, c.tokens,
                   c.completes ? 1 : 0,
                   p.migrate ? 3 : p.restore ? (p.swap_restore ? 2 : 1) : 0);
    }
  }

  // --- Decode commit. ------------------------------------------------------
  if (plan.decode) {
    if (spec_step) {
      CommitSpecDecode();
    } else {
      CommitDecode();
    }
  }

  // --- Prefill progress and completions (FIFO order). ----------------------
  int64_t step_prefill_tokens = 0;  // Prompt work only (restores excluded).
  for (const auto& c : plan.chunks) {
    auto& p = prefilling_[c.prefill_idx];
    p.computed += c.tokens;
    ++p.chunks_used;
    if (p.restore) {
      metrics_.recompute_tokens += c.tokens;
      if (telemetry_ && c.tokens > 0) {
        telemetry_->GetCounter("fi_recompute_tokens_total")
            ->Inc(now_s_, static_cast<double>(c.tokens));
      }
    } else {
      metrics_.total_prefill_tokens += c.tokens;
      step_prefill_tokens += c.tokens;
    }
  }
  std::vector<size_t> done;
  for (const auto& c : plan.chunks) {
    if (!c.completes) continue;
    auto& p = prefilling_[c.prefill_idx];
    FI_CHECK_EQ(p.computed, p.to_compute);
    if (p.migrate) {
      // Inbound migration landed: materialize the unit's branches — grouped
      // units rebuild the shared prefix once and fork it per sibling, so the
      // destination's structural pages mirror the source's sharing — and
      // resume them. No first-token emission: TTFT was paid on the prefill
      // replica; last_emit_s carried over, so the migration latency surfaces
      // as one inter-token gap on this replica's ITL distribution.
      int prefix_seq = -1;
      const Branch& first = p.import_branches.front();
      if (spec_kv_ && first.group >= 0) {
        prefix_seq = spec_kv_->CreateSequence();
        spec_kv_->ExtendSequence(prefix_seq, first.prefix_len);
      }
      int64_t unit_kv = 0;
      for (Branch b : p.import_branches) {
        if (spec_kv_) {
          if (prefix_seq >= 0) {
            b.spec_seq = spec_kv_->ForkSequence(prefix_seq);
            spec_kv_->ExtendSequence(b.spec_seq, b.kv_len - b.prefix_len);
          } else {
            b.spec_seq = spec_kv_->CreateSequence();
            spec_kv_->ExtendSequence(b.spec_seq, b.kv_len);
          }
        }
        b.seg_start_s = now_s_;
        unit_kv += b.kv_len;
        ResumeBranch(b);
      }
      if (prefix_seq >= 0) spec_kv_->DropSequence(prefix_seq);
      TraceSpan(obs::TraceName::kReqMigrateIn, p.phase_start_s, now_s_,
                p.req.id, unit_kv,
                static_cast<int64_t>(p.import_branches.size()));
    } else if (p.restore) {
      // Restore finished: re-materialize the structural KV — swap-ins pull
      // their pages back from the host tier, recomputes rebuild a fresh
      // sequence to the branch's context length — and put the branch back
      // in the decode batch. No first-token emission: the request's TTFT
      // was paid long ago.
      Branch b = p.branch;
      if (spec_kv_) {
        if (p.swap_restore && b.spec_seq >= 0) {
          const auto st = spec_kv_->RestoreSequenceEx(b.spec_seq);
          // The engine re-reserved the branch's full budget before queueing
          // the restore, so the structural device pool can never come up
          // short here (RestoreSequenceEx returns pages == -1 if it would).
          FI_CHECK_GE(st.pages, 0);
          metrics_.restored_pages += st.pages;
          if (telemetry_) {
            telemetry_->GetCounter("fi_restored_pages_total")
                ->Inc(now_s_, static_cast<double>(st.pages));
          }
        } else {
          b.spec_seq = spec_kv_->CreateSequence();
          spec_kv_->ExtendSequence(b.spec_seq, b.kv_len);
        }
      }
      TraceSpan(p.swap_restore ? obs::TraceName::kReqSwapIn
                               : obs::TraceName::kReqRecompute,
                p.phase_start_s, now_s_, b.request_id, b.kv_len);
      b.seg_start_s = now_s_;  // The restored decode segment starts here.
      ResumeBranch(b);
    } else {
      if (p.chunks_used > 1) ++metrics_.chunked_requests;
      TraceSpan(obs::TraceName::kReqPrefill, p.phase_start_s, now_s_, p.req.id,
                p.computed, CachedTokens(p.req), p.chunks_used);
      TraceInstant(obs::TraceName::kReqFirstToken, p.req.id);
      CompletePrefill(p.req);
    }
    done.push_back(c.prefill_idx);
  }
  // Completed entries are not necessarily a prefix of prefilling_ (a huge
  // head prompt can stay in flight while a short one behind it finishes);
  // erase back-to-front so indices stay valid.
  for (auto it = done.rbegin(); it != done.rend(); ++it) {
    prefilling_.erase(prefilling_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  metrics_.makespan_s = now_s_;

  if (trace_) {
    // Post-step state snapshot, one sample per counter per executed step.
    TraceCounter(obs::TraceName::kCtrKvDevice,
                 static_cast<double>(kv_tokens_in_use_));
    TraceCounter(obs::TraceName::kCtrKvHost,
                 static_cast<double>(host_kv_tokens_in_use_));
    TraceCounter(obs::TraceName::kCtrHostStoredBytes,
                 static_cast<double>(host_kv_tokens_in_use_) *
                     cfg_.model.KvBytesPerToken(cfg_.backend.kv_dtype) *
                     CodecRatioEstimate());
    TraceCounter(obs::TraceName::kCtrQueueDepth,
                 static_cast<double>(pending_.size()));
    TraceCounter(obs::TraceName::kCtrRunning, static_cast<double>(running_.size()));
    TraceCounter(obs::TraceName::kCtrPreempted,
                 static_cast<double>(preempted_.size()));
    TraceCounter(obs::TraceName::kCtrTokPerS,
                 step_s > 0.0 ? static_cast<double>(metrics_.total_output_tokens -
                                                    toks_before) /
                                    step_s
                              : 0.0);
  }

  PublishStepTelemetry(metrics_.total_output_tokens - toks_before, step_prefill_tokens);
}

void ServingEngine::CompletePrefill(const Request& r) {
  // The request's first token is produced by its last chunk.
  metrics_.AddTtft((now_s_ - r.arrival_s) * 1e3, r.priority);
  ObserveTtft(r.tenant, r.priority, (now_s_ - r.arrival_s) * 1e3);
  ++metrics_.total_output_tokens;
  metrics_.cached_prefix_tokens += CachedTokens(r);
  const size_t running_before = running_.size();
  const int group = r.parallel_n > 1 ? next_group_++ : -1;
  if (group >= 0) group_refs_[group] = {r.parallel_n, r.input_len};
  // Spec decode: materialize the prompt KV structurally; parallel branches
  // fork it (retained pages) instead of re-owning it.
  int prefix_seq = -1;
  if (spec_kv_ && r.parallel_n > 1) {
    prefix_seq = spec_kv_->CreateSequence();
    spec_kv_->ExtendSequence(prefix_seq, r.input_len);
  }
  for (int n = 0; n < r.parallel_n; ++n) {
    Branch b;
    b.request_id = r.id;
    b.group = group;
    b.prefix_len = r.parallel_n > 1 ? r.input_len : 0;
    b.kv_len = r.input_len + 1;
    b.remaining = std::max<int64_t>(r.output_len - 1, 0);
    b.last_emit_s = now_s_;
    b.priority = r.priority;
    b.tenant = r.tenant;
    b.arrival_s = r.arrival_s;
    b.seg_start_s = now_s_;  // First decode segment opens at the first token.
    if (spec_kv_) {
      b.accept_prob =
          r.accept_prob >= 0.0 ? r.accept_prob : cfg_.spec.default_accept_prob;
      if (prefix_seq >= 0) {
        b.spec_seq = spec_kv_->ForkSequence(prefix_seq);
        spec_kv_->ExtendSequence(b.spec_seq, 1);
      } else {
        b.spec_seq = spec_kv_->CreateSequence();
        spec_kv_->ExtendSequence(b.spec_seq, r.input_len + 1);
      }
    }
    running_.push_back(b);
    // Full-reserve engines (spec, preemption) charged the whole output at
    // admission; vanilla charges tokens as they are emitted.
    if (!FullKvReserve()) kv_tokens_in_use_ += 1;
    // A zero-remaining branch never reaches a decode step; settle its charge
    // now (vanilla decode releases via the decode loop, but spec prefill
    // must not leave its sequence behind).
    if (b.remaining == 0 && spec_kv_) {
      FinishBranch(b);
      running_.pop_back();
    }
  }
  if (prefix_seq >= 0) spec_kv_->DropSequence(prefix_seq);
  if (cfg_.export_at_first_token) {
    // Disaggregated prefill pool: the finished prefill's branches do not
    // decode here — they park as one exportable unit (KV charge and
    // structural sequences intact) for the cluster driver to migrate to a
    // decode replica. Branches with nothing left to emit already finished
    // above and stay out of the unit.
    Exportable u;
    u.grouped = group >= 0;
    u.prefix_tokens = group >= 0 ? r.input_len : 0;
    u.export_s = now_s_;
    size_t keep = running_before;
    for (size_t i = running_before; i < running_.size(); ++i) {
      if (running_[i].remaining > 0) {
        u.branches.push_back(running_[i]);
      } else {
        running_[keep++] = running_[i];
      }
    }
    running_.resize(keep);
    if (!u.branches.empty()) {
      u.unit_id = next_unit_id_++;
      exportable_.push_back(std::move(u));
    }
  }
}

void ServingEngine::CommitDecode() {
  std::vector<Branch> still_running;
  still_running.reserve(running_.size());
  for (auto& b : running_) {
    const double gap_ms = (now_s_ - b.last_emit_s) * 1e3;
    metrics_.AddItl(gap_ms);
    ObserveTokens(b, /*tokens=*/1, gap_ms);
    b.last_emit_s = now_s_;
    // Preemption-enabled engines track the decode structurally too, so an
    // eviction swaps exactly the pages this branch's KV occupies.
    if (spec_kv_ && b.spec_seq >= 0) spec_kv_->ExtendSequence(b.spec_seq, 1);
    b.kv_len += 1;
    if (!FullKvReserve()) kv_tokens_in_use_ += 1;
    ++metrics_.total_output_tokens;
    b.remaining -= 1;
    if (b.remaining > 0) {
      still_running.push_back(b);
    } else {
      FinishBranch(b);
    }
  }
  running_ = std::move(still_running);
}

void ServingEngine::CommitSpecDecode() {
  const spec::DraftTree& tree = *tree_;
  std::vector<Branch> still_running;
  still_running.reserve(running_.size());
  for (auto& b : running_) {
    const int accepted = spec::SampleAcceptedLen(rng_, tree, b.accept_prob);
    ++metrics_.accepted_len_hist[static_cast<size_t>(accepted)];
    // Accepted draft prefix + the target's bonus/correction token, capped by
    // the branch's output budget.
    const int64_t commit = std::min<int64_t>(accepted + 1, b.remaining);
    SpecCommitKv(b, accepted, commit);
    // Tokens of one verify step surface together: the first closes the gap
    // since the last emission, the rest arrive at (simulated) zero ITL —
    // exactly the burst delivery real spec decoding produces.
    const double gap_ms = (now_s_ - b.last_emit_s) * 1e3;
    for (int64_t t = 0; t < commit; ++t) {
      metrics_.AddItl(t == 0 ? gap_ms : 0.0);
    }
    ObserveTokens(b, commit, gap_ms);
    b.last_emit_s = now_s_;
    b.kv_len += commit;  // Budget-wise already reserved at admission.
    metrics_.total_output_tokens += commit;
    metrics_.spec_committed_tokens += commit;
    b.remaining -= commit;
    if (b.remaining > 0) {
      still_running.push_back(b);
    } else {
      FinishBranch(b);
    }
  }
  running_ = std::move(still_running);
}

void ServingEngine::SpecCommitKv(Branch& b, int accepted, int64_t commit) {
  PagedKVCache& kv = *spec_kv_;
  const spec::DraftTree& tree = *tree_;
  const int64_t len0 = kv.SequenceLength(b.spec_seq);
  FI_CHECK_EQ(len0, b.kv_len);

  if (tree.Branching() == 1) {
    // Chain draft: the speculative tail extends the branch in place; the
    // rejected suffix rolls back by truncation.
    kv.ExtendSequence(b.spec_seq, tree.Size());
    kv.TruncateSequence(b.spec_seq, len0 + std::min<int64_t>(commit, tree.Size()));
  } else {
    // Tree draft: each top-level subtree speculates on its own fork of the
    // committed KV (full pages shared via refcount, partial tail page CoW).
    // The winning subtree replaces the branch's sequence; every loser — and
    // the winner's own rejected suffix — unwinds through ReleasePage.
    std::vector<int> forks(static_cast<size_t>(tree.Branching()));
    for (auto& f : forks) {
      f = kv.ForkSequence(b.spec_seq);
      kv.ExtendSequence(f, tree.SubtreeSize());
    }
    if (accepted > 0) {
      kv.DropSequence(b.spec_seq);
      // Which subtree won is structurally irrelevant; take the first.
      b.spec_seq = forks[0];
      for (size_t j = 1; j < forks.size(); ++j) kv.DropSequence(forks[j]);
      kv.TruncateSequence(b.spec_seq,
                          len0 + std::min<int64_t>(commit, tree.SubtreeSize()));
    } else {
      for (int f : forks) kv.DropSequence(f);
    }
  }
  // Bonus/correction token (and chain full-acceptance overflow): append the
  // remainder the rollback could not cover.
  const int64_t target = len0 + commit;
  const int64_t have = kv.SequenceLength(b.spec_seq);
  if (have < target) kv.ExtendSequence(b.spec_seq, target - have);
  FI_CHECK_EQ(kv.SequenceLength(b.spec_seq), target);
}

ServingMetrics ServingEngine::Run(const std::vector<Request>& workload) {
  Reset();
  for (const auto& r : workload) Admit(r);
  Drain();
  return metrics_;
}

}  // namespace flashinfer::serving
