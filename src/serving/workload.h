// Serving workload generation (Sec. 4.1 datasets).
//
// The attention engine only sees sequence lengths and arrival times, so the
// datasets are reproduced as length distributions: a ShareGPT-like
// log-normal mixture (matching the published prompt/response statistics of
// the ShareGPT_Vicuna_unfiltered dump), the paper's synthetic "Variable"
// uniform workload, a Zipf-skewed distribution (Sec. 4.2), and an
// MT-Bench-like multi-turn workload (Sec. 4.3). Arrivals are Poisson at a
// configurable request rate.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace flashinfer::serving {

struct Request {
  int id = 0;
  double arrival_s = 0.0;
  int64_t input_len = 0;
  int64_t output_len = 0;
  /// OpenAI "n" parameter: parallel generations sharing the prompt (Sec. 4.4).
  int parallel_n = 1;
};

/// ShareGPT-like conversation lengths: log-normal prompt (~mean 220) and
/// response (~mean 190), clipped to [4, 2048].
std::vector<Request> ShareGptWorkload(Rng& rng, int num_requests, double request_rate,
                                      int parallel_n = 1);

/// The paper's "Variable" workload: input U(lo, hi), fixed output length.
std::vector<Request> UniformWorkload(Rng& rng, int num_requests, double request_rate,
                                     int64_t lo, int64_t hi, int64_t output_len = 256);

/// Batch of sequence lengths (no arrivals) for kernel-level benches:
/// constant / uniform / Zipf-skewed with a target mean (Sec. 4.2).
enum class LengthDist { kConstant, kUniform, kSkewed };
std::vector<int64_t> SampleLengths(Rng& rng, LengthDist dist, int batch, int64_t mean_len);

}  // namespace flashinfer::serving
