// Serving workload generation (Sec. 4.1 datasets).
//
// The attention engine only sees sequence lengths and arrival times, so the
// datasets are reproduced as length distributions: a ShareGPT-like
// log-normal mixture (matching the published prompt/response statistics of
// the ShareGPT_Vicuna_unfiltered dump), the paper's synthetic "Variable"
// uniform workload, a Zipf-skewed distribution (Sec. 4.2), and an
// MT-Bench-like multi-turn workload (Sec. 4.3). Arrivals are Poisson at a
// configurable request rate.
//
// For the cluster subsystem (src/cluster/) requests additionally carry
// token-id prompts: MultiTenantWorkload() models a serving fleet where each
// tenant front-loads a fixed system prompt, tenant popularity is
// Zipf-distributed, and only the user turn differs per request — the setting
// where prefix-affinity routing pays off (RadixAttention / PackInfer).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace flashinfer::serving {

struct Request {
  int id = 0;
  double arrival_s = 0.0;
  int64_t input_len = 0;
  int64_t output_len = 0;
  /// OpenAI "n" parameter: parallel generations sharing the prompt (Sec. 4.4).
  int parallel_n = 1;
  /// Prompt token ids, `input_len` long when present (may be empty: the
  /// engine itself never inspects ids; the cluster router matches prefixes).
  std::vector<int32_t> prompt_tokens;
  /// Prompt tokens already resident in the serving replica's prefix cache
  /// (set by the cluster layer before Admit); prefill recomputes only the
  /// remainder.
  int64_t cached_prefix_len = 0;
  /// Tenant (system-prompt pool) index, -1 for single-tenant workloads.
  int tenant = -1;
  /// Per-request draft acceptance probability for speculative decoding
  /// (how predictable this request's continuation is to the draft model);
  /// < 0 means "use SpecDecodeConfig::default_accept_prob".
  double accept_prob = -1.0;
  /// Scheduling priority under KV pressure (higher = more important). A
  /// preemption-enabled engine evicts the lowest-priority (then youngest)
  /// running branches to admit a higher-priority arrival that does not fit.
  int priority = 0;
};

/// ShareGPT-like conversation lengths: log-normal prompt (~mean 220) and
/// response (~mean 190), clipped to [4, 2048].
std::vector<Request> ShareGptWorkload(Rng& rng, int num_requests, double request_rate,
                                      int parallel_n = 1);

/// The paper's "Variable" workload: input U(lo, hi), fixed output length.
std::vector<Request> UniformWorkload(Rng& rng, int num_requests, double request_rate,
                                     int64_t lo, int64_t hi, int64_t output_len = 256);

/// Multi-tenant system-prompt pool for cluster routing experiments.
struct TenantPoolConfig {
  /// Number of distinct tenants (each owns one fixed system prompt).
  int num_tenants = 32;
  /// Zipf exponent over tenant popularity (rank 1 = most popular).
  double zipf_s = 1.1;
  /// System-prompt length drawn once per tenant, uniform in [lo, hi].
  int64_t prefix_len_lo = 256;
  int64_t prefix_len_hi = 1024;
  /// Per-request unique user turn, log-normal with this mean, clip [4, 512].
  int64_t user_len_mean = 64;
  /// Response length, log-normal with this mean, clip [4, 1024].
  int64_t output_len_mean = 128;
};

/// Requests with real token-id prompts: `tenant prefix + unique user turn`,
/// tenant picked by Zipf popularity, Poisson arrivals. Token ids are drawn
/// per tenant from disjoint id ranges so prefixes collide only by sharing a
/// tenant.
std::vector<Request> MultiTenantWorkload(Rng& rng, int num_requests, double request_rate,
                                         const TenantPoolConfig& cfg = {});

/// Bursty long-prompt mix for the chunked-prefill experiments: steady
/// short-prompt decode traffic (Poisson) overlaid with periodic bursts of
/// long prompts arriving together. Under a prefill-alone engine every burst
/// head-of-line-blocks the running decodes; chunked mixed batching absorbs
/// the same work one chunk at a time.
struct BurstyPrefillConfig {
  /// Steady traffic: short prompts that keep a decode batch resident.
  int num_steady = 200;
  double steady_rate = 30.0;
  int64_t steady_input_lo = 64;
  int64_t steady_input_hi = 256;
  int64_t steady_output = 128;
  /// Bursts: `burst_size` long prompts arriving at the same instant, every
  /// `burst_period_s` seconds starting at `first_burst_s`.
  int num_bursts = 4;
  int burst_size = 4;
  double first_burst_s = 1.0;
  double burst_period_s = 1.5;
  int64_t burst_input_lo = 4096;
  int64_t burst_input_hi = 8192;
  int64_t burst_output = 32;
  /// Prompt prefix already resident in the serving replica's prefix cache
  /// for burst requests (Request::cached_prefix_len): chunking then covers
  /// only the uncached suffix. 0 = cold cache.
  int64_t burst_cached_prefix = 0;
};

/// Requests sorted by arrival, ids reassigned in arrival order.
std::vector<Request> BurstyLongPrefillWorkload(Rng& rng, const BurstyPrefillConfig& cfg = {});

/// Assigns every request a priority level drawn from {0 .. weights.size()-1}
/// with probability proportional to `weights[level]` (e.g. {0.8, 0.2} models
/// 20% interactive traffic over a batch tier). Higher levels preempt lower
/// ones under KV pressure.
void AssignPriorities(Rng& rng, std::vector<Request>& workload,
                      const std::vector<double>& weights);

/// Assigns every request a draft-acceptance probability drawn uniformly from
/// [lo, hi] — the per-request acceptance model for speculative decoding
/// (some requests are boilerplate the draft nails, some are not). Pass
/// lo == hi for a homogeneous sweep point.
void AssignAcceptance(Rng& rng, std::vector<Request>& workload, double lo, double hi);

/// Batch of sequence lengths (no arrivals) for kernel-level benches:
/// constant / uniform / Zipf-skewed with a target mean (Sec. 4.2).
enum class LengthDist { kConstant, kUniform, kSkewed };
std::vector<int64_t> SampleLengths(Rng& rng, LengthDist dist, int batch, int64_t mean_len);

}  // namespace flashinfer::serving
