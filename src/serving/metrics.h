// Latency metrics for serving experiments: TTFT (time-to-first-token) and
// ITL (inter-token latency), reported as medians/percentiles like the paper.
#pragma once

#include <cstdint>
#include <vector>

namespace flashinfer::serving {

/// p in [0,1]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);
double Median(std::vector<double> values);
double Mean(const std::vector<double>& values);

/// Aggregated serving metrics for one run.
struct ServingMetrics {
  std::vector<double> ttft_ms;       // Per request.
  std::vector<double> itl_ms;        // Per emitted token (gaps).
  double makespan_s = 0.0;           // Total simulated time.
  int64_t total_output_tokens = 0;
  double total_attention_ms = 0.0;   // Attention kernel time summed.
  double total_gemm_ms = 0.0;
  double total_host_ms = 0.0;
  double total_comm_ms = 0.0;        // Tensor-parallel all-reduce time.
  int64_t num_steps = 0;
  /// Prompt tokens actually computed in prefill steps (prefix-cache misses).
  int64_t total_prefill_tokens = 0;
  /// Prompt tokens skipped because the replica's prefix cache held them.
  int64_t cached_prefix_tokens = 0;

  double MedianTtftMs() const { return Median(ttft_ms); }
  double MedianItlMs() const { return Median(itl_ms); }
  double P99TtftMs() const { return Percentile(ttft_ms, 0.99); }
  double P99ItlMs() const { return Percentile(itl_ms, 0.99); }
  /// Arbitrary-percentile helpers (p in [0,1]).
  double TtftPercentileMs(double p) const { return Percentile(ttft_ms, p); }
  double ItlPercentileMs(double p) const { return Percentile(itl_ms, p); }
  double ThroughputTokS() const {
    return makespan_s > 0.0 ? static_cast<double>(total_output_tokens) / makespan_s : 0.0;
  }
  /// Wall-clock the simulated GPU spent executing steps, milliseconds.
  double BusyMs() const {
    return total_attention_ms + total_gemm_ms + total_host_ms + total_comm_ms;
  }
};

}  // namespace flashinfer::serving
