// Latency metrics for serving experiments: TTFT (time-to-first-token) and
// ITL (inter-token latency), reported as medians/percentiles like the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashinfer::serving {

/// p in [0,1]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);
double Median(std::vector<double> values);
double Mean(const std::vector<double>& values);

/// Aggregated serving metrics for one run.
struct ServingMetrics {
  std::vector<double> ttft_ms;       // Per request.
  std::vector<double> itl_ms;        // Per emitted token (gaps).
  double makespan_s = 0.0;           // Total simulated time.
  int64_t total_output_tokens = 0;
  double total_attention_ms = 0.0;   // Attention kernel time summed.
  double total_gemm_ms = 0.0;
  double total_host_ms = 0.0;
  double total_comm_ms = 0.0;        // Tensor-parallel all-reduce time.
  int64_t num_steps = 0;
  /// Prompt tokens actually computed in prefill steps (prefix-cache misses).
  int64_t total_prefill_tokens = 0;
  /// Prompt tokens skipped because the replica's prefix cache held them.
  int64_t cached_prefix_tokens = 0;

  // --- Idle accounting (StepTo returns executed work steps only). ----------
  /// Idle skips: the engine had nothing runnable and jumped to an arrival.
  int64_t num_idle_skips = 0;
  /// Simulated seconds spent idle (no running work, waiting on arrivals).
  double total_idle_s = 0.0;

  // --- Speculative decoding (populated when spec decode is enabled). -------
  /// Verify steps executed (each replaces one vanilla decode step).
  int64_t spec_steps = 0;
  /// Tokens committed by verify steps (accepted draft + bonus tokens).
  int64_t spec_committed_tokens = 0;
  /// Histogram over accepted draft-prefix lengths: index k counts branch
  /// verifications that accepted exactly k draft tokens (size depth+1).
  std::vector<int64_t> accepted_len_hist;
  /// Draft-model time (GEMM + per-pass host), milliseconds.
  double total_draft_ms = 0.0;

  double MedianTtftMs() const { return Median(ttft_ms); }
  double MedianItlMs() const { return Median(itl_ms); }
  double P99TtftMs() const { return Percentile(ttft_ms, 0.99); }
  double P99ItlMs() const { return Percentile(itl_ms, 0.99); }
  /// Arbitrary-percentile helpers (p in [0,1]).
  double TtftPercentileMs(double p) const { return Percentile(ttft_ms, p); }
  double ItlPercentileMs(double p) const { return Percentile(itl_ms, p); }
  double ThroughputTokS() const {
    return makespan_s > 0.0 ? static_cast<double>(total_output_tokens) / makespan_s : 0.0;
  }
  /// Wall-clock the simulated GPU spent executing steps, milliseconds.
  double BusyMs() const {
    return total_attention_ms + total_gemm_ms + total_host_ms + total_comm_ms +
           total_draft_ms;
  }

  // --- Speculative-decoding derived metrics --------------------------------
  /// Output tokens committed per branch verification (accepted + bonus; a
  /// vanilla decode step commits exactly 1.0 per branch by construction, so
  /// this is the per-step speedup knob spec decoding turns).
  double TokensPerSpecStep() const {
    int64_t verifications = 0;
    for (int64_t c : accepted_len_hist) verifications += c;
    return verifications > 0 ? static_cast<double>(spec_committed_tokens) /
                                   static_cast<double>(verifications)
                             : 0.0;
  }
  /// Mean accepted draft-prefix length over all branch verifications.
  double MeanAcceptedLen() const {
    int64_t verifications = 0, accepted = 0;
    for (std::size_t k = 0; k < accepted_len_hist.size(); ++k) {
      verifications += accepted_len_hist[k];
      accepted += static_cast<int64_t>(k) * accepted_len_hist[k];
    }
    return verifications > 0
               ? static_cast<double>(accepted) / static_cast<double>(verifications)
               : 0.0;
  }
  /// Fraction of busy time spent drafting (the overhead spec decode pays).
  double DraftOverheadFrac() const {
    const double busy = BusyMs();
    return busy > 0.0 ? total_draft_ms / busy : 0.0;
  }
};

}  // namespace flashinfer::serving
