// Latency metrics for serving experiments: TTFT (time-to-first-token) and
// ITL (inter-token latency), reported as medians/percentiles like the paper.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/stats.h"
#include "util/check.h"

namespace flashinfer::serving {

/// p in [0,1]; linear interpolation between order statistics. Takes the
/// samples by const reference (sorting an internal copy) — callers pass
/// metric vectors that can hold one sample per emitted token.
double Percentile(const std::vector<double>& values, double p);
double Median(const std::vector<double>& values);
double Mean(const std::vector<double>& values);

/// Aggregated serving metrics for one run.
struct ServingMetrics {
  std::vector<double> ttft_ms;       // Per request.
  /// Per emitted token (gaps). Empty when `bounded_itl` is set — long-lived
  /// engines opt out of the one-double-per-token growth and answer ITL
  /// percentile queries from the histogram sketch instead.
  std::vector<double> itl_ms;
  /// Log-bucketed ITL sketch, always fed by AddItl (a few dozen buckets,
  /// ~19% worst-case relative quantile error, exact count/min/max/mean).
  obs::Histogram itl_sketch;
  /// When true (set from EngineConfig::telemetry.bounded_itl at Reset),
  /// itl_ms stays empty and the percentile accessors use the sketch.
  bool bounded_itl = false;
  double makespan_s = 0.0;           // Total simulated time.
  int64_t total_output_tokens = 0;
  double total_attention_ms = 0.0;   // Attention kernel time summed.
  double total_gemm_ms = 0.0;
  double total_host_ms = 0.0;
  double total_comm_ms = 0.0;        // Tensor-parallel all-reduce time.
  int64_t num_steps = 0;
  /// Prompt tokens actually computed in prefill steps (prefix-cache misses).
  int64_t total_prefill_tokens = 0;
  /// Prompt tokens skipped because the replica's prefix cache held them.
  int64_t cached_prefix_tokens = 0;

  // --- Idle accounting (StepTo returns executed work steps only). ----------
  /// Idle skips: the engine had nothing runnable and jumped to an arrival.
  int64_t num_idle_skips = 0;
  /// Simulated seconds spent idle (no running work, waiting on arrivals).
  double total_idle_s = 0.0;

  // --- Chunked prefill / mixed batching (StepPlan executor). ---------------
  /// Steps whose plan carried both prefill chunks and decode (or spec
  /// verify) tokens — the unified batches the balanced scheduler absorbs.
  int64_t mixed_steps = 0;
  /// Steps that ran prefill chunks with no decode tokens: either no branch
  /// was running, or (legacy `prefill_chunk_tokens = 0`) prefill ran alone
  /// and every running branch stalled.
  int64_t prefill_only_steps = 0;
  /// Steps with decode/spec-verify tokens only (no prefill in flight).
  int64_t decode_only_steps = 0;
  /// Prefill chunk launches (== prefill steps when chunking is off).
  int64_t prefill_chunks = 0;
  /// Requests whose prompt spanned more than one chunk.
  int64_t chunked_requests = 0;
  /// Sum over steps of running branches that emitted no token that step
  /// (head-of-line blocking behind a prefill-alone step).
  int64_t itl_stall_steps = 0;
  /// Steps during which at least one running branch stalled.
  int64_t steps_with_stalls = 0;
  /// Per finished branch: number of work steps it sat through without
  /// emitting a token. All zeros once mixed batching is on.
  std::vector<int64_t> branch_stalls;

  // --- Preemption / two-tier KV (populated when preemption is enabled;
  // rejected_requests can also count on vanilla engines — the graceful form
  // of the old tight-budget admission wedge). ------------------------------
  /// Running branches evicted to relieve KV pressure.
  int64_t num_preemptions = 0;
  /// Requests refused admission because their KV need exceeds the *total*
  /// device budget — they could never run, even on an empty engine. The
  /// pre-preemption engine aborted (FI_CHECK) on this condition.
  int64_t rejected_requests = 0;
  /// Device KV pages released by evictions (swapped out or dropped).
  int64_t evicted_pages = 0;
  /// Pages swapped back in from the host tier by restores.
  int64_t restored_pages = 0;
  /// PCIe transfer time for swap-outs + swap-ins, milliseconds. Legacy mode
  /// charges it into the steps the transfers serialize with; overlap-swap
  /// mode routes it through the async copy streams instead (see
  /// swap_hidden_ms / swap_stall_ms for where the time actually landed).
  double total_swap_ms = 0.0;
  /// Copy-stream busy time that overlapped executed compute steps,
  /// milliseconds (overlap-swap mode only; always <= total_swap_ms).
  double swap_hidden_ms = 0.0;
  /// Swap time the request path actually waited on: in legacy mode every
  /// transfer serializes into a step (swap_stall_ms == total_swap_ms); in
  /// overlap mode only the idle time spent waiting for an in-flight swap-in
  /// with nothing else runnable counts.
  double swap_stall_ms = 0.0;
  /// Context tokens re-prefilled by recompute restores (not counted in
  /// total_prefill_tokens: this is restore work, not prompt work).
  int64_t recompute_tokens = 0;
  int64_t num_swap_restores = 0;
  int64_t num_recompute_restores = 0;
  /// Sum over work steps of preempted branches waiting out the step — the
  /// stall a victim's user experiences, analogous to itl_stall_steps.
  int64_t preempt_stall_steps = 0;
  /// --- Host-tier codec (populated when PreemptionConfig::host_codec is
  /// enabled; all zero otherwise). Byte totals are model-level KV bytes
  /// (tokens * KvBytesPerToken), scaled by the structural tier's realized
  /// encode ratio for the stored side. ------------------------------------
  /// Logical KV bytes of every page swapped out to the host tier.
  double evicted_logical_bytes = 0.0;
  /// Encoded bytes those pages actually occupied in the host tier.
  double evicted_stored_bytes = 0.0;
  /// Time spent encoding pages on eviction, ms (priced into swap-out).
  double codec_encode_ms = 0.0;
  /// Time spent decoding pages on restore, ms (priced into the restore
  /// transfer, overlap-swap CopyStream path included).
  double codec_decode_ms = 0.0;
  /// Accuracy proxy: sum of per-page quantization MSE over every page the
  /// codec quantized on eviction, and the page count it sums over.
  double quant_mse_sum = 0.0;
  int64_t quant_mse_pages = 0;
  /// Request priority per TTFT sample (parallel to ttft_ms) so benches can
  /// split latency tails by priority class under KV pressure.
  std::vector<int> ttft_priority;

  // --- Disaggregated prefill/decode migration (populated on engines that
  // export at first token / import migrated branches). ---------------------
  /// Migration units extracted from this (prefill) replica at first token.
  int64_t num_migrations_out = 0;
  /// Migration units admitted on this (decode) replica.
  int64_t num_migrations_in = 0;
  /// Units the cluster offered back after a decode-pool rejection — the
  /// prefill replica kept the branches and decodes them locally.
  int64_t num_migrations_retained = 0;
  /// KV tokens shipped out of this replica (unique tokens; shared prefixes
  /// counted once).
  int64_t migrated_kv_tokens = 0;
  /// Inter-replica link transfer time for migrations landing on this
  /// replica, milliseconds (charged on the importing side).
  double total_migration_ms = 0.0;
  /// Migration transfer time that overlapped executed compute steps on the
  /// importing replica, milliseconds (always <= total_migration_ms).
  double migration_hidden_ms = 0.0;
  /// Idle time the importing replica spent waiting on an in-flight
  /// migration with nothing else runnable, milliseconds.
  double migration_stall_ms = 0.0;

  // --- Speculative decoding (populated when spec decode is enabled). -------
  /// Verify steps executed (each replaces one vanilla decode step).
  int64_t spec_steps = 0;
  /// Tokens committed by verify steps (accepted draft + bonus tokens).
  int64_t spec_committed_tokens = 0;
  /// Histogram over accepted draft-prefix lengths: index k counts branch
  /// verifications that accepted exactly k draft tokens (size depth+1).
  std::vector<int64_t> accepted_len_hist;
  /// Draft-model time (GEMM + per-pass host), milliseconds.
  double total_draft_ms = 0.0;

  /// The only sanctioned way to record a TTFT sample: keeps ttft_ms and
  /// ttft_priority in lockstep (every consumer that splits the tail by
  /// priority indexes one with the other).
  void AddTtft(double ms, int priority) {
    ttft_ms.push_back(ms);
    ttft_priority.push_back(priority);
  }

  /// The only sanctioned way to record an ITL sample: feeds the bounded
  /// sketch always, and the exact per-token vector unless `bounded_itl`
  /// dropped it.
  void AddItl(double ms) {
    itl_sketch.Add(ms);
    if (!bounded_itl) itl_ms.push_back(ms);
  }

  /// ITL samples recorded (vector- and sketch-backed agree by construction).
  int64_t ItlCount() const {
    return bounded_itl ? itl_sketch.Count() : static_cast<int64_t>(itl_ms.size());
  }

  double MedianTtftMs() const { return Median(ttft_ms); }
  double MedianItlMs() const { return ItlPercentileMs(0.5); }
  double P99TtftMs() const { return Percentile(ttft_ms, 0.99); }
  double P99ItlMs() const { return ItlPercentileMs(0.99); }
  /// Worst single inter-token gap — the stall a user actually notices.
  /// Exact in both modes (the sketch tracks max outside its buckets).
  double MaxItlMs() const {
    return bounded_itl ? itl_sketch.MaxValue()
                       : (itl_ms.empty()
                              ? 0.0
                              : *std::max_element(itl_ms.begin(), itl_ms.end()));
  }
  /// Arbitrary-percentile helpers (p in [0,1]).
  double TtftPercentileMs(double p) const { return Percentile(ttft_ms, p); }
  double ItlPercentileMs(double p) const {
    return bounded_itl ? itl_sketch.Quantile(p) : Percentile(itl_ms, p);
  }
  double ThroughputTokS() const {
    return makespan_s > 0.0 ? static_cast<double>(total_output_tokens) / makespan_s : 0.0;
  }
  /// Wall-clock the simulated GPU spent executing steps, milliseconds.
  double BusyMs() const {
    return total_attention_ms + total_gemm_ms + total_host_ms + total_comm_ms +
           total_draft_ms;
  }

  // --- Chunked-prefill derived metrics -------------------------------------
  /// Fraction of work steps that batched prefill chunks with decode tokens
  /// (mixed-batch occupancy; 0 under the legacy prefill-alone loop).
  double MixedStepFrac() const {
    return num_steps > 0
               ? static_cast<double>(mixed_steps) / static_cast<double>(num_steps)
               : 0.0;
  }
  /// Mean stalled steps per finished branch (steps where it emitted nothing).
  double MeanBranchStalls() const {
    if (branch_stalls.empty()) return 0.0;
    int64_t total = 0;
    for (int64_t s : branch_stalls) total += s;
    return static_cast<double>(total) / static_cast<double>(branch_stalls.size());
  }

  // --- Preemption derived metrics ------------------------------------------
  /// Fraction of swap transfer time hidden under executed compute steps.
  /// nullopt when no swap traffic occurred at all — distinct from 0.0, which
  /// means transfers happened and NONE overlapped (legacy serialization).
  /// Callers that conflated the two read a perfect-looking 0 "efficiency"
  /// out of runs that never swapped; use value_or(0.0) only where that is
  /// actually the right collapse (e.g. summing stall budgets).
  std::optional<double> SwapOverlapEfficiency() const {
    if (total_swap_ms <= 0.0) return std::nullopt;
    return swap_hidden_ms / total_swap_ms;
  }

  /// Fraction of migration transfer time hidden under executed compute steps
  /// on the importing replica. nullopt when no migration traffic occurred
  /// (same disambiguation as SwapOverlapEfficiency).
  std::optional<double> MigrationOverlapEfficiency() const {
    if (total_migration_ms <= 0.0) return std::nullopt;
    return migration_hidden_ms / total_migration_ms;
  }

  // --- Host-tier codec derived metrics -------------------------------------
  /// Stored/logical byte ratio of everything evicted to the host tier
  /// (1.0 when nothing was evicted or the codec is off). The capacity
  /// multiplier of the codec tier is the reciprocal.
  double HostStoredRatio() const {
    return evicted_logical_bytes > 0.0 ? evicted_stored_bytes / evicted_logical_bytes
                                       : 1.0;
  }
  /// Mean per-page quantization MSE over every page quantized on eviction
  /// (the accuracy proxy; 0 when the quantizer never ran).
  double MeanPageQuantMse() const {
    return quant_mse_pages > 0 ? quant_mse_sum / static_cast<double>(quant_mse_pages)
                               : 0.0;
  }

  /// TTFT percentile over requests of one priority class (p in [0,1]).
  double TtftPercentileMsForPriority(int priority, double p) const {
    // Parallel-vector invariant: every TTFT sample carries a priority tag
    // (AddTtft is the only writer). Silently truncating to the shorter
    // vector would misattribute tail samples.
    FI_CHECK_EQ(ttft_ms.size(), ttft_priority.size());
    std::vector<double> v;
    for (std::size_t i = 0; i < ttft_ms.size(); ++i) {
      if (ttft_priority[i] == priority) v.push_back(ttft_ms[i]);
    }
    return Percentile(v, p);
  }

  // --- Speculative-decoding derived metrics --------------------------------
  /// Output tokens committed per branch verification (accepted + bonus; a
  /// vanilla decode step commits exactly 1.0 per branch by construction, so
  /// this is the per-step speedup knob spec decoding turns).
  double TokensPerSpecStep() const {
    int64_t verifications = 0;
    for (int64_t c : accepted_len_hist) verifications += c;
    return verifications > 0 ? static_cast<double>(spec_committed_tokens) /
                                   static_cast<double>(verifications)
                             : 0.0;
  }
  /// Mean accepted draft-prefix length over all branch verifications.
  double MeanAcceptedLen() const {
    int64_t verifications = 0, accepted = 0;
    for (std::size_t k = 0; k < accepted_len_hist.size(); ++k) {
      verifications += accepted_len_hist[k];
      accepted += static_cast<int64_t>(k) * accepted_len_hist[k];
    }
    return verifications > 0
               ? static_cast<double>(accepted) / static_cast<double>(verifications)
               : 0.0;
  }
  /// Fraction of busy time spent drafting (the overhead spec decode pays).
  double DraftOverheadFrac() const {
    const double busy = BusyMs();
    return busy > 0.0 ? total_draft_ms / busy : 0.0;
  }
};

}  // namespace flashinfer::serving
