// Serving-backend models and the plan-driven attention time estimator.
//
// A backend bundles the attention engine configuration an LLM server would
// use: scheduler policy, kernel efficiency scale (Triton kernels trail
// CUDA/CUTLASS — Appendix C), host-side overheads (Table 8's Python
// bookkeeping), RoPE fusion and composable-format support. The estimator
// runs the *real* scheduler (runtime/scheduler.h) over the step's sequence
// lengths and prices the resulting plan with the kernel cost model — the
// serving engine never hand-waves attention time.
#pragma once

#include <string>
#include <vector>

#include "gpusim/cost.h"
#include "gpusim/device.h"
#include "runtime/batch_handle.h"

namespace flashinfer::serving {

struct BackendConfig {
  std::string name = "FlashInfer v0.2";
  SchedulerKind scheduler = SchedulerKind::kBalanced;
  DType kv_dtype = DType::kF16;
  /// Multiplier on attention kernel time (1.0 = CUDA/CUTLASS templates).
  double kernel_time_scale = 1.0;
  /// Achieved fraction of peak for dense GEMMs.
  double gemm_eff = 0.72;
  /// Host CPU time per engine step, microseconds (scheduling, batching).
  double host_us_per_step = 150.0;
  /// Host CPU time per batched request per step (Python array ops in the
  /// integration layer; the vLLM-default backend sets this high).
  double host_us_per_req = 2.0;
  /// CUDA-graph replay for decode steps (cuts per-layer launch overhead).
  bool use_cuda_graph = true;
  /// RoPE fused into the attention kernel (vs a separate pass over Q/K).
  bool fused_rope = true;
  /// Shared-prefix composable formats (Sec. 3.1.2) for parallel generation.
  bool composable = false;
  /// GQA head-group fusion (Appendix A).
  bool head_fusion = true;
  /// PackInfer-style compute/I/O-aware tile packing for heterogeneous
  /// batches (mixed prefill-chunk + decode/verify qo_lens). The default
  /// heuristic picks ONE query tile from the batch-average fused length, so
  /// a mixed batch compromises: a large tile starves decode rows of memory
  /// parallelism, a small tile shreds prefill chunks into many low-
  /// efficiency tiles. Packed mode splits the batch into a compute-bound
  /// class (large fused rows, priced at their natural large tile) and a
  /// bandwidth-bound class (small fused rows, priced at a high-occupancy
  /// small tile), both packed into one persistent launch. Engages only when
  /// both classes are present — homogeneous batches already match the
  /// average heuristic. Off by default (baseline pinned by benches).
  bool packed_tiles = false;
};

/// FlashInfer v0.2 backend (balanced scheduler, fused kernels, graphs).
BackendConfig FlashInferBackend();
/// SGLang's Triton backend: no balanced scheduler, Triton kernel efficiency.
BackendConfig TritonBackend();
/// FlashAttention-library backend: fixed tiles, no balanced scheduler.
BackendConfig FlashAttentionBackend();
/// vLLM default attention backend (Table 8 comparison).
BackendConfig VllmDefaultBackend();

/// One step's attention shape.
struct AttnSimInput {
  std::vector<int64_t> qo_lens;  // Query tokens per request.
  std::vector<int64_t> kv_lens;  // Total KV length per request.
  /// Shared-prefix groups (composable formats); members index qo_lens.
  struct Group {
    int64_t prefix_len = 0;
    std::vector<int> members;
  };
  std::vector<Group> groups;
  int num_qo_heads = 32;
  int num_kv_heads = 8;
  int head_dim = 128;
  int page_size = 16;
  bool causal = true;
  /// Fraction of KV traffic served from L2 (cross-CTA page reuse; used to
  /// model single-format shared-prefix reads and unfused GQA).
  double kv_l2_fraction = 0.0;
  /// Bench overrides (0/auto by default): fixed query tile, forced template
  /// generation (2 = FA2, 3 = FA3), forced dense (contiguous) KV path.
  int tile_q_override = 0;
  int force_template = 0;
  bool force_dense = false;
};

/// Simulates one attention launch (per layer) for the step: builds the BSR
/// from the lengths, runs the backend's scheduler, prices the plan, and
/// returns the launch report. With `backend.composable` and non-empty
/// groups, prefix KV is processed once per group at large Br (level 0) and
/// suffixes at small Br (level 1), plus the extra contraction.
gpusim::SimReport SimulateBatchAttention(const gpusim::DeviceSpec& dev,
                                         const BackendConfig& backend, const AttnSimInput& in);

/// Prices one attention launch over an *explicit* BSR — masks that qo/kv
/// lengths cannot describe (tree-attention verification for speculative
/// decoding). The BSR must already live in the fused-row space (rows
/// expanded by the GQA group size when `backend.head_fusion`) with
/// `bsr.br` equal to the query tile it was built at; the backend's scheduler
/// runs over exactly the mask's non-zero blocks (causal trimming is off: the
/// mask IS the structure). `qo_lens`/`kv_lens` are per-request token rows
/// and KV extents, used for request attribution and pricing context only.
gpusim::SimReport SimulateMaskedAttention(const gpusim::DeviceSpec& dev,
                                          const BackendConfig& backend,
                                          const AttnSimInput& in,
                                          const sparse::BsrMatrix& bsr,
                                          const std::vector<int64_t>& qo_lens,
                                          const std::vector<int64_t>& kv_lens);

}  // namespace flashinfer::serving
