// Software implementations of the reduced-precision storage types used by the
// attention engine: IEEE binary16 (`half_t`), bfloat16 (`bf16_t`) and the two
// OCP FP8 formats (`fp8_e4m3_t`, `fp8_e5m2_t`, per Micikevicius et al. 2022).
//
// All types are pure storage formats: arithmetic always happens in float
// (mirroring fp32 accumulation on tensor cores); conversion to the storage
// type rounds to nearest-even and saturates to the largest finite value
// (matching the CUDA __nv_fp8 saturating conversions used for KV-caches).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string_view>

namespace flashinfer {

namespace detail {

// Conversion implementations are inline so JIT-compiled kernels need
// no library linkage (and so they inline into hot loops).


inline uint32_t FloatBits(float f) noexcept {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float BitsToFloat(uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}


inline uint16_t FloatToHalfBits(float f) noexcept {
  const uint32_t x = FloatBits(f);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xFF) - 127 + 15;
  uint32_t man = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN: preserve NaN-ness.
    return static_cast<uint16_t>(sign | 0x7C00u | (man ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {
    // Overflow -> inf (binary16 has inf, unlike e4m3).
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {
    if (exp < -10) return static_cast<uint16_t>(sign);  // Underflow to zero.
    // Subnormal: shift mantissa (with implicit bit) right, round-nearest-even.
    man |= 0x800000u;
    const int shift = 14 - exp;
    uint32_t half_man = man >> shift;
    const uint32_t rem = man & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_man & 1))) half_man++;
    return static_cast<uint16_t>(sign | half_man);
  }
  // Normal: round mantissa from 23 to 10 bits, round-nearest-even.
  uint32_t half_man = man >> 13;
  const uint32_t rem = man & 0x1FFFu;
  uint16_t out = static_cast<uint16_t>(sign | (static_cast<uint32_t>(exp) << 10) | half_man);
  if (rem > 0x1000u || (rem == 0x1000u && (half_man & 1))) out++;  // May carry into exp: correct.
  return out;
}

inline float HalfBitsToFloat(uint16_t bits) noexcept {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1F;
  const uint32_t man = bits & 0x3FFu;
  if (exp == 0) {
    if (man == 0) return BitsToFloat(sign);  // Signed zero.
    const float v = std::ldexp(static_cast<float>(man), -24);  // Subnormal.
    return sign ? -v : v;
  }
  if (exp == 0x1F) {
    return BitsToFloat(sign | 0x7F800000u | (man << 13));
  }
  return BitsToFloat(sign | ((exp + 127 - 15) << 23) | (man << 13));
}

inline uint16_t FloatToBf16Bits(float f) noexcept {
  uint32_t x = FloatBits(f);
  if (((x >> 23) & 0xFF) == 0xFF && (x & 0x7FFFFFu)) {
    return static_cast<uint16_t>((x >> 16) | 0x40u);  // Quiet the NaN.
  }
  // Round-to-nearest-even on the low 16 bits.
  const uint32_t rounding = 0x7FFFu + ((x >> 16) & 1);
  return static_cast<uint16_t>((x + rounding) >> 16);
}

inline float Bf16BitsToFloat(uint16_t bits) noexcept {
  return BitsToFloat(static_cast<uint32_t>(bits) << 16);
}

inline uint8_t FloatToFp8Bits(float f, int exp_bits, int man_bits) noexcept {
  const int bias = (1 << (exp_bits - 1)) - 1;
  const bool e4m3 = (exp_bits == 4);
  // Max finite value: e4m3 reserves only mantissa-all-ones of the top exponent
  // for NaN (no inf); e5m2 is IEEE-like with inf.
  const float max_finite =
      e4m3 ? 448.0f : 57344.0f;

  const uint32_t x = FloatBits(f);
  const uint8_t sign = static_cast<uint8_t>((x >> 24) & 0x80u);
  if (std::isnan(f)) {
    return static_cast<uint8_t>(sign | ((1u << (exp_bits + man_bits)) - 1));  // All ones = NaN.
  }
  float af = std::fabs(f);
  if (af > max_finite) {
    if (!e4m3 && std::isinf(f)) {
      return static_cast<uint8_t>(sign | (0x1Fu << man_bits));  // e5m2 inf.
    }
    // Saturate to max finite (CUDA __NV_SATFINITE behaviour).
    const uint8_t max_bits =
        e4m3 ? 0x7Eu : 0x7Bu;  // e4m3: S.1111.110 = 448; e5m2: S.11110.11 = 57344.
    return static_cast<uint8_t>(sign | max_bits);
  }
  if (af == 0.0f) return sign;

  int e;
  float m = std::frexp(af, &e);  // af = m * 2^e, m in [0.5, 1).
  // Normalize to 1.xxx * 2^(e-1).
  e -= 1;
  m *= 2.0f;
  int biased = e + bias;
  int shift = man_bits;
  if (biased <= 0) {
    // Subnormal: scale mantissa down.
    shift = man_bits + biased - 1;
    biased = 0;
    if (shift < -1) return sign;  // Underflow to zero (beyond rounding reach).
  }
  // Quantize mantissa with round-nearest-even using integer math.
  // value = m * 2^shift (for normals m in [1,2), giving [2^man, 2^(man+1))).
  const float scaled = std::ldexp(m, shift);
  float rounded = std::nearbyint(scaled);
  if (std::fabs(scaled - std::floor(scaled) - 0.5f) < 1e-7f) {
    // Tie: round to even.
    const float lo = std::floor(scaled);
    rounded = (static_cast<int64_t>(lo) % 2 == 0) ? lo : lo + 1.0f;
  }
  uint32_t q = static_cast<uint32_t>(rounded);
  if (biased == 0) {
    // Subnormal result; mantissa may round up into the normal range.
    if (q >= (1u << man_bits)) {
      biased = 1;
      q -= (1u << man_bits);
    }
    return static_cast<uint8_t>(sign | (static_cast<uint32_t>(biased) << man_bits) | q);
  }
  // Normal: remove implicit leading bit, handle carry.
  if (q >= (2u << man_bits)) {
    q >>= 1;
    biased += 1;
  }
  q -= (1u << man_bits);
  const uint32_t max_exp = e4m3 ? 0xFu : 0x1Eu;
  if (static_cast<uint32_t>(biased) > max_exp ||
      (e4m3 && static_cast<uint32_t>(biased) == max_exp && q == 0x7u)) {
    const uint8_t max_bits = e4m3 ? 0x7Eu : 0x7Bu;
    return static_cast<uint8_t>(sign | max_bits);
  }
  return static_cast<uint8_t>(sign | (static_cast<uint32_t>(biased) << man_bits) | q);
}

inline float Fp8BitsToFloat(uint8_t bits, int exp_bits, int man_bits) noexcept {
  const int bias = (1 << (exp_bits - 1)) - 1;
  const bool e4m3 = (exp_bits == 4);
  const uint8_t sign = bits & 0x80u;
  const uint32_t exp = (bits >> man_bits) & ((1u << exp_bits) - 1);
  const uint32_t man = bits & ((1u << man_bits) - 1);
  const float s = sign ? -1.0f : 1.0f;

  if (e4m3) {
    if (exp == 0xFu && man == 0x7u) return std::numeric_limits<float>::quiet_NaN();
  } else {
    if (exp == 0x1Fu) {
      if (man == 0) return s * std::numeric_limits<float>::infinity();
      return std::numeric_limits<float>::quiet_NaN();
    }
  }
  if (exp == 0) {
    return s * std::ldexp(static_cast<float>(man), 1 - bias - man_bits);
  }
  return s * std::ldexp(1.0f + std::ldexp(static_cast<float>(man), -man_bits),
                        static_cast<int>(exp) - bias);
}



}  // namespace detail

/// IEEE 754 binary16 storage type.
struct half_t {
  uint16_t bits = 0;

  half_t() = default;
  explicit half_t(float f) noexcept : bits(detail::FloatToHalfBits(f)) {}
  explicit operator float() const noexcept { return detail::HalfBitsToFloat(bits); }
  static half_t FromBits(uint16_t b) noexcept {
    half_t h;
    h.bits = b;
    return h;
  }
};

/// bfloat16 storage type (truncated-exponent-range float32).
struct bf16_t {
  uint16_t bits = 0;

  bf16_t() = default;
  explicit bf16_t(float f) noexcept : bits(detail::FloatToBf16Bits(f)) {}
  explicit operator float() const noexcept { return detail::Bf16BitsToFloat(bits); }
  static bf16_t FromBits(uint16_t b) noexcept {
    bf16_t h;
    h.bits = b;
    return h;
  }
};

/// OCP FP8 E4M3 storage type (no inf, max finite 448).
struct fp8_e4m3_t {
  uint8_t bits = 0;

  fp8_e4m3_t() = default;
  explicit fp8_e4m3_t(float f) noexcept : bits(detail::FloatToFp8Bits(f, 4, 3)) {}
  explicit operator float() const noexcept { return detail::Fp8BitsToFloat(bits, 4, 3); }
  static fp8_e4m3_t FromBits(uint8_t b) noexcept {
    fp8_e4m3_t h;
    h.bits = b;
    return h;
  }
};

/// OCP FP8 E5M2 storage type (IEEE-like, max finite 57344).
struct fp8_e5m2_t {
  uint8_t bits = 0;

  fp8_e5m2_t() = default;
  explicit fp8_e5m2_t(float f) noexcept : bits(detail::FloatToFp8Bits(f, 5, 2)) {}
  explicit operator float() const noexcept { return detail::Fp8BitsToFloat(bits, 5, 2); }
  static fp8_e5m2_t FromBits(uint8_t b) noexcept {
    fp8_e5m2_t h;
    h.bits = b;
    return h;
  }
};

/// Runtime tag for the storage precision of a tensor.
enum class DType : uint8_t {
  kF32,
  kF16,
  kBF16,
  kFP8_E4M3,
  kFP8_E5M2,
};

/// Size in bytes of one element of `dt`.
constexpr int DTypeBytes(DType dt) noexcept {
  switch (dt) {
    case DType::kF32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
    case DType::kFP8_E4M3:
    case DType::kFP8_E5M2:
      return 1;
  }
  return 0;
}

std::string_view DTypeName(DType dt) noexcept;

/// Maps a storage type to its DType tag.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kF32;
};
template <>
struct DTypeOf<half_t> {
  static constexpr DType value = DType::kF16;
};
template <>
struct DTypeOf<bf16_t> {
  static constexpr DType value = DType::kBF16;
};
template <>
struct DTypeOf<fp8_e4m3_t> {
  static constexpr DType value = DType::kFP8_E4M3;
};
template <>
struct DTypeOf<fp8_e5m2_t> {
  static constexpr DType value = DType::kFP8_E5M2;
};

/// Lossless-from-storage load: converts any storage type to float.
template <typename T>
inline float ToFloat(T v) noexcept {
  return static_cast<float>(v);
}
/// Rounding store: converts float to the storage type.
template <typename T>
inline T FromFloat(float f) noexcept {
  return T(f);
}
template <>
inline float FromFloat<float>(float f) noexcept {
  return f;
}

}  // namespace flashinfer
