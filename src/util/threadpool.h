// A small fixed-size thread pool used to execute simulated CTAs in parallel
// and to drive cluster replicas concurrently.
//
// The pool only provides what those callers need: `ParallelFor` over an index
// range with dynamic work stealing. Determinism of *results* never depends on
// the pool: each index owns disjoint output state, and all simulated-cost
// accounting is computed from the plan, not from wall-clock interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace flashinfer {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for i in [0, n) across the pool (including the calling
  /// thread); returns when all iterations finish. Nested calls execute
  /// serially on the caller. If any iteration throws, the remaining
  /// unclaimed iterations are skipped (claimed ones still drain) and the
  /// FIRST exception is rethrown on the calling thread once every claimed
  /// index has settled — the pool stays usable afterwards.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Process-wide pool, lazily constructed on first use with EnvThreads()
  /// workers. Destroyed after main() returns (function-local static): the
  /// destructor signals shutdown under the lock and joins every worker, and
  /// a ParallelFor issued during/after shutdown degrades to the serial path
  /// instead of waking dead workers.
  static ThreadPool& Global();

  /// Thread count the global pool is built with: the FI_THREADS environment
  /// variable when set to a positive integer, otherwise 0 (= hardware
  /// concurrency). Exposed so tests can pin the parsing contract.
  static int EnvThreads() noexcept;

 private:
  // Heap-owned per-call state: workers hold a shared_ptr, so a worker that
  // wakes up late can never touch freed memory. `fn` is only invoked for
  // indices < n, all of which complete before ParallelFor returns, so the
  // caller's captured references stay valid for every invocation.
  struct TaskState {
    std::function<void(int64_t)> fn;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int64_t n = 0;
    // First exception thrown by any iteration; `failed` short-circuits the
    // remaining claims so a poisoned task drains quickly.
    std::atomic<bool> failed{false};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void WorkerLoop();
  void RunTask(TaskState& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::shared_ptr<TaskState> current_;
  uint64_t epoch_ = 0;
  bool in_parallel_ = false;
  bool shutdown_ = false;
};

}  // namespace flashinfer
