// Minimal shared JSON support: escaping + number formatting for the writers
// (bench JsonResult, trace exporters) and a small recursive-descent parser
// for the validators (the CI trace schema check). This is deliberately not a
// general-purpose JSON library — just enough shared machinery that every
// emitter escapes strings the same way and the test side can read what the
// tool side wrote without a third-party dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flashinfer::util {

/// Escapes `s` for embedding inside a JSON string literal. Quotes are NOT
/// added; `"`, `\`, and control characters are escaped.
std::string JsonEscape(const std::string& s);

/// Formats a JSON number (%.10g keeps microsecond timestamps exact at trace
/// scale). JSON has no inf/nan: non-finite values are emitted as 0.
std::string JsonNum(double v);

/// Parsed JSON document node. Object members keep insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Member's number (or `dflt` when absent / not a number).
  double NumberOr(const std::string& key, double dflt) const;
  /// Member's string (or `dflt`).
  std::string StringOr(const std::string& key, const std::string& dflt) const;
};

/// Parses `text` into `*out`. Returns false with a positioned message in
/// `*err` (when non-null) on malformed input. Accepts exactly one top-level
/// value; trailing whitespace is allowed, trailing garbage is not.
bool JsonParse(const std::string& text, JsonValue* out, std::string* err = nullptr);

}  // namespace flashinfer::util
