#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace flashinfer::util {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double dflt) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : dflt;
}

std::string JsonValue::StringOr(const std::string& key, const std::string& dflt) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kString ? v->str : dflt;
}

namespace {

/// Recursive-descent parser state over the raw text.
struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string err;

  bool Fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(pos);
    return false;
  }

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos) {
      if (pos >= text.size() || text[pos] != *p) return Fail(std::string("expected ") + lit);
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= text.size()) return Fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // BMP-only UTF-8 encode (surrogate pairs are not produced by any
          // in-repo writer; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        JsonValue member;
        if (!ParseValue(&member)) return false;
        out->obj.emplace_back(std::move(key), std::move(member));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        JsonValue elem;
        if (!ParseValue(&elem)) return false;
        out->arr.push_back(std::move(elem));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text.c_str() + pos;
      char* end = nullptr;
      out->type = JsonValue::Type::kNumber;
      out->number = std::strtod(start, &end);
      if (end == start) return Fail("bad number");
      pos += static_cast<size_t>(end - start);
      return true;
    }
    return Fail("unexpected character");
  }
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out, std::string* err) {
  Parser p{text};
  *out = JsonValue{};
  if (!p.ParseValue(out)) {
    if (err != nullptr) *err = p.err;
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    if (err != nullptr) *err = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace flashinfer::util
