#include "util/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace flashinfer {

const char* KvQuantFormatStr(KvQuantFormat f) {
  switch (f) {
    case KvQuantFormat::kNone: return "none";
    case KvQuantFormat::kInt8: return "int8";
    case KvQuantFormat::kFp8E4M3: return "fp8_e4m3";
    case KvQuantFormat::kFp8E5M2: return "fp8_e5m2";
  }
  return "?";
}

namespace util {
namespace {

constexpr size_t kMinMatch = 4;
// Matches stop short of the block end so the final sequence always carries
// literals (the classic lz4 end-of-block shape; also guarantees decode
// terminates on a literals-only sequence).
constexpr size_t kLastLiterals = 5;
constexpr int kHashBits = 13;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash4(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

}  // namespace

size_t Lz4CompressBound(size_t n) { return n + n / 255 + 16; }

size_t Lz4Compress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap) {
  if (n == 0) return 0;
  size_t op = 0;
  auto put = [&](uint8_t b) {
    if (op >= dst_cap) return false;
    dst[op++] = b;
    return true;
  };
  // Extension bytes for a nibble that saturated at 15: 255-continuations.
  auto put_ext = [&](size_t rest) {
    while (rest >= 255) {
      if (!put(255)) return false;
      rest -= 255;
    }
    return put(static_cast<uint8_t>(rest));
  };
  // One sequence: literals [lit..lit+lit_len) then a back-reference of
  // match_len bytes at `offset` (match_len == 0 -> final, literals only).
  auto emit = [&](size_t lit, size_t lit_len, size_t match_len, size_t offset) {
    const uint8_t lit_nib = lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
    const size_t mcode = match_len == 0 ? 0 : match_len - kMinMatch;
    const uint8_t mat_nib = mcode >= 15 ? 15 : static_cast<uint8_t>(mcode);
    if (!put(static_cast<uint8_t>((lit_nib << 4) | mat_nib))) return false;
    if (lit_nib == 15 && !put_ext(lit_len - 15)) return false;
    if (op + lit_len > dst_cap) return false;
    std::memcpy(dst + op, src + lit, lit_len);
    op += lit_len;
    if (match_len == 0) return true;
    if (!put(static_cast<uint8_t>(offset & 0xFF))) return false;
    if (!put(static_cast<uint8_t>(offset >> 8))) return false;
    if (mat_nib == 15 && !put_ext(mcode - 15)) return false;
    return true;
  };

  int32_t table[1 << kHashBits];
  std::fill(std::begin(table), std::end(table), -1);
  size_t ip = 0, anchor = 0;
  if (n > kMinMatch + kLastLiterals) {
    const size_t match_end = n - kLastLiterals;   // Matches may extend to here.
    const size_t mflimit = match_end - kMinMatch;  // ...and must start by here.
    while (ip <= mflimit) {
      const uint32_t seq = Load32(src + ip);
      const uint32_t h = Hash4(seq);
      const int32_t cand = table[h];
      table[h] = static_cast<int32_t>(ip);
      if (cand >= 0 && ip - static_cast<size_t>(cand) <= 65535 &&
          Load32(src + cand) == seq) {
        size_t mlen = kMinMatch;
        while (ip + mlen < match_end && src[cand + mlen] == src[ip + mlen]) ++mlen;
        if (!emit(anchor, ip - anchor, mlen, ip - static_cast<size_t>(cand))) return 0;
        ip += mlen;
        anchor = ip;
      } else {
        ++ip;
      }
    }
  }
  if (!emit(anchor, n - anchor, 0, 0)) return 0;
  return op;
}

size_t Lz4Decompress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap) {
  size_t ip = 0, op = 0;
  auto read_len = [&](size_t nibble) {
    size_t len = nibble;
    if (nibble == 15) {
      uint8_t b;
      do {
        FI_CHECK_LT(ip, n);
        b = src[ip++];
        len += b;
      } while (b == 255);
    }
    return len;
  };
  while (ip < n) {
    const uint8_t token = src[ip++];
    const size_t lit_len = read_len(token >> 4);
    FI_CHECK_LE(ip + lit_len, n);
    FI_CHECK_LE(op + lit_len, dst_cap);
    std::memcpy(dst + op, src + ip, lit_len);
    ip += lit_len;
    op += lit_len;
    if (ip >= n) break;  // Final, literals-only sequence.
    FI_CHECK_LE(ip + 2, n);
    const size_t offset = src[ip] | (static_cast<size_t>(src[ip + 1]) << 8);
    ip += 2;
    FI_CHECK_GE(offset, 1u);
    FI_CHECK_LE(offset, op);
    const size_t match_len = read_len(token & 0xF) + kMinMatch;
    FI_CHECK_LE(op + match_len, dst_cap);
    // Byte-by-byte: offsets < match_len replicate (overlapping copy).
    for (size_t i = 0; i < match_len; ++i, ++op) dst[op] = dst[op - offset];
  }
  return op;
}

// --- Page codec -------------------------------------------------------------

namespace {

// Defined non-finite handling (see header): NaN -> 0, +/-inf saturates.
constexpr float kSaturate = 65504.0f;

inline float Sanitize(float v) {
  if (std::isnan(v)) return 0.0f;
  return std::min(kSaturate, std::max(-kSaturate, v));
}

inline float ReadElem(const std::byte* page, size_t i, DType dtype) {
  switch (dtype) {
    case DType::kF32: return reinterpret_cast<const float*>(page)[i];
    case DType::kF16: return ToFloat(reinterpret_cast<const half_t*>(page)[i]);
    case DType::kBF16: return ToFloat(reinterpret_cast<const bf16_t*>(page)[i]);
    case DType::kFP8_E4M3:
      return ToFloat(reinterpret_cast<const fp8_e4m3_t*>(page)[i]);
    case DType::kFP8_E5M2:
      return ToFloat(reinterpret_cast<const fp8_e5m2_t*>(page)[i]);
  }
  return 0.0f;
}

inline void WriteElem(std::byte* page, size_t i, DType dtype, float v) {
  switch (dtype) {
    case DType::kF32: reinterpret_cast<float*>(page)[i] = v; return;
    case DType::kF16: reinterpret_cast<half_t*>(page)[i] = half_t(v); return;
    case DType::kBF16: reinterpret_cast<bf16_t*>(page)[i] = bf16_t(v); return;
    case DType::kFP8_E4M3:
      reinterpret_cast<fp8_e4m3_t*>(page)[i] = fp8_e4m3_t(v);
      return;
    case DType::kFP8_E5M2:
      reinterpret_cast<fp8_e5m2_t*>(page)[i] = fp8_e5m2_t(v);
      return;
  }
}

inline double Fp8Max(KvQuantFormat f) {
  return f == KvQuantFormat::kFp8E4M3 ? 448.0 : 57344.0;
}

// Blob header (little-endian):
//   [0]      quant format (KvQuantFormat)
//   [1]      1 when the payload is Lz4-compressed
//   [2..3]   reserved (0)
//   [4..7]   stored payload bytes (u32)
//   [8..11]  page scale (f32 bits)
//   [12..15] page zero-point (f32 bits)
inline void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline void PutF32(uint8_t* p, float v) { std::memcpy(p, &v, 4); }
inline float GetF32(const uint8_t* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

size_t EncodedPageBound(size_t elems, DType dtype, const KvCodecConfig& cfg) {
  const size_t payload =
      cfg.quant == KvQuantFormat::kNone ? elems * DTypeBytes(dtype) : elems;
  return kPageCodecHeaderBytes + payload;
}

std::vector<uint8_t> EncodePage(const std::byte* page, size_t elems, DType dtype,
                                const KvCodecConfig& cfg, PageCodecStats* stats) {
  const size_t logical = elems * static_cast<size_t>(DTypeBytes(dtype));
  std::vector<uint8_t> payload;
  float scale = 0.0f, zero = 0.0f;
  double mse = 0.0;
  if (cfg.quant == KvQuantFormat::kNone) {
    payload.resize(logical);
    std::memcpy(payload.data(), page, logical);
  } else {
    payload.resize(elems);
    if (cfg.quant == KvQuantFormat::kInt8) {
      float lo = 0.0f, hi = 0.0f;
      for (size_t i = 0; i < elems; ++i) {
        const float v = Sanitize(ReadElem(page, i, dtype));
        lo = i == 0 ? v : std::min(lo, v);
        hi = i == 0 ? v : std::max(hi, v);
      }
      scale = (hi - lo) / 255.0f;
      zero = lo;
      for (size_t i = 0; i < elems; ++i) {
        const float v = Sanitize(ReadElem(page, i, dtype));
        const float q = scale > 0.0f ? std::round((v - zero) / scale) : 0.0f;
        const uint8_t u =
            static_cast<uint8_t>(std::min(255.0f, std::max(0.0f, q)));
        payload[i] = u;
        const double err = static_cast<double>(v) - (zero + u * scale);
        mse += err * err;
      }
    } else {
      float amax = 0.0f;
      for (size_t i = 0; i < elems; ++i) {
        amax = std::max(amax, std::abs(Sanitize(ReadElem(page, i, dtype))));
      }
      scale = amax > 0.0f ? amax / static_cast<float>(Fp8Max(cfg.quant)) : 1.0f;
      for (size_t i = 0; i < elems; ++i) {
        const float v = Sanitize(ReadElem(page, i, dtype));
        float back;
        if (cfg.quant == KvQuantFormat::kFp8E4M3) {
          const fp8_e4m3_t q(v / scale);
          payload[i] = q.bits;
          back = ToFloat(q) * scale;
        } else {
          const fp8_e5m2_t q(v / scale);
          payload[i] = q.bits;
          back = ToFloat(q) * scale;
        }
        const double err = static_cast<double>(v) - back;
        mse += err * err;
      }
    }
    if (elems > 0) mse /= static_cast<double>(elems);
  }

  bool compressed = false;
  if (cfg.compress && !payload.empty()) {
    std::vector<uint8_t> packed(Lz4CompressBound(payload.size()));
    const size_t csize =
        Lz4Compress(payload.data(), payload.size(), packed.data(), packed.size());
    if (csize > 0 && csize < payload.size()) {
      packed.resize(csize);
      payload.swap(packed);
      compressed = true;
    }
  }

  std::vector<uint8_t> blob(kPageCodecHeaderBytes + payload.size());
  blob[0] = static_cast<uint8_t>(cfg.quant);
  blob[1] = compressed ? 1 : 0;
  blob[2] = blob[3] = 0;
  PutU32(blob.data() + 4, static_cast<uint32_t>(payload.size()));
  PutF32(blob.data() + 8, scale);
  PutF32(blob.data() + 12, zero);
  std::memcpy(blob.data() + kPageCodecHeaderBytes, payload.data(), payload.size());
  if (stats != nullptr) {
    stats->logical_bytes = static_cast<int64_t>(logical);
    stats->stored_bytes = static_cast<int64_t>(blob.size());
    stats->mse = mse;
  }
  return blob;
}

void DecodePage(const uint8_t* blob, size_t blob_size, std::byte* page, size_t elems,
                DType dtype) {
  FI_CHECK_GE(blob_size, kPageCodecHeaderBytes);
  const auto quant = static_cast<KvQuantFormat>(blob[0]);
  const bool compressed = blob[1] != 0;
  const size_t stored = GetU32(blob + 4);
  const float scale = GetF32(blob + 8);
  const float zero = GetF32(blob + 12);
  FI_CHECK_EQ(kPageCodecHeaderBytes + stored, blob_size);
  const size_t raw_size =
      quant == KvQuantFormat::kNone ? elems * DTypeBytes(dtype) : elems;

  const uint8_t* payload = blob + kPageCodecHeaderBytes;
  std::vector<uint8_t> unpacked;
  if (compressed) {
    unpacked.resize(raw_size);
    const size_t got = Lz4Decompress(payload, stored, unpacked.data(), raw_size);
    FI_CHECK_EQ(got, raw_size);
    payload = unpacked.data();
  } else {
    FI_CHECK_EQ(stored, raw_size);
  }

  switch (quant) {
    case KvQuantFormat::kNone:
      std::memcpy(page, payload, raw_size);
      return;
    case KvQuantFormat::kInt8:
      for (size_t i = 0; i < elems; ++i) {
        WriteElem(page, i, dtype, zero + payload[i] * scale);
      }
      return;
    case KvQuantFormat::kFp8E4M3:
      for (size_t i = 0; i < elems; ++i) {
        WriteElem(page, i, dtype, ToFloat(fp8_e4m3_t::FromBits(payload[i])) * scale);
      }
      return;
    case KvQuantFormat::kFp8E5M2:
      for (size_t i = 0; i < elems; ++i) {
        WriteElem(page, i, dtype, ToFloat(fp8_e5m2_t::FromBits(payload[i])) * scale);
      }
      return;
  }
  FI_CHECK(false);  // Unknown format byte: not one of ours.
}

}  // namespace util
}  // namespace flashinfer
