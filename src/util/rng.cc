#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace flashinfer {

namespace {

inline uint64_t SplitMix64(uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) noexcept {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() noexcept {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() noexcept {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) noexcept {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Uniform(double lo, double hi) noexcept { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(2.0 * M_PI * u2);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) noexcept { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double lambda) noexcept {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

ZipfSampler::ZipfSampler(int n, double s) {
  FI_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  double weighted = 0.0;
  for (int k = 1; k <= n; ++k) {
    const double w = 1.0 / std::pow(static_cast<double>(k), s);
    total += w;
    weighted += k * w;
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (auto& c : cdf_) c /= total;
  mean_ = weighted / total;
}

int ZipfSampler::Sample(Rng& rng) const noexcept {
  const double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo) + 1;
}

std::vector<int> ZipfLengths(Rng& rng, int count, double target_mean, double s, int min_len) {
  // Sample ranks from a Zipf over a wide support, then rescale so the
  // distribution's mean lands near target_mean while keeping the heavy tail.
  const int support = 16384;
  ZipfSampler zipf(support, s);
  const double scale = target_mean / zipf.Mean();
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int rank = zipf.Sample(rng);
    int len = static_cast<int>(std::lround(rank * scale));
    if (len < min_len) len = min_len;
    out.push_back(len);
  }
  return out;
}

}  // namespace flashinfer
