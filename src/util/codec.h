// Host KV-tier page codec: per-page quantization (INT8 / FP8, per-page
// scale + zero-point) and an LZ4-style byte compressor, so the host tier
// stores *encoded* bytes instead of raw pages and its effective capacity
// multiplies (INT-FlashAttention, arXiv:2409.16997, shows INT8 attention
// viable; "LLM in a flash", arXiv:2312.11514, is the hierarchy playbook).
//
// Design points:
//   * The quantized path is lossy but *bounded*: per-page asymmetric INT8
//     (scale = range/255, zero = min) or per-page amax-scaled FP8, and the
//     codec reports the per-page MSE it introduced — the accuracy proxy the
//     serving metrics track as a first-class series.
//   * The compress-only path (quant = kNone, compress = true) is lossless:
//     decode is bit-exact. Incompressible payloads fall back to raw storage,
//     so an encoded page never exceeds EncodedPageBound() — worst-case
//     admission gating stays sound.
//   * Non-finite inputs have defined behavior: NaN maps to 0, +/-inf
//     saturates to +/-65504 (half max) before quantization, so a poisoned
//     page cannot blow up the page scale or the MSE series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/float_types.h"

namespace flashinfer {

/// Quantization applied to host-tier pages on eviction.
enum class KvQuantFormat : uint8_t {
  kNone = 0,     ///< Keep the storage dtype (lossless path).
  kInt8 = 1,     ///< Asymmetric per-page uint8: scale = range/255, zero = min.
  kFp8E4M3 = 2,  ///< Per-page amax-scaled fp8 e4m3 (max 448).
  kFp8E5M2 = 3,  ///< Per-page amax-scaled fp8 e5m2 (max 57344).
};

const char* KvQuantFormatStr(KvQuantFormat f);

/// Host KV-tier codec selection. Default-constructed = disabled: the host
/// tier stores raw pages, byte-for-byte identical to the pre-codec cache.
struct KvCodecConfig {
  KvQuantFormat quant = KvQuantFormat::kNone;
  /// LZ4-style byte compression of the (possibly quantized) payload.
  bool compress = false;
  bool enabled() const { return quant != KvQuantFormat::kNone || compress; }
};

namespace util {

// --- LZ4-style block compressor --------------------------------------------
// Greedy hash-chain-free LZ4 block format: sequences of
//   [token: literal-nibble | matchlen-nibble] [len ext bytes] [literals]
//   [2-byte LE offset] [matchlen ext bytes]
// with a literals-only final sequence. Self-contained (not interoperable
// with the reference lz4 tool — no container deps allowed here), but the
// same asymptotics: O(n) encode via a 4-byte hash table, byte-exact decode.

/// Worst-case compressed size for `n` input bytes (all-literals encoding).
size_t Lz4CompressBound(size_t n);

/// Compresses src[0..n) into dst (capacity dst_cap). Returns the compressed
/// size, or 0 when the output would not fit (callers size dst with
/// Lz4CompressBound, where it always fits). n == 0 compresses to 0 bytes.
size_t Lz4Compress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap);

/// Decompresses src[0..n) into dst (capacity dst_cap); returns the number of
/// bytes written. Aborts (FI_CHECK) on malformed input — blobs only ever come
/// from Lz4Compress.
size_t Lz4Decompress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap);

// --- Page codec -------------------------------------------------------------

/// Per-page encode accounting: what the tier charges (stored), what the page
/// logically holds, and the quantization error the encode introduced.
struct PageCodecStats {
  int64_t logical_bytes = 0;  ///< elems * DTypeBytes(dtype).
  int64_t stored_bytes = 0;   ///< Encoded blob size (header + payload).
  double mse = 0.0;           ///< Mean squared quantization error (0 when lossless).
};

/// Fixed encoded-blob header size.
constexpr size_t kPageCodecHeaderBytes = 16;

/// Worst-case encoded size of a page of `elems` elements: header + the
/// quantized (or raw) payload — compression can only shrink it (raw
/// fallback otherwise). The admission gate prices this.
size_t EncodedPageBound(size_t elems, DType dtype, const KvCodecConfig& cfg);

/// Encodes one page (raw storage-dtype bytes, `elems` elements) into a
/// self-describing blob. Fills `stats` when non-null.
std::vector<uint8_t> EncodePage(const std::byte* page, size_t elems, DType dtype,
                                const KvCodecConfig& cfg, PageCodecStats* stats);

/// Decodes a blob produced by EncodePage back into `page` (raw storage-dtype
/// bytes, `elems` elements). Lossless blobs restore bit-exactly; quantized
/// blobs restore the dequantized values re-converted to the storage dtype.
void DecodePage(const uint8_t* blob, size_t blob_size, std::byte* page, size_t elems,
                DType dtype);

}  // namespace util
}  // namespace flashinfer
