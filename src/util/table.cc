#include "util/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace flashinfer {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell;
      for (size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };
  rule();
  emit_row(header_);
  rule();
  for (const auto& row : rows_) emit_row(row);
  rule();
  return os.str();
}

void AsciiTable::Print() const { std::cout << ToString() << std::flush; }

std::string AsciiTable::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string AsciiTable::SignedPct(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", digits, v);
  return buf;
}

}  // namespace flashinfer
