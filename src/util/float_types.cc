#include "util/float_types.h"

namespace flashinfer {

std::string_view DTypeName(DType dt) noexcept {
  switch (dt) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kBF16:
      return "bf16";
    case DType::kFP8_E4M3:
      return "e4m3";
    case DType::kFP8_E5M2:
      return "e5m2";
  }
  return "?";
}

}  // namespace flashinfer
