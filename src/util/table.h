// ASCII table printer used by the benchmark harnesses to reproduce the rows
// of the paper's tables and figures in a readable, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace flashinfer {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with column alignment and +--+ separators.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  /// Formats a double with `digits` decimal places.
  static std::string Num(double v, int digits = 2);

  /// Formats a percentage with sign, e.g. "+13.73%".
  static std::string SignedPct(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flashinfer
