#include "util/threadpool.h"

namespace flashinfer {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunTask(TaskState& task) {
  for (;;) {
    const int64_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.n) break;
    task.fn(i);
    if (task.done.fetch_add(1, std::memory_order_acq_rel) + 1 == task.n) {
      // Last iteration: wake the caller. Locking before notify avoids a
      // missed wakeup between the caller's predicate check and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = current_;  // May be null if the task already finished.
    }
    if (task) RunTask(*task);
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  bool serial = workers_.empty() || n == 1;
  if (!serial) {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_parallel_) serial = true;  // Nested call: run inline.
  }
  if (serial) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto task = std::make_shared<TaskState>();
  task->fn = fn;
  task->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_parallel_ = true;
    current_ = task;
    ++epoch_;
  }
  cv_start_.notify_all();
  RunTask(*task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return task->done.load(std::memory_order_acquire) == n; });
    current_.reset();
    in_parallel_ = false;
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace flashinfer
