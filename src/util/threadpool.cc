#include "util/threadpool.h"

#include <cstdlib>

namespace flashinfer {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunTask(TaskState& task) {
  for (;;) {
    const int64_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.n) break;
    // A claimed index is ALWAYS counted as done, even when the task has
    // already failed and fn is skipped — otherwise done never reaches n and
    // the caller's wait deadlocks.
    if (!task.failed.load(std::memory_order_acquire)) {
      try {
        task.fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(task.error_mu);
        if (!task.error) task.error = std::current_exception();
        task.failed.store(true, std::memory_order_release);
      }
    }
    if (task.done.fetch_add(1, std::memory_order_acq_rel) + 1 == task.n) {
      // Last iteration: wake the caller. Locking before notify avoids a
      // missed wakeup between the caller's predicate check and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<TaskState> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = current_;  // May be null if the task already finished.
    }
    if (task) RunTask(*task);
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  bool serial = workers_.empty() || n == 1;
  if (!serial) {
    std::lock_guard<std::mutex> lock(mu_);
    // Nested call: run inline. After shutdown begins (static-destruction
    // order at process exit) no worker will ever claim an index, so fall
    // back to the caller's thread too.
    if (in_parallel_ || shutdown_) serial = true;
  }
  if (serial) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto task = std::make_shared<TaskState>();
  task->fn = fn;
  task->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_parallel_ = true;
    current_ = task;
    ++epoch_;
  }
  cv_start_.notify_all();
  RunTask(*task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return task->done.load(std::memory_order_acquire) == n; });
    current_.reset();
    in_parallel_ = false;
  }
  if (task->failed.load(std::memory_order_acquire)) {
    // All claimed indices have settled (done == n), so the stored pointer is
    // stable; rethrow the first failure on the calling thread.
    std::lock_guard<std::mutex> lock(task->error_mu);
    std::rethrow_exception(task->error);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(EnvThreads());
  return pool;
}

int ThreadPool::EnvThreads() noexcept {
  const char* env = std::getenv("FI_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0 || v > 1024) return 0;
  return static_cast<int>(v);
}

}  // namespace flashinfer
