// Lightweight assertion utilities used across the library.
//
// FI_CHECK(cond) aborts with a source location when `cond` is false; the
// _EQ/_LE/... forms print both operands. These checks are active in all build
// types: the library is a research artifact and silent corruption is worse
// than a crash.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace flashinfer::detail {

[[noreturn]] inline void CheckFail(const char* file, int line, const std::string& msg) {
  std::cerr << "[FI_CHECK failed] " << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace flashinfer::detail

#define FI_CHECK(cond)                                                              \
  do {                                                                              \
    if (!(cond)) ::flashinfer::detail::CheckFail(__FILE__, __LINE__, #cond);        \
  } while (0)

#define FI_CHECK_BINOP(a, b, op)                                                    \
  do {                                                                              \
    auto fi_chk_a_ = (a);                                                           \
    auto fi_chk_b_ = (b);                                                           \
    if (!(fi_chk_a_ op fi_chk_b_)) {                                                \
      std::ostringstream fi_chk_os_;                                                \
      fi_chk_os_ << #a " " #op " " #b " (" << fi_chk_a_ << " vs " << fi_chk_b_      \
                 << ")";                                                            \
      ::flashinfer::detail::CheckFail(__FILE__, __LINE__, fi_chk_os_.str());        \
    }                                                                               \
  } while (0)

#define FI_CHECK_EQ(a, b) FI_CHECK_BINOP(a, b, ==)
#define FI_CHECK_NE(a, b) FI_CHECK_BINOP(a, b, !=)
#define FI_CHECK_LT(a, b) FI_CHECK_BINOP(a, b, <)
#define FI_CHECK_LE(a, b) FI_CHECK_BINOP(a, b, <=)
#define FI_CHECK_GT(a, b) FI_CHECK_BINOP(a, b, >)
#define FI_CHECK_GE(a, b) FI_CHECK_BINOP(a, b, >=)
