// Deterministic random-number utilities for workload generation and tests.
//
// The engine must be reproducible across runs and platforms (the paper's
// scheduler guarantees deterministic outputs; our experiments must be
// seed-stable too), so we use a self-contained xoshiro256** implementation
// instead of std:: distributions whose sequences vary across standard
// libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace flashinfer {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Uniform 64-bit value.
  uint64_t NextU64() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (mean 1/lambda); used for Poisson arrivals.
  double Exponential(double lambda) noexcept;

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Samples from a Zipf distribution over {1..n} with exponent `s` using
/// inverse-CDF on precomputed cumulative weights. Used for the paper's
/// "skewed" sequence-length distribution (Sec. 4.2).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  /// Returns a rank in [1, n]; rank 1 is the most likely.
  int Sample(Rng& rng) const noexcept;

  /// Expected value of the distribution.
  double Mean() const noexcept { return mean_; }

 private:
  std::vector<double> cdf_;
  double mean_ = 0.0;
};

/// Draws `count` sequence lengths from a Zipf-shaped distribution rescaled so
/// the empirical mean is close to `target_mean` (the paper fixes the average
/// length at 1024 for the skewed workload).
std::vector<int> ZipfLengths(Rng& rng, int count, double target_mean, double s = 1.2,
                             int min_len = 1);

}  // namespace flashinfer
