// Composable formats (Sec. 3.1.2, Fig. 3).
//
// A single BSR is stuck with one Br: large Br lets requests in the same block
// share KV loads through shared memory, small Br avoids fragmentation. When
// some requests share a prefix, the prefix columns x member rows form a dense
// submatrix, so we split the KV sparse matrix into multiple BSR "levels":
//   level 0: shared prefixes, Br = group size  (KV read once per group)
//   level 1: unique suffixes, Br = query tile  (usually 1 for decode)
// Decomposition builds new index arrays only — KV data never moves. Each
// level produces partial attention states that the contraction kernel merges
// with the ⊕ operator (Sec. 2.2).
#pragma once

#include <string>
#include <vector>

#include "sparse/bsr.h"

namespace flashinfer::sparse {

/// A set of requests sharing one cached prefix.
struct PrefixGroup {
  /// Physical pages of the shared prefix, in order.
  std::vector<int64_t> pages;
  /// Valid tokens in the last prefix page.
  int last_page_len = 0;
  /// Member requests (indices into the batch); their query rows must be
  /// contiguous in the batch layout.
  std::vector<int> members;

  int64_t TokenCount(int page_size) const noexcept {
    if (pages.empty()) return 0;
    return static_cast<int64_t>(pages.size() - 1) * page_size + last_page_len;
  }
};

/// Multi-format decomposition of one batch's KV sparse matrix.
struct ComposableFormat {
  struct Level {
    BsrMatrix bsr;
    std::string description;
    /// True when another level may also contribute to these rows, so this
    /// level's outputs are partial states that must be ⊕-merged.
    bool partial = true;
  };
  std::vector<Level> levels;
};

/// Builds the two-level shared-prefix decomposition. `qo_indptr` gives each
/// request's (head-group-fused) query rows; `unique_kv[r]` holds request r's
/// suffix pages with pos_offset == its group's prefix length (validated).
/// Requests not covered by any group only appear in the unique level.
ComposableFormat BuildSharedPrefixComposable(const std::vector<int64_t>& qo_indptr,
                                             const std::vector<RequestKv>& unique_kv,
                                             const std::vector<PrefixGroup>& groups,
                                             int page_size, int tile_q_unique);

}  // namespace flashinfer::sparse
