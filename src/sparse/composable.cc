#include "sparse/composable.h"

#include <algorithm>

#include "util/check.h"

namespace flashinfer::sparse {

ComposableFormat BuildSharedPrefixComposable(const std::vector<int64_t>& qo_indptr,
                                             const std::vector<RequestKv>& unique_kv,
                                             const std::vector<PrefixGroup>& groups,
                                             int page_size, int tile_q_unique) {
  FI_CHECK_EQ(qo_indptr.size() - 1, unique_kv.size());
  ComposableFormat fmt;

  // --- Level 0: shared prefixes, one block row per group. ---
  if (!groups.empty()) {
    BsrMatrix bsr;
    bsr.bc = page_size;
    bsr.num_rows = qo_indptr.back();
    int64_t max_page = -1;
    int max_group_rows = 1;

    bsr.indptr.push_back(0);
    bsr.row_start.push_back(0);
    // Block rows must be listed in row order; sort groups by first member row.
    std::vector<size_t> order(groups.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return qo_indptr[static_cast<size_t>(groups[a].members.front())] <
             qo_indptr[static_cast<size_t>(groups[b].members.front())];
    });

    int64_t cursor = 0;  // Next uncovered row; rows outside groups get their
                         // own empty block rows so row_start stays contiguous.
    auto emit_empty_rows_until = [&](int64_t row) {
      while (cursor < row) {
        bsr.indptr.push_back(static_cast<int64_t>(bsr.indices.size()));
        bsr.row_start.push_back(std::min(row, cursor + 1));
        cursor = bsr.row_start.back();
      }
    };

    for (size_t gi : order) {
      const auto& g = groups[gi];
      FI_CHECK(!g.members.empty());
      // Validate member contiguity: rows [first_row, last_row) with no gaps.
      std::vector<int> members = g.members;
      std::sort(members.begin(), members.end());
      for (size_t i = 0; i + 1 < members.size(); ++i) {
        FI_CHECK_EQ(members[i] + 1, members[i + 1]);
      }
      const int64_t first_row = qo_indptr[static_cast<size_t>(members.front())];
      const int64_t last_row = qo_indptr[static_cast<size_t>(members.back()) + 1];
      const int64_t prefix_len = g.TokenCount(page_size);
      for (int r : members) {
        FI_CHECK_EQ(unique_kv[static_cast<size_t>(r)].pos_offset, prefix_len);
      }
      emit_empty_rows_until(first_row);
      FI_CHECK_EQ(cursor, first_row);
      int64_t pos = 0;
      for (size_t p = 0; p < g.pages.size(); ++p) {
        const int valid = (p + 1 == g.pages.size()) ? g.last_page_len : page_size;
        bsr.indices.push_back(g.pages[p]);
        bsr.block_pos.push_back(pos);
        bsr.block_valid.push_back(valid);
        max_page = std::max(max_page, g.pages[p]);
        pos += valid;
      }
      bsr.indptr.push_back(static_cast<int64_t>(bsr.indices.size()));
      bsr.row_start.push_back(last_row);
      cursor = last_row;
      max_group_rows = std::max<int>(max_group_rows, static_cast<int>(last_row - first_row));
    }
    emit_empty_rows_until(bsr.num_rows);

    bsr.br = max_group_rows;
    bsr.num_col_blocks = max_page + 1;
    bsr.Validate();
    fmt.levels.push_back({std::move(bsr), "shared-prefix (Br=group)", /*partial=*/true});
  }

  // --- Level 1: unique suffixes at the requested query tile size. ---
  {
    BsrMatrix bsr = BuildBatchBsr(qo_indptr, unique_kv, page_size, tile_q_unique);
    fmt.levels.push_back(
        {std::move(bsr), "unique-suffix (Br=tile_q)", /*partial=*/!groups.empty()});
  }
  return fmt;
}

}  // namespace flashinfer::sparse
