#include "sparse/gather.h"

#include <cstring>

#include "util/check.h"

namespace flashinfer::sparse {

size_t GatherRowsBytes(const void* const* row_ptrs, int num_rows, size_t row_bytes, void* dst) {
  FI_CHECK_GE(num_rows, 0);
  auto* out = static_cast<unsigned char*>(dst);
  for (int i = 0; i < num_rows; ++i) {
    FI_CHECK(row_ptrs[i] != nullptr);
    std::memcpy(out + static_cast<size_t>(i) * row_bytes, row_ptrs[i], row_bytes);
  }
  return static_cast<size_t>(num_rows) * row_bytes;
}

}  // namespace flashinfer::sparse
