// Sparse row gathering (Sec. 3.2.1, Fig. 4).
//
// Tensor-core tiles must be contiguous in shared memory, so sparse KV blocks
// are staged: for each tile row i, the source address is computed from the
// BSR indices array (indices[(offset+i)/bc]*bc + (offset+i)%bc) while dense
// storage uses an affine offset. On the simulator the staging is a real
// scatter-gather memcpy; the cost difference between sparse and dense
// appears through the kernel-efficiency model (dense can use TMA on Hopper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashinfer::sparse {

/// Copies `num_rows` scattered rows of `row_bytes` bytes each into the
/// contiguous buffer `dst` (size >= num_rows*row_bytes). Returns bytes moved.
size_t GatherRowsBytes(const void* const* row_ptrs, int num_rows, size_t row_bytes, void* dst);

/// Typed convenience over GatherRowsBytes.
template <typename T>
size_t GatherRows(const std::vector<const T*>& row_ptrs, int width, T* dst) {
  return GatherRowsBytes(reinterpret_cast<const void* const*>(row_ptrs.data()),
                         static_cast<int>(row_ptrs.size()), sizeof(T) * static_cast<size_t>(width),
                         dst);
}

}  // namespace flashinfer::sparse
