// Quest-style query-aware KV page selection (Tang et al. 2024; evaluated in
// Appendix G.5). Quest keeps per-page elementwise min/max key metadata; at
// decode time the upper bound of q·k over a page is
//   sum_d max(q_d * min_d, q_d * max_d)
// and only the top-`page_budget` pages by this bound participate in
// attention. FlashInfer's contribution is executing that fine-grained
// (block-16) sparsity efficiently — BuildPrunedBsr turns the selection into
// the BSR the kernels consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/paged.h"

namespace flashinfer::sparse {

/// Per-(page, head) key bounds for one sequence.
struct PageKeyMetadata {
  int head_dim = 0;
  int num_heads = 0;
  /// [num_pages][num_heads][head_dim] elementwise minima / maxima.
  std::vector<float> min_k;
  std::vector<float> max_k;
  int64_t num_pages = 0;

  std::span<const float> MinK(int64_t page_idx, int head) const noexcept {
    const size_t off =
        (static_cast<size_t>(page_idx) * num_heads + static_cast<size_t>(head)) *
        static_cast<size_t>(head_dim);
    return {min_k.data() + off, static_cast<size_t>(head_dim)};
  }
  std::span<const float> MaxK(int64_t page_idx, int head) const noexcept {
    const size_t off =
        (static_cast<size_t>(page_idx) * num_heads + static_cast<size_t>(head)) *
        static_cast<size_t>(head_dim);
    return {max_k.data() + off, static_cast<size_t>(head_dim)};
  }
};

/// Builds the metadata for a cached sequence by scanning its pages.
PageKeyMetadata BuildPageMetadata(const PagedKVCache& kv, int seq);

/// Upper bound of q·k over one page (Quest's criticality score).
float PageScoreUpperBound(std::span<const float> q, std::span<const float> min_k,
                          std::span<const float> max_k) noexcept;

/// Selects the top-`page_budget` page indices for query `q` (averaged over
/// heads, as Quest does for shared selection across a GQA group). The last
/// page (holding the newest tokens) is always kept. Returned indices are
/// sorted ascending.
std::vector<int> SelectTopPages(const PageKeyMetadata& meta, std::span<const float> q,
                                int num_qo_heads, int page_budget);

}  // namespace flashinfer::sparse
