#include "sparse/bsr.h"

#include <algorithm>

#include "util/check.h"

namespace flashinfer::sparse {

int64_t BsrMatrix::RowKvLen(int64_t i) const {
  int64_t total = 0;
  for (int64_t e = indptr[static_cast<size_t>(i)]; e < indptr[static_cast<size_t>(i) + 1]; ++e) {
    total += block_valid[static_cast<size_t>(e)];
  }
  return total;
}

void BsrMatrix::Validate() const {
  FI_CHECK_GE(br, 1);
  FI_CHECK_GE(bc, 1);
  FI_CHECK_EQ(static_cast<int64_t>(indptr.size()), NumBlockRows() + 1);
  FI_CHECK_EQ(indptr.front(), 0);
  FI_CHECK_EQ(indptr.back(), Nnz());
  FI_CHECK_EQ(static_cast<int64_t>(block_pos.size()), Nnz());
  FI_CHECK_EQ(static_cast<int64_t>(block_valid.size()), Nnz());
  FI_CHECK(!row_start.empty());
  FI_CHECK_EQ(row_start.front(), 0);
  FI_CHECK_EQ(row_start.back(), num_rows);
  for (size_t i = 0; i + 1 < indptr.size(); ++i) {
    FI_CHECK_LE(indptr[i], indptr[i + 1]);
  }
  for (size_t i = 0; i + 1 < row_start.size(); ++i) {
    FI_CHECK_LT(row_start[i], row_start[i + 1]);
    FI_CHECK_LE(row_start[i + 1] - row_start[i], br);
  }
  for (int64_t e = 0; e < Nnz(); ++e) {
    FI_CHECK_GE(indices[static_cast<size_t>(e)], 0);
    FI_CHECK_LT(indices[static_cast<size_t>(e)], num_col_blocks);
    FI_CHECK_GE(block_valid[static_cast<size_t>(e)], 1);
    FI_CHECK_LE(block_valid[static_cast<size_t>(e)], bc);
    FI_CHECK_GE(block_pos[static_cast<size_t>(e)], 0);
  }
}

BsrMatrix BuildBatchBsr(const std::vector<int64_t>& qo_indptr, const std::vector<RequestKv>& kv,
                        int page_size, int tile_q) {
  FI_CHECK_GE(qo_indptr.size(), 2u);
  FI_CHECK_EQ(qo_indptr.size() - 1, kv.size());
  FI_CHECK_GE(tile_q, 1);
  FI_CHECK_GE(page_size, 1);

  BsrMatrix bsr;
  bsr.br = tile_q;
  bsr.bc = page_size;
  bsr.num_rows = qo_indptr.back();
  int64_t max_page = -1;

  bsr.indptr.push_back(0);
  bsr.row_start.push_back(0);
  const size_t num_reqs = kv.size();
  for (size_t r = 0; r < num_reqs; ++r) {
    const int64_t rows = qo_indptr[r + 1] - qo_indptr[r];
    FI_CHECK_GE(rows, 0);
    const auto& req = kv[r];
    if (!req.pages.empty()) {
      FI_CHECK_GE(req.last_page_len, 1);
      FI_CHECK_LE(req.last_page_len, page_size);
    }
    const int64_t num_tiles = (rows + tile_q - 1) / tile_q;
    for (int64_t t = 0; t < num_tiles; ++t) {
      int64_t pos = req.pos_offset;
      for (size_t p = 0; p < req.pages.size(); ++p) {
        const int valid =
            (p + 1 == req.pages.size()) ? req.last_page_len : page_size;
        bsr.indices.push_back(req.pages[p]);
        bsr.block_pos.push_back(pos);
        bsr.block_valid.push_back(valid);
        max_page = std::max(max_page, req.pages[p]);
        pos += valid;
      }
      bsr.indptr.push_back(static_cast<int64_t>(bsr.indices.size()));
      const int64_t row_hi = std::min(rows, (t + 1) * tile_q);
      bsr.row_start.push_back(qo_indptr[r] + row_hi);
    }
  }
  bsr.num_col_blocks = max_page + 1;
  bsr.Validate();
  return bsr;
}

BsrMatrix BsrFromDenseMask(const std::vector<std::vector<bool>>& mask, int br, int bc) {
  FI_CHECK(!mask.empty());
  const int64_t rows = static_cast<int64_t>(mask.size());
  const int64_t cols = static_cast<int64_t>(mask[0].size());
  for (const auto& row : mask) FI_CHECK_EQ(static_cast<int64_t>(row.size()), cols);

  BsrMatrix bsr;
  bsr.br = br;
  bsr.bc = bc;
  bsr.num_rows = rows;
  bsr.num_col_blocks = (cols + bc - 1) / bc;
  bsr.indptr.push_back(0);
  bsr.row_start.push_back(0);
  for (int64_t r0 = 0; r0 < rows; r0 += br) {
    const int64_t r1 = std::min(rows, r0 + br);
    for (int64_t cb = 0; cb < bsr.num_col_blocks; ++cb) {
      const int64_t c0 = cb * bc;
      const int64_t c1 = std::min(cols, c0 + bc);
      bool any = false;
      for (int64_t r = r0; r < r1 && !any; ++r) {
        for (int64_t c = c0; c < c1 && !any; ++c) {
          any = mask[static_cast<size_t>(r)][static_cast<size_t>(c)];
        }
      }
      if (any) {
        bsr.indices.push_back(cb);
        bsr.block_pos.push_back(c0);
        bsr.block_valid.push_back(static_cast<int32_t>(c1 - c0));
      }
    }
    bsr.indptr.push_back(static_cast<int64_t>(bsr.indices.size()));
    bsr.row_start.push_back(r1);
  }
  bsr.Validate();
  return bsr;
}

BsrMatrix BuildPrunedBsr(const std::vector<int64_t>& qo_indptr, const std::vector<RequestKv>& kv,
                         const std::vector<std::vector<int>>& selected_pages, int page_size,
                         int tile_q) {
  FI_CHECK_EQ(kv.size(), selected_pages.size());
  // Build a filtered view of each request's pages, preserving each kept
  // page's original logical position (required for RoPE/causal correctness
  // with pruned caches).
  BsrMatrix bsr;
  bsr.br = tile_q;
  bsr.bc = page_size;
  bsr.num_rows = qo_indptr.back();
  int64_t max_page = -1;
  bsr.indptr.push_back(0);
  bsr.row_start.push_back(0);
  for (size_t r = 0; r < kv.size(); ++r) {
    const auto& req = kv[r];
    const int64_t rows = qo_indptr[r + 1] - qo_indptr[r];
    auto sel = selected_pages[r];
    std::sort(sel.begin(), sel.end());
    const int64_t num_tiles = (rows + tile_q - 1) / tile_q;
    for (int64_t t = 0; t < num_tiles; ++t) {
      for (int page_idx : sel) {
        FI_CHECK_GE(page_idx, 0);
        FI_CHECK_LT(static_cast<size_t>(page_idx), req.pages.size());
        const bool is_last = static_cast<size_t>(page_idx) + 1 == req.pages.size();
        const int valid = is_last ? req.last_page_len : page_size;
        bsr.indices.push_back(req.pages[static_cast<size_t>(page_idx)]);
        bsr.block_pos.push_back(req.pos_offset +
                                static_cast<int64_t>(page_idx) * page_size);
        bsr.block_valid.push_back(valid);
        max_page = std::max(max_page, req.pages[static_cast<size_t>(page_idx)]);
      }
      bsr.indptr.push_back(static_cast<int64_t>(bsr.indices.size()));
      const int64_t row_hi = std::min(rows, (t + 1) * tile_q);
      bsr.row_start.push_back(qo_indptr[r] + row_hi);
    }
  }
  bsr.num_col_blocks = max_page + 1;
  bsr.Validate();
  return bsr;
}

std::vector<std::vector<bool>> ExpandMaskRows(const std::vector<std::vector<bool>>& mask,
                                              int group) {
  FI_CHECK_GE(group, 1);
  if (group == 1) return mask;
  std::vector<std::vector<bool>> out;
  out.reserve(mask.size() * static_cast<size_t>(group));
  for (const auto& row : mask) {
    for (int j = 0; j < group; ++j) out.push_back(row);
  }
  return out;
}

BsrMatrix TileBsrDiagonal(const BsrMatrix& unit, int copies) {
  FI_CHECK_GE(copies, 1);
  unit.Validate();
  BsrMatrix out;
  out.br = unit.br;
  out.bc = unit.bc;
  out.num_rows = unit.num_rows * copies;
  out.num_col_blocks = unit.num_col_blocks * copies;
  const int64_t nnz = unit.Nnz();
  const int64_t block_rows = unit.NumBlockRows();
  out.indices.reserve(static_cast<size_t>(nnz * copies));
  out.block_pos.reserve(static_cast<size_t>(nnz * copies));
  out.block_valid.reserve(static_cast<size_t>(nnz * copies));
  out.indptr.reserve(static_cast<size_t>(block_rows * copies) + 1);
  out.row_start.reserve(static_cast<size_t>(block_rows * copies) + 1);
  out.indptr.push_back(0);
  out.row_start.push_back(0);
  for (int c = 0; c < copies; ++c) {
    const int64_t col_base = static_cast<int64_t>(c) * unit.num_col_blocks;
    const int64_t row_base = static_cast<int64_t>(c) * unit.num_rows;
    for (int64_t e = 0; e < nnz; ++e) {
      out.indices.push_back(unit.indices[static_cast<size_t>(e)] + col_base);
      out.block_pos.push_back(unit.block_pos[static_cast<size_t>(e)]);
      out.block_valid.push_back(unit.block_valid[static_cast<size_t>(e)]);
    }
    for (int64_t b = 0; b < block_rows; ++b) {
      out.indptr.push_back(static_cast<int64_t>(c) * nnz +
                           unit.indptr[static_cast<size_t>(b) + 1]);
      out.row_start.push_back(row_base + unit.row_start[static_cast<size_t>(b) + 1]);
    }
  }
  out.Validate();
  return out;
}

}  // namespace flashinfer::sparse
