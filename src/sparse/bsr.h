// Block-Sparse Row (BSR) matrix — the unified KV-cache format (Sec. 3.1.1).
//
// The logical matrix has one row per (query, head-group) pair and one column
// per KV-cache slot. A non-zero block (Br x Bc) means "this query tile
// attends to this physical KV block". Page tables, radix trees, tree-attention
// masks and importance masks all lower to this structure: `indices[]` holds
// *physical* block ids (page numbers), so no KV data ever moves — only index
// arrays are built.
//
// Because position-dependent variants (causal, RoPE, ALiBi, sliding window)
// need the logical position of every KV token, each non-zero block also
// carries the logical KV position of its first column (`block_pos`) and the
// number of valid columns (`block_valid`, for ragged last pages and pruned
// pages).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashinfer::sparse {

struct BsrMatrix {
  /// Total query rows covered (after GQA head-group fusion, Appendix A).
  int64_t num_rows = 0;
  /// Physical KV block capacity referenced by `indices` (page count).
  int64_t num_col_blocks = 0;
  /// Block row size = query tile size Tq (Sec. 3.2.3: Br aligned with Tq).
  int br = 1;
  /// Block column size = KV block granularity (page size; 1 = vector-sparse).
  int bc = 1;

  /// Per block-row extents into `indices`; size NumBlockRows()+1.
  std::vector<int64_t> indptr;
  /// Physical block id of each non-zero block.
  std::vector<int64_t> indices;
  /// Logical KV position (within the row's sequence coordinate system) of
  /// each non-zero block's first column; size == indices.size().
  std::vector<int64_t> block_pos;
  /// Valid columns in each non-zero block (<= bc); size == indices.size().
  std::vector<int32_t> block_valid;
  /// First logical query row of each block row; size NumBlockRows()+1 (last
  /// entry == num_rows). Block rows may be ragged when requests don't fill a
  /// full tile.
  std::vector<int64_t> row_start;

  int64_t NumBlockRows() const noexcept {
    return static_cast<int64_t>(row_start.empty() ? 0 : row_start.size() - 1);
  }
  int64_t Nnz() const noexcept { return static_cast<int64_t>(indices.size()); }

  /// Rows actually present in block row `i` (tail tiles may be short).
  int RowsInBlock(int64_t i) const noexcept {
    return static_cast<int>(row_start[static_cast<size_t>(i) + 1] -
                            row_start[static_cast<size_t>(i)]);
  }

  /// Total valid KV tokens attended by block row `i`.
  int64_t RowKvLen(int64_t i) const;

  /// Checks structural invariants; aborts on violation.
  void Validate() const;
};

/// One request's KV pages for batch BSR construction.
struct RequestKv {
  /// Physical page ids, in sequence order.
  std::vector<int64_t> pages;
  /// Valid tokens in the last page (1..page_size).
  int last_page_len = 0;
  /// Logical position of the first token held in `pages` (non-zero when the
  /// visible window does not start at position 0, e.g. StreamingLLM).
  int64_t pos_offset = 0;
};

/// Builds the batch BSR for paged attention: request `r` owns query rows
/// [qo_indptr[r], qo_indptr[r+1]) (already head-group fused), tiled at Br =
/// `tile_q`; every tile of request `r` attends to all of the request's pages.
BsrMatrix BuildBatchBsr(const std::vector<int64_t>& qo_indptr,
                        const std::vector<RequestKv>& kv, int page_size, int tile_q);

/// Builds a BSR from an explicit dense boolean mask (rows x cols), with block
/// size (br, bc); used for tree-attention masks and tests. Column block `j`
/// gets physical id `j` and position `j*bc`.
BsrMatrix BsrFromDenseMask(const std::vector<std::vector<bool>>& mask, int br, int bc);

/// Builds the BSR for pruned sparse attention (Quest-style, Sec. 4 / Tab. 9):
/// each request keeps only `selected_pages[r]` (indices into its page list).
BsrMatrix BuildPrunedBsr(const std::vector<int64_t>& qo_indptr,
                         const std::vector<RequestKv>& kv,
                         const std::vector<std::vector<int>>& selected_pages,
                         int page_size, int tile_q);

/// Repeats every mask row `group` times (consecutively), producing the
/// fused-row mask under GQA head-group fusion: fused row i*group+j carries
/// token i's mask. Used to lower per-token masks (tree attention) into the
/// fused-row space BsrFromDenseMask tiles over.
std::vector<std::vector<bool>> ExpandMaskRows(const std::vector<std::vector<bool>>& mask,
                                              int group);

/// Stacks `copies` copies of `unit` block-diagonally: copy c's block rows
/// follow copy c-1's, its column ids are offset by c * unit.num_col_blocks,
/// and its logical positions restart at each copy's own coordinate system
/// (block_pos is per-request in batch BSRs). Used to replicate one request's
/// tree-mask BSR across a verification batch.
BsrMatrix TileBsrDiagonal(const BsrMatrix& unit, int copies);

}  // namespace flashinfer::sparse
