#include "sparse/quest.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace flashinfer::sparse {

PageKeyMetadata BuildPageMetadata(const PagedKVCache& kv, int seq) {
  PageKeyMetadata meta;
  meta.head_dim = kv.head_dim();
  meta.num_heads = kv.num_kv_heads();
  const auto& pages = kv.SequencePages(seq);
  meta.num_pages = static_cast<int64_t>(pages.size());
  const size_t per_page = static_cast<size_t>(meta.num_heads) * meta.head_dim;
  meta.min_k.assign(static_cast<size_t>(meta.num_pages) * per_page,
                    std::numeric_limits<float>::infinity());
  meta.max_k.assign(static_cast<size_t>(meta.num_pages) * per_page,
                    -std::numeric_limits<float>::infinity());

  for (int64_t p = 0; p < meta.num_pages; ++p) {
    const int valid = (p + 1 == meta.num_pages)
                          ? kv.LastPageLen(seq)
                          : kv.page_size();
    for (int h = 0; h < meta.num_heads; ++h) {
      float* mn = meta.min_k.data() + (static_cast<size_t>(p) * meta.num_heads + h) *
                                          static_cast<size_t>(meta.head_dim);
      float* mx = meta.max_k.data() + (static_cast<size_t>(p) * meta.num_heads + h) *
                                          static_cast<size_t>(meta.head_dim);
      for (int t = 0; t < valid; ++t) {
        for (int d = 0; d < meta.head_dim; ++d) {
          const float v = kv.KAt(pages[static_cast<size_t>(p)], h, t, d);
          mn[d] = std::min(mn[d], v);
          mx[d] = std::max(mx[d], v);
        }
      }
    }
  }
  return meta;
}

float PageScoreUpperBound(std::span<const float> q, std::span<const float> min_k,
                          std::span<const float> max_k) noexcept {
  float score = 0.0f;
  for (size_t d = 0; d < q.size(); ++d) {
    score += std::max(q[d] * min_k[d], q[d] * max_k[d]);
  }
  return score;
}

std::vector<int> SelectTopPages(const PageKeyMetadata& meta, std::span<const float> q,
                                int num_qo_heads, int page_budget) {
  FI_CHECK_GE(page_budget, 1);
  FI_CHECK_EQ(static_cast<int>(q.size()), num_qo_heads * meta.head_dim);
  const int64_t n = meta.num_pages;
  if (n <= page_budget) {
    std::vector<int> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  const int group = num_qo_heads / meta.num_heads;
  std::vector<float> scores(static_cast<size_t>(n), 0.0f);
  for (int64_t p = 0; p < n; ++p) {
    float s = 0.0f;
    for (int qh = 0; qh < num_qo_heads; ++qh) {
      const int kvh = qh / group;
      s += PageScoreUpperBound(
          q.subspan(static_cast<size_t>(qh) * meta.head_dim,
                    static_cast<size_t>(meta.head_dim)),
          meta.MinK(p, kvh), meta.MaxK(p, kvh));
    }
    scores[static_cast<size_t>(p)] = s;
  }

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // The newest page always stays (it holds the current context tail).
  const int last = static_cast<int>(n - 1);
  std::partial_sort(order.begin(), order.begin() + page_budget, order.end(),
                    [&](int a, int b) {
                      if (a == last) return true;
                      if (b == last) return false;
                      return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
                    });
  std::vector<int> sel(order.begin(), order.begin() + page_budget);
  std::sort(sel.begin(), sel.end());
  return sel;
}

}  // namespace flashinfer::sparse
