#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace flashinfer::obs {

TimeSeries::TimeSeries(double bucket_s) : bucket_s_(bucket_s) {
  FI_CHECK_GT(bucket_s, 0.0);
}

void TimeSeries::Add(double t_s, double v) {
  FI_CHECK_GE(t_s, 0.0);
  const auto idx = static_cast<size_t>(t_s / bucket_s_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  Bucket& b = buckets_[idx];
  b.sum += v;
  b.max = b.count == 0 ? v : std::max(b.max, v);
  ++b.count;
}

double TimeSeries::Mean(int64_t i) const {
  const Bucket& b = buckets_[static_cast<size_t>(i)];
  return b.count > 0 ? b.sum / static_cast<double>(b.count) : 0.0;
}

std::string TimeSeries::ToString(const std::string& label) const {
  std::string out = label + " (bucket " + std::to_string(bucket_s_) + " s)\n";
  char line[160];
  for (int64_t i = 0; i < NumBuckets(); ++i) {
    std::snprintf(line, sizeof(line),
                  "  [%8.3f,%8.3f) n=%-6lld sum=%-12.4g mean=%-12.4g max=%-12.4g\n",
                  BucketStartS(i), BucketStartS(i + 1),
                  static_cast<long long>(Count(i)), Sum(i), Mean(i), Max(i));
    out += line;
  }
  return out;
}

Histogram::Histogram(double lo, double hi, double growth)
    : lo_(lo), growth_(growth), log_growth_(std::log(growth)) {
  FI_CHECK_GT(lo, 0.0);
  FI_CHECK_GT(hi, lo);
  FI_CHECK_GT(growth, 1.0);
  regular_ = static_cast<int64_t>(std::ceil(std::log(hi / lo) / log_growth_));
  counts_.assign(static_cast<size_t>(regular_) + 2, 0);
}

Histogram Histogram::FromSamples(const std::vector<double>& samples) {
  Histogram h;
  for (double v : samples) h.Add(v);
  return h;
}

int64_t Histogram::IndexOf(double v) const {
  if (!(v >= lo_)) return 0;  // Underflow (also catches NaN / negatives).
  const auto i = static_cast<int64_t>(std::floor(std::log(v / lo_) / log_growth_));
  if (i >= regular_) return regular_ + 1;  // Overflow.
  return i + 1;
}

void Histogram::Add(double v) {
  ++counts_[static_cast<size_t>(IndexOf(v))];
  min_ = count_ == 0 ? v : std::min(min_, v);
  max_ = count_ == 0 ? v : std::max(max_, v);
  sum_ += v;
  ++count_;
}

void Histogram::MergeFrom(const Histogram& other) {
  FI_CHECK_EQ(NumBuckets(), other.NumBuckets());
  FI_CHECK(lo_ == other.lo_ && growth_ == other.growth_);
  if (other.count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::BucketLowerEdge(int64_t i) const {
  if (i <= 0) return 0.0;
  return lo_ * std::exp(static_cast<double>(i - 1) * log_growth_);
}

double Histogram::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const double target = p * static_cast<double>(count_ - 1) + 1.0;
  double seen = 0.0;
  for (int64_t i = 0; i < NumBuckets(); ++i) {
    const double n = static_cast<double>(counts_[static_cast<size_t>(i)]);
    if (n == 0.0) continue;
    if (seen + n >= target) {
      // Geometric interpolation across the containing bucket's span.
      const double frac = (target - seen) / n;
      const double edge_lo = std::max(BucketLowerEdge(i), min_);
      const double edge_hi = std::min(
          i >= regular_ + 1 ? max_ : lo_ * std::exp(static_cast<double>(i) * log_growth_),
          max_);
      if (edge_lo <= 0.0 || edge_hi <= edge_lo) return std::min(edge_hi, max_);
      return std::min(max_, edge_lo * std::pow(edge_hi / edge_lo, frac));
    }
    seen += n;
  }
  return max_;
}

std::string Histogram::ToString(const std::string& label) const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "%s: n=%lld min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g mean=%.4g\n",
                label.c_str(), static_cast<long long>(count_), MinValue(), Quantile(0.5),
                Quantile(0.9), Quantile(0.99), MaxValue(), Mean());
  std::string out = line;
  for (int64_t i = 0; i < NumBuckets(); ++i) {
    const int64_t n = counts_[static_cast<size_t>(i)];
    if (n == 0) continue;
    const double e0 = BucketLowerEdge(i);
    const double e1 = i >= regular_ + 1
                          ? std::numeric_limits<double>::infinity()
                          : lo_ * std::exp(static_cast<double>(i) * log_growth_);
    std::snprintf(line, sizeof(line), "  [%10.4g,%10.4g) %lld\n", e0, e1,
                  static_cast<long long>(n));
    out += line;
  }
  return out;
}

}  // namespace flashinfer::obs
