// Live telemetry plane: a registry of labeled counters / gauges / histogram
// sketches that the serving engine publishes into on every step, in
// *simulated* time.
//
// Three metric types, each carrying both a cumulative view (monotone totals,
// full-run distribution) and a *sliding-window* view (a ring of time slots
// covering the trailing `window_s` seconds) so live signals — tokens/s over
// the last 10 s, the windowed TTFT p99 of one tenant class — are first-class
// and bounded in memory no matter how long the run:
//
//   Counter  Inc(t, v)      -> total(), WindowSum(now), WindowRatePerS(now)
//   Gauge    Set(t, v)      -> value(), WindowMax(now)
//   Sketch   Observe(t, v)  -> cumulative Histogram + WindowSnapshot(now)
//
// The Histogram reused here is the log-bucketed percentile sketch from
// obs/stats.h: a few dozen buckets resolve latency tails spanning five orders
// of magnitude at ~19% worst-case relative error, so per-token ITL
// distributions cost O(1) memory instead of one double per emitted token.
//
// Labels are a small sorted key=value set (tenant, priority, replica, ...).
// The registry hands out stable pointers, so a hot emission site resolves its
// instance once and publishes with a single function call per sample.
//
// Exposition:
//   * PrometheusText(now): the standard text scrape format — counters,
//     gauges, and cumulative histograms with `le` buckets.
//   * JsonSnapshot(now): one JSON document (written/parsed with the shared
//     src/util/json machinery) carrying both cumulative and windowed views —
//     what a dashboard or the CI artifact uploader consumes.
//   * MergeFrom(other, "replica", "3"): ClusterEngine folds per-replica
//     registries into one cluster view by re-labeling every instance.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats.h"

namespace flashinfer::obs {

/// Canonical sorted label set. Construct with {{"tenant","3"},{"priority","1"}}
/// in any order; Key() is the canonical `k1=v1,k2=v2` form used for instance
/// identity and exposition.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv);

  /// Returns a copy with `key=value` added (replacing an existing key).
  LabelSet With(const std::string& key, const std::string& value) const;

  const std::vector<std::pair<std::string, std::string>>& Pairs() const noexcept {
    return kv_;
  }
  bool empty() const noexcept { return kv_.empty(); }

  /// Canonical identity string: `k1=v1,k2=v2` (keys sorted).
  std::string Key() const;
  /// Prometheus selector body: `k1="v1",k2="v2"` (values escaped).
  std::string Prometheus() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;  // Sorted by key.
};

/// Helper: the (tenant, priority) class labels every per-class serving metric
/// uses. tenant < 0 (single-tenant workloads) labels as tenant="-".
LabelSet ClassLabels(int tenant, int priority);

/// Sliding-window accumulator: a ring of `slots` sub-buckets, each
/// `window_s / slots` of simulated time wide. A slot is lazily reset when its
/// ring position is reused by a later epoch, so Add is O(1) and the window
/// state is a fixed-size array regardless of run length.
class WindowedSum {
 public:
  WindowedSum(double window_s, int slots);

  void Add(double t_s, double v);

  /// Sum over slots still inside [now - window_s, now].
  double Sum(double now_s) const;
  /// Max of per-sample values inside the live window (0 when empty).
  double Max(double now_s) const;
  int64_t Count(double now_s) const;
  double RatePerS(double now_s) const { return Sum(now_s) / window_s_; }

  double window_s() const noexcept { return window_s_; }

 private:
  struct Slot {
    int64_t epoch = -1;  // floor(t / slot_s) when last written.
    double sum = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };
  int64_t EpochOf(double t_s) const;
  double slot_s_ = 1.0;
  double window_s_ = 1.0;
  std::vector<Slot> slots_;
};

/// Sliding-window percentile sketch: a ring of log-bucketed Histograms (same
/// lazy-epoch scheme as WindowedSum); Merged(now) folds the live slots into
/// one Histogram for quantile queries over the trailing window.
class WindowedSketch {
 public:
  WindowedSketch(double window_s, int slots);

  void Observe(double t_s, double v);
  Histogram Merged(double now_s) const;

 private:
  struct Slot {
    int64_t epoch = -1;
    Histogram hist;
  };
  double slot_s_ = 1.0;
  double window_s_ = 1.0;
  std::vector<Slot> slots_;
};

/// Window geometry shared by every instance a registry creates.
struct WindowConfig {
  double window_s = 10.0;
  int slots = 5;
};

/// Monotone counter with a windowed rate view.
class Counter {
 public:
  explicit Counter(const WindowConfig& w) : window_(w.window_s, w.slots) {}

  void Inc(double t_s, double v = 1.0) {
    total_ += v;
    window_.Add(t_s, v);
  }

  double total() const noexcept { return total_; }
  double WindowSum(double now_s) const { return window_.Sum(now_s); }
  double WindowRatePerS(double now_s) const { return window_.RatePerS(now_s); }

 private:
  double total_ = 0.0;
  WindowedSum window_;
};

/// Last-write-wins gauge with a windowed max.
class Gauge {
 public:
  explicit Gauge(const WindowConfig& w) : window_(w.window_s, w.slots) {}

  void Set(double t_s, double v) {
    value_ = v;
    window_.Add(t_s, v);
  }

  double value() const noexcept { return value_; }
  double WindowMax(double now_s) const { return window_.Max(now_s); }

 private:
  double value_ = 0.0;
  WindowedSum window_;
};

/// Bounded percentile sketch: cumulative log-bucketed Histogram plus the
/// sliding-window ring.
class Sketch {
 public:
  explicit Sketch(const WindowConfig& w) : window_(w.window_s, w.slots) {}

  void Observe(double t_s, double v) {
    cumulative_.Add(v);
    window_.Observe(t_s, v);
  }

  const Histogram& Cumulative() const noexcept { return cumulative_; }
  Histogram WindowSnapshot(double now_s) const { return window_.Merged(now_s); }

 private:
  Histogram cumulative_;
  WindowedSketch window_;
};

/// Registry of metric families. Get* registers on first use and returns a
/// stable pointer (instances are never destroyed while the registry lives),
/// so emission sites resolve once and publish lock-free ever after (the
/// engine is single-threaded per replica; cross-replica merge copies).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(WindowConfig window = {});

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  Sketch* GetSketch(const std::string& name, const LabelSet& labels = {});

  /// Lookup without registration; nullptr when the instance does not exist.
  const Counter* FindCounter(const std::string& name, const LabelSet& labels = {}) const;
  const Gauge* FindGauge(const std::string& name, const LabelSet& labels = {}) const;
  const Sketch* FindSketch(const std::string& name, const LabelSet& labels = {}) const;

  /// Sum of `total()` across every instance of a counter family (all labels).
  double CounterFamilyTotal(const std::string& name) const;

  /// Copies every instance of `other` into this registry with
  /// `label_key=label_value` added to its labels — the cluster merge: each
  /// replica's registry lands under its own `replica="i"` label, so instances
  /// never collide and per-replica views survive in the merged exposition.
  void MergeFrom(const MetricsRegistry& other, const std::string& label_key,
                 const std::string& label_value);

  /// Prometheus text exposition format (counters, gauges, and cumulative
  /// histograms with `le` buckets; windowed views are JSON-only — Prometheus
  /// derives rates server-side).
  std::string PrometheusText(double now_s) const;

  /// Full JSON snapshot: cumulative totals/distributions plus the windowed
  /// aggregates (rate over the trailing window, windowed quantiles), one
  /// entry per instance. Parses cleanly with util::JsonParse — pinned by the
  /// schema test.
  std::string JsonSnapshot(double now_s) const;

  const WindowConfig& window() const noexcept { return window_; }

  /// Every registered (family, label) pair, for iteration in tests.
  std::vector<std::pair<std::string, std::string>> InstanceNames() const;

 private:
  enum class Type { kCounter, kGauge, kSketch };
  struct Instance {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Sketch> sketch;
  };
  struct Family {
    Type type{};
    // Keyed by LabelSet::Key(); map keeps exposition order deterministic.
    std::map<std::string, Instance> instances;
  };

  Family& FamilyOf(const std::string& name, Type type);
  const Instance* Find(const std::string& name, Type type, const LabelSet& labels) const;

  WindowConfig window_;
  std::map<std::string, Family> families_;
};

}  // namespace flashinfer::obs
