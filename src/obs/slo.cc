#include "obs/slo.h"

#include "util/check.h"

namespace flashinfer::obs {

const char* SloSignalStr(SloSignal s) {
  switch (s) {
    case SloSignal::kTtft: return "ttft";
    case SloSignal::kItl: return "itl";
  }
  return "?";
}

namespace {
// Window slot count for burn tracking: finer than the registry default so a
// short fast window still distinguishes "just went bad" from "was bad 4 s
// ago" without the cost mattering (two sums per window per spec).
constexpr int kBurnSlots = 5;
}  // namespace

SloMonitor::SloMonitor(std::vector<SloSpec> specs, TraceRecorder* trace)
    : specs_(std::move(specs)), trace_(trace) {
  states_.reserve(specs_.size());
  for (const SloSpec& s : specs_) {
    FI_CHECK_GT(s.threshold_ms, 0.0);
    FI_CHECK(s.objective > 0.0 && s.objective < 1.0);
    FI_CHECK_GT(s.fast_window_s, 0.0);
    FI_CHECK_GE(s.slow_window_s, s.fast_window_s);
    states_.push_back(SpecState{WindowedSum(s.fast_window_s, kBurnSlots),
                                WindowedSum(s.fast_window_s, kBurnSlots),
                                WindowedSum(s.slow_window_s, kBurnSlots),
                                WindowedSum(s.slow_window_s, kBurnSlots)});
  }
}

void SloMonitor::Observe(SloSignal signal, int tenant, int priority, double value_ms,
                         double t_s) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    if (spec.signal != signal || !spec.Matches(tenant, priority)) continue;
    SpecState& st = states_[i];
    const bool good = value_ms <= spec.threshold_ms;
    (good ? st.good : st.bad) += 1;
    (good ? st.fast_good : st.fast_bad).Add(t_s, 1.0);
    (good ? st.slow_good : st.slow_bad).Add(t_s, 1.0);
  }
}

double SloMonitor::Burn(double bad, double good, double objective) {
  const double total = good + bad;
  if (total <= 0.0) return 0.0;
  return (bad / total) / (1.0 - objective);
}

void SloMonitor::Evaluate(double t_s) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    SpecState& st = states_[i];
    const double fast = Burn(st.fast_bad.Sum(t_s), st.fast_good.Sum(t_s), spec.objective);
    const double slow = Burn(st.slow_bad.Sum(t_s), st.slow_good.Sum(t_s), spec.objective);
    const bool should_fire = fast >= spec.fast_burn && slow >= spec.slow_burn;
    if (should_fire == st.firing) continue;
    st.firing = should_fire;
    if (should_fire) ++st.alerts;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.ts_us = t_s * 1e6;
      e.name = should_fire ? TraceName::kSloAlert : TraceName::kSloRecover;
      e.a = static_cast<int64_t>(i);
      e.v = fast;
      trace_->Record(e);
    }
  }
}

std::vector<SloMonitor::SpecStatus> SloMonitor::Status(double now_s) const {
  std::vector<SpecStatus> out;
  out.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SpecState& st = states_[i];
    SpecStatus s;
    s.spec = &specs_[i];
    s.good = st.good;
    s.bad = st.bad;
    s.attainment = st.good + st.bad > 0
                       ? static_cast<double>(st.good) / static_cast<double>(st.good + st.bad)
                       : 1.0;
    s.fast_burn = Burn(st.fast_bad.Sum(now_s), st.fast_good.Sum(now_s), specs_[i].objective);
    s.slow_burn = Burn(st.slow_bad.Sum(now_s), st.slow_good.Sum(now_s), specs_[i].objective);
    s.firing = st.firing;
    s.alerts = st.alerts;
    out.push_back(s);
  }
  return out;
}

int64_t SloMonitor::TotalAlerts() const noexcept {
  int64_t n = 0;
  for (const SpecState& st : states_) n += st.alerts;
  return n;
}

}  // namespace flashinfer::obs
