#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/json.h"

namespace flashinfer::obs {

// ---------------------------------------------------------------------------
// LabelSet

LabelSet::LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv)
    : kv_(kv) {
  std::sort(kv_.begin(), kv_.end());
  for (size_t i = 1; i < kv_.size(); ++i) {
    FI_CHECK(kv_[i - 1].first != kv_[i].first);
  }
}

LabelSet LabelSet::With(const std::string& key, const std::string& value) const {
  LabelSet out = *this;
  for (auto& [k, v] : out.kv_) {
    if (k == key) {
      v = value;
      return out;
    }
  }
  out.kv_.emplace_back(key, value);
  std::sort(out.kv_.begin(), out.kv_.end());
  return out;
}

std::string LabelSet::Key() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string LabelSet::Prometheus() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += util::JsonEscape(v);  // Prometheus shares JSON string escaping.
    out += '"';
  }
  return out;
}

LabelSet ClassLabels(int tenant, int priority) {
  return LabelSet{{"tenant", tenant >= 0 ? std::to_string(tenant) : std::string("-")},
                  {"priority", std::to_string(priority)}};
}

// ---------------------------------------------------------------------------
// WindowedSum / WindowedSketch

WindowedSum::WindowedSum(double window_s, int slots)
    : slot_s_(window_s / slots), window_s_(window_s), slots_(static_cast<size_t>(slots)) {
  FI_CHECK_GT(window_s, 0.0);
  FI_CHECK_GT(slots, 0);
}

int64_t WindowedSum::EpochOf(double t_s) const {
  return static_cast<int64_t>(std::floor(t_s / slot_s_));
}

void WindowedSum::Add(double t_s, double v) {
  const int64_t epoch = EpochOf(t_s);
  Slot& s = slots_[static_cast<size_t>(epoch % static_cast<int64_t>(slots_.size()))];
  if (s.epoch != epoch) s = Slot{epoch, 0.0, 0.0, 0};
  s.sum += v;
  s.max = s.count == 0 ? v : std::max(s.max, v);
  ++s.count;
}

double WindowedSum::Sum(double now_s) const {
  const int64_t lo = EpochOf(now_s) - static_cast<int64_t>(slots_.size()) + 1;
  double sum = 0.0;
  for (const Slot& s : slots_) {
    if (s.epoch >= lo) sum += s.sum;
  }
  return sum;
}

double WindowedSum::Max(double now_s) const {
  const int64_t lo = EpochOf(now_s) - static_cast<int64_t>(slots_.size()) + 1;
  double mx = 0.0;
  bool any = false;
  for (const Slot& s : slots_) {
    if (s.epoch >= lo && s.count > 0) {
      mx = any ? std::max(mx, s.max) : s.max;
      any = true;
    }
  }
  return mx;
}

int64_t WindowedSum::Count(double now_s) const {
  const int64_t lo = EpochOf(now_s) - static_cast<int64_t>(slots_.size()) + 1;
  int64_t n = 0;
  for (const Slot& s : slots_) {
    if (s.epoch >= lo) n += s.count;
  }
  return n;
}

WindowedSketch::WindowedSketch(double window_s, int slots)
    : slot_s_(window_s / slots), window_s_(window_s), slots_(static_cast<size_t>(slots)) {
  FI_CHECK_GT(window_s, 0.0);
  FI_CHECK_GT(slots, 0);
}

void WindowedSketch::Observe(double t_s, double v) {
  const auto epoch = static_cast<int64_t>(std::floor(t_s / slot_s_));
  Slot& s = slots_[static_cast<size_t>(epoch % static_cast<int64_t>(slots_.size()))];
  if (s.epoch != epoch) {
    s.epoch = epoch;
    s.hist = Histogram();
  }
  s.hist.Add(v);
}

Histogram WindowedSketch::Merged(double now_s) const {
  const auto lo = static_cast<int64_t>(std::floor(now_s / slot_s_)) -
                  static_cast<int64_t>(slots_.size()) + 1;
  Histogram out;
  for (const Slot& s : slots_) {
    if (s.epoch >= lo) out.MergeFrom(s.hist);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(WindowConfig window) : window_(window) {
  FI_CHECK_GT(window_.window_s, 0.0);
  FI_CHECK_GT(window_.slots, 0);
}

MetricsRegistry::Family& MetricsRegistry::FamilyOf(const std::string& name, Type type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else {
    FI_CHECK(it->second.type == type);  // A name binds to one metric type.
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const LabelSet& labels) {
  Family& fam = FamilyOf(name, Type::kCounter);
  auto [it, inserted] = fam.instances.try_emplace(labels.Key());
  if (inserted) {
    it->second.labels = labels;
    it->second.counter = std::make_unique<Counter>(window_);
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const LabelSet& labels) {
  Family& fam = FamilyOf(name, Type::kGauge);
  auto [it, inserted] = fam.instances.try_emplace(labels.Key());
  if (inserted) {
    it->second.labels = labels;
    it->second.gauge = std::make_unique<Gauge>(window_);
  }
  return it->second.gauge.get();
}

Sketch* MetricsRegistry::GetSketch(const std::string& name, const LabelSet& labels) {
  Family& fam = FamilyOf(name, Type::kSketch);
  auto [it, inserted] = fam.instances.try_emplace(labels.Key());
  if (inserted) {
    it->second.labels = labels;
    it->second.sketch = std::make_unique<Sketch>(window_);
  }
  return it->second.sketch.get();
}

const MetricsRegistry::Instance* MetricsRegistry::Find(const std::string& name, Type type,
                                                       const LabelSet& labels) const {
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.type != type) return nullptr;
  const auto iit = fit->second.instances.find(labels.Key());
  return iit == fit->second.instances.end() ? nullptr : &iit->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const LabelSet& labels) const {
  const Instance* inst = Find(name, Type::kCounter, labels);
  return inst ? inst->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name, const LabelSet& labels) const {
  const Instance* inst = Find(name, Type::kGauge, labels);
  return inst ? inst->gauge.get() : nullptr;
}

const Sketch* MetricsRegistry::FindSketch(const std::string& name,
                                          const LabelSet& labels) const {
  const Instance* inst = Find(name, Type::kSketch, labels);
  return inst ? inst->sketch.get() : nullptr;
}

double MetricsRegistry::CounterFamilyTotal(const std::string& name) const {
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.type != Type::kCounter) return 0.0;
  double sum = 0.0;
  for (const auto& [key, inst] : fit->second.instances) sum += inst.counter->total();
  return sum;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other, const std::string& label_key,
                                const std::string& label_value) {
  for (const auto& [name, fam] : other.families_) {
    for (const auto& [key, inst] : fam.instances) {
      const LabelSet labels = inst.labels.With(label_key, label_value);
      switch (fam.type) {
        case Type::kCounter:
          *GetCounter(name, labels) = *inst.counter;
          break;
        case Type::kGauge:
          *GetGauge(name, labels) = *inst.gauge;
          break;
        case Type::kSketch:
          *GetSketch(name, labels) = *inst.sketch;
          break;
      }
    }
  }
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::InstanceNames() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, inst] : fam.instances) out.emplace_back(name, key);
  }
  return out;
}

namespace {

void AppendPromSample(std::string& out, const std::string& name, const LabelSet& labels,
                      double value, const char* suffix = "",
                      const std::string& extra_label = {}) {
  out += name;
  out += suffix;
  const std::string body = labels.Prometheus();
  if (!body.empty() || !extra_label.empty()) {
    out += '{';
    out += body;
    if (!extra_label.empty()) {
      if (!body.empty()) out += ',';
      out += extra_label;
    }
    out += '}';
  }
  out += ' ';
  out += util::JsonNum(value);
  out += '\n';
}

}  // namespace

std::string MetricsRegistry::PrometheusText(double now_s) const {
  (void)now_s;  // Prometheus exposes cumulative state; rates derive server-side.
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# TYPE " + name;
    switch (fam.type) {
      case Type::kCounter:
        out += " counter\n";
        for (const auto& [key, inst] : fam.instances) {
          AppendPromSample(out, name, inst.labels, inst.counter->total());
        }
        break;
      case Type::kGauge:
        out += " gauge\n";
        for (const auto& [key, inst] : fam.instances) {
          AppendPromSample(out, name, inst.labels, inst.gauge->value());
        }
        break;
      case Type::kSketch: {
        out += " histogram\n";
        for (const auto& [key, inst] : fam.instances) {
          const Histogram& h = inst.sketch->Cumulative();
          int64_t cum = 0;
          for (int64_t i = 0; i < h.NumBuckets(); ++i) {
            if (h.BucketCount(i) == 0) continue;
            cum += h.BucketCount(i);
            // Upper edge of bucket i is the lower edge of bucket i+1; the
            // overflow bucket's is +Inf, emitted below.
            if (i == h.NumBuckets() - 1) continue;
            AppendPromSample(out, name, inst.labels, static_cast<double>(cum), "_bucket",
                             "le=\"" + util::JsonNum(h.BucketLowerEdge(i + 1)) + "\"");
          }
          AppendPromSample(out, name, inst.labels, static_cast<double>(h.Count()), "_bucket",
                           "le=\"+Inf\"");
          AppendPromSample(out, name, inst.labels,
                           h.Mean() * static_cast<double>(h.Count()), "_sum");
          AppendPromSample(out, name, inst.labels, static_cast<double>(h.Count()), "_count");
        }
        break;
      }
    }
  }
  return out;
}

namespace {

void AppendJsonKv(std::string& out, const char* key, double v, bool last = false) {
  out += '"';
  out += key;
  out += "\":";
  out += util::JsonNum(v);
  if (!last) out += ',';
}

std::string LabelsJson(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels.Pairs()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += util::JsonEscape(k);
    out += "\":\"";
    out += util::JsonEscape(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string SketchJson(const Histogram& h, const char* p50, const char* p90, const char* p99) {
  std::string out;
  AppendJsonKv(out, "count", static_cast<double>(h.Count()));
  AppendJsonKv(out, "sum", h.Mean() * static_cast<double>(h.Count()));
  AppendJsonKv(out, "min", h.MinValue());
  AppendJsonKv(out, "max", h.MaxValue());
  AppendJsonKv(out, p50, h.Quantile(0.5));
  AppendJsonKv(out, p90, h.Quantile(0.9));
  AppendJsonKv(out, p99, h.Quantile(0.99), /*last=*/true);
  return out;
}

}  // namespace

std::string MetricsRegistry::JsonSnapshot(double now_s) const {
  std::string out = "{\"now_s\":" + util::JsonNum(now_s) +
                    ",\"window_s\":" + util::JsonNum(window_.window_s) + ",\"metrics\":[";
  bool first = true;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, inst] : fam.instances) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + util::JsonEscape(name) + "\",\"labels\":" + LabelsJson(inst.labels);
      switch (fam.type) {
        case Type::kCounter:
          out += ",\"type\":\"counter\",";
          AppendJsonKv(out, "total", inst.counter->total());
          AppendJsonKv(out, "window_sum", inst.counter->WindowSum(now_s));
          AppendJsonKv(out, "window_rate_per_s", inst.counter->WindowRatePerS(now_s),
                       /*last=*/true);
          break;
        case Type::kGauge:
          out += ",\"type\":\"gauge\",";
          AppendJsonKv(out, "value", inst.gauge->value());
          AppendJsonKv(out, "window_max", inst.gauge->WindowMax(now_s), /*last=*/true);
          break;
        case Type::kSketch: {
          out += ",\"type\":\"sketch\",";
          out += SketchJson(inst.sketch->Cumulative(), "p50", "p90", "p99");
          out += ",\"window\":{";
          out += SketchJson(inst.sketch->WindowSnapshot(now_s), "p50", "p90", "p99");
          out += '}';
          break;
        }
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

}  // namespace flashinfer::obs
