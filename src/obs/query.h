// Queryable view over one track's trace events — the assertion vocabulary
// for tests and the per-request accounting the example/benches print.
//
// The two flagship queries:
//
//  * PerRequest(): a wall-clock decomposition of every request's life —
//    queue wait, prefill, decode, preempted stall, swap-in-flight, recompute
//    rebuild — reconstructed purely from the request's phase spans. For
//    single-branch requests the phases tile arrival→finish exactly (pinned
//    by tests), so "why was this request slow" reads straight off the row.
//
//  * Unexplained*Stalls(): every stall counter increment in ServingMetrics
//    must be *attributable* to a concrete event in the same step — an ITL
//    stall to a prefill-alone batch or a serialized swap transfer, a
//    preemption stall to an enclosing eviction span. A non-empty result
//    means the trace failed to explain a stall, which the trace-invariant
//    tests treat as a bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "obs/trace.h"

namespace flashinfer::obs {

/// Per-request wall-time decomposition (milliseconds of simulated time).
/// For parallel-n requests the decode/preempted columns sum branch segments
/// (branches overlap in time), so only TotalMs of single-branch requests
/// equals finish - arrival.
struct RequestBreakdown {
  int32_t req = -1;
  double queued_ms = 0.0;     // Arrival -> admission.
  double prefill_ms = 0.0;    // Admission -> first token.
  double decode_ms = 0.0;     // Decode segments (split by preemption).
  double preempted_ms = 0.0;  // Evicted, waiting for restore capacity.
  double swap_ms = 0.0;       // Swap-in transfer in flight.
  double recompute_ms = 0.0;  // Recompute-restore context rebuild.
  double migrate_ms = 0.0;    // Cross-replica KV migration in flight.
  double arrival_ms = 0.0;    // Queued-span begin (absolute, ms).
  double finish_ms = 0.0;     // Last finish instant (absolute, ms).
  bool rejected = false;

  double TotalMs() const {
    return queued_ms + prefill_ms + decode_ms + preempted_ms + swap_ms + recompute_ms +
           migrate_ms;
  }
};

class TraceQuery {
 public:
  explicit TraceQuery(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Wall decomposition per request id, sorted by id. Rejected requests get
  /// a row with `rejected = true` and zero phases.
  std::vector<RequestBreakdown> PerRequest() const;

  /// Step spans whose stalled-branch count (payload c) is not explained by a
  /// concurrent cause: a prefill-alone batch (prefill tokens with no decode)
  /// or a serialized swap transfer. Empty == every ITL stall attributed.
  std::vector<TraceEvent> UnexplainedItlStalls() const;

  /// Step spans with preempted branches waiting (payload d) that are not
  /// covered by any request's preempted span. Empty == every preemption
  /// stall attributed to a concrete eviction.
  std::vector<TraceEvent> UnexplainedPreemptStalls() const;

  /// Migrate-in spans (decode-replica import wait) not overlapped by a
  /// same-request copy_migrate transfer span: a migration wait the trace
  /// cannot attribute to a concrete replica-pair link transfer. Empty ==
  /// every migration stall attributed.
  std::vector<TraceEvent> UnexplainedMigrationWaits() const;

  /// Sum of stalled-branch counts over step spans (== the engine's
  /// ServingMetrics::itl_stall_steps when no events were dropped).
  int64_t TotalItlStallSteps() const;
  /// Sum of preempted-waiting counts over step spans (== preempt_stall_steps).
  int64_t TotalPreemptStallSteps() const;

  /// Number of events with this name.
  int64_t CountName(TraceName n) const;

  /// Collapses a counter track into fixed time buckets (mean/max per bucket).
  TimeSeries CounterSeries(TraceName counter, double bucket_s) const;

  /// Renders PerRequest() rows (at most `max_rows`) as an aligned table.
  std::string BreakdownTable(int64_t max_rows = 20) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace flashinfer::obs
