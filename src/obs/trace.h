// Engine-wide event tracing (the observability floor under src/serving,
// src/cluster, and the benches).
//
// A TraceRecorder collects typed span/instant/counter events in *simulated*
// time into a bounded ring buffer: when the buffer fills, the oldest events
// are overwritten, so what survives is always the trailing window — exactly
// what a failure dump wants. The hot path is allocation-free: one POD store
// per event into a preallocated buffer, and every engine emission site is
// gated on the recorder pointer, so a disabled trace costs one branch.
//
// Events are closed at record time (spans carry begin + duration; there are
// no dangling "open" markers), so a ring overwrite can never orphan half a
// span and exporters never need matching state.
//
// Event vocabulary (TraceName) and payload conventions:
//
//   Step track (per replica; spans never overlap, phases tile their step):
//     kStep         span   a=prefill_tokens b=decode_branches
//                          c=stalled_branches d=preempted_waiting
//                          flags: kStepFlagSpec | kStepFlagSwap
//     kPhaseDraft/Attn/Gemm/Comm/Swap/Host
//                   span   component times laid end-to-end inside the step
//                          (they sum exactly to the step duration).
//     kChunk        inst   req a=tokens b=completes c=restore(0 none,
//                          1 recompute, 2 swap transfer)
//
//   Request lifecycle (async per request id; phases tile arrival→finish):
//     kReqQueued    span   arrival -> admission
//     kReqPrefill   span   admission -> first token; a=computed_tokens
//                          b=cached_tokens c=chunks
//     kReqDecode    span   decode segment (split by preemption); a=kv_len
//     kReqPreempted span   eviction -> restore start; a=kv_len b=swapped
//     kReqSwapIn    span   swap-in transfer in flight; a=kv_len
//     kReqRecompute span   recompute restore rebuild; a=kv_len
//     kReqMigrateIn span   migration import in flight on the decode replica
//                          (admit -> branches resume); a=kv_tokens b=branches
//     kReqAdmit     inst   a=new_prompt_tokens b=kv_need
//     kReqFirstToken inst
//     kReqFinish    inst   per finished branch
//     kReqReject    inst   a=kv_need b=kv_token_budget
//
//   KV events (two-tier cache traffic):
//     kKvEvictSwap / kKvEvictDrop        inst  req a=kv_len b=pages
//     kKvRestoreSwap / kKvRestoreRecompute inst req a=kv_len
//     kKvEncode     inst  host-codec encode at eviction (codec-on only);
//                         req a=logical_bytes b=stored_bytes
//     kKvDecode     inst  host-codec decode priced into the swap-in;
//                         req a=kv_len b=decode_us
//
//   Copy streams (overlap-swap mode; "copy" track, spans may trail the last
//   step — DMA completion is asynchronous):
//     kCopyD2H / kCopyH2D  span  req a=kv_len b=pages
//                          c=queue_delay_us (issue -> stream start)
//     kCopyMigrate  span   inter-replica KV migration transfer (recorded on
//                          the destination replica); req a=kv_tokens b=pages
//                          c=queue_delay_us on the replica-pair link
//
//   Migration (disaggregated prefill/decode mode):
//     kReqMigrateOut inst  branch extracted from the prefill replica at first
//                          token; a=kv_tokens b=pages c=branches
//
//   Router (cluster track):
//     kRouteDecision inst  req a=replica b=matched_prefix_tokens
//
//   SLO burn-rate monitor (obs/slo.h; edge-triggered per spec):
//     kSloAlert / kSloRecover inst  a=spec_index v=fast-window burn rate
//
//   Counters (sampled after every executed step):
//     kCtrKvDevice kCtrKvHost kCtrQueueDepth kCtrRunning kCtrPreempted
//     kCtrTokPerS kCtrHostStoredBytes   v=value
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashinfer::obs {

enum class TraceKind : uint8_t { kSpan, kInstant, kCounter };

enum class TraceName : uint8_t {
  // Step track spans.
  kStep,
  kPhaseDraft,
  kPhaseAttn,
  kPhaseGemm,
  kPhaseComm,
  kPhaseSwap,
  kPhaseHost,
  // Request lifecycle spans.
  kReqQueued,
  kReqPrefill,
  kReqDecode,
  kReqPreempted,
  kReqSwapIn,
  kReqRecompute,
  kReqMigrateIn,
  // Copy-stream spans (overlap-swap mode; one Perfetto track per engine).
  kCopyD2H,
  kCopyH2D,
  kCopyMigrate,
  // Instants.
  kChunk,
  kReqAdmit,
  kReqFirstToken,
  kReqFinish,
  kReqReject,
  kKvEvictSwap,
  kKvEvictDrop,
  kKvRestoreSwap,
  kKvRestoreRecompute,
  kKvEncode,
  kKvDecode,
  kReqMigrateOut,
  kRouteDecision,
  kSloAlert,
  kSloRecover,
  // Counters.
  kCtrKvDevice,
  kCtrKvHost,
  kCtrQueueDepth,
  kCtrRunning,
  kCtrPreempted,
  kCtrTokPerS,
  kCtrHostStoredBytes,
};

/// Stable display name (also the Perfetto slice / counter-track name).
const char* TraceNameStr(TraceName n);

/// Span vs instant vs counter is a property of the name, not per-event state.
TraceKind KindOf(TraceName n) noexcept;

/// kStep flag bits.
inline constexpr uint16_t kStepFlagSpec = 1;  // Verify (spec-decode) step.
inline constexpr uint16_t kStepFlagSwap = 2;  // A swap transfer serialized in.

/// One recorded event. POD; payload field meanings are per-name (see the
/// header comment). Timestamps are simulated microseconds.
struct TraceEvent {
  double ts_us = 0.0;
  double dur_us = 0.0;  // Spans only; 0 for instants/counters.
  TraceName name{};
  uint16_t flags = 0;
  int32_t req = -1;  // Request id, or -1 when not request-scoped.
  int64_t a = 0, b = 0, c = 0, d = 0;
  double v = 0.0;  // Counter value.
};

/// Tracing knob carried by EngineConfig. Off by default: a disabled trace
/// records nothing and changes no engine behavior (pinned by tests that
/// compare metrics bit-for-bit against a traced run).
struct TraceConfig {
  bool enabled = false;
  /// Ring capacity in events; the oldest events are overwritten when full,
  /// leaving the trailing window. 64Ki events ≈ 4.5 MB.
  int64_t capacity = 1 << 16;
};

/// Bounded ring buffer of TraceEvents in simulated time.
class TraceRecorder {
 public:
  explicit TraceRecorder(int64_t capacity);

  void Clear() noexcept;

  /// Appends one event (overwriting the oldest when full). Never allocates.
  void Record(const TraceEvent& e) noexcept {
    buf_[static_cast<size_t>(head_)] = e;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    ++recorded_;
  }

  /// Events currently held (<= capacity).
  int64_t size() const noexcept {
    return recorded_ < capacity_ ? recorded_ : capacity_;
  }
  /// Events overwritten by ring wraparound.
  int64_t dropped() const noexcept {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  int64_t capacity() const noexcept { return capacity_; }

  /// Copies the held events oldest-first (the export/query path; allocates).
  std::vector<TraceEvent> Events() const;

 private:
  int64_t capacity_ = 0;
  int64_t head_ = 0;      // Next write slot.
  int64_t recorded_ = 0;  // Total Record() calls since Clear().
  std::vector<TraceEvent> buf_;
};

}  // namespace flashinfer::obs
