// Time-series + histogram accumulators for serving telemetry.
//
// TimeSeries buckets samples into fixed-width simulated-time bins (sum,
// count, max per bin) — the printable form of a counter track, and the thing
// a bench prints so two runs can be diffed bin-by-bin. Histogram is
// log-bucketed (geometric bucket edges), the right shape for latency
// distributions whose tails span orders of magnitude: TTFT/ITL histograms
// stay a few dozen buckets whether the tail is 10 ms or 10 s, so CI can diff
// the printed form across PRs without quantile jitter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flashinfer::obs {

/// Fixed-width time-bucket accumulator.
class TimeSeries {
 public:
  explicit TimeSeries(double bucket_s);

  /// Accumulates `v` into the bucket containing time `t_s` (t_s >= 0).
  void Add(double t_s, double v);

  double bucket_s() const noexcept { return bucket_s_; }
  /// Buckets up to the last one touched (leading/interior empties included).
  int64_t NumBuckets() const noexcept { return static_cast<int64_t>(buckets_.size()); }
  double BucketStartS(int64_t i) const { return static_cast<double>(i) * bucket_s_; }
  int64_t Count(int64_t i) const { return buckets_[static_cast<size_t>(i)].count; }
  double Sum(int64_t i) const { return buckets_[static_cast<size_t>(i)].sum; }
  double Max(int64_t i) const { return buckets_[static_cast<size_t>(i)].max; }
  double Mean(int64_t i) const;
  /// Sum normalized by the bucket width: a per-second rate.
  double RatePerS(int64_t i) const { return Sum(i) / bucket_s_; }

  /// One line per bucket: "[t0,t1) count sum mean max".
  std::string ToString(const std::string& label) const;

 private:
  struct Bucket {
    double sum = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };
  double bucket_s_ = 1.0;
  std::vector<Bucket> buckets_;
};

/// Log-bucketed histogram: bucket i spans [lo*growth^i, lo*growth^(i+1)),
/// with explicit underflow/overflow buckets, exact min/max/sum tracking, and
/// geometric interpolation for quantiles.
class Histogram {
 public:
  /// `lo` > 0 is the lower edge of the first regular bucket, `hi` the upper
  /// edge of the last, `growth` > 1 the bucket ratio. The default geometry
  /// resolves latencies from 10 us to ~100 s at ~19% relative resolution.
  /// (Non-explicit default ctor so structs can hold a Histogram member and
  /// still aggregate-initialize with {}.)
  Histogram() : Histogram(1e-2, 1e5, 1.1892071150027210667) {}
  explicit Histogram(double lo, double hi, double growth = 1.1892071150027210667);

  static Histogram FromSamples(const std::vector<double>& samples);

  void Add(double v);

  /// Folds `other` into this histogram. Both must share the same bucket
  /// geometry (lo/growth/bucket count) — checked. Exact min/max/sum/count
  /// merge exactly, so the merged sketch answers quantiles as if every
  /// sample had been Add()ed here directly.
  void MergeFrom(const Histogram& other);

  int64_t Count() const noexcept { return count_; }
  double MinValue() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double MaxValue() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double Mean() const noexcept { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Quantile estimate, p in [0,1]: geometric interpolation inside the
  /// containing bucket, clamped to the exact observed min/max.
  double Quantile(double p) const;

  int64_t NumBuckets() const noexcept { return static_cast<int64_t>(counts_.size()); }
  int64_t BucketCount(int64_t i) const { return counts_[static_cast<size_t>(i)]; }
  /// Lower edge of bucket i (0 for the underflow bucket).
  double BucketLowerEdge(int64_t i) const;

  /// Compact printable form (one line per non-empty bucket plus summary
  /// quantiles) — stable across runs with identical samples, so CI diffs it.
  std::string ToString(const std::string& label) const;

 private:
  /// Bucket index for value v: 0 = underflow, 1..n = regular, n+1 = overflow.
  int64_t IndexOf(double v) const;

  double lo_ = 0.0, growth_ = 2.0, log_growth_ = 0.0;
  int64_t regular_ = 0;  // Regular (non-under/overflow) bucket count.
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace flashinfer::obs
