#include "obs/query.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace flashinfer::obs {

namespace {

/// Slop for interval-containment checks: event timestamps are derived from
/// the same double-precision clock, so only representation error applies.
constexpr double kEpsUs = 1e-6;

}  // namespace

TraceQuery::TraceQuery(std::vector<TraceEvent> events) : events_(std::move(events)) {}

std::vector<RequestBreakdown> TraceQuery::PerRequest() const {
  std::map<int32_t, RequestBreakdown> rows;
  auto row = [&rows](int32_t req) -> RequestBreakdown& {
    auto [it, inserted] = rows.try_emplace(req);
    if (inserted) it->second.req = req;
    return it->second;
  };
  for (const TraceEvent& e : events_) {
    if (e.req < 0) continue;
    const double dur_ms = e.dur_us * 1e-3;
    switch (e.name) {
      case TraceName::kReqQueued: {
        RequestBreakdown& r = row(e.req);
        r.queued_ms += dur_ms;
        r.arrival_ms = e.ts_us * 1e-3;
        break;
      }
      case TraceName::kReqPrefill: row(e.req).prefill_ms += dur_ms; break;
      case TraceName::kReqDecode: row(e.req).decode_ms += dur_ms; break;
      case TraceName::kReqPreempted: row(e.req).preempted_ms += dur_ms; break;
      case TraceName::kReqSwapIn: row(e.req).swap_ms += dur_ms; break;
      case TraceName::kReqRecompute: row(e.req).recompute_ms += dur_ms; break;
      case TraceName::kReqMigrateIn: row(e.req).migrate_ms += dur_ms; break;
      case TraceName::kReqFinish: {
        RequestBreakdown& r = row(e.req);
        r.finish_ms = std::max(r.finish_ms, e.ts_us * 1e-3);
        break;
      }
      case TraceName::kReqReject: {
        RequestBreakdown& r = row(e.req);
        r.rejected = true;
        r.arrival_ms = e.ts_us * 1e-3;
        break;
      }
      default: break;
    }
  }
  std::vector<RequestBreakdown> out;
  out.reserve(rows.size());
  for (auto& [id, r] : rows) out.push_back(r);
  return out;
}

std::vector<TraceEvent> TraceQuery::UnexplainedItlStalls() const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.name != TraceName::kStep || e.c == 0) continue;
    const bool prefill_alone = e.a > 0 && e.b == 0;
    const bool swap = (e.flags & kStepFlagSwap) != 0;
    if (!prefill_alone && !swap) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::UnexplainedPreemptStalls() const {
  std::vector<TraceEvent> preempted_spans;
  for (const TraceEvent& e : events_) {
    if (e.name == TraceName::kReqPreempted) preempted_spans.push_back(e);
  }
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.name != TraceName::kStep || e.d == 0) continue;
    bool covered = false;
    for (const TraceEvent& p : preempted_spans) {
      if (p.ts_us <= e.ts_us + kEpsUs && p.ts_us + p.dur_us >= e.ts_us + e.dur_us - kEpsUs) {
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::UnexplainedMigrationWaits() const {
  std::vector<TraceEvent> copies;
  for (const TraceEvent& e : events_) {
    if (e.name == TraceName::kCopyMigrate) copies.push_back(e);
  }
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.name != TraceName::kReqMigrateIn) continue;
    bool covered = false;
    for (const TraceEvent& c : copies) {
      // The import wait ends when the link transfer lands; any overlap (or a
      // transfer that completed at/before the wait began — the link was free
      // and the wait collapsed to a step boundary) attributes it.
      if (c.req == e.req && c.ts_us <= e.ts_us + e.dur_us + kEpsUs) {
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(e);
  }
  return out;
}

int64_t TraceQuery::TotalItlStallSteps() const {
  int64_t total = 0;
  for (const TraceEvent& e : events_) {
    if (e.name == TraceName::kStep) total += e.c;
  }
  return total;
}

int64_t TraceQuery::TotalPreemptStallSteps() const {
  int64_t total = 0;
  for (const TraceEvent& e : events_) {
    if (e.name == TraceName::kStep) total += e.d;
  }
  return total;
}

int64_t TraceQuery::CountName(TraceName n) const {
  int64_t total = 0;
  for (const TraceEvent& e : events_) {
    if (e.name == n) ++total;
  }
  return total;
}

TimeSeries TraceQuery::CounterSeries(TraceName counter, double bucket_s) const {
  TimeSeries series(bucket_s);
  for (const TraceEvent& e : events_) {
    if (e.name == counter) series.Add(e.ts_us * 1e-6, e.v);
  }
  return series;
}

std::string TraceQuery::BreakdownTable(int64_t max_rows) const {
  const auto rows = PerRequest();
  std::string out =
      "  req    queue    prefill     decode  preempted    swap-in  recompute    migrate      total (ms)\n";
  char line[200];
  int64_t shown = 0;
  for (const RequestBreakdown& r : rows) {
    if (shown++ >= max_rows) {
      std::snprintf(line, sizeof(line), "  ... %lld more requests\n",
                    static_cast<long long>(rows.size()) - static_cast<long long>(max_rows));
      out += line;
      break;
    }
    if (r.rejected) {
      std::snprintf(line, sizeof(line), "  %-4d rejected\n", r.req);
      out += line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-4d %8.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", r.req,
                  r.queued_ms, r.prefill_ms, r.decode_ms, r.preempted_ms, r.swap_ms,
                  r.recompute_ms, r.migrate_ms, r.TotalMs());
    out += line;
  }
  return out;
}

}  // namespace flashinfer::obs
