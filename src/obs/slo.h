// Declarative latency SLOs evaluated as rolling error-budget burn rates.
//
// An SloSpec names a latency signal (TTFT or ITL), a per-sample threshold,
// an objective (the fraction of samples that must land under the threshold),
// and an optional (tenant, priority) class filter. The monitor classifies
// every observed sample as good/bad and tracks the bad fraction over two
// sliding windows of simulated time (multi-window burn-rate alerting): an
// alert fires only when BOTH the fast window (reacts quickly, noisy alone)
// and the slow window (confirms the burn is sustained) exceed their burn
// thresholds, where burn = (bad fraction) / (1 - objective) — burn 1.0 means
// the error budget is being spent exactly at the rate that exhausts it over
// the objective period; burn 10 means 10x too fast.
//
// Alerts are edge-triggered instants (kSloAlert / kSloRecover) emitted into
// the engine's TraceRecorder, so a violation lands on the Perfetto timeline
// next to the steps, evictions, and stalls that caused it.
//
// TelemetryConfig is the engine-facing knob bundle: the registry window
// geometry, the bounded-ITL switch, and the SLO spec list. It lives here
// (not in metrics.h) because it is the one struct EngineConfig embeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flashinfer::obs {

/// Which per-sample latency signal an SLO constrains.
enum class SloSignal : uint8_t { kTtft, kItl };

const char* SloSignalStr(SloSignal s);

/// One declarative SLO: "p(signal <= threshold_ms) >= objective" for the
/// matching (tenant, priority) class, alerting on multi-window burn rate.
struct SloSpec {
  std::string name;           // Display name ("chat_ttft_p99" ...).
  SloSignal signal = SloSignal::kTtft;
  double threshold_ms = 0.0;  // A sample is "good" iff value <= threshold.
  double objective = 0.99;    // Required good fraction, in (0, 1).

  /// Class filter: the spec observes only samples whose tenant/priority
  /// match. kAnyClass matches everything (note: tenant -1 — unassigned —
  /// is matched only by the wildcard).
  static constexpr int kAnyClass = -2;
  int tenant = kAnyClass;
  int priority = kAnyClass;

  /// Multi-window burn-rate alerting: fire when the bad-fraction burn over
  /// BOTH windows exceeds its threshold; recover when either drops below.
  double fast_window_s = 5.0;
  double slow_window_s = 30.0;
  double fast_burn = 10.0;
  double slow_burn = 5.0;

  bool Matches(int sample_tenant, int sample_priority) const noexcept {
    return (tenant == kAnyClass || tenant == sample_tenant) &&
           (priority == kAnyClass || priority == sample_priority);
  }
};

/// Evaluates a set of SloSpecs against the observed sample stream.
/// Observe() classifies (O(specs) per sample); Evaluate() advances the
/// alert state machine and emits trace instants; Status() snapshots
/// attainment + burn per spec for reporting.
class SloMonitor {
 public:
  /// `trace` may be null (no alert instants; state machine still runs).
  SloMonitor(std::vector<SloSpec> specs, TraceRecorder* trace);

  void Observe(SloSignal signal, int tenant, int priority, double value_ms, double t_s);

  /// Advances alerting at simulated time `t_s` (call once per engine step).
  void Evaluate(double t_s);

  struct SpecStatus {
    const SloSpec* spec = nullptr;
    int64_t good = 0;           // Cumulative good samples.
    int64_t bad = 0;            // Cumulative bad samples.
    double attainment = 1.0;    // good / (good + bad); 1.0 when no samples.
    double fast_burn = 0.0;     // Current fast-window burn rate.
    double slow_burn = 0.0;     // Current slow-window burn rate.
    bool firing = false;        // Alert currently active.
    int64_t alerts = 0;         // Edge-triggered alert count so far.
  };
  std::vector<SpecStatus> Status(double now_s) const;

  int64_t TotalAlerts() const noexcept;
  const std::vector<SloSpec>& specs() const noexcept { return specs_; }

 private:
  struct SpecState {
    WindowedSum fast_good, fast_bad, slow_good, slow_bad;
    int64_t good = 0, bad = 0;
    bool firing = false;
    int64_t alerts = 0;
  };
  static double Burn(double bad, double good, double objective);

  std::vector<SloSpec> specs_;
  std::vector<SpecState> states_;
  TraceRecorder* trace_ = nullptr;
};

/// Telemetry knob carried by EngineConfig. Off by default: a disabled plane
/// allocates nothing and changes no engine behavior (pinned by a test that
/// compares run metrics bit-for-bit against a telemetry-enabled run).
struct TelemetryConfig {
  bool enabled = false;
  /// Sliding-window geometry for every registry instance (simulated time).
  WindowConfig window;
  /// Route ServingMetrics ITL percentile/max queries through the bounded
  /// histogram sketch instead of the unbounded per-token vector.
  bool bounded_itl = false;
  /// Declarative SLOs evaluated each step (empty = no SLO monitoring).
  std::vector<SloSpec> slos;
};

}  // namespace flashinfer::obs
