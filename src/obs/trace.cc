#include "obs/trace.h"

#include "util/check.h"

namespace flashinfer::obs {

const char* TraceNameStr(TraceName n) {
  switch (n) {
    case TraceName::kStep: return "step";
    case TraceName::kPhaseDraft: return "draft";
    case TraceName::kPhaseAttn: return "attention";
    case TraceName::kPhaseGemm: return "gemm";
    case TraceName::kPhaseComm: return "comm";
    case TraceName::kPhaseSwap: return "swap";
    case TraceName::kPhaseHost: return "host";
    case TraceName::kReqQueued: return "queued";
    case TraceName::kReqPrefill: return "prefill";
    case TraceName::kReqDecode: return "decode";
    case TraceName::kReqPreempted: return "preempted";
    case TraceName::kReqSwapIn: return "swap_in_flight";
    case TraceName::kReqRecompute: return "recompute_restore";
    case TraceName::kReqMigrateIn: return "migrate_in_flight";
    case TraceName::kCopyD2H: return "copy_d2h";
    case TraceName::kCopyH2D: return "copy_h2d";
    case TraceName::kCopyMigrate: return "copy_migrate";
    case TraceName::kChunk: return "chunk";
    case TraceName::kReqAdmit: return "admit";
    case TraceName::kReqFirstToken: return "first_token";
    case TraceName::kReqFinish: return "finish";
    case TraceName::kReqReject: return "reject";
    case TraceName::kKvEvictSwap: return "kv_evict_swap";
    case TraceName::kKvEvictDrop: return "kv_evict_drop";
    case TraceName::kKvRestoreSwap: return "kv_restore_swap";
    case TraceName::kKvRestoreRecompute: return "kv_restore_recompute";
    case TraceName::kKvEncode: return "kv_encode";
    case TraceName::kKvDecode: return "kv_decode";
    case TraceName::kReqMigrateOut: return "migrate_out";
    case TraceName::kRouteDecision: return "route";
    case TraceName::kSloAlert: return "slo_alert";
    case TraceName::kSloRecover: return "slo_recover";
    case TraceName::kCtrKvDevice: return "kv_device_tokens";
    case TraceName::kCtrKvHost: return "kv_host_tokens";
    case TraceName::kCtrQueueDepth: return "queue_depth";
    case TraceName::kCtrRunning: return "running_branches";
    case TraceName::kCtrPreempted: return "preempted_branches";
    case TraceName::kCtrTokPerS: return "tokens_per_s";
    case TraceName::kCtrHostStoredBytes: return "kv_host_stored_bytes";
  }
  return "?";
}

TraceKind KindOf(TraceName n) noexcept {
  if (n <= TraceName::kCopyMigrate) return TraceKind::kSpan;
  if (n <= TraceName::kSloRecover) return TraceKind::kInstant;
  return TraceKind::kCounter;
}

TraceRecorder::TraceRecorder(int64_t capacity) : capacity_(capacity) {
  FI_CHECK_GT(capacity, 0);
  buf_.resize(static_cast<size_t>(capacity));
}

void TraceRecorder::Clear() noexcept {
  head_ = 0;
  recorded_ = 0;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(size()));
  if (recorded_ <= capacity_) {
    out.assign(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(recorded_));
  } else {
    // Wrapped: oldest surviving event sits at head_.
    out.assign(buf_.begin() + static_cast<std::ptrdiff_t>(head_), buf_.end());
    out.insert(out.end(), buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

}  // namespace flashinfer::obs
