#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace flashinfer::obs {

namespace {

using util::JsonEscape;
using util::JsonNum;

/// Appends the per-name payload fields as JSON object members (leading comma
/// included when anything is written). Keys mirror the conventions documented
/// in trace.h so the viewer shows meaningful arg names.
std::string ArgsFor(const TraceEvent& e) {
  std::string out;
  auto add = [&out](const char* key, double v) {
    out += out.empty() ? "" : ", ";
    out += "\"" + std::string(key) + "\": " + JsonNum(v);
  };
  switch (e.name) {
    case TraceName::kStep:
      add("prefill_tokens", static_cast<double>(e.a));
      add("decode_branches", static_cast<double>(e.b));
      add("stalled_branches", static_cast<double>(e.c));
      add("preempted_waiting", static_cast<double>(e.d));
      add("spec", (e.flags & kStepFlagSpec) != 0 ? 1 : 0);
      add("swap", (e.flags & kStepFlagSwap) != 0 ? 1 : 0);
      break;
    case TraceName::kChunk:
      add("tokens", static_cast<double>(e.a));
      add("completes", static_cast<double>(e.b));
      add("restore", static_cast<double>(e.c));
      break;
    case TraceName::kReqPrefill:
      add("computed_tokens", static_cast<double>(e.a));
      add("cached_tokens", static_cast<double>(e.b));
      add("chunks", static_cast<double>(e.c));
      break;
    case TraceName::kReqDecode:
    case TraceName::kReqSwapIn:
    case TraceName::kReqRecompute:
    case TraceName::kKvRestoreSwap:
    case TraceName::kKvRestoreRecompute:
      add("kv_len", static_cast<double>(e.a));
      break;
    case TraceName::kReqPreempted:
      add("kv_len", static_cast<double>(e.a));
      add("swapped", static_cast<double>(e.b));
      break;
    case TraceName::kReqAdmit:
      add("new_prompt_tokens", static_cast<double>(e.a));
      add("kv_need", static_cast<double>(e.b));
      break;
    case TraceName::kReqReject:
      add("kv_need", static_cast<double>(e.a));
      add("kv_token_budget", static_cast<double>(e.b));
      break;
    case TraceName::kKvEvictSwap:
    case TraceName::kKvEvictDrop:
      add("kv_len", static_cast<double>(e.a));
      add("pages", static_cast<double>(e.b));
      break;
    case TraceName::kKvEncode:
      add("logical_bytes", static_cast<double>(e.a));
      add("stored_bytes", static_cast<double>(e.b));
      break;
    case TraceName::kKvDecode:
      add("kv_len", static_cast<double>(e.a));
      add("decode_us", static_cast<double>(e.b));
      break;
    case TraceName::kCopyD2H:
    case TraceName::kCopyH2D:
      add("kv_len", static_cast<double>(e.a));
      add("pages", static_cast<double>(e.b));
      add("queue_delay_us", static_cast<double>(e.c));
      break;
    case TraceName::kCopyMigrate:
      add("kv_tokens", static_cast<double>(e.a));
      add("pages", static_cast<double>(e.b));
      add("queue_delay_us", static_cast<double>(e.c));
      break;
    case TraceName::kReqMigrateIn:
      add("kv_tokens", static_cast<double>(e.a));
      add("branches", static_cast<double>(e.b));
      break;
    case TraceName::kReqMigrateOut:
      add("kv_tokens", static_cast<double>(e.a));
      add("pages", static_cast<double>(e.b));
      add("branches", static_cast<double>(e.c));
      break;
    case TraceName::kRouteDecision:
      add("replica", static_cast<double>(e.a));
      add("matched_prefix_tokens", static_cast<double>(e.b));
      break;
    case TraceName::kSloAlert:
    case TraceName::kSloRecover:
      add("spec", static_cast<double>(e.a));
      add("fast_burn", e.v);
      break;
    default: break;
  }
  if (e.req >= 0) add("req", static_cast<double>(e.req));
  return out;
}

/// True for request-lifecycle events exported as legacy async ("b"/"e"/"n")
/// rows keyed by request id.
bool IsRequestScoped(TraceName n) {
  switch (n) {
    case TraceName::kReqQueued:
    case TraceName::kReqPrefill:
    case TraceName::kReqDecode:
    case TraceName::kReqPreempted:
    case TraceName::kReqSwapIn:
    case TraceName::kReqRecompute:
    case TraceName::kReqMigrateIn:
    case TraceName::kReqMigrateOut:
    case TraceName::kReqAdmit:
    case TraceName::kReqFirstToken:
    case TraceName::kReqFinish:
    case TraceName::kReqReject:
      return true;
    default:
      return false;
  }
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void Emit(const std::string& body) {
    os_ << (first_ ? "  {" : ",\n  {") << body << "}";
    first_ = false;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string Common(const char* ph, const TraceEvent& e, int pid, int tid) {
  std::string s = "\"ph\": \"";
  s += ph;
  s += "\", \"name\": \"" + std::string(TraceNameStr(e.name)) + "\"";
  s += ", \"pid\": " + std::to_string(pid) + ", \"tid\": " + std::to_string(tid);
  s += ", \"ts\": " + JsonNum(e.ts_us);
  return s;
}

}  // namespace

void WritePerfettoJson(std::ostream& os, const std::vector<TraceTrack>& tracks) {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  EventWriter w(os);
  for (size_t t = 0; t < tracks.size(); ++t) {
    const int pid = static_cast<int>(t);
    w.Emit("\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": 0, \"args\": {\"name\": \"" + JsonEscape(tracks[t].name) + "\"}");
    w.Emit("\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": 0, \"args\": {\"name\": \"steps\"}");
    w.Emit("\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": 1, \"args\": {\"name\": \"kv\"}");
    w.Emit("\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": 2, \"args\": {\"name\": \"copy\"}");
    for (const TraceEvent& e : tracks[t].events) {
      const std::string args = ArgsFor(e);
      const std::string args_obj = ", \"args\": {" + args + "}";
      if (IsRequestScoped(e.name)) {
        // Legacy async events: one row per request id under the process.
        const std::string id = ", \"cat\": \"request\", \"id\": " + std::to_string(e.req);
        if (KindOf(e.name) == TraceKind::kSpan) {
          w.Emit(Common("b", e, pid, 0) + id + args_obj);
          TraceEvent end = e;
          end.ts_us = e.ts_us + e.dur_us;
          w.Emit(Common("e", end, pid, 0) + id);
        } else {
          w.Emit(Common("n", e, pid, 0) + id + args_obj);
        }
        continue;
      }
      switch (KindOf(e.name)) {
        case TraceKind::kSpan: {
          // Copy-stream DMA spans get their own thread row so overlap with
          // compute steps is visible (step spans never overlap each other).
          const bool copy_track = e.name == TraceName::kCopyD2H ||
                                  e.name == TraceName::kCopyH2D ||
                                  e.name == TraceName::kCopyMigrate;
          w.Emit(Common("X", e, pid, copy_track ? 2 : 0) +
                 ", \"dur\": " + JsonNum(e.dur_us) + args_obj);
          break;
        }
        case TraceKind::kInstant: {
          const bool kv_track = e.name == TraceName::kKvEvictSwap ||
                                e.name == TraceName::kKvEvictDrop ||
                                e.name == TraceName::kKvRestoreSwap ||
                                e.name == TraceName::kKvRestoreRecompute ||
                                e.name == TraceName::kKvEncode ||
                                e.name == TraceName::kKvDecode;
          w.Emit(Common("i", e, pid, kv_track ? 1 : 0) + ", \"s\": \"t\"" + args_obj);
          break;
        }
        case TraceKind::kCounter:
          w.Emit(Common("C", e, pid, 0) + ", \"args\": {\"value\": " + JsonNum(e.v) + "}");
          break;
      }
    }
  }
  os << "\n]\n}\n";
}

void WriteJsonl(std::ostream& os, const std::vector<TraceTrack>& tracks) {
  for (const auto& track : tracks) {
    for (const TraceEvent& e : track.events) {
      const char* kind = KindOf(e.name) == TraceKind::kSpan      ? "span"
                         : KindOf(e.name) == TraceKind::kInstant ? "instant"
                                                                 : "counter";
      os << "{\"track\": \"" << JsonEscape(track.name) << "\", \"name\": \""
         << TraceNameStr(e.name) << "\", \"kind\": \"" << kind
         << "\", \"ts_us\": " << JsonNum(e.ts_us) << ", \"dur_us\": " << JsonNum(e.dur_us)
         << ", \"req\": " << e.req << ", \"flags\": " << e.flags << ", \"a\": " << e.a
         << ", \"b\": " << e.b << ", \"c\": " << e.c << ", \"d\": " << e.d
         << ", \"v\": " << JsonNum(e.v) << "}\n";
    }
  }
}

namespace {

bool WriteFile(const std::string& path, const std::vector<TraceTrack>& tracks,
               void (*writer)(std::ostream&, const std::vector<TraceTrack>&)) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  writer(f, tracks);
  return f.good();
}

}  // namespace

bool WritePerfettoFile(const std::string& path, const std::vector<TraceTrack>& tracks) {
  return WriteFile(path, tracks, &WritePerfettoJson);
}

bool WriteJsonlFile(const std::string& path, const std::vector<TraceTrack>& tracks) {
  return WriteFile(path, tracks, &WriteJsonl);
}

}  // namespace flashinfer::obs
