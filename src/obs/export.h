// Trace exporters: Chrome/Perfetto trace-event JSON and a compact JSONL dump.
//
// Track layout in the Perfetto export (open the file in https://ui.perfetto.dev
// or chrome://tracing):
//
//   pid = track index; each TraceTrack becomes one "process" named after the
//   track ("replica 0", "router", ...).
//     tid 0 "steps"   — step slices with their phase slices (attention/gemm/
//                       comm/draft/swap/host) nested inside, plus chunk
//                       instants.
//     tid 1 "kv"      — KV evict/restore instants.
//     async "request" — one row per request id (legacy async b/e events):
//                       the queued → prefill → decode / preempted /
//                       swap-in-flight phases as stacked spans, with
//                       admit/first-token/finish/reject instants.
//     counters        — kv_device_tokens, kv_host_tokens, queue_depth,
//                       running_branches, preempted_branches, tokens_per_s
//                       (one counter track each, per process).
//
// All timestamps are simulated microseconds (the engine's clock), which the
// trace viewers display as-is.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace flashinfer::obs {

/// One exported track: a name plus its events (typically one serving replica,
/// or the cluster router).
struct TraceTrack {
  std::string name;
  std::vector<TraceEvent> events;
};

/// Writes Chrome trace-event JSON ({"traceEvents": [...]}) for the tracks.
void WritePerfettoJson(std::ostream& os, const std::vector<TraceTrack>& tracks);

/// Writes one compact JSON object per line per event (machine-diffable dump;
/// the soak harness's failure artifact format next to the Perfetto file).
void WriteJsonl(std::ostream& os, const std::vector<TraceTrack>& tracks);

/// File wrappers; return false (with a stderr message) on I/O error.
bool WritePerfettoFile(const std::string& path, const std::vector<TraceTrack>& tracks);
bool WriteJsonlFile(const std::string& path, const std::vector<TraceTrack>& tracks);

}  // namespace flashinfer::obs
