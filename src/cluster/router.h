// Request routers for the data-parallel cluster (src/cluster/cluster.h).
//
// A router picks which replica serves each arriving request, observing only
// per-replica load signals and a router-side mirror of each replica's prefix
// cache (a RadixTree over prompt token ids — the same structure SGLang's
// RadixAttention keeps per engine, lifted to the router as in prefix-aware
// cluster schedulers).
//
// The affinity / imbalance tradeoff: routing every request to the replica
// with the longest cached prefix maximizes KV reuse (prefill recomputes only
// the uncached suffix), but tenant popularity is Zipf-skewed, so pure
// affinity piles the hottest system prompts onto a few replicas and P99 TTFT
// collapses while other replicas idle. PrefixAffinity therefore carries a
// load-imbalance cap: when the affinity target's queued+running tokens
// exceed `imbalance_cap` times the cluster mean (with an absolute floor so
// near-idle clusters never trigger it), the request falls back to the
// least-loaded replica. The fallback deliberately *replicates* a hot prefix
// onto a second replica — its next insertion seeds that replica's cache, so
// popular tenants end up cached on as many replicas as their traffic share
// warrants, which is exactly the steady state a static prefix-sharding
// scheme cannot reach.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kvcache/radix.h"
#include "serving/workload.h"

namespace flashinfer::cluster {

enum class RouterPolicy {
  kRoundRobin,
  /// Fewest queued + running tokens.
  kLeastLoaded,
  /// Longest router-side cached prefix, falling back to least-loaded when
  /// the affinity target is overloaded.
  kPrefixAffinity,
};

const char* RouterPolicyName(RouterPolicy policy);

/// Router-visible snapshot of one replica.
struct ReplicaView {
  int replica = 0;
  /// Prompt + output tokens admitted but not yet prefilled.
  int64_t queued_tokens = 0;
  /// Output tokens still to decode.
  int64_t running_tokens = 0;
  /// KV tokens charged against the replica's device budget / its capacity.
  /// Routers use the headroom to steer new work away from KV-pressured
  /// replicas (which would otherwise queue, preempt, or reject it).
  int64_t kv_tokens_in_use = 0;
  int64_t kv_token_budget = 0;
  /// Router-side mirror of the replica's prefix cache (may be null). Routers
  /// only peek (PeekPrefixTokens); the cluster driver performs the real
  /// LRU-bumping MatchPrefix on the replica that wins the request.
  const RadixTree* prefix_cache = nullptr;

  int64_t LoadTokens() const noexcept { return queued_tokens + running_tokens; }
  /// Free device-KV tokens (0 when the budget is unknown or exhausted).
  int64_t KvHeadroomTokens() const noexcept {
    return kv_token_budget > kv_tokens_in_use ? kv_token_budget - kv_tokens_in_use
                                              : 0;
  }
};

struct RouterStats {
  int64_t routed = 0;           // Total routing decisions.
  int64_t affinity_hits = 0;    // Routed to a replica with a matching prefix.
  int64_t load_fallbacks = 0;   // Affinity target rejected by the imbalance cap.
  int64_t pressure_fallbacks = 0;  // Target rejected for lacking KV headroom.
};

class Router {
 public:
  virtual ~Router() = default;

  /// Picks the replica for `r`; `replicas` is non-empty.
  virtual int Route(const serving::Request& r, const std::vector<ReplicaView>& replicas) = 0;

  const RouterStats& Stats() const noexcept { return stats_; }

 protected:
  RouterStats stats_;
};

/// Factory. `imbalance_cap` and `imbalance_floor_tokens` only affect
/// kPrefixAffinity: the fallback fires when the affinity target's load
/// exceeds cap * max(mean cluster load, floor).
std::unique_ptr<Router> CreateRouter(RouterPolicy policy, double imbalance_cap = 1.5,
                                     int64_t imbalance_floor_tokens = 2048);

/// Migration-target selection for the disaggregated decode pool: the replica
/// with the most free device KV among those with headroom for `need`, -1
/// when none fits. Max-headroom rather than least-loaded because the decode
/// pool's binding resource is resident KV — a migrated unit pins its whole
/// reservation immediately, while queued-token load says little about
/// whether the unit's pages fit.
int PickByKvHeadroom(const std::vector<ReplicaView>& replicas, int64_t need);

}  // namespace flashinfer::cluster
