#include "cluster/cluster.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace flashinfer::cluster {

using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

struct ClusterEngine::Replica {
  explicit Replica(const serving::EngineConfig& cfg)
      : engine(cfg), prefix_cache(cfg.page_size) {}

  ServingEngine engine;
  RadixTree prefix_cache;  // Router-side mirror keyed by prompt token ids.
  int64_t next_page = 0;   // Synthetic page ids for the mirror.
  int64_t requests = 0;
};

ClusterEngine::ClusterEngine(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  FI_CHECK_GE(cfg_.num_replicas, 1);
  FI_CHECK_GE(cfg_.step_threads, 0);
  if (cfg_.step_threads > 1) pool_ = std::make_unique<ThreadPool>(cfg_.step_threads);
}

ClusterEngine::~ClusterEngine() = default;

void ClusterEngine::ForEachReplica(const std::function<void(size_t)>& fn) {
  auto body = [&fn](int64_t i) { fn(static_cast<size_t>(i)); };
  const int64_t n = static_cast<int64_t>(replicas_.size());
  if (cfg_.step_threads == 1) {
    // Fully serial reference driver: no pool involved at all.
    for (int64_t i = 0; i < n; ++i) body(i);
  } else if (pool_) {
    pool_->ParallelFor(n, body);
  } else {
    ThreadPool::Global().ParallelFor(n, body);
  }
}

ClusterMetrics ClusterEngine::Run(const std::vector<Request>& workload) {
  // Full reset: fresh router stats and cold prefix-cache mirrors, so
  // back-to-back Run() calls on one ClusterEngine are independent.
  router_ = CreateRouter(cfg_.policy, cfg_.imbalance_cap, cfg_.imbalance_floor_tokens);
  replicas_.clear();
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    replicas_.push_back(std::make_unique<Replica>(cfg_.engine));
  }

  std::vector<Request> sorted(workload);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });

  const int64_t cache_pages =
      cfg_.prefix_cache_pages > 0
          ? cfg_.prefix_cache_pages
          : replicas_.empty() ? 0
                              : replicas_[0]->engine.KvTokenBudget() / cfg_.engine.page_size;

  int64_t matched_prompt_tokens = 0;
  int64_t total_prompt_tokens = 0;
  const bool tracing = cfg_.engine.trace.enabled;
  std::vector<obs::TraceEvent> router_events;

  for (const Request& r : sorted) {
    // Advance every replica to this arrival: each executes the steps it
    // would have started by now, so the router sees live load. The fan-out
    // runs on the configured pool; its barrier is the router's sync point.
    ForEachReplica(
        [this, &r](size_t i) { replicas_[i]->engine.StepTo(r.arrival_s); });

    std::vector<ReplicaView> views;
    views.reserve(replicas_.size());
    for (size_t i = 0; i < replicas_.size(); ++i) {
      ReplicaView v;
      v.replica = static_cast<int>(i);
      v.queued_tokens = replicas_[i]->engine.QueuedTokens();
      v.running_tokens = replicas_[i]->engine.RunningTokens();
      v.kv_tokens_in_use = replicas_[i]->engine.KvTokensInUse();
      v.kv_token_budget = replicas_[i]->engine.KvTokenBudget();
      v.prefix_cache = &replicas_[i]->prefix_cache;
      views.push_back(v);
    }
    const int target = router_->Route(r, views);
    FI_CHECK_GE(target, 0);
    FI_CHECK_LT(target, static_cast<int>(replicas_.size()));
    Replica& rep = *replicas_[static_cast<size_t>(target)];

    Request routed = r;
    if (!routed.prompt_tokens.empty()) {
      auto match = rep.prefix_cache.MatchPrefix(routed.prompt_tokens);
      routed.cached_prefix_len = match.matched_tokens;
      matched_prompt_tokens += match.matched_tokens;
      total_prompt_tokens += routed.input_len;

      // Mirror the prompt into the replica's cache (synthetic page ids; the
      // tree only adopts pages beyond the already-cached path).
      const int64_t full_pages =
          static_cast<int64_t>(routed.prompt_tokens.size()) / cfg_.engine.page_size;
      std::vector<int64_t> pages(static_cast<size_t>(full_pages));
      std::iota(pages.begin(), pages.end(), rep.next_page);
      rep.next_page += full_pages;
      rep.prefix_cache.Insert(routed.prompt_tokens, pages);
      if (cache_pages > 0 && rep.prefix_cache.TotalCachedPages() > cache_pages) {
        rep.prefix_cache.EvictLru(rep.prefix_cache.TotalCachedPages() - cache_pages);
      }
    }
    if (tracing) {
      obs::TraceEvent e;
      e.ts_us = r.arrival_s * 1e6;
      e.name = obs::TraceName::kRouteDecision;
      e.req = r.id;
      e.a = target;
      e.b = routed.cached_prefix_len;
      router_events.push_back(e);
    }
    rep.engine.Admit(routed);
    ++rep.requests;
  }

  ForEachReplica([this](size_t i) { replicas_[i]->engine.Drain(); });

  // --- Merged telemetry: every replica's registry under replica="i". -------
  telemetry_.reset();
  if (cfg_.engine.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::MetricsRegistry>(cfg_.engine.telemetry.window);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      telemetry_->MergeFrom(*replicas_[i]->engine.Telemetry(), "replica",
                            std::to_string(i));
    }
  }

  // --- Merged trace: one track per replica plus the router's decisions. ----
  last_trace_.clear();
  if (tracing) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      last_trace_.push_back(
          {"replica " + std::to_string(i), replicas_[i]->engine.TraceEvents()});
    }
    last_trace_.push_back({"router", std::move(router_events)});
  }

  // --- Aggregate ------------------------------------------------------------
  ClusterMetrics out;
  out.router = router_->Stats();
  std::vector<double> work_tokens;
  for (auto& rep : replicas_) {
    const ServingMetrics& m = rep->engine.Metrics();
    out.per_replica.push_back(m);
    out.replica_requests.push_back(rep->requests);
    out.makespan_s = std::max(out.makespan_s, m.makespan_s);
    work_tokens.push_back(
        static_cast<double>(m.total_prefill_tokens + m.total_output_tokens));

    auto& agg = out.aggregate;
    agg.ttft_ms.insert(agg.ttft_ms.end(), m.ttft_ms.begin(), m.ttft_ms.end());
    agg.ttft_priority.insert(agg.ttft_priority.end(), m.ttft_priority.begin(),
                             m.ttft_priority.end());
    agg.itl_ms.insert(agg.itl_ms.end(), m.itl_ms.begin(), m.itl_ms.end());
    // Bounded-ITL replicas carry their distribution in the sketch; merging
    // it (and propagating the flag) keeps aggregate percentile queries
    // working when the per-token vectors are empty.
    agg.itl_sketch.MergeFrom(m.itl_sketch);
    agg.bounded_itl = agg.bounded_itl || m.bounded_itl;
    agg.total_output_tokens += m.total_output_tokens;
    agg.total_attention_ms += m.total_attention_ms;
    agg.total_gemm_ms += m.total_gemm_ms;
    agg.total_host_ms += m.total_host_ms;
    agg.total_comm_ms += m.total_comm_ms;
    agg.num_steps += m.num_steps;
    agg.total_prefill_tokens += m.total_prefill_tokens;
    agg.cached_prefix_tokens += m.cached_prefix_tokens;
    agg.num_idle_skips += m.num_idle_skips;
    agg.total_idle_s += m.total_idle_s;
    agg.mixed_steps += m.mixed_steps;
    agg.prefill_only_steps += m.prefill_only_steps;
    agg.decode_only_steps += m.decode_only_steps;
    agg.prefill_chunks += m.prefill_chunks;
    agg.chunked_requests += m.chunked_requests;
    agg.itl_stall_steps += m.itl_stall_steps;
    agg.steps_with_stalls += m.steps_with_stalls;
    agg.branch_stalls.insert(agg.branch_stalls.end(), m.branch_stalls.begin(),
                             m.branch_stalls.end());
    agg.num_preemptions += m.num_preemptions;
    agg.rejected_requests += m.rejected_requests;
    agg.evicted_pages += m.evicted_pages;
    agg.restored_pages += m.restored_pages;
    agg.total_swap_ms += m.total_swap_ms;
    agg.swap_hidden_ms += m.swap_hidden_ms;
    agg.swap_stall_ms += m.swap_stall_ms;
    agg.recompute_tokens += m.recompute_tokens;
    agg.num_swap_restores += m.num_swap_restores;
    agg.num_recompute_restores += m.num_recompute_restores;
    agg.preempt_stall_steps += m.preempt_stall_steps;
    agg.spec_steps += m.spec_steps;
    agg.spec_committed_tokens += m.spec_committed_tokens;
    agg.total_draft_ms += m.total_draft_ms;
    if (agg.accepted_len_hist.size() < m.accepted_len_hist.size()) {
      agg.accepted_len_hist.resize(m.accepted_len_hist.size(), 0);
    }
    for (size_t k = 0; k < m.accepted_len_hist.size(); ++k) {
      agg.accepted_len_hist[k] += m.accepted_len_hist[k];
    }
  }
  out.aggregate.makespan_s = out.makespan_s;

  for (const auto& m : out.per_replica) {
    out.replica_utilization.push_back(
        out.makespan_s > 0.0 ? m.BusyMs() * 1e-3 / out.makespan_s : 0.0);
  }
  const double mean_work =
      std::accumulate(work_tokens.begin(), work_tokens.end(), 0.0) /
      static_cast<double>(work_tokens.size());
  const double max_work = *std::max_element(work_tokens.begin(), work_tokens.end());
  out.load_imbalance = mean_work > 0.0 ? max_work / mean_work : 1.0;
  out.prefix_hit_rate =
      total_prompt_tokens > 0
          ? static_cast<double>(matched_prompt_tokens) / static_cast<double>(total_prompt_tokens)
          : 0.0;
  return out;
}

}  // namespace flashinfer::cluster
