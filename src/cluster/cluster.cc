#include "cluster/cluster.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace flashinfer::cluster {

using serving::Request;
using serving::ServingEngine;
using serving::ServingMetrics;

namespace {

/// Merges one replica's metrics into a running aggregate: sample vectors
/// concatenate, counters and time totals sum, the ITL sketch merges. The
/// caller owns makespan (max over replicas, since replicas run concurrently).
void MergeInto(ServingMetrics& agg, const ServingMetrics& m) {
  agg.ttft_ms.insert(agg.ttft_ms.end(), m.ttft_ms.begin(), m.ttft_ms.end());
  agg.ttft_priority.insert(agg.ttft_priority.end(), m.ttft_priority.begin(),
                           m.ttft_priority.end());
  agg.itl_ms.insert(agg.itl_ms.end(), m.itl_ms.begin(), m.itl_ms.end());
  // Bounded-ITL replicas carry their distribution in the sketch; merging
  // it (and propagating the flag) keeps aggregate percentile queries
  // working when the per-token vectors are empty.
  agg.itl_sketch.MergeFrom(m.itl_sketch);
  agg.bounded_itl = agg.bounded_itl || m.bounded_itl;
  agg.total_output_tokens += m.total_output_tokens;
  agg.total_attention_ms += m.total_attention_ms;
  agg.total_gemm_ms += m.total_gemm_ms;
  agg.total_host_ms += m.total_host_ms;
  agg.total_comm_ms += m.total_comm_ms;
  agg.num_steps += m.num_steps;
  agg.total_prefill_tokens += m.total_prefill_tokens;
  agg.cached_prefix_tokens += m.cached_prefix_tokens;
  agg.num_idle_skips += m.num_idle_skips;
  agg.total_idle_s += m.total_idle_s;
  agg.mixed_steps += m.mixed_steps;
  agg.prefill_only_steps += m.prefill_only_steps;
  agg.decode_only_steps += m.decode_only_steps;
  agg.prefill_chunks += m.prefill_chunks;
  agg.chunked_requests += m.chunked_requests;
  agg.itl_stall_steps += m.itl_stall_steps;
  agg.steps_with_stalls += m.steps_with_stalls;
  agg.branch_stalls.insert(agg.branch_stalls.end(), m.branch_stalls.begin(),
                           m.branch_stalls.end());
  agg.num_preemptions += m.num_preemptions;
  agg.rejected_requests += m.rejected_requests;
  agg.evicted_pages += m.evicted_pages;
  agg.restored_pages += m.restored_pages;
  agg.total_swap_ms += m.total_swap_ms;
  agg.swap_hidden_ms += m.swap_hidden_ms;
  agg.swap_stall_ms += m.swap_stall_ms;
  agg.recompute_tokens += m.recompute_tokens;
  agg.num_swap_restores += m.num_swap_restores;
  agg.num_recompute_restores += m.num_recompute_restores;
  agg.preempt_stall_steps += m.preempt_stall_steps;
  agg.evicted_logical_bytes += m.evicted_logical_bytes;
  agg.evicted_stored_bytes += m.evicted_stored_bytes;
  agg.codec_encode_ms += m.codec_encode_ms;
  agg.codec_decode_ms += m.codec_decode_ms;
  agg.quant_mse_sum += m.quant_mse_sum;
  agg.quant_mse_pages += m.quant_mse_pages;
  agg.spec_steps += m.spec_steps;
  agg.spec_committed_tokens += m.spec_committed_tokens;
  agg.total_draft_ms += m.total_draft_ms;
  if (agg.accepted_len_hist.size() < m.accepted_len_hist.size()) {
    agg.accepted_len_hist.resize(m.accepted_len_hist.size(), 0);
  }
  for (size_t k = 0; k < m.accepted_len_hist.size(); ++k) {
    agg.accepted_len_hist[k] += m.accepted_len_hist[k];
  }
  agg.num_migrations_out += m.num_migrations_out;
  agg.num_migrations_in += m.num_migrations_in;
  agg.num_migrations_retained += m.num_migrations_retained;
  agg.migrated_kv_tokens += m.migrated_kv_tokens;
  agg.total_migration_ms += m.total_migration_ms;
  agg.migration_hidden_ms += m.migration_hidden_ms;
  agg.migration_stall_ms += m.migration_stall_ms;
}

}  // namespace

struct ClusterEngine::Replica {
  explicit Replica(const serving::EngineConfig& cfg)
      : engine(cfg), prefix_cache(cfg.page_size) {}

  ServingEngine engine;
  RadixTree prefix_cache;  // Router-side mirror keyed by prompt token ids.
  int64_t next_page = 0;   // Synthetic page ids for the mirror.
  int64_t requests = 0;
};

ClusterEngine::ClusterEngine(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  FI_CHECK_GE(cfg_.num_replicas, 1);
  FI_CHECK_GE(cfg_.step_threads, 0);
  if (cfg_.disaggregated) {
    // At least one replica in each pool, and a link with real bandwidth.
    FI_CHECK_GE(cfg_.prefill_replicas, 1);
    FI_CHECK_LT(cfg_.prefill_replicas, cfg_.num_replicas);
    FI_CHECK_GT(cfg_.migration_gbps, 0.0);
  }
  if (cfg_.step_threads > 1) pool_ = std::make_unique<ThreadPool>(cfg_.step_threads);
}

ClusterEngine::~ClusterEngine() = default;

void ClusterEngine::ForEachReplica(const std::function<void(size_t)>& fn) {
  auto body = [&fn](int64_t i) { fn(static_cast<size_t>(i)); };
  const int64_t n = static_cast<int64_t>(replicas_.size());
  if (cfg_.step_threads == 1) {
    // Fully serial reference driver: no pool involved at all.
    for (int64_t i = 0; i < n; ++i) body(i);
  } else if (pool_) {
    pool_->ParallelFor(n, body);
  } else {
    ThreadPool::Global().ParallelFor(n, body);
  }
}

void ClusterEngine::ProcessMigrations() {
  const size_t prefill_n = static_cast<size_t>(cfg_.prefill_replicas);
  const size_t decode_n = replicas_.size() - prefill_n;
  const double kv_bytes_per_token =
      cfg_.engine.model.KvBytesPerToken(cfg_.engine.backend.kv_dtype);
  for (size_t src = 0; src < prefill_n; ++src) {
    ServingEngine& se = replicas_[src]->engine;
    if (se.MigratableUnitCount() == 0) continue;
    for (const serving::MigrationUnit& u : se.MigratableUnits()) {
      // Destination candidates: decode replicas that can take the unit's
      // full reservation right now. CanAcceptMigration is the ground truth;
      // PickByKvHeadroom then prefers the emptiest device.
      std::vector<ReplicaView> dviews;
      for (size_t d = prefill_n; d < replicas_.size(); ++d) {
        const ServingEngine& de = replicas_[d]->engine;
        if (!de.CanAcceptMigration(u)) continue;
        ReplicaView v;
        v.replica = static_cast<int>(d);
        v.queued_tokens = de.QueuedTokens();
        v.running_tokens = de.RunningTokens();
        v.kv_tokens_in_use = de.KvTokensInUse();
        v.kv_token_budget = de.KvTokenBudget();
        dviews.push_back(v);
      }
      const int dst = dviews.empty() ? -1 : PickByKvHeadroom(dviews, u.kv_charge);
      if (dst < 0) {
        // No decode replica fits: the unit decodes where it prefilled.
        se.RetainMigratable(u.unit_id);
        ++migrations_retained_;
        continue;
      }
      // Transfer priced like the swap path (latency + per-page scatter
      // overhead + bytes over the link), issued at the unit's export time so
      // the pair link's FIFO backlog is measured from when the KV was ready,
      // not from when the driver got around to processing it.
      const double t_us =
          cfg_.migration_latency_us +
          static_cast<double>(u.pages) * cfg_.migration_page_overhead_us +
          static_cast<double>(u.kv_tokens) * kv_bytes_per_token /
              (cfg_.migration_gbps * 1e3);
      gpusim::CopyStream& link =
          pair_streams_[src * decode_n + (static_cast<size_t>(dst) - prefill_n)];
      const gpusim::CopyStream::Transfer xfer = link.Enqueue(u.export_s, t_us);
      const serving::MigrationUnit m = se.ExtractMigratable(u.unit_id);
      replicas_[static_cast<size_t>(dst)]->engine.AdmitMigratedUnit(m, xfer);
      ++migrations_;
    }
  }
}

ClusterMetrics ClusterEngine::Run(const std::vector<Request>& workload) {
  // Full reset: fresh router stats and cold prefix-cache mirrors, so
  // back-to-back Run() calls on one ClusterEngine are independent.
  router_ = CreateRouter(cfg_.policy, cfg_.imbalance_cap, cfg_.imbalance_floor_tokens);
  replicas_.clear();
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    serving::EngineConfig ecfg = cfg_.engine;
    if (cfg_.disaggregated && i < cfg_.prefill_replicas) {
      ecfg.export_at_first_token = true;
    }
    replicas_.push_back(std::make_unique<Replica>(ecfg));
  }
  // Routing pool: all replicas in unified mode, the prefill pool in
  // disaggregated mode (decode replicas never see raw prompts).
  const size_t prefill_n =
      cfg_.disaggregated ? static_cast<size_t>(cfg_.prefill_replicas) : replicas_.size();
  migrations_ = 0;
  migrations_retained_ = 0;
  pair_streams_.clear();
  if (cfg_.disaggregated) {
    pair_streams_.resize(prefill_n * (replicas_.size() - prefill_n));
  }

  std::vector<Request> sorted(workload);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });

  const int64_t cache_pages =
      cfg_.prefix_cache_pages > 0
          ? cfg_.prefix_cache_pages
          : replicas_.empty() ? 0
                              : replicas_[0]->engine.KvTokenBudget() / cfg_.engine.page_size;

  int64_t matched_prompt_tokens = 0;
  int64_t total_prompt_tokens = 0;
  const bool tracing = cfg_.engine.trace.enabled;
  std::vector<obs::TraceEvent> router_events;

  // Routes `r` to one of the first `prefill_n` replicas, applies the
  // prefix-cache mirror, and admits. Caller has already advanced every
  // replica to r.arrival_s, so the views are live load.
  auto route_and_admit = [&](const Request& r) {
    std::vector<ReplicaView> views;
    views.reserve(prefill_n);
    for (size_t i = 0; i < prefill_n; ++i) {
      ReplicaView v;
      v.replica = static_cast<int>(i);
      v.queued_tokens = replicas_[i]->engine.QueuedTokens();
      v.running_tokens = replicas_[i]->engine.RunningTokens();
      v.kv_tokens_in_use = replicas_[i]->engine.KvTokensInUse();
      v.kv_token_budget = replicas_[i]->engine.KvTokenBudget();
      v.prefix_cache = &replicas_[i]->prefix_cache;
      views.push_back(v);
    }
    const int target = router_->Route(r, views);
    FI_CHECK_GE(target, 0);
    FI_CHECK_LT(target, static_cast<int>(prefill_n));
    Replica& rep = *replicas_[static_cast<size_t>(target)];

    Request routed = r;
    if (!routed.prompt_tokens.empty()) {
      auto match = rep.prefix_cache.MatchPrefix(routed.prompt_tokens);
      routed.cached_prefix_len = match.matched_tokens;
      matched_prompt_tokens += match.matched_tokens;
      total_prompt_tokens += routed.input_len;

      // Mirror the prompt into the replica's cache (synthetic page ids; the
      // tree only adopts pages beyond the already-cached path).
      const int64_t full_pages =
          static_cast<int64_t>(routed.prompt_tokens.size()) / cfg_.engine.page_size;
      std::vector<int64_t> pages(static_cast<size_t>(full_pages));
      std::iota(pages.begin(), pages.end(), rep.next_page);
      rep.next_page += full_pages;
      rep.prefix_cache.Insert(routed.prompt_tokens, pages);
      if (cache_pages > 0 && rep.prefix_cache.TotalCachedPages() > cache_pages) {
        rep.prefix_cache.EvictLru(rep.prefix_cache.TotalCachedPages() - cache_pages);
      }
    }
    if (tracing) {
      obs::TraceEvent e;
      e.ts_us = r.arrival_s * 1e6;
      e.name = obs::TraceName::kRouteDecision;
      e.req = r.id;
      e.a = target;
      e.b = routed.cached_prefix_len;
      router_events.push_back(e);
    }
    rep.engine.Admit(routed);
    ++rep.requests;
  };

  if (!cfg_.disaggregated) {
    for (const Request& r : sorted) {
      // Advance every replica to this arrival: each executes the steps it
      // would have started by now, so the router sees live load. The fan-out
      // runs on the configured pool; its barrier is the router's sync point.
      ForEachReplica(
          [this, &r](size_t i) { replicas_[i]->engine.StepTo(r.arrival_s); });
      route_and_admit(r);
    }
    ForEachReplica([this](size_t i) { replicas_[i]->engine.Drain(); });
  } else {
    // Disaggregated driver. The prefill pool must be stepped event-by-event:
    // each fine step can park exportable units, and processing them while
    // the destination clocks still trail the transfer end keeps the decode
    // side's ready_s gating exact. The decode pool needs no fine stepping —
    // its admissions carry absolute ready times, so batch-advancing it at
    // arrival barriers reproduces the same step sequence. ProcessMigrations
    // always empties the exportable pools (extract or retain), so every
    // round makes progress and no engine is left blocked on the driver.
    const double inf = std::numeric_limits<double>::infinity();
    size_t k = 0;
    while (true) {
      const double t_arrival = k < sorted.size() ? sorted[k].arrival_s : inf;
      while (true) {
        ProcessMigrations();
        double t_prefill = inf;
        for (size_t i = 0; i < prefill_n; ++i) {
          t_prefill = std::min(t_prefill, replicas_[i]->engine.NextEventTime());
        }
        if (t_prefill == inf || t_prefill > t_arrival) break;
        ForEachReplica([this, prefill_n, t_prefill](size_t i) {
          if (i < prefill_n) replicas_[i]->engine.StepTo(t_prefill);
        });
      }
      if (k >= sorted.size()) break;
      const double t = t_arrival;
      ForEachReplica([this, t](size_t i) { replicas_[i]->engine.StepTo(t); });
      route_and_admit(sorted[k]);
      ++k;
    }
    // The prefill pool is fully drained (incl. retained fallbacks) by the
    // final inner loop; this Drain finishes the decode pool's in-flight work.
    ForEachReplica([this](size_t i) { replicas_[i]->engine.Drain(); });
  }

  // --- Merged telemetry: every replica's registry under replica="i". -------
  telemetry_.reset();
  if (cfg_.engine.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::MetricsRegistry>(cfg_.engine.telemetry.window);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      telemetry_->MergeFrom(*replicas_[i]->engine.Telemetry(), "replica",
                            std::to_string(i));
    }
  }

  // --- Merged trace: one track per replica plus the router's decisions. ----
  last_trace_.clear();
  if (tracing) {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      last_trace_.push_back(
          {"replica " + std::to_string(i), replicas_[i]->engine.TraceEvents()});
    }
    last_trace_.push_back({"router", std::move(router_events)});
  }

  // --- Aggregate ------------------------------------------------------------
  ClusterMetrics out;
  out.router = router_->Stats();
  std::vector<double> work_tokens;
  for (auto& rep : replicas_) {
    const ServingMetrics& m = rep->engine.Metrics();
    out.per_replica.push_back(m);
    out.replica_requests.push_back(rep->requests);
    out.makespan_s = std::max(out.makespan_s, m.makespan_s);
    work_tokens.push_back(
        static_cast<double>(m.total_prefill_tokens + m.total_output_tokens));
    MergeInto(out.aggregate, m);
  }
  out.aggregate.makespan_s = out.makespan_s;

  if (cfg_.disaggregated) {
    out.replica_pool.resize(replicas_.size());
    for (size_t i = 0; i < replicas_.size(); ++i) {
      const bool prefill = i < prefill_n;
      out.replica_pool[i] = prefill ? 0 : 1;
      ServingMetrics& pool = prefill ? out.prefill_pool : out.decode_pool;
      MergeInto(pool, out.per_replica[i]);
      pool.makespan_s = std::max(pool.makespan_s, out.per_replica[i].makespan_s);
    }
    out.migrations = migrations_;
    out.migrations_retained = migrations_retained_;
  }

  for (const auto& m : out.per_replica) {
    out.replica_utilization.push_back(
        out.makespan_s > 0.0 ? m.BusyMs() * 1e-3 / out.makespan_s : 0.0);
  }
  const double mean_work =
      std::accumulate(work_tokens.begin(), work_tokens.end(), 0.0) /
      static_cast<double>(work_tokens.size());
  const double max_work = *std::max_element(work_tokens.begin(), work_tokens.end());
  out.load_imbalance = mean_work > 0.0 ? max_work / mean_work : 1.0;
  out.prefix_hit_rate =
      total_prompt_tokens > 0
          ? static_cast<double>(matched_prompt_tokens) / static_cast<double>(total_prompt_tokens)
          : 0.0;
  return out;
}

}  // namespace flashinfer::cluster
