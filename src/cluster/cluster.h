// Data-parallel cluster serving simulator: N replica engines behind a router.
//
// Each replica is a full ServingEngine (its own KV budget, scheduler, and
// cost model) plus a router-side RadixTree mirroring the prompt prefixes the
// replica has served. The driver is event-driven: before every arrival it
// advances each replica with StepTo(arrival) — replicas execute the steps
// they would have started by then — so routing decisions observe live
// queued/running load, exactly like a router polling engine metrics.
//
// Prefix-cache modeling: when a routed request's prompt matches the target
// replica's tree, the matched (page-aligned) tokens are marked cached and
// its prefill computes only the uncached suffix (Request::cached_prefix_len).
// The mirror is then updated with the request's full prompt and LRU-evicted
// down to a per-replica page budget. Matching happens at admission, not at
// prefill completion — an idealization that slightly favors bursts of
// identical prefixes (real engines would stall or recompute in that window).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/engine.h"

namespace flashinfer::cluster {

struct ClusterConfig {
  /// Per-replica engine configuration (every replica is identical).
  serving::EngineConfig engine;
  int num_replicas = 4;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// PrefixAffinity only: shed to least-loaded when the affinity target's
  /// load exceeds cap * max(mean load, floor).
  double imbalance_cap = 1.5;
  int64_t imbalance_floor_tokens = 2048;
  /// Per-replica prefix-cache capacity in pages; 0 derives it from the
  /// replica's KV token budget (the cache can hold what the HBM could).
  int64_t prefix_cache_pages = 0;
};

/// Per-replica aggregation of ServingMetrics plus router-level signals.
struct ClusterMetrics {
  std::vector<serving::ServingMetrics> per_replica;
  /// Merged view: concatenated TTFT/ITL samples, summed counters, makespan =
  /// max over replicas (replicas run concurrently).
  serving::ServingMetrics aggregate;
  /// Busy fraction of the cluster makespan, per replica.
  std::vector<double> replica_utilization;
  /// Requests routed to each replica.
  std::vector<int64_t> replica_requests;
  /// max/mean over replicas of processed tokens (prefill + decode): 1.0 is
  /// perfectly balanced.
  double load_imbalance = 1.0;
  /// Matched prompt tokens / total prompt tokens across routed requests
  /// (requests without token ids are excluded).
  double prefix_hit_rate = 0.0;
  RouterStats router;
  double makespan_s = 0.0;

  double ThroughputTokS() const {
    return makespan_s > 0.0
               ? static_cast<double>(aggregate.total_output_tokens) / makespan_s
               : 0.0;
  }
};

class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig cfg);
  ~ClusterEngine();

  /// Routes and simulates the full workload across all replicas.
  ClusterMetrics Run(const std::vector<serving::Request>& workload);

  /// Merged trace of the last Run(): one track per replica ("replica i",
  /// that engine's events) plus a "router" track of kRouteDecision instants
  /// stamped at each request's arrival (a=target replica, b=matched prefix
  /// tokens). Empty when `cfg.engine.trace` is disabled.
  const std::vector<obs::TraceTrack>& LastTrace() const noexcept {
    return last_trace_;
  }

  /// Cluster-wide metrics registry of the last Run(): every replica's
  /// registry merged under a `replica="i"` label (per-replica instances stay
  /// distinct in the merged exposition). Nullptr when
  /// `cfg.engine.telemetry` is disabled.
  const obs::MetricsRegistry* Telemetry() const noexcept { return telemetry_.get(); }

 private:
  struct Replica;

  ClusterConfig cfg_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<obs::TraceTrack> last_trace_;
  std::unique_ptr<obs::MetricsRegistry> telemetry_;
};

}  // namespace flashinfer::cluster
