// Data-parallel cluster serving simulator: N replica engines behind a router.
//
// Each replica is a full ServingEngine (its own KV budget, scheduler, and
// cost model) plus a router-side RadixTree mirroring the prompt prefixes the
// replica has served. The driver is event-driven: before every arrival it
// advances each replica with StepTo(arrival) — replicas execute the steps
// they would have started by then — so routing decisions observe live
// queued/running load, exactly like a router polling engine metrics.
//
// Prefix-cache modeling: when a routed request's prompt matches the target
// replica's tree, the matched (page-aligned) tokens are marked cached and
// its prefill computes only the uncached suffix (Request::cached_prefix_len).
// The mirror is then updated with the request's full prompt and LRU-evicted
// down to a per-replica page budget. Matching happens at admission, not at
// prefill completion — an idealization that slightly favors bursts of
// identical prefixes (real engines would stall or recompute in that window).
//
// Parallel driver: ClusterConfig::step_threads fans the per-arrival StepTo
// and the final Drain across a util::ThreadPool. Replica state is fully
// disjoint (each engine owns its clock, queues, Rng, trace ring, and
// registry), every simulated quantity is derived from the plan rather than
// wall-clock interleaving, and the ParallelFor barrier hands control back to
// the router between fan-outs — so a seeded run produces byte-identical
// metrics, traces, and telemetry at any thread count (pinned by
// determinism_test and the soak harness).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "gpusim/copystream.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/engine.h"
#include "util/threadpool.h"

namespace flashinfer::cluster {

struct ClusterConfig {
  /// Per-replica engine configuration (every replica is identical).
  serving::EngineConfig engine;
  int num_replicas = 4;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// PrefixAffinity only: shed to least-loaded when the affinity target's
  /// load exceeds cap * max(mean load, floor).
  double imbalance_cap = 1.5;
  int64_t imbalance_floor_tokens = 2048;
  /// Per-replica prefix-cache capacity in pages; 0 derives it from the
  /// replica's KV token budget (the cache can hold what the HBM could).
  int64_t prefix_cache_pages = 0;
  /// Threads driving the replica StepTo/Drain fan-out. 1 (default) keeps the
  /// fully serial driver; 0 uses util::ThreadPool::Global() (FI_THREADS /
  /// hardware concurrency); N > 1 builds a dedicated pool of N threads.
  /// Replica state is disjoint and each engine owns its Rng, so seeded runs
  /// are byte-identical at every setting — the router (which runs on the
  /// driver thread between fan-outs, like migration processing in
  /// disaggregated mode) is the only synchronization point.
  int step_threads = 1;
  /// Disaggregated prefill/decode serving: the first `prefill_replicas`
  /// replicas form the prefill pool (their engines run with
  /// export_at_first_token), the rest the decode pool. New prompts route
  /// over the prefill pool only; at first token each finished-prefill unit's
  /// KV migrates to the decode replica with the most KV headroom over a
  /// per-replica-pair link (per-pair gpusim::CopyStream, FIFO), or falls
  /// back to the prefill replica's own decode loop when no decode replica
  /// can take it. Off by default: the unified driver is untouched.
  bool disaggregated = false;
  int prefill_replicas = 1;
  /// Inter-replica KV migration link (NVLink/RDMA-class, per replica pair).
  double migration_gbps = 64.0;
  double migration_latency_us = 150.0;
  /// Per-page overhead: paged KV crosses the link as block-granular
  /// gather/scatter copies, like the PCIe swap path.
  double migration_page_overhead_us = 10.0;
};

/// Per-replica aggregation of ServingMetrics plus router-level signals.
struct ClusterMetrics {
  std::vector<serving::ServingMetrics> per_replica;
  /// Merged view: concatenated TTFT/ITL samples, summed counters, makespan =
  /// max over replicas (replicas run concurrently).
  serving::ServingMetrics aggregate;
  /// Busy fraction of the cluster makespan, per replica.
  std::vector<double> replica_utilization;
  /// Requests routed to each replica.
  std::vector<int64_t> replica_requests;
  /// max/mean over replicas of processed tokens (prefill + decode): 1.0 is
  /// perfectly balanced.
  double load_imbalance = 1.0;
  /// Matched prompt tokens / total prompt tokens across routed requests
  /// (requests without token ids are excluded).
  double prefix_hit_rate = 0.0;
  RouterStats router;
  double makespan_s = 0.0;

  // --- Disaggregated mode (zero/empty when ClusterConfig::disaggregated is
  // off) ---------------------------------------------------------------------
  /// Pool of each replica: 0 = prefill, 1 = decode. Empty in unified mode.
  std::vector<int> replica_pool;
  /// Pool-level metric aggregates (same merge as `aggregate`, split by
  /// pool): decode_pool's ITL distribution is the isolation headline.
  serving::ServingMetrics prefill_pool;
  serving::ServingMetrics decode_pool;
  /// Units shipped prefill -> decode over the migration links.
  int64_t migrations = 0;
  /// Units no decode replica could take (fell back to the prefill replica's
  /// local decode loop).
  int64_t migrations_retained = 0;

  double ThroughputTokS() const {
    return makespan_s > 0.0
               ? static_cast<double>(aggregate.total_output_tokens) / makespan_s
               : 0.0;
  }
};

class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig cfg);
  ~ClusterEngine();

  /// Routes and simulates the full workload across all replicas.
  ClusterMetrics Run(const std::vector<serving::Request>& workload);

  /// Merged trace of the last Run(): one track per replica ("replica i",
  /// that engine's events) plus a "router" track of kRouteDecision instants
  /// stamped at each request's arrival (a=target replica, b=matched prefix
  /// tokens). Empty when `cfg.engine.trace` is disabled.
  const std::vector<obs::TraceTrack>& LastTrace() const noexcept {
    return last_trace_;
  }

  /// Cluster-wide metrics registry of the last Run(): every replica's
  /// registry merged under a `replica="i"` label (per-replica instances stay
  /// distinct in the merged exposition). Nullptr when
  /// `cfg.engine.telemetry` is disabled.
  const obs::MetricsRegistry* Telemetry() const noexcept { return telemetry_.get(); }

 private:
  struct Replica;

  /// Runs fn(i) over all replicas, on the configured pool (step_threads != 1)
  /// or inline. Returning is the barrier: every replica has settled before
  /// the router touches any of them.
  void ForEachReplica(const std::function<void(size_t)>& fn);

  /// Disaggregated mode, driver thread only (always between ForEachReplica
  /// barriers): drains every prefill replica's exportable pool — each unit
  /// either migrates to the decode replica with the most KV headroom (its
  /// transfer charged to the pair link's CopyStream from the unit's export
  /// time) or is retained on its source. Always empties the pools, so no
  /// unit waits more than one processing round and no engine stays blocked
  /// on the cluster.
  void ProcessMigrations();

  ClusterConfig cfg_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<obs::TraceTrack> last_trace_;
  std::unique_ptr<obs::MetricsRegistry> telemetry_;
  /// Dedicated pool when step_threads > 1 (step_threads == 0 borrows the
  /// global pool instead; == 1 never touches a pool).
  std::unique_ptr<ThreadPool> pool_;

  // --- Disaggregated mode state (rebuilt per Run) ---------------------------
  int64_t migrations_ = 0;
  int64_t migrations_retained_ = 0;
  /// One migration link per (prefill, decode) replica pair, indexed
  /// src * decode_replicas + (dst - prefill_replicas). FIFO per pair: a
  /// unit's transfer queues behind earlier units on the same link, and the
  /// queueing delay is visible in the destination's ready_s gate.
  std::vector<gpusim::CopyStream> pair_streams_;
};

}  // namespace flashinfer::cluster
