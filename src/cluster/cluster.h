// Data-parallel cluster serving simulator: N replica engines behind a router.
//
// Each replica is a full ServingEngine (its own KV budget, scheduler, and
// cost model) plus a router-side RadixTree mirroring the prompt prefixes the
// replica has served. The driver is event-driven: before every arrival it
// advances each replica with StepTo(arrival) — replicas execute the steps
// they would have started by then — so routing decisions observe live
// queued/running load, exactly like a router polling engine metrics.
//
// Prefix-cache modeling: when a routed request's prompt matches the target
// replica's tree, the matched (page-aligned) tokens are marked cached and
// its prefill computes only the uncached suffix (Request::cached_prefix_len).
// The mirror is then updated with the request's full prompt and LRU-evicted
// down to a per-replica page budget. Matching happens at admission, not at
// prefill completion — an idealization that slightly favors bursts of
// identical prefixes (real engines would stall or recompute in that window).
//
// Parallel driver: ClusterConfig::step_threads fans the per-arrival StepTo
// and the final Drain across a util::ThreadPool. Replica state is fully
// disjoint (each engine owns its clock, queues, Rng, trace ring, and
// registry), every simulated quantity is derived from the plan rather than
// wall-clock interleaving, and the ParallelFor barrier hands control back to
// the router between fan-outs — so a seeded run produces byte-identical
// metrics, traces, and telemetry at any thread count (pinned by
// determinism_test and the soak harness).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/engine.h"
#include "util/threadpool.h"

namespace flashinfer::cluster {

struct ClusterConfig {
  /// Per-replica engine configuration (every replica is identical).
  serving::EngineConfig engine;
  int num_replicas = 4;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// PrefixAffinity only: shed to least-loaded when the affinity target's
  /// load exceeds cap * max(mean load, floor).
  double imbalance_cap = 1.5;
  int64_t imbalance_floor_tokens = 2048;
  /// Per-replica prefix-cache capacity in pages; 0 derives it from the
  /// replica's KV token budget (the cache can hold what the HBM could).
  int64_t prefix_cache_pages = 0;
  /// Threads driving the replica StepTo/Drain fan-out. 1 (default) keeps the
  /// fully serial driver; 0 uses util::ThreadPool::Global() (FI_THREADS /
  /// hardware concurrency); N > 1 builds a dedicated pool of N threads.
  /// Replica state is disjoint and each engine owns its Rng, so seeded runs
  /// are byte-identical at every setting — the router (which runs on the
  /// driver thread between fan-outs) is the only synchronization point.
  int step_threads = 1;
};

/// Per-replica aggregation of ServingMetrics plus router-level signals.
struct ClusterMetrics {
  std::vector<serving::ServingMetrics> per_replica;
  /// Merged view: concatenated TTFT/ITL samples, summed counters, makespan =
  /// max over replicas (replicas run concurrently).
  serving::ServingMetrics aggregate;
  /// Busy fraction of the cluster makespan, per replica.
  std::vector<double> replica_utilization;
  /// Requests routed to each replica.
  std::vector<int64_t> replica_requests;
  /// max/mean over replicas of processed tokens (prefill + decode): 1.0 is
  /// perfectly balanced.
  double load_imbalance = 1.0;
  /// Matched prompt tokens / total prompt tokens across routed requests
  /// (requests without token ids are excluded).
  double prefix_hit_rate = 0.0;
  RouterStats router;
  double makespan_s = 0.0;

  double ThroughputTokS() const {
    return makespan_s > 0.0
               ? static_cast<double>(aggregate.total_output_tokens) / makespan_s
               : 0.0;
  }
};

class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig cfg);
  ~ClusterEngine();

  /// Routes and simulates the full workload across all replicas.
  ClusterMetrics Run(const std::vector<serving::Request>& workload);

  /// Merged trace of the last Run(): one track per replica ("replica i",
  /// that engine's events) plus a "router" track of kRouteDecision instants
  /// stamped at each request's arrival (a=target replica, b=matched prefix
  /// tokens). Empty when `cfg.engine.trace` is disabled.
  const std::vector<obs::TraceTrack>& LastTrace() const noexcept {
    return last_trace_;
  }

  /// Cluster-wide metrics registry of the last Run(): every replica's
  /// registry merged under a `replica="i"` label (per-replica instances stay
  /// distinct in the merged exposition). Nullptr when
  /// `cfg.engine.telemetry` is disabled.
  const obs::MetricsRegistry* Telemetry() const noexcept { return telemetry_.get(); }

 private:
  struct Replica;

  /// Runs fn(i) over all replicas, on the configured pool (step_threads != 1)
  /// or inline. Returning is the barrier: every replica has settled before
  /// the router touches any of them.
  void ForEachReplica(const std::function<void(size_t)>& fn);

  ClusterConfig cfg_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<obs::TraceTrack> last_trace_;
  std::unique_ptr<obs::MetricsRegistry> telemetry_;
  /// Dedicated pool when step_threads > 1 (step_threads == 0 borrows the
  /// global pool instead; == 1 never touches a pool).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace flashinfer::cluster
