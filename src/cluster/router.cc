#include "cluster/router.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace flashinfer::cluster {

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "RoundRobin";
    case RouterPolicy::kLeastLoaded: return "LeastLoaded";
    case RouterPolicy::kPrefixAffinity: return "PrefixAffinity";
  }
  return "?";
}

namespace {

/// KV tokens `r` will pin on whichever replica serves it: prompt + every
/// parallel branch's output and per-branch decode slack (8, mirroring the
/// engine's admission charge). Spec-enabled replicas additionally reserve a
/// draft tree per branch, which the router cannot see — the estimate is a
/// slight lower bound there, so headroom shedding stays heuristic.
int64_t RequestKvTokens(const serving::Request& r) {
  const int64_t branches = std::max(1, r.parallel_n);
  return r.input_len + branches * (std::max<int64_t>(r.output_len, 1) + 8);
}

int LeastLoadedReplica(const std::vector<ReplicaView>& replicas) {
  int best = 0;
  int64_t best_load = std::numeric_limits<int64_t>::max();
  for (const auto& v : replicas) {
    if (v.LoadTokens() < best_load) {
      best_load = v.LoadTokens();
      best = v.replica;
    }
  }
  return best;
}

/// Least-loaded among replicas with KV headroom for `need`; when every
/// replica is pressured, falls back to plain least-loaded (the request will
/// queue or preempt wherever it lands). `pressured` reports whether the
/// headroom filter excluded anybody.
int LeastLoadedWithHeadroom(const std::vector<ReplicaView>& replicas, int64_t need,
                            bool* pressured = nullptr) {
  int best = -1;
  int64_t best_load = std::numeric_limits<int64_t>::max();
  bool excluded = false;
  for (const auto& v : replicas) {
    if (v.kv_token_budget > 0 && v.KvHeadroomTokens() < need) {
      excluded = true;
      continue;
    }
    if (v.LoadTokens() < best_load) {
      best_load = v.LoadTokens();
      best = v.replica;
    }
  }
  if (pressured != nullptr) *pressured = excluded && best >= 0;
  return best >= 0 ? best : LeastLoadedReplica(replicas);
}

class RoundRobinRouter final : public Router {
 public:
  int Route(const serving::Request&, const std::vector<ReplicaView>& replicas) override {
    ++stats_.routed;
    return replicas[static_cast<size_t>(next_++ % static_cast<int64_t>(replicas.size()))]
        .replica;
  }

 private:
  int64_t next_ = 0;
};

class LeastLoadedRouter final : public Router {
 public:
  int Route(const serving::Request& r, const std::vector<ReplicaView>& replicas) override {
    ++stats_.routed;
    bool pressured = false;
    const int pick =
        LeastLoadedWithHeadroom(replicas, RequestKvTokens(r), &pressured);
    if (pressured) ++stats_.pressure_fallbacks;
    return pick;
  }
};

class PrefixAffinityRouter final : public Router {
 public:
  PrefixAffinityRouter(double imbalance_cap, int64_t floor_tokens)
      : imbalance_cap_(imbalance_cap), floor_tokens_(floor_tokens) {}

  int Route(const serving::Request& r, const std::vector<ReplicaView>& replicas) override {
    ++stats_.routed;
    // Longest cached prefix wins; ties go to the lighter replica.
    int best = -1;
    int64_t best_match = 0;
    int64_t best_load = std::numeric_limits<int64_t>::max();
    int64_t best_headroom = 0;
    bool best_has_budget = false;
    int64_t total_load = 0;
    for (const auto& v : replicas) {
      total_load += v.LoadTokens();
      if (v.prefix_cache == nullptr || r.prompt_tokens.empty()) continue;
      // Read-only probe: scoring a replica must not refresh its LRU stamps
      // (only the replica actually routed to gets a real MatchPrefix).
      const int64_t matched = v.prefix_cache->PeekPrefixTokens(r.prompt_tokens);
      if (matched > best_match ||
          (matched == best_match && matched > 0 && v.LoadTokens() < best_load)) {
        best = v.replica;
        best_match = matched;
        best_load = v.LoadTokens();
        best_headroom = v.KvHeadroomTokens();
        best_has_budget = v.kv_token_budget > 0;
      }
    }
    const int64_t need = RequestKvTokens(r);
    if (best < 0) {
      // No prefix cached anywhere.
      return LeastLoadedWithHeadroom(replicas, need);
    }

    if (best_has_budget && best_headroom < need) {
      // Affinity target is KV-pressured: routing there would queue behind
      // (or preempt) its resident branches. Shed to a replica with room.
      ++stats_.pressure_fallbacks;
      return LeastLoadedWithHeadroom(replicas, need);
    }
    const double mean_load =
        static_cast<double>(total_load) / static_cast<double>(replicas.size());
    const double cap =
        imbalance_cap_ * std::max(mean_load, static_cast<double>(floor_tokens_));
    if (static_cast<double>(best_load) > cap) {
      // Affinity target overloaded: shed to the least-loaded replica (whose
      // cache the subsequent insert seeds, replicating the hot prefix).
      ++stats_.load_fallbacks;
      return LeastLoadedWithHeadroom(replicas, need);
    }
    ++stats_.affinity_hits;
    return best;
  }

 private:
  double imbalance_cap_;
  int64_t floor_tokens_;
};

}  // namespace

std::unique_ptr<Router> CreateRouter(RouterPolicy policy, double imbalance_cap,
                                     int64_t imbalance_floor_tokens) {
  FI_CHECK_GT(imbalance_cap, 0.0);
  switch (policy) {
    case RouterPolicy::kRoundRobin: return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kLeastLoaded: return std::make_unique<LeastLoadedRouter>();
    case RouterPolicy::kPrefixAffinity:
      return std::make_unique<PrefixAffinityRouter>(imbalance_cap, imbalance_floor_tokens);
  }
  FI_CHECK(false);
  return nullptr;
}

int PickByKvHeadroom(const std::vector<ReplicaView>& replicas, int64_t need) {
  int best = -1;
  int64_t best_headroom = -1;
  for (const auto& v : replicas) {
    const int64_t headroom = v.KvHeadroomTokens();
    if (v.kv_token_budget > 0 && headroom < need) continue;
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best = v.replica;
    }
  }
  return best;
}

}  // namespace flashinfer::cluster
