// Attention-variant customization points (Sec. 3.2.3, Fig. 5).
//
// A variant is a struct with five functors mirroring FlashInfer's template
// hooks — QueryTransform / KeyTransform / LogitsTransform / LogitsMask /
// OutputTransform — plus a compile-time `kUseSoftmax` switch. The micro-kernel
// is templated on the variant, so the hooks inline to nothing for variants
// that don't use them (this is the "compiled" path; jit/interpreted.h
// provides the std::function-based path used as the FlexAttention-like
// baseline). The template design space is the paper's
//   f_epilogue(scan(f_logits(f_q(Q)·f_k(K))) · f_v(V)).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace flashinfer {

/// Runtime parameters shared by all variants. Generated (JIT) variants read
/// additional scalars from `extra` — the analog of the paper's "additional
/// vars" copied from CUDA constant memory (Fig. 5, Part 1).
struct VariantParams {
  /// Softmax scale applied to q·k (usually 1/sqrt(head_dim)).
  float sm_scale = 1.0f;
  /// Causal masking toggle (honored by DefaultMask).
  bool causal = false;
  /// Logits soft-cap (Gemma-2/Grok style): cap*tanh(s/cap); 0 disables.
  float logits_soft_cap = 0.0f;
  /// ALiBi slope base; per-head slope is 2^(-8*(h+1)/H) scaled by this. 0 disables.
  float alibi_scale = 0.0f;
  /// Sliding-window width (tokens of left context kept); <0 disables.
  int64_t window_left = -1;
  /// StreamingLLM attention sinks: first `num_sink_tokens` always visible.
  int64_t num_sink_tokens = 0;
  /// FlashSigmoid parameters (used when the variant disables softmax).
  float sigmoid_scale = 1.0f;
  float sigmoid_bias = 0.0f;
  /// RoPE rotary base for fused-RoPE variants.
  float rope_theta = 10000.0f;
  /// Total number of query heads (for ALiBi slope computation).
  int num_qo_heads = 1;
  /// Extra scalars for JIT-generated variants.
  const float* extra = nullptr;
  int num_extra = 0;
};

/// Everything a logits hook may condition on.
struct LogitsCtx {
  int64_t q_pos = 0;   // Logical position of the query token in its sequence.
  int64_t kv_pos = 0;  // Logical position of the key/value token.
  int qo_head = 0;
  int kv_head = 0;
  int64_t qo_len = 0;  // Request's query length.
  int64_t kv_len = 0;  // Request's KV length.
  int request = 0;
};

/// Causal + sliding-window + sink masking shared by the built-in variants.
/// Variants that need a custom mask override LogitsMask entirely.
inline bool DefaultMask(const VariantParams& p, const LogitsCtx& ctx) noexcept {
  if (p.causal && ctx.kv_pos > ctx.q_pos) return false;
  if (p.window_left >= 0 && ctx.kv_pos < ctx.q_pos - p.window_left) {
    // Outside the recent window: only visible if it is a sink token.
    return ctx.kv_pos < p.num_sink_tokens;
  }
  return true;
}

/// Base variant: vanilla softmax attention with optional causal masking.
/// All built-in variants derive from this and override what they need; the
/// micro-kernel requires only that the members exist (duck typing through
/// the template), so user variants need not inherit.
struct VariantBase {
  static constexpr bool kUseSoftmax = true;
  /// Whether QueryTransform/KeyTransform are non-trivial (lets the kernel
  /// skip the transform loop and its simulated cost entirely).
  static constexpr bool kHasQKTransform = false;

  static const char* Name() { return "Vanilla"; }

  float LogitsTransform(const VariantParams& p, float logit, const LogitsCtx& ctx) const {
    return logit * p.sm_scale;
  }
  bool LogitsMask(const VariantParams& p, const LogitsCtx& ctx) const {
    return DefaultMask(p, ctx);
  }
  void QueryTransform(const VariantParams& p, std::span<float> q, int64_t q_pos,
                      int qo_head) const {}
  void KeyTransform(const VariantParams& p, std::span<float> k, int64_t kv_pos,
                    int kv_head) const {}
  void OutputTransform(const VariantParams& p, std::span<float> o, int64_t q_pos,
                       int qo_head) const {}
};

/// Applies rotary position embedding in-place (interleaved pairs layout).
inline void ApplyRope(std::span<float> vec, int64_t pos, float theta) noexcept {
  const int d = static_cast<int>(vec.size());
  const int half = d / 2;
  for (int i = 0; i < half; ++i) {
    const float freq = std::pow(theta, -2.0f * static_cast<float>(i) / static_cast<float>(d));
    const float angle = static_cast<float>(pos) * freq;
    const float c = std::cos(angle);
    const float s = std::sin(angle);
    const float x = vec[static_cast<size_t>(i)];
    const float y = vec[static_cast<size_t>(i + half)];
    vec[static_cast<size_t>(i)] = x * c - y * s;
    vec[static_cast<size_t>(i + half)] = x * s + y * c;
  }
}

}  // namespace flashinfer
