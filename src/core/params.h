// Kernel parameter block (the analog of Fig. 5's generated Params struct)
// plus the work-item and partial-output plumbing shared by the attention and
// contraction kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/variant.h"
#include "gpusim/cost.h"
#include "gpusim/device.h"
#include "kvcache/paged.h"
#include "kvcache/ragged.h"
#include "sparse/bsr.h"

namespace flashinfer {

/// Compile-time-resolved kernel configuration (Sec. 3.2.2): tile sizes,
/// template generation and storage path. Br of the BSR must equal tile_q.
struct KernelConfig {
  /// Query tile size Tq, in fused rows. One of {1, 16, 32, 64, 128}.
  int tile_q = 16;
  /// KV tile size. One of {32, 64, 128}.
  int tile_kv = 64;
  /// FA2 (Turing..Ada) or FA3 (Hopper) template generation.
  gpusim::TemplateGen tmpl = gpusim::TemplateGen::kFA2;
  /// Sparse-gather path (paged/BSR KV) vs contiguous dense KV.
  bool sparse = true;
  /// GQA head-group fusion (Appendix A). When off, each qo head is scheduled
  /// separately and reloads its KV head's data.
  bool head_fusion = true;
};

/// Batch attention parameters. Queries/outputs are ragged fp32 tensors (fp32
/// holds the math; memory traffic is charged at fp16 width, the paper's
/// storage precision); KV lives in the paged cache at its own dtype.
struct AttentionParams {
  const RaggedTensor* q = nullptr;  // [tokens, H_qo*D]
  RaggedTensor* o = nullptr;        // [tokens, H_qo*D]
  std::vector<float>* lse = nullptr;  // Optional, [tokens*H_qo].
  const PagedKVCache* kv = nullptr;
  const sparse::BsrMatrix* bsr = nullptr;  // Fused-row space.
  /// Token-row extents per request.
  std::vector<int64_t> qo_indptr;
  /// Per-request total KV length (defines causal alignment: the last query
  /// token attends to the full KV).
  std::vector<int64_t> kv_len;
  int num_qo_heads = 1;
  int num_kv_heads = 1;
  int head_dim = 64;
  /// Matches KernelConfig::head_fusion; affects the fused-row mapping.
  bool head_fusion = true;
  VariantParams variant;

  int GroupSize() const noexcept { return num_qo_heads / num_kv_heads; }
  /// Fused rows ahead of request r's first row.
  int64_t FusedBegin(int request) const noexcept {
    const int64_t g = head_fusion ? GroupSize() : 1;
    return qo_indptr[static_cast<size_t>(request)] * g;
  }
  int64_t QoLen(int request) const noexcept {
    return qo_indptr[static_cast<size_t>(request) + 1] -
           qo_indptr[static_cast<size_t>(request)];
  }
};

/// One unit of kernel work: a (query tile, KV chunk) pair (Sec. 3.3.1).
struct WorkItem {
  int32_t block_row = 0;  // BSR block row (query tile).
  int32_t request = 0;    // Request owning the tile.
  int32_t kv_head = 0;
  /// Target qo head when head fusion is off; -1 when fused.
  int32_t qo_head = -1;
  /// Chunk bounds in the row's valid-KV coordinate [0, RowKvLen(block_row)).
  int64_t kv_begin = 0;
  int64_t kv_end = 0;
  /// Partial-output base row in the workspace, or -1 for writethrough
  /// (Appendix D.2: unsplit requests write the final output directly).
  int32_t dest = -1;
};

/// Destination buffers for split-KV partial states.
struct PartialSink {
  float* o = nullptr;    // [num_partial_rows, head_dim]
  float* lse = nullptr;  // [num_partial_rows]
};

/// Simulated-cost context for a kernel launch; null device disables
/// accounting (pure-math mode for tests).
struct CostContext {
  const gpusim::DeviceSpec* dev = nullptr;
  gpusim::KernelEfficiency eff;
  int kv_bytes = 2;
  /// Concurrently resident CTAs sharing the device's bandwidth/compute
  /// (min(grid size, #SM x occupancy) for the launch).
  int slots = 1;
  /// Fraction of KV traffic served from L2 instead of HBM (cross-CTA reuse
  /// of shared pages; see Sec. 3.1.2 discussion of single-format reuse).
  double kv_l2_fraction = 0.0;
};

/// Byte/flop charges for one attention work item; shared by the executing
/// kernel and the plan-only serving cost model. Inline so JIT-generated
/// kernels can use it without linking the core library.
inline gpusim::WorkCost AttentionWorkItemCost(int rows, int64_t kv_tokens, int head_dim,
                                              int kv_bytes, bool has_qk_transform,
                                              bool partial_output) {
  gpusim::WorkCost wc;
  const double d = head_dim;
  // Q tile load (fp16 storage width) + K/V chunk load at KV width. The KV
  // bytes are charged once per work item regardless of `rows`: all rows of
  // the tile reuse the staged tile through shared memory — the core reuse
  // effect behind composable formats and head-group fusion.
  wc.hbm_bytes = rows * d * 2.0 + static_cast<double>(kv_tokens) * 2.0 * d * kv_bytes;
  // Output: partial states spill fp32 O + LSE to the workspace; writethrough
  // emits the final fp16 row.
  wc.hbm_bytes += partial_output ? rows * (d + 1.0) * 4.0 : rows * d * 2.0;
  // QK^T and PV matmuls.
  wc.tensor_flops = 4.0 * rows * static_cast<double>(kv_tokens) * d;
  // Online softmax: exp + max/sum updates per logit.
  wc.cuda_flops = 6.0 * rows * static_cast<double>(kv_tokens);
  if (has_qk_transform) {
    // Fused RoPE-style transforms: ~10 flops per element of Q tile and K chunk.
    wc.cuda_flops += 10.0 * d * (rows + static_cast<double>(kv_tokens));
  }
  return wc;
}

}  // namespace flashinfer
