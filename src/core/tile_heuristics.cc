#include "core/tile_heuristics.h"

#include <algorithm>

namespace flashinfer {

namespace {

constexpr int kQueryTiles[] = {1, 16, 32, 64, 128};
constexpr int kKvTiles[] = {32, 64, 128};

/// Tensor-pipeline utilization vs query tile size (row dimension of the MMA).
double TileComputeFactor(int tile_q) noexcept {
  if (tile_q >= 128) return 1.0;
  if (tile_q >= 64) return 0.93;
  if (tile_q >= 32) return 0.82;
  if (tile_q >= 16) return 0.68;
  return 0.25;  // CUDA-core template (Sec. 3.2.3: query tile 1).
}

}  // namespace

int SelectQueryTileSize(double avg_fused_qlen) noexcept {
  for (int t : kQueryTiles) {
    if (static_cast<double>(t) >= avg_fused_qlen) return t;
  }
  return 128;
}

int64_t SmemBytes(const KernelConfig& cfg, int head_dim, int kv_bytes) noexcept {
  const int64_t q_bytes = static_cast<int64_t>(cfg.tile_q) * head_dim * 2;  // fp16 Q tile.
  const int64_t kv_tile_bytes =
      2LL * cfg.tile_kv * head_dim * kv_bytes;  // K + V tiles.
  const int stages = 2;  // Double buffering (cp.async / TMA pipelines).
  return q_bytes + stages * kv_tile_bytes;
}

gpusim::Occupancy OccupancyModel(const gpusim::DeviceSpec& dev, const KernelConfig& cfg,
                                 int head_dim, int kv_bytes) noexcept {
  const int64_t smem = SmemBytes(cfg, head_dim, kv_bytes);
  const int64_t budget = static_cast<int64_t>(dev.smem_per_sm_kb) * 1024;
  int ctas = static_cast<int>(budget / std::max<int64_t>(smem, 1));
  // Register pressure bounds large tiles well before shared memory does.
  if (cfg.tile_q >= 128) ctas = std::min(ctas, 1);
  if (cfg.tile_q >= 64) ctas = std::min(ctas, 2);
  ctas = std::clamp(ctas, 1, 4);
  return gpusim::Occupancy{ctas};
}

double MemoryParallelismFactor(int resident) noexcept {
  switch (resident) {
    case 0:
    case 1:
      return 0.62;
    case 2:
      return 0.86;
    case 3:
      return 0.95;
    default:
      return 1.0;
  }
}

LaunchShape ResidencyModel(const gpusim::DeviceSpec& dev, const gpusim::Occupancy& occ,
                           int64_t grid_ctas) noexcept {
  LaunchShape shape;
  const int64_t per_sm = (grid_ctas + dev.num_sms - 1) / std::max(1, dev.num_sms);
  shape.resident = static_cast<int>(
      std::clamp<int64_t>(per_sm, 1, std::max(1, occ.ctas_per_sm)));
  shape.slots = dev.num_sms * shape.resident;
  // The derating tracks the kernel's occupancy *capability*, not the grid: a
  // persistent CTA with a deep work queue keeps its load pipeline full, while
  // a resource-maximal CTA (occupancy 1) cannot, however many exist.
  shape.mem_scale = MemoryParallelismFactor(occ.ctas_per_sm);
  return shape;
}

gpusim::KernelEfficiency EfficiencyModel(const gpusim::DeviceSpec& dev, const KernelConfig& cfg,
                                         int head_dim, int kv_bytes) noexcept {
  gpusim::KernelEfficiency eff;
  const bool fa3 = cfg.tmpl == gpusim::TemplateGen::kFA3;

  // --- Memory lane (calibrated to Fig. 12 bottom: ~84% both paths).
  // Residency derating (MemoryParallelismFactor) is applied per launch via
  // ResidencyModel, not here.
  double mem = 0.85;
  if (fa3 && !cfg.sparse && dev.has_tma) mem = 0.93;      // TMA bulk copies.
  else if (fa3) mem = 0.88;                               // cp.async fallback.
  if (cfg.sparse) mem -= 0.005;  // Pointer-chasing gather (within 1% of dense).
  eff.mem = mem;

  // --- Tensor lane (calibrated to Fig. 12 top: FA3 dense 627, sparse 532;
  // FA2-on-Hopper dense 370, sparse 347 TFLOPs at the largest shape). ------
  double base = fa3 ? 0.65 : 0.60;
  if (!fa3 && dev.max_template == gpusim::TemplateGen::kFA3) {
    // FA2 template running on Hopper: no WGMMA/TMA, large peak gap.
    base *= 0.64;
  }
  double compute = base * TileComputeFactor(cfg.tile_q);
  if (cfg.sparse) compute *= fa3 ? 0.85 : 0.94;  // Appendix B register pressure.
  eff.compute = compute;

  eff.l2 = 0.8;
  return eff;
}

KernelConfig SelectKernelConfig(const gpusim::DeviceSpec& dev, double avg_fused_qlen,
                                int head_dim, int kv_bytes, bool sparse) noexcept {
  KernelConfig cfg;
  cfg.sparse = sparse;
  cfg.tmpl = dev.max_template;
  cfg.tile_q = SelectQueryTileSize(avg_fused_qlen);
  if (cfg.tmpl == gpusim::TemplateGen::kFA3 && cfg.tile_q < 64) {
    // Hopper WGMMA requires row tiles that are multiples of 64, so short
    // query tiles (decode, small GQA fusions) run the FA2 template instead —
    // matching FlashInfer's decode path on Hopper.
    cfg.tmpl = gpusim::TemplateGen::kFA2;
  }
  // Largest KV tile that keeps at least 2 CTAs per SM resident (1 for the
  // biggest query tiles, which are compute-bound anyway).
  const int min_occ = cfg.tile_q >= 64 ? 1 : 2;
  cfg.tile_kv = kKvTiles[0];
  for (int tkv : kKvTiles) {
    KernelConfig trial = cfg;
    trial.tile_kv = tkv;
    if (OccupancyModel(dev, trial, head_dim, kv_bytes).ctas_per_sm >= min_occ) {
      cfg.tile_kv = tkv;
    }
  }
  if (cfg.tmpl == gpusim::TemplateGen::kFA3 && sparse) {
    // Appendix B: sparse gather on Hopper needs smaller KV tiles to avoid
    // register spilling.
    cfg.tile_kv = std::min(cfg.tile_kv, 64);
  }
  return cfg;
}

}  // namespace flashinfer
