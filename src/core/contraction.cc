#include "core/contraction.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/attention_state.h"
#include "util/check.h"

namespace flashinfer {

namespace {

void MergeOneTask(const AttentionParams& p, const ReductionMap& rmap,
                  const ReductionMap::Task& task, const PartialSink& partials,
                  bool use_softmax) {
  const int d = p.head_dim;
  float* out = p.o->Row(task.token_row).data() + static_cast<int64_t>(task.qo_head) * d;
  if (use_softmax) {
    std::vector<float> acc(static_cast<size_t>(d), 0.0f);
    float lse_acc = -std::numeric_limits<float>::infinity();
    for (int32_t i = 0; i < task.count; ++i) {
      const int32_t slot = rmap.slots[static_cast<size_t>(task.begin + i)];
      const float* o = partials.o + static_cast<int64_t>(slot) * d;
      MergeStateInPlace({acc.data(), static_cast<size_t>(d)}, lse_acc,
                        {o, static_cast<size_t>(d)}, partials.lse[slot]);
    }
    for (int dd = 0; dd < d; ++dd) out[dd] = acc[dd];
    if (p.lse != nullptr) {
      (*p.lse)[static_cast<size_t>(task.token_row) * p.num_qo_heads + task.qo_head] = lse_acc;
    }
  } else {
    // No-softmax variants compose by summation.
    for (int dd = 0; dd < d; ++dd) out[dd] = 0.0f;
    for (int32_t i = 0; i < task.count; ++i) {
      const int32_t slot = rmap.slots[static_cast<size_t>(task.begin + i)];
      const float* o = partials.o + static_cast<int64_t>(slot) * d;
      for (int dd = 0; dd < d; ++dd) out[dd] += o[dd];
    }
  }
}

}  // namespace

gpusim::SimReport RunContraction(const AttentionParams& p, const ReductionMap& rmap,
                                 const PartialSink& partials, bool use_softmax,
                                 const gpusim::SimExecutor* sim, const CostContext* cc) {
  const int num_tasks = static_cast<int>(rmap.tasks.size());
  if (num_tasks == 0) return {};

  if (sim == nullptr) {
    for (const auto& task : rmap.tasks) {
      MergeOneTask(p, rmap, task, partials, use_softmax);
    }
    return {};
  }

  // Persistent contraction kernel: grid fixed at the SM count, tasks strided
  // across CTAs (deterministic assignment).
  const int num_ctas = std::min(num_tasks, sim->device().num_sms);
  return sim->Launch(num_ctas, gpusim::Occupancy{1}, [&](int cta, gpusim::CtaCost& cost) {
    for (int t = cta; t < num_tasks; t += num_ctas) {
      const auto& task = rmap.tasks[static_cast<size_t>(t)];
      MergeOneTask(p, rmap, task, partials, use_softmax);
      if (cc != nullptr && cc->dev != nullptr) {
        gpusim::WorkCost wc;
        // Read `count` partial rows (fp32 O + LSE), write one fp16 row.
        wc.hbm_bytes = static_cast<double>(task.count) * (p.head_dim + 1) * 4.0 +
                       static_cast<double>(p.head_dim) * 2.0;
        wc.cuda_flops = static_cast<double>(task.count) * (2.0 * p.head_dim + 8.0);
        cost.Charge(*cc->dev, cc->eff, wc, cc->kv_bytes, num_ctas,
                    gpusim::kMergeRowOverheadUs);
      }
    }
  });
}

}  // namespace flashinfer
