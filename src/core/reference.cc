#include "core/reference.h"

namespace flashinfer {

void ReferenceAttentionKind(VariantKind kind, const AttentionParams& p, RaggedTensor* out,
                            std::vector<float>* lse_out) {
  switch (kind) {
    case VariantKind::kVanilla:
      return ReferenceAttention<VanillaVariant>(p, out, lse_out);
    case VariantKind::kSoftCap:
      return ReferenceAttention<SoftCapVariant>(p, out, lse_out);
    case VariantKind::kAlibi:
      return ReferenceAttention<AlibiVariant>(p, out, lse_out);
    case VariantKind::kSlidingWindow:
      return ReferenceAttention<SlidingWindowVariant>(p, out, lse_out);
    case VariantKind::kStreamingLlm:
      return ReferenceAttention<StreamingLlmVariant>(p, out, lse_out);
    case VariantKind::kSigmoid:
      return ReferenceAttention<SigmoidVariant>(p, out, lse_out);
    case VariantKind::kFusedRope:
      return ReferenceAttention<FusedRopeVariant>(p, out, lse_out);
  }
  FI_CHECK(false);
}

}  // namespace flashinfer
