// Tile-size selection heuristics and the kernel efficiency/occupancy model
// (Sec. 3.2.2).
//
// FlashInfer ships the FA2 algorithm at tile sizes (1,16,32,64,128) x
// (32,64,128) and picks per workload: the minimal query tile covering the
// average (head-group-fused) query length, then the KV tile that maximizes
// SM occupancy under shared-memory constraints. The efficiency model maps a
// (template, tile, storage-path) choice to achieved fractions of peak — the
// numbers are calibrated against the paper's Appendix B measurements (Fig.
// 12) and drive every simulated utilization result.
#pragma once

#include "core/params.h"
#include "gpusim/cost.h"
#include "gpusim/device.h"
#include "gpusim/executor.h"

namespace flashinfer {

/// Smallest tile in {1, 16, 32, 64, 128} >= the average fused query length
/// (for FA3, row tiles are multiples of 64 per WGMMA; handled by the caller
/// via SelectKernelConfig).
int SelectQueryTileSize(double avg_fused_qlen) noexcept;

/// Shared-memory footprint of one CTA for this configuration, bytes
/// (Q tile in fp16 + double-buffered K/V tiles at KV width).
int64_t SmemBytes(const KernelConfig& cfg, int head_dim, int kv_bytes) noexcept;

/// CTAs per SM given shared-memory limits (capped at 4; Hopper persistent
/// kernels run 1, Ampere tensor kernels typically <= 2 — Appendix D.3).
gpusim::Occupancy OccupancyModel(const gpusim::DeviceSpec& dev, const KernelConfig& cfg,
                                 int head_dim, int kv_bytes) noexcept;

/// Memory-level-parallelism factor: fraction of an SM's bandwidth share
/// reachable with `resident` CTAs in flight on it. Oversized tiles limit
/// residency to 1 and strand ~40% of the SM's achievable bandwidth — the
/// mechanism behind FlashAttention's decode underutilization (Sec. 4.2).
double MemoryParallelismFactor(int resident) noexcept;

/// Concrete launch shape: how many CTAs are actually resident per SM for a
/// grid of `grid_ctas`, the resulting device-sharing slot count, and the
/// bandwidth derating to apply on top of the kernel's base efficiency.
struct LaunchShape {
  int resident = 1;      // CTAs per SM actually in flight.
  int slots = 1;         // Device-rate sharing divisor (num_sms x resident).
  double mem_scale = 1.0;  // MemoryParallelismFactor(resident).
};
LaunchShape ResidencyModel(const gpusim::DeviceSpec& dev, const gpusim::Occupancy& occ,
                           int64_t grid_ctas) noexcept;

/// Achieved-efficiency model for a kernel instantiation. Memory efficiency
/// degrades at low occupancy (insufficient memory-level parallelism — the
/// reason oversized decode tiles underperform, Sec. 4.2); compute efficiency
/// scales with tile size and template generation; the sparse-gather path
/// pays the Appendix B penalty (no TMA on Hopper, more registers).
gpusim::KernelEfficiency EfficiencyModel(const gpusim::DeviceSpec& dev, const KernelConfig& cfg,
                                         int head_dim, int kv_bytes) noexcept;

/// Full heuristic: choose template from the device, query tile from the
/// average fused query length, and KV tile maximizing occupancy.
KernelConfig SelectKernelConfig(const gpusim::DeviceSpec& dev, double avg_fused_qlen,
                                int head_dim, int kv_bytes, bool sparse) noexcept;

}  // namespace flashinfer
