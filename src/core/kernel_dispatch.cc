#include "core/kernel_dispatch.h"

#include "core/microkernel.h"

namespace flashinfer {

namespace {

template <typename Variant>
WorkItemFn SelectForDtype(DType kv_dtype) {
  switch (kv_dtype) {
    case DType::kF32:
      return &RunWorkItem<float, Variant>;
    case DType::kF16:
      return &RunWorkItem<half_t, Variant>;
    case DType::kBF16:
      return &RunWorkItem<bf16_t, Variant>;
    case DType::kFP8_E4M3:
      return &RunWorkItem<fp8_e4m3_t, Variant>;
    case DType::kFP8_E5M2:
      return &RunWorkItem<fp8_e5m2_t, Variant>;
  }
  FI_CHECK(false);
  return nullptr;
}

}  // namespace

WorkItemFn GetBuiltinKernel(VariantKind kind, DType kv_dtype) {
  switch (kind) {
    case VariantKind::kVanilla:
      return SelectForDtype<VanillaVariant>(kv_dtype);
    case VariantKind::kSoftCap:
      return SelectForDtype<SoftCapVariant>(kv_dtype);
    case VariantKind::kAlibi:
      return SelectForDtype<AlibiVariant>(kv_dtype);
    case VariantKind::kSlidingWindow:
      return SelectForDtype<SlidingWindowVariant>(kv_dtype);
    case VariantKind::kStreamingLlm:
      return SelectForDtype<StreamingLlmVariant>(kv_dtype);
    case VariantKind::kSigmoid:
      return SelectForDtype<SigmoidVariant>(kv_dtype);
    case VariantKind::kFusedRope:
      return SelectForDtype<FusedRopeVariant>(kv_dtype);
  }
  FI_CHECK(false);
  return nullptr;
}

}  // namespace flashinfer
