// Double-precision reference attention used to validate the tiled kernels.
//
// Computes exact two-pass softmax attention per (request, token, head)
// directly from the paged cache through the same BSR view (so masks, pruned
// pages and position offsets are honored) and through the same variant hooks
// as the micro-kernel. Deliberately simple and slow.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "core/params.h"
#include "core/variants.h"
#include "util/check.h"

namespace flashinfer {

template <typename Variant>
void ReferenceAttention(const AttentionParams& p, RaggedTensor* out,
                        std::vector<float>* lse_out = nullptr) {
  const Variant variant;
  const auto& bsr = *p.bsr;
  const auto& kvc = *p.kv;
  const int d = p.head_dim;
  const int g = p.head_fusion ? p.GroupSize() : 1;
  const int num_reqs = static_cast<int>(p.qo_indptr.size()) - 1;

  // Map every fused row through its block row, mirroring the kernel.
  int64_t block_row = 0;
  for (int r = 0; r < num_reqs; ++r) {
    const int64_t qo_len = p.QoLen(r);
    const int64_t kv_len = p.kv_len[static_cast<size_t>(r)];
    const int64_t fused_rows = qo_len * (p.head_fusion ? g : 1);
    const int64_t fused_begin = p.FusedBegin(r);
    for (int64_t local = 0; local < fused_rows; ++local) {
      const int64_t fused = fused_begin + local;
      // Advance to the block row containing `fused`.
      while (bsr.row_start[static_cast<size_t>(block_row) + 1] <= fused) ++block_row;
      const int64_t token_local = p.head_fusion ? local / g : local;
      const int64_t token_row = p.qo_indptr[static_cast<size_t>(r)] + token_local;
      const int64_t q_pos = kv_len - qo_len + token_local;
      const int head_lo = p.head_fusion ? static_cast<int>(local % g) : 0;

      // Head iteration: fused rows carry one (kv_head-relative) head; unfused
      // rows repeat for every qo head.
      const int num_kv_heads = p.num_kv_heads;
      for (int kv_head = 0; kv_head < num_kv_heads; ++kv_head) {
        const int head_count = p.head_fusion ? 1 : p.GroupSize();
        for (int hh = 0; hh < head_count; ++hh) {
          const int qo_head =
              p.head_fusion ? kv_head * g + head_lo : kv_head * p.GroupSize() + hh;
          // Load + transform the query.
          std::vector<float> q(static_cast<size_t>(d));
          {
            const float* src = p.q->Row(token_row).data() + static_cast<int64_t>(qo_head) * d;
            std::copy(src, src + d, q.begin());
            variant.QueryTransform(p.variant, {q.data(), q.size()}, q_pos, qo_head);
          }

          // Pass 1: collect logits and value rows.
          std::vector<double> scores;
          std::vector<std::vector<float>> values;
          LogitsCtx ctx;
          ctx.q_pos = q_pos;
          ctx.qo_head = qo_head;
          ctx.kv_head = kv_head;
          ctx.qo_len = qo_len;
          ctx.kv_len = kv_len;
          ctx.request = r;
          for (int64_t e = bsr.indptr[static_cast<size_t>(block_row)];
               e < bsr.indptr[static_cast<size_t>(block_row) + 1]; ++e) {
            const int64_t page = bsr.indices[static_cast<size_t>(e)];
            const int valid = bsr.block_valid[static_cast<size_t>(e)];
            for (int t = 0; t < valid; ++t) {
              ctx.kv_pos = bsr.block_pos[static_cast<size_t>(e)] + t;
              if (!variant.LogitsMask(p.variant, ctx)) continue;
              std::vector<float> k(static_cast<size_t>(d)), v(static_cast<size_t>(d));
              for (int dd = 0; dd < d; ++dd) {
                k[static_cast<size_t>(dd)] = kvc.KAt(page, kv_head, t, dd);
                v[static_cast<size_t>(dd)] = kvc.VAt(page, kv_head, t, dd);
              }
              variant.KeyTransform(p.variant, {k.data(), k.size()}, ctx.kv_pos, kv_head);
              double logit = 0.0;
              for (int dd = 0; dd < d; ++dd) logit += static_cast<double>(q[dd]) * k[dd];
              scores.push_back(static_cast<double>(
                  variant.LogitsTransform(p.variant, static_cast<float>(logit), ctx)));
              values.push_back(std::move(v));
            }
          }

          // Pass 2: exact softmax (or plain weighting) in double precision.
          std::vector<double> o(static_cast<size_t>(d), 0.0);
          double lse = -std::numeric_limits<double>::infinity();
          if constexpr (Variant::kUseSoftmax) {
            if (!scores.empty()) {
              double m = scores[0];
              for (double sc : scores) m = std::max(m, sc);
              double den = 0.0;
              for (double sc : scores) den += std::exp(sc - m);
              for (size_t i = 0; i < scores.size(); ++i) {
                const double w = std::exp(scores[i] - m) / den;
                for (int dd = 0; dd < d; ++dd) o[static_cast<size_t>(dd)] += w * values[i][static_cast<size_t>(dd)];
              }
              lse = m + std::log(den);
            }
          } else {
            for (size_t i = 0; i < scores.size(); ++i) {
              for (int dd = 0; dd < d; ++dd) {
                o[static_cast<size_t>(dd)] += scores[i] * values[i][static_cast<size_t>(dd)];
              }
            }
            lse = 0.0;
          }

          float* dst = out->Row(token_row).data() + static_cast<int64_t>(qo_head) * d;
          std::vector<float> of(static_cast<size_t>(d));
          for (int dd = 0; dd < d; ++dd) of[static_cast<size_t>(dd)] = static_cast<float>(o[static_cast<size_t>(dd)]);
          variant.OutputTransform(p.variant, {of.data(), of.size()}, q_pos, qo_head);
          for (int dd = 0; dd < d; ++dd) dst[dd] = of[static_cast<size_t>(dd)];
          if (lse_out != nullptr) {
            (*lse_out)[static_cast<size_t>(token_row) * p.num_qo_heads + qo_head] =
                static_cast<float>(lse);
          }
        }
      }
    }
  }
}

/// Runtime-dispatched reference over the built-in variant kinds.
void ReferenceAttentionKind(VariantKind kind, const AttentionParams& p, RaggedTensor* out,
                            std::vector<float>* lse_out = nullptr);

}  // namespace flashinfer
