// Built-in attention variants (Sec. 3.2.3 & Sec. 6 design-space examples).
//
// Each is a small struct of inline hooks; the micro-kernel specializes per
// variant at compile time, exactly as FlashInfer's JIT specializes its CUDA
// template per variant spec.
#pragma once

#include "core/variant.h"

namespace flashinfer {

/// Vanilla softmax attention (masking still honors VariantParams::causal).
using VanillaVariant = VariantBase;

/// Logits soft-capping (Gemma-2 / Grok-1): s -> cap * tanh(s / cap).
struct SoftCapVariant : VariantBase {
  static const char* Name() { return "SoftCap"; }
  float LogitsTransform(const VariantParams& p, float logit, const LogitsCtx& ctx) const {
    const float s = logit * p.sm_scale;
    if (p.logits_soft_cap <= 0.0f) return s;
    return p.logits_soft_cap * std::tanh(s / p.logits_soft_cap);
  }
};

/// ALiBi (Press et al. 2022): adds a per-head linear distance bias.
struct AlibiVariant : VariantBase {
  static const char* Name() { return "ALiBi"; }
  static float Slope(int head, int num_heads) noexcept {
    return std::exp2(-8.0f * static_cast<float>(head + 1) / static_cast<float>(num_heads));
  }
  float LogitsTransform(const VariantParams& p, float logit, const LogitsCtx& ctx) const {
    const float slope = Slope(ctx.qo_head, p.num_qo_heads) *
                        (p.alibi_scale > 0.0f ? p.alibi_scale : 1.0f);
    return logit * p.sm_scale +
           slope * static_cast<float>(ctx.kv_pos - ctx.q_pos);
  }
};

/// Sliding-window attention (Longformer/Mistral): only the last
/// `window_left` tokens are visible; uses DefaultMask via VariantParams.
struct SlidingWindowVariant : VariantBase {
  static const char* Name() { return "SlidingWindow"; }
};

/// StreamingLLM (Xiao et al. 2023): attention sinks + recent window. The
/// cache-position convention follows the paper: positions are assigned
/// within the rolling cache, which our kernel receives through BSR
/// block_pos, so no extra hook logic is needed beyond the mask.
struct StreamingLlmVariant : VariantBase {
  static const char* Name() { return "StreamingLLM"; }
};

/// FlashSigmoid (Ramapuram et al. 2024): sigmoid attention, no softmax.
/// Partial outputs compose by plain summation (the ⊕ degenerate case).
struct SigmoidVariant : VariantBase {
  static constexpr bool kUseSoftmax = false;
  static const char* Name() { return "FlashSigmoid"; }
  float LogitsTransform(const VariantParams& p, float logit, const LogitsCtx& ctx) const {
    const float s = logit * p.sm_scale * p.sigmoid_scale + p.sigmoid_bias;
    return 1.0f / (1.0f + std::exp(-s));
  }
};

/// Fused-RoPE attention (Sec. 4.3): rotary embedding applied to Q and K
/// inside the attention kernel, so un-roped KV can live in the cache and no
/// separate RoPE kernel pass is needed.
struct FusedRopeVariant : VariantBase {
  static constexpr bool kHasQKTransform = true;
  static const char* Name() { return "FusedRoPE"; }
  void QueryTransform(const VariantParams& p, std::span<float> q, int64_t q_pos,
                      int qo_head) const {
    ApplyRope(q, q_pos, p.rope_theta);
  }
  void KeyTransform(const VariantParams& p, std::span<float> k, int64_t kv_pos,
                    int kv_head) const {
    ApplyRope(k, kv_pos, p.rope_theta);
  }
};

/// Runtime tags for type-erased kernel dispatch (kernel_dispatch.h) and for
/// the JIT registry of precompiled built-ins.
enum class VariantKind : uint8_t {
  kVanilla,
  kSoftCap,
  kAlibi,
  kSlidingWindow,
  kStreamingLlm,
  kSigmoid,
  kFusedRope,
};

inline const char* VariantKindName(VariantKind k) noexcept {
  switch (k) {
    case VariantKind::kVanilla:
      return "Vanilla";
    case VariantKind::kSoftCap:
      return "SoftCap";
    case VariantKind::kAlibi:
      return "ALiBi";
    case VariantKind::kSlidingWindow:
      return "SlidingWindow";
    case VariantKind::kStreamingLlm:
      return "StreamingLLM";
    case VariantKind::kSigmoid:
      return "FlashSigmoid";
    case VariantKind::kFusedRope:
      return "FusedRoPE";
  }
  return "?";
}

}  // namespace flashinfer
