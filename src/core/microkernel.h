// The FlashAttention-2-style tiled micro-kernel (Sec. 3.2), templated on the
// KV storage type and the attention variant — the C++ analog of FlashInfer's
// CUDA kernel template. One invocation executes one work item: a query tile
// (Br fused rows) against one KV chunk, maintaining the online-softmax
// running state (m, d, acc) across KV tiles and emitting either a normalized
// final output (writethrough) or a partial (O, LSE) state for the
// contraction kernel.
//
// Sparse KV tiles are staged through a contiguous scratch buffer exactly as
// Fig. 4 describes (gather rows via BSR indices, then run the dense inner
// loop); dense-path callers use the same code with trivial index math, so
// post-transfer the implementations converge as in the paper.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/params.h"
#include "util/check.h"

namespace flashinfer {

namespace detail {

/// Per-tile scratch; reused across work items of one CTA (thread-local in
/// the simulator, shared memory on a real GPU).
struct KernelScratch {
  std::vector<float> q;        // [tile_rows, D] transformed query tile.
  std::vector<float> k;        // [tile_kv, D] gathered key tile.
  std::vector<float> v;        // [tile_kv, D] gathered value tile.
  std::vector<int64_t> kv_pos;  // [tile_kv] logical position per gathered token.
  std::vector<float> acc;      // [tile_rows, D] output accumulator.
  std::vector<float> m;         // [tile_rows] running max.
  std::vector<float> d;         // [tile_rows] running denominator.
};

inline KernelScratch& TlsScratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace detail

template <typename KVT, typename Variant>
void RunWorkItem(const AttentionParams& p, const KernelConfig& cfg, const WorkItem& item,
                 const PartialSink& sink, gpusim::CtaCost* cost, const CostContext* cc) {
  const Variant variant;
  const auto& bsr = *p.bsr;
  const auto& kvc = *p.kv;
  const int d_dim = p.head_dim;
  const int g = p.head_fusion ? p.GroupSize() : 1;
  const int64_t row0 = bsr.row_start[static_cast<size_t>(item.block_row)];
  const int rows = bsr.RowsInBlock(item.block_row);
  const int64_t fused_begin = p.FusedBegin(item.request);
  const int64_t qo_len = p.QoLen(item.request);
  const int64_t kv_len = p.kv_len[static_cast<size_t>(item.request)];

  auto& s = detail::TlsScratch();
  s.q.resize(static_cast<size_t>(rows) * d_dim);
  s.acc.assign(static_cast<size_t>(rows) * d_dim, 0.0f);
  s.m.assign(static_cast<size_t>(rows), -std::numeric_limits<float>::infinity());
  s.d.assign(static_cast<size_t>(rows), 0.0f);

  // --- Load + transform the query tile (once per work item). -------------
  // Per-row metadata under head-group fusion (Appendix A): fused local index
  // i maps to query token i/g and group head i%g.
  struct RowMeta {
    int64_t token_row;
    int qo_head;
    int64_t q_pos;
  };
  std::vector<RowMeta> meta(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    const int64_t local = row0 + i - fused_begin;
    FI_CHECK_GE(local, 0);
    const int64_t token_local = p.head_fusion ? local / g : local;
    const int head_in_group = p.head_fusion ? static_cast<int>(local % g) : 0;
    const int qo_head = p.head_fusion ? item.kv_head * g + head_in_group
                                      : static_cast<int>(item.qo_head);
    const int64_t token_row = p.qo_indptr[static_cast<size_t>(item.request)] + token_local;
    const int64_t q_pos = kv_len - qo_len + token_local;
    meta[static_cast<size_t>(i)] = {token_row, qo_head, q_pos};
    const float* src = p.q->Row(token_row).data() + static_cast<int64_t>(qo_head) * d_dim;
    float* dst = s.q.data() + static_cast<size_t>(i) * d_dim;
    std::copy(src, src + d_dim, dst);
    if constexpr (Variant::kHasQKTransform) {
      variant.QueryTransform(p.variant, {dst, static_cast<size_t>(d_dim)}, q_pos, qo_head);
    }
  }

  // --- Iterate KV tiles of the chunk. -------------------------------------
  const int tile_kv = std::max(1, cfg.tile_kv);
  s.k.resize(static_cast<size_t>(tile_kv) * d_dim);
  s.v.resize(static_cast<size_t>(tile_kv) * d_dim);
  s.kv_pos.resize(static_cast<size_t>(tile_kv));

  int64_t cursor = 0;  // Valid-KV coordinate of the current block's start.
  int64_t chunk_tokens = 0;
  int filled = 0;  // Tokens staged in the current tile.

  auto flush_tile = [&](int count) {
    if (count == 0) return;
    for (int i = 0; i < rows; ++i) {
      const auto& rm = meta[static_cast<size_t>(i)];
      LogitsCtx ctx;
      ctx.q_pos = rm.q_pos;
      ctx.qo_head = rm.qo_head;
      ctx.kv_head = item.kv_head;
      ctx.qo_len = qo_len;
      ctx.kv_len = kv_len;
      ctx.request = item.request;
      const float* qrow = s.q.data() + static_cast<size_t>(i) * d_dim;
      float* acc = s.acc.data() + static_cast<size_t>(i) * d_dim;
      for (int t = 0; t < count; ++t) {
        ctx.kv_pos = s.kv_pos[static_cast<size_t>(t)];
        if (!variant.LogitsMask(p.variant, ctx)) continue;
        const float* krow = s.k.data() + static_cast<size_t>(t) * d_dim;
        float logit = 0.0f;
        for (int dd = 0; dd < d_dim; ++dd) logit += qrow[dd] * krow[dd];
        const float score = variant.LogitsTransform(p.variant, logit, ctx);
        const float* vrow = s.v.data() + static_cast<size_t>(t) * d_dim;
        if constexpr (Variant::kUseSoftmax) {
          // Online softmax update (Milakov & Gimelshein 2018).
          float& m = s.m[static_cast<size_t>(i)];
          float& den = s.d[static_cast<size_t>(i)];
          if (score > m) {
            const float scale = std::isinf(m) ? 0.0f : std::exp(m - score);
            for (int dd = 0; dd < d_dim; ++dd) acc[dd] *= scale;
            den *= scale;
            m = score;
          }
          const float w = std::exp(score - m);
          den += w;
          for (int dd = 0; dd < d_dim; ++dd) acc[dd] += w * vrow[dd];
        } else {
          // No-softmax variants (FlashSigmoid): plain weighted accumulation;
          // partials compose by summation.
          for (int dd = 0; dd < d_dim; ++dd) acc[dd] += score * vrow[dd];
          s.d[static_cast<size_t>(i)] = 1.0f;
        }
      }
    }
  };

  const int64_t e_begin = bsr.indptr[static_cast<size_t>(item.block_row)];
  const int64_t e_end = bsr.indptr[static_cast<size_t>(item.block_row) + 1];
  for (int64_t e = e_begin; e < e_end && cursor < item.kv_end; ++e) {
    const int valid = bsr.block_valid[static_cast<size_t>(e)];
    const int64_t blk_lo = cursor;
    const int64_t blk_hi = cursor + valid;
    cursor = blk_hi;
    if (blk_hi <= item.kv_begin) continue;
    const int64_t lo = std::max<int64_t>(blk_lo, item.kv_begin);
    const int64_t hi = std::min<int64_t>(blk_hi, item.kv_end);
    const int64_t page = bsr.indices[static_cast<size_t>(e)];
    for (int64_t t = lo; t < hi; ++t) {
      const int slot = static_cast<int>(t - blk_lo);
      const int64_t kv_pos = bsr.block_pos[static_cast<size_t>(e)] + slot;
      // Stage (gather) one token's K/V rows into the contiguous tile.
      const KVT* ksrc = kvc.KRow<KVT>(page, item.kv_head, slot);
      const KVT* vsrc = kvc.VRow<KVT>(page, item.kv_head, slot);
      float* kdst = s.k.data() + static_cast<size_t>(filled) * d_dim;
      float* vdst = s.v.data() + static_cast<size_t>(filled) * d_dim;
      for (int dd = 0; dd < d_dim; ++dd) {
        kdst[dd] = ToFloat(ksrc[dd]);
        vdst[dd] = ToFloat(vsrc[dd]);
      }
      if constexpr (Variant::kHasQKTransform) {
        variant.KeyTransform(p.variant, {kdst, static_cast<size_t>(d_dim)}, kv_pos,
                             item.kv_head);
      }
      s.kv_pos[static_cast<size_t>(filled)] = kv_pos;
      ++filled;
      ++chunk_tokens;
      if (filled == tile_kv) {
        flush_tile(filled);
        filled = 0;
      }
    }
  }
  flush_tile(filled);

  // --- Emit output. --------------------------------------------------------
  const bool partial = item.dest >= 0;
  for (int i = 0; i < rows; ++i) {
    const auto& rm = meta[static_cast<size_t>(i)];
    const float den = s.d[static_cast<size_t>(i)];
    const float m = s.m[static_cast<size_t>(i)];
    const float inv = (Variant::kUseSoftmax && den > 0.0f) ? 1.0f / den : 1.0f;
    const float lse = Variant::kUseSoftmax
                          ? (den > 0.0f ? m + std::log(den)
                                        : -std::numeric_limits<float>::infinity())
                          : 0.0f;
    float* acc = s.acc.data() + static_cast<size_t>(i) * d_dim;
    if (partial) {
      float* orow = sink.o + (static_cast<int64_t>(item.dest) + i) * d_dim;
      for (int dd = 0; dd < d_dim; ++dd) orow[dd] = acc[dd] * inv;
      sink.lse[item.dest + i] = lse;
    } else {
      float* orow =
          p.o->Row(rm.token_row).data() + static_cast<int64_t>(rm.qo_head) * d_dim;
      for (int dd = 0; dd < d_dim; ++dd) orow[dd] = acc[dd] * inv;
      variant.OutputTransform(p.variant, {orow, static_cast<size_t>(d_dim)}, rm.q_pos,
                              rm.qo_head);
      if (p.lse != nullptr) {
        (*p.lse)[static_cast<size_t>(rm.token_row) * p.num_qo_heads + rm.qo_head] = lse;
      }
    }
  }

  // --- Simulated cost. -----------------------------------------------------
  if (cost != nullptr && cc != nullptr && cc->dev != nullptr) {
    gpusim::WorkCost wc = AttentionWorkItemCost(rows, chunk_tokens, d_dim, cc->kv_bytes,
                                                Variant::kHasQKTransform, partial);
    if (cc->kv_l2_fraction > 0.0) {
      const double kv_bytes =
          static_cast<double>(chunk_tokens) * 2.0 * d_dim * cc->kv_bytes;
      const double to_l2 = kv_bytes * cc->kv_l2_fraction;
      wc.hbm_bytes -= to_l2;
      wc.l2_bytes += to_l2;
    }
    cost->Charge(*cc->dev, cc->eff, wc, cc->kv_bytes, cc->slots);
  }
}

}  // namespace flashinfer
