// Contraction kernel (Sec. 3.3): merges split-KV partial attention states
// into final outputs with the ⊕ operator, in the deterministic order recorded
// by the scheduler's reduction map. LLM serving requires deterministic
// outputs, so unlike Stream-K there is no atomic aggregation — the merge
// order is a pure function of the sequence-length information.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "gpusim/executor.h"

namespace flashinfer {

/// Mapping from partial rows to final output rows, produced by the runtime
/// scheduler (Fig. 6: "Reduction Map").
struct ReductionMap {
  struct Task {
    int64_t token_row = 0;
    int32_t qo_head = 0;
    /// Extent into `slots`: the partial rows to fold, in merge order.
    int32_t begin = 0;
    int32_t count = 0;
  };
  std::vector<Task> tasks;
  std::vector<int32_t> slots;

  bool Empty() const noexcept { return tasks.empty(); }
};

/// Executes the contraction kernel: for every task, left-folds its partial
/// (O, LSE) rows with ⊕ (plain summation when `use_softmax` is false) and
/// writes the final output row. Returns the simulated launch report (zero
/// when `sim` is null).
gpusim::SimReport RunContraction(const AttentionParams& p, const ReductionMap& rmap,
                                 const PartialSink& partials, bool use_softmax,
                                 const gpusim::SimExecutor* sim, const CostContext* cc);

}  // namespace flashinfer
