// Attention-state algebra (Sec. 2.2, Block-Parallel Transformer).
//
// The canonical output of an attention computation over an index set I is the
// pair (O(I), LSE(I)): the softmax-normalized output and the log-sum-exp of
// the raw scores. States over disjoint index sets compose with the ⊕
// operator, which is associative and commutative — the engine's standard
// reduction (what summation is to GEMM). Split-KV partial outputs and
// composable-format level outputs are merged with ⊕ by the contraction
// kernel in a deterministic order.
#pragma once

#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace flashinfer {

/// Attention state for one (query row, head): normalized output vector plus
/// the attention scale LSE(I) = log sum_i exp(q·k_i).
struct AttentionState {
  std::vector<float> o;
  float lse = -std::numeric_limits<float>::infinity();

  /// The ⊕-identity: empty index set (lse = -inf, o = 0).
  static AttentionState Identity(int head_dim) {
    AttentionState s;
    s.o.assign(static_cast<size_t>(head_dim), 0.0f);
    return s;
  }
};

/// In-place ⊕: acc = acc ⊕ other. `acc.o` and `other.o` must have equal size.
void MergeState(AttentionState& acc, const AttentionState& other);

/// Raw-buffer ⊕ used by kernels: (o_acc[0..d), lse_acc) ⊕= (o[0..d), lse).
void MergeStateInPlace(std::span<float> o_acc, float& lse_acc, std::span<const float> o,
                       float lse);

/// Merges states over a list (left fold, deterministic order).
AttentionState MergeAll(std::span<const AttentionState> states, int head_dim);

}  // namespace flashinfer
