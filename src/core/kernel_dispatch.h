// Type-erased kernel entry points.
//
// Both the precompiled built-in variants and JIT-generated variants expose
// the same calling convention, so the runtime (plan/run wrappers, CUDA-graph
// capture) treats them interchangeably — the analog of FlashInfer registering
// every generated kernel as a torch custom op with a fixed signature.
#pragma once

#include "core/params.h"
#include "core/variants.h"
#include "util/float_types.h"

namespace flashinfer {

/// Executes one attention work item.
using WorkItemFn = void (*)(const AttentionParams&, const KernelConfig&, const WorkItem&,
                            const PartialSink&, gpusim::CtaCost*, const CostContext*);

/// Returns the precompiled kernel for (variant, kv dtype). Aborts on an
/// unsupported dtype (mirrors FlashInfer's dispatch-time checks).
WorkItemFn GetBuiltinKernel(VariantKind kind, DType kv_dtype);

}  // namespace flashinfer
