#include "core/attention_state.h"

#include <algorithm>

#include "util/check.h"

namespace flashinfer {

void MergeStateInPlace(std::span<float> o_acc, float& lse_acc, std::span<const float> o,
                       float lse) {
  FI_CHECK_EQ(o_acc.size(), o.size());
  // Handle identity operands without arithmetic on -inf.
  if (std::isinf(lse) && lse < 0) return;
  if (std::isinf(lse_acc) && lse_acc < 0) {
    std::copy(o.begin(), o.end(), o_acc.begin());
    lse_acc = lse;
    return;
  }
  const float m = std::max(lse_acc, lse);
  const float w_acc = std::exp(lse_acc - m);
  const float w = std::exp(lse - m);
  const float denom = w_acc + w;
  for (size_t i = 0; i < o_acc.size(); ++i) {
    o_acc[i] = (w_acc * o_acc[i] + w * o[i]) / denom;
  }
  lse_acc = m + std::log(denom);
}

void MergeState(AttentionState& acc, const AttentionState& other) {
  MergeStateInPlace(acc.o, acc.lse, other.o, other.lse);
}

AttentionState MergeAll(std::span<const AttentionState> states, int head_dim) {
  AttentionState acc = AttentionState::Identity(head_dim);
  for (const auto& s : states) MergeState(acc, s);
  return acc;
}

}  // namespace flashinfer
