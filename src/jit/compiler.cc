#include "jit/compiler.h"

#include <dlfcn.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "jit/codegen.h"
#include "util/check.h"

#ifndef FI_SRC_DIR
#define FI_SRC_DIR "."
#endif

namespace flashinfer::jit {

namespace {

std::mutex g_mu;
std::unordered_map<uint64_t, std::shared_ptr<CompiledKernel>> g_registry;
JitCacheStats g_stats;

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void EnsureDir(const std::string& path) {
  ::mkdir(path.c_str(), 0755);  // EEXIST is fine.
}

int RunCommand(const std::string& cmd) { return std::system(cmd.c_str()); }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::shared_ptr<CompiledKernel> LoadSo(const std::string& so_path) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    FI_CHECK(false);
  }
  auto* fn = reinterpret_cast<WorkItemFn>(::dlsym(handle, kEntrySymbol));
  FI_CHECK(fn != nullptr);
  auto* flags_fn = reinterpret_cast<uint32_t (*)()>(::dlsym(handle, kFlagsSymbol));
  FI_CHECK(flags_fn != nullptr);
  const bool use_softmax = (flags_fn() & 1u) != 0;
  return std::make_shared<CompiledKernel>(handle, fn, use_softmax, so_path);
}

}  // namespace

CompiledKernel::CompiledKernel(void* dl_handle, WorkItemFn fn, bool use_softmax,
                               std::string so_path)
    : dl_handle_(dl_handle), fn_(fn), use_softmax_(use_softmax), so_path_(std::move(so_path)) {}

CompiledKernel::~CompiledKernel() {
  if (dl_handle_ != nullptr) ::dlclose(dl_handle_);
}

bool CompilerAvailable(const JitOptions& opts) {
  const std::string cmd = opts.compiler + " --version > /dev/null 2>&1";
  return RunCommand(cmd) == 0;
}

std::shared_ptr<CompiledKernel> CompileVariant(const AttentionSpecDesc& spec,
                                               const JitOptions& opts) {
  ValidateSpec(spec);
  const uint64_t hash = SpecHash(spec);

  std::lock_guard<std::mutex> lock(g_mu);
  if (const auto it = g_registry.find(hash); it != g_registry.end()) {
    ++g_stats.memory_hits;
    return it->second;
  }

  EnsureDir(opts.cache_dir);
  std::ostringstream base;
  base << opts.cache_dir << "/" << spec.name << "_" << std::hex << hash;
  const std::string src_path = base.str() + ".cpp";
  const std::string so_path = base.str() + ".so";
  const std::string log_path = base.str() + ".log";

  if (!FileExists(so_path)) {
    const std::string source = GenerateSource(spec);
    {
      std::ofstream out(src_path);
      FI_CHECK(out.good());
      out << source;
    }
    std::ostringstream cmd;
    cmd << opts.compiler << " -std=c++20 " << opts.extra_flags
        << " -fPIC -shared -I" << FI_SRC_DIR << " " << src_path << " -o " << so_path << " 2> "
        << log_path;
    if (opts.verbose) {
      std::fprintf(stderr, "[fi-jit] %s\n", cmd.str().c_str());
    }
    const int rc = RunCommand(cmd.str());
    if (rc != 0) {
      std::fprintf(stderr, "[fi-jit] compilation of variant '%s' failed:\n%s\n",
                   spec.name.c_str(), ReadFile(log_path).c_str());
      FI_CHECK(false);
    }
    ++g_stats.compilations;
  } else {
    ++g_stats.disk_hits;
  }

  auto kernel = LoadSo(so_path);
  FI_CHECK_EQ(kernel->use_softmax(), spec.use_softmax);
  g_registry.emplace(hash, kernel);
  return kernel;
}

JitCacheStats GetJitCacheStats() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_stats;
}

void ResetJitCacheStats() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_stats = {};
}

}  // namespace flashinfer::jit
