// C++ source generation for attention variants (the template-population step
// of Fig. 5). The emitted translation unit defines the variant struct,
// instantiates the shared micro-kernel template for the spec's KV dtype, and
// exports the type-erased `extern "C"` entry point used by the runtime.
#pragma once

#include <string>

#include "jit/spec.h"

namespace flashinfer::jit {

/// Symbol exported by every generated kernel.
inline constexpr const char* kEntrySymbol = "fi_variant_run";
/// Symbol exporting the spec flags (use_softmax) for load-time checks.
inline constexpr const char* kFlagsSymbol = "fi_variant_flags";

/// Renders the full C++ source for `spec`.
std::string GenerateSource(const AttentionSpecDesc& spec);

}  // namespace flashinfer::jit
