#include "jit/spec.h"

#include <cctype>

#include "util/check.h"

namespace flashinfer::jit {

namespace {

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

void MixString(uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;  // FNV-1a.
  }
  h ^= 0xFF;
  h *= 0x100000001B3ull;
}

}  // namespace

uint64_t SpecHash(const AttentionSpecDesc& spec) {
  uint64_t h = 0xCBF29CE484222325ull;
  MixString(h, spec.name);
  MixString(h, std::string(DTypeName(spec.kv_dtype)));
  h ^= static_cast<uint64_t>(spec.use_softmax) | (static_cast<uint64_t>(spec.has_qk_transform) << 1);
  h *= 0x100000001B3ull;
  MixString(h, spec.logits_transform_body);
  MixString(h, spec.logits_mask_body);
  MixString(h, spec.query_transform_body);
  MixString(h, spec.key_transform_body);
  MixString(h, spec.output_transform_body);
  MixString(h, spec.preamble);
  for (const auto& [name, value] : spec.extra_params) {
    MixString(h, name);
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(value * 65536.0f));
    h *= 0x100000001B3ull;
  }
  return h;
}

void ValidateSpec(const AttentionSpecDesc& spec) {
  FI_CHECK(IsIdentifier(spec.name));
  for (const auto& [name, value] : spec.extra_params) {
    FI_CHECK(IsIdentifier(name));
  }
}

}  // namespace flashinfer::jit
