// Interpreted variant execution — the FlexAttention-like baseline.
//
// Instead of specializing the micro-kernel per variant at compile time, the
// interpreted path routes every per-element hook through std::function
// indirection (the CPU analog of a generic kernel that cannot inline the
// score-mod/mask-mod callbacks). It shares the exact same micro-kernel
// skeleton, isolating the cost of generic dispatch — the effect behind the
// FlashInfer-vs-FlexAttention gaps of Appendix G.1 (Tables 1-4).
#pragma once

#include <functional>
#include <span>

#include "core/kernel_dispatch.h"

namespace flashinfer::jit {

/// Interpreted hook set; null members fall back to VariantBase behaviour.
struct InterpretedHooks {
  std::function<float(const VariantParams&, float, const LogitsCtx&)> logits_transform;
  std::function<bool(const VariantParams&, const LogitsCtx&)> logits_mask;
  std::function<void(const VariantParams&, std::span<float>, int64_t, int)> query_transform;
  std::function<void(const VariantParams&, std::span<float>, int64_t, int)> key_transform;
  std::function<void(const VariantParams&, std::span<float>, int64_t, int)> output_transform;
  bool use_softmax = true;
  bool has_qk_transform = false;
};

/// Installs the process-wide hook set used by interpreted kernels. Returns
/// the previous hooks. Not thread-safe against concurrently *running*
/// interpreted kernels — set hooks before launching.
InterpretedHooks SetInterpretedHooks(InterpretedHooks hooks);
const InterpretedHooks& CurrentInterpretedHooks();

/// Returns the interpreted kernel matching the hook flags and KV dtype.
WorkItemFn GetInterpretedKernel(bool use_softmax, bool has_qk_transform, DType kv_dtype);

}  // namespace flashinfer::jit
