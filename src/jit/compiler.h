// JIT compilation pipeline: spec -> generated C++ -> g++ -O2 -shared ->
// dlopen -> type-erased kernel (the host-compiler analog of FlashInfer's
// NVRTC/torch-extension path, Sec. 3.2.3).
//
// Compiled objects are cached twice: an in-process registry keyed by spec
// hash (repeat CompileVariant calls return the same handle) and an on-disk
// cache of .so files (repeat processes skip compilation entirely), matching
// the paper's "kernels are JIT-compiled at init time and cached for reuse".
#pragma once

#include <memory>
#include <string>

#include "core/kernel_dispatch.h"
#include "jit/spec.h"

namespace flashinfer::jit {

struct JitOptions {
  /// Directory for generated sources and .so files.
  std::string cache_dir = "/tmp/flashinfer_sim_jit";
  std::string compiler = "g++";
  std::string extra_flags = "-O2";
  bool verbose = false;
};

/// A loaded kernel; keeps its dlopen handle alive for the lifetime of the
/// object (kernel function pointers must not outlive it).
class CompiledKernel {
 public:
  CompiledKernel(void* dl_handle, WorkItemFn fn, bool use_softmax, std::string so_path);
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  WorkItemFn fn() const noexcept { return fn_; }
  bool use_softmax() const noexcept { return use_softmax_; }
  const std::string& so_path() const noexcept { return so_path_; }

 private:
  void* dl_handle_;
  WorkItemFn fn_;
  bool use_softmax_;
  std::string so_path_;
};

/// Returns true when a working host compiler is available (tests skip the
/// real-compilation paths otherwise).
bool CompilerAvailable(const JitOptions& opts = {});

/// Compiles (or loads from cache) the kernel for `spec`. Aborts on compile
/// errors with the compiler log. Thread-compatible (callers serialize).
std::shared_ptr<CompiledKernel> CompileVariant(const AttentionSpecDesc& spec,
                                               const JitOptions& opts = {});

/// In-process cache statistics (for tests and the quickstart example).
struct JitCacheStats {
  int64_t compilations = 0;
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
};
JitCacheStats GetJitCacheStats();
void ResetJitCacheStats();

}  // namespace flashinfer::jit
