#include "jit/interpreted.h"

#include "core/microkernel.h"
#include "core/variant.h"

namespace flashinfer::jit {

namespace {

InterpretedHooks& GlobalHooks() {
  static InterpretedHooks hooks;
  return hooks;
}

/// The interpreted variant: every hook dispatches through std::function.
template <bool UseSoftmax, bool HasQK>
struct InterpretedVariant {
  static constexpr bool kUseSoftmax = UseSoftmax;
  static constexpr bool kHasQKTransform = HasQK;
  static const char* Name() { return "Interpreted"; }

  float LogitsTransform(const VariantParams& p, float logit, const LogitsCtx& ctx) const {
    const auto& h = GlobalHooks();
    if (h.logits_transform) return h.logits_transform(p, logit, ctx);
    return logit * p.sm_scale;
  }
  bool LogitsMask(const VariantParams& p, const LogitsCtx& ctx) const {
    const auto& h = GlobalHooks();
    if (h.logits_mask) return h.logits_mask(p, ctx);
    return DefaultMask(p, ctx);
  }
  void QueryTransform(const VariantParams& p, std::span<float> q, int64_t q_pos,
                      int qo_head) const {
    const auto& h = GlobalHooks();
    if (h.query_transform) h.query_transform(p, q, q_pos, qo_head);
  }
  void KeyTransform(const VariantParams& p, std::span<float> k, int64_t kv_pos,
                    int kv_head) const {
    const auto& h = GlobalHooks();
    if (h.key_transform) h.key_transform(p, k, kv_pos, kv_head);
  }
  void OutputTransform(const VariantParams& p, std::span<float> o, int64_t q_pos,
                       int qo_head) const {
    const auto& h = GlobalHooks();
    if (h.output_transform) h.output_transform(p, o, q_pos, qo_head);
  }
};

template <bool UseSoftmax, bool HasQK>
WorkItemFn SelectDtype(DType dt) {
  switch (dt) {
    case DType::kF32:
      return &RunWorkItem<float, InterpretedVariant<UseSoftmax, HasQK>>;
    case DType::kF16:
      return &RunWorkItem<half_t, InterpretedVariant<UseSoftmax, HasQK>>;
    case DType::kBF16:
      return &RunWorkItem<bf16_t, InterpretedVariant<UseSoftmax, HasQK>>;
    case DType::kFP8_E4M3:
      return &RunWorkItem<fp8_e4m3_t, InterpretedVariant<UseSoftmax, HasQK>>;
    case DType::kFP8_E5M2:
      return &RunWorkItem<fp8_e5m2_t, InterpretedVariant<UseSoftmax, HasQK>>;
  }
  FI_CHECK(false);
  return nullptr;
}

}  // namespace

InterpretedHooks SetInterpretedHooks(InterpretedHooks hooks) {
  InterpretedHooks old = GlobalHooks();
  GlobalHooks() = std::move(hooks);
  return old;
}

const InterpretedHooks& CurrentInterpretedHooks() { return GlobalHooks(); }

WorkItemFn GetInterpretedKernel(bool use_softmax, bool has_qk_transform, DType kv_dtype) {
  if (use_softmax) {
    return has_qk_transform ? SelectDtype<true, true>(kv_dtype)
                            : SelectDtype<true, false>(kv_dtype);
  }
  return has_qk_transform ? SelectDtype<false, true>(kv_dtype)
                          : SelectDtype<false, false>(kv_dtype);
}

}  // namespace flashinfer::jit
