// Attention variant specification (Sec. 3.2.3, Fig. 5).
//
// Users describe a variant as C++ code fragments for each functor plus a
// list of additional scalar parameters; the JIT pipeline (codegen.h +
// compiler.h) turns the spec into a compiled kernel with the standard
// type-erased entry point. This mirrors FlashInfer's Python AttentionSpec:
// the spec carries the dtypes and head_dim because the kernel is fully
// specialized per configuration.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/float_types.h"

namespace flashinfer::jit {

struct AttentionSpecDesc {
  /// Variant name (also the generated struct name; must be a C++ identifier).
  std::string name = "Custom";
  DType kv_dtype = DType::kF16;
  bool use_softmax = true;
  bool has_qk_transform = false;

  /// Functor bodies. Empty string = inherit the VariantBase behaviour.
  /// Available symbols in each body:
  ///   logits_transform: `p` (VariantParams), `logit`, `ctx` -> return float;
  ///   logits_mask:      `p`, `ctx`                          -> return bool;
  ///   query_transform:  `p`, `q` (std::span<float>), `q_pos`, `qo_head`;
  ///   key_transform:    `p`, `k`, `kv_pos`, `kv_head`;
  ///   output_transform: `p`, `o`, `q_pos`, `qo_head`.
  /// Additional params are bound as `const float <name>` locals.
  std::string logits_transform_body;
  std::string logits_mask_body;
  std::string query_transform_body;
  std::string key_transform_body;
  std::string output_transform_body;

  /// Additional scalar parameters: (name, default). At run time their values
  /// come from VariantParams::extra in declaration order (the analog of
  /// Fig. 5's generated Params fields).
  std::vector<std::pair<std::string, float>> extra_params;

  /// Extra code pasted before the variant struct (helpers, constants).
  std::string preamble;
};

/// Stable content hash of a spec (kernel-cache key).
uint64_t SpecHash(const AttentionSpecDesc& spec);

/// Validates identifier rules and body sanity; aborts with a message on
/// invalid specs (compile errors should name the spec, not g++ internals).
void ValidateSpec(const AttentionSpecDesc& spec);

}  // namespace flashinfer::jit
