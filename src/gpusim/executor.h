// Simulated kernel execution.
//
// A kernel launch is a grid of CTAs; each CTA runs a user callback that
// performs the real (CPU) computation for its work queue and charges
// simulated cost to its CtaCost. The executor runs CTAs on a thread pool and
// then computes the kernel makespan with greedy list scheduling: CTAs are
// issued in grid order to the SM slot that frees earliest — the same policy
// hardware uses — which reproduces wave quantization for oversubscribed
// grids and straggler effects for persistent grids.
#pragma once

#include <functional>

#include "gpusim/cost.h"
#include "gpusim/device.h"

namespace flashinfer::gpusim {

/// Occupancy: how many CTAs of this kernel fit per SM (register/SMEM bound).
struct Occupancy {
  int ctas_per_sm = 1;
};

class SimExecutor {
 public:
  explicit SimExecutor(DeviceSpec dev) : dev_(std::move(dev)) {}

  const DeviceSpec& device() const noexcept { return dev_; }

  /// Launches a simulated kernel with `num_ctas` CTAs. `body(cta, cost)` must
  /// perform the CTA's work and charge its cost. Returns the launch report.
  /// Thread-safety: bodies run concurrently; each CTA must touch disjoint
  /// output state (guaranteed by plan construction).
  SimReport Launch(int num_ctas, const Occupancy& occ,
                   const std::function<void(int, CtaCost&)>& body) const;

  /// Computes the makespan of issuing `cta_times` (us) in order onto
  /// `slots` concurrent execution slots (greedy list scheduling).
  static double Makespan(const std::vector<double>& cta_times, int slots) noexcept;

 private:
  DeviceSpec dev_;
};

}  // namespace flashinfer::gpusim
