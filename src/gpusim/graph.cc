#include "gpusim/graph.h"

#include "util/check.h"

namespace flashinfer::gpusim {

void CudaGraph::BeginCapture() {
  FI_CHECK(!capturing_);
  capturing_ = true;
  instantiated_ = false;
  nodes_.clear();
  slot_index_.clear();
}

void CudaGraph::AddLaunch(std::string slot, std::vector<const void*> param_ptrs,
                          std::function<SimReport()> launch) {
  FI_CHECK(capturing_);
  const auto it = slot_index_.find(slot);
  if (it != slot_index_.end()) {
    // Re-captured slot within one graph (e.g. same layer launched twice):
    // pointers must match the earlier capture.
    FI_CHECK(nodes_[it->second].param_ptrs == param_ptrs);
  } else {
    slot_index_.emplace(slot, nodes_.size());
  }
  nodes_.push_back(Node{std::move(slot), std::move(param_ptrs), std::move(launch)});
}

void CudaGraph::EndCapture() {
  FI_CHECK(capturing_);
  capturing_ = false;
  instantiated_ = true;
}

bool CudaGraph::ValidateSlot(const std::string& slot,
                             const std::vector<const void*>& param_ptrs) const {
  const auto it = slot_index_.find(slot);
  if (it == slot_index_.end()) return false;
  return nodes_[it->second].param_ptrs == param_ptrs;
}

SimReport CudaGraph::Replay() const {
  FI_CHECK(instantiated_);
  SimReport combined;
  for (const auto& node : nodes_) {
    combined.Append(node.launch());
  }
  return combined;
}

}  // namespace flashinfer::gpusim
