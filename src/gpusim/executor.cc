#include "gpusim/executor.h"

#include <queue>

#include "util/check.h"
#include "util/threadpool.h"

namespace flashinfer::gpusim {

double SimExecutor::Makespan(const std::vector<double>& cta_times, int slots) noexcept {
  if (cta_times.empty()) return 0.0;
  if (slots < 1) slots = 1;
  // Min-heap of slot-free times; CTAs issue in grid order (hardware order).
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(0.0);
  double makespan = 0.0;
  for (double t : cta_times) {
    const double start = free_at.top();
    free_at.pop();
    const double end = start + t;
    free_at.push(end);
    if (end > makespan) makespan = end;
  }
  return makespan;
}

SimReport SimExecutor::Launch(int num_ctas, const Occupancy& occ,
                              const std::function<void(int, CtaCost&)>& body) const {
  FI_CHECK_GE(num_ctas, 0);
  SimReport report;
  report.num_ctas = num_ctas;
  if (num_ctas == 0) {
    report.time_us = dev_.kernel_launch_us;
    return report;
  }

  std::vector<CtaCost> costs(static_cast<size_t>(num_ctas));
  ThreadPool::Global().ParallelFor(num_ctas, [&](int64_t cta) {
    body(static_cast<int>(cta), costs[static_cast<size_t>(cta)]);
  });

  report.cta_time_us.reserve(costs.size());
  for (const auto& c : costs) {
    report.cta_time_us.push_back(c.time_us);
    report.total_hbm_bytes += c.total.hbm_bytes;
    report.total_l2_bytes += c.total.l2_bytes;
    report.total_tensor_flops += c.total.tensor_flops;
    report.total_cuda_flops += c.total.cuda_flops;
  }
  const int slots = dev_.num_sms * std::max(1, occ.ctas_per_sm);
  report.time_us = Makespan(report.cta_time_us, slots) + dev_.kernel_launch_us;
  return report;
}

}  // namespace flashinfer::gpusim
