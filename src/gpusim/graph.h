// CUDAGraph analog (Sec. 3.3 / Appendix D.1).
//
// A captured graph freezes a sequence of kernel launches with their argument
// pointers. Replay re-executes the same launches with the same pointers; the
// only thing allowed to change between replays is the *contents* of those
// buffers (the runtime scheduler rewrites plan data in place inside the
// workspace). Capture validates pointer stability: registering a different
// pointer for an already-captured slot is an error, mirroring the CUDA
// requirement that captured kernel parameters are immutable.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/cost.h"

namespace flashinfer::gpusim {

class CudaGraph {
 public:
  CudaGraph() = default;

  /// Begins capture. Launches added between Begin and End are recorded.
  void BeginCapture();

  /// Records a launch. `param_ptrs` are the raw argument pointers the kernel
  /// was captured with; `slot` names the logical argument set (e.g.
  /// "layer3.decode") so replays can verify stability.
  /// Outside capture mode this is an error.
  void AddLaunch(std::string slot, std::vector<const void*> param_ptrs,
                 std::function<SimReport()> launch);

  /// Ends capture; the graph becomes replayable.
  void EndCapture();

  bool capturing() const noexcept { return capturing_; }
  bool instantiated() const noexcept { return instantiated_; }
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Verifies that `param_ptrs` for `slot` match what was captured. Returns
  /// false on mismatch (caller must re-capture, as with real CUDAGraphs).
  bool ValidateSlot(const std::string& slot,
                    const std::vector<const void*>& param_ptrs) const;

  /// Replays every captured launch in order and returns the combined report.
  SimReport Replay() const;

 private:
  struct Node {
    std::string slot;
    std::vector<const void*> param_ptrs;
    std::function<SimReport()> launch;
  };

  bool capturing_ = false;
  bool instantiated_ = false;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, size_t> slot_index_;
};

}  // namespace flashinfer::gpusim
