// Async copy-stream model: a FIFO DMA engine (one per PCIe direction) that
// serializes transfers against its own busy window instead of stalling the
// compute timeline. The serving engine enqueues swap-out (D2H) and swap-in
// (H2D) traffic here when overlap mode is on; a transfer's completion time
// gates when the restored sequence becomes runnable, and BusyWithin() meters
// how much copy time was hidden under executed compute steps.
//
// The model is deliberately simple — simulated time only, no threads:
//   begin = max(now, stream busy-until), end = begin + duration.
// Duration is priced by the caller (latency + per-page overhead + bytes/BW,
// same formula as the serialized swap path), so the two modes move identical
// byte counts and differ only in WHERE the time lands.
#pragma once

#include <cstdint>
#include <deque>

namespace flashinfer {
namespace gpusim {

class CopyStream {
 public:
  struct Transfer {
    double begin_s = 0.0;
    double end_s = 0.0;
  };

  /// Enqueues a transfer of `duration_us` issued at simulated time `now_s`.
  /// FIFO: it starts when the stream frees up, never before `now_s`.
  Transfer Enqueue(double now_s, double duration_us);

  /// Records an externally-timed interval (begin/end fixed by another stream,
  /// e.g. an inter-replica migration link) so BusyWithin() meters it against
  /// this stream's compute windows. Unlike Enqueue, the interval is NOT
  /// serialized against the local busy window — intervals from independent
  /// links may overlap, and each contributes its full overlap to BusyWithin.
  /// Inserted in begin_s order to preserve the early-exit scan invariant.
  void Record(const Transfer& t);

  /// Total stream-busy time (seconds) intersected with [a_s, b_s].
  /// Queries must be issued with non-decreasing `a_s` (step windows are
  /// monotone); fully-consumed intervals are pruned as a side effect.
  double BusyWithin(double a_s, double b_s);

  /// Simulated time at which the last enqueued transfer completes
  /// (0 when nothing was ever enqueued).
  double busy_until_s() const noexcept { return busy_until_s_; }

  int64_t num_transfers() const noexcept { return num_transfers_; }
  /// Total enqueued transfer time in microseconds.
  double total_busy_us() const noexcept { return total_busy_us_; }

  void Reset();

 private:
  std::deque<Transfer> inflight_;
  double busy_until_s_ = 0.0;
  int64_t num_transfers_ = 0;
  double total_busy_us_ = 0.0;
};

}  // namespace gpusim
}  // namespace flashinfer
