#include "gpusim/copystream.h"

#include <algorithm>

namespace flashinfer {
namespace gpusim {

CopyStream::Transfer CopyStream::Enqueue(double now_s, double duration_us) {
  Transfer t;
  t.begin_s = std::max(now_s, busy_until_s_);
  t.end_s = t.begin_s + duration_us * 1e-6;
  busy_until_s_ = t.end_s;
  inflight_.push_back(t);
  ++num_transfers_;
  total_busy_us_ += duration_us;
  return t;
}

void CopyStream::Record(const Transfer& t) {
  auto it = std::upper_bound(
      inflight_.begin(), inflight_.end(), t,
      [](const Transfer& a, const Transfer& b) { return a.begin_s < b.begin_s; });
  inflight_.insert(it, t);
  busy_until_s_ = std::max(busy_until_s_, t.end_s);
  ++num_transfers_;
  total_busy_us_ += (t.end_s - t.begin_s) * 1e6;
}

double CopyStream::BusyWithin(double a_s, double b_s) {
  // Drop intervals that can never intersect a future monotone query.
  while (!inflight_.empty() && inflight_.front().end_s <= a_s) {
    inflight_.pop_front();
  }
  double busy = 0.0;
  for (const Transfer& t : inflight_) {
    if (t.begin_s >= b_s) break;  // FIFO: later intervals start even later.
    busy += std::max(0.0, std::min(t.end_s, b_s) - std::max(t.begin_s, a_s));
  }
  return busy;
}

void CopyStream::Reset() {
  inflight_.clear();
  busy_until_s_ = 0.0;
  num_transfers_ = 0;
  total_busy_us_ = 0.0;
}

}  // namespace gpusim
}  // namespace flashinfer
