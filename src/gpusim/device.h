// GPU execution model used in place of real CUDA hardware.
//
// The paper's evaluation quantities (bandwidth utilisation, FLOPs
// utilisation, kernel latency, ITL/TTFT) are all functions of (a) how work is
// distributed over SMs and (b) how many bytes/flops each work item moves.
// `DeviceSpec` captures the machine constants of the two GPUs the paper uses;
// the executor (executor.h) charges each simulated CTA a roofline time per
// work item and computes the kernel makespan with the same greedy CTA
// dispatch real GPUs use.
#pragma once

#include <string>

namespace flashinfer::gpusim {

/// Which FlashAttention template generation a kernel uses (Sec. 3.2):
/// FA2 = Ampere-style cp.async pipeline (sm80..sm89), FA3 = Hopper
/// warp-specialized + TMA (sm90a). The generation affects achievable
/// efficiency, not correctness.
enum class TemplateGen {
  kFA2,
  kFA3,
};

/// Machine constants for a simulated device.
struct DeviceSpec {
  std::string name;
  int num_sms = 108;
  /// Peak HBM bandwidth, GB/s.
  double hbm_gbps = 1555.0;
  /// Aggregate L2 bandwidth, GB/s (serves reuse hits that miss SMEM).
  double l2_gbps = 6000.0;
  /// Dense fp16 tensor-core peak, TFLOP/s.
  double fp16_tflops = 312.0;
  /// CUDA-core fp32 peak, TFLOP/s (softmax/exponential path).
  double fp32_tflops = 19.5;
  /// Shared memory per SM, KiB.
  int smem_per_sm_kb = 164;
  /// 32-bit registers per SM.
  int regs_per_sm = 65536;
  /// Fixed kernel-launch latency, microseconds.
  double kernel_launch_us = 3.0;
  /// Per-work-item scheduling/pipeline-fill overhead, microseconds.
  double work_item_overhead_us = 0.6;
  /// Whether the Tensor Memory Accelerator is available (Hopper only).
  bool has_tma = false;
  /// Highest template generation this architecture supports.
  TemplateGen max_template = TemplateGen::kFA2;

  /// Peak tensor-core throughput for a storage dtype of `bytes_per_elem`
  /// bytes (fp8 doubles fp16 throughput on Hopper, matches fp16 elsewhere).
  double TensorTflops(int bytes_per_elem) const noexcept {
    if (bytes_per_elem <= 1 && has_tma) return fp16_tflops * 2.0;
    return fp16_tflops;
  }
};

/// NVIDIA H100 SXM 80GB (sm90a): 132 SMs, 3.35 TB/s HBM3, 989 TFLOP/s fp16.
DeviceSpec H100Sxm80GB();

/// NVIDIA A100 SXM 40GB (sm80): 108 SMs, 1.555 TB/s HBM2e, 312 TFLOP/s fp16.
DeviceSpec A100Sxm40GB();

}  // namespace flashinfer::gpusim
