// Roofline cost accounting for simulated CTAs.
//
// Each work item (one query tile × one KV chunk of the attention kernel, or
// one merge row of the contraction kernel) charges bytes and flops to its
// CTA. The per-item time is the roofline max of the three lanes it can be
// bound by: HBM traffic, L2 traffic (reuse hits), and compute. A fixed
// per-item overhead models pipeline fill / scheduling.
#pragma once

#include <algorithm>
#include <vector>

#include "gpusim/device.h"

namespace flashinfer::gpusim {

/// Efficiency knobs for a particular kernel instantiation. These model how
/// well a given template generation / tile configuration converts peak
/// machine rates into achieved rates (values in (0, 1]).
struct KernelEfficiency {
  /// Fraction of HBM peak achieved by this kernel's global access pattern.
  double mem = 0.85;
  /// Fraction of tensor-core peak achieved by this tile configuration.
  double compute = 0.6;
  /// Fraction of L2 peak achieved.
  double l2 = 0.8;
};

/// Byte/flop charges for one work item.
struct WorkCost {
  double hbm_bytes = 0.0;
  double l2_bytes = 0.0;
  double tensor_flops = 0.0;
  double cuda_flops = 0.0;  // Softmax exponentials, reductions, scalar ops.
};

/// Converts a WorkCost into microseconds on `dev` under `eff` for one CTA
/// that shares the device with `slots - 1` other concurrently resident CTAs.
/// Device-wide rates (HBM, L2, tensor, CUDA cores) are shared resources, so
/// each CTA's achievable rate is the device rate divided by the concurrent
/// slot count — with balanced work this reproduces time = total/BW, and with
/// imbalance the straggler CTA stalls the kernel while the device idles,
/// which is exactly the utilization collapse of Fig. 8's skewed workloads.
/// `kv_bytes_per_elem` selects the tensor throughput tier (fp8 vs fp16).
/// `overhead_us` < 0 selects the device's default per-item overhead
/// (attention tiles: software-pipeline fill). Lightweight items such as
/// contraction merge rows pass their own smaller constant.
inline double WorkItemTimeUs(const DeviceSpec& dev, const KernelEfficiency& eff,
                             const WorkCost& c, int kv_bytes_per_elem = 2, int slots = 1,
                             double overhead_us = -1.0) noexcept {
  const double share = slots < 1 ? 1.0 : static_cast<double>(slots);
  const double t_hbm = c.hbm_bytes * share / (dev.hbm_gbps * eff.mem * 1e3);
  const double t_l2 = c.l2_bytes * share / (dev.l2_gbps * eff.l2 * 1e3);
  const double t_tc = c.tensor_flops * share /
                      (dev.TensorTflops(kv_bytes_per_elem) * eff.compute * 1e6);
  const double t_cuda = c.cuda_flops * share / (dev.fp32_tflops * 1e6);
  // Units: bytes / (GB/s * 1e3) = bytes / (bytes/us) = us;
  //        flops / (TFLOP/s * 1e6) = flops / (flops/us) = us.
  if (overhead_us < 0.0) overhead_us = dev.work_item_overhead_us;
  return std::max(std::max(t_hbm, t_l2), std::max(t_tc, t_cuda)) + overhead_us;
}

/// Per-merge-row overhead of the contraction kernel (simple vector math,
/// no MMA pipeline to fill).
inline constexpr double kMergeRowOverheadUs = 0.05;

/// Accumulated execution state of one simulated CTA.
struct CtaCost {
  double time_us = 0.0;
  WorkCost total;

  void Charge(const DeviceSpec& dev, const KernelEfficiency& eff, const WorkCost& c,
              int kv_bytes_per_elem = 2, int slots = 1, double overhead_us = -1.0) noexcept {
    time_us += WorkItemTimeUs(dev, eff, c, kv_bytes_per_elem, slots, overhead_us);
    total.hbm_bytes += c.hbm_bytes;
    total.l2_bytes += c.l2_bytes;
    total.tensor_flops += c.tensor_flops;
    total.cuda_flops += c.cuda_flops;
  }
};

/// Result of simulating one kernel launch.
struct SimReport {
  /// Kernel wall time (makespan over SMs + launch overhead), microseconds.
  double time_us = 0.0;
  double total_hbm_bytes = 0.0;
  double total_l2_bytes = 0.0;
  double total_tensor_flops = 0.0;
  double total_cuda_flops = 0.0;
  int num_ctas = 0;
  std::vector<double> cta_time_us;

  /// Achieved fraction of peak HBM bandwidth (the paper's Figure 8 metric).
  double BandwidthUtil(const DeviceSpec& dev) const noexcept {
    if (time_us <= 0.0) return 0.0;
    return total_hbm_bytes / (dev.hbm_gbps * 1e3 * time_us);
  }

  /// Achieved fraction of tensor-core peak (Figure 8 prefill metric).
  double FlopsUtil(const DeviceSpec& dev, int kv_bytes_per_elem = 2) const noexcept {
    if (time_us <= 0.0) return 0.0;
    return total_tensor_flops / (dev.TensorTflops(kv_bytes_per_elem) * 1e6 * time_us);
  }

  /// Achieved tensor TFLOP/s (the paper's Tables 1-4 / Fig. 12 metric).
  double AchievedTflops() const noexcept {
    if (time_us <= 0.0) return 0.0;
    return total_tensor_flops / (time_us * 1e6);
  }

  /// Merges a second launch that runs back-to-back with this one.
  void Append(const SimReport& other) {
    time_us += other.time_us;
    total_hbm_bytes += other.total_hbm_bytes;
    total_l2_bytes += other.total_l2_bytes;
    total_tensor_flops += other.total_tensor_flops;
    total_cuda_flops += other.total_cuda_flops;
    num_ctas = std::max(num_ctas, other.num_ctas);
  }
};

}  // namespace flashinfer::gpusim
