#include "gpusim/device.h"

namespace flashinfer::gpusim {

DeviceSpec H100Sxm80GB() {
  DeviceSpec d;
  d.name = "H100 SXM 80GB";
  d.num_sms = 132;
  d.hbm_gbps = 3350.0;
  d.l2_gbps = 12000.0;
  d.fp16_tflops = 989.0;
  d.fp32_tflops = 67.0;
  d.smem_per_sm_kb = 228;
  d.regs_per_sm = 65536;
  d.kernel_launch_us = 3.0;
  d.work_item_overhead_us = 0.5;
  d.has_tma = true;
  d.max_template = TemplateGen::kFA3;
  return d;
}

DeviceSpec A100Sxm40GB() {
  DeviceSpec d;
  d.name = "A100 SXM 40GB";
  d.num_sms = 108;
  d.hbm_gbps = 1555.0;
  d.l2_gbps = 6000.0;
  d.fp16_tflops = 312.0;
  d.fp32_tflops = 19.5;
  d.smem_per_sm_kb = 164;
  d.regs_per_sm = 65536;
  d.kernel_launch_us = 3.0;
  d.work_item_overhead_us = 0.6;
  d.has_tma = false;
  d.max_template = TemplateGen::kFA2;
  return d;
}

}  // namespace flashinfer::gpusim
