// KV-pressure survival bench: priority preemption + two-tier KV vs the
// pre-preemption engine that *wedged* (loud FI_CHECK abort) whenever a tight
// kv_budget stranded admission.
//
// Three axes:
//   1. kv_budget sweep x priority mix — the seed engine's wedge condition
//      (any request whose KV need exceeds the total budget) is evaluated
//      analytically per budget point (running it would abort the process);
//      the preempting engine must keep completing the feasible workload and
//      protect the high-priority class's TTFT tail.
//   2. restore-policy crossover — victims with short evicted contexts should
//      be cheaper to RECOMPUTE (chunked prefill rides under the weight-
//      streaming floor the mixed steps pay anyway), victims with long
//      contexts cheaper to SWAP (PCIe bytes scale linearly; prefill compute
//      does not stay under the floor). kAuto must track the winner.
//   3. goodput gate — at a budget where the seed engine wedges, the
//      preempting engine sustains >= 70% of the unconstrained-budget
//      tokens/s on the same feasible workload.
//
// Usage: bench_kv_pressure [--quick] [--json <path>] [--trace <path>]
//
// --trace re-runs the pressure workload on a 2-replica preemption-enabled
// cluster with tracing on and writes a Chrome/Perfetto trace-event JSON
// artifact (open in ui.perfetto.dev); CI schema-checks it.
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "obs/export.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

/// The pre-preemption (seed) engine aborted when a request's admission need
/// (input + decode slack) exceeded the total budget and the engine drained
/// around it. Evaluated analytically — the abort would kill this process.
bool SeedEngineWedges(const std::vector<Request>& reqs, int64_t budget) {
  for (const auto& r : reqs) {
    if (r.input_len + 8 > budget) return true;
  }
  return false;
}

/// Mixed-priority traffic with a couple of oversized prompts that wedge the
/// seed engine at tight budgets.
std::vector<Request> PressureWorkload(Rng& rng, int num_normal, double hi_frac) {
  auto reqs = UniformWorkload(rng, num_normal, 25.0, 256, 1024, 96);
  for (size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].priority = rng.NextDouble() < hi_frac ? 1 : 0;
  }
  // Two oversized prompts mid-stream: infeasible at tight budgets (the seed
  // engine's wedge), fine at loose ones.
  for (int i = 0; i < 2; ++i) {
    Request r;
    r.id = num_normal + i;
    r.arrival_s = 0.8 + 0.9 * i;
    r.input_len = 16000;
    r.output_len = 32;
    r.priority = 0;
    reqs.push_back(r);
  }
  return reqs;
}

/// Requests that are feasible at every budget point in the sweep (so
/// tokens/s comparisons across budgets cover identical work).
std::vector<Request> FeasibleSubset(const std::vector<Request>& reqs, int64_t budget) {
  std::vector<Request> out;
  for (const auto& r : reqs) {
    if (r.input_len + 8 + r.output_len <= budget) out.push_back(r);
  }
  return out;
}

/// Crossover scenario: long-lived low-priority victims with context length
/// `ctx`, preempted early by high-priority bursts and decoding long past the
/// last burst — the victims' completion IS the makespan, so every eviction
/// and restore lands on the critical path and the restore policy's cost is
/// what separates the runs.
constexpr int64_t kVictimOutput = 600;

std::vector<Request> CrossoverWorkload(int64_t ctx, int num_victims, int num_bursts) {
  std::vector<Request> reqs;
  for (int i = 0; i < num_victims; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = 0.0;
    r.input_len = ctx;
    r.output_len = kVictimOutput;
    r.priority = 0;
    reqs.push_back(r);
  }
  for (int i = 0; i < num_bursts; ++i) {
    Request r;
    r.id = num_victims + i;
    // Early, closely spaced bursts: victims are evicted while their context
    // is still near `ctx` (it grows with every decoded token).
    r.arrival_s = 0.4 + 0.3 * i;
    r.input_len = 2 * ctx;  // Needs ~2 victims' worth of KV.
    r.output_len = 16;
    r.priority = 1;
    reqs.push_back(r);
  }
  return reqs;
}

ServingMetrics RunPreempting(const std::vector<Request>& reqs, int64_t budget,
                             RestorePolicy restore, bool overlap_swap = false) {
  EngineConfig cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = restore;
  cfg.preemption.overlap_swap = overlap_swap;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, budget);
  return ServingEngine(cfg).Run(reqs);
}

const char* RestoreName(RestorePolicy p) {
  switch (p) {
    case RestorePolicy::kSwap: return "swap";
    case RestorePolicy::kRecompute: return "recompute";
    case RestorePolicy::kAuto: return "auto";
  }
  return "?";
}

}  // namespace

/// Traced 2-replica cluster over the feasible pressure workload; the exported
/// Perfetto JSON is the CI trace artifact (replica step/phase/KV tracks plus
/// the router-decision track).
bool WriteTraceArtifact(const char* path, const char* metrics_path,
                        const std::vector<Request>& reqs, int64_t budget) {
  cluster::ClusterConfig ccfg;
  ccfg.engine = BaseConfig();
  ccfg.engine.preemption.enabled = true;
  ccfg.engine.hbm_capacity_gb = HbmForBudget(ccfg.engine, budget);
  ccfg.engine.trace.enabled = true;
  // Telemetry rides along: the same run also produces the merged-registry
  // snapshot artifact (per-replica windowed counters/sketches under
  // replica="i" labels) when --metrics is given.
  ccfg.engine.telemetry.enabled = true;
  ccfg.num_replicas = 2;
  cluster::ClusterEngine engine(ccfg);
  const auto m = engine.Run(FeasibleSubset(reqs, budget));
  if (!obs::WritePerfettoFile(path, engine.LastTrace())) {
    std::printf("FAILED to write trace artifact to %s\n", path);
    return false;
  }
  std::printf("\ntrace artifact: %s (%zu tracks, %lld preemptions traced)\n",
              path, engine.LastTrace().size(),
              static_cast<long long>(m.aggregate.num_preemptions));
  if (metrics_path != nullptr) {
    std::FILE* f = std::fopen(metrics_path, "w");
    if (f == nullptr) {
      std::printf("FAILED to write metrics snapshot to %s\n", metrics_path);
      return false;
    }
    const std::string snap = engine.Telemetry()->JsonSnapshot(m.makespan_s);
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fclose(f);
    std::printf("metrics snapshot: %s\n", metrics_path);
  }
  return true;
}

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  const char* trace_path = bench::ArgValue(argc, argv, "--trace");

  bench::Banner("KV pressure",
                "priority preemption + swap-vs-recompute over a two-tier KV");
  bench::Note("Llama 3.1 8B on H100. The seed engine aborts (FI_CHECK) whenever a");
  bench::Note("request's KV need exceeds the budget; the preempting engine rejects");
  bench::Note("infeasible requests, evicts lowest-priority-youngest branches for");
  bench::Note("blocked higher-priority arrivals, and restores them by swap or");
  bench::Note("recompute, whichever the cost model prices cheaper.");

  bench::JsonResult json;
  json.Add("bench", std::string("kv_pressure"));
  json.Add("quick", quick ? 1.0 : 0.0);

  const int num_normal = quick ? 40 : 80;
  Rng rng(4242);
  const auto workload = PressureWorkload(rng, num_normal, 0.2);

  // --- 1. kv_budget sweep: graceful degradation where the seed wedges. -----
  std::printf("\n--- kv_budget sweep (20%% high-priority traffic, auto restore) ---\n");
  AsciiTable bt({"budget (tok)", "seed engine", "tok/s", "preempt", "rejected",
                 "hi P95 TTFT", "lo P95 TTFT", "swap ms", "recompute tok"});
  const std::vector<int64_t> budgets = {5000, 8000, 14000, 400000};
  // The goodput gate runs at the tightest budget that still wedges the seed
  // engine while leaving enough pages for real batching (the 5000 row shows
  // degradation much deeper into pressure).
  const int64_t gate_budget = 14000;
  double tight_tok_s = 0.0, loose_tok_s = 0.0;
  bool tight_wedges_seed = false;
  int64_t tight_preemptions = 0, tight_completed = 0, tight_feasible = 0;
  for (const int64_t budget : budgets) {
    const bool wedges = SeedEngineWedges(workload, budget);
    const auto m = RunPreempting(workload, budget, RestorePolicy::kAuto);
    // The throughput gate compares identical work across budgets: the
    // feasible subset (everything at loose budgets, all but the oversized
    // prompts at tight ones).
    if (budget == gate_budget) {
      const auto feasible = FeasibleSubset(workload, budget);
      tight_tok_s = RunPreempting(feasible, budget, RestorePolicy::kAuto)
                        .ThroughputTokS();
      tight_wedges_seed = wedges;
      tight_preemptions = m.num_preemptions;
      tight_completed = static_cast<int64_t>(m.ttft_ms.size());
      tight_feasible = static_cast<int64_t>(feasible.size());
    }
    if (budget == budgets.back()) {
      const auto loose_feasible = FeasibleSubset(workload, gate_budget);
      loose_tok_s = RunPreempting(loose_feasible, budget, RestorePolicy::kAuto)
                        .ThroughputTokS();
    }
    bt.AddRow({AsciiTable::Num(static_cast<double>(budget), 0),
               wedges ? "WEDGES (FI_CHECK abort)" : "completes",
               AsciiTable::Num(m.ThroughputTokS(), 0),
               AsciiTable::Num(static_cast<double>(m.num_preemptions), 0),
               AsciiTable::Num(static_cast<double>(m.rejected_requests), 0),
               AsciiTable::Num(m.TtftPercentileMsForPriority(1, 0.95), 0),
               AsciiTable::Num(m.TtftPercentileMsForPriority(0, 0.95), 0),
               AsciiTable::Num(m.total_swap_ms, 1),
               AsciiTable::Num(static_cast<double>(m.recompute_tokens), 0)});
    const std::string key = "budget" + std::to_string(budget);
    json.Add(key + "_seed_wedges", wedges ? 1.0 : 0.0);
    json.Add(key + "_tok_s", m.ThroughputTokS());
    json.Add(key + "_preemptions", static_cast<double>(m.num_preemptions));
    json.Add(key + "_rejected", static_cast<double>(m.rejected_requests));
    json.Add(key + "_hi_p95_ttft_ms", m.TtftPercentileMsForPriority(1, 0.95));
    json.Add(key + "_lo_p95_ttft_ms", m.TtftPercentileMsForPriority(0, 0.95));
  }
  bt.Print();
  bench::Note("\nexpected shape: the seed engine wedges at every budget the 8k");
  bench::Note("prompts cannot fit; the preempting engine keeps serving (rejecting");
  bench::Note("only the infeasible prompts) and the high-priority TTFT tail stays");
  bench::Note("flat while the low class absorbs the pressure.");

  // --- 2. Priority mix at the tight budget. --------------------------------
  std::printf("\n--- priority mix @ %lld-token budget ---\n",
              static_cast<long long>(budgets.front()));
  AsciiTable pt({"high-pri share", "preempt", "hi P95 TTFT", "lo P95 TTFT",
                 "preempt stall steps"});
  bool mix_monotone = true;
  int64_t prev_preempt = -1;
  for (const double frac : {0.0, 0.1, 0.3}) {
    Rng mix_rng(777);
    const auto w = PressureWorkload(mix_rng, num_normal, frac);
    const auto m = RunPreempting(w, budgets.front(), RestorePolicy::kAuto);
    pt.AddRow({bench::Pct(frac, 0), AsciiTable::Num(static_cast<double>(m.num_preemptions), 0),
               frac > 0.0 ? AsciiTable::Num(m.TtftPercentileMsForPriority(1, 0.95), 0)
                          : std::string("-"),
               AsciiTable::Num(m.TtftPercentileMsForPriority(0, 0.95), 0),
               AsciiTable::Num(static_cast<double>(m.preempt_stall_steps), 0)});
    json.Add("mix" + std::to_string(static_cast<int>(frac * 100)) + "_preemptions",
             static_cast<double>(m.num_preemptions));
    if (frac == 0.0 && m.num_preemptions != 0) mix_monotone = false;
    if (prev_preempt >= 0 && m.num_preemptions < prev_preempt) mix_monotone = false;
    prev_preempt = m.num_preemptions;
  }
  pt.Print();
  bench::Note("\nexpected shape: no high-priority traffic -> no preemptions (equal");
  bench::Note("priorities queue FIFO); more interactive share -> more evictions.");

  // --- 3. Swap-vs-recompute crossover. -------------------------------------
  std::printf("\n--- restore-policy crossover (evicted-context length sweep) ---\n");
  AsciiTable ct({"ctx (tok)", "policy", "makespan s", "preempt", "swap ms",
                 "recompute tok", "tok/s"});
  const int num_victims = 6;
  const int num_bursts = quick ? 4 : 6;
  double short_swap_s = 0.0, short_recompute_s = 0.0, short_auto_s = 0.0;
  double long_swap_s = 0.0, long_recompute_s = 0.0, long_auto_s = 0.0;
  const int64_t short_ctx = 256, long_ctx = 4096;
  for (const int64_t ctx : {short_ctx, int64_t{1024}, long_ctx}) {
    // Budget: all victims resident with (almost) nothing to spare, so every
    // burst must evict ceil(burst_need / victim_reserve) >= 1 of them.
    const int64_t victim_reserve = ctx + kVictimOutput + 8;
    const int64_t budget = num_victims * victim_reserve + 64;
    const auto w = CrossoverWorkload(ctx, num_victims, num_bursts);
    for (const RestorePolicy policy :
         {RestorePolicy::kSwap, RestorePolicy::kRecompute, RestorePolicy::kAuto}) {
      const auto m = RunPreempting(w, budget, policy);
      ct.AddRow({AsciiTable::Num(static_cast<double>(ctx), 0), RestoreName(policy),
                 AsciiTable::Num(m.makespan_s, 3),
                 AsciiTable::Num(static_cast<double>(m.num_preemptions), 0),
                 AsciiTable::Num(m.total_swap_ms, 1),
                 AsciiTable::Num(static_cast<double>(m.recompute_tokens), 0),
                 AsciiTable::Num(m.ThroughputTokS(), 0)});
      const std::string key =
          "ctx" + std::to_string(ctx) + "_" + RestoreName(policy);
      json.Add(key + "_makespan_s", m.makespan_s);
      json.Add(key + "_preemptions", static_cast<double>(m.num_preemptions));
      json.Add(key + "_swap_ms", m.total_swap_ms);
      json.Add(key + "_recompute_tokens", static_cast<double>(m.recompute_tokens));
      if (ctx == short_ctx) {
        if (policy == RestorePolicy::kSwap) short_swap_s = m.makespan_s;
        if (policy == RestorePolicy::kRecompute) short_recompute_s = m.makespan_s;
        if (policy == RestorePolicy::kAuto) short_auto_s = m.makespan_s;
      }
      if (ctx == long_ctx) {
        if (policy == RestorePolicy::kSwap) long_swap_s = m.makespan_s;
        if (policy == RestorePolicy::kRecompute) long_recompute_s = m.makespan_s;
        if (policy == RestorePolicy::kAuto) long_auto_s = m.makespan_s;
      }
    }
  }
  ct.Print();
  bench::Note("\nexpected shape: short evicted contexts recompute nearly free (the");
  bench::Note("chunk GEMM hides under the weight-streaming floor) while swap pays");
  bench::Note("fixed PCIe latency; long contexts invert — prefill is compute-bound");
  bench::Note("but PCIe bytes stay linear. kAuto tracks the winner at both ends.");

  // --- 4. Overlapped swap transfers (PreemptionConfig::overlap_swap). ------
  // Legacy mode serializes every PCIe swap into the next step (stall ==
  // total swap time); overlap mode rides per-direction copy streams so the
  // transfer hides behind attention and only genuine copy-waits stall.
  std::printf("\n--- overlapped swap transfers vs legacy serialization ---\n");
  AsciiTable ot({"scenario", "mode", "makespan s", "tok/s", "swap ms",
                 "stall ms", "hidden ms", "overlap eff"});
  bool gate_overlap_stall = true, gate_overlap_tput = true;
  {
    const int64_t victim_reserve = long_ctx + kVictimOutput + 8;
    const int64_t xbudget = num_victims * victim_reserve + 64;
    const auto xw = CrossoverWorkload(long_ctx, num_victims, num_bursts);
    const auto feasible = FeasibleSubset(workload, gate_budget);
    const std::vector<std::pair<std::string,
                                std::pair<const std::vector<Request>*, int64_t>>>
        scenarios = {{"long-ctx crossover", {&xw, xbudget}},
                     {"tight-budget mix", {&feasible, gate_budget}}};
    for (const auto& [name, sw] : scenarios) {
      const auto legacy = RunPreempting(*sw.first, sw.second, RestorePolicy::kSwap,
                                        /*overlap_swap=*/false);
      const auto over = RunPreempting(*sw.first, sw.second, RestorePolicy::kSwap,
                                      /*overlap_swap=*/true);
      for (const auto* m : {&legacy, &over}) {
        ot.AddRow({name, m == &legacy ? "legacy" : "overlap",
                   AsciiTable::Num(m->makespan_s, 3),
                   AsciiTable::Num(m->ThroughputTokS(), 0),
                   AsciiTable::Num(m->total_swap_ms, 1),
                   AsciiTable::Num(m->swap_stall_ms, 1),
                   AsciiTable::Num(m->swap_hidden_ms, 1),
                   m->SwapOverlapEfficiency()
                       ? AsciiTable::Num(*m->SwapOverlapEfficiency(), 2)
                       : "-"});
      }
      const std::string key =
          name.front() == 'l' ? "overlap_long" : "overlap_tight";
      json.Add(key + "_legacy_stall_ms", legacy.swap_stall_ms);
      json.Add(key + "_stall_ms", over.swap_stall_ms);
      json.Add(key + "_hidden_ms", over.swap_hidden_ms);
      json.Add(key + "_efficiency", over.SwapOverlapEfficiency().value_or(0.0));
      json.Add(key + "_legacy_tok_s", legacy.ThroughputTokS());
      json.Add(key + "_tok_s", over.ThroughputTokS());
      // Strictly less stall at matched (or better) throughput.
      if (!(legacy.swap_stall_ms > 0.0 && over.swap_stall_ms < legacy.swap_stall_ms)) {
        gate_overlap_stall = false;
      }
      if (!(over.ThroughputTokS() >= 0.999 * legacy.ThroughputTokS())) {
        gate_overlap_tput = false;
      }
    }
  }
  ot.Print();
  bench::Note("\nexpected shape: identical swap bytes move in both modes, but the");
  bench::Note("overlap rows hide most of them behind compute (high overlap eff,");
  bench::Note("stall ms near zero) while legacy stalls for every byte.");

  // --- Gates. ---------------------------------------------------------------
  const double goodput_frac = loose_tok_s > 0.0 ? tight_tok_s / loose_tok_s : 0.0;
  const bool gate_wedge = tight_wedges_seed && tight_preemptions > 0 &&
                          tight_completed == tight_feasible;
  const bool gate_goodput = goodput_frac >= 0.70;
  const bool gate_short = short_recompute_s < short_swap_s;
  const bool gate_long = long_swap_s < long_recompute_s;
  const bool gate_auto =
      short_auto_s <= 1.02 * std::min(short_swap_s, short_recompute_s) &&
      long_auto_s <= 1.02 * std::min(long_swap_s, long_recompute_s);
  std::printf("\nseed wedges at %lld-token budget: %s; preempting engine completed"
              " %lld/%lld feasible requests with %lld preemptions\n",
              static_cast<long long>(budgets.front()), tight_wedges_seed ? "yes" : "NO",
              static_cast<long long>(tight_completed),
              static_cast<long long>(tight_feasible),
              static_cast<long long>(tight_preemptions));
  std::printf("goodput under pressure: %.1f%% of unconstrained tokens/s on the same"
              " feasible workload (acceptance: >= 70%%)\n",
              100.0 * goodput_frac);
  std::printf("crossover: short ctx recompute %.3fs vs swap %.3fs (acceptance: <);"
              " long ctx swap %.3fs vs recompute %.3fs (acceptance: <); auto tracks"
              " winner: %s\n",
              short_recompute_s, short_swap_s, long_swap_s, long_recompute_s,
              gate_auto ? "yes" : "NO");
  json.Add("gate_seed_wedges_tight", tight_wedges_seed ? 1.0 : 0.0);
  json.Add("gate_wedge_survived", gate_wedge ? 1.0 : 0.0);
  json.Add("gate_goodput_frac", goodput_frac);
  json.Add("gate_mix_monotone", mix_monotone ? 1.0 : 0.0);
  json.Add("gate_short_recompute_wins", gate_short ? 1.0 : 0.0);
  json.Add("gate_long_swap_wins", gate_long ? 1.0 : 0.0);
  json.Add("gate_auto_tracks_winner", gate_auto ? 1.0 : 0.0);
  std::printf("overlap-swap: stall strictly reduced in every scenario: %s; "
              "throughput held (>= 99.9%% of legacy): %s\n",
              gate_overlap_stall ? "yes" : "NO", gate_overlap_tput ? "yes" : "NO");
  json.Add("gate_overlap_stall_reduced", gate_overlap_stall ? 1.0 : 0.0);
  json.Add("gate_overlap_throughput_held", gate_overlap_tput ? 1.0 : 0.0);
  const bool ok = gate_wedge && gate_goodput && mix_monotone && gate_short &&
                  gate_long && gate_auto && gate_overlap_stall && gate_overlap_tput;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  // The artifact uses the tightest budget so the trace actually shows the
  // preemption/KV machinery in action (the 14k gate budget rarely preempts
  // once the load is split across two replicas).
  if (trace_path != nullptr &&
      !WriteTraceArtifact(trace_path, bench::ArgValue(argc, argv, "--metrics"),
                          workload, budgets.front())) {
    return 1;
  }
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
