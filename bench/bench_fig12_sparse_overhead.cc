// Figure 12 (Appendix B): overhead of sparse gathering.
//
// Top: causal prefill achieved TFLOP/s on the FA2 and FA3 templates with
// vector-sparse (page size 1) vs dense (contiguous) KV. Bottom: decode
// bandwidth utilization for both paths. Sparse gathering cannot use TMA on
// Hopper (non-affine addresses) and pays register pressure, giving ~10% on
// FA3 prefill and a negligible decode gap — the calibration targets of the
// kernel efficiency model.
#include "bench_common.h"
#include "serving/backends.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

struct Shape {
  int batch;
  int64_t len;
};
constexpr Shape kShapes[] = {{32, 1024}, {16, 2048}, {8, 4096},
                             {4, 8192},  {2, 16384}, {1, 32768}};

double PrefillTflops(const gpusim::DeviceSpec& dev, const Shape& s, int tmpl, bool dense) {
  AttnSimInput in;
  in.qo_lens.assign(static_cast<size_t>(s.batch), s.len);
  in.kv_lens = in.qo_lens;
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.causal = true;
  in.force_template = tmpl;
  in.force_dense = dense;
  in.page_size = dense ? 128 : 1;  // Vector-sparse: PageAttention page size 1.
  const auto r = SimulateBatchAttention(dev, FlashInferBackend(), in);
  return r.AchievedTflops();
}

double DecodeBwUtil(const gpusim::DeviceSpec& dev, const Shape& s, bool dense) {
  AttnSimInput in;
  in.qo_lens.assign(static_cast<size_t>(s.batch), 1);
  in.kv_lens.assign(static_cast<size_t>(s.batch), s.len);
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.force_dense = dense;
  in.page_size = dense ? 128 : 1;
  const auto r = SimulateBatchAttention(dev, FlashInferBackend(), in);
  return r.BandwidthUtil(dev);
}

}  // namespace

int main() {
  bench::Banner("Figure 12", "sparse-gather overhead: prefill TFLOP/s and decode bandwidth");
  bench::Note("32 qo/kv heads, head_dim 128, H100 SXM; cells: measured (paper)");
  const auto dev = gpusim::H100Sxm80GB();

  // Paper values, FA2 template: {sparse, dense} per shape.
  const double paper_fa2[6][2] = {{265, 277}, {301, 318}, {324, 342},
                                  {337, 358}, {344, 366}, {347, 370}};
  const double paper_fa3[6][2] = {{343, 406}, {418, 491}, {469, 549},
                                  {502, 587}, {523, 613}, {532, 627}};
  const double paper_decode[6][2] = {{84, 85}, {85, 84}, {83, 85},
                                     {83, 84}, {83, 84}, {83, 84}};

  for (int tmpl : {2, 3}) {
    std::printf("\n--- (causal) prefill, FA%d template: achieved TFLOP/s ---\n", tmpl);
    AsciiTable t({"(batch, seqlen)", "vector-sparse", "dense", "dense/sparse"});
    for (size_t i = 0; i < std::size(kShapes); ++i) {
      const auto& s = kShapes[i];
      const double sp = PrefillTflops(dev, s, tmpl, false);
      const double de = PrefillTflops(dev, s, tmpl, true);
      const auto& paper = tmpl == 2 ? paper_fa2[i] : paper_fa3[i];
      t.AddRow({"(" + std::to_string(s.batch) + ", " + std::to_string(s.len) + ")",
                WithPaper(sp, paper[0], 0), WithPaper(de, paper[1], 0),
                AsciiTable::Num(de / sp, 2) + "x"});
    }
    t.Print();
  }

  std::printf("\n--- decode: bandwidth utilization (%%) ---\n");
  AsciiTable t({"(batch, seqlen)", "vector-sparse", "dense"});
  for (size_t i = 0; i < std::size(kShapes); ++i) {
    const auto& s = kShapes[i];
    t.AddRow({"(" + std::to_string(s.batch) + ", " + std::to_string(s.len) + ")",
              bench::PctWithPaper(DecodeBwUtil(dev, s, false), paper_decode[i][0]),
              bench::PctWithPaper(DecodeBwUtil(dev, s, true), paper_decode[i][1])});
  }
  t.Print();
  return 0;
}
