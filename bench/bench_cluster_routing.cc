// Cluster routing bench: throughput and tail latency vs. router policy and
// replica count on a multi-tenant Zipf system-prompt workload.
//
// This is the cluster-layer counterpart of the paper's Sec. 4.1 serving
// experiments: N Llama-3.1-8B replicas (each priced by the real scheduler +
// kernel cost model) behind a router. Prefix-affinity routing turns the
// Zipf-shared system prompts into prefill savings (RadixAttention-style KV
// reuse), which shows up as a higher prefix-hit rate and lower median TTFT
// at equal offered load; the imbalance cap keeps the hottest tenants from
// piling onto one replica.
//
// Usage: bench_cluster_routing [--quick] [--json <path>]
#include <cstring>
#include <string>

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace flashinfer;
using namespace flashinfer::cluster;
using namespace flashinfer::serving;

namespace {

EngineConfig ReplicaConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

ClusterMetrics RunPolicy(const std::vector<Request>& workload, int replicas,
                         RouterPolicy policy) {
  ClusterConfig cfg;
  cfg.engine = ReplicaConfig();
  cfg.num_replicas = replicas;
  cfg.policy = policy;
  // Half the KV pool is prefix cache; live decode KV owns the rest. (The
  // default — the whole pool — is only reachable on an idle replica.)
  cfg.prefix_cache_pages =
      serving::ServingEngine(cfg.engine).KvTokenBudget() / (2 * cfg.engine.page_size);
  return ClusterEngine(cfg).Run(workload);
}

/// Fleet-scale tenant pool: the union of system prompts deliberately exceeds
/// one replica's prefix-cache capacity, so *where* a request lands decides
/// whether its tenant is still cached (the PackInfer setting). A small pool
/// that fits every replica's cache makes all routers look alike.
TenantPoolConfig FleetPool() {
  TenantPoolConfig pool;
  pool.num_tenants = 1024;
  pool.zipf_s = 1.0;
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  const int base_requests = quick ? 60 : 400;
  const double rate_per_replica = 25.0;  // req/s, latency-sensitive regime.
  bench::JsonResult json;
  json.Add("bench", std::string("cluster_routing"));

  bench::Banner("Cluster routing", "multi-replica router with prefix-affinity scheduling");
  bench::Note("workload: 1024 tenants, Zipf(1.0) popularity, 256-1024-token system");
  bench::Note("prompts, log-normal user turns/outputs; Llama 3.1 8B per replica.");

  {
    const int replicas = 4;
    Rng rng(2026);
    const auto workload = MultiTenantWorkload(rng, base_requests * replicas,
                                              rate_per_replica * replicas, FleetPool());

    std::printf("\n--- router policy comparison (%d replicas, %zu requests) ---\n",
                replicas, workload.size());
    AsciiTable t({"policy", "throughput (tok/s)", "median TTFT (ms)", "P99 TTFT (ms)",
                  "median ITL (ms)", "prefix hit %", "imbalance", "fallback %"});
    ClusterMetrics rr, pa;
    for (const auto policy : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                              RouterPolicy::kPrefixAffinity}) {
      const auto m = RunPolicy(workload, replicas, policy);
      if (policy == RouterPolicy::kRoundRobin) rr = m;
      if (policy == RouterPolicy::kPrefixAffinity) pa = m;
      const double fallback_pct =
          m.router.routed > 0
              ? 100.0 * static_cast<double>(m.router.load_fallbacks) /
                    static_cast<double>(m.router.routed)
              : 0.0;
      t.AddRow({RouterPolicyName(policy), AsciiTable::Num(m.ThroughputTokS(), 0),
                AsciiTable::Num(Median(m.aggregate.ttft_ms), 1),
                AsciiTable::Num(m.aggregate.TtftPercentileMs(0.99), 1),
                AsciiTable::Num(Median(m.aggregate.itl_ms), 2),
                AsciiTable::Num(100.0 * m.prefix_hit_rate, 1),
                AsciiTable::Num(m.load_imbalance, 2), AsciiTable::Num(fallback_pct, 1)});
      const std::string key = RouterPolicyName(policy);
      json.Add(key + "_tok_s", m.ThroughputTokS());
      json.Add(key + "_median_ttft_ms", Median(m.aggregate.ttft_ms));
      json.Add(key + "_p99_ttft_ms", m.aggregate.TtftPercentileMs(0.99));
      json.Add(key + "_median_itl_ms", Median(m.aggregate.itl_ms));
      json.Add(key + "_prefix_hit_rate", m.prefix_hit_rate);
      json.Add(key + "_load_imbalance", m.load_imbalance);
    }
    t.Print();

    const double hit_ratio =
        rr.prefix_hit_rate > 0.0 ? pa.prefix_hit_rate / rr.prefix_hit_rate : 0.0;
    std::printf("\nPrefixAffinity / RoundRobin prefix-hit rate: %.2fx "
                "(acceptance: >= 1.20x)\n", hit_ratio);
    std::printf("PrefixAffinity load imbalance: %.2fx (acceptance: <= 1.50x)\n",
                pa.load_imbalance);
    json.Add("gate_hit_ratio", hit_ratio);
    json.Add("gate_pa_load_imbalance", pa.load_imbalance);
    const bool ok = hit_ratio >= 1.2 && pa.load_imbalance <= 1.5;
    json.Add("acceptance_passed", ok ? 1.0 : 0.0);
    if (!ok) {
      json.Add("wall_ms", wall_timer.ElapsedMs());
      json.WriteTo(json_path);
      std::printf("ACCEPTANCE FAILED\n");
      return 1;
    }
  }

  {
    std::printf("\n--- replica-count sweep (offered load scales with replicas) ---\n");
    AsciiTable t({"replicas", "policy", "throughput (tok/s)", "P99 TTFT (ms)",
                  "prefix hit %", "imbalance"});
    for (const int replicas : {2, 4, 8}) {
      Rng rng(77);
      const auto workload = MultiTenantWorkload(rng, base_requests * replicas,
                                                rate_per_replica * replicas, FleetPool());
      for (const auto policy : {RouterPolicy::kRoundRobin, RouterPolicy::kPrefixAffinity}) {
        const auto m = RunPolicy(workload, replicas, policy);
        t.AddRow({AsciiTable::Num(replicas, 0), RouterPolicyName(policy),
                  AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(m.aggregate.TtftPercentileMs(0.99), 1),
                  AsciiTable::Num(100.0 * m.prefix_hit_rate, 1),
                  AsciiTable::Num(m.load_imbalance, 2)});
        const std::string key = std::string(RouterPolicyName(policy)) + "_r" +
                                AsciiTable::Num(replicas, 0);
        json.Add(key + "_tok_s", m.ThroughputTokS());
        json.Add(key + "_prefix_hit_rate", m.prefix_hit_rate);
      }
    }
    t.Print();
    bench::Note("\nexpected shape: PrefixAffinity's hit rate grows with replica count");
    bench::Note("(RoundRobin dilutes each tenant across all replicas; affinity pins it)");
    bench::Note("and buys lower *median* TTFT via prefill savings; its P99 runs at or");
    bench::Note("slightly above RoundRobin's — the affinity/imbalance tradeoff the cap");
    bench::Note("bounds (see src/cluster/router.h).");
  }
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
