// Figure 10 (Sec. 4.4): parallel generation with composable formats.
//
// MLC-Engine-style serving with prefix caching: each request generates n
// parallel continuations of its prompt (the OpenAI "n" parameter). With
// composable formats the shared prompt is decoded at Br = n x g; without,
// every sibling re-reads it. The paper's shape: small losses at n = 1
// (decomposition overhead, nothing shared), peak gains around n = 4, and a
// plateau at large n where attention stops dominating the step.
#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

struct PaperDeltas {
  double itl[7];
  double ttft[7];
};

void RunModel(const char* name, const ModelSpec& model, double request_rate,
              const PaperDeltas& paper) {
  std::printf("\n--- %s, request rate %.0f ---\n", name, request_rate);
  AsciiTable t({"n", "single ITL (ms)", "composable ITL (ms)", "ITL gain (paper)",
                "single TTFT (ms)", "composable TTFT (ms)", "TTFT gain (paper)"});
  const int ns[] = {1, 2, 4, 8, 16, 32, 64};
  for (int i = 0; i < 7; ++i) {
    const int n = ns[i];
    Rng rng(1000 + n);
    // Fixed request rate of 16 in the paper; fewer requests for large n to
    // keep the simulation bounded.
    const int num_requests = std::max(20, 120 / n);
    auto workload = ShareGptWorkload(rng, num_requests, request_rate, n);

    EngineConfig cfg;
    cfg.model = model;
    cfg.device = gpusim::H100Sxm80GB();
    cfg.backend = FlashInferBackend();
    cfg.backend.composable = false;
    const auto single = ServingEngine(cfg).Run(workload);
    cfg.backend.composable = true;
    const auto comp = ServingEngine(cfg).Run(workload);

    const double itl_gain =
        100.0 * (single.MedianItlMs() - comp.MedianItlMs()) / single.MedianItlMs();
    const double ttft_gain =
        100.0 * (single.MedianTtftMs() - comp.MedianTtftMs()) / single.MedianTtftMs();
    t.AddRow({std::to_string(n), AsciiTable::Num(single.MedianItlMs(), 2),
              AsciiTable::Num(comp.MedianItlMs(), 2),
              AsciiTable::SignedPct(itl_gain, 1) + " (" +
                  AsciiTable::SignedPct(paper.itl[i], 1) + ")",
              AsciiTable::Num(single.MedianTtftMs(), 1),
              AsciiTable::Num(comp.MedianTtftMs(), 1),
              AsciiTable::SignedPct(ttft_gain, 1) + " (" +
                  AsciiTable::SignedPct(paper.ttft[i], 1) + ")"});
  }
  t.Print();
}

}  // namespace

int main() {
  bench::Banner("Figure 10", "parallel generation: composable vs single format");
  bench::Note("ShareGPT-like prompts, n parallel continuations; gain = composable advantage");

  const PaperDeltas paper_8b = {{-10.34, 15.95, 13.73, 9.14, 2.96, 0.97, -2.13},
                                {-7.32, 12.86, 16.41, 10.08, 2.70, 0.94, -0.84}};
  const PaperDeltas paper_70b = {{-18.56, -2.00, 17.42, 9.01, 5.03, 10.09, 0.96},
                                 {3.90, 3.95, 22.86, 8.42, 4.69, 9.35, 2.32}};
  RunModel("Llama 3.1 8B Instruct (1xH100)", Llama31_8B(), 16.0, paper_8b);
  RunModel("Llama 3.1 70B Instruct (4xH100)", Llama31_70B(4), 16.0, paper_70b);
  return 0;
}
