// Tables 6-7 (Appendix G.3): load-balancing scheduler ablation.
//
// Llama-3.1-8B serving on 1xH100 under three workloads; the only difference
// between the first two rows is Algorithm 1 vs per-request CTA mapping (same
// kernels). The Triton backend is the external reference point. The
// balanced scheduler matters most for long variable-length sequences
// (U(4096,16384)), where naive mapping leaves most SMs idle behind the
// longest request.
#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

struct Scenario {
  const char* name;
  std::vector<Request> requests;
};

ServingMetrics RunScenario(const BackendConfig& backend, const std::vector<Request>& reqs) {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = backend;
  return ServingEngine(cfg).Run(reqs);
}

}  // namespace

int main() {
  bench::Banner("Tables 6-7", "load-balancing scheduler ablation (ITL / TTFT, ms)");
  bench::Note("Llama 3.1 8B, simulated 1xH100; cells: measured (paper)");

  Rng rng(77);
  std::vector<Scenario> scenarios;
  scenarios.push_back({"ShareGPT (RR=16)", ShareGptWorkload(rng, 200, 16.0)});
  scenarios.push_back(
      {"U(512,2048) (RR=8)", UniformWorkload(rng, 120, 8.0, 512, 2048, 256)});
  scenarios.push_back(
      {"U(4096,16384) (RR=1)", UniformWorkload(rng, 40, 1.0, 4096, 16384, 256)});

  auto with_lb = FlashInferBackend();
  auto without_lb = FlashInferBackend();
  without_lb.name = "w/o load-balancing";
  without_lb.scheduler = SchedulerKind::kNaive;
  auto triton = TritonBackend();

  const double paper_itl[3][3] = {{8.96, 9.16, 9.36}, {8.21, 8.42, 8.49}, {8.63, 13.89, 11.08}};
  const double paper_ttft[3][3] = {
      {39.05, 39.42, 52.92}, {66.78, 67.38, 68.48}, {411.02, 421.60, 566.30}};

  AsciiTable itl({"scenario", "w/ load-balancing", "w/o load-balancing", "Triton"});
  AsciiTable ttft({"scenario", "w/ load-balancing", "w/o load-balancing", "Triton"});
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& sc = scenarios[s];
    std::vector<std::string> itl_row{sc.name}, ttft_row{sc.name};
    int b = 0;
    for (const auto& backend : {with_lb, without_lb, triton}) {
      const auto m = RunScenario(backend, sc.requests);
      itl_row.push_back(WithPaper(m.MedianItlMs(), paper_itl[s][b], 2));
      ttft_row.push_back(WithPaper(m.MedianTtftMs(), paper_ttft[s][b], 1));
      ++b;
    }
    itl.AddRow(itl_row);
    ttft.AddRow(ttft_row);
  }
  std::printf("\n--- Table 6: inter-token latency (ms) ---\n");
  itl.Print();
  std::printf("\n--- Table 7: time-to-first-token (ms) ---\n");
  ttft.Print();
  return 0;
}
