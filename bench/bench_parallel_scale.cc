// Parallel-runtime bench: wall-clock scaling of the threaded cluster driver
// and the packed heterogeneous-tile attention pricer.
//
// Two sections, two halves of the parallel-runtime story:
//
//  1. Threaded cluster stepping (ClusterConfig::step_threads): an 8-replica
//     fleet under preemption pressure is stepped serially and then on 2/4/8
//     pool threads. Replica state is disjoint and the router is the only
//     synchronization point, so every thread count must produce BIT-IDENTICAL
//     aggregated metrics — that identity is gated unconditionally. The
//     wall-clock speedup gate (>= 4x at 8 threads) engages only when the host
//     actually has >= 8 hardware threads; on smaller machines the identity
//     gate still runs and the speedup rows are informational.
//
//  2. Packed tiles (BackendConfig::packed_tiles): the PR 3 bursty mixed
//     chunk+decode workload is replayed with the batch-average tile heuristic
//     and with PackInfer-style compute/IO-aware class packing. Packed mode
//     must strictly reduce total attention time at equal simulated output —
//     the cost-model win that motivates packing heterogeneous qo_lens into
//     one persistent launch.
//
// Usage: bench_parallel_scale [--quick] [--json <path>] [--check <baseline>]
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "serving/workload.h"

using namespace flashinfer;
using namespace flashinfer::cluster;
using namespace flashinfer::serving;

namespace {

/// Replica config matching the threaded-determinism test: chunking +
/// preemption with overlapped swap, HBM sized to ~8000 KV tokens so the
/// workload below actually evicts. All the stateful machinery a data race
/// would corrupt is live.
EngineConfig ReplicaConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  cfg.prefill_chunk_tokens = 1024;
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kAuto;
  cfg.preemption.overlap_swap = true;
  const double kv_bytes =
      8000.0 * cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  cfg.hbm_capacity_gb = (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
  return cfg;
}

struct TimedRun {
  ClusterMetrics metrics;
  double wall_ms = 0.0;
};

TimedRun RunCluster(const std::vector<Request>& reqs, int replicas,
                    int step_threads) {
  ClusterConfig cfg;
  cfg.engine = ReplicaConfig();
  cfg.num_replicas = replicas;
  cfg.policy = RouterPolicy::kLeastLoaded;
  cfg.step_threads = step_threads;
  ClusterEngine engine(cfg);
  TimedRun out;
  const bench::WallTimer timer;
  out.metrics = engine.Run(reqs);
  out.wall_ms = timer.ElapsedMs();
  return out;
}

/// Simulated-outcome digest: every field the threaded driver could plausibly
/// corrupt. Exact floating-point equality — the runs share one seed.
bool MetricsIdentical(const ClusterMetrics& a, const ClusterMetrics& b) {
  const auto& x = a.aggregate;
  const auto& y = b.aggregate;
  if (x.makespan_s != y.makespan_s || x.num_steps != y.num_steps ||
      x.total_output_tokens != y.total_output_tokens ||
      x.total_prefill_tokens != y.total_prefill_tokens ||
      x.num_preemptions != y.num_preemptions ||
      x.evicted_pages != y.evicted_pages ||
      x.restored_pages != y.restored_pages ||
      x.total_swap_ms != y.total_swap_ms ||
      x.swap_hidden_ms != y.swap_hidden_ms ||
      x.swap_stall_ms != y.swap_stall_ms ||
      x.total_attention_ms != y.total_attention_ms ||
      x.ttft_ms != y.ttft_ms || x.itl_ms != y.itl_ms) {
    return false;
  }
  return a.replica_requests == b.replica_requests &&
         a.load_imbalance == b.load_imbalance;
}

ServingMetrics RunPacked(const std::vector<Request>& w, bool packed) {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  cfg.backend.packed_tiles = packed;
  cfg.prefill_chunk_tokens = 1024;
  cfg.batch_policy = BatchPolicy::kDecodePriority;
  return ServingEngine(cfg).Run(w);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  bench::JsonResult json;
  json.Add("bench", std::string("parallel_scale"));
  json.Add("quick", quick ? 1.0 : 0.0);

  bench::Banner("Parallel scale",
                "threaded cluster stepping + packed heterogeneous tiles");

  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  json.Add("hardware_threads", static_cast<double>(cores));

  // --- 1. Threaded cluster stepping. ---------------------------------------
  const int replicas = 8;
  const int reqs_per_replica = quick ? 40 : 120;
  Rng rng(0xD17E2);
  auto reqs = UniformWorkload(rng, replicas * reqs_per_replica,
                              replicas * 25.0, 512, 1024, 96);
  AssignPriorities(rng, reqs, {0.7, 0.3});

  std::printf("\n--- threaded stepping (%d replicas, %zu requests, %d hw threads) ---\n",
              replicas, reqs.size(), cores);
  bench::Note("preemption + overlapped swap live on every replica; identical");
  bench::Note("seeded workload per row, so simulated metrics must not move.");

  AsciiTable t({"step threads", "wall ms", "speedup", "sim makespan s", "tok/s",
                "preempt", "identical"});
  const auto serial = RunCluster(reqs, replicas, /*step_threads=*/1);
  bool identical = true;
  double speedup8 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const TimedRun run =
        threads == 1 ? serial : RunCluster(reqs, replicas, threads);
    const bool same = MetricsIdentical(serial.metrics, run.metrics);
    identical = identical && same;
    const double speedup = run.wall_ms > 0 ? serial.wall_ms / run.wall_ms : 0.0;
    if (threads == 8) speedup8 = speedup;
    t.AddRow({AsciiTable::Num(threads, 0), AsciiTable::Num(run.wall_ms, 1),
              AsciiTable::Num(speedup, 2),
              AsciiTable::Num(run.metrics.aggregate.makespan_s, 3),
              AsciiTable::Num(run.metrics.ThroughputTokS(), 0),
              AsciiTable::Num(run.metrics.aggregate.num_preemptions, 0),
              same ? "yes" : "NO"});
    json.Add("wall_ms_t" + std::to_string(threads), run.wall_ms);
    json.Add("speedup_t" + std::to_string(threads), speedup);
  }
  t.Print();
  json.Add("cluster_tok_s", serial.metrics.ThroughputTokS());
  bench::Note("\nexpected shape: simulated columns frozen across rows (replica");
  bench::Note("state is disjoint; the router is the only sync point); wall ms");
  bench::Note("drops with threads once the host has cores to back them.");

  // --- 2. Packed heterogeneous tiles on the PR 3 mixed-batch workload. -----
  BurstyPrefillConfig wcfg;
  const int scale = quick ? 2 : 1;
  wcfg.num_steady = 240 / scale;
  wcfg.steady_rate = 40.0;
  wcfg.steady_output = 64;
  wcfg.num_bursts = 8 / scale;
  wcfg.burst_size = 6;
  wcfg.first_burst_s = 1.0;
  wcfg.burst_period_s = 1.0;
  wcfg.burst_input_lo = 4096;
  wcfg.burst_input_hi = 8192;
  Rng prng(2027);
  const auto pw = BurstyLongPrefillWorkload(prng, wcfg);

  std::printf("\n--- packed tiles on mixed chunk+decode batches (chunk 1024) ---\n");
  const auto base = RunPacked(pw, /*packed=*/false);
  const auto packed = RunPacked(pw, /*packed=*/true);
  AsciiTable pt({"pricer", "tok/s", "attn ms", "P99 ITL", "makespan s"});
  for (const auto* m : {&base, &packed}) {
    pt.AddRow({m == &base ? "batch-average tile" : "packed classes",
               AsciiTable::Num(m->ThroughputTokS(), 0),
               AsciiTable::Num(m->total_attention_ms, 1),
               AsciiTable::Num(m->P99ItlMs(), 2),
               AsciiTable::Num(m->makespan_s, 3)});
  }
  pt.Print();
  const double attn_win = packed.total_attention_ms > 0
                              ? base.total_attention_ms / packed.total_attention_ms
                              : 0.0;
  const double packed_tok_frac =
      base.ThroughputTokS() > 0 ? packed.ThroughputTokS() / base.ThroughputTokS()
                                : 0.0;
  json.Add("base_attn_ms", base.total_attention_ms);
  json.Add("packed_attn_ms", packed.total_attention_ms);
  json.Add("packed_attn_win", attn_win);
  json.Add("packed_tok_frac", packed_tok_frac);
  bench::Note("\nexpected shape: the batch-average tile compromises every mixed");
  bench::Note("step (large tile starves decode rows, small tile shreds prefill");
  bench::Note("chunks); class packing prices each side at its natural tile and");
  bench::Note("the attention column drops with throughput held or improved.");

  // --- Gates. --------------------------------------------------------------
  const bool speedup_applicable = cores >= 8;
  const bool speedup_ok = !speedup_applicable || speedup8 >= 4.0;
  const bool packed_ok =
      packed.total_attention_ms < base.total_attention_ms && packed_tok_frac >= 1.0 &&
      packed.total_output_tokens == base.total_output_tokens;
  std::printf("\nmetrics identity across thread counts: %s (acceptance: identical)\n",
              identical ? "yes" : "NO");
  if (speedup_applicable) {
    std::printf("wall-clock speedup at 8 threads: %.2fx (acceptance: >= 4x)\n",
                speedup8);
  } else {
    std::printf("wall-clock speedup gate skipped: host has %d hardware threads "
                "(< 8); identity gate still enforced\n", cores);
  }
  std::printf("packed tiles: attention %.1f ms -> %.1f ms (%.2fx win, acceptance:"
              " < 1x ms), throughput %.1f%% of baseline (acceptance: >= 100%%)\n",
              base.total_attention_ms, packed.total_attention_ms, attn_win,
              100.0 * packed_tok_frac);
  json.Add("gate_metrics_identical", identical ? 1.0 : 0.0);
  json.Add("gate_speedup_ok", speedup_ok ? 1.0 : 0.0);
  json.Add("gate_speedup_applicable", speedup_applicable ? 1.0 : 0.0);
  json.Add("gate_packed_wins", packed_ok ? 1.0 : 0.0);
  const bool ok = identical && speedup_ok && packed_ok;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json, /*allow_wall_keys=*/true)) return 1;
  }
  return 0;
}
