// Tables 1-4 (Appendix G.1): attention-variant kernels vs FlexAttention.
//
// Four variants from the AttentionGym suite — causal, logits soft-cap,
// ALiBi, sliding window — across sequence lengths, reported as achieved
// TFLOP/s. FlashInfer compiles a specialized kernel per variant
// (CUDA/CUTLASS -> here the FA3-template cost model); FlexAttention runs a
// generic Triton block-sparse kernel (FA2-class efficiency on Hopper, since
// Triton lacked WGMMA/TMA warp specialization — Appendix C).
#include "bench_common.h"
#include "serving/backends.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

constexpr int64_t kSeqLens[] = {512, 1024, 2048, 4096, 8192, 16384};

enum class Variant { kCausal, kSoftCap, kAlibi, kSlidingWindow };

double VariantTflops(const gpusim::DeviceSpec& dev, Variant v, int64_t len, bool flex) {
  AttnSimInput in;
  in.num_qo_heads = 16;
  in.num_kv_heads = 16;
  in.head_dim = 128;
  in.causal = true;
  if (v == Variant::kSlidingWindow) {
    // Each query row attends to at most the last 1024 tokens: model the
    // effective KV as min(len, window) per row with causality off (the
    // planner's causal trimming does not understand windows; the window
    // bound dominates for len > window).
    const int64_t window = 1024;
    if (len > window) {
      in.causal = false;
      in.kv_lens.assign(16, window);
      in.qo_lens.assign(16, len);
    } else {
      in.qo_lens.assign(16, len);
      in.kv_lens.assign(16, len);
    }
  } else {
    in.qo_lens.assign(16, len);
    in.kv_lens.assign(16, len);
  }

  BackendConfig backend = FlashInferBackend();
  if (flex) {
    // FlexAttention: generic Triton kernel. Triton on Hopper trails
    // CUDA/CUTLASS by ~1.33x on these shapes (no warp specialization /
    // fine register control — Appendix C); block-sparse masks are (128,128).
    backend.kernel_time_scale = 1.33;
    in.page_size = 128;
  }
  auto r = SimulateBatchAttention(dev, backend, in);
  // Extra per-logit math for the variant hooks (tanh for soft-cap, slope
  // bias for ALiBi) runs on CUDA cores; compiled kernels overlap it with the
  // MMA pipeline, interpreted ones serialize more of it.
  double hook_scale = 1.0;
  if (v == Variant::kSoftCap) hook_scale = flex ? 1.12 : 1.06;
  if (v == Variant::kAlibi) hook_scale = flex ? 1.05 : 1.02;
  r.time_us *= hook_scale;
  return r.AchievedTflops();
}

}  // namespace

int main() {
  bench::Banner("Tables 1-4", "attention variants vs FlexAttention (TFLOP/s, higher = better)");
  bench::Note("batch 16, 16 heads, head_dim 128, H100 SXM; cells: measured (paper)");
  const auto dev = gpusim::H100Sxm80GB();

  struct Case {
    Variant v;
    const char* name;
    double paper_flex[6];
    double paper_fi[6];
  };
  const Case cases[] = {
      {Variant::kCausal,
       "Table 1: causal",
       {209.11, 294.53, 376.90, 421.00, 441.26, 453.57},
       {250.45, 406.55, 487.24, 548.39, 587.90, 612.26}},
      {Variant::kSoftCap,
       "Table 2: logits soft-cap",
       {241.51, 327.50, 379.57, 403.39, 407.82, 409.89},
       {336.49, 409.53, 468.77, 489.67, 515.57, 520.94}},
      {Variant::kAlibi,
       "Table 3: ALiBi bias",
       {253.22, 344.70, 406.14, 426.13, 436.35, 434.86},
       {403.90, 500.22, 535.50, 561.32, 573.49, 578.01}},
      {Variant::kSlidingWindow,
       "Table 4: sliding window (1024)",
       {206.51, 292.25, 350.91, 368.45, 373.25, 367.91},
       {236.36, 374.11, 381.46, 385.00, 384.51, 380.51}},
  };

  for (const auto& c : cases) {
    std::printf("\n--- %s ---\n", c.name);
    AsciiTable t({"seq len", "FlexAttention", "FlashInfer", "speedup"});
    for (size_t i = 0; i < std::size(kSeqLens); ++i) {
      const double flex = VariantTflops(dev, c.v, kSeqLens[i], true);
      const double fi = VariantTflops(dev, c.v, kSeqLens[i], false);
      t.AddRow({std::to_string(kSeqLens[i]), WithPaper(flex, c.paper_flex[i], 0),
                WithPaper(fi, c.paper_fi[i], 0), AsciiTable::Num(fi / flex, 2) + "x"});
    }
    t.Print();
  }
  return 0;
}
